# Convenience targets for the acedo reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-snapshot bench-record bench-compare replay-check record-check tables vet fmt fmt-check cover fuzz chaos doclint server-smoke optimize-smoke crash-smoke cluster-smoke ci clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Fail when any file needs reformatting (CI gate).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Schema-stable JSON snapshot of the full suite — the per-commit
# perf/energy trajectory artifact (BENCH_<commit>.json).
bench-snapshot:
	$(GO) run ./cmd/acetables -json BENCH_$$(git rev-parse --short HEAD).json -q

# The committed wall-clock perf records future runs diff against.
# benchjson -compare gates against the best value per benchmark across
# all listed records (the trajectory's high-water mark). BENCH_pr3 is
# the last direct-execution record; BENCH_pr4 adds the record-once/
# replay-many fast path; BENCH_pr8 adds the summarized-block replay
# engine (packed op stream + fused charges), halving suite replay
# time again and adding the BenchmarkReplay* single-trace records;
# BENCH_pr9 adds the direct summary recorder and the BenchmarkRecord*
# record-overhead pair.
BENCH_BASE ?= BENCH_pr3.json BENCH_pr4.json BENCH_pr8.json BENCH_pr9.json

# Diffing a fresh run against multiple old records only works with the
# bundled comparator; benchstat reconstruction uses the newest one.
BENCH_NEWEST ?= BENCH_pr9.json

# Re-measure the hot benchmarks and write a fresh perf record
# (BENCH_<commit>.json) for check-in at perf-sensitive PRs.
bench-record:
	$(GO) test -run NONE -bench 'BenchmarkEngine$$|BenchmarkSuite$$|BenchmarkReplay|BenchmarkRecord' -count=5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_$$(git rev-parse --short HEAD).json

# Diff current throughput against the committed records ($(BENCH_BASE)).
# Uses benchstat when installed; otherwise the bundled benchjson
# comparator prints the delta table and fails on a >15% regression.
bench-compare:
	$(GO) test -run NONE -bench 'BenchmarkEngine$$|BenchmarkSuite$$|BenchmarkReplay|BenchmarkRecord' -count=5 . > /tmp/acedo_bench_new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./cmd/benchjson -raw $(BENCH_NEWEST) > /tmp/acedo_bench_base.txt; \
		benchstat /tmp/acedo_bench_base.txt /tmp/acedo_bench_new.txt; \
	else \
		$(GO) run ./cmd/benchjson -o /tmp/acedo_bench_new.json /tmp/acedo_bench_new.txt; \
		$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) /tmp/acedo_bench_new.json; \
	fi

# Differential gate for the record-once/replay-many fast path: the
# suite's schema-stable snapshot must be byte-identical whether the
# schemes replay a recorded trace or execute directly.
replay-check:
	$(GO) run ./cmd/acetables -json /tmp/acedo_suite_replay.json -q
	$(GO) run ./cmd/acetables -json /tmp/acedo_suite_direct.json -q -noreplay
	cmp /tmp/acedo_suite_replay.json /tmp/acedo_suite_direct.json
	@echo "replay-check: snapshots byte-identical"

# Differential gate for the direct summary recorder: the suite's
# snapshot must be byte-identical whether runs record through the
# byte encoder or build the summarized op stream directly, with and
# without a deterministic fault plan (scripts/record_check.sh).
record-check:
	sh scripts/record_check.sh

# Regenerate every table and figure (21 simulations, ~9.4 s).
tables:
	$(GO) run ./cmd/acetables

tables-threecu:
	$(GO) run ./cmd/acetables -threecu

tables-detectors:
	$(GO) run ./cmd/acetables -detectors

cover:
	$(GO) test -cover ./internal/...

# Short fuzzing sessions for the differential targets.
fuzz:
	$(GO) test -fuzz=FuzzEngineVsReference -fuzztime=20s ./internal/vm
	$(GO) test -fuzz=FuzzCacheVsReference -fuzztime=20s ./internal/cache
	$(GO) test -fuzz=FuzzDetector -fuzztime=20s ./internal/bbv
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=20s ./internal/rtrace

# Fault-injection and watchdog tests (see DESIGN.md §8), under the
# race detector: gate rejection/deferral, resize stalls, sample
# drop/duplication, BBV corruption, panic isolation, deadlines, and
# the oscillation watchdogs.
chaos:
	$(GO) test -race -run Chaos -count=1 ./...

# Documentation hygiene (CI docs-lint job): vet, zero undocumented
# exported identifiers anywhere in the module, and no dead relative
# links in the markdown docs.
doclint: vet
	$(GO) run ./cmd/doclint . $(wildcard internal/*) internal/server/store internal/server/cluster $(wildcard cmd/*)
	$(GO) run ./cmd/doclint -md README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/API.md docs/OPERATIONS.md

# Boot acelabd, drive it with acelab, and diff the service's result
# against `acetables -json` byte-for-byte; then check the client's 429
# backpressure retry loop against a saturated daemon (CI server-smoke
# job).
server-smoke:
	sh scripts/server_smoke.sh

# Drive a tiny seeded GA configuration search through two independent
# daemons and require byte-identical results plus a cache hit on
# resubmission (CI server-smoke job).
optimize-smoke:
	sh scripts/optimize_smoke.sh

# Kill -9 a crash-safe acelabd (-data-dir) mid-job and restart it on
# the same data dir: the journal must requeue the interrupted job and
# the resubmitted finished spec must hit the recovered disk store
# byte-identically (CI server-smoke job).
crash-smoke:
	sh scripts/crash_smoke.sh

# Boot a 3-node acelabd ring and exercise the cluster contract: routed
# results byte-identical to acetables -json, cluster-wide cache hits
# from any node, JSON-array fan-out, and an injected peer partition
# degrading to local execution (CI cluster-smoke job).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Everything the CI workflow runs, locally.
ci: build vet fmt-check doclint
	$(GO) test -race ./...
	$(GO) test -fuzz=FuzzEngineVsReference -fuzztime=10s -run=^$$ ./internal/vm
	$(GO) test -fuzz=FuzzEngineUnderManagement -fuzztime=10s -run=^$$ ./internal/vm
	$(GO) test -fuzz=FuzzCacheVsReference -fuzztime=10s -run=^$$ ./internal/cache
	$(GO) test -fuzz=FuzzDetector -fuzztime=10s -run=^$$ ./internal/bbv
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=10s -run=^$$ ./internal/rtrace
	$(MAKE) chaos
	$(MAKE) server-smoke
	$(MAKE) optimize-smoke
	$(MAKE) crash-smoke
	$(MAKE) cluster-smoke

clean:
	$(GO) clean ./...
