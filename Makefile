# Convenience targets for the acedo reproduction.

GO ?= go

.PHONY: all build test test-short bench tables vet fmt cover fuzz clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure (21 simulations, ~20 s single-core).
tables:
	$(GO) run ./cmd/acetables

tables-threecu:
	$(GO) run ./cmd/acetables -threecu

tables-detectors:
	$(GO) run ./cmd/acetables -detectors

cover:
	$(GO) test -cover ./internal/...

# Short fuzzing sessions for the differential targets.
fuzz:
	$(GO) test -fuzz=FuzzEngineVsReference -fuzztime=20s ./internal/vm
	$(GO) test -fuzz=FuzzCacheVsReference -fuzztime=20s ./internal/cache

clean:
	$(GO) clean ./...
