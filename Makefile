# Convenience targets for the acedo reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-snapshot tables vet fmt fmt-check cover fuzz chaos ci clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# Fail when any file needs reformatting (CI gate).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test: build vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One testing.B benchmark per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Schema-stable JSON snapshot of the full suite — the per-commit
# perf/energy trajectory artifact (BENCH_<commit>.json).
bench-snapshot:
	$(GO) run ./cmd/acetables -json BENCH_$$(git rev-parse --short HEAD).json -q

# Regenerate every table and figure (21 simulations, ~20 s single-core).
tables:
	$(GO) run ./cmd/acetables

tables-threecu:
	$(GO) run ./cmd/acetables -threecu

tables-detectors:
	$(GO) run ./cmd/acetables -detectors

cover:
	$(GO) test -cover ./internal/...

# Short fuzzing sessions for the differential targets.
fuzz:
	$(GO) test -fuzz=FuzzEngineVsReference -fuzztime=20s ./internal/vm
	$(GO) test -fuzz=FuzzCacheVsReference -fuzztime=20s ./internal/cache
	$(GO) test -fuzz=FuzzDetector -fuzztime=20s ./internal/bbv

# Fault-injection and watchdog tests (see DESIGN.md §8), under the
# race detector: gate rejection/deferral, resize stalls, sample
# drop/duplication, BBV corruption, panic isolation, deadlines, and
# the oscillation watchdogs.
chaos:
	$(GO) test -race -run Chaos -count=1 ./...

# Everything the CI workflow runs, locally.
ci: build vet fmt-check
	$(GO) test -race ./...
	$(GO) test -fuzz=FuzzEngineVsReference -fuzztime=10s -run=^$$ ./internal/vm
	$(GO) test -fuzz=FuzzEngineUnderManagement -fuzztime=10s -run=^$$ ./internal/vm
	$(GO) test -fuzz=FuzzCacheVsReference -fuzztime=10s -run=^$$ ./internal/cache
	$(GO) test -fuzz=FuzzDetector -fuzztime=10s -run=^$$ ./internal/bbv
	$(MAKE) chaos

clean:
	$(GO) clean ./...
