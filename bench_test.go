// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §5), one testing.B benchmark per artifact,
// plus the two ablations and micro-benchmarks of the substrates.
//
// The table/figure benches run shortened suite variants (the outer
// loop count is reduced) so a benchmarking pass stays in seconds; the
// full-length tables come from `go run ./cmd/acetables`. Derived
// paper metrics are attached with b.ReportMetric, so `go test -bench .`
// prints the reproduced numbers alongside the timings.
package acedo_test

import (
	"io"
	"sync"
	"testing"

	"acedo"
	"acedo/internal/core"
	"acedo/internal/experiment"
	"acedo/internal/machine"
	"acedo/internal/rtrace"
	"acedo/internal/stats"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// benchLoops shortens every benchmark for the testing.B harness.
const benchLoops = 4

func shrunkSuite() []acedo.BenchmarkSpec {
	var out []acedo.BenchmarkSpec
	for _, s := range acedo.Suite() {
		out = append(out, s.WithMainLoops(benchLoops))
	}
	return out
}

var (
	suiteOnce sync.Once
	suiteRes  *acedo.SuiteResults
	suiteErr  error
)

// collectShrunkSuite runs the shortened 7×3 evaluation once and caches
// it; the render-side of every table bench reuses it so the whole
// bench file completes in seconds.
func collectShrunkSuite(b *testing.B) *acedo.SuiteResults {
	b.Helper()
	suiteOnce.Do(func() {
		opt := acedo.DefaultOptions()
		var cs []*acedo.Comparison
		for _, s := range shrunkSuite() {
			c, err := acedo.CompareSchemes(s, opt)
			if err != nil {
				suiteErr = err
				return
			}
			cs = append(cs, c)
		}
		suiteRes = &acedo.SuiteResults{Options: opt, Comparisons: cs}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteRes
}

// runOne executes one shortened benchmark under one scheme.
func runOne(b *testing.B, name string, scheme acedo.Scheme) *acedo.Result {
	b.Helper()
	spec, ok := acedo.BenchmarkByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	res, err := acedo.RunBenchmark(spec.WithMainLoops(benchLoops), scheme, acedo.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1 measures the hotspot identification latency that
// Table 1 contrasts with the temporal approaches' per-recurrence
// latency.
func BenchmarkTable1(b *testing.B) {
	var ident float64
	for i := 0; i < b.N; i++ {
		r := runOne(b, "compress", acedo.SchemeHotspot)
		ident = float64(r.AOS.IdentLatencyInstr) / float64(r.Instr)
	}
	b.ReportMetric(100*ident, "ident-latency-%")
	res := collectShrunkSuite(b)
	res.Table1(io.Discard)
}

// BenchmarkTable2 exercises machine construction at the paper's
// Table 2 configuration.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := acedo.NewMachine(acedo.PaperMachineConfig(10)); err != nil {
			b.Fatal(err)
		}
	}
	collectShrunkSuite(b).Table2(io.Discard)
}

// BenchmarkTable3 exercises workload generation for the whole suite.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range acedo.Suite() {
			if _, err := s.Build(); err != nil {
				b.Fatal(err)
			}
		}
	}
	collectShrunkSuite(b).Table3(io.Discard)
}

// BenchmarkFigure1 regenerates the stable/transitional distribution:
// one BBV-managed run per iteration, the paper's most and least stable
// benchmarks.
func BenchmarkFigure1(b *testing.B) {
	var stableJack, stableJavac float64
	for i := 0; i < b.N; i++ {
		stableJack = runOne(b, "jack", acedo.SchemeBBV).BBV.StablePct
		stableJavac = runOne(b, "javac", acedo.SchemeBBV).BBV.StablePct
	}
	b.ReportMetric(100*stableJack, "jack-stable-%")
	b.ReportMetric(100*stableJavac, "javac-stable-%")
	collectShrunkSuite(b).Figure1(io.Discard)
}

// BenchmarkTable4 regenerates the hotspot runtime characteristics.
func BenchmarkTable4(b *testing.B) {
	var hotFrac float64
	var promos uint64
	for i := 0; i < b.N; i++ {
		r := runOne(b, "db", acedo.SchemeHotspot)
		hotFrac = float64(r.AOS.HotspotInstr) / float64(r.Instr)
		promos = r.AOS.Promotions
	}
	b.ReportMetric(100*hotFrac, "code-in-hotspots-%")
	b.ReportMetric(float64(promos), "hotspots")
	collectShrunkSuite(b).Table4(io.Discard)
}

// BenchmarkTable5 regenerates the tuned-fraction comparison.
func BenchmarkTable5(b *testing.B) {
	var tunedHot, tunedBBV float64
	for i := 0; i < b.N; i++ {
		tunedHot = runOne(b, "jess", acedo.SchemeHotspot).Hotspot.TunedPct
		tunedBBV = runOne(b, "jess", acedo.SchemeBBV).BBV.PctIntervalsInTuned
	}
	b.ReportMetric(100*tunedHot, "hotspots-tuned-%")
	b.ReportMetric(100*tunedBBV, "bbv-intervals-in-tuned-%")
	collectShrunkSuite(b).Table5(io.Discard)
}

// BenchmarkTable6 regenerates the tunings/reconfigurations/coverage
// accounting.
func BenchmarkTable6(b *testing.B) {
	var l1dRec, l2Rec float64
	for i := 0; i < b.N; i++ {
		h := runOne(b, "mtrt", acedo.SchemeHotspot).Hotspot
		l1dRec, l2Rec = float64(h.L1D.Reconfigs), float64(h.L2.Reconfigs)
	}
	b.ReportMetric(l1dRec, "L1D-reconfigs")
	b.ReportMetric(l2Rec, "L2-reconfigs")
	collectShrunkSuite(b).Table6(io.Discard)
}

// BenchmarkFigure3 regenerates the headline energy result across the
// full (shortened) suite.
func BenchmarkFigure3(b *testing.B) {
	var l1dHot, l1dBBV, l2Hot, l2BBV []float64
	for i := 0; i < b.N; i++ {
		l1dHot, l1dBBV, l2Hot, l2BBV = nil, nil, nil, nil
		for _, s := range shrunkSuite() {
			c, err := acedo.CompareSchemes(s, acedo.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			l1dHot = append(l1dHot, c.L1DSavingHot)
			l1dBBV = append(l1dBBV, c.L1DSavingBBV)
			l2Hot = append(l2Hot, c.L2SavingHot)
			l2BBV = append(l2BBV, c.L2SavingBBV)
		}
	}
	b.ReportMetric(100*stats.Mean(l1dHot), "L1D-saving-hotspot-%")
	b.ReportMetric(100*stats.Mean(l1dBBV), "L1D-saving-bbv-%")
	b.ReportMetric(100*stats.Mean(l2Hot), "L2-saving-hotspot-%")
	b.ReportMetric(100*stats.Mean(l2BBV), "L2-saving-bbv-%")
	collectShrunkSuite(b).Figure3(io.Discard)
}

// BenchmarkFigure4 regenerates the performance-degradation figure on
// two representative benchmarks.
func BenchmarkFigure4(b *testing.B) {
	var slowHot, slowBBV float64
	for i := 0; i < b.N; i++ {
		spec, _ := acedo.BenchmarkByName("compress")
		c, err := acedo.CompareSchemes(spec.WithMainLoops(benchLoops), acedo.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		slowHot, slowBBV = c.SlowdownHot, c.SlowdownBBV
	}
	b.ReportMetric(100*slowHot, "slowdown-hotspot-%")
	b.ReportMetric(100*slowBBV, "slowdown-bbv-%")
	collectShrunkSuite(b).Figure4(io.Discard)
}

// BenchmarkAblationDecoupling contrasts CU decoupling with monolithic
// 16-combination tuning (DESIGN.md experiment A1).
func BenchmarkAblationDecoupling(b *testing.B) {
	var tunedDec, tunedMono float64
	for i := 0; i < b.N; i++ {
		spec, _ := acedo.BenchmarkByName("jess")
		spec = spec.WithMainLoops(benchLoops)
		opt := acedo.DefaultOptions()
		dec, err := experiment.Run(spec, acedo.SchemeHotspot, opt)
		if err != nil {
			b.Fatal(err)
		}
		opt.Core.Mode = core.ModeMonolithic
		mono, err := experiment.Run(spec, acedo.SchemeHotspot, opt)
		if err != nil {
			b.Fatal(err)
		}
		tunedDec, tunedMono = dec.Hotspot.TunedPct, mono.Hotspot.TunedPct
	}
	b.ReportMetric(100*tunedDec, "tuned-decoupled-%")
	b.ReportMetric(100*tunedMono, "tuned-monolithic-%")
}

// BenchmarkAblationStaticHint measures the zero-descent configuration
// path (DESIGN.md experiment A2).
func BenchmarkAblationStaticHint(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("compress")
	spec = spec.WithMainLoops(benchLoops)
	var tunings uint64
	for i := 0; i < b.N; i++ {
		prog, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		opt := acedo.DefaultOptions()
		mach, err := machine.New(opt.Machine)
		if err != nil {
			b.Fatal(err)
		}
		aos := vm.NewAOS(opt.VM, mach, prog)
		params := opt.Core
		params.StaticHint = acedo.NewAnalyzer(prog).HintFor(mach)
		mgr, err := acedo.NewManager(params, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := vm.NewEngine(prog, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			b.Fatal(err)
		}
		rep := mgr.Report()
		tunings = rep.L1D.Tunings + rep.L2.Tunings
	}
	b.ReportMetric(float64(tunings), "tuning-measurements")
}

// BenchmarkExtensionThreeCU runs the three-CU extension (issue queue
// as a third configurable unit): BBV faces 64 combinatorial
// configurations while CU decoupling still tests 4 per hotspot.
func BenchmarkExtensionThreeCU(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("jess")
	spec = spec.WithMainLoops(benchLoops)
	var iqHot, iqBBV float64
	for i := 0; i < b.N; i++ {
		c, err := acedo.CompareSchemes(spec, acedo.DefaultOptions().WithThreeCU())
		if err != nil {
			b.Fatal(err)
		}
		iqHot, iqBBV = c.IQSavingHot, c.IQSavingBBV
	}
	b.ReportMetric(100*iqHot, "IQ-saving-hotspot-%")
	b.ReportMetric(100*iqBBV, "IQ-saving-bbv-%")
}

// BenchmarkExtensionPredictor runs the BBV comparator with the
// next-phase predictor the paper deliberately omitted.
func BenchmarkExtensionPredictor(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("mtrt")
	spec = spec.WithMainLoops(benchLoops)
	var acc, cov float64
	for i := 0; i < b.N; i++ {
		opt := acedo.DefaultOptions()
		opt.BBV.UsePredictor = true
		r, err := experiment.Run(spec, acedo.SchemeBBV, opt)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.BBV.Predictor.Accuracy()
		cov = r.BBV.Coverage
	}
	b.ReportMetric(100*acc, "predictor-accuracy-%")
	b.ReportMetric(100*cov, "bbv-coverage-%")
}

// BenchmarkWarmStart measures a run that replays a previous run's
// exported DO database instead of tuning.
func BenchmarkWarmStart(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("compress")
	spec = spec.WithMainLoops(benchLoops)
	opt := acedo.DefaultOptions()

	// Produce the database once (outside the timed loop).
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	mach := machine.MustNew(opt.Machine)
	aos := vm.NewAOS(opt.VM, mach, prog)
	mgr, err := acedo.NewManager(opt.Core, mach, aos)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		b.Fatal(err)
	}
	db := mgr.ExportDatabase()

	b.ResetTimer()
	var warmStarts int
	for i := 0; i < b.N; i++ {
		prog, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		mach := machine.MustNew(opt.Machine)
		aos := vm.NewAOS(opt.VM, mach, prog)
		params := opt.Core
		params.WarmStart = db
		mgr, err := acedo.NewManager(params, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := vm.NewEngine(prog, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			b.Fatal(err)
		}
		warmStarts = mgr.Report().WarmStarts
	}
	b.ReportMetric(float64(warmStarts), "warm-started-hotspots")
}

// BenchmarkSuite runs the full (shortened) 7×3 suite comparison — the
// end-to-end path behind `acetables -json` — with no telemetry sink
// attached, so it doubles as the zero-overhead regression bench for
// the instrumented hot paths.
func BenchmarkSuite(b *testing.B) {
	opt := acedo.DefaultOptions()
	for i := 0; i < b.N; i++ {
		for _, s := range shrunkSuite() {
			if _, err := acedo.CompareSchemes(s, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReplay measures summarized trace-replay throughput: the
// baseline trace is recorded once outside the timer, then each
// iteration replays it into a fresh machine through the
// summarized-block engine (the per-scheme cost of record-once /
// replay-many).
func BenchmarkReplay(b *testing.B) {
	benchReplay(b, 0)
}

// BenchmarkReplayParallel is BenchmarkReplay with intra-run span
// parallelism (4 workers): the replay splits into spans reconstructed
// speculatively on worker goroutines and spliced back bit-for-bit.
// On a single-core host this measures the span machinery's overhead
// rather than a speedup.
func BenchmarkReplayParallel(b *testing.B) {
	benchReplay(b, 4)
}

func benchReplay(b *testing.B, intraPar int) {
	b.Helper()
	spec, _ := acedo.BenchmarkByName("jess")
	spec = spec.WithMainLoops(benchLoops)
	opt := acedo.DefaultOptions()
	res, tr, err := experiment.RecordedBaseline(spec, opt)
	if err != nil {
		b.Fatal(err)
	}
	if tr == nil {
		b.Fatal("baseline recording not retained")
	}
	opt.IntraParallelism = intraPar
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ReplayScheme(spec, acedo.SchemeBaseline, opt, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Instr)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkEngine measures raw interpreter throughput in simulated
// instructions per second.
func BenchmarkEngine(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("compress")
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var simulated uint64
	for i := 0; i < b.N; i++ {
		mach, err := machine.New(machine.PaperConfig(10))
		if err != nil {
			b.Fatal(err)
		}
		aos := vm.NewAOS(vm.DefaultParams(), mach, prog)
		eng, err := vm.NewEngine(prog, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(2_000_000); err != nil && err != vm.ErrBudget {
			b.Fatal(err)
		}
		simulated += mach.Instructions()
	}
	b.ReportMetric(float64(simulated)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkRecord is BenchmarkEngine with the byte recorder installed:
// the record-once overhead of the chunked delta/varint trace encoding
// over direct execution.
func BenchmarkRecord(b *testing.B) {
	benchRecord(b, rtrace.FormatBytes)
}

// BenchmarkRecordSummary is BenchmarkEngine with the direct summary
// recorder installed: the record-once overhead when the packed
// summarized op stream is built straight from the engine's events,
// with no byte encoding and no decode pass.
func BenchmarkRecordSummary(b *testing.B) {
	benchRecord(b, rtrace.FormatSummary)
}

func benchRecord(b *testing.B, format rtrace.Format) {
	b.Helper()
	spec, _ := acedo.BenchmarkByName("compress")
	prog, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var simulated uint64
	for i := 0; i < b.N; i++ {
		mach, err := machine.New(machine.PaperConfig(10))
		if err != nil {
			b.Fatal(err)
		}
		aos := vm.NewAOS(vm.DefaultParams(), mach, prog)
		eng, err := vm.NewEngine(prog, mach, aos)
		if err != nil {
			b.Fatal(err)
		}
		var rec interface {
			vm.Recorder
			Finish(halted bool) (*rtrace.Trace, error)
		}
		if format == rtrace.FormatBytes {
			rec = rtrace.NewRecorder()
		} else {
			rec = rtrace.NewSummaryRecorder(prog, 2_000_000)
		}
		if err := eng.SetRecorder(rec); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(2_000_000); err != nil && err != vm.ErrBudget {
			b.Fatal(err)
		}
		if _, err := rec.Finish(eng.Halted()); err != nil {
			b.Fatal(err)
		}
		simulated += mach.Instructions()
	}
	b.ReportMetric(float64(simulated)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkWorkloadGen measures suite program generation.
func BenchmarkWorkloadGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range workload.Suite() {
			if _, err := s.Build(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnalyzer measures the static footprint analysis.
func BenchmarkAnalyzer(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("javac")
	prog := spec.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acedo.NewAnalyzer(prog)
	}
}

// BenchmarkExtensionWSS runs the working-set-signature comparator — the
// other temporal detector of the paper's Section 2.2 survey.
func BenchmarkExtensionWSS(b *testing.B) {
	spec, _ := acedo.BenchmarkByName("mpeg")
	spec = spec.WithMainLoops(benchLoops)
	var stable, cov float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.Run(spec, experiment.SchemeWSS, acedo.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		stable, cov = r.BBV.StablePct, r.BBV.Coverage
	}
	b.ReportMetric(100*stable, "wss-stable-%")
	b.ReportMetric(100*cov, "wss-coverage-%")
}
