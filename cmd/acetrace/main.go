// Command acetrace runs a benchmark under the hotspot framework and
// renders the adaptation timeline: which cache sizes were active when,
// at what granularity each unit was reconfigured, and where hotspots
// were promoted — the paper's multi-grain adaptation made visible.
//
// Usage:
//
//	acetrace -bench compress [-cols 100] [-threecu]
package main

import (
	"flag"
	"fmt"
	"os"

	"acedo"
	"acedo/internal/machine"
	"acedo/internal/trace"
	"acedo/internal/vm"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark name")
	cols := flag.Int("cols", 100, "timeline columns")
	threeCU := flag.Bool("threecu", false, "enable the issue-queue unit")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "acetrace: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	opt := acedo.DefaultOptions()
	if *threeCU {
		opt = opt.WithThreeCU()
	}

	prog, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		os.Exit(1)
	}
	mach, err := machine.New(opt.Machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		os.Exit(1)
	}

	var rec trace.Recorder
	mach.OnReconfigure = rec.Reconfig

	aos := vm.NewAOS(opt.VM, mach, prog)
	mgr, err := acedo.NewManager(opt.Core, mach, aos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		os.Exit(1)
	}
	// Chain a promotion recorder after the manager's subscription.
	inner := aos.OnPromote
	aos.OnPromote = func(p *vm.MethodProfile) {
		rec.Promotion(p.Name, mach.Instructions())
		if inner != nil {
			inner(p)
		}
	}

	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		os.Exit(1)
	}
	if err := eng.Run(0); err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark %s under the hotspot framework (%d instructions)\n\n",
		spec.Name, mach.Instructions())
	rec.Timeline(os.Stdout, mach.Instructions(), *cols)

	fmt.Println("\nhotspot configurations:")
	for _, h := range mgr.Hotspots() {
		for i, u := range h.Units() {
			fmt.Printf("  %-16s %-4s -> %v (%s)\n",
				h.Prof.Name, u.Name(), u.Setting(h.BestConfig()[i]), h.State())
		}
	}
}
