// Command acetrace runs a benchmark under the hotspot framework and
// renders the adaptation timeline: which cache sizes were active when,
// at what granularity each unit was reconfigured, and where hotspots
// were promoted — the paper's multi-grain adaptation made visible.
//
// Usage:
//
//	acetrace -bench compress [-cols 100] [-threecu]
//	acetrace -bench jess -events run.jsonl   # JSONL event log alongside
package main

import (
	"flag"
	"fmt"
	"os"

	"acedo"
	"acedo/internal/machine"
	"acedo/internal/telemetry"
	"acedo/internal/trace"
	"acedo/internal/vm"
)

func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "compress", "benchmark name")
	cols := flag.Int("cols", 100, "timeline columns")
	threeCU := flag.Bool("threecu", false, "enable the issue-queue unit")
	events := flag.String("events", "", "also write JSONL telemetry events to this file (\"-\" = stdout)")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "acetrace: unknown benchmark %q\n", *bench)
		return 2
	}
	opt := acedo.DefaultOptions()
	if *threeCU {
		opt = opt.WithThreeCU()
	}

	prog, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		return 1
	}
	mach, err := machine.New(opt.Machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		return 1
	}

	// The timeline Recorder is itself a telemetry.Sink; an optional
	// JSONL sink tees off the same event stream.
	var rec trace.Recorder
	var sink telemetry.Sink = &rec
	if *events != "" {
		out := os.Stdout
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		jl := telemetry.NewJSONL(out)
		defer func() {
			if err := jl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "acetrace: events: %v\n", err)
			}
		}()
		sink = telemetry.Multi(&rec, telemetry.WithRunLabels(jl, spec.Name, "hotspot"))
	}
	mach.OnReconfigure = telemetry.MachineReconfigure(sink)

	aos := vm.NewAOS(opt.VM, mach, prog)
	mgr, err := acedo.NewManager(opt.Core, mach, aos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		return 1
	}
	mgr.SetSink(sink)
	// Chain a promotion emitter after the manager's subscription.
	inner := aos.OnPromote
	aos.OnPromote = func(p *vm.MethodProfile) {
		sink.Emit(telemetry.Promotion(p.Name, mach.Instructions()))
		if inner != nil {
			inner(p)
		}
	}

	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		return 1
	}
	if err := eng.Run(0); err != nil {
		fmt.Fprintf(os.Stderr, "acetrace: %v\n", err)
		return 1
	}

	fmt.Printf("benchmark %s under the hotspot framework (%d instructions)\n\n",
		spec.Name, mach.Instructions())
	rec.Timeline(os.Stdout, mach.Instructions(), *cols)

	fmt.Println("\nhotspot configurations:")
	for _, h := range mgr.Hotspots() {
		for i, u := range h.Units() {
			fmt.Printf("  %-16s %-4s -> %v (%s)\n",
				h.Prof.Name, u.Name(), u.Setting(h.BestConfig()[i]), h.State())
		}
	}
	return 0
}
