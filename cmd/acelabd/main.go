// Command acelabd is the experiment job daemon: it serves the
// apparatus in internal/experiment over HTTP, accepting experiment
// jobs (benchmark × scheme × fault-plan × options as JSON), running
// them on a bounded worker pool, streaming their telemetry, and
// answering repeated submissions from a content-addressed result
// cache. See docs/API.md for the HTTP surface and cmd/acelab for the
// matching client.
//
// Beyond fixed scheme lists, a job spec with an "optimize" clause runs
// a metaheuristic configuration search (internal/optimize) per
// benchmark, evaluating every candidate as a replay of the
// once-recorded benchmark stream and streaming search progress on the
// job's event log.
//
//	acelabd -addr :8080
//	curl -s -X POST localhost:8080/v1/jobs -d '{"benchmarks":["gzip"]}'
//	curl -s -X POST localhost:8080/v1/jobs -d '{"benchmarks":["gzip"],"optimize":{}}'
//
// A set of daemons forms a cluster when each is started with -node-id
// and the full -peers membership (docs/OPERATIONS.md walks through a
// deployment):
//
//	acelabd -addr :8081 -node-id a -peers a=http://h1:8081,b=http://h2:8081
//
// Submissions then route to the consistent-hash owner of each spec's
// content address, so every distinct experiment executes and caches
// once cluster-wide; any node accepts any request.
//
// SIGINT/SIGTERM drains gracefully: new submissions are refused with
// 503 while queued and running jobs finish.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"acedo/internal/fault"
	"acedo/internal/rtrace"
	"acedo/internal/server"
	"acedo/internal/server/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "job queue depth (0 = default 16)")
		cacheMB   = flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = default 256)")
		maxJobs   = flag.Int("max-jobs", 0, "retained job records (0 = default 1024)")
		dataDir   = flag.String("data-dir", "", "crash-safe mode: persist results and journal jobs under this directory")
		svcFaults = flag.String("service-faults", "", "JSON fault plan injecting service-level faults (disk errors, torn writes, HTTP latency/500s, stream disconnects)")
		intraPar  = flag.Int("intra-par", 0, "goroutines per trace replay inside a job (0/1 = serial; results are bit-identical at any setting)")
		traceFmt  = flag.String("trace-format", "", "recorder format for job recordings: summary (direct-built, default) or bytes (results are bit-identical either way)")
		drain     = flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight jobs on shutdown")
		quiet     = flag.Bool("q", false, "suppress per-job log lines")
		nodeID    = flag.String("node-id", "", "this node's cluster identity (requires -peers)")
		peers     = flag.String("peers", "", "cluster membership as id=url,id=url,... including this node; arms consistent-hash job routing")
	)
	flag.Parse()

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	format, err := rtrace.ParseFormat(*traceFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acelabd: %v\n", err)
		os.Exit(2)
	}
	var plan *fault.Plan
	if *svcFaults != "" {
		var err error
		plan, err = fault.LoadPlan(*svcFaults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acelabd: %v\n", err)
			os.Exit(1)
		}
	}
	clu, err := parsePeers(*nodeID, *peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acelabd: %v\n", err)
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheBytes:       *cacheMB << 20,
		MaxJobs:          *maxJobs,
		IntraParallelism: *intraPar,
		TraceFormat:      format,
		DataDir:          *dataDir,
		ServiceFaults:    plan,
		Cluster:          clu,
		Log:              logw,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "acelabd: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "acelabd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "acelabd: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "acelabd: serve: %v\n", err)
		os.Exit(1)
	}

	// Refuse new jobs and wait for in-flight ones, then stop listening.
	deadline := make(chan struct{})
	time.AfterFunc(*drain, func() { close(deadline) })
	if err := srv.Shutdown(deadline); err != nil {
		fmt.Fprintf(os.Stderr, "acelabd: %v\n", err)
		httpSrv.Close()
		os.Exit(1)
	}
	httpSrv.Close()
	fmt.Fprintln(os.Stderr, "acelabd: drained")
}

// parsePeers compiles -node-id and -peers into a cluster config. Both
// must be given together; the membership string is id=url pairs,
// comma-separated, and must include this node's own ID. Node IDs may
// not contain '@' — the daemon qualifies cross-node job IDs as
// "j3@node", splitting on the last '@'.
func parsePeers(nodeID, peers string) (*cluster.Config, error) {
	if nodeID == "" && peers == "" {
		return nil, nil
	}
	if nodeID == "" || peers == "" {
		return nil, fmt.Errorf("-node-id and -peers must be given together")
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(peers, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers: bad entry %q (want id=url)", pair)
		}
		if strings.ContainsAny(id, "@/") {
			return nil, fmt.Errorf("-peers: node ID %q may not contain '@' or '/'", id)
		}
		if _, dup := m[id]; dup {
			return nil, fmt.Errorf("-peers: duplicate node ID %q", id)
		}
		m[id] = url
	}
	if _, ok := m[nodeID]; !ok {
		return nil, fmt.Errorf("-peers must include this node's own ID %q", nodeID)
	}
	return &cluster.Config{NodeID: nodeID, Peers: m}, nil
}
