// Command acesim runs one benchmark under one resource-adaptation
// scheme and prints the run's statistics.
//
// Usage:
//
//	acesim -bench compress -scheme hotspot [-scale 10] [-max 0]
//	acesim -bench db -scheme all
//	acesim -bench jess -scheme hotspot -events run.jsonl -interval 50000
//	acesim -bench jess -scheme hotspot -faults plan.json -deadline 60s
//	acesim -bench mpeg -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"acedo/internal/experiment"
	"acedo/internal/fault"
	"acedo/internal/rtrace"
	"acedo/internal/telemetry"
	"acedo/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	bench := flag.String("bench", "compress", "benchmark name (compress|db|jack|javac|jess|mpeg|mtrt)")
	scheme := flag.String("scheme", "all", "scheme: baseline|bbv|wss|hotspot|all")
	threeCU := flag.Bool("threecu", false, "enable the issue-queue unit (third CU)")
	scale := flag.Uint64("scale", 10, "scale divisor for instruction-count parameters (1 = paper scale)")
	maxInstr := flag.Uint64("max", 0, "instruction budget (0 = run to completion)")
	loops := flag.Int("loops", 0, "override the benchmark's main loop count (0 = default)")
	events := flag.String("events", "", "write JSONL telemetry events to this file (\"-\" = stdout)")
	interval := flag.Uint64("interval", 0, "interval-metric sampling period in retired instructions (0 = the L1D reconfiguration interval)")
	faults := flag.String("faults", "", "arm the fault-injection plan in this JSON file (chaos testing)")
	noReplay := flag.Bool("noreplay", false, "with -scheme all: disable the record-once/replay-many fast path")
	traceFormat := flag.String("traceformat", "", "recorder format: summary (direct-built, default) or bytes (results are bit-identical either way)")
	intraPar := flag.Int("intrapar", 0, "goroutines per trace replay (0/1 = serial; results are bit-identical at any setting)")
	deadline := flag.Duration("deadline", 0, "wall-clock limit per run, e.g. 60s (0 = unbounded)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "acesim: unknown benchmark %q\n", *bench)
		return 2
	}
	if *loops > 0 {
		spec = spec.WithMainLoops(*loops)
	}

	opt := experiment.DefaultOptions()
	if *scale != 10 {
		opt = experiment.OptionsAtScale(*scale)
	}
	if *threeCU {
		opt = opt.WithThreeCU()
	}
	opt.MaxInstr = *maxInstr
	opt.TelemetryInterval = *interval
	opt.Deadline = *deadline
	opt.NoReplay = *noReplay
	opt.IntraParallelism = *intraPar
	format, err := rtrace.ParseFormat(*traceFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
		return 2
	}
	opt.TraceFormat = format
	if *faults != "" {
		plan, err := fault.LoadPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
			return 1
		}
		opt.Faults = plan
	}

	var eventSink *telemetry.JSONL
	if *events != "" {
		out := os.Stdout
		if *events != "-" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		eventSink = telemetry.NewJSONL(out)
		defer func() {
			if err := eventSink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "acesim: events: %v\n", err)
			}
		}()
		opt.Sink = eventSink
	}

	schemes := map[string][]experiment.Scheme{
		"baseline": {experiment.SchemeBaseline},
		"bbv":      {experiment.SchemeBBV},
		"wss":      {experiment.SchemeWSS},
		"hotspot":  {experiment.SchemeHotspot},
		"all":      {experiment.SchemeBaseline, experiment.SchemeBBV, experiment.SchemeHotspot},
	}[*scheme]
	if schemes == nil {
		fmt.Fprintf(os.Stderr, "acesim: unknown scheme %q\n", *scheme)
		return 2
	}

	// -scheme all takes the record-once/replay-many fast path: the
	// baseline run records the benchmark's architectural trace and the
	// other schemes replay it (bit-identical results, a fraction of
	// the wall-clock). Single-scheme runs execute directly.
	if len(schemes) > 1 {
		results, err := experiment.RunSchemes(spec, opt, schemes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
			return 1
		}
		if eventSink != nil {
			if err := eventSink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "acesim: events: %v\n", err)
				return 1
			}
		}
		for _, res := range results {
			printRun(res)
		}
		return 0
	}
	for _, sch := range schemes {
		res, err := experiment.Run(spec, sch, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
			return 1
		}
		// With -events - the event stream shares stdout with the
		// stats: complete any buffered event line before printing.
		if eventSink != nil {
			if err := eventSink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "acesim: events: %v\n", err)
				return 1
			}
		}
		printRun(res)
	}
	return 0
}

// writeMemProfile dumps a post-GC heap profile, if requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "acesim: %v\n", err)
	}
}

func printRun(r *experiment.Result) {
	fmt.Printf("%s / %s (%s, %.2fs)\n", r.Benchmark, r.Scheme, r.Disposition, r.Wall.Seconds())
	fmt.Printf("  instructions  %d\n", r.Instr)
	fmt.Printf("  cycles        %d (IPC %.3f)\n", r.Cycles, r.IPC)
	fmt.Printf("  L1D energy    %.4g mJ\n", r.L1DEnergyNJ/1e6)
	fmt.Printf("  L2 energy     %.4g mJ\n", r.L2EnergyNJ/1e6)
	if r.IQEnergyNJ > 0 {
		fmt.Printf("  IQ energy     %.4g mJ\n", r.IQEnergyNJ/1e6)
	}
	b := r.Breakdown
	fmt.Printf("  cycle mix     issue=%d stall=%d branch=%d reconf=%d\n",
		b.IssueCycles, b.StallCycles, b.BranchCycles, b.ReconfCycles)
	fmt.Printf("  events        L1miss=%d L2miss=%d tlbmiss=%d mispred=%d reconfigs=%d\n",
		b.L1Misses, b.L2Misses, b.TLBMisses, b.Mispredicts, b.Reconfigs)
	fmt.Printf("  DO system     hotspots=%d hotspot-instr=%.1f%% overhead-instr=%d\n",
		r.AOS.Promotions, 100*float64(r.AOS.HotspotInstr)/float64(r.Instr), r.AOS.OverheadInstr)
	if h := r.Hotspot; h != nil {
		fmt.Printf("  framework     L1D{n=%d tuned=%d tunings=%d reconfigs=%d coverage=%.1f%%}\n",
			h.L1D.Hotspots, h.L1D.Tuned, h.L1D.Tunings, h.L1D.Reconfigs, 100*h.L1D.Coverage)
		fmt.Printf("                L2{n=%d tuned=%d tunings=%d reconfigs=%d coverage=%.1f%%}\n",
			h.L2.Hotspots, h.L2.Tuned, h.L2.Tunings, h.L2.Reconfigs, 100*h.L2.Coverage)
		fmt.Printf("                unmanaged=%d retunes=%d perCoV=%.1f%% interCoV=%.1f%%\n",
			h.Unmanaged, h.Retunes, 100*h.PerHotspotIPCCoV, 100*h.InterHotspotIPCCoV)
	}
	if b := r.BBV; b != nil {
		fmt.Printf("  BBV           intervals=%d stable=%.1f%% phases=%d tuned=%d\n",
			b.Intervals, 100*b.StablePct, b.Phases, b.TunedPhases)
		fmt.Printf("                tunings=%d reconfigs=%d coverage=%.1f%% inTuned=%.1f%%\n",
			b.Tunings, b.Reconfigs, 100*b.Coverage, 100*b.PctIntervalsInTuned)
	}
}
