// Command acelab is the client for the acelabd experiment daemon: it
// submits experiment jobs, polls them, and fetches results, telemetry
// streams, and daemon metrics over the HTTP API in docs/API.md.
//
//	acelab submit '{"benchmarks":["gzip"]}'   # submit, print status
//	acelab run '{"benchmarks":["gzip"]}'      # submit, wait, print result
//	acelab optimize '{"benchmarks":["gzip"]}' # configuration search, wait, print result
//	acelab status j1
//	acelab result j1
//	acelab events j1                          # follows while running
//	acelab cancel j1
//	acelab jobs
//	acelab metrics
//	acelab health
//
// A spec argument of "-" (or none) reads the JSON spec from stdin; an
// empty object {} is the full default evaluation.
//
// The client is partition-tolerant: every request carries a timeout
// (-timeout), transient failures — connection errors, injected or real
// 5xx, and 429 backpressure — share one bounded retry loop (-retries)
// with jittered exponential backoff (Retry-After wins when the daemon
// provides it), a small circuit breaker fails fast while the daemon is
// clearly down, and a dropped events stream reconnects with ?offset to
// resume where it left off. SIGINT/SIGTERM cancels promptly, even
// mid-backoff.
//
// Against a cluster, -server takes the whole membership as a
// comma-separated list. A connection failure rotates to the next
// endpoint (any node answers any request — non-owners forward and
// proxy), and a spec that is a JSON *array* fans out: `acelab run`
// and `acelab optimize` spread the elements across the endpoints
// concurrently and print the results merged into one JSON array in
// spec order.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: acelab [-server URL] <command> [arg]

commands:
  submit   [spec|-]  submit a job spec (JSON; "-"/no arg = stdin), print its status
  run      [spec|-]  submit, wait for completion, print the result document
  optimize [spec|-]  submit the spec as a configuration search (injects "optimize": {}
                     when absent), wait, print the search result document
  status   <id>      print one job's status
  result   <id>      print a finished job's result document
  events   <id>      stream a job's telemetry JSONL (use -no-follow to dump and exit)
  cancel   <id>      cancel a queued or running job
  jobs               list all retained jobs
  metrics            print daemon metrics
  health             print daemon health (includes peer liveness on a cluster node)
`)
	os.Exit(2)
}

func main() {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "acelabd base URL, or a comma-separated list of cluster endpoints")
		poll      = flag.Duration("poll", 500*time.Millisecond, "status poll interval for run")
		noFollow  = flag.Bool("no-follow", false, "events: dump buffered events and exit")
		retries   = flag.Int("retries", 8, "max attempts per request across backpressure (429), connection errors, and 5xx")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout (streaming requests are exempt)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var endpoints []string
	for _, u := range strings.Split(*serverURL, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			endpoints = append(endpoints, u)
		}
	}
	if len(endpoints) == 0 {
		fmt.Fprintln(os.Stderr, "acelab: -server: no endpoints")
		os.Exit(2)
	}
	c := client{
		base:    endpoints[0],
		retries: *retries,
		ctx:     ctx,
		httpc:   &http.Client{Timeout: *timeout},
		brk:     &breaker{threshold: 5, cooldown: 10 * time.Second},
	}
	if len(endpoints) > 1 {
		c.endpoints = endpoints
		c.cur = new(int32)
	}
	cmd, arg := flag.Arg(0), flag.Arg(1)

	var err error
	switch cmd {
	case "submit":
		err = c.submit(arg, false, *poll)
	case "run":
		err = c.submit(arg, true, *poll)
	case "optimize":
		err = c.optimize(arg, *poll)
	case "status":
		err = c.get("/v1/jobs/"+arg, os.Stdout)
	case "result":
		err = c.get("/v1/jobs/"+arg+"/result", os.Stdout)
	case "events":
		err = c.streamEvents(arg, !*noFollow, os.Stdout)
	case "cancel":
		err = c.do(http.MethodDelete, "/v1/jobs/"+arg, nil, os.Stdout)
	case "jobs":
		err = c.get("/v1/jobs", os.Stdout)
	case "metrics":
		err = c.get("/metrics", os.Stdout)
	case "health":
		err = c.get("/healthz", os.Stdout)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "acelab: %v\n", err)
		os.Exit(1)
	}
}

// client wraps the daemon's base URL with the pieces that make it
// partition-tolerant: a retry budget shared by every transient-failure
// path, a cancellation context (SIGINT/SIGTERM), a timeout-bearing
// HTTP client, and a circuit breaker. The zero value still works
// (tests build one with just base and retries): nil fields degrade to
// context.Background, http.DefaultClient, and no breaker.
type client struct {
	base    string
	retries int
	ctx     context.Context
	httpc   *http.Client
	brk     *breaker

	// endpoints, when set, is the full cluster membership; base is then
	// ignored and requests go to endpoints[*cur % len], a cursor shared
	// by every copy of this client so a rotation (after a connection
	// failure) sticks for subsequent requests.
	endpoints []string
	cur       *int32
}

// baseURL returns the endpoint requests currently target.
func (c client) baseURL() string {
	if len(c.endpoints) == 0 || c.cur == nil {
		return c.base
	}
	i := int(atomic.LoadInt32(c.cur)) % len(c.endpoints)
	if i < 0 {
		i += len(c.endpoints)
	}
	return c.endpoints[i]
}

// rotate advances to the next endpoint after a connection failure —
// in a cluster any node serves any request (forwarding and proxying
// cover ownership), so the client walks the membership rather than
// hammering a dead node.
func (c client) rotate() {
	if len(c.endpoints) > 1 && c.cur != nil {
		atomic.AddInt32(c.cur, 1)
		fmt.Fprintf(os.Stderr, "acelab: endpoint unreachable, rotating to %s\n", c.baseURL())
	}
}

// context returns the client's cancellation context.
func (c client) context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// httpClient returns the client used for bounded (non-streaming)
// requests.
func (c client) httpClient() *http.Client {
	if c.httpc == nil {
		return http.DefaultClient
	}
	return c.httpc
}

// now is time.Now, swappable so breaker tests control the clock.
var now = time.Now

// breaker is a minimal circuit breaker: threshold consecutive
// connection-level failures open the circuit, and while it is open
// every request fails fast instead of waiting out a timeout against a
// daemon that is clearly down. After cooldown the next request goes
// through as the probe; its outcome re-closes or re-opens the circuit.
type breaker struct {
	threshold int
	cooldown  time.Duration
	fails     int
	openUntil time.Time
}

// allow reports whether a request may proceed, with the remaining
// cooldown when it may not.
func (b *breaker) allow() (bool, time.Duration) {
	if b == nil || b.openUntil.IsZero() {
		return true, 0
	}
	if left := b.openUntil.Sub(now()); left > 0 {
		return false, left
	}
	// Cooldown over: let one probe through; failure() re-opens.
	b.openUntil = time.Time{}
	return true, 0
}

// success records a reachable daemon (any HTTP response counts — a
// 429 or 500 is still a live daemon) and closes the circuit.
func (b *breaker) success() {
	if b != nil {
		b.fails, b.openUntil = 0, time.Time{}
	}
}

// failure records one connection-level failure, opening the circuit at
// the threshold.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = now().Add(b.cooldown)
	}
}

// errCircuitOpen marks fail-fast rejections from the breaker.
var errCircuitOpen = errors.New("circuit open")

// roundTrip performs one request through the breaker, reporting
// connection-level outcomes to it. Any HTTP response — success or
// error status — closes the circuit: the daemon answered.
func (c client) roundTrip(req *http.Request) (*http.Response, error) {
	if ok, left := c.brk.allow(); !ok {
		return nil, fmt.Errorf("%w: daemon unreachable, retrying in %s", errCircuitOpen, left.Round(time.Millisecond))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		c.brk.failure()
		c.rotate()
		return nil, err
	}
	c.brk.success()
	return resp, nil
}

// get fetches path and copies the body to out, treating non-2xx as an
// error carrying the body.
func (c client) get(path string, out io.Writer) error {
	return c.do(http.MethodGet, path, nil, out)
}

// do performs one request. Non-2xx responses become errors with the
// response body (the daemon's JSON error document) attached.
func (c client) do(method, path string, body io.Reader, out io.Writer) error {
	req, err := http.NewRequestWithContext(c.context(), method, c.baseURL()+path, body)
	if err != nil {
		return err
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(b)))
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// jobStatus is the slice of the daemon's status document the client
// needs for waiting.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// readSpec resolves the spec argument: "-" or empty reads stdin.
func readSpec(arg string) (string, error) {
	if arg != "" && arg != "-" {
		return arg, nil
	}
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// sleep is time.Sleep, swappable so the retry-loop tests run fast.
var sleep = time.Sleep

// jitter spreads a backoff pause by up to +25% so a fleet of clients
// rejected together does not resubmit together. Tests pin it to the
// identity.
var jitter = func(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d/4)+1))
}

// pause sleeps for d or until the client's context is canceled,
// returning the context's error in that case — a SIGINT mid-backoff
// exits promptly instead of waiting out the full pause.
func (c client) pause(d time.Duration) error {
	ctx := c.context()
	if err := ctx.Err(); err != nil {
		return err
	}
	woke := make(chan struct{})
	go func() {
		sleep(d)
		close(woke)
	}()
	select {
	case <-woke:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// postJob POSTs the spec with one bounded retry loop over every
// transient failure mode:
//
//   - 429 (queue full): the daemon's Retry-After header estimates the
//     queue's drain time, so the client waits that long (capped).
//   - Connection errors and 5xx (a restarting daemon, a partition, an
//     injected fault): jittered exponential backoff.
//
// Both paths share the c.retries attempt budget and honor cancellation
// between pauses. Any other non-success status — and the final
// transient failure once attempts are exhausted — surfaces as an error
// carrying the daemon's response body.
func (c client) postJob(spec string) ([]byte, error) {
	if c.retries < 1 {
		c.retries = 1
	}
	var lastErr error
	for attempt := 1; attempt <= c.retries; attempt++ {
		req, err := http.NewRequestWithContext(c.context(), http.MethodPost, c.baseURL()+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		var retryHeader, reason string
		resp, err := c.roundTrip(req)
		switch {
		case err != nil && c.context().Err() != nil:
			return nil, err // canceled: not worth retrying
		case err != nil:
			lastErr = fmt.Errorf("submit: %w", err)
			reason = "daemon unreachable"
		default:
			body, _ := io.ReadAll(resp.Body)
			retryHeader = resp.Header.Get("Retry-After")
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
				return body, nil
			case resp.StatusCode == http.StatusTooManyRequests:
				reason = "queue full"
			case resp.StatusCode >= 500:
				reason = "daemon error"
			default:
				return nil, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			}
			lastErr = fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		if attempt == c.retries {
			return nil, lastErr
		}
		wait := jitter(retryWait(retryHeader, attempt))
		fmt.Fprintf(os.Stderr, "acelab: %s, retrying in %s (attempt %d/%d)\n",
			reason, wait, attempt, c.retries)
		if err := c.pause(wait); err != nil {
			return nil, fmt.Errorf("submit: %w", err)
		}
	}
	return nil, lastErr
}

// streamEvents follows one job's telemetry stream, resuming after a
// dropped connection: the client counts the bytes it has delivered and
// reconnects with ?offset so the daemon replays nothing and skips
// nothing. Reconnects draw on the c.retries budget with jittered
// exponential backoff; delivering any bytes refills the budget, so a
// long stream over a flaky link keeps going as long as it keeps making
// progress. HTTP error statuses (unknown job, bad offset) are
// terminal, not retried.
func (c client) streamEvents(id string, follow bool, out io.Writer) error {
	offset := 0
	attempt := 0
	for {
		path := fmt.Sprintf("/v1/jobs/%s/events?offset=%d", id, offset)
		if !follow {
			path += "&follow=0"
		}
		n, err := c.copyStream(path, out)
		offset += n
		if err == nil {
			return nil
		}
		var terminal *statusError
		if errors.As(err, &terminal) || c.context().Err() != nil {
			return err
		}
		if n > 0 {
			attempt = 0 // progress: the link works, keep following
		}
		attempt++
		if attempt >= c.retries {
			return fmt.Errorf("events: %w", err)
		}
		wait := jitter(retryWait("", attempt))
		fmt.Fprintf(os.Stderr, "acelab: events stream dropped (%v), resuming at offset %d in %s\n",
			err, offset, wait)
		if perr := c.pause(wait); perr != nil {
			return fmt.Errorf("events: %w", perr)
		}
	}
}

// statusError is a non-2xx HTTP response: the daemon answered and
// meant it, so retrying cannot help.
type statusError struct{ msg string }

// Error returns the daemon's rejection.
func (e *statusError) Error() string { return e.msg }

// copyStream GETs one streaming path without an overall timeout
// (event streams legitimately run for the life of the job) and copies
// the body to out, returning how many bytes were delivered before the
// stream ended or failed.
func (c client) copyStream(path string, out io.Writer) (int, error) {
	req, err := http.NewRequestWithContext(c.context(), http.MethodGet, c.baseURL()+path, nil)
	if err != nil {
		return 0, err
	}
	if ok, left := c.brk.allow(); !ok {
		return 0, fmt.Errorf("%w: daemon unreachable, retrying in %s", errCircuitOpen, left.Round(time.Millisecond))
	}
	resp, err := streamClient.Do(req)
	if err != nil {
		c.brk.failure()
		c.rotate()
		return 0, err
	}
	c.brk.success()
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(resp.Body)
		return 0, &statusError{msg: fmt.Sprintf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(b)))}
	}
	n, err := io.Copy(out, resp.Body)
	return int(n), err
}

// streamClient carries streaming requests: no overall timeout — an
// event stream follows its job for as long as the job runs.
var streamClient = &http.Client{}

// retryWait picks the pause before the next submit attempt: the
// daemon's Retry-After seconds when present (capped at a minute so a
// pessimistic estimate cannot stall the client), else one second
// doubling per attempt up to 30s.
func retryWait(header string, attempt int) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > time.Minute {
			d = time.Minute
		}
		return d
	}
	d := time.Second << uint(attempt-1)
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// submit POSTs the spec (an argument, or stdin for "-"/empty). With
// wait set it polls the job to a terminal state and prints the result
// document; otherwise it prints the submission status. A JSON-array
// spec fans out across the cluster (runBatch).
func (c client) submit(arg string, wait bool, poll time.Duration) error {
	spec, err := readSpec(arg)
	if err != nil {
		return err
	}
	if specs, ok := batchSpecs(spec); ok {
		return c.runBatch(specs, wait, poll)
	}
	return c.runSpec(spec, wait, poll, os.Stdout)
}

// optimize submits the spec as a configuration-search job: a spec
// without an "optimize" clause gets the empty one (all search defaults
// — GA over the full widened space), then it runs like `acelab run`.
// A JSON-array spec fans each element out as its own search.
func (c client) optimize(arg string, poll time.Duration) error {
	spec, err := readSpec(arg)
	if err != nil {
		return err
	}
	if specs, ok := batchSpecs(spec); ok {
		for i := range specs {
			if specs[i], err = withOptimize(specs[i]); err != nil {
				return err
			}
		}
		return c.runBatch(specs, true, poll)
	}
	spec, err = withOptimize(spec)
	if err != nil {
		return err
	}
	return c.runSpec(spec, true, poll, os.Stdout)
}

// batchSpecs detects a JSON-array spec and splits it into elements.
// Anything that does not parse as an array is a single spec ([ with
// broken JSON included — the daemon reports the malformed spec with a
// better error than the client could).
func batchSpecs(spec string) ([]string, bool) {
	if !strings.HasPrefix(strings.TrimSpace(spec), "[") {
		return nil, false
	}
	var elems []json.RawMessage
	if err := json.Unmarshal([]byte(spec), &elems); err != nil {
		return nil, false
	}
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = string(e)
	}
	return out, true
}

// runBatch spreads a list of specs across the cluster concurrently —
// element i starts on endpoint i mod len(endpoints), with its own
// breaker and rotation cursor so one slow or dead node only reroutes
// the specs that hit it — and prints the per-spec documents merged
// into one JSON array in spec order. A failed element contributes
// null and its error is reported (and the exit status reflects it)
// after every element has settled, so one bad spec does not abandon
// the rest of the batch.
func (c client) runBatch(specs []string, wait bool, poll time.Duration) error {
	if len(specs) == 0 {
		_, err := os.Stdout.WriteString("[]\n")
		return err
	}
	type result struct {
		buf bytes.Buffer
		err error
	}
	results := make([]result, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := c.forWorker(i)
			results[i].err = cc.runSpec(specs[i], wait, poll, &results[i].buf)
		}(i)
	}
	wg.Wait()
	var errs []error
	os.Stdout.WriteString("[\n")
	for i := range results {
		if i > 0 {
			os.Stdout.WriteString(",\n")
		}
		if results[i].err != nil {
			errs = append(errs, fmt.Errorf("spec %d: %w", i, results[i].err))
			os.Stdout.WriteString("null")
			continue
		}
		os.Stdout.Write(bytes.TrimRight(results[i].buf.Bytes(), "\n"))
	}
	os.Stdout.WriteString("\n]\n")
	return errors.Join(errs...)
}

// forWorker derives one batch element's client: a private breaker (a
// node that is down for one element must not fail-fast its siblings
// talking to healthy nodes) and a private cursor parked on endpoint
// i, which spreads the batch across the membership.
func (c client) forWorker(i int) client {
	cc := c
	cc.brk = &breaker{threshold: 5, cooldown: 10 * time.Second}
	if n := len(c.endpoints); n > 0 {
		cur := int32(i % n)
		cc.cur = &cur
	}
	return cc
}

// withOptimize ensures the spec JSON has an optimize clause, injecting
// the empty one when absent. All other fields pass through untouched
// so server-side validation still sees exactly what the user wrote.
func withOptimize(spec string) (string, error) {
	if strings.TrimSpace(spec) == "" {
		spec = "{}"
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(spec), &m); err != nil {
		return "", fmt.Errorf("optimize: invalid spec JSON: %w", err)
	}
	if m == nil {
		m = map[string]json.RawMessage{}
	}
	if _, ok := m["optimize"]; !ok {
		m["optimize"] = json.RawMessage("{}")
	}
	b, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// runSpec submits a resolved spec with retry, then either prints the
// submission status or waits for the result document, writing to out
// (stdout for single specs, a per-element buffer in a batch).
func (c client) runSpec(spec string, wait bool, poll time.Duration, out io.Writer) error {
	body, err := c.postJob(spec)
	if err != nil {
		return err
	}
	if !wait {
		_, err := out.Write(body)
		return err
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("submit: decode status: %w", err)
	}
	// Poll to a terminal state, tolerating up to c.retries consecutive
	// failed polls (a daemon mid-restart answers nothing for a moment;
	// the job itself is journaled and survives).
	failed := 0
	for st.State == "queued" || st.State == "running" {
		if err := c.pause(poll); err != nil {
			return err
		}
		var buf strings.Builder
		if err := c.get("/v1/jobs/"+st.ID, &buf); err != nil {
			failed++
			if failed >= c.retries || c.context().Err() != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "acelab: poll failed (%v), retrying\n", err)
			continue
		}
		failed = 0
		if err := json.Unmarshal([]byte(buf.String()), &st); err != nil {
			return fmt.Errorf("poll: decode status: %w", err)
		}
	}
	if st.State != "done" {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	return c.get("/v1/jobs/"+st.ID+"/result", out)
}
