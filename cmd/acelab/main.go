// Command acelab is the client for the acelabd experiment daemon: it
// submits experiment jobs, polls them, and fetches results, telemetry
// streams, and daemon metrics over the HTTP API in docs/API.md.
//
//	acelab submit '{"benchmarks":["gzip"]}'   # submit, print status
//	acelab run '{"benchmarks":["gzip"]}'      # submit, wait, print result
//	acelab optimize '{"benchmarks":["gzip"]}' # configuration search, wait, print result
//	acelab status j1
//	acelab result j1
//	acelab events j1                          # follows while running
//	acelab cancel j1
//	acelab jobs
//	acelab metrics
//
// A spec argument of "-" (or none) reads the JSON spec from stdin; an
// empty object {} is the full default evaluation.
//
// When the daemon's queue is full it answers 429 with a Retry-After
// estimate; submit, run, and optimize honor it with a bounded retry
// loop (-retries) instead of failing on the first rejection.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: acelab [-server URL] <command> [arg]

commands:
  submit   [spec|-]  submit a job spec (JSON; "-"/no arg = stdin), print its status
  run      [spec|-]  submit, wait for completion, print the result document
  optimize [spec|-]  submit the spec as a configuration search (injects "optimize": {}
                     when absent), wait, print the search result document
  status   <id>      print one job's status
  result   <id>      print a finished job's result document
  events   <id>      stream a job's telemetry JSONL (use -no-follow to dump and exit)
  cancel   <id>      cancel a queued or running job
  jobs               list all retained jobs
  metrics            print daemon metrics
`)
	os.Exit(2)
}

func main() {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "acelabd base URL")
		poll      = flag.Duration("poll", 500*time.Millisecond, "status poll interval for run")
		noFollow  = flag.Bool("no-follow", false, "events: dump buffered events and exit")
		retries   = flag.Int("retries", 8, "max submit attempts while the daemon reports backpressure (429)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	c := client{base: strings.TrimRight(*serverURL, "/"), retries: *retries}
	cmd, arg := flag.Arg(0), flag.Arg(1)

	var err error
	switch cmd {
	case "submit":
		err = c.submit(arg, false, *poll)
	case "run":
		err = c.submit(arg, true, *poll)
	case "optimize":
		err = c.optimize(arg, *poll)
	case "status":
		err = c.get("/v1/jobs/"+arg, os.Stdout)
	case "result":
		err = c.get("/v1/jobs/"+arg+"/result", os.Stdout)
	case "events":
		path := "/v1/jobs/" + arg + "/events"
		if *noFollow {
			path += "?follow=0"
		}
		err = c.get(path, os.Stdout)
	case "cancel":
		err = c.do(http.MethodDelete, "/v1/jobs/"+arg, nil, os.Stdout)
	case "jobs":
		err = c.get("/v1/jobs", os.Stdout)
	case "metrics":
		err = c.get("/metrics", os.Stdout)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "acelab: %v\n", err)
		os.Exit(1)
	}
}

// client wraps the daemon's base URL and the submit retry budget.
type client struct {
	base    string
	retries int
}

// get fetches path and copies the body to out, treating non-2xx as an
// error carrying the body.
func (c client) get(path string, out io.Writer) error {
	return c.do(http.MethodGet, path, nil, out)
}

// do performs one request. Non-2xx responses become errors with the
// response body (the daemon's JSON error document) attached.
func (c client) do(method, path string, body io.Reader, out io.Writer) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(b)))
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// jobStatus is the slice of the daemon's status document the client
// needs for waiting.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// readSpec resolves the spec argument: "-" or empty reads stdin.
func readSpec(arg string) (string, error) {
	if arg != "" && arg != "-" {
		return arg, nil
	}
	b, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// sleep is time.Sleep, swappable so the retry-loop tests run fast.
var sleep = time.Sleep

// postJob POSTs the spec with a bounded retry loop on backpressure.
// A 429 (queue full) is not a failure: the daemon's Retry-After header
// estimates the queue's drain time, so the client waits that long
// (capped, with an exponential fallback when the header is absent) and
// resubmits, up to c.retries attempts. Any other non-success status —
// and the final 429 once attempts are exhausted — surfaces as an error
// carrying the daemon's response body.
func (c client) postJob(spec string) ([]byte, error) {
	if c.retries < 1 {
		c.retries = 1
	}
	var lastErr error
	for attempt := 1; attempt <= c.retries; attempt++ {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/jobs", strings.NewReader(spec))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			return body, nil
		}
		lastErr = fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode != http.StatusTooManyRequests || attempt == c.retries {
			return nil, lastErr
		}
		wait := retryWait(resp.Header.Get("Retry-After"), attempt)
		fmt.Fprintf(os.Stderr, "acelab: queue full, retrying in %s (attempt %d/%d)\n",
			wait, attempt, c.retries)
		sleep(wait)
	}
	return nil, lastErr
}

// retryWait picks the pause before the next submit attempt: the
// daemon's Retry-After seconds when present (capped at a minute so a
// pessimistic estimate cannot stall the client), else one second
// doubling per attempt up to 30s.
func retryWait(header string, attempt int) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > time.Minute {
			d = time.Minute
		}
		return d
	}
	d := time.Second << uint(attempt-1)
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// submit POSTs the spec (an argument, or stdin for "-"/empty). With
// wait set it polls the job to a terminal state and prints the result
// document; otherwise it prints the submission status.
func (c client) submit(arg string, wait bool, poll time.Duration) error {
	spec, err := readSpec(arg)
	if err != nil {
		return err
	}
	return c.runSpec(spec, wait, poll)
}

// optimize submits the spec as a configuration-search job: a spec
// without an "optimize" clause gets the empty one (all search defaults
// — GA over the full widened space), then it runs like `acelab run`.
func (c client) optimize(arg string, poll time.Duration) error {
	spec, err := readSpec(arg)
	if err != nil {
		return err
	}
	spec, err = withOptimize(spec)
	if err != nil {
		return err
	}
	return c.runSpec(spec, true, poll)
}

// withOptimize ensures the spec JSON has an optimize clause, injecting
// the empty one when absent. All other fields pass through untouched
// so server-side validation still sees exactly what the user wrote.
func withOptimize(spec string) (string, error) {
	if strings.TrimSpace(spec) == "" {
		spec = "{}"
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(spec), &m); err != nil {
		return "", fmt.Errorf("optimize: invalid spec JSON: %w", err)
	}
	if m == nil {
		m = map[string]json.RawMessage{}
	}
	if _, ok := m["optimize"]; !ok {
		m["optimize"] = json.RawMessage("{}")
	}
	b, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// runSpec submits a resolved spec with retry, then either prints the
// submission status or waits for the result document.
func (c client) runSpec(spec string, wait bool, poll time.Duration) error {
	body, err := c.postJob(spec)
	if err != nil {
		return err
	}
	if !wait {
		_, err := os.Stdout.Write(body)
		return err
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("submit: decode status: %w", err)
	}
	for st.State == "queued" || st.State == "running" {
		time.Sleep(poll)
		var buf strings.Builder
		if err := c.get("/v1/jobs/"+st.ID, &buf); err != nil {
			return err
		}
		if err := json.Unmarshal([]byte(buf.String()), &st); err != nil {
			return fmt.Errorf("poll: decode status: %w", err)
		}
	}
	if st.State != "done" {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	return c.get("/v1/jobs/"+st.ID+"/result", os.Stdout)
}
