package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeSleep records requested pauses instead of sleeping, and pins
// jitter to the identity so tests can assert exact backoff values.
func fakeSleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	oldSleep, oldJitter := sleep, jitter
	sleep = func(d time.Duration) { slept = append(slept, d) }
	jitter = func(d time.Duration) time.Duration { return d }
	t.Cleanup(func() { sleep, jitter = oldSleep, oldJitter })
	return &slept
}

// TestPostJobRetriesBackpressure pins the backpressure bugfix: a 429
// with Retry-After is retried (honoring the header), and the eventual
// acceptance returns the accepted status body.
func TestPostJobRetriesBackpressure(t *testing.T) {
	slept := fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8}
	body, err := c.postJob(`{}`)
	if err != nil {
		t.Fatalf("postJob: %v", err)
	}
	if calls != 3 {
		t.Errorf("made %d requests, want 3 (two 429s then accepted)", calls)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID != "j1" {
		t.Errorf("accepted body %q not returned (err %v)", body, err)
	}
	if len(*slept) != 2 || (*slept)[0] != 2*time.Second || (*slept)[1] != 2*time.Second {
		t.Errorf("waits %v, want two 2s pauses from Retry-After", *slept)
	}
}

// TestPostJobExhaustsRetries checks the loop is bounded and surfaces
// the daemon's last rejection.
func TestPostJobExhaustsRetries(t *testing.T) {
	fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"job queue full (3 queued)"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 4}
	_, err := c.postJob(`{}`)
	if err == nil {
		t.Fatal("postJob succeeded against a permanently full queue")
	}
	if calls != 4 {
		t.Errorf("made %d requests, want exactly the 4-attempt budget", calls)
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Errorf("error %q does not carry the daemon's rejection", err)
	}
}

// TestPostJobNoRetryOnOtherErrors checks only 429 triggers the loop:
// a 400 fails immediately.
func TestPostJobNoRetryOnOtherErrors(t *testing.T) {
	fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"invalid job spec"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8}
	if _, err := c.postJob(`{`); err == nil {
		t.Fatal("postJob accepted a 400")
	}
	if calls != 1 {
		t.Errorf("made %d requests, want 1 (no retry on 400)", calls)
	}
}

// TestPostJobHonorsCancellation pins the SIGINT regression: a context
// canceled while the retry loop is waiting out a backoff pause must
// abort the loop promptly instead of sleeping on and resubmitting.
func TestPostJobHonorsCancellation(t *testing.T) {
	oldSleep, oldJitter := sleep, jitter
	jitter = func(d time.Duration) time.Duration { return d }
	t.Cleanup(func() { sleep, jitter = oldSleep, oldJitter })

	ctx, cancel := context.WithCancel(context.Background())
	// The stubbed sleep is the moment the signal arrives: cancel and
	// never wake, as a real 30s pause interrupted by SIGINT would.
	sleep = func(d time.Duration) {
		cancel()
		select {} // block forever; pause must return via ctx.Done
	}

	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"job queue full"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8, ctx: ctx}
	done := make(chan error, 1)
	go func() {
		_, err := c.postJob(`{}`)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("postJob returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("postJob did not return after cancellation mid-backoff")
	}
	if calls != 1 {
		t.Errorf("made %d requests, want 1 (no resubmit after cancel)", calls)
	}
}

// TestPostJobRetriesServerErrors checks 5xx joins the retry loop: a
// daemon answering 500 (an injected service fault, a mid-restart blip)
// is retried with backoff rather than failed on first contact.
func TestPostJobRetriesServerErrors(t *testing.T) {
	slept := fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"injected service fault"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8}
	if _, err := c.postJob(`{}`); err != nil {
		t.Fatalf("postJob: %v", err)
	}
	if calls != 3 {
		t.Errorf("made %d requests, want 3 (two 500s then accepted)", calls)
	}
	// No Retry-After on a 500: exponential fallback, 1s then 2s.
	if len(*slept) != 2 || (*slept)[0] != time.Second || (*slept)[1] != 2*time.Second {
		t.Errorf("waits %v, want [1s 2s] exponential fallback", *slept)
	}
}

// TestBreakerOpensAndRecovers drives the circuit breaker through its
// full cycle: consecutive connection failures open it, requests fail
// fast while it is open, and the post-cooldown probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	oldNow := now
	now = func() time.Time { return clock }
	t.Cleanup(func() { now = oldNow })

	b := &breaker{threshold: 3, cooldown: 10 * time.Second}
	for i := 0; i < 3; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("breaker open after %d failures, threshold 3", i)
		}
		b.failure()
	}
	if ok, left := b.allow(); ok || left != 10*time.Second {
		t.Fatalf("breaker allow after threshold = (%v, %v), want open for 10s", ok, left)
	}
	clock = clock.Add(5 * time.Second)
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker closed mid-cooldown")
	}
	clock = clock.Add(6 * time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker refused the post-cooldown probe")
	}
	b.success()
	b.failure() // one failure after recovery must not re-open
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker re-opened after a single post-recovery failure")
	}
}

// TestStreamEventsResumesByOffset drops the events stream mid-body and
// checks the client reconnects with ?offset=<bytes delivered> and
// stitches the halves together without duplication.
func TestStreamEventsResumesByOffset(t *testing.T) {
	fakeSleep(t)
	full := "{\"ev\":1}\n{\"ev\":2}\n{\"ev\":3}\n"
	cut := len(full) / 2
	var offsets []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		off := r.URL.Query().Get("offset")
		offsets = append(offsets, off)
		n := 0
		fmt.Sscan(off, &n)
		if len(offsets) == 1 {
			// First connection: send half, then kill the connection
			// without a clean close.
			w.Header().Set("Content-Length", strconv.Itoa(len(full)-n))
			w.Write([]byte(full[n : n+cut]))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Write([]byte(full[n:]))
	}))
	defer srv.Close()

	var out bytes.Buffer
	c := client{base: srv.URL, retries: 4}
	if err := c.streamEvents("j1", true, &out); err != nil {
		t.Fatalf("streamEvents: %v", err)
	}
	if out.String() != full {
		t.Errorf("stitched stream = %q, want %q", out.String(), full)
	}
	if len(offsets) != 2 || offsets[0] != "0" || offsets[1] != strconv.Itoa(cut) {
		t.Errorf("offsets %v, want [0 %d]", offsets, cut)
	}
}

// TestStreamEventsTerminalStatus checks an HTTP error status is not
// retried: the daemon answered, so reconnecting cannot help.
func TestStreamEventsTerminalStatus(t *testing.T) {
	fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"unknown job"}`))
	}))
	defer srv.Close()

	var out bytes.Buffer
	c := client{base: srv.URL, retries: 8}
	if err := c.streamEvents("nope", true, &out); err == nil {
		t.Fatal("streamEvents retried through a 404")
	}
	if calls != 1 {
		t.Errorf("made %d requests, want 1 (no retry on 404)", calls)
	}
}

func TestRetryWait(t *testing.T) {
	for _, tt := range []struct {
		header  string
		attempt int
		want    time.Duration
	}{
		{"2", 1, 2 * time.Second},
		{"3600", 1, time.Minute}, // header capped
		{"", 1, time.Second},     // fallback doubles per attempt
		{"", 3, 4 * time.Second},
		{"", 10, 30 * time.Second}, // fallback capped
		{"nonsense", 2, 2 * time.Second},
	} {
		if got := retryWait(tt.header, tt.attempt); got != tt.want {
			t.Errorf("retryWait(%q, %d) = %v, want %v", tt.header, tt.attempt, got, tt.want)
		}
	}
}

func TestWithOptimize(t *testing.T) {
	out, err := withOptimize(`{"benchmarks":["gzip"]}`)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatal(err)
	}
	if string(m["optimize"]) != "{}" {
		t.Errorf("optimize clause not injected: %s", out)
	}
	if string(m["benchmarks"]) != `["gzip"]` {
		t.Errorf("benchmarks not preserved: %s", out)
	}

	// A user-supplied clause is left alone.
	out, err = withOptimize(`{"optimize":{"strategy":"sa"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"strategy":"sa"`) {
		t.Errorf("user optimize clause rewritten: %s", out)
	}

	// Empty input means the default spec.
	if out, err = withOptimize(""); err != nil || !strings.Contains(out, `"optimize":{}`) {
		t.Errorf("empty spec: %q, %v", out, err)
	}

	if _, err := withOptimize(`nonsense`); err == nil {
		t.Error("invalid JSON accepted")
	}
}
