package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeSleep records requested pauses instead of sleeping.
func fakeSleep(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	old := sleep
	sleep = func(d time.Duration) { slept = append(slept, d) }
	t.Cleanup(func() { sleep = old })
	return &slept
}

// TestPostJobRetriesBackpressure pins the backpressure bugfix: a 429
// with Retry-After is retried (honoring the header), and the eventual
// acceptance returns the accepted status body.
func TestPostJobRetriesBackpressure(t *testing.T) {
	slept := fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"job queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8}
	body, err := c.postJob(`{}`)
	if err != nil {
		t.Fatalf("postJob: %v", err)
	}
	if calls != 3 {
		t.Errorf("made %d requests, want 3 (two 429s then accepted)", calls)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID != "j1" {
		t.Errorf("accepted body %q not returned (err %v)", body, err)
	}
	if len(*slept) != 2 || (*slept)[0] != 2*time.Second || (*slept)[1] != 2*time.Second {
		t.Errorf("waits %v, want two 2s pauses from Retry-After", *slept)
	}
}

// TestPostJobExhaustsRetries checks the loop is bounded and surfaces
// the daemon's last rejection.
func TestPostJobExhaustsRetries(t *testing.T) {
	fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"job queue full (3 queued)"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 4}
	_, err := c.postJob(`{}`)
	if err == nil {
		t.Fatal("postJob succeeded against a permanently full queue")
	}
	if calls != 4 {
		t.Errorf("made %d requests, want exactly the 4-attempt budget", calls)
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Errorf("error %q does not carry the daemon's rejection", err)
	}
}

// TestPostJobNoRetryOnOtherErrors checks only 429 triggers the loop:
// a 400 fails immediately.
func TestPostJobNoRetryOnOtherErrors(t *testing.T) {
	fakeSleep(t)
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"invalid job spec"}`))
	}))
	defer srv.Close()

	c := client{base: srv.URL, retries: 8}
	if _, err := c.postJob(`{`); err == nil {
		t.Fatal("postJob accepted a 400")
	}
	if calls != 1 {
		t.Errorf("made %d requests, want 1 (no retry on 400)", calls)
	}
}

func TestRetryWait(t *testing.T) {
	for _, tt := range []struct {
		header  string
		attempt int
		want    time.Duration
	}{
		{"2", 1, 2 * time.Second},
		{"3600", 1, time.Minute}, // header capped
		{"", 1, time.Second},     // fallback doubles per attempt
		{"", 3, 4 * time.Second},
		{"", 10, 30 * time.Second}, // fallback capped
		{"nonsense", 2, 2 * time.Second},
	} {
		if got := retryWait(tt.header, tt.attempt); got != tt.want {
			t.Errorf("retryWait(%q, %d) = %v, want %v", tt.header, tt.attempt, got, tt.want)
		}
	}
}

func TestWithOptimize(t *testing.T) {
	out, err := withOptimize(`{"benchmarks":["gzip"]}`)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatal(err)
	}
	if string(m["optimize"]) != "{}" {
		t.Errorf("optimize clause not injected: %s", out)
	}
	if string(m["benchmarks"]) != `["gzip"]` {
		t.Errorf("benchmarks not preserved: %s", out)
	}

	// A user-supplied clause is left alone.
	out, err = withOptimize(`{"optimize":{"strategy":"sa"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"strategy":"sa"`) {
		t.Errorf("user optimize clause rewritten: %s", out)
	}

	// Empty input means the default spec.
	if out, err = withOptimize(""); err != nil || !strings.Contains(out, `"optimize":{}`) {
		t.Errorf("empty spec: %q, %v", out, err)
	}

	if _, err := withOptimize(`nonsense`); err == nil {
		t.Error("invalid JSON accepted")
	}
}
