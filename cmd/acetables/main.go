// Command acetables regenerates every table and figure of the paper's
// evaluation (DESIGN.md §5) by running the whole benchmark suite under
// the baseline, BBV, and hotspot schemes.
//
// Usage:
//
//	acetables              # everything
//	acetables -table 4     # one table
//	acetables -figure 3    # one figure
//	acetables -scale 10    # scale divisor (default 10; 1 = paper scale)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1-6)")
	figure := flag.Int("figure", 0, "print only this figure (1, 3, 4)")
	scale := flag.Uint64("scale", 10, "scale divisor for instruction-count parameters")
	threeCU := flag.Bool("threecu", false, "run the three-CU extension (adds the issue-queue unit) and print its table")
	jsonOut := flag.Bool("json", false, "emit the raw comparison results as JSON instead of tables")
	detectors := flag.Bool("detectors", false, "run the phase-detector comparison (BBV vs working-set signatures vs hotspot)")
	flag.Parse()

	opt := experiment.OptionsAtScale(*scale)
	if *threeCU {
		opt = opt.WithThreeCU()
	}
	if *detectors {
		start := time.Now()
		var cs []*experiment.DetectorComparison
		for _, spec := range workload.Suite() {
			c, err := experiment.CompareDetectors(spec, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
				os.Exit(1)
			}
			cs = append(cs, c)
		}
		fmt.Fprintf(os.Stderr, "acetables: 28 simulations in %.1fs\n", time.Since(start).Seconds())
		experiment.DetectorTable(os.Stdout, cs)
		return
	}
	start := time.Now()
	res, err := experiment.Collect(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acetables: 21 simulations in %.1fs\n", time.Since(start).Seconds())

	w := os.Stdout
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Comparisons); err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *threeCU {
		res.ExtensionThreeCU(w)
		return
	}
	switch {
	case *table == 1:
		res.Table1(w)
	case *table == 2:
		res.Table2(w)
	case *table == 3:
		res.Table3(w)
	case *table == 4:
		res.Table4(w)
	case *table == 5:
		res.Table5(w)
	case *table == 6:
		res.Table6(w)
	case *figure == 1:
		res.Figure1(w)
	case *figure == 3:
		res.Figure3(w)
	case *figure == 4:
		res.Figure4(w)
	case *table == 0 && *figure == 0:
		res.WriteAll(w)
	default:
		fmt.Fprintf(os.Stderr, "acetables: no such table/figure\n")
		os.Exit(2)
	}
}
