// Command acetables regenerates every table and figure of the paper's
// evaluation (DESIGN.md §5) by running the whole benchmark suite under
// the baseline, BBV, and hotspot schemes.
//
// Usage:
//
//	acetables                  # everything
//	acetables -table 4         # one table
//	acetables -figure 3        # one figure
//	acetables -scale 10        # scale divisor (default 10; 1 = paper scale)
//	acetables -json out.json   # schema-stable bench snapshot ("-" = stdout)
//	acetables -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/fault"
	"acedo/internal/rtrace"
	"acedo/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	table := flag.Int("table", 0, "print only this table (1-6)")
	figure := flag.Int("figure", 0, "print only this figure (1, 3, 4)")
	scale := flag.Uint64("scale", 10, "scale divisor for instruction-count parameters")
	threeCU := flag.Bool("threecu", false, "run the three-CU extension (adds the issue-queue unit) and print its table")
	jsonOut := flag.String("json", "", "write the suite's schema-stable bench snapshot JSON to this file instead of tables (\"-\" = stdout)")
	runMeta := flag.Bool("runmeta", false, "include per-run wall time and record/replay disposition in the -json snapshot (schema-additive fields)")
	noReplay := flag.Bool("noreplay", false, "disable the record-once/replay-many fast path and execute every scheme directly")
	intraPar := flag.Int("intrapar", 0, "goroutines per trace replay (0/1 = serial; results are bit-identical at any setting)")
	traceFormat := flag.String("traceformat", "", "recorder format: summary (direct-built, default) or bytes (results are bit-identical either way)")
	faults := flag.String("faults", "", "arm the fault-injection plan in this JSON file (chaos testing)")
	detectors := flag.Bool("detectors", false, "run the phase-detector comparison (BBV vs working-set signatures vs hotspot)")
	quiet := flag.Bool("q", false, "suppress per-benchmark progress lines on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	opt := experiment.OptionsAtScale(*scale)
	if *threeCU {
		opt = opt.WithThreeCU()
	}
	opt.NoReplay = *noReplay
	opt.IntraParallelism = *intraPar
	format, err := rtrace.ParseFormat(*traceFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
		return 2
	}
	opt.TraceFormat = format
	if *faults != "" {
		plan, err := fault.LoadPlan(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			return 1
		}
		opt.Faults = plan
	}
	if !*quiet {
		opt.Log = os.Stderr
	}
	if *detectors {
		start := time.Now()
		var cs []*experiment.DetectorComparison
		for _, spec := range workload.Suite() {
			c, err := experiment.CompareDetectors(spec, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
				return 1
			}
			cs = append(cs, c)
		}
		fmt.Fprintf(os.Stderr, "acetables: 28 simulations in %.1fs\n", time.Since(start).Seconds())
		experiment.DetectorTable(os.Stdout, cs)
		return 0
	}
	// Open the snapshot output before the multi-second suite run so a
	// bad path fails immediately.
	jsonFile := os.Stdout
	if *jsonOut != "" && *jsonOut != "-" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			return 1
		}
		defer f.Close()
		jsonFile = f
	}

	start := time.Now()
	res, err := experiment.Collect(opt)
	if err != nil {
		// Collect isolates failures: render whatever completed, then
		// exit nonzero so scripts still see the failure.
		fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
		if len(res.Comparisons) == 0 {
			return 1
		}
		fmt.Fprintf(os.Stderr, "acetables: rendering %d completed benchmark(s)\n",
			len(res.Comparisons))
	}
	fmt.Fprintf(os.Stderr, "acetables: 21 simulations in %.1fs\n", time.Since(start).Seconds())
	code := 0
	if err != nil {
		code = 1
	}

	w := os.Stdout
	if *jsonOut != "" {
		snap := res.Snapshot()
		if *runMeta {
			snap = res.SnapshotWithMeta()
		}
		if err := snap.WriteJSON(jsonFile); err != nil {
			fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
			return 1
		}
		return code
	}
	if *threeCU {
		res.ExtensionThreeCU(w)
		return code
	}
	switch {
	case *table == 1:
		res.Table1(w)
	case *table == 2:
		res.Table2(w)
	case *table == 3:
		res.Table3(w)
	case *table == 4:
		res.Table4(w)
	case *table == 5:
		res.Table5(w)
	case *table == 6:
		res.Table6(w)
	case *figure == 1:
		res.Figure1(w)
	case *figure == 3:
		res.Figure3(w)
	case *figure == 4:
		res.Figure4(w)
	case *table == 0 && *figure == 0:
		res.WriteAll(w)
	default:
		fmt.Fprintf(os.Stderr, "acetables: no such table/figure\n")
		return 2
	}
	return code
}

// writeMemProfile dumps a post-GC heap profile, if requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "acetables: %v\n", err)
	}
}
