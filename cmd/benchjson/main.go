// Command benchjson converts `go test -bench` text output into a
// stable JSON record, and compares two such records for regressions.
// It is the dependency-free half of the perf-trajectory tooling: the
// JSON files (BENCH_baseline.json, BENCH_pr3.json, …) are committed
// per PR, `make bench-compare` diffs a fresh run against them, and the
// CI perf-smoke job fails on a throughput regression. When benchstat
// is installed the -raw mode reconstructs its text input from a JSON
// record; nothing here requires it.
//
// Usage:
//
//	go test -bench . | benchjson -o BENCH.json    # record
//	benchjson -compare OLD.json NEW.json          # regression gate
//	benchjson -compare OLD1.json OLD2.json NEW.json
//	benchjson -compare -override BenchmarkSuite=25 OLD.json NEW.json
//	benchjson -raw BENCH.json                     # re-emit benchstat input
//
// With several OLD records the gate compares against the best recorded
// value per benchmark (highest Minstr/s, lowest ns/op) — the committed
// trajectory's high-water mark — so a PR can't claim a win merely by
// diffing against a slow ancestor. -override name=pct loosens (or
// tightens) the threshold for one benchmark, for known-noisy
// wall-clock-dominated suites.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the record layout.
const SchemaVersion = 1

// Record is the committed perf artifact.
type Record struct {
	SchemaVersion int `json:"schema_version"`
	// Context lines from the bench header (goos, goarch, pkg, cpu).
	Context []string `json:"context,omitempty"`
	// Benchmarks is sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the exact benchmark result lines, so benchstat
	// input can be reconstructed from the committed JSON.
	Raw []string `json:"raw"`
}

// Benchmark aggregates every `-count` repetition of one benchmark.
type Benchmark struct {
	Name string `json:"name"`
	Runs []Run  `json:"runs"`
	// Median holds the per-field medians across runs — the numbers
	// the regression gate compares.
	Median Run `json:"median"`
}

// Run is one benchmark result line.
type Run struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the JSON record to this file (default stdout)")
	compare := flag.Bool("compare", false, "compare two JSON records: benchjson -compare OLD NEW")
	raw := flag.Bool("raw", false, "print the raw benchmark lines stored in a JSON record")
	metric := flag.String("metric", "Minstr/s", "higher-is-better metric the -compare gate checks when a benchmark reports it")
	threshold := flag.Float64("threshold", 15, "-compare fails when the gated metric regresses by more than this percentage")
	overrides := overrideFlag{}
	flag.Var(&overrides, "override", "per-benchmark threshold override as name=pct (repeatable)")
	flag.Parse()

	switch {
	case *compare:
		if flag.NArg() < 2 {
			fatalf("-compare needs at least two files: OLD [OLD…] NEW")
		}
		var olds []*Record
		for _, path := range flag.Args()[:flag.NArg()-1] {
			rec, err := load(path)
			if err != nil {
				fatalf("%v", err)
			}
			olds = append(olds, rec)
		}
		new_, err := load(flag.Arg(flag.NArg() - 1))
		if err != nil {
			fatalf("%v", err)
		}
		if !compareRecords(os.Stdout, olds, new_, *metric, *threshold, overrides) {
			os.Exit(1)
		}
	case *raw:
		if flag.NArg() != 1 {
			fatalf("-raw needs exactly one file")
		}
		rec, err := load(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		for _, line := range rec.Context {
			fmt.Println(line)
		}
		for _, line := range rec.Raw {
			fmt.Println(line)
		}
	default:
		var in io.Reader = os.Stdin
		if flag.NArg() == 1 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			in = f
		} else if flag.NArg() > 1 {
			fatalf("at most one input file")
		}
		rec, err := Parse(in)
		if err != nil {
			fatalf("%v", err)
		}
		if len(rec.Benchmarks) == 0 {
			fatalf("no benchmark result lines found in input")
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &Record{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// Parse reads `go test -bench` output. Result lines have the shape
//
//	BenchmarkName[-P] <iterations> <value> <unit> [<value> <unit>…]
//
// Context lines (goos/goarch/pkg/cpu) are preserved; everything else
// (PASS, ok, test logs) is ignored.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{SchemaVersion: SchemaVersion}
	byName := map[string]*Benchmark{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"),
			strings.HasPrefix(trimmed, "goarch:"),
			strings.HasPrefix(trimmed, "pkg:"),
			strings.HasPrefix(trimmed, "cpu:"):
			rec.Context = append(rec.Context, trimmed)
			continue
		}
		if !strings.HasPrefix(trimmed, "Benchmark") {
			continue
		}
		fields := strings.Fields(trimmed)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		run := Run{Iterations: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			if fields[i+1] == "ns/op" {
				run.NsPerOp = v
			} else {
				run.Metrics[fields[i+1]] = v
			}
		}
		if !ok {
			continue
		}
		if len(run.Metrics) == 0 {
			run.Metrics = nil
		}
		// Strip the -GOMAXPROCS suffix so records from different
		// hosts key the same way.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		b.Runs = append(b.Runs, run)
		rec.Raw = append(rec.Raw, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	for _, name := range order {
		b := byName[name]
		b.Median = median(b.Runs)
		rec.Benchmarks = append(rec.Benchmarks, *b)
	}
	return rec, nil
}

// median computes the per-field median across runs (mean of the two
// middle values for even counts).
func median(runs []Run) Run {
	med := func(vs []float64) float64 {
		sort.Float64s(vs)
		n := len(vs)
		if n == 0 {
			return 0
		}
		if n%2 == 1 {
			return vs[n/2]
		}
		return (vs[n/2-1] + vs[n/2]) / 2
	}
	out := Run{}
	var ns []float64
	var iters []float64
	keys := map[string]bool{}
	for _, r := range runs {
		ns = append(ns, r.NsPerOp)
		iters = append(iters, float64(r.Iterations))
		for k := range r.Metrics {
			keys[k] = true
		}
	}
	out.NsPerOp = med(ns)
	out.Iterations = int64(med(iters))
	if len(keys) > 0 {
		out.Metrics = map[string]float64{}
		for k := range keys {
			var vs []float64
			for _, r := range runs {
				if v, ok := r.Metrics[k]; ok {
					vs = append(vs, v)
				}
			}
			out.Metrics[k] = med(vs)
		}
	}
	return out
}

// overrideFlag accumulates repeated -override name=pct settings into a
// per-benchmark threshold map.
type overrideFlag map[string]float64

func (o overrideFlag) String() string {
	var names []string
	for k := range o {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, o[k])
	}
	return b.String()
}

func (o overrideFlag) Set(s string) error {
	name, pct, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("override %q: want name=pct", s)
	}
	v, err := strconv.ParseFloat(pct, 64)
	if err != nil || v < 0 {
		return fmt.Errorf("override %q: bad percentage", s)
	}
	o[name] = v
	return nil
}

// compareRecords prints a per-benchmark delta table and returns false
// when any benchmark regresses beyond its threshold: a drop in the
// gated higher-is-better metric when the records report it, otherwise
// a rise in ns/op. With several OLD records the comparison baseline is
// the best recorded value per benchmark across all of them; overrides
// replace the global threshold for the named benchmarks.
func compareRecords(w io.Writer, olds []*Record, new_ *Record, metric string, threshold float64, overrides map[string]float64) bool {
	newBy := map[string]Benchmark{}
	for _, b := range new_.Benchmarks {
		newBy[b.Name] = b
	}
	// Union of OLD benchmark names, each mapped to every record's entry.
	oldBy := map[string][]Benchmark{}
	var names []string
	for _, old := range olds {
		for _, b := range old.Benchmarks {
			if oldBy[b.Name] == nil {
				names = append(names, b.Name)
			}
			oldBy[b.Name] = append(oldBy[b.Name], b)
		}
	}
	sort.Strings(names)
	pass := true
	fmt.Fprintf(w, "%-28s %15s %15s %9s\n", "benchmark", "old", "new", "delta")
	for _, name := range names {
		nb, ok := newBy[name]
		if !ok {
			fmt.Fprintf(w, "%-28s %15s %15s %9s\n", name, "-", "missing", "-")
			pass = false
			continue
		}
		ov, nv, unit, higherBetter := pick(oldBy[name], nb, metric)
		if ov == 0 {
			continue
		}
		limit := threshold
		if o, ok := overrides[name]; ok {
			limit = o
		}
		delta := (nv - ov) / ov * 100
		verdict := ""
		regressed := delta < -limit
		if !higherBetter {
			regressed = delta > limit
		}
		if regressed {
			verdict = "  REGRESSION"
			pass = false
		}
		fmt.Fprintf(w, "%-28s %11.2f %3s %11.2f %3s %+8.1f%%%s\n",
			name, ov, unit, nv, unit, delta, verdict)
	}
	if !pass {
		fmt.Fprintf(w, "FAIL: regression beyond %.0f%% threshold\n", threshold)
	}
	return pass
}

// pick selects the compared quantity for a benchmark: the gated metric
// when the new record and at least one old record report it, else
// ns/op. Across several old records it takes the best value — highest
// for the higher-is-better metric, lowest for ns/op — so the gate
// holds the line against the trajectory's high-water mark.
func pick(obs []Benchmark, nb Benchmark, metric string) (ov, nv float64, unit string, higherBetter bool) {
	if n, ok := nb.Median.Metrics[metric]; ok {
		best, have := 0.0, false
		for _, ob := range obs {
			if o, ok := ob.Median.Metrics[metric]; ok && (!have || o > best) {
				best, have = o, true
			}
		}
		if have {
			return best, n, metric, true
		}
	}
	best, have := 0.0, false
	for _, ob := range obs {
		if o := ob.Median.NsPerOp; o > 0 && (!have || o < best) {
			best, have = o, true
		}
	}
	return best, nb.Median.NsPerOp, "ns/op", false
}
