package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: acedo
cpu: some cpu
BenchmarkEngine-4     	       3	 350000000 ns/op	        190.0 Minstr/s
BenchmarkEngine-4     	       3	 360000000 ns/op	        185.0 Minstr/s
BenchmarkEngine-4     	       3	 340000000 ns/op	        195.0 Minstr/s
BenchmarkSuite-4      	       1	5000000000 ns/op
PASS
ok  	acedo	12.3s
`

func parseText(t *testing.T, text string) *Record {
	t.Helper()
	rec, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestParseMediansAndContext(t *testing.T) {
	rec := parseText(t, benchText)
	if len(rec.Context) != 4 {
		t.Errorf("context lines = %d, want 4", len(rec.Context))
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rec.Benchmarks))
	}
	eng := rec.Benchmarks[0]
	if eng.Name != "BenchmarkEngine" {
		t.Fatalf("name = %q (want GOMAXPROCS suffix stripped)", eng.Name)
	}
	if got := eng.Median.Metrics["Minstr/s"]; got != 190 {
		t.Errorf("median Minstr/s = %v, want 190", got)
	}
	if got := eng.Median.NsPerOp; got != 350000000 {
		t.Errorf("median ns/op = %v, want 350000000", got)
	}
}

// record builds a single-run record for compare tests: each entry is
// name, ns/op, and an optional Minstr/s value (0 = absent).
func record(entries ...[3]any) *Record {
	rec := &Record{SchemaVersion: SchemaVersion}
	for _, e := range entries {
		run := Run{Iterations: 1, NsPerOp: e[1].(float64)}
		if m := e[2].(float64); m != 0 {
			run.Metrics = map[string]float64{"Minstr/s": m}
		}
		rec.Benchmarks = append(rec.Benchmarks, Benchmark{
			Name: e[0].(string), Runs: []Run{run}, Median: run,
		})
	}
	return rec
}

func TestCompareBestOfMultipleOlds(t *testing.T) {
	// Two committed records; the second holds the high-water mark.
	old1 := record([3]any{"BenchmarkEngine", 400e6, 170.0})
	old2 := record([3]any{"BenchmarkEngine", 350e6, 200.0})
	// 184 Minstr/s is within 15% of 200 but would pass trivially
	// against 170; the gate must use the best old value.
	new_ := record([3]any{"BenchmarkEngine", 380e6, 184.0})
	var b strings.Builder
	if !compareRecords(&b, []*Record{old1, old2}, new_, "Minstr/s", 15, nil) {
		t.Errorf("within-threshold run failed against best-of olds:\n%s", b.String())
	}
	// 160 Minstr/s is a 20% drop from the 200 high-water mark even
	// though it is within 15% of old1's 170.
	slow := record([3]any{"BenchmarkEngine", 450e6, 160.0})
	b.Reset()
	if compareRecords(&b, []*Record{old1, old2}, slow, "Minstr/s", 15, nil) {
		t.Errorf("20%% drop from best old passed:\n%s", b.String())
	}
}

func TestCompareNsPerOpFallbackUsesLowestOld(t *testing.T) {
	old1 := record([3]any{"BenchmarkSuite", 6e9, 0.0})
	old2 := record([3]any{"BenchmarkSuite", 4e9, 0.0})
	// 5e9 ns/op is a 25% rise over the 4e9 best.
	new_ := record([3]any{"BenchmarkSuite", 5e9, 0.0})
	var b strings.Builder
	if compareRecords(&b, []*Record{old1, old2}, new_, "Minstr/s", 15, nil) {
		t.Errorf("25%% ns/op rise over best old passed:\n%s", b.String())
	}
}

func TestCompareOverrideLoosensOneBenchmark(t *testing.T) {
	old := record(
		[3]any{"BenchmarkEngine", 350e6, 200.0},
		[3]any{"BenchmarkSuite", 4e9, 0.0},
	)
	new_ := record(
		[3]any{"BenchmarkEngine", 355e6, 198.0},
		[3]any{"BenchmarkSuite", 4.8e9, 0.0}, // +20%: noisy suite
	)
	var b strings.Builder
	if compareRecords(&b, []*Record{old}, new_, "Minstr/s", 15, nil) {
		t.Fatalf("suite regression passed without override:\n%s", b.String())
	}
	b.Reset()
	ov := map[string]float64{"BenchmarkSuite": 25}
	if !compareRecords(&b, []*Record{old}, new_, "Minstr/s", 15, ov) {
		t.Errorf("override did not loosen the suite threshold:\n%s", b.String())
	}
	// The override must not loosen other benchmarks.
	bad := record(
		[3]any{"BenchmarkEngine", 500e6, 140.0}, // -30%
		[3]any{"BenchmarkSuite", 4e9, 0.0},
	)
	b.Reset()
	if compareRecords(&b, []*Record{old}, bad, "Minstr/s", 15, ov) {
		t.Errorf("engine regression passed under unrelated override:\n%s", b.String())
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := record([3]any{"BenchmarkEngine", 350e6, 200.0})
	var b strings.Builder
	if compareRecords(&b, []*Record{old}, &Record{SchemaVersion: SchemaVersion}, "Minstr/s", 15, nil) {
		t.Errorf("missing benchmark passed:\n%s", b.String())
	}
}

func TestOverrideFlagParsing(t *testing.T) {
	o := overrideFlag{}
	if err := o.Set("BenchmarkSuite=25"); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("BenchmarkEngine=5"); err != nil {
		t.Fatal(err)
	}
	if o["BenchmarkSuite"] != 25 || o["BenchmarkEngine"] != 5 {
		t.Errorf("parsed overrides = %v", o)
	}
	if got, want := o.String(), "BenchmarkEngine=5,BenchmarkSuite=25"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	for _, bad := range []string{"", "=5", "name", "name=x", "name=-3"} {
		if err := o.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}
