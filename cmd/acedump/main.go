// Command acedump inspects a benchmark program: its methods, static
// sizes, disassembly, and the static analyzer's footprint estimates —
// the information the JIT-side of the framework works from.
//
// Usage:
//
//	acedump -bench compress            # method summary + footprints
//	acedump -bench db -method leaf_key # disassemble one method
package main

import (
	"flag"
	"fmt"
	"os"

	"acedo"
	"acedo/internal/program"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark name")
	method := flag.String("method", "", "disassemble this method instead of summarizing")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "acedump: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prog, err := spec.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "acedump: %v\n", err)
		os.Exit(1)
	}

	if *method != "" {
		for _, m := range prog.Methods {
			if m.Name == *method {
				fmt.Print(m.Disassemble())
				return
			}
		}
		fmt.Fprintf(os.Stderr, "acedump: no method %q in %s\n", *method, spec.Name)
		os.Exit(2)
	}

	analyzer := acedo.NewAnalyzer(prog)
	fmt.Printf("program %s: %d methods, %d static instructions, %d words of data memory\n\n",
		prog.Name, prog.NumMethods(), prog.TotalStaticInstrs, prog.MemWords)
	fmt.Printf("%-4s %-18s %8s %8s %14s\n", "id", "method", "blocks", "instrs", "est. footprint")
	for _, m := range prog.Methods {
		foot := analyzer.Footprint(program.MethodID(m.ID))
		fmt.Printf("m%-3d %-18s %8d %8d %11d B\n",
			m.ID, m.Name, len(m.Blocks), m.StaticInstrs, foot)
	}
	fmt.Println("\nfootprints are the static analyzer's inclusive estimates (core.Analyzer);")
	fmt.Println("use -method NAME for a disassembly.")
}
