// Command doclint enforces the repo's documentation hygiene in CI:
//
//   - doclint ./internal/experiment ./internal/server ...
//     parses each package (test files excluded) and reports every
//     exported identifier — package, const, var, type, function,
//     method — that has no doc comment. Grouped const/var/type
//     declarations may be documented on the group.
//
//   - doclint -md README.md docs/API.md ...
//     checks every relative markdown link ([text](path), path not a
//     URL) resolves to an existing file, and that anchor fragments —
//     both same-file (#section) and cross-file (file.md#section) —
//     name a real heading under GitHub's slug rules, so doc refactors
//     cannot leave dead links or dead anchors behind.
//
// Exit status is non-zero when anything is flagged, making it a cheap
// CI gate (`make doclint`).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	md := flag.Bool("md", false, "treat arguments as markdown files and check relative links")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-md] <package-dir|file>...")
		os.Exit(2)
	}
	var problems []string
	for _, arg := range flag.Args() {
		var err error
		if *md {
			problems, err = checkMarkdown(arg, problems)
		} else {
			problems, err = checkPackage(arg, problems)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", arg, err)
			os.Exit(2)
		}
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkPackage parses one package directory and appends a problem line
// for every undocumented exported identifier.
func checkPackage(dir string, problems []string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return problems, err
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			problems = checkFile(fset, name, f, problems)
		}
	}
	return problems, nil
}

// checkFile flags undocumented exported declarations in one file.
func checkFile(fset *token.FileSet, name string, f *ast.File, problems []string) []string {
	flag := func(pos token.Pos, kind, ident string) []string {
		p := fset.Position(pos)
		return append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				ident := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					recv := recvType(d.Recv.List[0].Type)
					if !ast.IsExported(recv) {
						// A method on an unexported type is not part
						// of the package's exported API.
						continue
					}
					ident = recv + "." + ident
				}
				problems = flag(d.Pos(), "function", ident)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !(groupDoc && len(d.Specs) >= 1) {
						problems = flag(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || groupDoc {
						continue
					}
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					for _, n := range s.Names {
						if n.IsExported() {
							problems = flag(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	_ = name
	return problems
}

// recvType renders a method receiver's type name.
func recvType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvType(t.X)
	case *ast.IndexExpr:
		return recvType(t.X)
	}
	return "?"
}

// mdLink matches inline markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown appends a problem line for every relative link in file
// whose target does not exist on disk, and for every anchor fragment
// (same-file "#section" or cross-file "file.md#section") that names no
// heading in its target.
func checkMarkdown(file string, problems []string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return problems, err
	}
	base := filepath.Dir(file)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target, frag := m[1], ""
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if j := strings.IndexByte(target, '#'); j >= 0 {
				target, frag = target[:j], target[j+1:]
			}
			path := file
			if target != "" {
				path = filepath.Join(base, target)
				if _, err := os.Stat(path); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: dead link %s", file, i+1, m[1]))
					continue
				}
			}
			// Anchors only make sense into markdown; a fragment into a
			// source file (or a bare #fragment in this file) is checked
			// against the target's heading slugs.
			if frag == "" || !strings.HasSuffix(path, ".md") {
				continue
			}
			anchors, err := anchorsOf(path)
			if err != nil {
				return problems, err
			}
			if !anchors[frag] {
				problems = append(problems, fmt.Sprintf("%s:%d: dead anchor %s", file, i+1, m[1]))
			}
		}
	}
	return problems, nil
}

// anchorCache memoizes each markdown file's heading slugs; docs link
// into the same few files many times.
var anchorCache = map[string]map[string]bool{}

// anchorsOf returns the set of GitHub-style anchor slugs a markdown
// file's headings define. Headings inside fenced code blocks do not
// count; duplicate headings get -1, -2, ... suffixes like GitHub's
// renderer.
func anchorsOf(path string) (map[string]bool, error) {
	if a, ok := anchorCache[path]; ok {
		return a, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(text, " ") {
			continue // "#hashtag", not a heading
		}
		slug := slugify(text)
		if n := seen[slug]; n > 0 {
			seen[slug]++
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			seen[slug] = 1
		}
		anchors[slug] = true
	}
	anchorCache[path] = anchors
	return anchors, nil
}

// slugify renders a heading as GitHub's anchor slug: inline link
// syntax reduced to its text, lowercased, spaces to hyphens, and every
// other character outside [a-z0-9_-] dropped (which also erases
// formatting marks like backticks and asterisks).
func slugify(heading string) string {
	s := mdLink.ReplaceAllString(strings.TrimSpace(heading), "]")
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
