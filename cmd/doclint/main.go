// Command doclint enforces the repo's documentation hygiene in CI:
//
//   - doclint ./internal/experiment ./internal/server ...
//     parses each package (test files excluded) and reports every
//     exported identifier — package, const, var, type, function,
//     method — that has no doc comment. Grouped const/var/type
//     declarations may be documented on the group.
//
//   - doclint -md README.md docs/API.md ...
//     checks every relative markdown link ([text](path), path not a
//     URL or pure fragment) resolves to an existing file, so doc
//     refactors cannot leave dead links behind.
//
// Exit status is non-zero when anything is flagged, making it a cheap
// CI gate (`make doclint`).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	md := flag.Bool("md", false, "treat arguments as markdown files and check relative links")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-md] <package-dir|file>...")
		os.Exit(2)
	}
	var problems []string
	for _, arg := range flag.Args() {
		var err error
		if *md {
			problems, err = checkMarkdown(arg, problems)
		} else {
			problems, err = checkPackage(arg, problems)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", arg, err)
			os.Exit(2)
		}
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkPackage parses one package directory and appends a problem line
// for every undocumented exported identifier.
func checkPackage(dir string, problems []string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return problems, err
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			problems = checkFile(fset, name, f, problems)
		}
	}
	return problems, nil
}

// checkFile flags undocumented exported declarations in one file.
func checkFile(fset *token.FileSet, name string, f *ast.File, problems []string) []string {
	flag := func(pos token.Pos, kind, ident string) []string {
		p := fset.Position(pos)
		return append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, ident))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				ident := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					recv := recvType(d.Recv.List[0].Type)
					if !ast.IsExported(recv) {
						// A method on an unexported type is not part
						// of the package's exported API.
						continue
					}
					ident = recv + "." + ident
				}
				problems = flag(d.Pos(), "function", ident)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && !(groupDoc && len(d.Specs) >= 1) {
						problems = flag(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || groupDoc {
						continue
					}
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					for _, n := range s.Names {
						if n.IsExported() {
							problems = flag(n.Pos(), kind, n.Name)
						}
					}
				}
			}
		}
	}
	_ = name
	return problems
}

// recvType renders a method receiver's type name.
func recvType(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvType(t.X)
	case *ast.IndexExpr:
		return recvType(t.X)
	}
	return "?"
}

// mdLink matches inline markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown appends a problem line for every relative link in file
// whose target does not exist on disk.
func checkMarkdown(file string, problems []string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return problems, err
	}
	base := filepath.Dir(file)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if j := strings.IndexByte(target, '#'); j >= 0 {
				target = target[:j]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: dead link %s", file, i+1, m[1]))
			}
		}
	}
	return problems, nil
}
