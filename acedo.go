// Package acedo is a from-scratch reproduction of "Effective Adaptive
// Computing Environment Management via Dynamic Optimization" (Hu,
// Valluri, John — CGO 2005): a dynamic-optimization-based framework
// that manages multiple configurable hardware units (a size-adaptable
// L1 data cache and L2 cache) by tuning and reconfiguring them at
// program hotspot boundaries.
//
// The package is a facade over the implementation packages:
//
//   - a register-machine ISA, program representation and builder
//     (Builder, Program);
//   - an execution-driven hardware simulator — caches, TLBs, branch
//     predictor, timing and Wattch-style energy model (Machine);
//   - a Jikes-RVM-style adaptive optimization system with sampling
//     hotspot detection and boundary-code insertion (AOS, Engine);
//   - the paper's contribution: the hotspot ACE manager with CU
//     decoupling (Manager);
//   - the Basic-Block-Vector comparator scheme (BBVManager);
//   - seven synthetic SPECjvm98 stand-in workloads (Suite);
//   - the evaluation harness regenerating every table and figure of
//     the paper (RunBenchmark, CompareSchemes, CollectSuite).
//
// Quick start:
//
//	spec, _ := acedo.BenchmarkByName("compress")
//	res, err := acedo.RunBenchmark(spec, acedo.SchemeHotspot, acedo.DefaultOptions())
//	fmt.Println(res.IPC, res.L1DEnergyNJ)
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and experiment index.
package acedo

import (
	"io"

	"acedo/internal/bbv"
	"acedo/internal/core"
	"acedo/internal/experiment"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
	"acedo/internal/wss"
)

// Program construction.
type (
	// Program is a sealed, runnable program for the simulated ISA.
	Program = program.Program
	// Builder assembles Programs method by method.
	Builder = program.Builder
	// MethodID names a method within a Program.
	MethodID = program.MethodID
)

// NewBuilder creates a program builder.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// Hardware platform.
type (
	// Machine is the simulated hardware platform (paper Table 2).
	Machine = machine.Machine
	// MachineConfig parameterises the platform.
	MachineConfig = machine.Config
)

// PaperMachineConfig returns the paper's Table 2 machine, with the
// reconfiguration intervals divided by scaleDiv (1 = paper scale).
func PaperMachineConfig(scaleDiv uint64) MachineConfig { return machine.PaperConfig(scaleDiv) }

// NewMachine constructs a machine at the largest (baseline) sizes.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// Dynamic optimization system.
type (
	// AOS is the adaptive optimization system (hotspot detection,
	// DO database, boundary-code insertion).
	AOS = vm.AOS
	// Engine interprets a Program on a Machine.
	Engine = vm.Engine
	// VMParams configures the AOS.
	VMParams = vm.Params
)

// DefaultVMParams returns the scaled default AOS parameters.
func DefaultVMParams() VMParams { return vm.DefaultParams() }

// NewAOS constructs the adaptive optimization system.
func NewAOS(p VMParams, m *Machine, prog *Program) *AOS { return vm.NewAOS(p, m, prog) }

// NewEngine constructs an execution engine.
func NewEngine(prog *Program, m *Machine, a *AOS) (*Engine, error) {
	return vm.NewEngine(prog, m, a)
}

// The framework (the paper's contribution).
type (
	// Manager is the hotspot-based ACE management framework.
	Manager = core.Manager
	// ManagerParams configures the framework.
	ManagerParams = core.Params
	// Analyzer is the static footprint estimator implementing the
	// paper's future-work JIT configuration hints.
	Analyzer = core.Analyzer
	// Database is the persistable slice of the DO database: tuned
	// configurations that can warm-start a later run
	// (Manager.ExportDatabase, ManagerParams.WarmStart).
	Database = core.Database
	// TuningMode selects decoupled (the paper) or monolithic (the
	// ablation) tuning.
	TuningMode = core.Mode
)

// The tuning modes.
const (
	ModeDecoupled  = core.ModeDecoupled
	ModeMonolithic = core.ModeMonolithic
)

// ParseDatabase decodes a DO database exported by
// Manager.ExportDatabase().Marshal().
func ParseDatabase(data []byte) (*Database, error) { return core.ParseDatabase(data) }

// DefaultManagerParams returns the framework parameters at the given
// scale divisor (1 = paper scale, 10 = default experiments).
func DefaultManagerParams(scaleDiv uint64) ManagerParams { return core.DefaultParams(scaleDiv) }

// NewManager constructs and registers the framework on an AOS.
func NewManager(p ManagerParams, m *Machine, a *AOS) (*Manager, error) {
	return core.NewManager(p, m, a)
}

// NewAnalyzer statically analyzes a program for configuration hints.
func NewAnalyzer(prog *Program) *Analyzer { return core.NewAnalyzer(prog) }

// The comparator scheme.
type (
	// BBVManager is the Basic Block Vector phase-tracking scheme
	// with the all-combinations tuner (the paper's baseline
	// comparison technique).
	BBVManager = bbv.Manager
	// BBVParams configures the BBV scheme.
	BBVParams = bbv.Params
)

// DefaultBBVParams returns the paper's BBV configuration at the given
// scale divisor.
func DefaultBBVParams(scaleDiv uint64) BBVParams { return bbv.DefaultParams(scaleDiv) }

// NewBBVManager constructs the BBV manager. Install its OnBlock method
// as the engine's block listener.
func NewBBVManager(p BBVParams, m *Machine) (*BBVManager, error) { return bbv.NewManager(p, m) }

// PhaseDetector is the pluggable phase-detection half of a temporal
// scheme; implementations include the BBV detector and the
// working-set-signature detector.
type PhaseDetector = bbv.Detector

// WSSParams configures the working-set-signature detector (Dhodapkar
// & Smith), the extension comparator of internal/wss.
type WSSParams = wss.Params

// DefaultWSSParams returns Dhodapkar & Smith's configuration (1024-bit
// signatures, δ = 0.5).
func DefaultWSSParams() WSSParams { return wss.DefaultParams() }

// NewWSSManager constructs the temporal-scheme manager driven by the
// working-set-signature detector.
func NewWSSManager(scheme BBVParams, det WSSParams, m *Machine) (*BBVManager, error) {
	return wss.NewManager(scheme, det, m)
}

// Workloads.
type (
	// BenchmarkSpec describes one synthetic SPECjvm98 stand-in.
	BenchmarkSpec = workload.Spec
)

// Suite returns the seven benchmark specs in the paper's order.
func Suite() []BenchmarkSpec { return workload.Suite() }

// BenchmarkByName returns the spec with the given name.
func BenchmarkByName(name string) (BenchmarkSpec, bool) { return workload.ByName(name) }

// Evaluation harness.
type (
	// Scheme selects the resource-adaptation policy of a run.
	Scheme = experiment.Scheme
	// Options carries a run's full parameterisation.
	Options = experiment.Options
	// Result is one run's measurements.
	Result = experiment.Result
	// Comparison is one benchmark across all three schemes.
	Comparison = experiment.Comparison
	// SuiteResults renders the paper's tables and figures.
	SuiteResults = experiment.SuiteResults
)

// The schemes: the paper's three plus the working-set-signature
// comparator extension.
const (
	SchemeBaseline = experiment.SchemeBaseline
	SchemeBBV      = experiment.SchemeBBV
	SchemeHotspot  = experiment.SchemeHotspot
	SchemeWSS      = experiment.SchemeWSS
)

// DefaultOptions returns the standard experiment configuration at the
// default 1/10 scale (DESIGN.md §4).
func DefaultOptions() Options { return experiment.DefaultOptions() }

// OptionsAtScale builds the configuration for an arbitrary scale
// divisor (1 = paper scale).
func OptionsAtScale(scale uint64) Options { return experiment.OptionsAtScale(scale) }

// RunBenchmark executes one benchmark under one scheme.
func RunBenchmark(spec BenchmarkSpec, s Scheme, opt Options) (*Result, error) {
	return experiment.Run(spec, s, opt)
}

// CompareSchemes runs a benchmark under all three schemes and derives
// the energy-saving and slowdown figures.
func CompareSchemes(spec BenchmarkSpec, opt Options) (*Comparison, error) {
	return experiment.Compare(spec, opt)
}

// CollectSuite runs the full evaluation (7 benchmarks × 3 schemes).
func CollectSuite(opt Options) (*SuiteResults, error) { return experiment.Collect(opt) }

// WriteAllTables renders every table and figure of the evaluation.
func WriteAllTables(r *SuiteResults, w io.Writer) { r.WriteAll(w) }
