#!/bin/sh
# Cluster smoke test (CI): boot a 3-node acelabd ring and check the
# sharded service's contract end to end —
#   1. `acelab run '{}'` through any node must be byte-identical to
#      `acetables -json` (routing never changes an answer);
#   2. resubmitting the spec to the *other two* nodes must be a
#      cluster-wide cache hit (cached:true from every node, exactly
#      two forwards across the ring, instr_simulated frozen);
#   3. a JSON-array spec must fan out across the endpoints and come
#      back as one merged JSON array;
#   4. a node partitioned from every peer (injected {"point":"peer",
#      "kind":"drop"} plan) must degrade to local execution — same
#      bytes, never an error — and report its peers unreachable.
set -eu

GO=${GO:-go}
TMP=${TMPDIR:-/tmp}
A0=${A0:-127.0.0.1:8331}
A1=${A1:-127.0.0.1:8332}
A2=${A2:-127.0.0.1:8333}

$GO build -o "$TMP/acelabd" ./cmd/acelabd
$GO build -o "$TMP/acelab" ./cmd/acelab

PEERS="n0=http://$A0,n1=http://$A1,n2=http://$A2"
"$TMP/acelabd" -addr "$A0" -node-id n0 -peers "$PEERS" -q &
p0=$!
"$TMP/acelabd" -addr "$A1" -node-id n1 -peers "$PEERS" -q &
p1=$!
"$TMP/acelabd" -addr "$A2" -node-id n2 -peers "$PEERS" -q &
p2=$!
trap 'kill "$p0" "$p1" "$p2" 2>/dev/null || true' EXIT

wait_up() {
    i=0
    until "$TMP/acelab" -server "http://$1" metrics >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "cluster-smoke: daemon on $1 never came up" >&2; exit 1; }
        sleep 0.1
    done
}
wait_up "$A0"; wait_up "$A1"; wait_up "$A2"

# Pull a counter out of a node's /metrics JSON; omitted (omitempty)
# counters read as 0.
metric() {
    "$TMP/acelab" -server "http://$1" metrics \
        | sed -n "s/^.*\"$2\": \([0-9][0-9]*\).*$/\1/p" | head -n 1 | grep . || echo 0
}

echo "cluster-smoke: 3-node ring up; running the default evaluation via n0"
"$TMP/acelab" -server "http://$A0" run '{}' > "$TMP/acedo_cluster.json"

$GO run ./cmd/acetables -json "$TMP/acedo_cluster_direct.json" -q
cmp "$TMP/acedo_cluster.json" "$TMP/acedo_cluster_direct.json"
echo "cluster-smoke: routed result byte-identical to acetables -json"

instr_before=$(( $(metric "$A0" instr_simulated) + $(metric "$A1" instr_simulated) + $(metric "$A2" instr_simulated) ))

# The spec was executed — and cached — on exactly one node. The other
# two must answer the repeat from the cluster-wide cache by forwarding
# to the owner.
for a in "$A1" "$A2"; do
    "$TMP/acelab" -server "http://$a" submit '{}' > "$TMP/acedo_cluster_hit.json"
    grep -q '"cached": true' "$TMP/acedo_cluster_hit.json"
    grep -q '"state": "done"' "$TMP/acedo_cluster_hit.json"
done
echo "cluster-smoke: repeats from the other two nodes answered from the cluster cache"

instr_after=$(( $(metric "$A0" instr_simulated) + $(metric "$A1" instr_simulated) + $(metric "$A2" instr_simulated) ))
[ "$instr_before" -eq "$instr_after" ] || {
    echo "cluster-smoke: repeats re-simulated ($instr_before -> $instr_after instructions)" >&2
    exit 1
}
forwards=$(( $(metric "$A0" jobs_forwarded) + $(metric "$A1" jobs_forwarded) + $(metric "$A2" jobs_forwarded) ))
[ "$forwards" -eq 2 ] || {
    echo "cluster-smoke: $forwards forwards across the ring, want exactly 2 (the two non-owner touches)" >&2
    exit 1
}
echo "cluster-smoke: instr_simulated frozen across repeats; exactly 2 forwards cluster-wide"

# Batch fan-out: a JSON-array spec against the whole membership must
# come back as one merged JSON array with every element answered.
"$TMP/acelab" -server "http://$A0,http://$A1,http://$A2" run \
    '[{"benchmarks":["compress"],"max_instr":200000},{"benchmarks":["compress"],"max_instr":300000}]' \
    > "$TMP/acedo_cluster_batch.json"
head -c 1 "$TMP/acedo_cluster_batch.json" | grep -q '\[' || {
    echo "cluster-smoke: batch output is not a JSON array" >&2
    exit 1
}
grep -q '^null' "$TMP/acedo_cluster_batch.json" && {
    echo "cluster-smoke: batch output has a failed (null) element" >&2
    exit 1
}
echo "cluster-smoke: JSON-array spec fanned out and merged"

kill "$p0" "$p1" "$p2" 2>/dev/null || true
wait "$p0" "$p1" "$p2" 2>/dev/null || true
trap - EXIT

# Partition: m0 is cut off from every peer by an injected drop plan.
# A spec it does not own must still run — locally, with the same
# bytes — and its healthz must show both peers unreachable.
B0=${B0:-127.0.0.1:8341}
B1=${B1:-127.0.0.1:8342}
B2=${B2:-127.0.0.1:8343}
BPEERS="m0=http://$B0,m1=http://$B1,m2=http://$B2"
cat > "$TMP/acedo_partition.json" <<'EOF'
{"rules": [{"point": "peer", "kind": "drop"}]}
EOF
"$TMP/acelabd" -addr "$B0" -node-id m0 -peers "$BPEERS" -service-faults "$TMP/acedo_partition.json" -q &
q0=$!
"$TMP/acelabd" -addr "$B1" -node-id m1 -peers "$BPEERS" -q &
q1=$!
"$TMP/acelabd" -addr "$B2" -node-id m2 -peers "$BPEERS" -q &
q2=$!
trap 'kill "$q0" "$q1" "$q2" 2>/dev/null || true' EXIT
wait_up "$B0"; wait_up "$B1"; wait_up "$B2"

SPEC='{"benchmarks":["compress"]}'
"$TMP/acelab" -server "http://$B1" run "$SPEC" > "$TMP/acedo_part_healthy.json"
"$TMP/acelab" -server "http://$B0" run "$SPEC" > "$TMP/acedo_part_degraded.json"
cmp "$TMP/acedo_part_healthy.json" "$TMP/acedo_part_degraded.json"
echo "cluster-smoke: partitioned node degraded to local execution with identical bytes"

# Whoever owns the spec, the partitioned node could not have reached
# it: either the forward failed (forward_failures moved) or m0 owns
# the spec itself — but it must never have routed a job out.
[ "$(metric "$B0" jobs_forwarded)" -eq 0 ] || {
    echo "cluster-smoke: partitioned node claims a successful forward" >&2
    exit 1
}
"$TMP/acelab" -server "http://$B0" health > "$TMP/acedo_part_health.json"
grep -q '"m1": "unreachable' "$TMP/acedo_part_health.json"
grep -q '"m2": "unreachable' "$TMP/acedo_part_health.json"
"$TMP/acelab" -server "http://$B1" health > "$TMP/acedo_part_health1.json"
grep -q '"m2": "ok"' "$TMP/acedo_part_health1.json"
echo "cluster-smoke: healthz reports the partition from the cut-off node only"

kill -TERM "$q0" "$q1" "$q2"
wait "$q0" "$q1" "$q2" 2>/dev/null || true
trap - EXIT
echo "cluster-smoke: SIGTERM drained all nodes cleanly"
echo "cluster-smoke: ok"
