#!/bin/sh
# Server smoke test (CI): boot acelabd, drive it with the acelab
# client, and check the service answers exactly what the batch tool
# computes —
#   1. `acelab run '{}'` (the full default evaluation) must be
#      byte-identical to `acetables -json`;
#   2. resubmitting the same spec must be a content-addressed cache
#      hit (job born done, cached:true);
#   3. a daemon with a full queue must answer 429 and the client must
#      honor the backpressure with its bounded retry loop;
#   4. SIGTERM must drain and exit cleanly.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8321}
TMP=${TMPDIR:-/tmp}

$GO build -o "$TMP/acelabd" ./cmd/acelabd
$GO build -o "$TMP/acelab" ./cmd/acelab

"$TMP/acelabd" -addr "$ADDR" -q &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
i=0
until "$TMP/acelab" -server "http://$ADDR" metrics >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "server-smoke: daemon never came up" >&2; exit 1; }
    sleep 0.1
done

echo "server-smoke: daemon up on $ADDR; running the default evaluation via the service"
"$TMP/acelab" -server "http://$ADDR" run '{}' > "$TMP/acedo_service.json"

echo "server-smoke: running the same evaluation via acetables -json"
$GO run ./cmd/acetables -json "$TMP/acedo_direct.json" -q

cmp "$TMP/acedo_service.json" "$TMP/acedo_direct.json"
echo "server-smoke: service result byte-identical to acetables -json"

"$TMP/acelab" -server "http://$ADDR" submit '{}' > "$TMP/acedo_resubmit.json"
grep -q '"cached": true' "$TMP/acedo_resubmit.json"
grep -q '"state": "done"' "$TMP/acedo_resubmit.json"
echo "server-smoke: resubmission answered from the result cache"

kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "server-smoke: SIGTERM drained cleanly"

# Backpressure: a one-worker, one-slot daemon with both occupied must
# reject the next submission with 429, and the client must retry
# (honoring Retry-After) before surfacing the failure.
BP_ADDR=${BP_ADDR:-127.0.0.1:8322}
"$TMP/acelabd" -addr "$BP_ADDR" -workers 1 -queue 1 -q &
bp_pid=$!
trap 'kill -9 "$bp_pid" 2>/dev/null || true' EXIT
i=0
until "$TMP/acelab" -server "http://$BP_ADDR" metrics >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "server-smoke: backpressure daemon never came up" >&2; exit 1; }
    sleep 0.1
done

# Two slow jobs fill the worker and the queue slot.
"$TMP/acelab" -server "http://$BP_ADDR" submit '{"scale":3}' >/dev/null
"$TMP/acelab" -server "http://$BP_ADDR" submit '{"scale":3,"run_meta":true}' >/dev/null

if "$TMP/acelab" -server "http://$BP_ADDR" -retries 2 submit '{"scale":3,"events":true}' \
        >/dev/null 2> "$TMP/acedo_429.err"; then
    echo "server-smoke: third submission accepted; queue never filled" >&2
    exit 1
fi
grep -q 'retrying' "$TMP/acedo_429.err" || {
    echo "server-smoke: client did not retry on 429:" >&2
    cat "$TMP/acedo_429.err" >&2
    exit 1
}
grep -q '429' "$TMP/acedo_429.err" || {
    echo "server-smoke: client failure does not surface the 429:" >&2
    cat "$TMP/acedo_429.err" >&2
    exit 1
}
echo "server-smoke: 429 backpressure honored with bounded retries"
kill -9 "$bp_pid" 2>/dev/null || true
trap - EXIT
echo "server-smoke: ok"
