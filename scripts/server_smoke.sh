#!/bin/sh
# Server smoke test (CI): boot acelabd, drive it with the acelab
# client, and check the service answers exactly what the batch tool
# computes —
#   1. `acelab run '{}'` (the full default evaluation) must be
#      byte-identical to `acetables -json`;
#   2. resubmitting the same spec must be a content-addressed cache
#      hit (job born done, cached:true);
#   3. SIGTERM must drain and exit cleanly.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8321}
TMP=${TMPDIR:-/tmp}

$GO build -o "$TMP/acelabd" ./cmd/acelabd
$GO build -o "$TMP/acelab" ./cmd/acelab

"$TMP/acelabd" -addr "$ADDR" -q &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
i=0
until "$TMP/acelab" -server "http://$ADDR" metrics >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 100 ] && { echo "server-smoke: daemon never came up" >&2; exit 1; }
    sleep 0.1
done

echo "server-smoke: daemon up on $ADDR; running the default evaluation via the service"
"$TMP/acelab" -server "http://$ADDR" run '{}' > "$TMP/acedo_service.json"

echo "server-smoke: running the same evaluation via acetables -json"
$GO run ./cmd/acetables -json "$TMP/acedo_direct.json" -q

cmp "$TMP/acedo_service.json" "$TMP/acedo_direct.json"
echo "server-smoke: service result byte-identical to acetables -json"

"$TMP/acelab" -server "http://$ADDR" submit '{}' > "$TMP/acedo_resubmit.json"
grep -q '"cached": true' "$TMP/acedo_resubmit.json"
grep -q '"state": "done"' "$TMP/acedo_resubmit.json"
echo "server-smoke: resubmission answered from the result cache"

kill -TERM "$pid"
wait "$pid"
trap - EXIT
echo "server-smoke: SIGTERM drained cleanly"
