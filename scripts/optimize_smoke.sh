#!/bin/sh
# Optimize smoke test (CI): drive a small genetic-algorithm
# configuration search through acelabd via `acelab optimize` and check
# the service-level determinism contract —
#   1. the same seeded search executed by two independent daemons must
#      produce byte-identical result documents (no cache between them:
#      each daemon runs the search itself);
#   2. resubmitting the spec to the first daemon must be a
#      content-addressed cache hit (job born done, cached:true);
#   3. the search must spend its full candidate budget.
set -eu

GO=${GO:-go}
ADDR1=${ADDR1:-127.0.0.1:8331}
ADDR2=${ADDR2:-127.0.0.1:8332}
TMP=${TMPDIR:-/tmp}

SPEC='{"benchmarks":["compress"],"scale":40,"optimize":{"budget":32,"population":8,"elite":2,"seed":5}}'

$GO build -o "$TMP/acelabd" ./cmd/acelabd
$GO build -o "$TMP/acelab" ./cmd/acelab

wait_up() {
    i=0
    until "$TMP/acelab" -server "http://$1" metrics >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "optimize-smoke: daemon on $1 never came up" >&2; exit 1; }
        sleep 0.1
    done
}

"$TMP/acelabd" -addr "$ADDR1" -q &
pid1=$!
"$TMP/acelabd" -addr "$ADDR2" -q &
pid2=$!
trap 'kill "$pid1" "$pid2" 2>/dev/null || true' EXIT
wait_up "$ADDR1"
wait_up "$ADDR2"

echo "optimize-smoke: running the seeded search on two independent daemons"
"$TMP/acelab" -server "http://$ADDR1" -poll 200ms optimize "$SPEC" > "$TMP/acedo_opt1.json"
"$TMP/acelab" -server "http://$ADDR2" -poll 200ms optimize "$SPEC" > "$TMP/acedo_opt2.json"

cmp "$TMP/acedo_opt1.json" "$TMP/acedo_opt2.json"
echo "optimize-smoke: same-seed searches byte-identical across daemons"

grep -q '"evaluated": 32' "$TMP/acedo_opt1.json" || {
    echo "optimize-smoke: search did not spend its 32-candidate budget" >&2
    exit 1
}

"$TMP/acelab" -server "http://$ADDR1" submit "$SPEC" > "$TMP/acedo_opt_resubmit.json"
grep -q '"cached": true' "$TMP/acedo_opt_resubmit.json"
grep -q '"state": "done"' "$TMP/acedo_opt_resubmit.json"
echo "optimize-smoke: resubmission answered from the result cache"

kill -TERM "$pid1" "$pid2"
wait "$pid1" "$pid2"
trap - EXIT
echo "optimize-smoke: ok"
