#!/bin/sh
# Crash-recovery smoke test (CI): boot acelabd in crash-safe mode
# (-data-dir), run a job, kill the daemon with SIGKILL — no drain, no
# goodbye — restart it on the same data dir, and require:
#   1. the resubmitted spec is a content-addressed cache hit served
#      from the recovered disk store, byte-identical to the result the
#      first life produced, with nothing re-simulated;
#   2. a job killed mid-run (accepted and journaled, never finished)
#      is requeued by journal replay and completes on the new process;
#   3. /healthz reports the store scan and /metrics the replay count.
set -eu

GO=${GO:-go}
ADDR=${ADDR:-127.0.0.1:8323}
TMP=${TMPDIR:-/tmp}
DATA="$TMP/acedo_crash_data"
rm -rf "$DATA"

$GO build -o "$TMP/acelabd" ./cmd/acelabd
$GO build -o "$TMP/acelab" ./cmd/acelab

wait_up() {
    i=0
    until "$TMP/acelab" -server "http://$ADDR" metrics >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "crash-smoke: daemon never came up" >&2; exit 1; }
        sleep 0.1
    done
}

"$TMP/acelabd" -addr "$ADDR" -data-dir "$DATA" -q &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true' EXIT
wait_up

echo "crash-smoke: life 1 up; running a job to completion"
"$TMP/acelab" -server "http://$ADDR" run '{"benchmarks":["compress"],"scale":10,"run_meta":true}' \
    > "$TMP/acedo_crash_before.json"

# A slower job that will die mid-run: submitted (journaled), not done.
"$TMP/acelab" -server "http://$ADDR" submit '{"benchmarks":["jess"],"scale":3}' \
    > "$TMP/acedo_crash_pending.json"
grep -q '"state": "queued"' "$TMP/acedo_crash_pending.json"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
echo "crash-smoke: SIGKILL delivered mid-job"

"$TMP/acelabd" -addr "$ADDR" -data-dir "$DATA" &
pid=$!
trap 'kill -9 "$pid" 2>/dev/null || true' EXIT
wait_up

echo "crash-smoke: life 2 up; checking recovery surfaces"
"$TMP/acelab" -server "http://$ADDR" metrics > "$TMP/acedo_crash_metrics.json"
grep -q '"journal_replayed": 1' "$TMP/acedo_crash_metrics.json" || {
    echo "crash-smoke: journal replay not reported:" >&2
    cat "$TMP/acedo_crash_metrics.json" >&2
    exit 1
}
# store_entries is omitempty: its presence means the scan recovered
# at least one durable result.
grep -q '"store_entries"' "$TMP/acedo_crash_metrics.json" || {
    echo "crash-smoke: no store entries recovered:" >&2
    cat "$TMP/acedo_crash_metrics.json" >&2
    exit 1
}
echo "crash-smoke: journal replayed the interrupted job; store recovered"

# The finished job's result must be a cache hit with identical bytes.
"$TMP/acelab" -server "http://$ADDR" submit '{"benchmarks":["compress"],"scale":10,"run_meta":true}' \
    > "$TMP/acedo_crash_hit.json"
grep -q '"cached": true' "$TMP/acedo_crash_hit.json"
grep -q '"state": "done"' "$TMP/acedo_crash_hit.json"
"$TMP/acelab" -server "http://$ADDR" run '{"benchmarks":["compress"],"scale":10,"run_meta":true}' \
    > "$TMP/acedo_crash_after.json"
cmp "$TMP/acedo_crash_before.json" "$TMP/acedo_crash_after.json"
echo "crash-smoke: recovered result byte-identical across the crash"

# The replayed job must reach done on the new process.
i=0
while :; do
    "$TMP/acelab" -server "http://$ADDR" jobs > "$TMP/acedo_crash_jobs.json"
    grep -q '"state": "failed"' "$TMP/acedo_crash_jobs.json" && {
        echo "crash-smoke: a recovered job failed:" >&2
        cat "$TMP/acedo_crash_jobs.json" >&2
        exit 1
    }
    if ! grep -Eq '"state": "(queued|running)"' "$TMP/acedo_crash_jobs.json"; then
        break
    fi
    i=$((i + 1))
    [ "$i" -ge 600 ] && { echo "crash-smoke: replayed job never finished" >&2; exit 1; }
    sleep 0.5
done
echo "crash-smoke: replayed job completed"

kill -TERM "$pid"
wait "$pid" 2>/dev/null || true
trap - EXIT
echo "crash-smoke: ok"
