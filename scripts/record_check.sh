#!/bin/sh
# Record-format differential gate (CI): the suite's schema-stable
# snapshot must be byte-identical whichever vm.Recorder captured the
# traces — the direct summary recorder (-traceformat summary, the
# default) or the delta/varint byte encoder (-traceformat bytes) —
# both on a clean suite run and under a deterministic simulator-level
# fault plan (rejected/deferred CU requests, resize stalls, dropped
# timer samples, flipped BBV bits). Runs next to replay-check, which
# gates replay-vs-direct the same way.
set -eu

GO=${GO:-go}
TMP="${TMPDIR:-/tmp}/acedo_record_check_$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/faults.json" <<'EOF'
{
  "seed": 1337,
  "rules": [
    {"point": "unit-request", "kind": "reject", "every": 7},
    {"point": "resize", "kind": "stall", "every": 5, "stall_cycles": 40},
    {"point": "timer-sample", "kind": "drop", "every": 11},
    {"point": "bbv-signature", "kind": "bitflip", "every": 13}
  ]
}
EOF

for plan in none faults; do
    args=""
    [ "$plan" = faults ] && args="-faults $TMP/faults.json"
    $GO run ./cmd/acetables -json "$TMP/sum_$plan.json" -q $args
    $GO run ./cmd/acetables -json "$TMP/byte_$plan.json" -q -traceformat bytes $args
    cmp "$TMP/sum_$plan.json" "$TMP/byte_$plan.json"
    echo "record-check ($plan): snapshots byte-identical"
done
