module acedo

go 1.22
