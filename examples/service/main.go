// Service walks the experiment job daemon end to end, in one process:
// it boots internal/server on a loopback listener, submits jobs over
// real HTTP, and shows the two cache layers doing their work —
//
//  1. record-once/replay-many ACROSS jobs: the first job to run a
//     benchmark records its architectural trace, and a later job on
//     different schemes replays it (watch the dispositions flip from
//     "recorded" to "replayed" and the wall times drop);
//  2. the content-addressed result cache: resubmitting a spec —
//     even spelled differently — returns the first execution's bytes
//     verbatim, with the daemon's instruction counter unmoved.
//
// The same flow works against a standalone daemon: `acelabd -addr
// :8080` plus the curl/acelab commands in docs/API.md.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"acedo/internal/server"
)

// post submits a spec and returns the decoded status plus the HTTP
// status code.
func post(base, spec string) (server.JobStatus, int) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st, resp.StatusCode
}

// wait polls a job to a terminal state.
func wait(base, id string) server.JobStatus {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case server.StateDone:
			return st
		case server.StateFailed, server.StateCanceled:
			log.Fatalf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metrics fetches the daemon's metrics document.
func metrics(base string) server.Metrics {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon up on %s\n\n", base)

	fmt.Println("-- job 1: jess under baseline only (records the trace) --")
	st, code := post(base, `{"benchmarks":["jess"],"schemes":["baseline"],"scale":40,"run_meta":true}`)
	fmt.Printf("submit -> %d %s (spec_hash %.12s)\n", code, st.State, st.SpecHash)
	st = wait(base, st.ID)
	for _, r := range st.Runs {
		fmt.Printf("  %s/%-8s %-9s %6.1f ms\n", r.Benchmark, r.Scheme, r.Disposition, r.WallMS)
	}

	fmt.Println("\n-- job 2: same benchmark, different schemes (replays job 1's trace) --")
	st, code = post(base, `{"benchmarks":["jess"],"schemes":["bbv","hotspot"],"scale":40,"run_meta":true}`)
	fmt.Printf("submit -> %d %s\n", code, st.State)
	st = wait(base, st.ID)
	for _, r := range st.Runs {
		fmt.Printf("  %s/%-8s %-9s %6.1f ms\n", r.Benchmark, r.Scheme, r.Disposition, r.WallMS)
	}
	fmt.Println("  (the trace cache is process-wide: a different JOB replayed it)")

	resp, err := http.Get(base + st.ResultURL)
	if err != nil {
		log.Fatal(err)
	}
	firstResult, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	before := metrics(base)
	fmt.Println("\n-- job 3: job 2's spec again, fields reordered (content-addressed hit) --")
	st2, code := post(base, `{"run_meta":true,"scale":40,"schemes":["bbv","hotspot"],"benchmarks":["jess"]}`)
	fmt.Printf("submit -> %d %s cached=%v (same spec_hash: %v)\n",
		code, st2.State, st2.Cached, st2.SpecHash == st.SpecHash)
	resp, err = http.Get(base + st2.ResultURL)
	if err != nil {
		log.Fatal(err)
	}
	secondResult, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	after := metrics(base)

	fmt.Printf("result bytes identical:   %v (%d bytes)\n",
		string(firstResult) == string(secondResult), len(secondResult))
	fmt.Printf("instructions re-simulated: %d (cache hits execute nothing)\n",
		after.InstrSimulated-before.InstrSimulated)
	fmt.Printf("daemon totals: %d submitted, %d executed, %d from cache\n",
		after.JobsSubmitted, after.JobsCompleted, after.JobsCached)
}
