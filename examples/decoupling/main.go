// Decoupling is the ablation for the paper's Section 3.2 design
// choice: CU decoupling (each hotspot tunes only the unit matching its
// size class — 4 configurations) versus monolithic tuning (every
// hotspot walks all 16 combinatorial configurations, the temporal
// approaches' strategy grafted onto hotspot boundaries).
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
	"acedo/internal/core"
	"acedo/internal/experiment"
)

func runMode(spec acedo.BenchmarkSpec, mode core.Mode) (*acedo.Result, error) {
	opt := acedo.DefaultOptions()
	opt.Core.Mode = mode
	return experiment.Run(spec, acedo.SchemeHotspot, opt)
}

func main() {
	bench := flag.String("bench", "jess", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	base, err := acedo.RunBenchmark(spec, acedo.SchemeBaseline, acedo.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	dec, err := runMode(spec, core.ModeDecoupled)
	if err != nil {
		log.Fatal(err)
	}
	mono, err := runMode(spec, core.ModeMonolithic)
	if err != nil {
		log.Fatal(err)
	}

	saving := func(b, s float64) float64 { return 100 * (b - s) / b }
	slow := func(r *acedo.Result) float64 {
		return 100 * (float64(r.Cycles)/float64(base.Cycles) - 1)
	}

	fmt.Printf("benchmark %s: CU decoupling ablation\n\n", spec.Name)
	fmt.Printf("%-22s %12s %12s\n", "", "decoupled", "monolithic")
	fmt.Printf("%-22s %12d %12d\n", "configs per hotspot", 4, 16)
	d, m := dec.Hotspot, mono.Hotspot
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "hotspots tuned", 100*d.TunedPct, 100*m.TunedPct)
	fmt.Printf("%-22s %12d %12d\n", "tuning measurements",
		d.L1D.Tunings+d.L2.Tunings, m.L1D.Tunings+m.L2.Tunings)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "L1D coverage", 100*d.L1D.Coverage, 100*m.L1D.Coverage)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "L2 coverage", 100*d.L2.Coverage, 100*m.L2.Coverage)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "L1D energy saving",
		saving(base.L1DEnergyNJ, dec.L1DEnergyNJ), saving(base.L1DEnergyNJ, mono.L1DEnergyNJ))
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "L2 energy saving",
		saving(base.L2EnergyNJ, dec.L2EnergyNJ), saving(base.L2EnergyNJ, mono.L2EnergyNJ))
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "slowdown", slow(dec), slow(mono))
	fmt.Println("\nDecoupling tests a quarter of the configurations per hotspot, so")
	fmt.Println("tuning finishes sooner and the best configuration is applied for")
	fmt.Println("more of the execution (paper Section 3.2, Table 5).")
}
