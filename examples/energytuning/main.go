// Energytuning reproduces the paper's headline result on a single
// benchmark: cache energy reduction of the hotspot framework versus
// the BBV comparator versus the full-size baseline (Figures 3 and 4),
// with the per-hotspot configuration choices that produce it.
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
)

func main() {
	bench := flag.String("bench", "db", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	cmp, err := acedo.CompareSchemes(spec, acedo.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s (%s)\n\n", spec.Name, spec.Desc)
	fmt.Printf("%-10s %14s %10s %12s %12s\n", "scheme", "cycles", "IPC", "L1D mJ", "L2 mJ")
	for _, r := range []*acedo.Result{cmp.Base, cmp.BBVRun, cmp.HotRun} {
		fmt.Printf("%-10s %14d %10.3f %12.3f %12.3f\n",
			r.Scheme, r.Cycles, r.IPC, r.L1DEnergyNJ/1e6, r.L2EnergyNJ/1e6)
	}

	fmt.Printf("\nenergy reduction vs baseline (paper Figure 3):\n")
	fmt.Printf("  L1D:  BBV %5.1f%%   hotspot %5.1f%%\n", 100*cmp.L1DSavingBBV, 100*cmp.L1DSavingHot)
	fmt.Printf("  L2:   BBV %5.1f%%   hotspot %5.1f%%\n", 100*cmp.L2SavingBBV, 100*cmp.L2SavingHot)
	fmt.Printf("performance degradation (paper Figure 4):\n")
	fmt.Printf("  BBV %.2f%%   hotspot %.2f%%\n", 100*cmp.SlowdownBBV, 100*cmp.SlowdownHot)

	h := cmp.HotRun.Hotspot
	fmt.Printf("\nframework activity:\n")
	fmt.Printf("  L1D: %d hotspots, %d tunings, %d reconfigurations, %.1f%% coverage\n",
		h.L1D.Hotspots, h.L1D.Tunings, h.L1D.Reconfigs, 100*h.L1D.Coverage)
	fmt.Printf("  L2:  %d hotspots, %d tunings, %d reconfigurations, %.1f%% coverage\n",
		h.L2.Hotspots, h.L2.Tunings, h.L2.Reconfigs, 100*h.L2.Coverage)
	fmt.Printf("  re-tunes after behaviour drift: %d\n", h.Retunes)
}
