// Warmstart demonstrates DO-database persistence: the tuning outcomes
// of one run are exported and fed to a second run of the same program,
// which then configures every recurring hotspot at promotion time with
// zero tuning measurements — the cross-run analogue of the paper's
// zero-latency recurring-phase identification.
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
	"acedo/internal/core"
	"acedo/internal/machine"
	"acedo/internal/vm"
)

func run(spec acedo.BenchmarkSpec, opt acedo.Options, warm *core.Database) (*acedo.Machine, *acedo.Manager) {
	prog, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	mach, err := machine.New(opt.Machine)
	if err != nil {
		log.Fatal(err)
	}
	aos := vm.NewAOS(opt.VM, mach, prog)
	params := opt.Core
	params.WarmStart = warm
	mgr, err := acedo.NewManager(params, mach, aos)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		log.Fatal(err)
	}
	return mach, mgr
}

func main() {
	bench := flag.String("bench", "compress", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	opt := acedo.DefaultOptions()

	coldMach, coldMgr := run(spec, opt, nil)
	coldRep := coldMgr.Report()
	db := coldMgr.ExportDatabase()
	blob, err := db.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  %d tuning measurements, %.3g mJ cache energy\n",
		coldRep.L1D.Tunings+coldRep.L2.Tunings,
		(coldMach.Snapshot().L1DnJ+coldMach.Snapshot().L2nJ)/1e6)
	fmt.Printf("exported DO database: %d tuned hotspots, %d bytes of JSON\n\n",
		len(db.Hotspots), len(blob))

	// A fresh process would ParseDatabase(blob); round-trip it here
	// to prove the serialization carries everything needed.
	restored, err := core.ParseDatabase(blob)
	if err != nil {
		log.Fatal(err)
	}
	warmMach, warmMgr := run(spec, opt, restored)
	warmRep := warmMgr.Report()
	fmt.Printf("warm run:  %d tuning measurements, %.3g mJ cache energy\n",
		warmRep.L1D.Tunings+warmRep.L2.Tunings,
		(warmMach.Snapshot().L1DnJ+warmMach.Snapshot().L2nJ)/1e6)
	fmt.Printf("hotspots configured directly from the database: %d of %d\n",
		warmRep.WarmStarts, warmRep.L1D.Hotspots+warmRep.L2.Hotspots)

	fmt.Println("\nsaved configurations:")
	for _, h := range db.Hotspots {
		fmt.Printf("  %-16s %-5s -> setting %v (tuned IPC %.2f)\n",
			h.Method, h.Class, h.Config, h.TunedIPC)
	}
}
