// Threecu enables the extension third configurable unit — the
// 16/32/48/64-entry issue queue the paper says it was implementing
// ("we are implementing several more CUs, such as the issue window
// and the reorder buffer") — and shows the paper's scalability
// argument in action: the BBV comparator must now explore 64
// combinatorial configurations while CU decoupling still tests 4 per
// hotspot, with small (micro-class) hotspots adapting the window.
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
)

func main() {
	bench := flag.String("bench", "jess", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	opt := acedo.DefaultOptions().WithThreeCU()

	cmp, err := acedo.CompareSchemes(spec, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s with three configurable units\n\n", spec.Name)
	fmt.Printf("%-28s %10s %10s\n", "", "BBV", "hotspot")
	fmt.Printf("%-28s %10d %10d\n", "configs per phase/hotspot", 64, 4)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "IQ energy saving", 100*cmp.IQSavingBBV, 100*cmp.IQSavingHot)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "L1D energy saving", 100*cmp.L1DSavingBBV, 100*cmp.L1DSavingHot)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "L2 energy saving", 100*cmp.L2SavingBBV, 100*cmp.L2SavingHot)
	fmt.Printf("%-28s %9.2f%% %9.2f%%\n", "slowdown", 100*cmp.SlowdownBBV, 100*cmp.SlowdownHot)
	fmt.Printf("%-28s %9.1f%% %9.1f%%\n", "tuning completed",
		100*cmp.BBVRun.BBV.PctIntervalsInTuned, 100*cmp.HotRun.Hotspot.TunedPct)

	h := cmp.HotRun.Hotspot
	fmt.Printf("\nhotspot framework classes: %d micro (IQ), %d L1D, %d L2, %d below class\n",
		h.Micro.Hotspots, h.L1D.Hotspots, h.L2.Hotspots, h.Unmanaged)
	fmt.Printf("micro-class activity: %d tunings, %d reconfigurations, %.1f%% coverage\n",
		h.Micro.Tunings, h.Micro.Reconfigs, 100*h.Micro.Coverage)
	fmt.Println("\nWith a third CU the temporal approach's combinatorial search grows")
	fmt.Println("4x while CU decoupling's per-hotspot work is unchanged — the")
	fmt.Println("scalability property of paper Sections 2.3 and 6.")
}
