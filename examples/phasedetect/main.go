// Phasedetect compares the two phase-detection mechanisms on one
// benchmark: BBV interval classification (temporal) versus hotspot
// detection through the dynamic optimizer (positional) — the paper's
// Section 2 contrast, with the measured characteristics of Tables 4/5.
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
)

func main() {
	bench := flag.String("bench", "compress", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	opt := acedo.DefaultOptions()

	bbvRun, err := acedo.RunBenchmark(spec, acedo.SchemeBBV, opt)
	if err != nil {
		log.Fatal(err)
	}
	hotRun, err := acedo.RunBenchmark(spec, acedo.SchemeHotspot, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d dynamic instructions\n\n", spec.Name, bbvRun.Instr)

	b := bbvRun.BBV
	fmt.Println("temporal approach (BBV, 100K-instruction sampling intervals):")
	fmt.Printf("  %d intervals classified into %d phases\n", b.Intervals, b.Phases)
	fmt.Printf("  stable intervals: %.1f%% (transitional run at full size)\n", 100*b.StablePct)
	fmt.Printf("  phases that finished the 16-combination tuning: %d\n", b.TunedPhases)
	fmt.Printf("  intervals belonging to tuned phases: %.1f%%\n", 100*b.PctIntervalsInTuned)
	fmt.Printf("  per-phase IPC CoV %.1f%%, inter-phase %.1f%%\n\n",
		100*b.PerPhaseIPCCoV, 100*b.InterPhaseIPCCoV)

	h := hotRun.Hotspot
	a := hotRun.AOS
	fmt.Println("positional approach (DO-system hotspots):")
	fmt.Printf("  %d hotspots detected; %.1f%% of execution inside hotspots\n",
		a.Promotions, 100*float64(a.HotspotInstr)/float64(hotRun.Instr))
	fmt.Printf("  mean hotspot size %.0f instructions, mean invocations %.0f\n",
		a.MeanSize, a.MeanInvocation)
	fmt.Printf("  identification latency: %.1f%% of execution (one-time cost)\n",
		100*float64(a.IdentLatencyInstr)/float64(hotRun.Instr))
	fmt.Printf("  size classes: %d L1D hotspots, %d L2 hotspots, %d below class\n",
		h.L1D.Hotspots, h.L2.Hotspots, h.Unmanaged)
	fmt.Printf("  hotspots that finished tuning: %.1f%% (4 configurations each)\n",
		100*h.TunedPct)
	fmt.Printf("  per-hotspot IPC CoV %.1f%%, inter-hotspot %.1f%%\n",
		100*h.PerHotspotIPCCoV, 100*h.InterHotspotIPCCoV)
	fmt.Println("\nrecurring phases: BBV needs at least one interval to re-identify a")
	fmt.Println("phase; a promoted hotspot is recognized at its next invocation with")
	fmt.Println("zero latency (paper Table 1).")
}
