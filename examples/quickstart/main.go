// Quickstart: build a tiny program with the public API, run it under
// the hotspot ACE management framework, and watch the framework detect
// the hotspot, tune the L1 data cache, and save energy.
package main

import (
	"fmt"
	"log"

	"acedo"
)

// buildProgram assembles a program whose hot method repeatedly walks a
// 4 KB array — a classic small-working-set hotspot that should end up
// on a small L1D configuration.
func buildProgram() *acedo.Program {
	b := acedo.NewBuilder("quickstart")
	b.SetMemWords(1024)

	main := b.NewMethod("main")
	hot := b.NewMethod("hot")

	// hot: for rep in 0..2 { for i in 0..512 { acc += a[i] } }
	entry := hot.NewBlock()
	entry.Const(4, 0)  // array base
	entry.Const(11, 0) // rep counter
	entry.Const(12, 2) // reps
	rep := hot.NewBlock()
	rep.Const(5, 0)   // index
	rep.Const(6, 512) // words
	loop := hot.NewBlock()
	loop.Add(7, 4, 5)
	loop.Load(8, 7, 0)
	loop.Add(9, 9, 8)
	loop.AddI(5, 5, 1)
	loop.CmpLt(10, 5, 6)
	loop.Br(10, loop.Index())
	tail := hot.NewBlock()
	tail.AddI(11, 11, 1)
	tail.CmpLt(10, 11, 12)
	tail.Br(10, rep.Index())
	hot.NewBlock().Ret(9)

	// main: call hot 500 times, then halt.
	me := main.NewBlock()
	me.Const(16, 0)
	me.Const(17, 500)
	ml := main.NewBlock()
	ml.Call(15, hot.ID())
	ml.AddI(16, 16, 1)
	ml.CmpLt(18, 16, 17)
	ml.Br(18, ml.Index())
	main.NewBlock().Halt()

	b.SetEntry(main.ID())
	return b.MustBuild()
}

func run(prog *acedo.Program, adaptive bool) (*acedo.Machine, *acedo.Manager) {
	mach, err := acedo.NewMachine(acedo.PaperMachineConfig(10))
	if err != nil {
		log.Fatal(err)
	}
	vp := acedo.DefaultVMParams()
	vp.HotThreshold = 5
	vp.MinSamples = 1
	aos := acedo.NewAOS(vp, mach, prog)

	var mgr *acedo.Manager
	if adaptive {
		mgr, err = acedo.NewManager(acedo.DefaultManagerParams(10), mach, aos)
		if err != nil {
			log.Fatal(err)
		}
	}
	eng, err := acedo.NewEngine(prog, mach, aos)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		log.Fatal(err)
	}
	return mach, mgr
}

func main() {
	prog := buildProgram()

	base, _ := run(prog, false)
	baseSnap := base.Snapshot()
	fmt.Printf("baseline:  %d instructions, IPC %.2f, L1D energy %.3g mJ (cache fixed at 64 KB)\n",
		baseSnap.Instr, baseSnap.IPC(), baseSnap.L1DnJ/1e6)

	mach, mgr := run(buildProgram(), true)
	snap := mach.Snapshot()
	fmt.Printf("adaptive:  %d instructions, IPC %.2f, L1D energy %.3g mJ\n",
		snap.Instr, snap.IPC(), snap.L1DnJ/1e6)

	for _, h := range mgr.Hotspots() {
		fmt.Printf("\nhotspot %q: class=%s state=%s tuned=%v\n",
			h.Prof.Name, h.Class, h.State(), h.TunedOK)
		for i, u := range h.Units() {
			fmt.Printf("  chose %s = %d KB (settings %v)\n",
				u.Name(), u.Setting(h.BestConfig()[i])/1024, u.Settings())
		}
	}
	fmt.Printf("\nL1D energy saving vs baseline: %.1f%%\n",
		100*(baseSnap.L1DnJ-snap.L1DnJ)/baseSnap.L1DnJ)
}
