// Cluster walks the sharded experiment daemon end to end, in one
// process: it boots three internal/server nodes wired into a
// consistent-hash ring over loopback listeners, submits over real
// HTTP, and shows the cluster plane doing its work —
//
//  1. any node accepts any submission: a node that does not own the
//     spec's content address forwards it to the hash-owner, and the
//     job ID comes back qualified with the owner ("j1@b");
//  2. the result cache is cluster-wide: resubmitting the spec to a
//     *different* node answers from the owner's cache, with every
//     node's instruction counter unmoved;
//  3. /metrics and /healthz show the ring: per-node ownership share,
//     forward counters, and probed peer liveness.
//
// The same flow works against standalone daemons: `acelabd -addr
// :8081 -node-id a -peers a=http://h1:8081,b=http://h2:8081` per
// node, plus the acelab commands in docs/API.md. The operator's view
// — deploy, drain, restart, troubleshoot — is docs/OPERATIONS.md.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"acedo/internal/server"
	"acedo/internal/server/cluster"
)

// node is one booted ring member.
type node struct {
	id   string
	base string
	srv  *server.Server
}

// post submits a spec to a node and returns the decoded status plus
// the HTTP status code.
func post(base, spec string) (server.JobStatus, int) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st, resp.StatusCode
}

// wait polls a job to a terminal state; the origin node proxies the
// poll to wherever the job lives.
func wait(base, id string) server.JobStatus {
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case server.StateDone:
			return st
		case server.StateFailed, server.StateCanceled:
			log.Fatalf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metrics fetches one node's metrics document.
func metrics(base string) server.Metrics {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	// Listeners first: the ring membership (node ID -> URL) is part of
	// every node's config, so the addresses must exist before any
	// server is built.
	ids := []string{"a", "b", "c"}
	nodes := make([]*node, len(ids))
	peers := make(map[string]string, len(ids))
	listeners := make([]net.Listener, len(ids))
	for i, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		peers[id] = "http://" + ln.Addr().String()
	}
	for i, id := range ids {
		srv, err := server.New(server.Config{
			Workers: 2,
			Cluster: &cluster.Config{NodeID: id, Peers: peers},
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = &node{id: id, base: peers[id], srv: srv}
		go http.Serve(listeners[i], srv)
	}
	fmt.Println("3-node ring up:")
	for _, n := range nodes {
		m := metrics(n.base)
		fmt.Printf("  %s %s owns %4.1f%% of the hash space\n", n.id, n.base, m.ClusterOwnedPct)
	}

	// Find the spec's owner so the demo can deliberately submit to a
	// non-owner.
	spec := `{"benchmarks":["jess"],"schemes":["baseline","hotspot"],"scale":40,"run_meta":true}`
	ring := nodes[0].srv.ClusterRing()
	var js server.JobSpec
	if err := json.Unmarshal([]byte(spec), &js); err != nil {
		log.Fatal(err)
	}
	js, err := js.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	hash, err := server.SpecHash(js)
	if err != nil {
		log.Fatal(err)
	}
	owner := ring.Owner(hash)
	var origin, third *node
	for _, n := range nodes {
		if n.id != owner && origin == nil {
			origin = n
		} else if n.id != owner {
			third = n
		}
	}

	fmt.Printf("\n-- submit via non-owner %s (the ring says %s owns %.12s) --\n", origin.id, owner, hash)
	st, code := post(origin.base, spec)
	fmt.Printf("submit -> %d %s, job ID %q (qualified with the owner)\n", code, st.State, st.ID)
	st = wait(origin.base, st.ID)
	for _, r := range st.Runs {
		fmt.Printf("  %s/%-8s %-9s %6.1f ms\n", r.Benchmark, r.Scheme, r.Disposition, r.WallMS)
	}

	before := metrics(third.base).InstrSimulated
	fmt.Printf("\n-- resubmit via %s: the cache is cluster-wide --\n", third.id)
	st2, code := post(third.base, spec)
	fmt.Printf("submit -> %d cached=%v (same spec_hash: %v)\n", code, st2.Cached, st2.SpecHash == st.SpecHash)
	fmt.Printf("instructions re-simulated anywhere: %d\n", metrics(third.base).InstrSimulated-before)

	fmt.Println("\n-- the ring in /metrics --")
	for _, n := range nodes {
		m := metrics(n.base)
		fmt.Printf("  %s: forwarded %d, received %d, executed %d, from cache %d\n",
			n.id, m.JobsForwarded, m.JobsForwardReceived, m.JobsCompleted, m.JobsCached)
	}

	fmt.Println("\n-- peer liveness in /healthz --")
	resp, err := http.Get(nodes[0].base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var hz struct {
		ClusterNode string            `json:"cluster_node"`
		Peers       map[string]string `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for id, status := range hz.Peers {
		fmt.Printf("  %s -> %s: %s\n", hz.ClusterNode, id, status)
	}
}
