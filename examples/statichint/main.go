// Statichint is the ablation for the paper's Section 6 future-work
// proposal: the JIT compiler estimates each hotspot's required cache
// configuration by static code analysis, eliminating the tuning
// descent (and its latency and overhead) entirely.
package main

import (
	"flag"
	"fmt"
	"log"

	"acedo"
	"acedo/internal/experiment"
	"acedo/internal/machine"
	"acedo/internal/vm"
)

// runWithHints mirrors experiment.Run for the hotspot scheme but wires
// the static analyzer's hints into the framework.
func runWithHints(spec acedo.BenchmarkSpec, opt acedo.Options) (*acedo.Machine, *acedo.Manager, error) {
	prog, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	mach, err := machine.New(opt.Machine)
	if err != nil {
		return nil, nil, err
	}
	aos := vm.NewAOS(opt.VM, mach, prog)
	params := opt.Core
	params.StaticHint = acedo.NewAnalyzer(prog).HintFor(mach)
	mgr, err := acedo.NewManager(params, mach, aos)
	if err != nil {
		return nil, nil, err
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		return nil, nil, err
	}
	if err := eng.Run(opt.MaxInstr); err != nil && err != vm.ErrBudget {
		return nil, nil, err
	}
	return mach, mgr, nil
}

func main() {
	bench := flag.String("bench", "compress", "benchmark name")
	flag.Parse()

	spec, ok := acedo.BenchmarkByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	opt := acedo.DefaultOptions()

	base, err := acedo.RunBenchmark(spec, acedo.SchemeBaseline, opt)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := experiment.Run(spec, acedo.SchemeHotspot, opt)
	if err != nil {
		log.Fatal(err)
	}
	hintMach, hintMgr, err := runWithHints(spec, opt)
	if err != nil {
		log.Fatal(err)
	}
	hintSnap := hintMach.Snapshot()
	hintRep := hintMgr.Report()

	saving := func(b, s float64) float64 { return 100 * (b - s) / b }
	fmt.Printf("benchmark %s: static-hint ablation (paper Section 6)\n\n", spec.Name)
	fmt.Printf("%-26s %12s %12s\n", "", "tuned", "static hint")
	fmt.Printf("%-26s %12d %12d\n", "tuning measurements",
		tuned.Hotspot.L1D.Tunings+tuned.Hotspot.L2.Tunings,
		hintRep.L1D.Tunings+hintRep.L2.Tunings)
	fmt.Printf("%-26s %11.1f%% %11.1f%%\n", "L1D coverage",
		100*tuned.Hotspot.L1D.Coverage, 100*hintRep.L1D.Coverage)
	fmt.Printf("%-26s %11.1f%% %11.1f%%\n", "L1D energy saving",
		saving(base.L1DEnergyNJ, tuned.L1DEnergyNJ), saving(base.L1DEnergyNJ, hintSnap.L1DnJ))
	fmt.Printf("%-26s %11.1f%% %11.1f%%\n", "L2 energy saving",
		saving(base.L2EnergyNJ, tuned.L2EnergyNJ), saving(base.L2EnergyNJ, hintSnap.L2nJ))
	fmt.Printf("%-26s %11.2f%% %11.2f%%\n", "slowdown",
		100*(float64(tuned.Cycles)/float64(base.Cycles)-1),
		100*(float64(hintSnap.Cycles)/float64(base.Cycles)-1))

	fmt.Println("\nper-hotspot hinted configurations:")
	for _, h := range hintMgr.Hotspots() {
		for i, u := range h.Units() {
			fmt.Printf("  %-14s %-4s -> %3d KB  (state %s, descent skipped: %v)\n",
				h.Prof.Name, u.Name(), u.Setting(h.BestConfig()[i])/1024,
				h.State(), hintRep.L1D.Tunings+hintRep.L2.Tunings == 0)
		}
	}
}
