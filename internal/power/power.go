// Package power implements the Wattch/CACTI-style cache energy model
// the paper's evaluation charges (Section 4.1: a Wattch-based power
// model augmented to account for the power consumed by reconfiguration,
// i.e. writing dirty lines down the hierarchy).
//
// Energy is tracked per cache as
//
//	E = Σ accesses × E_access(current size)
//	  + Σ cycles-in-configuration × P_leak(size)   (leakage)
//	  + flush write-backs × E_flush-line           (reconfiguration)
//
// at the paper's operating point (1 GHz, 2 V), so 1 W of leakage is
// 1 nJ per cycle. The per-size constants follow CACTI-like scaling:
// dynamic per-access energy grows sublinearly with capacity, leakage
// linearly. L1 energy is dominated by dynamic access energy, L2 by
// leakage — which is why the paper's L2 savings track size reductions
// so closely.
package power

import (
	"fmt"
	"sort"
)

// Model gives the energy constants for one cache across its sizes.
type Model struct {
	Name string
	// AccessNJ maps size in bytes to dynamic energy per access (nJ).
	AccessNJ map[int]float64
	// LeakNJPerCycle maps size in bytes to leakage per cycle (nJ),
	// i.e. leakage power in watts at 1 GHz.
	LeakNJPerCycle map[int]float64
	// FlushLineNJ is the energy to write one dirty line to the next
	// level during a reconfiguration flush (control + datapath; the
	// next level's access energy is charged by the hierarchy).
	FlushLineNJ float64
}

// Sizes returns the modelled sizes in ascending order.
func (m Model) Sizes() []int {
	sizes := make([]int, 0, len(m.AccessNJ))
	for s := range m.AccessNJ {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

// Validate checks that every size has both constants and values are
// positive and monotone in size.
func (m Model) Validate() error {
	sizes := m.Sizes()
	if len(sizes) == 0 {
		return fmt.Errorf("power model %s: no sizes", m.Name)
	}
	prevA, prevL := 0.0, 0.0
	for _, s := range sizes {
		a := m.AccessNJ[s]
		l, ok := m.LeakNJPerCycle[s]
		if !ok {
			return fmt.Errorf("power model %s: size %d missing leakage", m.Name, s)
		}
		if a <= 0 || l <= 0 {
			return fmt.Errorf("power model %s: size %d has non-positive energy", m.Name, s)
		}
		if a < prevA || l < prevL {
			return fmt.Errorf("power model %s: energy not monotone in size at %d", m.Name, s)
		}
		prevA, prevL = a, l
	}
	if m.FlushLineNJ < 0 {
		return fmt.Errorf("power model %s: negative flush energy", m.Name)
	}
	return nil
}

// L1Model returns the constants for the 2-way, 64 B-block L1 caches.
// The paper's Table 2 settings are 8/16/32/64 KB; the 4 KB and 128 KB
// entries extrapolate the same CACTI-like scaling (access energy
// ×~1.4–1.5, leakage ×2 per size doubling) for the widened search
// space of internal/optimize. Constants at the paper sizes are
// untouched, so default-configuration runs are unaffected.
func L1Model(name string) Model {
	const kb = 1024
	return Model{
		Name: name,
		AccessNJ: map[int]float64{
			4 * kb:   0.21,
			8 * kb:   0.30,
			16 * kb:  0.42,
			32 * kb:  0.60,
			64 * kb:  0.90,
			128 * kb: 1.35,
		},
		LeakNJPerCycle: map[int]float64{
			4 * kb:   0.0155,
			8 * kb:   0.031,
			16 * kb:  0.062,
			32 * kb:  0.125,
			64 * kb:  0.250,
			128 * kb: 0.500,
		},
		FlushLineNJ: 0.5,
	}
}

// L2Model returns the constants for the 4-way, 128 B-block unified L2.
// The paper's Table 2 settings are 128 KB–1 MB; the 64 KB and 2 MB
// entries extrapolate the same CACTI-like scaling for the widened
// search space of internal/optimize (leakage dominates, doubling per
// size doubling). Constants at the paper sizes are untouched.
func L2Model() Model {
	const kb = 1024
	return Model{
		Name: "L2",
		AccessNJ: map[int]float64{
			64 * kb:   0.70,
			128 * kb:  1.00,
			256 * kb:  1.45,
			512 * kb:  2.05,
			1024 * kb: 3.00,
			2048 * kb: 4.40,
		},
		LeakNJPerCycle: map[int]float64{
			64 * kb:   0.09375,
			128 * kb:  0.1875,
			256 * kb:  0.375,
			512 * kb:  0.750,
			1024 * kb: 1.500,
			2048 * kb: 3.000,
		},
		FlushLineNJ: 4.0,
	}
}

// IQModel returns the constants for the configurable issue queue /
// instruction window (the extension CU the paper says it was
// implementing). Keys are window entry counts rather than bytes. The
// per-"access" energy is charged once per issued instruction (CAM
// wakeup/select scale roughly linearly with entries); draining the
// window on a resize moves no data, so the flush-line energy is zero.
func IQModel() Model {
	return Model{
		Name: "IQ",
		AccessNJ: map[int]float64{
			8:  0.025,
			16: 0.040,
			32: 0.070,
			48: 0.100,
			64: 0.130,
		},
		LeakNJPerCycle: map[int]float64{
			8:  0.010,
			16: 0.020,
			32: 0.040,
			48: 0.060,
			64: 0.080,
		},
		FlushLineNJ: 0,
	}
}

// Meter accumulates one cache's energy as the machine runs. The meter
// must be told about every size change (SetSize) so leakage is charged
// at the right rate per configuration epoch, and must be finalized
// with the end-of-run cycle count before reading totals.
type Meter struct {
	model Model

	dynNJ   float64
	leakNJ  float64
	flushNJ float64

	curSize     int
	curAccessNJ float64
	curLeakNJ   float64
	epochStart  uint64
}

// NewMeter constructs a meter for a cache starting at startSize.
func NewMeter(model Model, startSize int) (*Meter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if _, ok := model.AccessNJ[startSize]; !ok {
		return nil, fmt.Errorf("power meter %s: unmodelled start size %d", model.Name, startSize)
	}
	m := &Meter{model: model}
	m.setSize(startSize, 0)
	return m, nil
}

// MustNewMeter is NewMeter that panics on error.
func MustNewMeter(model Model, startSize int) *Meter {
	m, err := NewMeter(model, startSize)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Meter) setSize(size int, nowCycles uint64) {
	m.curSize = size
	m.curAccessNJ = m.model.AccessNJ[size]
	m.curLeakNJ = m.model.LeakNJPerCycle[size]
	m.epochStart = nowCycles
}

// Access charges one access at the current size.
func (m *Meter) Access() { m.dynNJ += m.curAccessNJ }

// AccessN charges n accesses at the current size.
func (m *Meter) AccessN(n uint64) { m.dynNJ += float64(n) * m.curAccessNJ }

// AccessRepeat charges n accesses one at a time. Unlike AccessN's
// single fused multiply-add, the result is bit-exact with n sequential
// Access calls — the batched issue path uses it so a run charged in
// one call accumulates exactly the same float total as the
// per-instruction reference path, keeping batched and stepped engine
// modes byte-identical in every energy readout.
func (m *Meter) AccessRepeat(n uint64) {
	d, c := m.dynNJ, m.curAccessNJ
	for ; n > 0; n-- {
		d += c
	}
	m.dynNJ = d
}

// FlushWritebacks charges the reconfiguration flush of n dirty lines.
func (m *Meter) FlushWritebacks(n int) { m.flushNJ += float64(n) * m.model.FlushLineNJ }

// SetSize closes the current leakage epoch at nowCycles and switches
// the meter to the new size. It returns an error for unmodelled sizes.
func (m *Meter) SetSize(size int, nowCycles uint64) error {
	if _, ok := m.model.AccessNJ[size]; !ok {
		return fmt.Errorf("power meter %s: unmodelled size %d", m.model.Name, size)
	}
	m.accrueLeak(nowCycles)
	m.setSize(size, nowCycles)
	return nil
}

func (m *Meter) accrueLeak(nowCycles uint64) {
	if nowCycles > m.epochStart {
		m.leakNJ += float64(nowCycles-m.epochStart) * m.curLeakNJ
	}
	m.epochStart = nowCycles
}

// Finalize charges leakage up to nowCycles. It may be called multiple
// times with nondecreasing cycle counts (each call charges the delta).
func (m *Meter) Finalize(nowCycles uint64) { m.accrueLeak(nowCycles) }

// CurrentSize returns the size the meter is charging at.
func (m *Meter) CurrentSize() int { return m.curSize }

// Totals breaks down accumulated energy in nanojoules.
type Totals struct {
	DynamicNJ float64
	LeakageNJ float64
	FlushNJ   float64
}

// TotalNJ returns the sum of all components.
func (t Totals) TotalNJ() float64 { return t.DynamicNJ + t.LeakageNJ + t.FlushNJ }

// Totals returns the accumulated energy. Call Finalize first so
// leakage includes the final epoch.
func (m *Meter) Totals() Totals {
	return Totals{DynamicNJ: m.dynNJ, LeakageNJ: m.leakNJ, FlushNJ: m.flushNJ}
}
