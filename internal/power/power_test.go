package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelsValidate(t *testing.T) {
	for _, m := range []Model{L1Model("L1D"), L1Model("L1I"), L2Model()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		// The paper's 4 Table 2 settings plus one extrapolated size
		// on each end for the widened optimize search space.
		if len(m.Sizes()) != 6 {
			t.Errorf("%s: %d sizes, want 6", m.Name, len(m.Sizes()))
		}
	}
}

func TestModelSizesSorted(t *testing.T) {
	sizes := L2Model().Sizes()
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not ascending: %v", sizes)
		}
	}
}

func TestModelValidateRejects(t *testing.T) {
	bad := []Model{
		{Name: "empty"},
		{Name: "neg", AccessNJ: map[int]float64{8: -1}, LeakNJPerCycle: map[int]float64{8: 1}},
		{Name: "missingleak", AccessNJ: map[int]float64{8: 1}, LeakNJPerCycle: map[int]float64{}},
		{Name: "nonmono", AccessNJ: map[int]float64{8: 2, 16: 1}, LeakNJPerCycle: map[int]float64{8: 1, 16: 2}},
		{Name: "negflush", AccessNJ: map[int]float64{8: 1}, LeakNJPerCycle: map[int]float64{8: 1}, FlushLineNJ: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %s should be invalid", m.Name)
		}
	}
}

func TestMeterAccessEnergy(t *testing.T) {
	model := L1Model("L1D")
	m := MustNewMeter(model, 64*1024)
	m.Access()
	m.AccessN(9)
	m.Finalize(0)
	got := m.Totals().DynamicNJ
	want := 10 * model.AccessNJ[64*1024]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("dynamic = %v, want %v", got, want)
	}
}

func TestMeterLeakagePerEpoch(t *testing.T) {
	model := L1Model("L1D")
	m := MustNewMeter(model, 64*1024)
	// 100 cycles at 64K, then 100 cycles at 8K.
	if err := m.SetSize(8*1024, 100); err != nil {
		t.Fatal(err)
	}
	m.Finalize(200)
	want := 100*model.LeakNJPerCycle[64*1024] + 100*model.LeakNJPerCycle[8*1024]
	if got := m.Totals().LeakageNJ; math.Abs(got-want) > 1e-9 {
		t.Errorf("leakage = %v, want %v", got, want)
	}
}

func TestMeterFinalizeIsIncremental(t *testing.T) {
	model := L1Model("L1D")
	m := MustNewMeter(model, 8*1024)
	m.Finalize(50)
	m.Finalize(100)
	m.Finalize(100) // same cycle twice: no double charge
	want := 100 * model.LeakNJPerCycle[8*1024]
	if got := m.Totals().LeakageNJ; math.Abs(got-want) > 1e-9 {
		t.Errorf("leakage = %v, want %v", got, want)
	}
}

func TestMeterFinalizeIdempotentAcrossSnapshots(t *testing.T) {
	// Reading totals mid-run (interval sampling) must not perturb the
	// accounting: Finalize at an unchanged cycle count is a no-op, so
	// Finalize/Totals pairs can be interleaved freely.
	model := L1Model("L1D")
	m := MustNewMeter(model, 64*1024)
	m.AccessN(3)
	m.Finalize(100)
	first := m.Totals()
	for i := 0; i < 5; i++ {
		m.Finalize(100)
		if got := m.Totals(); got != first {
			t.Fatalf("snapshot %d changed totals: %+v != %+v", i, got, first)
		}
	}
	want := 100 * model.LeakNJPerCycle[64*1024]
	if math.Abs(first.LeakageNJ-want) > 1e-9 {
		t.Errorf("leakage = %v, want %v", first.LeakageNJ, want)
	}
}

func TestMeterSetSizeErrorLeavesEpochUnchanged(t *testing.T) {
	// A rejected resize must not close the leakage epoch or move its
	// start: later finalization still charges from the original epoch
	// boundary at the original size's rate.
	model := L1Model("L1D")
	m := MustNewMeter(model, 64*1024)
	m.Finalize(50)
	if err := m.SetSize(999, 80); err == nil {
		t.Fatal("unmodelled SetSize should fail")
	}
	if m.CurrentSize() != 64*1024 {
		t.Errorf("CurrentSize after failed SetSize = %d", m.CurrentSize())
	}
	m.Finalize(100)
	// 100 cycles at 64K total; a bug that accrued or restarted the
	// epoch at cycle 80 would charge a different amount.
	want := 100 * model.LeakNJPerCycle[64*1024]
	if got := m.Totals().LeakageNJ; math.Abs(got-want) > 1e-9 {
		t.Errorf("leakage = %v, want %v", got, want)
	}
}

func TestMeterFlushEnergy(t *testing.T) {
	model := L2Model()
	m := MustNewMeter(model, 1024*1024)
	m.FlushWritebacks(5)
	if got := m.Totals().FlushNJ; math.Abs(got-5*model.FlushLineNJ) > 1e-9 {
		t.Errorf("flush = %v", got)
	}
}

func TestMeterRejectsUnmodelledSize(t *testing.T) {
	if _, err := NewMeter(L1Model("L1D"), 12345); err == nil {
		t.Error("unmodelled start size should fail")
	}
	m := MustNewMeter(L1Model("L1D"), 8*1024)
	if err := m.SetSize(999, 10); err == nil {
		t.Error("unmodelled SetSize should fail")
	}
}

func TestMeterCurrentSize(t *testing.T) {
	m := MustNewMeter(L1Model("L1D"), 16*1024)
	if m.CurrentSize() != 16*1024 {
		t.Errorf("CurrentSize = %d", m.CurrentSize())
	}
	if err := m.SetSize(32*1024, 0); err != nil {
		t.Fatal(err)
	}
	if m.CurrentSize() != 32*1024 {
		t.Errorf("CurrentSize after SetSize = %d", m.CurrentSize())
	}
}

func TestTotalsSum(t *testing.T) {
	tot := Totals{DynamicNJ: 1, LeakageNJ: 2, FlushNJ: 3}
	if tot.TotalNJ() != 6 {
		t.Errorf("TotalNJ = %v", tot.TotalNJ())
	}
}

// Property: smaller configurations never cost more energy for the
// same activity (monotonicity of the energy model).
func TestSmallerSizeNeverCostsMoreProperty(t *testing.T) {
	model := L1Model("L1D")
	sizes := model.Sizes()
	f := func(accesses uint16, cycles uint16) bool {
		var prev float64 = -1
		for _, sz := range sizes {
			m := MustNewMeter(model, sz)
			m.AccessN(uint64(accesses))
			m.Finalize(uint64(cycles))
			tot := m.Totals().TotalNJ()
			if prev >= 0 && tot < prev {
				return false
			}
			prev = tot
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
