package wss

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{SignatureBits: 0, Threshold: 0.5},
		{SignatureBits: 1000, Threshold: 0.5},
		{SignatureBits: 1024, Threshold: 0},
		{SignatureBits: 1024, Threshold: 1.5},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestDistance(t *testing.T) {
	a := newSignature(128)
	b := newSignature(128)
	if Distance(a, b) != 0 {
		t.Error("two empty signatures should have distance 0")
	}
	a.set(3)
	if Distance(a, a) != 0 {
		t.Error("identical signatures should have distance 0")
	}
	if got := Distance(a, b); got != 1 {
		t.Errorf("disjoint distance = %v, want 1", got)
	}
	b.set(3)
	b.set(70)
	// A={3}, B={3,70}: xor=1, or=2.
	if got := Distance(a, b); got != 0.5 {
		t.Errorf("distance = %v, want 0.5", got)
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newSignature(256)
		b := newSignature(256)
		for i := 0; i < 50; i++ {
			a.set(uint64(rng.Intn(256)))
			b.set(uint64(rng.Intn(256)))
		}
		d := Distance(a, b)
		// Symmetry, range, identity.
		return d == Distance(b, a) && d >= 0 && d <= 1 && Distance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDetectorClassifiesWorkingSets(t *testing.T) {
	d := MustNewDetector(DefaultParams())
	// Interval A: blocks 0..9.
	for pc := uint64(0); pc < 10; pc++ {
		d.Accumulate(pc*16, 8)
	}
	if got := d.Boundary(); got != 0 {
		t.Fatalf("first interval phase = %d", got)
	}
	// Interval B: disjoint blocks 100..109: new phase.
	for pc := uint64(100); pc < 110; pc++ {
		d.Accumulate(pc*16, 8)
	}
	if got := d.Boundary(); got != 1 {
		t.Fatalf("disjoint interval phase = %d, want 1", got)
	}
	// Interval A again, with one extra block: recurring (δ small).
	for pc := uint64(0); pc < 11; pc++ {
		d.Accumulate(pc*16, 8)
	}
	if got := d.Boundary(); got != 0 {
		t.Fatalf("recurring interval phase = %d, want 0", got)
	}
}

func TestAccumulateIgnoresWeight(t *testing.T) {
	// Working sets record membership: executing a block once or a
	// thousand times yields the same signature.
	d1 := MustNewDetector(DefaultParams())
	d2 := MustNewDetector(DefaultParams())
	d1.Accumulate(64, 8)
	for i := 0; i < 1000; i++ {
		d2.Accumulate(64, 8)
	}
	p1 := d1.Boundary()
	// d2 must classify into the same phase as d1's signature...
	// they are separate detectors, so instead check the signature
	// directly: same bits set.
	_ = p1
	if Distance(d1.signatures[0], d2.acc) != 0 {
		t.Error("repetition must not change the signature")
	}
}

func TestDetectorName(t *testing.T) {
	if MustNewDetector(DefaultParams()).Name() != "wss" {
		t.Error("name wrong")
	}
}
