// Package wss implements Dhodapkar & Smith's working-set-signature
// phase detector ("Managing Multi-Configuration Hardware via Dynamic
// Working Set Analysis", ISCA 2002) — the other major temporal
// detection mechanism the paper's Section 2.2 surveys ("instruction
// working sets [9]"). Plugged into the temporal-scheme manager of
// internal/bbv (whose tuning algorithm is already the one prescribed
// by the same paper), it completes the comparison of [10] ("Comparing
// Program Phase Detection Techniques"): BBV against working-set
// signatures against the hotspot framework.
//
// A working set signature is a lossy bit-vector summary of the
// instruction working set: during an interval, every executed basic
// block sets one bit selected by a hash of its address. At the
// interval boundary the relative signature distance
//
//	δ(A, B) = |A xor B| / |A or B|
//
// decides recurrence: the nearest stored phase signature with δ below
// the threshold wins; otherwise a new phase is created. Dhodapkar &
// Smith used 1024-bit signatures with δ ≈ 0.5.
package wss

import (
	"fmt"
	"math/bits"

	"acedo/internal/bbv"
	"acedo/internal/machine"
)

// Params configures the detector.
type Params struct {
	// SignatureBits is the signature size (power of two; 1024 in
	// the original paper).
	SignatureBits int
	// Threshold is the relative-signature-distance δ above which an
	// interval starts a new phase (0.5 in the original paper).
	Threshold float64
}

// DefaultParams returns Dhodapkar & Smith's configuration.
func DefaultParams() Params {
	return Params{SignatureBits: 1024, Threshold: 0.5}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.SignatureBits <= 0 || p.SignatureBits&(p.SignatureBits-1) != 0 {
		return fmt.Errorf("wss: signature bits %d must be a positive power of two", p.SignatureBits)
	}
	if p.Threshold <= 0 || p.Threshold > 1 {
		return fmt.Errorf("wss: threshold %v out of (0,1]", p.Threshold)
	}
	return nil
}

// signature is a fixed bit vector.
type signature []uint64

func newSignature(bits int) signature { return make(signature, bits/64) }

func (s signature) set(i uint64) { s[(i/64)%uint64(len(s))] |= 1 << (i % 64) }

func (s signature) reset() {
	for i := range s {
		s[i] = 0
	}
}

func (s signature) clone() signature {
	out := make(signature, len(s))
	copy(out, s)
	return out
}

// Distance returns the relative signature distance δ(a, b) =
// |a xor b| / |a or b| (0 for two empty signatures).
func Distance(a, b signature) float64 {
	var xor, or int
	for i := range a {
		xor += bits.OnesCount64(a[i] ^ b[i])
		or += bits.OnesCount64(a[i] | b[i])
	}
	if or == 0 {
		return 0
	}
	return float64(xor) / float64(or)
}

// Detector implements bbv.Detector with working-set signatures.
type Detector struct {
	params Params

	acc        signature
	signatures []signature
}

var _ bbv.Detector = (*Detector)(nil)

// NewDetector constructs the detector.
func NewDetector(params Params) (*Detector, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Detector{params: params, acc: newSignature(params.SignatureBits)}, nil
}

// MustNewDetector is NewDetector that panics on error.
func MustNewDetector(params Params) *Detector {
	d, err := NewDetector(params)
	if err != nil {
		panic(err)
	}
	return d
}

// Name identifies the detector.
func (d *Detector) Name() string { return "wss" }

// Accumulate hashes the executed block's address into the signature.
// The instruction count is irrelevant: working sets record membership,
// not weight — one of the representational differences from BBVs.
func (d *Detector) Accumulate(pc uint64, instrs int) {
	d.acc.set(hash(pc))
}

// hash mixes the block address so nearby blocks spread across the
// signature (Dhodapkar & Smith used a random projection; a 64-bit
// finalizer is an adequate stand-in).
func hash(pc uint64) uint64 {
	pc ^= pc >> 33
	pc *= 0xff51afd7ed558ccd
	pc ^= pc >> 33
	return pc
}

// Boundary classifies the finished interval by relative signature
// distance against every stored phase signature.
func (d *Detector) Boundary() int {
	best := -1
	bestD := d.params.Threshold
	for id, sig := range d.signatures {
		if dist := Distance(d.acc, sig); dist < bestD {
			best = id
			bestD = dist
		}
	}
	if best < 0 {
		d.signatures = append(d.signatures, d.acc.clone())
		best = len(d.signatures) - 1
	}
	d.acc.reset()
	return best
}

// NewManager constructs the temporal-scheme manager (stability
// tracking + all-combinations tuner, from internal/bbv) driven by the
// working-set-signature detector. Install the returned manager's
// OnBlock as the engine's block listener.
func NewManager(schemeParams bbv.Params, detParams Params, mach *machine.Machine) (*bbv.Manager, error) {
	det, err := NewDetector(detParams)
	if err != nil {
		return nil, err
	}
	return bbv.NewManagerWithDetector(schemeParams, mach, det)
}
