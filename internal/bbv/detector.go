package bbv

import "acedo/internal/fault"

// BBVDetector is the Basic Block Vector phase detector (Sherwood et
// al.), configured per the paper's Section 4.1: an accumulator table
// of 32 uncompressed 24-bit buckets indexed by basic-block PC bits
// (excluding the two least significant), an unlimited number of stored
// signatures, and Manhattan-distance matching over fraction-normalized
// vectors.
type BBVDetector struct {
	buckets   int
	bucketMax uint32
	threshold float64

	acc        []uint32
	signatures [][]float64

	// faults, when non-nil, may flip accumulator bits at interval
	// boundaries — corrupting the interval vector and any signature
	// stored from it (the bbv-signature injection point).
	faults *fault.Injector
}

var _ Detector = (*BBVDetector)(nil)

// NewBBVDetector constructs the detector from the scheme parameters.
func NewBBVDetector(params Params) *BBVDetector {
	return &BBVDetector{
		buckets:   params.Buckets,
		bucketMax: uint32(1)<<params.BucketBits - 1,
		threshold: params.MatchThreshold,
		acc:       make([]uint32, params.Buckets),
	}
}

// Name identifies the detector.
func (d *BBVDetector) Name() string { return "bbv" }

// SetFaults installs (or, with nil, removes) a fault injector for the
// signature-corruption point.
func (d *BBVDetector) SetFaults(inj *fault.Injector) { d.faults = inj }

// Accumulate charges the executed block to a bucket selected by its
// PC; counters saturate at the configured width.
func (d *BBVDetector) Accumulate(pc uint64, instrs int) {
	i := (pc >> 2) & uint64(d.buckets-1)
	if c := d.acc[i] + uint32(instrs); c <= d.bucketMax {
		d.acc[i] = c
	} else {
		d.acc[i] = d.bucketMax
	}
}

// Boundary classifies the finished interval: the normalized vector is
// matched against every stored signature; the nearest one within the
// threshold wins, otherwise a new phase is created with this vector as
// its signature.
func (d *BBVDetector) Boundary() int {
	if d.faults != nil {
		d.faults.CorruptBBV(d.acc)
	}
	vec := d.normalize()
	for i := range d.acc {
		d.acc[i] = 0
	}
	best := -1
	bestD := d.threshold
	for id, sig := range d.signatures {
		if dist := Manhattan(vec, sig); dist < bestD {
			best = id
			bestD = dist
		}
	}
	if best >= 0 {
		return best
	}
	d.signatures = append(d.signatures, vec)
	return len(d.signatures) - 1
}

// Signature returns a stored phase signature (for inspection/tests).
func (d *BBVDetector) Signature(id int) []float64 {
	if id < 0 || id >= len(d.signatures) {
		return nil
	}
	return d.signatures[id]
}

// normalize converts the accumulator to a fraction vector.
func (d *BBVDetector) normalize() []float64 {
	var sum uint64
	for _, c := range d.acc {
		sum += uint64(c)
	}
	vec := make([]float64, len(d.acc))
	if sum == 0 {
		return vec
	}
	for i, c := range d.acc {
		vec[i] = float64(c) / float64(sum)
	}
	return vec
}

// Manhattan returns the L1 distance between two equal-length vectors.
func Manhattan(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d
}
