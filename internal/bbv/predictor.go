package bbv

// The paper deliberately runs its BBV comparator without a next-phase
// predictor (Section 4.1: "this BBV implementation does not contain a
// next phase predictor") while acknowledging that phase prediction
// [Lau et al., Sherwood et al.] could improve its coverage. This file
// supplies that predictor as an optional extension so the claim can be
// tested: a run-length-encoded Markov predictor in the style of
// Sherwood, Sair and Calder's "Phase Tracking and Prediction".
//
// The predictor maps (current phase, current run length) to the phase
// that followed that state last time. At an interval boundary the
// manager consults it to decide which phase's configuration to apply
// for the *next* interval, instead of assuming the current phase
// persists. Correct predictions let a tuned phase's configuration be
// applied from its first interval; mispredictions apply a wrong
// configuration for one interval, exactly the hazard the paper
// describes ("incorrect predictions cause unnecessary or wrong
// adaptations").

// markovKey is the predictor's state: the phase just classified and
// how many consecutive intervals it has run, bucketed to keep the
// table small and general.
type markovKey struct {
	phase     int
	runBucket uint8
}

// runBucketOf keeps run lengths exact up to 32 intervals (coarser
// buckets alias states near the ends of long runs, making the
// predictor fire early) and clamps beyond.
func runBucketOf(n int) uint8 {
	if n > 32 {
		return 33
	}
	return uint8(n)
}

// Predictor is the RLE Markov next-phase predictor.
type Predictor struct {
	table map[markovKey]int

	// last state, for learning transitions.
	lastKey  markovKey
	haveLast bool

	stats PredictorStats
}

// PredictorStats counts prediction outcomes.
type PredictorStats struct {
	Predictions uint64
	Correct     uint64
}

// Accuracy returns correct/predictions (0 with none).
func (s PredictorStats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predictions)
}

// NewPredictor constructs an empty predictor.
func NewPredictor() *Predictor {
	return &Predictor{table: make(map[markovKey]int)}
}

// Stats returns a copy of the outcome counters.
func (p *Predictor) Stats() PredictorStats { return p.stats }

// Observe records that the interval just classified belongs to phase
// `phase` with the given run length, learning the transition from the
// previous state and scoring the previous prediction.
func (p *Predictor) Observe(phase, runLength int) {
	key := markovKey{phase: phase, runBucket: runBucketOf(runLength)}
	if p.haveLast {
		if pred, ok := p.table[p.lastKey]; ok {
			p.stats.Predictions++
			if pred == phase {
				p.stats.Correct++
			}
		}
		p.table[p.lastKey] = phase
	}
	p.lastKey = key
	p.haveLast = true
}

// Predict returns the phase expected for the next interval given the
// current phase and run length. With no learned transition it falls
// back to persistence (the current phase).
func (p *Predictor) Predict(phase, runLength int) int {
	key := markovKey{phase: phase, runBucket: runBucketOf(runLength)}
	if next, ok := p.table[key]; ok {
		return next
	}
	return phase
}
