// Package bbv implements the comparator resource-adaptation scheme:
// Basic Block Vector phase tracking (Sherwood et al.) combined with
// the all-combinations tuning algorithm of Dhodapkar & Smith — the
// "best technique that prior literature can contribute" the paper
// compares against (Section 5.2).
//
// The implementation follows the paper's Section 4.1 configuration:
// an accumulator table of 32 uncompressed 24-bit buckets indexed by
// basic-block PC bits, an unlimited number of stored signatures,
// Manhattan-distance matching, stable/transitional classification
// (stable = the same phase for two or more consecutive intervals),
// per-phase tuning-state storage with resume, and no next-phase
// predictor. Transitional intervals run the full-size configuration.
package bbv

import (
	"fmt"
	"sort"

	"acedo/internal/ace"
	"acedo/internal/fault"
	"acedo/internal/machine"
	"acedo/internal/stats"
	"acedo/internal/telemetry"
)

// Params configures the BBV scheme.
type Params struct {
	// IntervalInstr is the sampling interval in instructions. The
	// paper sets it to the largest CU reconfiguration interval
	// (the L2's 1 M instructions; scaled per DESIGN.md §4).
	IntervalInstr uint64

	// Buckets is the accumulator table size (32).
	Buckets int

	// BucketBits is the counter width (24); counters saturate.
	BucketBits uint

	// MatchThreshold is the maximum relative Manhattan distance
	// (on fraction-normalized vectors, range [0,2]) for an interval
	// to match a known phase signature.
	MatchThreshold float64

	// StableRun is the run length at which a phase becomes stable
	// and eligible for adaptation (2).
	StableRun int

	// PerfThreshold disqualifies configurations that degrade IPC by
	// more than this fraction versus the all-largest measurement,
	// mirroring the hotspot tuner's objective.
	PerfThreshold float64

	// UsePredictor enables the RLE Markov next-phase predictor (the
	// aggressive BBV variant the paper's Section 4.1 deliberately
	// omits). Off by default, matching the paper's comparator.
	UsePredictor bool

	// OscillationWindow is the temporal oscillation watchdog: after
	// this many consecutive interval boundaries that each changed
	// phase (the detector thrashing, e.g. under signature
	// corruption), the manager degrades — it pins the units to the
	// full-size safe configuration, stops tuning, and emits one
	// TypeDegraded event. Phase classification continues for the
	// run's statistics. 0 disables the watchdog. The default (24)
	// sits above the longest flip streak any suite benchmark
	// exhibits (15, javac), so healthy runs never trip it.
	OscillationWindow int
}

// DefaultParams returns the paper's BBV configuration at the given
// scale divisor.
func DefaultParams(scaleDiv uint64) Params {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	return Params{
		IntervalInstr:  1_000_000 / scaleDiv,
		Buckets:        32,
		BucketBits:     24,
		MatchThreshold: 0.40,
		StableRun:      2,
		PerfThreshold:  0.02,

		OscillationWindow: 24,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.IntervalInstr == 0 {
		return fmt.Errorf("bbv: interval must be positive")
	}
	if p.Buckets <= 0 || p.Buckets&(p.Buckets-1) != 0 {
		return fmt.Errorf("bbv: buckets %d must be a positive power of two", p.Buckets)
	}
	if p.BucketBits == 0 || p.BucketBits > 32 {
		return fmt.Errorf("bbv: bucket width %d out of (0,32]", p.BucketBits)
	}
	if p.MatchThreshold <= 0 || p.MatchThreshold > 2 {
		return fmt.Errorf("bbv: match threshold %v out of (0,2]", p.MatchThreshold)
	}
	if p.StableRun < 2 {
		return fmt.Errorf("bbv: stable run %d must be at least 2", p.StableRun)
	}
	if p.OscillationWindow < 0 {
		return fmt.Errorf("bbv: oscillation window %d must be non-negative", p.OscillationWindow)
	}
	return nil
}

// Phase is one recognized BBV phase and its tuning storage (the
// paper's concession: "a phase's basic block vector information and
// tuning results are stored. Hence, a recurring phase can use its
// chosen configuration if available, or resume its tuning from the
// last tested configuration").
type Phase struct {
	ID int

	// Intervals counts sampling intervals classified as this phase.
	Intervals uint64
	// StableIntervals counts those belonging to runs of length ≥
	// StableRun (retrospectively, for Figure 1).
	StableIntervals uint64

	// Tuning state over the combinatorial configuration list.
	next    int
	meas    []measurement
	Done    bool
	bestPos int

	// IPCW accumulates per-interval IPCs (Table 5's per-phase CoV).
	IPCW stats.Welford
}

type measurement struct {
	valid bool
	ipc   float64
	epi   float64
}

// appliedKind records what the manager configured an interval for.
type appliedKind int

const (
	appliedNone appliedKind = iota // full size (transitional/unknown)
	appliedTest                    // testing a configuration for a phase
	appliedBest                    // running a tuned phase's best config
)

// Detector is the pluggable phase-detection half of a temporal scheme
// (paper Section 2: "most resource adaptation schemes have two
// components: a phase detection mechanism ... and a tuning
// algorithm"). The manager supplies the tuning algorithm; a Detector
// supplies the per-interval classification. Implementations: the BBV
// detector here and the working-set-signature detector in
// internal/wss.
type Detector interface {
	// Accumulate observes one executed basic block.
	Accumulate(pc uint64, instrs int)
	// Boundary classifies the finished interval into a phase ID
	// (dense, starting at 0; a new ID grows the phase table) and
	// resets the accumulator for the next interval.
	Boundary() int
	// Name identifies the detector in reports.
	Name() string
}

// Manager is the temporal-scheme ACE manager: a Detector classifies
// each sampling interval; the manager supplies stability tracking, the
// all-combinations tuner with resume, and the configuration of the
// machine's units at interval boundaries.
type Manager struct {
	params    Params
	mach      *machine.Machine
	units     []*ace.Unit
	combos    [][]int
	groupSize int // combos per innermost-unit group

	det        Detector
	nextBound  uint64
	lastSnap   machine.Snapshot
	phases     []*Phase
	lastPhase  int // phase ID of previous interval, -1 initially
	runLength  int
	intervalNo uint64

	// Oscillation watchdog state: consecutive phase-flip boundaries
	// and whether the manager has degraded to the pinned safe
	// configuration.
	flipRun  int
	degraded bool

	// What the current (in-flight) interval was configured for.
	appliedKind  appliedKind
	appliedPhase int
	appliedPos   int
	// warmup marks a test interval that began with a configuration
	// change: its caches start flushed, so its measurement is
	// discarded and the configuration re-tested (DESIGN.md §4).
	warmup bool

	// pred is the optional next-phase predictor.
	pred *Predictor

	// sink, when non-nil, observes interval classifications and
	// phase tuning completions.
	sink telemetry.Sink

	stats ManagerStats
}

// ManagerStats aggregates the counters Tables 5/6 report for BBV.
type ManagerStats struct {
	Intervals           uint64
	StableIntervals     uint64 // retrospective, Figure 1
	TransitionalIntervs uint64
	Tunings             uint64 // configuration-test measurements recorded
	Reconfigs           uint64 // accepted best-config unit changes
	CoveredInstr        uint64 // instructions in intervals run under a tuned phase's best config
	IntervalsInTuned    uint64 // intervals whose phase eventually finished tuning (computed at Report)
	CorruptSamples      uint64 // interval measurements discarded by the NaN/Inf guard
}

// NewManager constructs the BBV manager bound to a machine. Install
// its OnBlock method as the engine's block listener.
func NewManager(params Params, mach *machine.Machine) (*Manager, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return NewManagerWithDetector(params, mach, NewBBVDetector(params))
}

// NewManagerWithDetector constructs the temporal-scheme manager with a
// custom phase detector (e.g. wss.NewDetector). The Params'
// BBV-specific fields (Buckets, BucketBits, MatchThreshold) are unused
// by custom detectors.
func NewManagerWithDetector(params Params, mach *machine.Machine, det Detector) (*Manager, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if det == nil {
		return nil, fmt.Errorf("bbv: nil detector")
	}
	// Order units so the highest-overhead unit varies slowest in the
	// combination list: the descent then explores cheap (L1D) size
	// reductions within each L2 size before committing to a smaller
	// L2, and the threshold abort prunes sensibly (a failing group
	// head means the L2 itself is too small).
	units := mach.Units()
	sort.SliceStable(units, func(i, j int) bool {
		return units[i].Interval() > units[j].Interval()
	})
	m := &Manager{
		params:       params,
		mach:         mach,
		units:        units,
		combos:       ace.Combinations(units),
		groupSize:    units[len(units)-1].NumSettings(),
		det:          det,
		nextBound:    params.IntervalInstr,
		lastPhase:    -1,
		appliedKind:  appliedNone,
		appliedPhase: -1,
	}
	if params.UsePredictor {
		m.pred = NewPredictor()
	}
	m.lastSnap = mach.Snapshot()
	return m, nil
}

// MustNewManager is NewManager that panics on error.
func MustNewManager(params Params, mach *machine.Machine) *Manager {
	m, err := NewManager(params, mach)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the scheme parameters.
func (m *Manager) Params() Params { return m.params }

// SetSink installs a telemetry sink observing the detector's interval
// classifications and the tuner's phase completions. Pass nil to
// remove it. Install before running the engine.
func (m *Manager) SetSink(s telemetry.Sink) { m.sink = s }

// faultable is implemented by detectors that accept fault injection
// (BBVDetector's signature-corruption point).
type faultable interface {
	SetFaults(*fault.Injector)
}

// SetFaults forwards a fault injector to the detector when it supports
// injection. Install before running the engine.
func (m *Manager) SetFaults(inj *fault.Injector) {
	if f, ok := m.det.(faultable); ok {
		f.SetFaults(inj)
	}
}

// Degraded reports whether the oscillation watchdog tripped.
func (m *Manager) DegradedState() bool { return m.degraded }

// configValues translates a combination index into setting values in
// the manager's unit order.
func (m *Manager) configValues(pos int) []int {
	cfg := m.combos[pos]
	vals := make([]int, len(cfg))
	for i, u := range m.units {
		vals[i] = u.Setting(cfg[i])
	}
	return vals
}

// Phases returns the recognized phases in discovery order.
func (m *Manager) Phases() []*Phase { return m.phases }

// BestConfigOf returns a phase's selected setting-index vector, or nil
// if the phase has not finished tuning.
func (m *Manager) BestConfigOf(ph *Phase) []int {
	if !ph.Done {
		return nil
	}
	return m.combos[ph.bestPos]
}

// Detector returns the phase detector in use.
func (m *Manager) Detector() Detector { return m.det }

// OnBlock feeds the detector's accumulator hardware and checks the
// interval timer. Install it as the engine's block listener.
func (m *Manager) OnBlock(pc uint64, instrs int) {
	m.det.Accumulate(pc, instrs)
	if m.mach.Instructions() >= m.nextBound {
		m.boundary()
	}
}

// boundary closes the finished interval: classify it, record any
// tuning measurement, update phase-run bookkeeping, and configure the
// units for the next interval.
func (m *Manager) boundary() {
	m.nextBound = m.mach.Instructions() + m.params.IntervalInstr
	m.intervalNo++
	m.stats.Intervals++

	snap := m.mach.Snapshot()
	d := machine.Delta(m.lastSnap, snap)
	m.lastSnap = snap

	phaseID := m.det.Boundary()
	for phaseID >= len(m.phases) {
		m.phases = append(m.phases, &Phase{
			ID:   len(m.phases),
			meas: make([]measurement, len(m.combos)),
		})
	}
	ph := m.phases[phaseID]
	ph.Intervals++
	if d.Instr > 0 && stats.Finite(d.IPC()) {
		ph.IPCW.Add(d.IPC())
	}

	// Run bookkeeping (retrospective stability for Figure 1).
	if phaseID == m.lastPhase {
		m.runLength++
		m.flipRun = 0
		if m.runLength == m.params.StableRun {
			// The whole run just became stable, including the
			// earlier intervals.
			m.stats.StableIntervals += uint64(m.params.StableRun)
			ph.StableIntervals += uint64(m.params.StableRun)
		} else if m.runLength > m.params.StableRun {
			m.stats.StableIntervals++
			ph.StableIntervals++
		}
	} else {
		if m.lastPhase >= 0 {
			m.flipRun++
		}
		m.lastPhase = phaseID
		m.runLength = 1
	}
	stable := m.runLength >= m.params.StableRun
	if m.sink != nil {
		m.sink.Emit(telemetry.Event{
			Type:  telemetry.TypePhase,
			Instr: m.mach.Instructions(),
			Phase: &telemetry.PhaseEvent{Phase: phaseID, Stable: stable, IPC: d.IPC()},
		})
	}
	if m.pred != nil {
		m.pred.Observe(phaseID, m.runLength)
	}

	// Attribute the finished interval's measurement. A tuning test
	// is valid only when the interval turned out to be the phase it
	// was configured for.
	switch m.appliedKind {
	case appliedTest:
		if !m.warmup && m.appliedPhase == phaseID && !ph.Done && m.appliedPos == ph.next && d.Instr > 0 {
			epi := (d.L1DnJ + d.L2nJ) / float64(d.Instr)
			if !stats.Finite(d.IPC()) || !stats.Finite(epi) {
				// A corrupted measurement must never enter the
				// tuner's acceptance math; re-test the
				// configuration next stable interval.
				m.stats.CorruptSamples++
				break
			}
			ph.meas[ph.next] = measurement{
				valid: true,
				ipc:   d.IPC(),
				epi:   epi,
			}
			m.stats.Tunings++
			ref := ph.meas[0]
			failed := ref.valid && ph.next > 0 && d.IPC() < (1-m.tolerance(ph))*ref.ipc
			switch {
			case !failed:
				ph.next++
			case ph.next%m.groupSize == 0:
				// The group head (innermost unit at its
				// largest) failed: the outer unit itself is
				// too small — the threshold is reached.
				ph.next = len(m.combos)
			default:
				// Skip the rest of this group; try the next
				// outer-unit setting.
				ph.next = (ph.next/m.groupSize + 1) * m.groupSize
			}
			if ph.next >= len(m.combos) {
				m.finishPhase(ph)
			}
		}
	case appliedBest:
		if m.appliedPhase == phaseID {
			m.stats.CoveredInstr += d.Instr
		}
	}

	// Oscillation watchdog: a long enough streak of phase-flipping
	// boundaries means the detector is thrashing (corrupted
	// signatures, pathological workload) and every reconfiguration
	// it drives is wasted work. Degrade once: pin the full-size
	// safe configuration and stop adapting for the rest of the run.
	now := m.mach.Instructions()
	if !m.degraded && m.params.OscillationWindow > 0 && m.flipRun >= m.params.OscillationWindow {
		m.degraded = true
		if m.sink != nil {
			m.sink.Emit(telemetry.Event{
				Type:  telemetry.TypeDegraded,
				Instr: now,
				Degraded: &telemetry.DegradedEvent{
					Scope:  "phase",
					Phase:  phaseID,
					Flips:  m.flipRun,
					Config: m.configValues(0),
				},
			})
		}
	}
	if m.degraded {
		m.applyConfig(m.combos[0], now, false)
		m.appliedKind = appliedNone
		m.appliedPhase = -1
		return
	}

	// Configure for the next interval. Without the predictor the
	// scheme assumes phase persistence (the paper's Section 4.1
	// comparator); with it, the predicted phase's configuration is
	// applied instead — including from a recurring phase's first
	// interval.
	nextID := phaseID
	if m.pred != nil {
		if p := m.pred.Predict(phaseID, m.runLength); p >= 0 && p < len(m.phases) {
			nextID = p
		}
	}
	nph := m.phases[nextID]
	switch {
	case nph.Done:
		m.applyConfig(m.combos[nph.bestPos], now, true)
		m.appliedKind = appliedBest
		m.appliedPhase = nextID
	case nextID == phaseID && stable:
		m.appliedPos = nph.next
		m.warmup = m.applyConfig(m.combos[nph.next], now, false)
		m.appliedKind = appliedTest
		m.appliedPhase = nextID
	case nextID != phaseID && nph.Intervals >= uint64(m.params.StableRun):
		// Predictor-driven tuning of the predicted recurrence.
		m.appliedPos = nph.next
		m.warmup = m.applyConfig(m.combos[nph.next], now, false)
		m.appliedKind = appliedTest
		m.appliedPhase = nextID
	default:
		// Transitional: full-size configuration.
		m.stats.TransitionalIntervs++
		m.applyConfig(m.combos[0], now, false)
		m.appliedKind = appliedNone
		m.appliedPhase = -1
	}
}

func (m *Manager) applyConfig(cfg []int, now uint64, countReconfigs bool) (anyApplied bool) {
	for i, u := range m.units {
		if u.Request(cfg[i], now) {
			anyApplied = true
			if countReconfigs {
				m.stats.Reconfigs++
			}
		}
	}
	return anyApplied
}

// tolerance returns the phase's IPC acceptance tolerance: the 2%
// threshold widened by the phase's observed interval-to-interval IPC
// variability (capped, so a heterogeneous phase cannot accept a
// genuinely bad configuration), the single-sample analogue of the
// hotspot tuner's standard-error widening.
func (m *Manager) tolerance(ph *Phase) float64 {
	const cap = 0.05
	cov := ph.IPCW.CoV()
	if cov > cap {
		cov = cap
	}
	if cov > m.params.PerfThreshold {
		return cov
	}
	return m.params.PerfThreshold
}

func (m *Manager) finishPhase(ph *Phase) {
	ref := ph.meas[0]
	tol := m.tolerance(ph)
	best := -1
	var bestEPI float64
	for i, ms := range ph.meas {
		if !ms.valid {
			continue
		}
		if ref.valid && ms.ipc < (1-tol)*ref.ipc {
			continue
		}
		if best < 0 || ms.epi < bestEPI {
			best = i
			bestEPI = ms.epi
		}
	}
	if best < 0 {
		best = 0
	}
	ph.bestPos = best
	ph.Done = true
	if m.sink != nil {
		m.sink.Emit(telemetry.Event{
			Type:  telemetry.TypePhaseTuned,
			Instr: m.mach.Instructions(),
			Phase: &telemetry.PhaseEvent{
				Phase:  ph.ID,
				Config: m.configValues(best),
				IPC:    ph.meas[best].ipc,
			},
		})
	}
}

// Report is the BBV scheme's end-of-run accounting.
type Report struct {
	Intervals            uint64
	StablePct            float64 // Figure 1 stable share
	Phases               int
	TunedPhases          int
	PctIntervalsInTuned  float64 // Table 5
	PerPhaseIPCCoV       float64
	InterPhaseIPCCoV     float64
	Tunings              uint64
	Reconfigs            uint64
	Coverage             float64 // covered instr / total instr
	TransitionalInterval uint64
	// Degraded reports an oscillation-watchdog trip: the manager
	// pinned the full-size configuration and stopped adapting.
	Degraded bool
	// CorruptSamples counts interval measurements the NaN/Inf guard
	// discarded.
	CorruptSamples uint64
	// Predictor reports the next-phase predictor's outcomes (zero
	// when the predictor is disabled).
	Predictor PredictorStats
}

// Report computes the aggregates. Call after the run completes.
func (m *Manager) Report() Report {
	r := Report{
		Intervals:            m.stats.Intervals,
		Phases:               len(m.phases),
		Tunings:              m.stats.Tunings,
		Reconfigs:            m.stats.Reconfigs,
		TransitionalInterval: m.stats.TransitionalIntervs,
		Degraded:             m.degraded,
		CorruptSamples:       m.stats.CorruptSamples,
	}
	if m.stats.Intervals > 0 {
		r.StablePct = float64(m.stats.StableIntervals) / float64(m.stats.Intervals)
	}
	var intervalsInTuned uint64
	var perCoV stats.Welford
	var means []float64
	for _, ph := range m.phases {
		if ph.Done {
			r.TunedPhases++
			intervalsInTuned += ph.Intervals
		}
		if ph.IPCW.N() >= 2 {
			perCoV.Add(ph.IPCW.CoV())
		}
		if ph.IPCW.N() >= 1 {
			means = append(means, ph.IPCW.Mean())
		}
	}
	if m.stats.Intervals > 0 {
		r.PctIntervalsInTuned = float64(intervalsInTuned) / float64(m.stats.Intervals)
	}
	r.PerPhaseIPCCoV = perCoV.Mean()
	r.InterPhaseIPCCoV = stats.CoV(means)
	if m.pred != nil {
		r.Predictor = m.pred.Stats()
	}
	if total := m.mach.Instructions(); total > 0 {
		r.Coverage = float64(m.stats.CoveredInstr) / float64(total)
	}
	return r
}
