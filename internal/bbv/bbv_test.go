package bbv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
)

func TestDefaultParamsScaling(t *testing.T) {
	p1 := DefaultParams(1)
	if p1.IntervalInstr != 1_000_000 {
		t.Errorf("paper interval = %d", p1.IntervalInstr)
	}
	p10 := DefaultParams(10)
	if p10.IntervalInstr != 100_000 {
		t.Errorf("scaled interval = %d", p10.IntervalInstr)
	}
	if DefaultParams(0).IntervalInstr != 1_000_000 {
		t.Error("scale 0 means scale 1")
	}
	if err := p10.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	for _, mutate := range []func(*Params){
		func(p *Params) { p.IntervalInstr = 0 },
		func(p *Params) { p.Buckets = 0 },
		func(p *Params) { p.Buckets = 3 },
		func(p *Params) { p.BucketBits = 0 },
		func(p *Params) { p.BucketBits = 33 },
		func(p *Params) { p.MatchThreshold = 0 },
		func(p *Params) { p.MatchThreshold = 3 },
		func(p *Params) { p.StableRun = 1 },
	} {
		p := DefaultParams(10)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutated params %+v should be invalid", p)
		}
	}
}

func TestManhattan(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	if d := Manhattan(a, a); d != 0 {
		t.Errorf("d(a,a) = %v", d)
	}
	if d := Manhattan(a, b); math.Abs(d-1.0) > 1e-12 {
		t.Errorf("d(a,b) = %v, want 1", d)
	}
}

func TestManhattanProperties(t *testing.T) {
	gen := func(rng *rand.Rand) []float64 {
		v := make([]float64, 8)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		dab, dba := Manhattan(a, b), Manhattan(b, a)
		// Symmetry, non-negativity, triangle inequality.
		return dab == dba && dab >= 0 &&
			Manhattan(a, c) <= dab+Manhattan(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnitsOrderedByIntervalDescending(t *testing.T) {
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(DefaultParams(10), mach)
	if err != nil {
		t.Fatal(err)
	}
	if m.units[0].Name() != "L2" || m.units[1].Name() != "L1D" {
		t.Errorf("unit order = [%s %s], want [L2 L1D]", m.units[0].Name(), m.units[1].Name())
	}
	if m.groupSize != 4 {
		t.Errorf("groupSize = %d, want 4", m.groupSize)
	}
	if len(m.combos) != 16 {
		t.Errorf("combos = %d, want 16", len(m.combos))
	}
}

// twoPhaseProgram alternates two long-running methods with distinct
// block PCs and working sets, each lasting several sampling intervals.
func twoPhaseProgram(outer int64) *program.Program {
	b := program.NewBuilder("twophase")
	b.SetMemWords(8192)
	main := b.NewMethod("main")

	emitWalk := func(m *program.MethodBuilder, base, words, reps int64) {
		entry := m.NewBlock()
		entry.Const(4, base)
		entry.Const(11, 0)
		entry.Const(12, reps)
		rep := m.NewBlock()
		rep.Const(5, 0)
		rep.Const(6, words)
		loop := m.NewBlock()
		loop.Add(7, 4, 5)
		loop.Load(8, 7, 0)
		loop.Add(9, 9, 8)
		loop.AddI(5, 5, 1)
		loop.CmpLt(10, 5, 6)
		loop.Br(10, loop.Index())
		tail := m.NewBlock()
		tail.AddI(11, 11, 1)
		tail.CmpLt(10, 11, 12)
		tail.Br(10, rep.Index())
		m.NewBlock().Ret(9)
	}

	pa := b.NewMethod("phaseA")
	emitWalk(pa, 0, 512, 80) // ≈250K instructions per invocation
	pb := b.NewMethod("phaseB")
	emitWalk(pb, 4096, 2048, 20) // ≈250K instructions, different PCs/footprint

	me := main.NewBlock()
	me.Const(16, 0)
	me.Const(17, outer)
	loop := main.NewBlock()
	loop.Call(15, pa.ID())
	loop.Call(15, pa.ID())
	loop.Call(15, pa.ID())
	loop.Call(15, pb.ID())
	loop.Call(15, pb.ID())
	loop.Call(15, pb.ID())
	loop.AddI(16, 16, 1)
	loop.CmpLt(18, 16, 17)
	loop.Br(18, loop.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func runBBV(t *testing.T, prog *program.Program, params Params) (*Manager, *machine.Machine) {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	vp := vm.DefaultParams()
	aos := vm.NewAOS(vp, mach, prog)
	mgr, err := NewManager(params, mach)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetBlockListener(mgr.OnBlock)
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	return mgr, mach
}

func TestDetectsAlternatingPhases(t *testing.T) {
	mgr, _ := runBBV(t, twoPhaseProgram(40), DefaultParams(10))
	rep := mgr.Report()
	if rep.Intervals < 100 {
		t.Fatalf("intervals = %d, want ≥100", rep.Intervals)
	}
	// Two dominant signatures plus straddles: a handful of phases,
	// not one per interval.
	if rep.Phases < 2 || rep.Phases > 12 {
		t.Errorf("phases = %d, want a few", rep.Phases)
	}
	// Each phase run spans ≈2.5 intervals: a majority is stable.
	if rep.StablePct < 0.4 {
		t.Errorf("stable = %.2f, want ≥0.4", rep.StablePct)
	}
}

func TestTuningCompletesAndCovers(t *testing.T) {
	mgr, _ := runBBV(t, twoPhaseProgram(50), DefaultParams(10))
	rep := mgr.Report()
	if rep.TunedPhases == 0 {
		t.Fatalf("no phase finished tuning: %+v", rep)
	}
	if rep.Tunings == 0 || rep.Coverage <= 0 {
		t.Errorf("tunings=%d coverage=%v", rep.Tunings, rep.Coverage)
	}
	if rep.Coverage > 1 || rep.PctIntervalsInTuned > 1 {
		t.Error("fractions out of range")
	}
	for _, ph := range mgr.Phases() {
		if ph.Done {
			if cfg := mgr.BestConfigOf(ph); len(cfg) != 2 {
				t.Errorf("best config = %v", cfg)
			}
		} else if mgr.BestConfigOf(ph) != nil {
			t.Error("unfinished phase must have nil best config")
		}
	}
}

func TestTunedPhaseShrinksCaches(t *testing.T) {
	// Working sets are ≤16 KB, so finished phases must not keep
	// everything at the maximum sizes.
	mgr, mach := runBBV(t, twoPhaseProgram(50), DefaultParams(10))
	shrunk := false
	for _, ph := range mgr.Phases() {
		if cfg := mgr.BestConfigOf(ph); cfg != nil {
			for i, u := range mgr.units {
				if u.Setting(cfg[i]) < u.Setting(u.MaxIndex()) {
					shrunk = true
				}
			}
		}
	}
	if !shrunk {
		t.Error("no tuned phase chose a smaller configuration")
	}
	_ = mach
}

func TestBBVEnergyBelowStatic(t *testing.T) {
	// Compared against a baseline run of the same program at the
	// full sizes, the BBV-managed run must save cache energy.
	prog := twoPhaseProgram(40)
	base, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	aosB := vm.NewAOS(vm.DefaultParams(), base, prog)
	engB, _ := vm.NewEngine(prog, base, aosB)
	if err := engB.Run(0); err != nil {
		t.Fatal(err)
	}
	baseSnap := base.Snapshot()

	_, mach := runBBV(t, twoPhaseProgram(40), DefaultParams(10))
	snap := mach.Snapshot()
	if snap.L2nJ >= baseSnap.L2nJ {
		t.Errorf("BBV L2 energy %.3g ≥ baseline %.3g", snap.L2nJ, baseSnap.L2nJ)
	}
}

func TestAccumulatorSaturates(t *testing.T) {
	p := DefaultParams(10)
	p.BucketBits = 4 // max 15
	d := NewBBVDetector(p)
	for i := 0; i < 10; i++ {
		d.Accumulate(0, 10)
	}
	if d.acc[0] != 15 {
		t.Errorf("bucket = %d, want saturation at 15", d.acc[0])
	}
}

func TestBBVDetectorClassifies(t *testing.T) {
	p := DefaultParams(10)
	d := NewBBVDetector(p)
	// Interval A: all weight in bucket 0.
	d.Accumulate(0, 100)
	if got := d.Boundary(); got != 0 {
		t.Fatalf("first interval phase = %d, want 0", got)
	}
	// Interval B: all weight in a different bucket: new phase.
	d.Accumulate(16<<2, 100)
	if got := d.Boundary(); got != 1 {
		t.Fatalf("distinct interval phase = %d, want 1", got)
	}
	// Interval A again: recurring phase 0.
	d.Accumulate(0, 100)
	if got := d.Boundary(); got != 0 {
		t.Fatalf("recurring interval phase = %d, want 0", got)
	}
	if d.Signature(0) == nil || d.Signature(5) != nil {
		t.Error("signature accessor wrong")
	}
	if d.Name() != "bbv" {
		t.Error("detector name wrong")
	}
}
