package bbv

import (
	"testing"

	"acedo/internal/machine"
	"acedo/internal/telemetry"
)

// flipDetector is a pathological phase detector: every interval is a
// different phase than the last — the thrashing behaviour a corrupted
// signature table produces.
type flipDetector struct{ n int }

func (d *flipDetector) Accumulate(pc uint64, instrs int) {}
func (d *flipDetector) Boundary() int                    { d.n++; return d.n % 2 }
func (d *flipDetector) Name() string                     { return "flip" }

// driveIntervals advances the machine one sampling interval at a time
// and fires the manager's boundary logic.
func driveIntervals(m *Manager, mach *machine.Machine, intervals int) {
	for i := 0; i < intervals; i++ {
		mach.Issue(m.params.IntervalInstr)
		m.OnBlock(0, 1)
	}
}

// TestChaosOscillationWatchdogDegrades: a detector that changes phase
// every interval must trip the oscillation window, pin the safe
// configuration, emit exactly one TypeDegraded event, and stop
// adapting — while phase statistics keep accumulating.
func TestChaosOscillationWatchdogDegrades(t *testing.T) {
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(10)
	p.OscillationWindow = 6
	m, err := NewManagerWithDetector(p, mach, &flipDetector{})
	if err != nil {
		t.Fatal(err)
	}
	var buf telemetry.Buffer
	m.SetSink(&buf)

	driveIntervals(m, mach, 20)

	if !m.DegradedState() {
		t.Fatal("watchdog did not trip after 20 flipping intervals")
	}
	if got := buf.Count(telemetry.TypeDegraded); got != 1 {
		t.Errorf("TypeDegraded events = %d, want exactly 1", got)
	}
	for _, ev := range buf.Events() {
		if ev.Type != telemetry.TypeDegraded {
			continue
		}
		if ev.Degraded.Scope != "phase" {
			t.Errorf("scope = %q, want phase", ev.Degraded.Scope)
		}
		if ev.Degraded.Flips < p.OscillationWindow {
			t.Errorf("flips = %d, want ≥ window (%d)", ev.Degraded.Flips, p.OscillationWindow)
		}
	}
	// Pinned to the safe configuration: every unit at its largest
	// setting (combos[0] holds each unit's top setting index).
	for _, u := range m.units {
		if u.CurrentIndex() != u.NumSettings()-1 {
			t.Errorf("unit %s index = %d, want %d (largest)",
				u.Name(), u.CurrentIndex(), u.NumSettings()-1)
		}
	}
	rep := m.Report()
	if !rep.Degraded {
		t.Error("report must surface the degraded state")
	}
	if rep.Intervals != 20 {
		t.Errorf("intervals = %d, want 20 (classification continues)", rep.Intervals)
	}
}

// TestChaosOscillationWatchdogDisabled pins the zero value: window 0
// never degrades no matter how hard the detector thrashes.
func TestChaosOscillationWatchdogDisabled(t *testing.T) {
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(10)
	p.OscillationWindow = 0
	m, err := NewManagerWithDetector(p, mach, &flipDetector{})
	if err != nil {
		t.Fatal(err)
	}
	var buf telemetry.Buffer
	m.SetSink(&buf)
	driveIntervals(m, mach, 40)
	if m.DegradedState() {
		t.Error("watchdog disabled, manager must not degrade")
	}
	if got := buf.Count(telemetry.TypeDegraded); got != 0 {
		t.Errorf("TypeDegraded events = %d, want 0", got)
	}
}

// TestChaosStableRunsNeverTrip: a detector with healthy stable runs
// (phase changes separated by stable stretches) must never accumulate
// a flip streak, whatever the window.
func TestChaosStableRunsNeverTrip(t *testing.T) {
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(10)
	p.OscillationWindow = 3
	det := &stableDetector{runLen: 4}
	m, err := NewManagerWithDetector(p, mach, det)
	if err != nil {
		t.Fatal(err)
	}
	driveIntervals(m, mach, 60)
	if m.DegradedState() {
		t.Error("stable phase runs must not trip the watchdog")
	}
}

// stableDetector alternates phases in runs of runLen intervals.
type stableDetector struct{ n, runLen int }

func (d *stableDetector) Accumulate(pc uint64, instrs int) {}
func (d *stableDetector) Boundary() int                    { d.n++; return (d.n / d.runLen) % 2 }
func (d *stableDetector) Name() string                     { return "stable" }
