package bbv

import (
	"testing"
)

func TestRunBucketOf(t *testing.T) {
	cases := []struct {
		n    int
		want uint8
	}{{1, 1}, {4, 4}, {5, 5}, {8, 8}, {32, 32}, {33, 33}, {100, 33}}
	for _, c := range cases {
		if got := runBucketOf(c.n); got != c.want {
			t.Errorf("runBucketOf(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPredictorLearnsAlternation(t *testing.T) {
	p := NewPredictor()
	// Phases alternate A(3 intervals), B(2 intervals), repeatedly.
	seq := []struct{ phase, run int }{}
	for i := 0; i < 12; i++ {
		seq = append(seq,
			struct{ phase, run int }{0, 1}, struct{ phase, run int }{0, 2}, struct{ phase, run int }{0, 3},
			struct{ phase, run int }{1, 1}, struct{ phase, run int }{1, 2})
	}
	for _, s := range seq {
		p.Observe(s.phase, s.run)
	}
	// At the end of A's third interval, B follows.
	if got := p.Predict(0, 3); got != 1 {
		t.Errorf("Predict(A,3) = %d, want B", got)
	}
	// Mid-run, A persists.
	if got := p.Predict(0, 1); got != 0 {
		t.Errorf("Predict(A,1) = %d, want A", got)
	}
	// At the end of B's second interval, A follows.
	if got := p.Predict(1, 2); got != 0 {
		t.Errorf("Predict(B,2) = %d, want A", got)
	}
	acc := p.Stats().Accuracy()
	if acc < 0.8 {
		t.Errorf("accuracy = %.2f on a perfectly periodic stream, want ≥0.8", acc)
	}
}

func TestPredictorFallsBackToPersistence(t *testing.T) {
	p := NewPredictor()
	if got := p.Predict(7, 2); got != 7 {
		t.Errorf("unlearned Predict = %d, want persistence", got)
	}
	if p.Stats().Predictions != 0 {
		t.Error("no predictions should be scored before learning")
	}
}

func TestPredictorStatsAccuracyEmpty(t *testing.T) {
	var s PredictorStats
	if s.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestManagerWithPredictorImprovesCoverage(t *testing.T) {
	// On a strictly periodic program, the predictor lets a tuned
	// phase's configuration be applied from the first interval of
	// each recurrence, so coverage must not get worse and the
	// predictor must be accurate.
	prog := twoPhaseProgram(50)
	base := DefaultParams(10)
	mgrOff, _ := runBBV(t, prog, base)

	withPred := DefaultParams(10)
	withPred.UsePredictor = true
	mgrOn, _ := runBBV(t, twoPhaseProgram(50), withPred)

	off := mgrOff.Report()
	on := mgrOn.Report()
	if on.Predictor.Predictions == 0 {
		t.Fatal("predictor recorded no predictions")
	}
	if acc := on.Predictor.Accuracy(); acc < 0.5 {
		t.Errorf("predictor accuracy = %.2f on a periodic program", acc)
	}
	if on.Coverage+0.05 < off.Coverage {
		t.Errorf("predictor reduced coverage: %.2f -> %.2f", off.Coverage, on.Coverage)
	}
	if off.Predictor.Predictions != 0 {
		t.Error("predictor stats must be zero when disabled")
	}
}
