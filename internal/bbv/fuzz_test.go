package bbv

import (
	"testing"

	"acedo/internal/fault"
	"acedo/internal/stats"
)

// FuzzDetector drives the BBV detector with arbitrary
// accumulate/boundary sequences — including injected accumulator
// corruption — and checks the invariants the phase managers rely on:
// classification always returns a valid phase id, stored signatures
// stay normalized and finite, the accumulator is cleared after every
// boundary, and an empty interval classifies consistently.
func FuzzDetector(f *testing.F) {
	f.Add(uint64(0), []byte{1, 2, 3, 0, 4, 5, 6, 0})
	f.Add(uint64(7), []byte{0, 0, 0, 0xff, 0xff, 0xff})
	f.Add(uint64(42), []byte{9, 200, 1, 9, 200, 1, 0, 9, 1, 1})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		d := NewBBVDetector(DefaultParams(10))
		inj, err := fault.New(&fault.Plan{Seed: int64(seed), Rules: []fault.Rule{
			{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip, Every: 2},
		}}, "fuzz", "bbv")
		if err != nil {
			t.Fatal(err)
		}
		d.SetFaults(inj)

		boundaries := 0
		for len(ops) >= 3 {
			pc, instrs, op := uint64(ops[0]), int(ops[1]), ops[2]
			ops = ops[3:]
			if op%4 == 0 {
				checkBoundary(t, d, boundaries)
				boundaries++
				continue
			}
			d.Accumulate(pc<<2|uint64(op)<<10, instrs)
		}
		checkBoundary(t, d, boundaries)

		// The accumulator must be clean after a boundary: with
		// corruption disarmed, two empty intervals in a row classify
		// as the same phase.
		d.SetFaults(nil)
		a := d.Boundary()
		b := d.Boundary()
		if a != b {
			t.Errorf("empty intervals classified differently: %d then %d", a, b)
		}
	})
}

// checkBoundary classifies the current interval and asserts the
// detector's post-boundary invariants.
func checkBoundary(t *testing.T, d *BBVDetector, soFar int) {
	t.Helper()
	id := d.Boundary()
	if id < 0 || id > soFar {
		t.Fatalf("boundary %d returned phase %d, want 0..%d", soFar, id, soFar)
	}
	sig := d.Signature(id)
	if sig == nil || len(sig) != len(d.acc) {
		t.Fatalf("phase %d signature has length %d, want %d", id, len(sig), len(d.acc))
	}
	var sum float64
	for _, v := range sig {
		if !stats.Finite(v) || v < 0 || v > 1 {
			t.Fatalf("phase %d signature entry %v out of range", id, v)
		}
		sum += v
	}
	if sum > 1.0001 {
		t.Fatalf("phase %d signature sums to %v, want ≤ 1", id, sum)
	}
	for i, c := range d.acc {
		if c != 0 {
			t.Fatalf("accumulator bucket %d = %d after boundary, want 0", i, c)
		}
	}
}
