package vm

// Differential determinism tests for the execution tiers: every
// ExecMode must be architecturally indistinguishable — identical
// machine snapshots, memory images, DO databases, sample credits, and
// fault-injection effects — with the block-batched paths differing
// from the instruction-at-a-time oracle only in host wall-clock
// speed.

import (
	"math/rand"
	"reflect"
	"testing"

	"acedo/internal/fault"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/workload"
)

// tierRun captures everything architecturally observable after a run.
type tierRun struct {
	snap     machine.Snapshot
	mem      []int64
	profiles []MethodProfile
	stats    Stats
	err      error
	halted   bool
	promos   uint64
	overhead uint64
	hotInstr uint64
	dropped  uint64
	dup      uint64
}

// runTier executes a freshly built program under one mode and returns
// the observable state. plan, when non-nil, arms the timer-sample
// injection point with a deterministic injector.
func runTier(t *testing.T, build func() *program.Program, mode ExecMode, params Params, budget uint64, plan *fault.Plan) tierRun {
	t.Helper()
	prog := build()
	mach := machine.MustNew(machine.PaperConfig(10))
	aos := NewAOS(params, mach, prog)
	if plan != nil {
		inj, err := fault.New(plan, "differential", "vm")
		if err != nil {
			t.Fatal(err)
		}
		aos.SetFaults(inj)
	}
	eng, err := NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetMode(mode)
	runErr := eng.Run(budget)
	return tierRun{
		snap:     mach.Snapshot(),
		mem:      eng.Mem(),
		profiles: aos.Profiles(),
		stats:    eng.Stats(),
		err:      runErr,
		halted:   eng.Halted(),
		promos:   aos.Promotions(),
		overhead: aos.OverheadInstr(),
		hotInstr: aos.HotspotInstr(),
		dropped:  aos.DroppedSamples(),
		dup:      aos.DupSamples(),
	}
}

// diffTiers fails the test unless got is architecturally identical to
// want (the ModeBaseline oracle).
func diffTiers(t *testing.T, label string, want, got tierRun) {
	t.Helper()
	if want.snap != got.snap {
		t.Errorf("%s: snapshot diverged:\n baseline %+v\n got      %+v", label, want.snap, got.snap)
	}
	if !reflect.DeepEqual(want.mem, got.mem) {
		t.Errorf("%s: memory image diverged", label)
	}
	if !reflect.DeepEqual(want.profiles, got.profiles) {
		t.Errorf("%s: DO database diverged:\n baseline %+v\n got      %+v", label, want.profiles, got.profiles)
	}
	if want.err != got.err {
		t.Errorf("%s: run error diverged: baseline %v, got %v", label, want.err, got.err)
	}
	if want.halted != got.halted {
		t.Errorf("%s: halted diverged: baseline %v, got %v", label, want.halted, got.halted)
	}
	if want.promos != got.promos || want.overhead != got.overhead || want.hotInstr != got.hotInstr {
		t.Errorf("%s: AOS counters diverged: baseline promos=%d overhead=%d hot=%d, got promos=%d overhead=%d hot=%d",
			label, want.promos, want.overhead, want.hotInstr, got.promos, got.overhead, got.hotInstr)
	}
	if want.dropped != got.dropped || want.dup != got.dup {
		t.Errorf("%s: sample fault counters diverged: baseline drop=%d dup=%d, got drop=%d dup=%d",
			label, want.dropped, want.dup, got.dropped, got.dup)
	}
}

// TestExecModesArchitecturallyIdentical runs every suite workload
// under all three modes and requires bit-identical observable state,
// both under an instruction budget and to completion.
func TestExecModesArchitecturallyIdentical(t *testing.T) {
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			build := func() *program.Program {
				prog, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				return prog
			}
			const budget = 400_000
			base := runTier(t, build, ModeBaseline, DefaultParams(), budget, nil)
			if base.stats.BatchedInstr != 0 {
				t.Fatalf("baseline mode batched %d instructions", base.stats.BatchedInstr)
			}
			opt := runTier(t, build, ModeOptimized, DefaultParams(), budget, nil)
			if opt.stats.BatchedInstr == 0 {
				t.Fatal("optimized mode never used the batched path")
			}
			diffTiers(t, "optimized", base, opt)
			tiered := runTier(t, build, ModeTiered, DefaultParams(), budget, nil)
			diffTiers(t, "tiered", base, tiered)
			if tiered.promos > 0 && tiered.stats.BatchedInstr == 0 {
				t.Error("tiered mode promoted a hotspot but never used the batched path")
			}
		})
	}
}

// TestExecModesIdenticalUnderSampleFaults pins the batched sampler
// settlement against the oracle when the fault injector drops and
// duplicates timer samples: the injector must be consulted once per
// due sample in the identical order, so the lossy-profiler effects on
// the DO database replay exactly.
func TestExecModesIdenticalUnderSampleFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 20260806, Rules: []fault.Rule{
		{Point: fault.PointTimerSample, Kind: fault.KindDrop, Prob: 0.3},
		{Point: fault.PointTimerSample, Kind: fault.KindDuplicate, Prob: 0.2},
	}}
	params := DefaultParams()
	params.SampleInterval = 1_000 // dense sampling exercises the replay
	spec := workload.Suite()[0]
	build := func() *program.Program {
		prog, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	base := runTier(t, build, ModeBaseline, params, 500_000, plan)
	if base.dropped == 0 && base.dup == 0 {
		t.Fatal("fault plan produced no sample faults; test is vacuous")
	}
	diffTiers(t, "optimized", base, runTier(t, build, ModeOptimized, params, 500_000, plan))
	diffTiers(t, "tiered", base, runTier(t, build, ModeTiered, params, 500_000, plan))
}

// TestExecModesIdenticalOnRandomPrograms drives the mode equivalence
// over generated programs (the reference-interpreter generator), to
// cover shapes the curated workloads do not.
func TestExecModesIdenticalOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgramInner(rng, newFuzzBuilder(), 1<<12)
		build := func() *program.Program {
			p := prog
			if p == nil {
				t.Fatal("nil program")
			}
			return p
		}
		// The program is shared across modes: the engine mutates only
		// its own memory image, never the sealed program.
		base := runTier(t, build, ModeBaseline, testParams(), 0, nil)
		diffTiers(t, "optimized", base, runTier(t, build, ModeOptimized, testParams(), 0, nil))
		diffTiers(t, "tiered", base, runTier(t, build, ModeTiered, testParams(), 0, nil))
	}
}
