package vm

import (
	"errors"
	"fmt"

	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
)

// ErrBudget is returned by Run when the instruction budget is
// exhausted before the program halts.
var ErrBudget = errors.New("vm: instruction budget exhausted")

type frame struct {
	m          *program.Method
	block      *program.Block
	idx        int
	entryInstr uint64
	retReg     uint8
	regs       [isa.NumRegs]int64
}

// Engine interprets a sealed program on a machine, firing method
// boundary events into the AOS. It is the execution service of the
// dynamic optimization system.
type Engine struct {
	prog *program.Program
	mach *machine.Machine
	aos  *AOS

	mem    []int64
	frames []frame
	depth  int
	halted bool

	// blockListener, when set, observes every basic-block entry
	// (the feed for the BBV accumulator hardware).
	blockListener func(pc uint64, instrs int)
}

// SetBlockListener installs a basic-block entry observer. Pass nil to
// remove it. The listener models profiling hardware, so it must not
// re-enter the engine.
func (e *Engine) SetBlockListener(fn func(pc uint64, instrs int)) {
	e.blockListener = fn
}

// NewEngine constructs an engine. The program must be sealed.
func NewEngine(prog *program.Program, mach *machine.Machine, aos *AOS) (*Engine, error) {
	if !prog.Sealed() {
		return nil, fmt.Errorf("vm: program %q not sealed", prog.Name)
	}
	if aos == nil {
		return nil, fmt.Errorf("vm: nil AOS")
	}
	if err := aos.params.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		prog:   prog,
		mach:   mach,
		aos:    aos,
		mem:    make([]int64, prog.MemWords),
		frames: make([]frame, aos.params.MaxCallDepth),
	}
	e.push(prog.Entry, 0)
	return e, nil
}

// Halted reports whether the program executed OpHalt.
func (e *Engine) Halted() bool { return e.halted }

// Mem returns the data memory image (for tests asserting computation
// results).
func (e *Engine) Mem() []int64 { return e.mem }

// Depth returns the current call depth.
func (e *Engine) Depth() int { return e.depth }

func (e *Engine) push(id program.MethodID, retReg uint8) {
	f := &e.frames[e.depth]
	e.depth++
	f.m = e.prog.Method(id)
	f.retReg = retReg
	f.entryInstr = e.mach.Instructions()
	f.idx = 0
	f.block = f.m.Blocks[0]
	e.mach.Fetch(f.block.PC, len(f.block.Instrs))
	if e.blockListener != nil {
		e.blockListener(f.block.PC, len(f.block.Instrs))
	}
	e.aos.methodEnter(id)
}

func (e *Engine) enterBlock(f *frame, idx int) {
	f.block = f.m.Blocks[idx]
	f.idx = 0
	e.mach.Fetch(f.block.PC, len(f.block.Instrs))
	if e.blockListener != nil {
		e.blockListener(f.block.PC, len(f.block.Instrs))
	}
}

// Run interprets up to maxInstr retired instructions (0 means no
// budget). It returns nil when the program halts, ErrBudget when the
// budget expires first, and a descriptive error for runtime faults
// (out-of-range memory access, bad indirect call, stack overflow).
func (e *Engine) Run(maxInstr uint64) error {
	if e.halted {
		return nil
	}
	start := e.mach.Instructions()
	for {
		if maxInstr > 0 && e.mach.Instructions()-start >= maxInstr {
			return ErrBudget
		}
		f := &e.frames[e.depth-1]
		if f.idx >= len(f.block.Instrs) {
			// Fall through to the next block (the validator
			// guarantees one exists).
			e.enterBlock(f, f.block.Index+1)
			continue
		}
		in := f.block.Instrs[f.idx]
		e.mach.Issue(1)
		for n := e.aos.sampleDue(e.mach.Instructions()); n > 0; n-- {
			for i := 0; i < e.depth; i++ {
				e.aos.creditSample(e.frames[i].m.ID)
			}
		}

		switch in.Op {
		case isa.OpNop:
			f.idx++
		case isa.OpConst:
			f.regs[in.A] = in.Imm
			f.idx++
		case isa.OpAdd:
			f.regs[in.A] = f.regs[in.B] + f.regs[in.C]
			f.idx++
		case isa.OpSub:
			f.regs[in.A] = f.regs[in.B] - f.regs[in.C]
			f.idx++
		case isa.OpMul:
			f.regs[in.A] = f.regs[in.B] * f.regs[in.C]
			f.idx++
		case isa.OpDiv:
			if d := f.regs[in.C]; d != 0 {
				f.regs[in.A] = f.regs[in.B] / d
			} else {
				f.regs[in.A] = 0
			}
			f.idx++
		case isa.OpRem:
			if d := f.regs[in.C]; d != 0 {
				f.regs[in.A] = f.regs[in.B] % d
			} else {
				f.regs[in.A] = 0
			}
			f.idx++
		case isa.OpAnd:
			f.regs[in.A] = f.regs[in.B] & f.regs[in.C]
			f.idx++
		case isa.OpOr:
			f.regs[in.A] = f.regs[in.B] | f.regs[in.C]
			f.idx++
		case isa.OpXor:
			f.regs[in.A] = f.regs[in.B] ^ f.regs[in.C]
			f.idx++
		case isa.OpShl:
			f.regs[in.A] = f.regs[in.B] << (uint64(f.regs[in.C]) & 63)
			f.idx++
		case isa.OpShr:
			f.regs[in.A] = int64(uint64(f.regs[in.B]) >> (uint64(f.regs[in.C]) & 63))
			f.idx++
		case isa.OpAddI:
			f.regs[in.A] = f.regs[in.B] + in.Imm
			f.idx++
		case isa.OpMulI:
			f.regs[in.A] = f.regs[in.B] * in.Imm
			f.idx++
		case isa.OpAndI:
			f.regs[in.A] = f.regs[in.B] & in.Imm
			f.idx++
		case isa.OpXorI:
			f.regs[in.A] = f.regs[in.B] ^ in.Imm
			f.idx++
		case isa.OpShlI:
			f.regs[in.A] = f.regs[in.B] << (uint64(in.Imm) & 63)
			f.idx++
		case isa.OpShrI:
			f.regs[in.A] = int64(uint64(f.regs[in.B]) >> (uint64(in.Imm) & 63))
			f.idx++
		case isa.OpCmpLt:
			f.regs[in.A] = boolReg(f.regs[in.B] < f.regs[in.C])
			f.idx++
		case isa.OpCmpEq:
			f.regs[in.A] = boolReg(f.regs[in.B] == f.regs[in.C])
			f.idx++

		case isa.OpLoad:
			addr := f.regs[in.B] + in.Imm
			if addr < 0 || addr >= int64(len(e.mem)) {
				return e.fault(f, in, fmt.Sprintf("load address %d out of range [0,%d)", addr, len(e.mem)))
			}
			e.mach.Data(uint64(addr), false)
			f.regs[in.A] = e.mem[addr]
			f.idx++
		case isa.OpStore:
			addr := f.regs[in.B] + in.Imm
			if addr < 0 || addr >= int64(len(e.mem)) {
				return e.fault(f, in, fmt.Sprintf("store address %d out of range [0,%d)", addr, len(e.mem)))
			}
			e.mach.Data(uint64(addr), true)
			e.mem[addr] = f.regs[in.A]
			f.idx++

		case isa.OpBr:
			taken := f.regs[in.A] != 0
			e.mach.CondBranch(f.block.PC+uint64(f.idx), taken)
			if taken {
				e.enterBlock(f, int(in.Imm))
			} else {
				f.idx++
			}
		case isa.OpBrZ:
			taken := f.regs[in.A] == 0
			e.mach.CondBranch(f.block.PC+uint64(f.idx), taken)
			if taken {
				e.enterBlock(f, int(in.Imm))
			} else {
				f.idx++
			}
		case isa.OpJmp:
			e.enterBlock(f, int(in.Imm))

		case isa.OpCall:
			if e.depth >= len(e.frames) {
				return e.fault(f, in, "call stack overflow")
			}
			f.idx++ // return address
			callee := program.MethodID(in.Imm)
			args := [4]int64{f.regs[0], f.regs[1], f.regs[2], f.regs[3]}
			e.push(callee, in.A)
			nf := &e.frames[e.depth-1]
			nf.regs[0], nf.regs[1], nf.regs[2], nf.regs[3] = args[0], args[1], args[2], args[3]
		case isa.OpCallR:
			target := f.regs[in.B]
			if target < 0 || int(target) >= e.prog.NumMethods() {
				return e.fault(f, in, fmt.Sprintf("indirect call to m%d out of range (%d methods)", target, e.prog.NumMethods()))
			}
			if e.depth >= len(e.frames) {
				return e.fault(f, in, "call stack overflow")
			}
			f.idx++
			args := [4]int64{f.regs[0], f.regs[1], f.regs[2], f.regs[3]}
			e.push(program.MethodID(target), in.A)
			nf := &e.frames[e.depth-1]
			nf.regs[0], nf.regs[1], nf.regs[2], nf.regs[3] = args[0], args[1], args[2], args[3]

		case isa.OpRet:
			val := f.regs[in.A]
			e.aos.methodExit(f.m.ID, e.mach.Instructions()-f.entryInstr)
			e.depth--
			if e.depth == 0 {
				// Returning from the entry method ends the
				// program like a halt.
				e.halted = true
				return nil
			}
			caller := &e.frames[e.depth-1]
			caller.regs[f.retReg] = val

		case isa.OpHalt:
			e.unwindOnHalt()
			e.halted = true
			return nil

		default:
			return e.fault(f, in, "unimplemented opcode")
		}
	}
}

// unwindOnHalt fires exit events for all in-flight frames so the DO
// database and any boundary hooks see balanced enters/exits.
func (e *Engine) unwindOnHalt() {
	now := e.mach.Instructions()
	for e.depth > 0 {
		f := &e.frames[e.depth-1]
		e.aos.methodExit(f.m.ID, now-f.entryInstr)
		e.depth--
	}
}

func (e *Engine) fault(f *frame, in isa.Instr, msg string) error {
	return fmt.Errorf("vm: fault in %q (m%d) block @%d instr %d [%s]: %s",
		f.m.Name, f.m.ID, f.block.Index, f.idx, in, msg)
}

func boolReg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
