package vm

import (
	"errors"
	"fmt"

	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
)

// ErrBudget is returned by Run when the instruction budget is
// exhausted before the program halts.
var ErrBudget = errors.New("vm: instruction budget exhausted")

// ExecMode selects how the engine dispatches sealed code. Every mode
// is architecturally identical — same retired-instruction counts,
// cycles, energy, sample points, and tuning decisions — the modes
// differ only in host wall-clock speed. The differential determinism
// tests assert exact equality of machine snapshots and DO databases
// across modes.
type ExecMode int

const (
	// ModeOptimized (the default) executes every method through the
	// block-batched fast path: straight-line runs of pre-decoded
	// micro-ops retire with one IssueBatch call and one sampler
	// settlement per run.
	ModeOptimized ExecMode = iota

	// ModeTiered mirrors the paper's baseline/optimizing compiler
	// split: a method executes instruction-at-a-time until the AOS
	// promotes it, after which invocations enter the block-batched
	// optimized tier. Promotion becomes observable in wall-clock
	// simulation speed without perturbing the simulation itself.
	ModeTiered

	// ModeBaseline is the instruction-at-a-time reference path, kept
	// as the differential-testing oracle for the batched modes.
	ModeBaseline
)

// String names the mode.
func (m ExecMode) String() string {
	switch m {
	case ModeOptimized:
		return "optimized"
	case ModeTiered:
		return "tiered"
	case ModeBaseline:
		return "baseline"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

type frame struct {
	m          *program.Method
	block      *program.Block
	idx        int
	entryInstr uint64
	retReg     uint8
	fast       bool
	regs       [isa.NumRegs]int64
}

// Stats reports the engine's execution-tier mix: how many retired
// instructions went through the block-batched fast path versus the
// instruction-at-a-time path. In ModeTiered the batched share grows as
// the AOS promotes hotspots — the tier switch made observable.
type Stats struct {
	// BatchedInstr counts instructions retired by the fast path.
	BatchedInstr uint64
	// SteppedInstr counts instructions retired one at a time.
	SteppedInstr uint64
	// Runs counts batches issued by the fast path (at most one per
	// block entry).
	Runs uint64
}

// Engine interprets a sealed program on a machine, firing method
// boundary events into the AOS. It is the execution service of the
// dynamic optimization system.
type Engine struct {
	prog *program.Program
	mach *machine.Machine
	aos  *AOS

	mem    []int64
	frames []frame
	depth  int
	halted bool
	mode   ExecMode

	// sampleEvery caches the profiler period; 0 disables the
	// per-instruction sampler poll entirely (runs with no AOS
	// sampling configured pay nothing for the profiler).
	sampleEvery uint64

	stats Stats

	// blockListener, when set, observes every basic-block entry
	// (the feed for the BBV accumulator hardware).
	blockListener func(pc uint64, instrs int)

	// rec, when set, observes the architectural event stream (see
	// SetRecorder in record.go). Recording swaps the machine's fetch
	// and data calls for their outcome-observing variants; it never
	// changes what the machine simulates.
	rec Recorder

	// recData buffers the fast path's packed data accesses (BodyData)
	// between block boundaries so a whole body reaches the recorder
	// as one RecordBody call. Reused across bodies; only touched when
	// rec is set.
	recData []uint64
}

// SetBlockListener installs a basic-block entry observer. Pass nil to
// remove it. The listener models profiling hardware, so it must not
// re-enter the engine.
func (e *Engine) SetBlockListener(fn func(pc uint64, instrs int)) {
	e.blockListener = fn
}

// NewEngine constructs an engine in ModeOptimized. The program must be
// sealed.
func NewEngine(prog *program.Program, mach *machine.Machine, aos *AOS) (*Engine, error) {
	if !prog.Sealed() {
		return nil, fmt.Errorf("vm: program %q not sealed", prog.Name)
	}
	if aos == nil {
		return nil, fmt.Errorf("vm: nil AOS")
	}
	if err := aos.params.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		prog:        prog,
		mach:        mach,
		aos:         aos,
		mem:         make([]int64, prog.MemWords),
		frames:      make([]frame, aos.params.MaxCallDepth),
		sampleEvery: aos.params.SampleInterval,
	}
	e.push(prog.Entry, 0)
	return e, nil
}

// SetMode switches the execution mode. It retiers the frames already
// on the stack, so switching before the first Run fully selects the
// path; switching mid-run affects in-flight invocations too.
func (e *Engine) SetMode(m ExecMode) {
	e.mode = m
	for i := 0; i < e.depth; i++ {
		e.frames[i].fast = e.tierFast(e.frames[i].m.ID)
	}
}

// Mode returns the current execution mode.
func (e *Engine) Mode() ExecMode { return e.mode }

// Stats returns the execution-tier counters.
func (e *Engine) Stats() Stats { return e.stats }

// tierFast decides whether a frame of the given method dispatches
// through the block-batched fast path under the current mode.
func (e *Engine) tierFast(id program.MethodID) bool {
	switch e.mode {
	case ModeOptimized:
		return true
	case ModeTiered:
		return e.aos.profiles[id].Promoted
	}
	return false
}

// Halted reports whether the program executed OpHalt.
func (e *Engine) Halted() bool { return e.halted }

// Mem returns the data memory image (for tests asserting computation
// results).
func (e *Engine) Mem() []int64 { return e.mem }

// Depth returns the current call depth.
func (e *Engine) Depth() int { return e.depth }

func (e *Engine) push(id program.MethodID, retReg uint8) {
	f := &e.frames[e.depth]
	e.depth++
	f.m = e.prog.Method(id)
	f.retReg = retReg
	f.entryInstr = e.mach.Instructions()
	f.idx = 0
	f.block = f.m.Blocks[0]
	if e.rec != nil {
		tlb, miss, ok := e.mach.FetchLinesObserved(f.block.FirstLine, f.block.LastLine)
		e.rec.RecordEnter(id, tlb, miss, ok)
	} else {
		e.mach.FetchLines(f.block.FirstLine, f.block.LastLine)
	}
	if e.blockListener != nil {
		e.blockListener(f.block.PC, len(f.block.Instrs))
	}
	e.aos.methodEnter(id)
	// Tier after the enter event: a method promoted on this very
	// invocation enters the optimized tier immediately.
	f.fast = e.tierFast(id)
}

func (e *Engine) enterBlock(f *frame, idx int) {
	f.block = f.m.Blocks[idx]
	f.idx = 0
	if e.rec != nil {
		tlb, miss, ok := e.mach.FetchLinesObserved(f.block.FirstLine, f.block.LastLine)
		e.rec.RecordBlock(idx, tlb, miss, ok)
	} else {
		e.mach.FetchLines(f.block.FirstLine, f.block.LastLine)
	}
	if e.blockListener != nil {
		e.blockListener(f.block.PC, len(f.block.Instrs))
	}
}

// Run interprets up to maxInstr retired instructions (0 means no
// budget). It returns nil when the program halts, ErrBudget when the
// budget expires first, and a descriptive error for runtime faults
// (out-of-range memory access, bad indirect call, stack overflow).
func (e *Engine) Run(maxInstr uint64) error {
	if e.halted {
		return nil
	}
	start := e.mach.Instructions()
	// limit is the absolute instruction count at which the budget
	// expires; no budget becomes an unreachable sentinel so the loop
	// head is a single comparison.
	limit := ^uint64(0)
	if maxInstr > 0 && maxInstr <= limit-start {
		limit = start + maxInstr
	}
	// f tracks the innermost frame; it changes only at call, return,
	// and halt, so the loop re-derives it there rather than every
	// iteration.
	f := &e.frames[e.depth-1]
	for {
		if e.mach.Instructions() >= limit {
			return ErrBudget
		}
		if f.idx >= len(f.block.Instrs) {
			// Fall through to the next block (the validator
			// guarantees one exists).
			e.enterBlock(f, f.block.Index+1)
			continue
		}
		// Fast path: batch the whole block — straight-line runs of
		// simple micro-ops (executed by execRun with no per-op
		// bookkeeping), loads and stores, and the terminating branch
		// retire with one IssueBatch and one sampler settlement.
		// Folding is exact because nothing observable interleaves
		// inside a block: Data and CondBranch never read the
		// instruction count, the frame stack cannot move between a
		// block's instructions, cache/meter configurations only change
		// at method and block boundaries, and sampleDueN replays the
		// per-instruction sampler polls (and their fault-injector
		// consultations) at identical instruction indices. A faulting
		// memory access issues and samples before the bounds check
		// exactly like the stepped path, and the batch is capped to
		// the remaining budget so the stopping point is identical.
		// Calls, returns, and halts flush the batch and drop to the
		// stepped path, which reads the instruction count at frame
		// boundaries.
		if f.fast {
			ops := f.block.Ops
			i := f.idx
			rem := limit - e.mach.Instructions()
			var n uint64
			brIdx := -1
			var fastErr error
			if e.rec != nil {
				e.recData = e.recData[:0]
			}
		walk:
			for i < len(ops) && n < rem {
				op := &ops[i]
				if op.Run > 0 {
					k := uint64(op.Run)
					if k > rem-n {
						k = rem - n
					}
					execRun(&f.regs, ops[i:i+int(k)])
					i += int(k)
					n += k
					continue
				}
				switch op.Op {
				case isa.OpLoad:
					addr := f.regs[op.B] + op.Imm
					n++
					if addr < 0 || addr >= int64(len(e.mem)) {
						f.idx = i
						fastErr = e.fault(f, fmt.Sprintf("load address %d out of range [0,%d)", addr, len(e.mem)))
						break walk
					}
					if e.rec != nil {
						e.recData = append(e.recData, BodyData(uint64(addr), false, e.mach.DataObserved(uint64(addr), false)))
					} else {
						e.mach.Data(uint64(addr), false)
					}
					f.regs[op.A] = e.mem[addr]
					i++
				case isa.OpStore:
					addr := f.regs[op.B] + op.Imm
					n++
					if addr < 0 || addr >= int64(len(e.mem)) {
						f.idx = i
						fastErr = e.fault(f, fmt.Sprintf("store address %d out of range [0,%d)", addr, len(e.mem)))
						break walk
					}
					if e.rec != nil {
						e.recData = append(e.recData, BodyData(uint64(addr), true, e.mach.DataObserved(uint64(addr), true)))
					} else {
						e.mach.Data(uint64(addr), true)
					}
					e.mem[addr] = f.regs[op.A]
					i++
				case isa.OpBr, isa.OpBrZ, isa.OpJmp:
					brIdx = i
					n++
					i++
					break walk
				default:
					// Call, return, halt: frame-moving ops take the
					// stepped path below.
					break walk
				}
			}
			if n > 0 {
				e.mach.IssueBatch(n)
				if e.sampleEvery != 0 {
					if now := e.mach.Instructions(); now >= e.aos.nextSample {
						for t := e.aos.sampleDueN(now, n); t > 0; t-- {
							for d := 0; d < e.depth; d++ {
								e.aos.creditSample(e.frames[d].m.ID)
							}
						}
					}
				}
				e.stats.BatchedInstr += n
				e.stats.Runs++
				if fastErr != nil {
					if e.rec != nil {
						e.rec.RecordBody(e.recData, n, BranchNone)
					}
					return fastErr
				}
				f.idx = i
				if brIdx >= 0 {
					br := &ops[brIdx]
					switch br.Op {
					case isa.OpJmp:
						if e.rec != nil {
							e.rec.RecordBody(e.recData, n, BranchNone)
						}
						e.enterBlock(f, int(br.Imm))
					default:
						taken := (f.regs[br.A] != 0) == (br.Op == isa.OpBr)
						correct := e.mach.CondBranch(f.block.PC+uint64(brIdx), taken)
						if e.rec != nil {
							verdict := BranchWrong
							if correct {
								verdict = BranchCorrect
							}
							e.rec.RecordBody(e.recData, n, verdict)
						}
						if taken {
							e.enterBlock(f, int(br.Imm))
						}
					}
				} else if e.rec != nil {
					e.rec.RecordBody(e.recData, n, BranchNone)
				}
				continue
			}
		}
		op := &f.block.Ops[f.idx]

		// Stepped path: one instruction at a time — the reference
		// semantics (and the cold tier in ModeTiered).
		e.mach.Issue(1)
		if e.rec != nil {
			e.rec.RecordBatch(1)
		}
		if e.sampleEvery != 0 {
			for t := e.aos.sampleDue(e.mach.Instructions()); t > 0; t-- {
				for i := 0; i < e.depth; i++ {
					e.aos.creditSample(e.frames[i].m.ID)
				}
			}
		}
		e.stats.SteppedInstr++

		switch op.Op {
		case isa.OpNop:
			f.idx++
		case isa.OpConst:
			f.regs[op.A] = op.Imm
			f.idx++
		case isa.OpAdd:
			f.regs[op.A] = f.regs[op.B] + f.regs[op.C]
			f.idx++
		case isa.OpSub:
			f.regs[op.A] = f.regs[op.B] - f.regs[op.C]
			f.idx++
		case isa.OpMul:
			f.regs[op.A] = f.regs[op.B] * f.regs[op.C]
			f.idx++
		case isa.OpDiv:
			if d := f.regs[op.C]; d != 0 {
				f.regs[op.A] = f.regs[op.B] / d
			} else {
				f.regs[op.A] = 0
			}
			f.idx++
		case isa.OpRem:
			if d := f.regs[op.C]; d != 0 {
				f.regs[op.A] = f.regs[op.B] % d
			} else {
				f.regs[op.A] = 0
			}
			f.idx++
		case isa.OpAnd:
			f.regs[op.A] = f.regs[op.B] & f.regs[op.C]
			f.idx++
		case isa.OpOr:
			f.regs[op.A] = f.regs[op.B] | f.regs[op.C]
			f.idx++
		case isa.OpXor:
			f.regs[op.A] = f.regs[op.B] ^ f.regs[op.C]
			f.idx++
		case isa.OpShl:
			f.regs[op.A] = f.regs[op.B] << (uint64(f.regs[op.C]) & 63)
			f.idx++
		case isa.OpShr:
			f.regs[op.A] = int64(uint64(f.regs[op.B]) >> (uint64(f.regs[op.C]) & 63))
			f.idx++
		case isa.OpAddI:
			f.regs[op.A] = f.regs[op.B] + op.Imm
			f.idx++
		case isa.OpMulI:
			f.regs[op.A] = f.regs[op.B] * op.Imm
			f.idx++
		case isa.OpAndI:
			f.regs[op.A] = f.regs[op.B] & op.Imm
			f.idx++
		case isa.OpXorI:
			f.regs[op.A] = f.regs[op.B] ^ op.Imm
			f.idx++
		case isa.OpShlI:
			f.regs[op.A] = f.regs[op.B] << (uint64(op.Imm) & 63)
			f.idx++
		case isa.OpShrI:
			f.regs[op.A] = int64(uint64(f.regs[op.B]) >> (uint64(op.Imm) & 63))
			f.idx++
		case isa.OpCmpLt:
			f.regs[op.A] = boolReg(f.regs[op.B] < f.regs[op.C])
			f.idx++
		case isa.OpCmpEq:
			f.regs[op.A] = boolReg(f.regs[op.B] == f.regs[op.C])
			f.idx++

		case isa.OpLoad:
			addr := f.regs[op.B] + op.Imm
			if addr < 0 || addr >= int64(len(e.mem)) {
				return e.fault(f, fmt.Sprintf("load address %d out of range [0,%d)", addr, len(e.mem)))
			}
			if e.rec != nil {
				e.rec.RecordData(uint64(addr), false, e.mach.DataObserved(uint64(addr), false))
			} else {
				e.mach.Data(uint64(addr), false)
			}
			f.regs[op.A] = e.mem[addr]
			f.idx++
		case isa.OpStore:
			addr := f.regs[op.B] + op.Imm
			if addr < 0 || addr >= int64(len(e.mem)) {
				return e.fault(f, fmt.Sprintf("store address %d out of range [0,%d)", addr, len(e.mem)))
			}
			if e.rec != nil {
				e.rec.RecordData(uint64(addr), true, e.mach.DataObserved(uint64(addr), true))
			} else {
				e.mach.Data(uint64(addr), true)
			}
			e.mem[addr] = f.regs[op.A]
			f.idx++

		case isa.OpBr:
			taken := f.regs[op.A] != 0
			correct := e.mach.CondBranch(f.block.PC+uint64(f.idx), taken)
			if e.rec != nil {
				e.rec.RecordBranch(correct)
			}
			if taken {
				e.enterBlock(f, int(op.Imm))
			} else {
				f.idx++
			}
		case isa.OpBrZ:
			taken := f.regs[op.A] == 0
			correct := e.mach.CondBranch(f.block.PC+uint64(f.idx), taken)
			if e.rec != nil {
				e.rec.RecordBranch(correct)
			}
			if taken {
				e.enterBlock(f, int(op.Imm))
			} else {
				f.idx++
			}
		case isa.OpJmp:
			e.enterBlock(f, int(op.Imm))

		case isa.OpCall:
			if e.depth >= len(e.frames) {
				return e.fault(f, "call stack overflow")
			}
			f.idx++ // return address
			callee := program.MethodID(op.Imm)
			args := [4]int64{f.regs[0], f.regs[1], f.regs[2], f.regs[3]}
			e.push(callee, op.A)
			f = &e.frames[e.depth-1]
			f.regs[0], f.regs[1], f.regs[2], f.regs[3] = args[0], args[1], args[2], args[3]
		case isa.OpCallR:
			target := f.regs[op.B]
			if target < 0 || int(target) >= e.prog.NumMethods() {
				return e.fault(f, fmt.Sprintf("indirect call to m%d out of range (%d methods)", target, e.prog.NumMethods()))
			}
			if e.depth >= len(e.frames) {
				return e.fault(f, "call stack overflow")
			}
			f.idx++
			args := [4]int64{f.regs[0], f.regs[1], f.regs[2], f.regs[3]}
			e.push(program.MethodID(target), op.A)
			f = &e.frames[e.depth-1]
			f.regs[0], f.regs[1], f.regs[2], f.regs[3] = args[0], args[1], args[2], args[3]

		case isa.OpRet:
			val := f.regs[op.A]
			e.aos.methodExit(f.m.ID, e.mach.Instructions()-f.entryInstr)
			if e.rec != nil {
				e.rec.RecordExit()
			}
			e.depth--
			if e.depth == 0 {
				// Returning from the entry method ends the
				// program like a halt.
				e.halted = true
				return nil
			}
			caller := &e.frames[e.depth-1]
			caller.regs[f.retReg] = val
			f = caller

		case isa.OpHalt:
			if e.rec != nil {
				e.rec.RecordHalt()
			}
			e.unwindOnHalt()
			e.halted = true
			return nil

		default:
			return e.fault(f, "unimplemented opcode")
		}
	}
}

// execRun executes a straight-line run of pre-decoded simple micro-ops
// against the register file. Simple ops cannot fault and touch neither
// memory nor the machine model, so the loop carries no per-instruction
// bookkeeping — the caller has already issued and sampled the batch.
func execRun(regs *[isa.NumRegs]int64, ops []program.Micro) {
	for i := range ops {
		op := &ops[i]
		switch op.Op {
		case isa.OpNop:
		case isa.OpConst:
			regs[op.A] = op.Imm
		case isa.OpAdd:
			regs[op.A] = regs[op.B] + regs[op.C]
		case isa.OpSub:
			regs[op.A] = regs[op.B] - regs[op.C]
		case isa.OpMul:
			regs[op.A] = regs[op.B] * regs[op.C]
		case isa.OpDiv:
			if d := regs[op.C]; d != 0 {
				regs[op.A] = regs[op.B] / d
			} else {
				regs[op.A] = 0
			}
		case isa.OpRem:
			if d := regs[op.C]; d != 0 {
				regs[op.A] = regs[op.B] % d
			} else {
				regs[op.A] = 0
			}
		case isa.OpAnd:
			regs[op.A] = regs[op.B] & regs[op.C]
		case isa.OpOr:
			regs[op.A] = regs[op.B] | regs[op.C]
		case isa.OpXor:
			regs[op.A] = regs[op.B] ^ regs[op.C]
		case isa.OpShl:
			regs[op.A] = regs[op.B] << (uint64(regs[op.C]) & 63)
		case isa.OpShr:
			regs[op.A] = int64(uint64(regs[op.B]) >> (uint64(regs[op.C]) & 63))
		case isa.OpAddI:
			regs[op.A] = regs[op.B] + op.Imm
		case isa.OpMulI:
			regs[op.A] = regs[op.B] * op.Imm
		case isa.OpAndI:
			regs[op.A] = regs[op.B] & op.Imm
		case isa.OpXorI:
			regs[op.A] = regs[op.B] ^ op.Imm
		case isa.OpShlI:
			regs[op.A] = regs[op.B] << (uint64(op.Imm) & 63)
		case isa.OpShrI:
			regs[op.A] = int64(uint64(regs[op.B]) >> (uint64(op.Imm) & 63))
		case isa.OpCmpLt:
			regs[op.A] = boolReg(regs[op.B] < regs[op.C])
		case isa.OpCmpEq:
			regs[op.A] = boolReg(regs[op.B] == regs[op.C])
		}
	}
}

// unwindOnHalt fires exit events for all in-flight frames so the DO
// database and any boundary hooks see balanced enters/exits.
func (e *Engine) unwindOnHalt() {
	now := e.mach.Instructions()
	for e.depth > 0 {
		f := &e.frames[e.depth-1]
		e.aos.methodExit(f.m.ID, now-f.entryInstr)
		e.depth--
	}
}

func (e *Engine) fault(f *frame, msg string) error {
	in := f.block.Instrs[f.idx]
	return fmt.Errorf("vm: fault in %q (m%d) block @%d instr %d [%s]: %s",
		f.m.Name, f.m.ID, f.block.Index, f.idx, in, msg)
}

func boolReg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
