package vm

// Native fuzz targets. `go test` runs the seed corpus as ordinary
// tests; `go test -fuzz=FuzzEngineVsReference ./internal/vm` explores
// further.

import (
	"math/rand"
	"testing"

	"acedo/internal/machine"
)

// FuzzEngineVsReference drives the random-program differential test
// (see reference_test.go) from fuzzer-chosen seeds.
func FuzzEngineVsReference(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgramInner(rng, newFuzzBuilder(), 1<<12)

		ref := &refMachine{prog: prog}
		want := ref.run(t)

		mach, err := machine.New(machine.PaperConfig(10))
		if err != nil {
			t.Fatal(err)
		}
		aos := NewAOS(testParams(), mach, prog)
		eng, err := NewEngine(prog, mach, aos)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			t.Fatalf("engine fault on valid program: %v", err)
		}
		got := eng.Mem()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mem[%d] = %d, reference %d", i, got[i], want[i])
			}
		}
	})
}

// FuzzEngineUnderManagement runs random programs under the full
// hotspot framework: whatever the tuner does, execution results must
// be identical to the unmanaged run (adaptation must never change
// program semantics).
func FuzzEngineUnderManagement(f *testing.F) {
	for _, seed := range []int64{3, 17, 256} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		run := func(managed bool) []int64 {
			rng := rand.New(rand.NewSource(seed))
			prog := genProgramInner(rng, newFuzzBuilder(), 1<<12)
			mach, err := machine.New(machine.PaperConfig(10))
			if err != nil {
				t.Fatal(err)
			}
			params := testParams()
			aos := NewAOS(params, mach, prog)
			if managed {
				// Minimal stand-in for the manager: hooks
				// with overhead on every promotion, plus
				// actual unit requests.
				aos.OnPromote = func(p *MethodProfile) {
					aos.SetHooks(p.ID, &Hooks{
						Entry: func(*MethodProfile) {
							mach.L1DUnit.Request(0, mach.Instructions())
						},
						Exit: func(*MethodProfile, uint64) {
							mach.L1DUnit.Request(3, mach.Instructions())
						},
						EntryOverhead: 24,
						ExitOverhead:  12,
					})
				}
			}
			eng, err := NewEngine(prog, mach, aos)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Run(0); err != nil {
				t.Fatalf("engine fault: %v", err)
			}
			out := make([]int64, len(eng.Mem()))
			copy(out, eng.Mem())
			return out
		}
		plain := run(false)
		managed := run(true)
		for i := range plain {
			if plain[i] != managed[i] {
				t.Fatalf("mem[%d]: unmanaged %d, managed %d — adaptation changed semantics",
					i, plain[i], managed[i])
			}
		}
	})
}
