package vm

import (
	"fmt"

	"acedo/internal/program"
)

// Recorder observes the engine's architectural event stream during a
// recording run (record-once / replay-many; see internal/rtrace). The
// engine reports every event that touches the machine model, in
// execution order: method entries and intra-method block entries carry
// the block's I-TLB and L1I per-line miss masks (bit i = line
// FirstLine+64i missed; ok is false when the block spans more than 64
// lines and the masks cannot represent it), data accesses carry the
// D-TLB outcome, conditional branches carry the predictor's verdict,
// and retire batches carry their length. Those fixed-configuration
// outcomes are scheme-invariant, so a replayer can re-simulate any
// adaptation scheme from the stream without re-running the fixed
// hardware or the register file.
//
// A recorder must not call back into the engine, the machine, or the
// AOS.
//
// RecordBody is the batched form the fast path uses: one call per
// block body carrying the body's data accesses (packed with BodyData),
// its retire total, and the terminating conditional branch's verdict
// (BranchNone when the body ended without one). It is exactly
// equivalent to the per-event calls in stream order — data accesses,
// then the batch, then the branch — and exists so a recorder can
// process a whole body without per-event interface-call overhead.
type Recorder interface {
	RecordEnter(id program.MethodID, tlbMask, missMask uint64, ok bool)
	RecordBlock(idx int, tlbMask, missMask uint64, ok bool)
	RecordBatch(n uint64)
	RecordData(wordAddr uint64, write, tlbMiss bool)
	RecordBranch(correct bool)
	RecordBody(data []uint64, n uint64, branch int8)
	RecordExit()
	RecordHalt()
}

// RecordBody branch verdicts.
const (
	// BranchNone marks a body with no terminating conditional branch
	// (unconditional jump, fall-through, call/ret/halt, budget cut,
	// or fault).
	BranchNone int8 = iota
	// BranchCorrect marks a correctly predicted terminating branch.
	BranchCorrect
	// BranchWrong marks a mispredicted terminating branch.
	BranchWrong
)

// BodyData packs one data access for RecordBody: the word address,
// the D-TLB outcome, and the write bit.
func BodyData(wordAddr uint64, write, tlbMiss bool) uint64 {
	d := wordAddr << 2
	if tlbMiss {
		d |= 2
	}
	if write {
		d |= 1
	}
	return d
}

// SetRecorder installs (or, with nil, removes) an architectural-stream
// recorder. Recording does not perturb the simulation: the engine
// issues the identical machine calls, merely observing their outcomes.
//
// It must be called on a fresh engine — immediately after NewEngine,
// before any Run. The entry method's construction-time push executed
// before the recorder existed, so SetRecorder re-reports it with the
// cold-structure fetch outcomes reconstructed by the machine (the
// I-TLB and L1I were empty when that push ran, making the outcomes a
// pure function of the block's line range).
func (e *Engine) SetRecorder(r Recorder) error {
	if r == nil {
		e.rec = nil
		return nil
	}
	if e.depth != 1 || e.frames[0].idx != 0 || e.frames[0].block.Index != 0 ||
		e.mach.Instructions() != 0 {
		return fmt.Errorf("vm: recorder must be installed on a fresh engine")
	}
	e.rec = r
	b := e.frames[0].block
	tlb, miss, ok := e.mach.ColdFetchMasks(b.FirstLine, b.LastLine)
	r.RecordEnter(e.frames[0].m.ID, tlb, miss, ok)
	return nil
}

// Passive reports whether the AOS can feed nothing back into the
// simulated machine: no promotion callback is installed and no method
// carries hooks. A passive AOS never charges instrumentation overhead
// and never triggers reconfigurations, so a replayed machine's
// evolution is a pure function of the trace — the precondition the
// span-parallel replay (rtrace.Trace.ReplayParallel) checks before
// splitting a run across goroutines. Sampling may still be active:
// sample credits only touch profiles, never the machine.
func (a *AOS) Passive() bool {
	if a.OnPromote != nil {
		return false
	}
	for _, h := range a.hooks {
		if h != nil {
			return false
		}
	}
	return true
}

// ReplayMethodEnter drives the AOS method-entry event from a trace
// replayer, exactly as the engine's frame push would (promotion check,
// hotspot span tracking, entry hooks with their overhead charges).
func (a *AOS) ReplayMethodEnter(id program.MethodID) { a.methodEnter(id) }

// ReplayMethodExit drives the AOS method-exit event from a trace
// replayer with the invocation's inclusive instruction count.
func (a *AOS) ReplayMethodExit(id program.MethodID, inclusive uint64) {
	a.methodExit(id, inclusive)
}

// ReplayBatchPoll settles the sampling profiler for a replayed retire
// batch of n instructions ending at instruction count now, crediting
// each due sample delivery to every method on the replayer's frame
// stack (outermost first) — the exact settlement the engine performs
// after IssueBatch, fault-injector consultations included.
func (a *AOS) ReplayBatchPoll(now, n uint64, stack []program.MethodID) {
	if a.params.SampleInterval == 0 || now < a.nextSample {
		return
	}
	for t := a.sampleDueN(now, n); t > 0; t-- {
		for _, id := range stack {
			a.creditSample(id)
		}
	}
}
