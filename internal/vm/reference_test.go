package vm

// A differential test of the interpreter: a second, deliberately
// simple reference implementation of the ISA semantics executes
// randomly generated (but guaranteed-terminating, guaranteed-valid)
// programs, and the engine's final memory image must match exactly.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
)

// refRun interprets the program recursively with no hardware model.
// It returns the final memory image.
type refMachine struct {
	prog  *program.Program
	mem   []int64
	steps int
}

func (r *refMachine) run(t *testing.T) []int64 {
	r.mem = make([]int64, r.prog.MemWords)
	var regs [isa.NumRegs]int64
	r.call(t, r.prog.Entry, &regs)
	return r.mem
}

// call executes one method invocation; args/results via the caller's
// register file per the calling convention.
func (r *refMachine) call(t *testing.T, id program.MethodID, caller *[isa.NumRegs]int64) int64 {
	var regs [isa.NumRegs]int64
	regs[0], regs[1], regs[2], regs[3] = caller[0], caller[1], caller[2], caller[3]
	m := r.prog.Method(id)
	bi, ii := 0, 0
	for {
		r.steps++
		if r.steps > 50_000_000 {
			t.Fatal("reference interpreter ran away: generated program not terminating")
		}
		blk := m.Blocks[bi]
		if ii >= len(blk.Instrs) {
			bi, ii = bi+1, 0
			continue
		}
		in := blk.Instrs[ii]
		switch in.Op {
		case isa.OpNop:
			ii++
		case isa.OpConst:
			regs[in.A] = in.Imm
			ii++
		case isa.OpAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
			ii++
		case isa.OpSub:
			regs[in.A] = regs[in.B] - regs[in.C]
			ii++
		case isa.OpMul:
			regs[in.A] = regs[in.B] * regs[in.C]
			ii++
		case isa.OpDiv:
			if regs[in.C] != 0 {
				regs[in.A] = regs[in.B] / regs[in.C]
			} else {
				regs[in.A] = 0
			}
			ii++
		case isa.OpRem:
			if regs[in.C] != 0 {
				regs[in.A] = regs[in.B] % regs[in.C]
			} else {
				regs[in.A] = 0
			}
			ii++
		case isa.OpAnd:
			regs[in.A] = regs[in.B] & regs[in.C]
			ii++
		case isa.OpOr:
			regs[in.A] = regs[in.B] | regs[in.C]
			ii++
		case isa.OpXor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
			ii++
		case isa.OpShl:
			regs[in.A] = regs[in.B] << (uint64(regs[in.C]) & 63)
			ii++
		case isa.OpShr:
			regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(regs[in.C]) & 63))
			ii++
		case isa.OpAddI:
			regs[in.A] = regs[in.B] + in.Imm
			ii++
		case isa.OpMulI:
			regs[in.A] = regs[in.B] * in.Imm
			ii++
		case isa.OpAndI:
			regs[in.A] = regs[in.B] & in.Imm
			ii++
		case isa.OpXorI:
			regs[in.A] = regs[in.B] ^ in.Imm
			ii++
		case isa.OpShlI:
			regs[in.A] = regs[in.B] << (uint64(in.Imm) & 63)
			ii++
		case isa.OpShrI:
			regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(in.Imm) & 63))
			ii++
		case isa.OpCmpLt:
			regs[in.A] = b2i(regs[in.B] < regs[in.C])
			ii++
		case isa.OpCmpEq:
			regs[in.A] = b2i(regs[in.B] == regs[in.C])
			ii++
		case isa.OpLoad:
			regs[in.A] = r.mem[regs[in.B]+in.Imm]
			ii++
		case isa.OpStore:
			r.mem[regs[in.B]+in.Imm] = regs[in.A]
			ii++
		case isa.OpBr:
			if regs[in.A] != 0 {
				bi, ii = int(in.Imm), 0
			} else {
				ii++
			}
		case isa.OpBrZ:
			if regs[in.A] == 0 {
				bi, ii = int(in.Imm), 0
			} else {
				ii++
			}
		case isa.OpJmp:
			bi, ii = int(in.Imm), 0
		case isa.OpCall:
			regs[in.A] = r.call(t, program.MethodID(in.Imm), &regs)
			ii++
		case isa.OpCallR:
			regs[in.A] = r.call(t, program.MethodID(regs[in.B]), &regs)
			ii++
		case isa.OpRet:
			return regs[in.A]
		case isa.OpHalt:
			return 0
		default:
			t.Fatalf("reference: unhandled op %s", in.Op)
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// genProgramInner builds a random, valid, terminating program:
//
//   - methods call only lower-ID methods (no recursion);
//   - every loop is a counted loop with a fresh counter register;
//   - every memory address is a constant base plus an AndI-masked
//     index, both inside the memory image.
func genProgramInner(rng *rand.Rand, b *program.Builder, memWords int) *program.Program {
	nAux := 1 + rng.Intn(4)
	var ids []program.MethodID

	emitBody := func(m *program.MethodBuilder, canCall bool, last bool) {
		// Entry block: constants.
		entry := m.NewBlock()
		for r := uint8(4); r < 10; r++ {
			entry.Const(r, int64(rng.Intn(1<<16))-1<<15)
		}
		entry.Const(10, 0)                     // loop counter
		entry.Const(11, int64(2+rng.Intn(30))) // loop bound

		// Loop body: random straight-line ops.
		body := m.NewBlock()
		nOps := 3 + rng.Intn(12)
		for i := 0; i < nOps; i++ {
			a := uint8(4 + rng.Intn(6))
			x := uint8(4 + rng.Intn(6))
			y := uint8(4 + rng.Intn(6))
			switch rng.Intn(12) {
			case 0:
				body.Add(a, x, y)
			case 1:
				body.Sub(a, x, y)
			case 2:
				body.Mul(a, x, y)
			case 3:
				body.Xor(a, x, y)
			case 4:
				body.AddI(a, x, int64(rng.Intn(1000)))
			case 5:
				body.ShrI(a, x, int64(rng.Intn(8)))
			case 6:
				body.CmpLt(a, x, y)
			case 7:
				body.Emit(isa.Instr{Op: isa.OpDiv, A: a, B: x, C: y})
			case 8:
				body.Emit(isa.Instr{Op: isa.OpRem, A: a, B: x, C: y})
			case 9: // masked load
				body.AndI(12, x, int64(memWords/2-1))
				body.Const(13, int64(rng.Intn(memWords/2)))
				body.Add(13, 13, 12)
				body.Load(a, 13, 0)
			case 10: // masked store
				body.AndI(12, x, int64(memWords/2-1))
				body.Const(13, int64(rng.Intn(memWords/2)))
				body.Add(13, 13, 12)
				body.Store(a, 13, 0)
			case 11:
				if canCall && len(ids) > 0 {
					callee := ids[rng.Intn(len(ids))]
					body.Const(0, int64(rng.Intn(100)))
					if rng.Intn(4) == 0 {
						// Indirect call with a constant target.
						body.Const(14, int64(callee))
						body.CallR(15, 14)
					} else {
						body.Call(15, callee)
					}
				} else {
					body.Nop()
				}
			}
		}
		body.AddI(10, 10, 1)
		body.CmpLt(12, 10, 11)
		body.Br(12, body.Index())

		exit := m.NewBlock()
		if last {
			exit.Const(20, 0)
			exit.Store(15, 20, 0) // make the last call result observable
			exit.Halt()
		} else {
			exit.Ret(15)
		}
	}

	for i := 0; i < nAux; i++ {
		m := b.NewMethod("aux")
		emitBody(m, i > 0, false)
		ids = append(ids, m.ID())
	}
	main := b.NewMethod("main")
	emitBody(main, true, true)
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestEngineMatchesReferenceInterpreter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgramInner(rng, newFuzzBuilder(), 1<<12)

		ref := &refMachine{prog: prog}
		want := ref.run(t)

		mach, err := machine.New(machine.PaperConfig(10))
		if err != nil {
			t.Fatal(err)
		}
		aos := NewAOS(testParams(), mach, prog)
		eng, err := NewEngine(prog, mach, aos)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			t.Logf("seed %d: engine fault: %v", seed, err)
			return false
		}
		got := eng.Mem()
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: mem[%d] = %d, reference %d", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newFuzzBuilder() *program.Builder {
	b := program.NewBuilder("fuzz")
	b.SetMemWords(1 << 12)
	return b
}
