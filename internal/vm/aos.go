package vm

import (
	"acedo/internal/fault"
	"acedo/internal/machine"
	"acedo/internal/program"
)

// MethodProfile is a method's entry in the DO database: the runtime
// profiling information the dynamic optimizer gathers (Section 3.1)
// plus the storage the ACE framework attaches to hotspots (the
// configuration list and tuning state live with the manager; the
// profile exposes the identity and demography).
type MethodProfile struct {
	ID   program.MethodID
	Name string

	// Invocations counts completed plus in-flight entries.
	Invocations uint64
	// Samples counts timer-sampling hits while the method was the
	// innermost active one.
	Samples uint64
	// InclusiveInstr sums, over completed invocations, the dynamic
	// instructions between entry and exit including callees. Nested
	// hotspots therefore contribute to their enclosing hotspot's
	// size — the property CU decoupling relies on (Section 3.2.1).
	InclusiveInstr uint64
	// CompletedInvocations counts invocations whose exit has been
	// seen (the denominator for MeanSize).
	CompletedInvocations uint64

	// Promoted is set once the AOS declares the method a hotspot
	// and JIT-optimizes it.
	Promoted bool
	// PromotedAt is the machine instruction count at promotion
	// (used for the hotspot identification latency of Table 4).
	PromotedAt uint64
	// InstrBeforePromotion is the method's own inclusive
	// instruction total at the moment of promotion — execution that
	// happened before the hotspot was recognized.
	InstrBeforePromotion uint64
}

// MeanSize returns the mean inclusive dynamic instructions per
// completed invocation — the hotspot size used for CU selection.
func (p *MethodProfile) MeanSize() float64 {
	if p.CompletedInvocations == 0 {
		return 0
	}
	return float64(p.InclusiveInstr) / float64(p.CompletedInvocations)
}

// Hooks is the code the JIT compiler inserts at a hotspot's
// boundaries. Overheads are charged to the machine as extra
// instructions (and hence cycles and L1I energy) every time the hook
// runs, modelling the inserted stub's execution cost.
type Hooks struct {
	// Entry runs immediately after the hotspot's invocation, before
	// its first instruction (the tuning or configuration code).
	Entry func(prof *MethodProfile)
	// Exit runs when the invocation leaves the hotspot (the
	// profiling or sampling code). inclusive is the invocation's
	// inclusive instruction count.
	Exit func(prof *MethodProfile, inclusive uint64)
	// EntryOverhead and ExitOverhead are the stub lengths in
	// instructions.
	EntryOverhead uint64
	ExitOverhead  uint64
}

// AOS is the adaptive optimization system. It owns the DO database,
// the sampling profiler state, and the hook table. A single consumer
// (the ACE manager) subscribes to promotions via OnPromote.
type AOS struct {
	params Params
	mach   *machine.Machine

	profiles []MethodProfile
	hooks    []*Hooks

	// OnPromote, if non-nil, is invoked once when a method becomes
	// a hotspot — the point where the JIT inserts tuning code.
	OnPromote func(prof *MethodProfile)

	nextSample uint64

	// faults, when non-nil, may drop or duplicate due timer samples
	// (the timer-sample injection point).
	faults         *fault.Injector
	droppedSamples uint64
	dupSamples     uint64

	overheadInstr uint64
	promotions    uint64

	// Hotspot-execution span tracking for Table 4's "% of code in
	// hotspots": instructions executed while at least one promoted
	// method is on the call stack. hotStack mirrors the engine's
	// frame stack with each frame's promoted-at-entry status.
	hotStack     []bool
	hotDepth     int
	hotSpanStart uint64
	hotInstr     uint64
}

// NewAOS constructs the adaptive optimization system for one program
// running on one machine.
func NewAOS(params Params, mach *machine.Machine, prog *program.Program) *AOS {
	a := &AOS{
		params:     params,
		mach:       mach,
		profiles:   make([]MethodProfile, prog.NumMethods()),
		hooks:      make([]*Hooks, prog.NumMethods()),
		nextSample: params.SampleInterval,
	}
	for i := range a.profiles {
		a.profiles[i].ID = program.MethodID(i)
		a.profiles[i].Name = prog.Methods[i].Name
	}
	return a
}

// Params returns the AOS parameters.
func (a *AOS) Params() Params { return a.params }

// Profile returns the DO database entry for a method.
func (a *AOS) Profile(id program.MethodID) *MethodProfile { return &a.profiles[id] }

// Profiles returns the full DO database (indexed by method ID).
func (a *AOS) Profiles() []MethodProfile { return a.profiles }

// Promotions returns the number of hotspots detected so far.
func (a *AOS) Promotions() uint64 { return a.promotions }

// OverheadInstr returns the instrumentation instructions charged so
// far (tuning/profiling/configuration/sampling stubs).
func (a *AOS) OverheadInstr() uint64 { return a.overheadInstr }

// HotspotInstr returns the number of instructions executed while at
// least one promoted method was on the call stack (Table 4's "% of
// code in hotspots" numerator). Valid once the engine has halted (the
// halt unwinding closes open spans).
func (a *AOS) HotspotInstr() uint64 { return a.hotInstr }

// ChargeOverhead charges n extra instrumentation instructions to the
// machine, for stubs whose cost is paid only on some executions (e.g.
// the occasional performance-sampling code at a configured hotspot's
// exit).
func (a *AOS) ChargeOverhead(n uint64) {
	a.mach.Issue(n)
	a.overheadInstr += n
}

// SetHooks installs (or, with nil, removes) the boundary hooks for a
// method — the JIT compiler rewriting a hotspot's prologue/epilogue.
func (a *AOS) SetHooks(id program.MethodID, h *Hooks) { a.hooks[id] = h }

// HooksFor returns the installed hooks for a method, or nil.
func (a *AOS) HooksFor(id program.MethodID) *Hooks { return a.hooks[id] }

// methodEnter is called by the engine on every method invocation.
func (a *AOS) methodEnter(id program.MethodID) {
	p := &a.profiles[id]
	p.Invocations++
	if !p.Promoted &&
		p.Invocations >= a.params.HotThreshold &&
		p.Samples >= a.params.MinSamples {
		a.promote(p)
	}
	a.hotStack = append(a.hotStack, p.Promoted)
	if p.Promoted {
		if a.hotDepth == 0 {
			a.hotSpanStart = a.mach.Instructions()
		}
		a.hotDepth++
	}
	if h := a.hooks[id]; h != nil {
		if h.EntryOverhead > 0 {
			a.mach.Issue(h.EntryOverhead)
			a.overheadInstr += h.EntryOverhead
		}
		if h.Entry != nil {
			h.Entry(p)
		}
	}
}

// methodExit is called by the engine on every method return with the
// invocation's inclusive instruction count.
func (a *AOS) methodExit(id program.MethodID, inclusive uint64) {
	p := &a.profiles[id]
	p.InclusiveInstr += inclusive
	p.CompletedInvocations++
	if n := len(a.hotStack); n > 0 {
		wasHot := a.hotStack[n-1]
		a.hotStack = a.hotStack[:n-1]
		if wasHot {
			a.hotDepth--
			if a.hotDepth == 0 {
				a.hotInstr += a.mach.Instructions() - a.hotSpanStart
			}
		}
	}
	if h := a.hooks[id]; h != nil {
		if h.ExitOverhead > 0 {
			a.mach.Issue(h.ExitOverhead)
			a.overheadInstr += h.ExitOverhead
		}
		if h.Exit != nil {
			h.Exit(p, inclusive)
		}
	}
}

func (a *AOS) promote(p *MethodProfile) {
	p.Promoted = true
	p.PromotedAt = a.mach.Instructions()
	p.InstrBeforePromotion = p.InclusiveInstr
	a.promotions++
	if a.OnPromote != nil {
		a.OnPromote(p)
	}
}

// SetFaults installs (or, with nil, removes) a fault injector for the
// timer-sample point. Install before running the engine.
func (a *AOS) SetFaults(inj *fault.Injector) { a.faults = inj }

// DroppedSamples and DupSamples report the fault injector's effect on
// the sampling profiler (zero without an injector).
func (a *AOS) DroppedSamples() uint64 { return a.droppedSamples }

// DupSamples returns the number of duplicated timer samples.
func (a *AOS) DupSamples() uint64 { return a.dupSamples }

// sampleDue checks the sampling timer; the engine calls it on every
// retired instruction (the fast path is one comparison). When a sample
// is due, the engine credits every method on the call stack via
// creditSample — like Jikes' caller sampling, so enclosing hot methods
// accumulate samples proportional to their inclusive execution time,
// not just their own loop overhead. The return value is the number of
// times to deliver the sample: normally 1, but an installed fault
// injector can drop a due sample (0) or duplicate it (2) — lossy and
// glitchy profiling timers are a first-class input the promotion
// logic must tolerate.
func (a *AOS) sampleDue(nowInstr uint64) int {
	if nowInstr < a.nextSample || a.params.SampleInterval == 0 {
		return 0
	}
	a.nextSample += a.params.SampleInterval
	return a.deliver()
}

// deliver routes one due timer sample through the fault injector and
// returns how many times to credit it (0 dropped, 1 normal, 2
// duplicated).
func (a *AOS) deliver() int {
	if a.faults != nil {
		switch a.faults.TimerSample() {
		case fault.SampleDrop:
			a.droppedSamples++
			return 0
		case fault.SampleDuplicate:
			a.dupSamples++
			return 2
		}
	}
	return 1
}

// sampleDueN replays the per-instruction sampler poll over a batch of
// n just-retired instructions ending at instruction count now, and
// returns the total number of sample deliveries. It advances the
// next-sample watermark and consults the fault injector once per due
// sample, in the same order as n sequential sampleDue polls at counts
// now-n+1 … now — the batched engine path lands samples on exactly
// the same instruction indices as the stepped path. Within a
// straight-line run the frame stack cannot change, so the caller may
// credit all deliveries against the current stack.
func (a *AOS) sampleDueN(now, n uint64) int {
	interval := a.params.SampleInterval
	if interval == 0 || now < a.nextSample {
		return 0
	}
	total := 0
	c := now - n + 1
	for a.nextSample <= now {
		if c < a.nextSample {
			c = a.nextSample // polls before the watermark don't fire
		}
		a.nextSample += interval
		total += a.deliver()
		if c++; c > now {
			break
		}
	}
	return total
}

// creditSample records one profiler sample for a method.
func (a *AOS) creditSample(id program.MethodID) {
	a.profiles[id].Samples++
}
