package vm

import (
	"errors"
	"strings"
	"testing"

	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
)

func divInstr(a, x, y uint8) isa.Instr { return isa.Instr{Op: isa.OpDiv, A: a, B: x, C: y} }
func remInstr(a, x, y uint8) isa.Instr { return isa.Instr{Op: isa.OpRem, A: a, B: x, C: y} }

func testParams() Params {
	p := DefaultParams()
	p.SampleInterval = 1000
	p.HotThreshold = 3
	p.MinSamples = 1
	return p
}

func newEnv(t *testing.T, prog *program.Program, params Params) (*Engine, *AOS, *machine.Machine) {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	aos := NewAOS(params, mach, prog)
	eng, err := NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	return eng, aos, mach
}

func TestNewEngineRejectsInvalidParams(t *testing.T) {
	prog := sumProgram(4)
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}

	// A zero-value Params used to panic with index-out-of-range on
	// the initial frame push; it must be a descriptive error.
	aos := NewAOS(Params{}, mach, prog)
	if _, err := NewEngine(prog, mach, aos); err == nil ||
		!strings.Contains(err.Error(), "MaxCallDepth") {
		t.Errorf("zero-value Params: err = %v, want MaxCallDepth error", err)
	}

	// SampleInterval 0 disables the profiler: the engine must build
	// and run without ever delivering a sample.
	p := testParams()
	p.SampleInterval = 0
	aos = NewAOS(p, mach, prog)
	eng, err := NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatalf("zero SampleInterval (profiler disabled): %v", err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range aos.Profiles() {
		if s := aos.Profiles()[i].Samples; s != 0 {
			t.Errorf("profiler disabled but method %d has %d samples", i, s)
		}
	}

	aos = NewAOS(testParams(), mach, prog)
	if _, err := NewEngine(prog, mach, aos); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// sumProgram computes sum(1..n) in a loop and stores it to mem[0].
func sumProgram(n int64) *program.Program {
	b := program.NewBuilder("sum")
	b.SetMemWords(8)
	m := b.NewMethod("main")
	entry := m.NewBlock()
	entry.Const(1, 0) // i
	entry.Const(2, 0) // acc
	entry.Const(3, n) // limit
	loop := m.NewBlock()
	loop.AddI(1, 1, 1)
	loop.Add(2, 2, 1)
	loop.CmpLt(4, 1, 3)
	loop.Br(4, loop.Index())
	exit := m.NewBlock()
	exit.Const(5, 0)
	exit.Store(2, 5, 0)
	exit.Halt()
	b.SetEntry(m.ID())
	return b.MustBuild()
}

func TestEngineComputesSum(t *testing.T) {
	eng, _, _ := newEnv(t, sumProgram(100), testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !eng.Halted() {
		t.Error("engine should halt")
	}
	if got := eng.Mem()[0]; got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestEngineALUSemantics(t *testing.T) {
	b := program.NewBuilder("alu")
	b.SetMemWords(32)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(1, 7).Const(2, 3).Const(31, 0)
	blk.Sub(3, 1, 2)    // 4
	blk.Mul(4, 1, 2)    // 21
	blk.Xor(5, 1, 2)    // 4
	blk.AndI(6, 1, 5)   // 5
	blk.ShlI(7, 1, 2)   // 28
	blk.ShrI(8, 7, 1)   // 14
	blk.CmpLt(9, 2, 1)  // 1
	blk.CmpEq(10, 1, 1) // 1
	for i := uint8(3); i <= 10; i++ {
		blk.Store(i, 31, int64(i))
	}
	blk.Halt()
	b.SetEntry(m.ID())
	prog := b.MustBuild()

	eng, _, _ := newEnv(t, prog, testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{3: 4, 4: 21, 5: 4, 6: 5, 7: 28, 8: 14, 9: 1, 10: 1}
	for addr, val := range want {
		if got := eng.Mem()[addr]; got != val {
			t.Errorf("mem[%d] = %d, want %d", addr, got, val)
		}
	}
}

func TestDivRemByZeroYieldZero(t *testing.T) {
	b := program.NewBuilder("div")
	b.SetMemWords(8)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(1, 42).Const(2, 0).Const(3, 0)
	blk.Emit(divInstr(4, 1, 2))
	blk.Emit(remInstr(5, 1, 2))
	blk.Store(4, 3, 0).Store(5, 3, 1).Halt()
	b.SetEntry(m.ID())
	eng, _, _ := newEnv(t, b.MustBuild(), testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if eng.Mem()[0] != 0 || eng.Mem()[1] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", eng.Mem()[0], eng.Mem()[1])
	}
}

func TestCallPassesArgsAndReturns(t *testing.T) {
	b := program.NewBuilder("call")
	b.SetMemWords(8)
	callee := b.NewMethod("add4")
	cb := callee.NewBlock()
	cb.Add(4, 0, 1)
	cb.Add(4, 4, 2)
	cb.Add(4, 4, 3)
	cb.Ret(4)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(0, 1).Const(1, 2).Const(2, 3).Const(3, 4)
	blk.Call(10, callee.ID())
	blk.Const(11, 0)
	blk.Store(10, 11, 0)
	blk.Halt()
	b.SetEntry(m.ID())
	eng, _, _ := newEnv(t, b.MustBuild(), testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if eng.Mem()[0] != 10 {
		t.Errorf("call result = %d, want 10", eng.Mem()[0])
	}
}

func TestIndirectCall(t *testing.T) {
	b := program.NewBuilder("callr")
	b.SetMemWords(8)
	f1 := b.NewMethod("one")
	f1.NewBlock().Const(4, 1).Ret(4)
	f2 := b.NewMethod("two")
	f2.NewBlock().Const(4, 2).Ret(4)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(5, int64(f2.ID()))
	blk.CallR(6, 5)
	blk.Const(7, 0)
	blk.Store(6, 7, 0)
	blk.Halt()
	b.SetEntry(m.ID())
	eng, _, _ := newEnv(t, b.MustBuild(), testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if eng.Mem()[0] != 2 {
		t.Errorf("indirect call result = %d, want 2", eng.Mem()[0])
	}
}

func TestIndirectCallOutOfRangeFaults(t *testing.T) {
	b := program.NewBuilder("callr")
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(5, 99)
	blk.CallR(6, 5)
	blk.Halt()
	b.SetEntry(m.ID())
	eng, _, _ := newEnv(t, b.MustBuild(), testParams())
	err := eng.Run(0)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want indirect-call fault", err)
	}
}

func TestMemoryFaultHasContext(t *testing.T) {
	b := program.NewBuilder("oob")
	b.SetMemWords(4)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(1, 100)
	blk.Load(2, 1, 0)
	blk.Halt()
	b.SetEntry(m.ID())
	eng, _, _ := newEnv(t, b.MustBuild(), testParams())
	err := eng.Run(0)
	if err == nil {
		t.Fatal("expected fault")
	}
	for _, want := range []string{"main", "load address 100"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("fault %q missing %q", err, want)
		}
	}
}

func TestStackOverflowFaults(t *testing.T) {
	b := program.NewBuilder("rec")
	rec := b.NewMethod("rec")
	rec.NewBlock().Call(4, 0).Ret(4) // infinite self-recursion
	m := b.NewMethod("main")
	m.NewBlock().Call(4, rec.ID()).Halt()
	b.SetEntry(m.ID())
	p := testParams()
	p.MaxCallDepth = 64
	eng, _, _ := newEnv(t, b.MustBuild(), p)
	err := eng.Run(0)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestRunBudget(t *testing.T) {
	eng, _, mach := newEnv(t, sumProgram(1_000_000), testParams())
	err := eng.Run(500)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if mach.Instructions() < 500 || mach.Instructions() > 600 {
		t.Errorf("instructions = %d, want ≈500", mach.Instructions())
	}
	// Resumable: run to completion afterwards.
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if !eng.Halted() {
		t.Error("should halt after resume")
	}
}

// hotLoopProgram invokes method "hot" n times from main.
func hotLoopProgram(n int64, bodyIters int64) *program.Program {
	b := program.NewBuilder("hotloop")
	b.SetMemWords(8)
	main := b.NewMethod("main")
	hot := b.NewMethod("hot")
	hb := hot.NewBlock()
	hb.Const(4, 0).Const(5, bodyIters)
	hl := hot.NewBlock()
	hl.AddI(4, 4, 1)
	hl.CmpLt(6, 4, 5)
	hl.Br(6, hl.Index())
	hot.NewBlock().Ret(4)

	entry := main.NewBlock()
	entry.Const(16, 0).Const(17, n)
	loop := main.NewBlock()
	loop.Call(15, hot.ID())
	loop.AddI(16, 16, 1)
	loop.CmpLt(18, 16, 17)
	loop.Br(18, loop.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestPromotionRequiresInvocationsAndSamples(t *testing.T) {
	prog := hotLoopProgram(100, 200)
	eng, aos, _ := newEnv(t, prog, testParams())

	var promoted []string
	aos.OnPromote = func(p *MethodProfile) { promoted = append(promoted, p.Name) }
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(promoted) != 1 || promoted[0] != "hot" {
		t.Errorf("promoted = %v, want [hot]", promoted)
	}
	prof := aos.Profile(1)
	if !prof.Promoted {
		t.Error("hot method profile should be promoted")
	}
	if prof.Invocations != 100 {
		t.Errorf("invocations = %d, want 100", prof.Invocations)
	}
	if prof.Samples == 0 {
		t.Error("hot method should accumulate samples")
	}
	if aos.Promotions() != 1 {
		t.Errorf("Promotions = %d", aos.Promotions())
	}
	// Identification latency: the method ran before promotion.
	if prof.PromotedAt == 0 || prof.InstrBeforePromotion == 0 {
		t.Error("promotion bookkeeping missing")
	}
}

func TestMeanSizeTracksInclusiveInstructions(t *testing.T) {
	prog := hotLoopProgram(50, 100)
	eng, aos, _ := newEnv(t, prog, testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	prof := aos.Profile(1)
	// Body executes ~3 instructions per iteration plus prologue.
	size := prof.MeanSize()
	if size < 250 || size > 400 {
		t.Errorf("MeanSize = %v, want ≈300", size)
	}
}

func TestCallerSamplingCreditsEnclosingMethods(t *testing.T) {
	prog := hotLoopProgram(100, 500)
	eng, aos, _ := newEnv(t, prog, testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if aos.Profile(0).Samples == 0 {
		t.Error("main should be credited by caller sampling")
	}
}

func TestHooksRunAndChargeOverhead(t *testing.T) {
	prog := hotLoopProgram(60, 100)
	eng, aos, _ := newEnv(t, prog, testParams())
	var entries, exits int
	var inclusiveSeen uint64
	aos.OnPromote = func(p *MethodProfile) {
		aos.SetHooks(p.ID, &Hooks{
			Entry:         func(*MethodProfile) { entries++ },
			Exit:          func(_ *MethodProfile, inc uint64) { exits++; inclusiveSeen = inc },
			EntryOverhead: 10,
			ExitOverhead:  5,
		})
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if entries == 0 || entries != exits {
		t.Errorf("entries/exits = %d/%d", entries, exits)
	}
	if inclusiveSeen == 0 {
		t.Error("exit hook should receive the inclusive size")
	}
	if got := aos.OverheadInstr(); got != uint64(entries*10+exits*5) {
		t.Errorf("overhead = %d, want %d", got, entries*10+exits*5)
	}
}

func TestChargeOverhead(t *testing.T) {
	prog := sumProgram(10)
	_, aos, mach := newEnv(t, prog, testParams())
	before := mach.Instructions()
	aos.ChargeOverhead(7)
	if mach.Instructions() != before+7 || aos.OverheadInstr() != 7 {
		t.Error("ChargeOverhead should charge the machine and the counter")
	}
}

func TestHotspotInstrSpans(t *testing.T) {
	prog := hotLoopProgram(200, 300)
	eng, aos, mach := newEnv(t, prog, testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	frac := float64(aos.HotspotInstr()) / float64(mach.Instructions())
	// Most of the execution is inside the hot method once promoted.
	if frac < 0.5 || frac > 1.0 {
		t.Errorf("hotspot instruction fraction = %.2f, want (0.5,1]", frac)
	}
}

func TestBlockListener(t *testing.T) {
	prog := sumProgram(10)
	eng, _, _ := newEnv(t, prog, testParams())
	var blocks int
	var instrs int
	eng.SetBlockListener(func(pc uint64, n int) { blocks++; instrs += n })
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	// Loop block 10 times (fallthrough + 9 taken branches) plus the
	// exit block. The entry block is fetched during NewEngine,
	// before the listener attaches, so it is not observed.
	if blocks != 11 {
		t.Errorf("block entries = %d, want 11", blocks)
	}
	if instrs == 0 {
		t.Error("listener should see instruction counts")
	}
}

func TestHaltUnwindingBalancesProfiles(t *testing.T) {
	// Halt inside main while a callee chain completed before:
	// profiles must have CompletedInvocations == Invocations for
	// all methods after halt unwinding.
	prog := hotLoopProgram(10, 10)
	eng, aos, _ := newEnv(t, prog, testParams())
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := range aos.Profiles() {
		p := &aos.Profiles()[i]
		if p.Invocations != p.CompletedInvocations {
			t.Errorf("method %s: %d invocations, %d completed",
				p.Name, p.Invocations, p.CompletedInvocations)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		eng, _, mach := newEnv(t, hotLoopProgram(50, 50), testParams())
		if err := eng.Run(0); err != nil {
			t.Fatal(err)
		}
		return mach.Instructions(), mach.Cycles()
	}
	i1, c1 := run()
	i2, c2 := run()
	if i1 != i2 || c1 != c2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", i1, c1, i2, c2)
	}
}

func TestNewEngineRejectsUnsealedAndNilAOS(t *testing.T) {
	mach, _ := machine.New(machine.PaperConfig(10))
	if _, err := NewEngine(&program.Program{Name: "x"}, mach, NewAOS(testParams(), mach, sumProgram(1))); err == nil {
		t.Error("unsealed program should be rejected")
	}
	if _, err := NewEngine(sumProgram(1), mach, nil); err == nil {
		t.Error("nil AOS should be rejected")
	}
}

func TestAOSAccessors(t *testing.T) {
	prog := sumProgram(10)
	eng, aos, _ := newEnv(t, prog, testParams())
	if aos.Params().HotThreshold != 3 {
		t.Error("Params accessor wrong")
	}
	if aos.HooksFor(0) != nil {
		t.Error("no hooks installed yet")
	}
	h := &Hooks{}
	aos.SetHooks(0, h)
	if aos.HooksFor(0) != h {
		t.Error("HooksFor should return the installed hooks")
	}
	aos.SetHooks(0, nil)
	if eng.Depth() != 1 {
		t.Errorf("Depth = %d before running", eng.Depth())
	}
	if PaperParams().SampleInterval != 100_000 {
		t.Error("PaperParams wrong")
	}
}

func TestMeanSizeEmpty(t *testing.T) {
	var p MethodProfile
	if p.MeanSize() != 0 {
		t.Error("MeanSize with no invocations should be 0")
	}
}
