// Package vm implements the dynamic optimization system: an
// interpreter engine for the simulated ISA plus a Jikes-RVM-style
// adaptive optimization system (AOS) with a timer-sampling profiler,
// per-method invocation counters, a DO database, hotspot promotion,
// and JIT hook insertion at hotspot boundaries (the paper's tuning /
// profiling / configuration / sampling code).
package vm

import "fmt"

// Params configures the adaptive optimization system.
type Params struct {
	// SampleInterval is the sampling profiler period in
	// instructions (Jikes samples the active method roughly every
	// 10 ms; at IPC≈1 on the 1 GHz core that is ~10 M instructions,
	// scaled per DESIGN.md §4). Zero disables the sampling profiler
	// entirely: the engine skips the sampler poll, no samples are
	// ever credited, and (with non-zero MinSamples) no method is
	// promoted.
	SampleInterval uint64

	// HotThreshold is the invocation count after which a sampled
	// method becomes a hotspot (paper Table 1: "hotspot invoked
	// hot_threshold times").
	HotThreshold uint64

	// MinSamples is the minimum number of profiler samples before a
	// method is eligible for promotion, filtering methods that are
	// invoked often but contribute negligible execution time.
	MinSamples uint64

	// MaxCallDepth bounds the frame stack.
	MaxCallDepth int
}

// Validate checks parameter sanity. The engine validates at
// construction: a zero-value Params would otherwise panic on the
// initial frame push (MaxCallDepth 0 allocates an empty frame stack).
// SampleInterval 0 is legal and means the profiler is disabled.
func (p Params) Validate() error {
	if p.MaxCallDepth < 1 {
		return fmt.Errorf("vm: MaxCallDepth %d must be at least 1", p.MaxCallDepth)
	}
	return nil
}

// DefaultParams returns the scaled default parameters (scale divisor
// 10 relative to the paper; see DESIGN.md §4).
func DefaultParams() Params {
	return Params{
		SampleInterval: 10_000,
		HotThreshold:   20,
		MinSamples:     2,
		MaxCallDepth:   1024,
	}
}

// PaperParams returns the paper-scale parameters.
func PaperParams() Params {
	p := DefaultParams()
	p.SampleInterval = 100_000
	return p
}
