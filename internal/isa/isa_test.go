package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if got := Opcode(200).String(); got != "op(200)" {
		t.Errorf("unknown opcode string = %q", got)
	}
}

func TestOpcodeValid(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		if !op.Valid() {
			t.Errorf("opcode %s should be valid", op)
		}
	}
	if Opcode(opcodeCount).Valid() {
		t.Error("sentinel opcode should be invalid")
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	cases := []struct {
		op                                    Opcode
		branch, cond, term, mem, call, wantOK bool
	}{
		{op: OpBr, branch: true, cond: true, term: true},
		{op: OpBrZ, branch: true, cond: true, term: true},
		{op: OpJmp, branch: true, term: true},
		{op: OpRet, term: true},
		{op: OpHalt, term: true},
		{op: OpLoad, mem: true},
		{op: OpStore, mem: true},
		{op: OpCall, call: true},
		{op: OpCallR, call: true},
		{op: OpAdd},
		{op: OpConst},
	}
	for _, c := range cases {
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%s.IsBranch() = %v", c.op, got)
		}
		if got := c.op.IsConditional(); got != c.cond {
			t.Errorf("%s.IsConditional() = %v", c.op, got)
		}
		if got := c.op.IsTerminator(); got != c.term {
			t.Errorf("%s.IsTerminator() = %v", c.op, got)
		}
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%s.IsMem() = %v", c.op, got)
		}
		if got := c.op.IsCall(); got != c.call {
			t.Errorf("%s.IsCall() = %v", c.op, got)
		}
	}
}

func TestInstrValidate(t *testing.T) {
	valid := []Instr{
		{Op: OpNop},
		{Op: OpConst, A: 31, Imm: -5},
		{Op: OpAdd, A: 1, B: 2, C: 3},
		{Op: OpLoad, A: 1, B: 2, Imm: -8},
		{Op: OpBr, A: 0, Imm: 0},
		{Op: OpCall, A: 4, Imm: 7},
	}
	for _, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", in, err)
		}
	}
	invalid := []Instr{
		{Op: opcodeCount},
		{Op: OpAdd, A: NumRegs},
		{Op: OpAdd, B: NumRegs},
		{Op: OpAdd, C: NumRegs},
		{Op: OpBr, Imm: -1},
		{Op: OpJmp, Imm: -2},
		{Op: OpCall, Imm: -1},
	}
	for _, in := range invalid {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestInstrStringCoversAllOpcodes(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		in := Instr{Op: op, A: 1, B: 2, C: 3, Imm: 4}
		if s := in.String(); s == "" {
			t.Errorf("empty disassembly for %s", op)
		}
	}
}

func TestValidatePropertyRegisterBounds(t *testing.T) {
	// Any instruction whose register operands are all < NumRegs and
	// whose branch/call immediates are non-negative must validate.
	f := func(op uint8, a, b, c uint8, imm int64) bool {
		in := Instr{
			Op:  Opcode(op % uint8(opcodeCount)),
			A:   a % NumRegs,
			B:   b % NumRegs,
			C:   c % NumRegs,
			Imm: imm,
		}
		switch in.Op {
		case OpBr, OpBrZ, OpJmp, OpCall:
			if in.Imm < 0 {
				in.Imm = -in.Imm
			}
		}
		return in.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
