// Package isa defines the instruction set of the simulated register
// machine that the dynamic optimization system executes.
//
// The machine is a 32-register, 64-bit, word-addressed design. It is
// deliberately small — just enough to express the loops, hash probes,
// calls and branches the workloads need — while still being a real ISA:
// every address and branch outcome is computed by executing code, not
// replayed from a trace.
//
// Memory is word-addressed by the ISA (one word = 8 bytes); the memory
// hierarchy sees byte addresses (word index × 8).
package isa

import "fmt"

// NumRegs is the number of general-purpose registers per frame.
const NumRegs = 32

// WordBytes is the size in bytes of one memory word as seen by the
// cache hierarchy.
const WordBytes = 8

// Instruction address-space geometry, shared by the program sealer
// (which precomputes each block's I-cache line range at Seal) and the
// machine's I-fetch path. Instructions are 4 bytes apart; instruction
// addresses live in a region disjoint from data (IBase) so the unified
// L2 keeps I- and D-blocks apart; the L1I line holds ILineBytes bytes
// (16 instructions).
const (
	InstrBytes = 4
	ILineBytes = 64
	IBase      = uint64(1) << 40
)

// Opcode identifies an instruction kind.
type Opcode uint8

// The instruction set. Three-operand ALU ops read B and C and write A.
// Immediate forms read B and Imm. Loads/stores address memory at
// r[B]+Imm words. Branches test registers and transfer control to the
// basic block whose index within the method is Imm.
const (
	OpNop Opcode = iota

	// OpConst sets r[A] = Imm.
	OpConst

	// ALU register-register: r[A] = r[B] op r[C].
	OpAdd
	OpSub
	OpMul
	OpDiv // divide-by-zero yields 0, like a trap handler returning 0
	OpRem // remainder; by zero yields 0
	OpAnd
	OpOr
	OpXor
	OpShl // shift amounts are masked to 6 bits
	OpShr // logical shift right

	// ALU register-immediate: r[A] = r[B] op Imm.
	OpAddI
	OpMulI
	OpAndI
	OpXorI
	OpShlI
	OpShrI

	// Comparisons: r[A] = 1 if the relation holds, else 0.
	OpCmpLt // r[A] = r[B] < r[C]
	OpCmpEq // r[A] = r[B] == r[C]

	// OpLoad reads r[A] = mem[r[B]+Imm]; OpStore writes
	// mem[r[B]+Imm] = r[A]. The effective address is in words.
	OpLoad
	OpStore

	// Control flow. OpBr branches to block Imm when r[A] != 0;
	// OpBrZ branches when r[A] == 0; OpJmp always branches.
	// A branch that is not taken falls through to the next block.
	OpBr
	OpBrZ
	OpJmp

	// OpCall invokes method Imm, passing r[0..3] as the callee's
	// r[0..3]; the callee's return value (its r[0]) lands in r[A].
	OpCall

	// OpCallR is an indirect call: the callee method ID is in r[B].
	// Used by workloads to create megamorphic call sites.
	OpCallR

	// OpRet returns r[A] to the caller.
	OpRet

	// OpHalt stops the machine. Only valid in the entry method.
	OpHalt

	opcodeCount // sentinel; keep last
)

var opcodeNames = [...]string{
	OpNop:   "nop",
	OpConst: "const",
	OpAdd:   "add",
	OpSub:   "sub",
	OpMul:   "mul",
	OpDiv:   "div",
	OpRem:   "rem",
	OpAnd:   "and",
	OpOr:    "or",
	OpXor:   "xor",
	OpShl:   "shl",
	OpShr:   "shr",
	OpAddI:  "addi",
	OpMulI:  "muli",
	OpAndI:  "andi",
	OpXorI:  "xori",
	OpShlI:  "shli",
	OpShrI:  "shri",
	OpCmpLt: "cmplt",
	OpCmpEq: "cmpeq",
	OpLoad:  "load",
	OpStore: "store",
	OpBr:    "br",
	OpBrZ:   "brz",
	OpJmp:   "jmp",
	OpCall:  "call",
	OpCallR: "callr",
	OpRet:   "ret",
	OpHalt:  "halt",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return op < opcodeCount
}

// IsBranch reports whether the opcode conditionally or unconditionally
// transfers control to another basic block in the same method.
func (op Opcode) IsBranch() bool {
	switch op {
	case OpBr, OpBrZ, OpJmp:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a conditional branch.
func (op Opcode) IsConditional() bool {
	return op == OpBr || op == OpBrZ
}

// IsTerminator reports whether the opcode may legally end a basic
// block. Conditional branches fall through to the next block when not
// taken, so a block ending in one must not be the last block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpBr, OpBrZ, OpJmp, OpRet, OpHalt:
		return true
	}
	return false
}

// IsSimple reports whether the opcode is a straight-line register op
// with no memory, control-flow, or machine-event side effects — the
// class the engine's block-batched fast path executes in a tight loop
// (one Issue call and one sampler settlement per run). Every opcode
// that is not simple touches the machine model (Data, CondBranch,
// Fetch via a block transfer) or the frame stack, and is stepped
// individually.
func (op Opcode) IsSimple() bool {
	switch op {
	case OpNop, OpConst,
		OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddI, OpMulI, OpAndI, OpXorI, OpShlI, OpShrI,
		OpCmpLt, OpCmpEq:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses data memory.
func (op Opcode) IsMem() bool {
	return op == OpLoad || op == OpStore
}

// IsCall reports whether the opcode invokes another method.
func (op Opcode) IsCall() bool {
	return op == OpCall || op == OpCallR
}

// Instr is one machine instruction. The operand fields A, B, C name
// registers; Imm carries immediates, branch-target block indices, and
// call-target method IDs, depending on the opcode.
type Instr struct {
	Op      Opcode
	A, B, C uint8
	Imm     int64
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpConst:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.A, in.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpCmpLt, OpCmpEq:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case OpAddI, OpMulI, OpAndI, OpXorI, OpShlI, OpShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, [r%d+%d]", in.A, in.B, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d", in.B, in.Imm, in.A)
	case OpBr:
		return fmt.Sprintf("br r%d, @%d", in.A, in.Imm)
	case OpBrZ:
		return fmt.Sprintf("brz r%d, @%d", in.A, in.Imm)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case OpCall:
		return fmt.Sprintf("call r%d, m%d", in.A, in.Imm)
	case OpCallR:
		return fmt.Sprintf("callr r%d, (r%d)", in.A, in.B)
	case OpRet:
		return fmt.Sprintf("ret r%d", in.A)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", in.Op, in.A, in.B, in.C, in.Imm)
}

// Validate checks operand well-formedness independent of any program
// context (register indices in range, opcode defined). Branch/call
// target validity is checked by the program validator, which knows the
// enclosing method and program.
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(in.Op))
	}
	if in.A >= NumRegs || in.B >= NumRegs || in.C >= NumRegs {
		return fmt.Errorf("isa: %s: register operand out of range (A=%d B=%d C=%d, max %d)",
			in.Op, in.A, in.B, in.C, NumRegs-1)
	}
	switch in.Op {
	case OpBr, OpBrZ, OpJmp:
		if in.Imm < 0 {
			return fmt.Errorf("isa: %s: negative branch target %d", in.Op, in.Imm)
		}
	case OpCall:
		if in.Imm < 0 {
			return fmt.Errorf("isa: call: negative method ID %d", in.Imm)
		}
	}
	return nil
}
