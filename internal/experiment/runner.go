// Package experiment runs the paper's evaluation: each benchmark is
// executed under the static full-size baseline, the BBV comparator,
// and the hotspot framework (plus, as extensions, the working-set-
// signature comparator and the three-CU configuration), and the
// per-run metrics are reduced into the rows of every table and the
// series of every figure (DESIGN.md §5).
package experiment

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"acedo/internal/bbv"
	"acedo/internal/core"
	"acedo/internal/cpu"
	"acedo/internal/fault"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/rtrace"
	"acedo/internal/telemetry"
	"acedo/internal/vm"
	"acedo/internal/workload"
	"acedo/internal/wss"
)

// Scheme selects the resource-adaptation policy of a run.
type Scheme int

const (
	// SchemeBaseline keeps both caches at their largest size.
	SchemeBaseline Scheme = iota
	// SchemeBBV runs the BBV phase detector + exhaustive tuner.
	SchemeBBV
	// SchemeHotspot runs the paper's DO-based framework.
	SchemeHotspot
	// SchemeWSS runs the working-set-signature detector (Dhodapkar
	// & Smith) with the same exhaustive tuner as SchemeBBV — the
	// extension comparator of internal/wss.
	SchemeWSS
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeBBV:
		return "bbv"
	case SchemeHotspot:
		return "hotspot"
	case SchemeWSS:
		return "wss"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Options carries the full parameterisation of a run.
type Options struct {
	// ScaleDiv divides every instruction-count parameter (1 = paper
	// scale, 10 = default; DESIGN.md §4).
	ScaleDiv uint64
	// MaxInstr bounds a run (0 = run the program to completion).
	MaxInstr uint64

	Machine machine.Config
	VM      vm.Params
	Core    core.Params
	BBV     bbv.Params
	WSS     wss.Params

	// Sink, when non-nil, receives the run's telemetry: every
	// accepted reconfiguration, hotspot promotion, tuner decision,
	// and interval-metrics sample (internal/telemetry). Events are
	// stamped with the benchmark and scheme, so one concurrency-safe
	// sink (e.g. telemetry.JSONL) can serve a parallel RunSuite. Nil
	// keeps the simulator's hot paths instrumentation-free.
	Sink telemetry.Sink

	// TelemetryInterval is the interval sampler's period in retired
	// instructions. 0 defaults to the machine's L1D reconfiguration
	// interval — the finest adaptation grain, so the series resolves
	// every reconfiguration window. Ignored without a Sink.
	TelemetryInterval uint64

	// Log, when non-nil, receives per-benchmark progress lines from
	// RunSuite (one per completed comparison).
	Log io.Writer

	// Faults, when non-nil, arms the deterministic fault-injection
	// plan (internal/fault): every run compiles the plan against its
	// benchmark/scheme identity and threads the injector through the
	// machine, the profiler, and the phase detector. Nil keeps every
	// injection point on its gate-free fast path.
	Faults *fault.Plan

	// Deadline bounds one run's wall-clock time (0 = unbounded). The
	// engine executes in instruction-budget chunks and checks the
	// clock between chunks, so a wedged or pathologically slow
	// simulation fails with ErrDeadline instead of hanging the suite.
	Deadline time.Duration

	// Parallelism caps the number of concurrently simulated
	// benchmarks in RunSuite (0 = GOMAXPROCS). Every simulation is
	// independent and deterministic, so the results are identical at
	// any setting — a property the determinism tests pin by diffing
	// serial against concurrent suite snapshots. Compare reuses the
	// same cap to fan per-scheme trace replays out in parallel.
	Parallelism int

	// IntraParallelism, when > 1, splits each single trace replay
	// across that many goroutines (rtrace.Trace.ReplayParallel): the
	// run's summarized op stream is partitioned into spans replayed
	// speculatively against private cache clones and reconciled in
	// order on the issuing goroutine. Results are bit-identical at any
	// setting — spans that cannot be verified, schemes whose AOS is
	// not passive, and runs with a block listener silently replay
	// serially — so the knob only trades CPU for per-run latency.
	// Composes with Parallelism (inter-run fan-out); the product
	// bounds total goroutines, so oversubscribing both is wasteful.
	// 0 or 1 disables intra-run splitting. Recording and direct runs
	// are unaffected.
	IntraParallelism int

	// Cancel, when non-nil, aborts the run when the channel is closed
	// (or receives): the engine executes in instruction-budget chunks —
	// the same chunked drive the Deadline machinery uses — and checks
	// the channel between chunks, failing the run with a *RunError
	// wrapping ErrCanceled. Chunking only slices the budget, so an
	// uncanceled run's results are unchanged. The experiment service
	// (internal/server) threads each job's cancellation signal through
	// this field.
	Cancel <-chan struct{}

	// NoReplay disables the record-once / replay-many fast path:
	// Compare, CompareDetectors, and RunSuite execute every scheme
	// directly instead of recording the benchmark's architectural
	// trace once and replaying it per scheme. Replay is bit-exact
	// (the differential tests pin replayed snapshots, DO databases,
	// and telemetry against direct execution), so this switch only
	// trades wall-clock time for paranoia. Single-run Run calls
	// always execute directly.
	NoReplay bool

	// TraceFormat selects the vm.Recorder implementation recording
	// runs install: rtrace.FormatSummary (the zero value) builds the
	// packed summarized op stream directly at record time, while
	// rtrace.FormatBytes keeps the delta/varint byte encoder and
	// summarizes lazily on first replay. Both formats replay
	// bit-identically (the record-check gate diffs their snapshots),
	// so — like IntraParallelism — the knob is a pure performance
	// choice and deliberately stays out of job identity hashes.
	TraceFormat rtrace.Format
}

// DefaultOptions returns the standard experiment configuration at the
// default 1/10 scale.
func DefaultOptions() Options {
	return OptionsAtScale(10)
}

// OptionsAtScale builds the experiment configuration for an arbitrary
// scale divisor (1 = paper scale).
func OptionsAtScale(scale uint64) Options {
	if scale == 0 {
		scale = 1
	}
	vp := vm.DefaultParams()
	vp.SampleInterval = 100_000 / scale
	if vp.SampleInterval == 0 {
		vp.SampleInterval = 1
	}
	vp.HotThreshold = 5
	vp.MinSamples = 1
	return Options{
		ScaleDiv: scale,
		Machine:  machine.PaperConfig(scale),
		VM:       vp,
		Core:     core.DefaultParams(scale),
		BBV:      bbv.DefaultParams(scale),
		WSS:      wss.DefaultParams(),
	}
}

// WithThreeCU returns the options with the extension third
// configurable unit enabled: the 16/32/48/64-entry issue queue plus
// the micro hotspot size class that manages it. The BBV comparator's
// combinatorial configuration list grows from 16 to 64 — the paper's
// scalability argument (Section 2.3) made concrete.
func (o Options) WithThreeCU() Options {
	o.Machine = o.Machine.WithIQ()
	o.Core.Bounds = o.Core.Bounds.WithMicro(o.ScaleDiv)
	return o
}

// AOSStats summarizes the DO database after a run (Table 4).
type AOSStats struct {
	Promotions     uint64
	HotspotInstr   uint64
	OverheadInstr  uint64
	MeanSize       float64
	MeanInvocation float64
	// IdentLatencyInstr sums the pre-promotion inclusive
	// instructions across hotspots (Table 4's identification
	// latency numerator).
	IdentLatencyInstr uint64
}

// Result is everything one run produces.
type Result struct {
	Benchmark string
	Scheme    Scheme

	Instr  uint64
	Cycles uint64
	IPC    float64

	L1DEnergyNJ float64
	L2EnergyNJ  float64
	// IQEnergyNJ is zero unless the issue-queue unit is enabled.
	IQEnergyNJ float64

	Breakdown cpu.Breakdown

	AOS AOSStats

	// Hotspot is set for SchemeHotspot runs.
	Hotspot *core.Report
	// BBV is set for SchemeBBV runs.
	BBV *bbv.Report

	// Disposition reports how the run executed: RunDirect (plain
	// execution), RunRecorded (direct execution that also captured
	// the benchmark's architectural trace), RunReplayed (driven from
	// a recorded trace), or RunFallback (replay diverged and the run
	// re-executed directly). Replay is bit-exact, so the disposition
	// never affects a measurement — it is run metadata, reported in
	// RunSuite progress lines and telemetry but deliberately kept out
	// of the schema-stable snapshot.
	Disposition string
	// Wall is the run's host wall-clock duration (for a fallback,
	// including the abandoned replay attempt).
	Wall time.Duration
}

// Run dispositions (Result.Disposition).
const (
	RunDirect   = "direct"
	RunRecorded = "recorded"
	RunReplayed = "replayed"
	RunFallback = "fallback"
)

// ErrDeadline is the cause carried by a *RunError when a run exceeds
// Options.Deadline.
var ErrDeadline = errors.New("experiment: run deadline exceeded")

// ErrCanceled is the cause carried by a *RunError when a run is
// aborted through Options.Cancel.
var ErrCanceled = errors.New("experiment: run canceled")

// RunError is the isolation layer's failure report: the run's
// identity, the underlying error, and — when the run panicked — the
// recovered goroutine stack. It unwraps to the cause, so callers can
// test errors.Is(err, ErrDeadline) or unwrap an injected panic.
type RunError struct {
	Benchmark string
	Scheme    Scheme
	Err       error
	// Stack is the goroutine stack captured at recovery (empty for
	// non-panic failures).
	Stack string
	// Transient marks failures the suite may retry once.
	Transient bool
}

// Error formats the failure with its run identity.
func (e *RunError) Error() string {
	return fmt.Sprintf("experiment %s/%s: %v", e.Benchmark, e.Scheme, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *RunError) Unwrap() error { return e.Err }

// IsTransient reports whether err carries a transient run failure —
// one a retry may clear (e.g. an injected transient panic).
func IsTransient(err error) bool {
	var re *RunError
	return errors.As(err, &re) && re.Transient
}

// Run executes one benchmark under one scheme. The simulation is
// isolated: a panic anywhere inside it — injected by a fault plan or
// a genuine bug — is recovered and returned as a *RunError carrying
// the run identity and stack, so one corrupt run cannot take down a
// caller iterating a suite.
//
// The run executes under pprof labels ("bench", "scheme"), so CPU
// profiles of a suite — including the concurrent RunSuite — attribute
// samples to the benchmark×scheme cell that burned them.
func Run(spec workload.Spec, scheme Scheme, opt Options) (*Result, error) {
	start := time.Now()
	res, err := guarded(spec, scheme, func() (*Result, error) {
		return run(spec, scheme, opt)
	})
	if res != nil {
		res.Disposition = RunDirect
		res.Wall = time.Since(start)
	}
	return res, err
}

// guarded executes one run body under Run's isolation guard: the
// pprof run labels and the panic-to-*RunError recovery. Direct,
// recording, and replayed runs all share it, so an injected panic is
// contained identically on every execution path.
func guarded(spec workload.Spec, scheme Scheme, body func() (*Result, error)) (res *Result, err error) {
	defer func() {
		if r := recover(); r == nil {
			return
		} else if ip, ok := r.(fault.InjectedPanic); ok {
			res, err = nil, &RunError{
				Benchmark: spec.Name, Scheme: scheme,
				Err: ip, Stack: string(debug.Stack()), Transient: ip.Transient,
			}
		} else {
			res, err = nil, &RunError{
				Benchmark: spec.Name, Scheme: scheme,
				Err: fmt.Errorf("panic: %v", r), Stack: string(debug.Stack()),
			}
		}
	}()
	pprof.Do(context.Background(), pprof.Labels("bench", spec.Name, "scheme", scheme.String()),
		func(context.Context) {
			res, err = body()
		})
	return res, err
}

// runState is one run's fully wired simulation — program, machine,
// AOS, managers, telemetry, faults, and the composed block listener —
// everything between option parsing and actual execution. Direct
// execution hands it to a vm.Engine; trace replay (internal/rtrace)
// drives the same state straight from a recorded architectural stream.
type runState struct {
	spec   workload.Spec
	scheme Scheme
	opt    Options

	prog    *program.Program
	mach    *machine.Machine
	aos     *vm.AOS
	hotMgr  *core.Manager
	bbvMgr  *bbv.Manager
	sampler *telemetry.Sampler
	// listener is the composed block listener, nil when neither a
	// temporal manager nor an interval sampler wants block events.
	listener func(pc uint64, instrs int)
}

// run is the unguarded body of Run.
func run(spec workload.Spec, scheme Scheme, opt Options) (*Result, error) {
	st, err := newRunState(spec, scheme, opt)
	if err != nil {
		return nil, err
	}
	eng, err := vm.NewEngine(st.prog, st.mach, st.aos)
	if err != nil {
		return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
	}
	if st.listener != nil {
		eng.SetBlockListener(st.listener)
	}
	if err := runEngine(eng, spec.Name, scheme, opt); err != nil {
		return nil, err
	}
	return st.finish(), nil
}

// newRunState builds and wires one run's simulation state.
func newRunState(spec workload.Spec, scheme Scheme, opt Options) (*runState, error) {
	prog, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
	}
	mach, err := machine.New(opt.Machine)
	if err != nil {
		return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
	}
	aos := vm.NewAOS(opt.VM, mach, prog)

	// Fault wiring: compile the plan for this run's identity and
	// thread the injector through every layer owning an injection
	// point. A nil plan compiles to a nil injector and every layer
	// keeps its fault-free fast path.
	inj, err := fault.New(opt.Faults, spec.Name, scheme.String())
	if err != nil {
		return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
	}
	if inj != nil {
		inj.RunPanic(spec.Name, scheme.String())
		mach.SetFaults(inj)
		aos.SetFaults(inj)
	}

	// Telemetry wiring: label the run's events and unify the
	// machine's reconfiguration callback into the event stream.
	var sink telemetry.Sink
	if opt.Sink != nil {
		sink = telemetry.WithRunLabels(opt.Sink, spec.Name, scheme.String())
		mach.OnReconfigure = telemetry.MachineReconfigure(sink)
	}

	var hotMgr *core.Manager
	var bbvMgr *bbv.Manager
	switch scheme {
	case SchemeHotspot:
		if hotMgr, err = core.NewManager(opt.Core, mach, aos); err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
	case SchemeBBV:
		if bbvMgr, err = bbv.NewManager(opt.BBV, mach); err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
	case SchemeWSS:
		if bbvMgr, err = wss.NewManager(opt.BBV, opt.WSS, mach); err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
	}
	if inj != nil && bbvMgr != nil {
		bbvMgr.SetFaults(inj)
	}
	if sink != nil {
		if hotMgr != nil {
			hotMgr.SetSink(sink)
		}
		if bbvMgr != nil {
			bbvMgr.SetSink(sink)
		}
		// Chain a promotion event after the manager's subscription
		// (the manager registers itself as the AOS consumer).
		inner := aos.OnPromote
		aos.OnPromote = func(p *vm.MethodProfile) {
			sink.Emit(telemetry.Promotion(p.Name, mach.Instructions()))
			if inner != nil {
				inner(p)
			}
		}
	}

	// Block listeners: the temporal manager's accumulator and the
	// interval sampler share the engine's single listener slot.
	var listeners []func(pc uint64, instrs int)
	if bbvMgr != nil {
		listeners = append(listeners, bbvMgr.OnBlock)
	}
	var sampler *telemetry.Sampler
	if sink != nil {
		every := opt.TelemetryInterval
		if every == 0 {
			every = opt.Machine.L1DReconfigInterval
		}
		if every == 0 {
			every = 100_000
		}
		if sampler, err = telemetry.NewSampler(sink, mach, every); err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
		listeners = append(listeners, sampler.OnBlock)
	}
	st := &runState{
		spec: spec, scheme: scheme, opt: opt,
		prog: prog, mach: mach, aos: aos,
		hotMgr: hotMgr, bbvMgr: bbvMgr, sampler: sampler,
	}
	switch len(listeners) {
	case 1:
		st.listener = listeners[0]
	case 2:
		l0, l1 := listeners[0], listeners[1]
		st.listener = func(pc uint64, instrs int) {
			l0(pc, instrs)
			l1(pc, instrs)
		}
	}
	return st, nil
}

// finish settles the telemetry sampler and reduces the machine and DO
// database into the run's Result.
func (st *runState) finish() *Result {
	if st.sampler != nil {
		st.sampler.Final()
	}
	snap := st.mach.Snapshot()
	res := &Result{
		Benchmark:   st.spec.Name,
		Scheme:      st.scheme,
		Instr:       snap.Instr,
		Cycles:      snap.Cycles,
		IPC:         snap.IPC(),
		L1DEnergyNJ: snap.L1DnJ,
		L2EnergyNJ:  snap.L2nJ,
		IQEnergyNJ:  snap.IQnJ,
		Breakdown:   st.mach.Timing.Breakdown(),
		AOS:         reduceAOS(st.aos),
	}
	if st.hotMgr != nil {
		rep := st.hotMgr.Report()
		res.Hotspot = &rep
	}
	if st.bbvMgr != nil {
		rep := st.bbvMgr.Report()
		res.BBV = &rep
	}
	return res
}

// deadlineChunk is the instruction budget between wall-clock checks
// when a run deadline is set: small enough to notice an expired
// deadline within a fraction of a second, large enough that the
// chunking overhead is noise.
const deadlineChunk = 1_000_000

// runEngine drives the engine to completion. Without a deadline or a
// cancellation channel it is a single Run call — the exact
// pre-existing path. With either, the engine runs in
// instruction-budget chunks and the wall clock (and cancellation
// signal) is checked between chunks; chunking only slices the budget,
// it does not perturb the simulation, so results are identical either
// way.
func runEngine(eng *vm.Engine, bench string, scheme Scheme, opt Options) error {
	if opt.Deadline <= 0 && opt.Cancel == nil {
		if err := eng.Run(opt.MaxInstr); err != nil && err != vm.ErrBudget {
			return fmt.Errorf("experiment %s/%s: %w", bench, scheme, err)
		}
		return nil
	}
	var limit time.Time
	if opt.Deadline > 0 {
		limit = time.Now().Add(opt.Deadline)
	}
	var executed uint64
	for !eng.Halted() {
		select {
		case <-opt.Cancel: // never taken when Cancel is nil
			return &RunError{Benchmark: bench, Scheme: scheme, Err: ErrCanceled}
		default:
		}
		chunk := uint64(deadlineChunk)
		if opt.MaxInstr > 0 {
			if executed >= opt.MaxInstr {
				return nil // budget exhausted, like vm.ErrBudget
			}
			if rest := opt.MaxInstr - executed; rest < chunk {
				chunk = rest
			}
		}
		err := eng.Run(chunk)
		executed += chunk
		if err != nil && err != vm.ErrBudget {
			return fmt.Errorf("experiment %s/%s: %w", bench, scheme, err)
		}
		if err == nil {
			return nil // halted
		}
		if opt.Deadline > 0 && time.Now().After(limit) {
			return &RunError{Benchmark: bench, Scheme: scheme, Err: ErrDeadline}
		}
	}
	return nil
}

func reduceAOS(aos *vm.AOS) AOSStats {
	st := AOSStats{
		Promotions:    aos.Promotions(),
		HotspotInstr:  aos.HotspotInstr(),
		OverheadInstr: aos.OverheadInstr(),
	}
	var sizeSum, invSum float64
	var n int
	for i := range aos.Profiles() {
		p := &aos.Profiles()[i]
		if !p.Promoted {
			continue
		}
		n++
		sizeSum += p.MeanSize()
		invSum += float64(p.Invocations)
		st.IdentLatencyInstr += p.InstrBeforePromotion
	}
	if n > 0 {
		st.MeanSize = sizeSum / float64(n)
		st.MeanInvocation = invSum / float64(n)
	}
	return st
}

// Comparison is one benchmark's three runs plus the derived
// energy-saving and slowdown figures (Figures 3 and 4).
type Comparison struct {
	Name string

	Base, BBVRun, HotRun *Result

	L1DSavingBBV float64
	L1DSavingHot float64
	L2SavingBBV  float64
	L2SavingHot  float64
	// IQ savings are zero unless the issue-queue unit is enabled.
	IQSavingBBV float64
	IQSavingHot float64

	SlowdownBBV float64
	SlowdownHot float64
}

// Compare runs a benchmark under all three schemes and derives the
// figure metrics. Unless Options.NoReplay is set, the benchmark's
// architectural trace is recorded once (during the baseline run, or
// fetched from the process-wide cache) and the other schemes replay it
// — bit-identical to direct execution, at a fraction of the cost.
func Compare(spec workload.Spec, opt Options) (*Comparison, error) {
	rs, err := schemeResults(spec, opt, []Scheme{SchemeBaseline, SchemeBBV, SchemeHotspot})
	if err != nil {
		return nil, err
	}
	base, bb, hot := rs[0], rs[1], rs[2]
	c := &Comparison{Name: spec.Name, Base: base, BBVRun: bb, HotRun: hot}
	c.L1DSavingBBV = saving(base.L1DEnergyNJ, bb.L1DEnergyNJ)
	c.L1DSavingHot = saving(base.L1DEnergyNJ, hot.L1DEnergyNJ)
	c.L2SavingBBV = saving(base.L2EnergyNJ, bb.L2EnergyNJ)
	c.L2SavingHot = saving(base.L2EnergyNJ, hot.L2EnergyNJ)
	c.IQSavingBBV = saving(base.IQEnergyNJ, bb.IQEnergyNJ)
	c.IQSavingHot = saving(base.IQEnergyNJ, hot.IQEnergyNJ)
	c.SlowdownBBV = slowdown(base, bb)
	c.SlowdownHot = slowdown(base, hot)
	return c, nil
}

// saving returns the fractional energy reduction versus the baseline.
func saving(base, scheme float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - scheme) / base
}

// slowdown returns the fractional cycles-per-instruction increase
// versus the baseline. CPI (rather than raw cycles) is compared
// because the adaptive schemes execute extra instrumentation
// instructions.
func slowdown(base, scheme *Result) float64 {
	if base.Instr == 0 || scheme.Instr == 0 || base.Cycles == 0 {
		return 0
	}
	baseCPI := float64(base.Cycles) / float64(base.Instr)
	// Charge the scheme's cycles against the baseline's useful
	// instruction count: instrumentation instructions are overhead,
	// not work.
	schemeCPI := float64(scheme.Cycles) / float64(base.Instr)
	return schemeCPI/baseCPI - 1
}

// DetectorComparison contrasts the two temporal detectors and the
// hotspot framework on one benchmark — the comparison of Dhodapkar &
// Smith's "Comparing Program Phase Detection Techniques" [10], which
// the paper cites for BBV being "one of the best".
type DetectorComparison struct {
	Name string

	Base, BBVRun, WSSRun, HotRun *Result

	// Savings over the baseline, L1D and L2 combined.
	CacheSavingBBV float64
	CacheSavingWSS float64
	CacheSavingHot float64

	SlowdownBBV float64
	SlowdownWSS float64
	SlowdownHot float64
}

// CompareDetectors runs a benchmark under the baseline, BBV, WSS, and
// hotspot schemes, with the same record-once / replay-many fast path
// as Compare (sharing its trace cache — a Compare followed by a
// CompareDetectors of the same benchmark records nothing twice).
func CompareDetectors(spec workload.Spec, opt Options) (*DetectorComparison, error) {
	rs, err := schemeResults(spec, opt, []Scheme{SchemeBaseline, SchemeBBV, SchemeWSS, SchemeHotspot})
	if err != nil {
		return nil, err
	}
	base, bb, ws, hot := rs[0], rs[1], rs[2], rs[3]
	cacheNJ := func(r *Result) float64 { return r.L1DEnergyNJ + r.L2EnergyNJ }
	return &DetectorComparison{
		Name:           spec.Name,
		Base:           base,
		BBVRun:         bb,
		WSSRun:         ws,
		HotRun:         hot,
		CacheSavingBBV: saving(cacheNJ(base), cacheNJ(bb)),
		CacheSavingWSS: saving(cacheNJ(base), cacheNJ(ws)),
		CacheSavingHot: saving(cacheNJ(base), cacheNJ(hot)),
		SlowdownBBV:    slowdown(base, bb),
		SlowdownWSS:    slowdown(base, ws),
		SlowdownHot:    slowdown(base, hot),
	}, nil
}

// AdjustWorkload scales a spec's outer loop count to the options'
// scale divisor. The suite's defaults are written for scale 10; at
// paper scale (1) every interval parameter is 10× longer, so programs
// must run 10× longer for the same number of sampling intervals and
// hotspot invocations. RunSuite/Collect apply this automatically;
// direct Run/Compare callers pass specs verbatim.
func (o Options) AdjustWorkload(s workload.Spec) workload.Spec {
	if o.ScaleDiv == 10 || o.ScaleDiv == 0 {
		return s
	}
	loops := int(uint64(s.MainLoops) * 10 / o.ScaleDiv)
	return s.WithMainLoops(loops)
}

// RunSuite compares every benchmark in the suite, with workload
// lengths adjusted to the options' scale. The benchmarks run in
// parallel (every simulation is independent and deterministic); the
// result order matches workload.Suite(). With Options.Log set, one
// progress line is written per completed benchmark.
//
// Failures are isolated: a benchmark that fails transiently (see
// fault.Rule.Transient) is retried once, and whatever happens the
// remaining benchmarks still run. On error the returned slice holds
// every completed comparison at its suite position (failed ones are
// nil) alongside the joined failures, so callers can render partial
// results instead of discarding a mostly-good suite.
func RunSuite(opt Options) ([]*Comparison, error) {
	specs := workload.Suite()
	out := make([]*Comparison, len(specs))
	errs := make([]error, len(specs))

	start := time.Now()
	var done atomic.Int64
	var logMu sync.Mutex
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, max(1, par))
	var wg sync.WaitGroup
	for i, spec := range specs {
		sem <- struct{}{} // acquire the slot before spawning
		wg.Add(1)
		go func(i int, spec workload.Spec) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = Compare(opt.AdjustWorkload(spec), opt)
			if errs[i] != nil && IsTransient(errs[i]) {
				// A transient fault has cleared by the retry:
				// re-run under the plan minus its transient rules
				// (injection is deterministic, so retrying the
				// same plan would fail identically). Persistent
				// rules keep firing and the retry's verdict
				// stands.
				ropt := opt
				ropt.Faults = opt.Faults.WithoutTransient()
				out[i], errs[i] = Compare(opt.AdjustWorkload(spec), ropt)
			}
			if opt.Log != nil {
				n := done.Add(1)
				logMu.Lock()
				if errs[i] != nil {
					fmt.Fprintf(opt.Log, "suite: %-10s FAILED (%d/%d, %.1fs elapsed): %v\n",
						spec.Name, n, len(specs), time.Since(start).Seconds(), errs[i])
				} else {
					fmt.Fprintf(opt.Log, "suite: %-10s done (%d/%d, %.1fs elapsed)%s\n",
						spec.Name, n, len(specs), time.Since(start).Seconds(),
						runsSummary(out[i].Base, out[i].BBVRun, out[i].HotRun))
				}
				logMu.Unlock()
			}
		}(i, spec)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}
