package experiment

import (
	"fmt"
	"io"

	"acedo/internal/stats"
	"acedo/internal/workload"
)

// SuiteResults holds one full evaluation: every benchmark under every
// scheme, ready to render any of the paper's tables and figures.
type SuiteResults struct {
	Options     Options
	Comparisons []*Comparison
}

// Collect runs the whole suite once. On failure the returned results
// are still non-nil and hold every comparison that completed (in
// suite order, failed benchmarks omitted) alongside the joined error,
// so callers can render the partial evaluation instead of losing a
// mostly-good suite run.
func Collect(opt Options) (*SuiteResults, error) {
	cs, err := RunSuite(opt)
	done := make([]*Comparison, 0, len(cs))
	for _, c := range cs {
		if c != nil {
			done = append(done, c)
		}
	}
	return &SuiteResults{Options: opt, Comparisons: done}, err
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Table1 renders the qualitative latency comparison (paper Table 1),
// annotated with this run's measured values.
func (r *SuiteResults) Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1. Comparing DO-based ACE management with temporal approaches")
	fmt.Fprintf(w, "  %-36s %-34s %s\n", "Metric", "Temporal (BBV)", "DO-based (hotspot)")
	fmt.Fprintf(w, "  %-36s %-34s %s\n", "New phase identification latency",
		"at least one sampling interval", "hotspot invoked hot_threshold times")
	fmt.Fprintf(w, "  %-36s %-34s %s\n", "Recurring phase identification",
		"at least one sampling interval", "none (zero latency)")
	fmt.Fprintf(w, "  %-36s %-34s %s\n", "Tuning latency",
		"all combinations tested (16)", "a subset per hotspot (4)")
	var ident []float64
	for _, c := range r.Comparisons {
		ident = append(ident, float64(c.HotRun.AOS.IdentLatencyInstr)/float64(c.HotRun.Instr))
	}
	fmt.Fprintf(w, "  measured: mean hotspot identification latency = %s of execution\n",
		pct(stats.Mean(ident)))
}

// Table2 renders the simulated-system configuration (paper Table 2).
func (r *SuiteResults) Table2(w io.Writer) {
	m := r.Options.Machine
	t := m.Timing
	fmt.Fprintln(w, "Table 2. Baseline configuration of the simulated system")
	fmt.Fprintf(w, "  CPU: %d-wide issue/commit, 2K-entry combined predictor, %d-cycle mispredict\n",
		t.IssueWidth, t.MispredictPenalty)
	fmt.Fprintf(w, "  L1 I-cache: %d KB, 64 B blocks, 2-way, LRU\n", m.L1ISize/1024)
	fmt.Fprintf(w, "  L1 D-cache: sizes %v KB, 64 B blocks, 2-way, LRU, reconfig interval %d instr\n",
		kbList(m.L1DSizes), m.L1DReconfigInterval)
	fmt.Fprintf(w, "  L2 unified: sizes %v KB, 128 B blocks, 4-way, LRU, %d-cycle hit, reconfig interval %d instr\n",
		kbList(m.L2Sizes), t.L2HitLatency, m.L2ReconfigInterval)
	fmt.Fprintf(w, "  DTLB/ITLB: %d entries, fully associative, %d B pages, %d-cycle miss\n",
		m.TLBEntries, m.PageBytes, t.TLBMissCycles)
	fmt.Fprintf(w, "  Memory: %d-cycle latency; exposure L2=%.2f mem=%.2f (MLP overlap)\n",
		t.MemLatency, t.L2Exposure, t.MemExposure)
	fmt.Fprintf(w, "  Scale divisor: %d (DESIGN.md §4)\n", r.Options.ScaleDiv)
}

func kbList(sizes []int) []int {
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = s / 1024
	}
	return out
}

// Table3 renders the benchmark descriptions (paper Table 3).
func (r *SuiteResults) Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3. Description of SPECjvm98 benchmarks (synthetic stand-ins)")
	for _, s := range workload.Suite() {
		fmt.Fprintf(w, "  %-10s %s\n", s.Name, s.Desc)
	}
}

// Figure1 renders the stable/transitional BBV phase distribution.
func (r *SuiteResults) Figure1(w io.Writer) {
	fmt.Fprintln(w, "Figure 1. Distribution of stable/transitional BBV phase intervals")
	fmt.Fprintf(w, "  %-10s %10s %14s\n", "benchmark", "stable", "transitional")
	var sts []float64
	for _, c := range r.Comparisons {
		st := c.BBVRun.BBV.StablePct
		sts = append(sts, st)
		fmt.Fprintf(w, "  %-10s %10s %14s\n", c.Name, pct(st), pct(1-st))
	}
	avg := stats.Mean(sts)
	fmt.Fprintf(w, "  %-10s %10s %14s\n", "avg", pct(avg), pct(1-avg))
}

// Table4 renders the runtime hotspot characteristics.
func (r *SuiteResults) Table4(w io.Writer) {
	fmt.Fprintln(w, "Table 4. Runtime hotspot characteristics")
	fmt.Fprintf(w, "  %-10s %14s %9s %10s %8s %9s %9s\n",
		"benchmark", "dyn instr", "hotspots", "avg size", "%code", "avg inv", "ident%")
	for _, c := range r.Comparisons {
		h := c.HotRun
		fmt.Fprintf(w, "  %-10s %14d %9d %10.0f %8s %9.0f %9s\n",
			c.Name, h.Instr, h.AOS.Promotions, h.AOS.MeanSize,
			pct(float64(h.AOS.HotspotInstr)/float64(h.Instr)),
			h.AOS.MeanInvocation,
			pct(float64(h.AOS.IdentLatencyInstr)/float64(h.Instr)))
	}
}

// Table5 renders the hotspot-vs-BBV runtime characteristics.
func (r *SuiteResults) Table5(w io.Writer) {
	fmt.Fprintln(w, "Table 5. Runtime characteristics of the hotspot and BBV approaches")
	fmt.Fprintf(w, "  %-10s | %5s %4s %5s %6s %7s %8s | %6s %5s %8s %7s %8s\n",
		"benchmark", "L1Dh", "L2h", "tuned", "%tuned", "perCoV", "interCoV",
		"phases", "tuned", "%inTuned", "perCoV", "interCoV")
	for _, c := range r.Comparisons {
		h := c.HotRun.Hotspot
		b := c.BBVRun.BBV
		fmt.Fprintf(w, "  %-10s | %5d %4d %5d %6s %7s %8s | %6d %5d %8s %7s %8s\n",
			c.Name,
			h.L1D.Hotspots, h.L2.Hotspots, h.L1D.Tuned+h.L2.Tuned,
			pct(h.TunedPct), pct(h.PerHotspotIPCCoV), pct(h.InterHotspotIPCCoV),
			b.Phases, b.TunedPhases, pct(b.PctIntervalsInTuned),
			pct(b.PerPhaseIPCCoV), pct(b.InterPhaseIPCCoV))
	}
}

// Table6 renders tunings, reconfigurations and coverage.
func (r *SuiteResults) Table6(w io.Writer) {
	fmt.Fprintln(w, "Table 6. Tunings, reconfigurations and coverage")
	fmt.Fprintf(w, "  %-10s | %7s %8s %6s | %7s %8s %6s | %7s %8s %6s\n",
		"benchmark",
		"L1Dtun", "L1Drec", "L1Dcov",
		"L2tun", "L2rec", "L2cov",
		"BBVtun", "BBVrec", "BBVcov")
	for _, c := range r.Comparisons {
		h := c.HotRun.Hotspot
		b := c.BBVRun.BBV
		fmt.Fprintf(w, "  %-10s | %7d %8d %6s | %7d %8d %6s | %7d %8d %6s\n",
			c.Name,
			h.L1D.Tunings, h.L1D.Reconfigs, pct(h.L1D.Coverage),
			h.L2.Tunings, h.L2.Reconfigs, pct(h.L2.Coverage),
			b.Tunings, b.Reconfigs, pct(b.Coverage))
	}
}

// Figure3 renders the cache energy reductions.
func (r *SuiteResults) Figure3(w io.Writer) {
	fmt.Fprintln(w, "Figure 3. Cache energy reduction over the full-size baseline")
	fmt.Fprintf(w, "  %-10s | %9s %9s | %9s %9s\n",
		"benchmark", "L1D BBV", "L1D hot", "L2 BBV", "L2 hot")
	var a, b, c2, d []float64
	for _, c := range r.Comparisons {
		a = append(a, c.L1DSavingBBV)
		b = append(b, c.L1DSavingHot)
		c2 = append(c2, c.L2SavingBBV)
		d = append(d, c.L2SavingHot)
		fmt.Fprintf(w, "  %-10s | %9s %9s | %9s %9s\n",
			c.Name, pct(c.L1DSavingBBV), pct(c.L1DSavingHot),
			pct(c.L2SavingBBV), pct(c.L2SavingHot))
	}
	fmt.Fprintf(w, "  %-10s | %9s %9s | %9s %9s\n", "avg",
		pct(stats.Mean(a)), pct(stats.Mean(b)), pct(stats.Mean(c2)), pct(stats.Mean(d)))
}

// Figure4 renders the performance degradation.
func (r *SuiteResults) Figure4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4. Performance degradation over the baseline")
	fmt.Fprintf(w, "  %-10s %10s %10s\n", "benchmark", "BBV", "hotspot")
	var a, b []float64
	for _, c := range r.Comparisons {
		a = append(a, c.SlowdownBBV)
		b = append(b, c.SlowdownHot)
		fmt.Fprintf(w, "  %-10s %10s %10s\n", c.Name, pct(c.SlowdownBBV), pct(c.SlowdownHot))
	}
	fmt.Fprintf(w, "  %-10s %10s %10s\n", "avg", pct(stats.Mean(a)), pct(stats.Mean(b)))
}

const ln = "\n"

// DetectorTable renders the detector-comparison extension: the two
// temporal detectors (BBV, working-set signatures) with the identical
// exhaustive tuner, against the hotspot framework.
func DetectorTable(w io.Writer, cs []*DetectorComparison) {
	fmt.Fprintln(w, "Extension: phase-detector comparison (cache energy saving | stable share | slowdown)")
	fmt.Fprintf(w, "  %-10s | %8s %8s %8s | %8s %8s | %8s %8s %8s"+ln,
		"benchmark", "BBV", "WSS", "hotspot", "BBVstbl", "WSSstbl", "BBVslow", "WSSslow", "hotslow")
	var b, ws, h []float64
	for _, c := range cs {
		b = append(b, c.CacheSavingBBV)
		ws = append(ws, c.CacheSavingWSS)
		h = append(h, c.CacheSavingHot)
		fmt.Fprintf(w, "  %-10s | %8s %8s %8s | %8s %8s | %8s %8s %8s"+ln,
			c.Name,
			pct(c.CacheSavingBBV), pct(c.CacheSavingWSS), pct(c.CacheSavingHot),
			pct(c.BBVRun.BBV.StablePct), pct(c.WSSRun.BBV.StablePct),
			pct(c.SlowdownBBV), pct(c.SlowdownWSS), pct(c.SlowdownHot))
	}
	fmt.Fprintf(w, "  %-10s | %8s %8s %8s |"+ln, "avg",
		pct(stats.Mean(b)), pct(stats.Mean(ws)), pct(stats.Mean(h)))
}

// ExtensionThreeCU renders the three-CU extension experiment: the
// results must come from a collection run with
// Options.WithThreeCU(). It shows the issue-queue savings alongside
// the caches' and the comparator's collapse under 64 combinatorial
// configurations.
func (r *SuiteResults) ExtensionThreeCU(w io.Writer) {
	fmt.Fprintln(w, "Extension: three configurable units (L1D + L2 + issue queue)")
	fmt.Fprintln(w, "  BBV must now explore 64 combinatorial configurations; the hotspot")
	fmt.Fprintln(w, "  framework still tests 4 per hotspot (CU decoupling, Section 2.3).")
	fmt.Fprintf(w, "  %-10s | %8s %8s | %8s %8s | %8s %8s | %8s %8s | %7s %7s"+ln,
		"benchmark", "IQ BBV", "IQ hot", "L1D BBV", "L1D hot", "L2 BBV", "L2 hot",
		"tunedBBV", "tunedHot", "slowBBV", "slowHot")
	var iqB, iqH []float64
	for _, c := range r.Comparisons {
		iqB = append(iqB, c.IQSavingBBV)
		iqH = append(iqH, c.IQSavingHot)
		fmt.Fprintf(w, "  %-10s | %8s %8s | %8s %8s | %8s %8s | %8s %8s | %7s %7s"+ln,
			c.Name,
			pct(c.IQSavingBBV), pct(c.IQSavingHot),
			pct(c.L1DSavingBBV), pct(c.L1DSavingHot),
			pct(c.L2SavingBBV), pct(c.L2SavingHot),
			pct(c.BBVRun.BBV.PctIntervalsInTuned), pct(c.HotRun.Hotspot.TunedPct),
			pct(c.SlowdownBBV), pct(c.SlowdownHot))
	}
	fmt.Fprintf(w, "  %-10s | %8s %8s |"+ln, "avg", pct(stats.Mean(iqB)), pct(stats.Mean(iqH)))
}

// WriteAll renders every table and figure in paper order.
func (r *SuiteResults) WriteAll(w io.Writer) {
	r.Table1(w)
	fmt.Fprintln(w)
	r.Table2(w)
	fmt.Fprintln(w)
	r.Table3(w)
	fmt.Fprintln(w)
	r.Figure1(w)
	fmt.Fprintln(w)
	r.Table4(w)
	fmt.Fprintln(w)
	r.Table5(w)
	fmt.Fprintln(w)
	r.Table6(w)
	fmt.Fprintln(w)
	r.Figure3(w)
	fmt.Fprintln(w)
	r.Figure4(w)
}
