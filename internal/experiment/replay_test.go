package experiment

import (
	"strings"
	"testing"

	"acedo/internal/fault"
	"acedo/internal/telemetry"
	"acedo/internal/workload"
)

// compareBoth runs Compare once with the replay fast path and once
// with NoReplay (the direct-execution control) from a cold trace
// cache, returning both.
func compareBoth(t *testing.T, spec workload.Spec, opt Options) (replayed, direct *Comparison) {
	t.Helper()
	resetTraceCache()
	replayed, err := Compare(spec, opt)
	if err != nil {
		t.Fatalf("replay Compare: %v", err)
	}
	dopt := opt
	dopt.NoReplay = true
	direct, err = Compare(spec, dopt)
	if err != nil {
		t.Fatalf("direct Compare: %v", err)
	}
	return replayed, direct
}

func checkSameRuns(t *testing.T, replayed, direct *Comparison) {
	t.Helper()
	pairs := []struct {
		name string
		r, d *Result
	}{
		{"baseline", replayed.Base, direct.Base},
		{"bbv", replayed.BBVRun, direct.BBVRun},
		{"hotspot", replayed.HotRun, direct.HotRun},
	}
	for _, p := range pairs {
		if !sameSim(p.r, p.d) {
			t.Errorf("%s: replayed run differs from direct:\nreplay = %+v\ndirect = %+v",
				p.name, p.r, p.d)
		}
	}
}

// TestReplayMatchesDirectComplete: on a run-to-completion benchmark
// every scheme — including the overhead-charging hotspot framework —
// replays from the baseline's trace bit-identically to direct
// execution.
func TestReplayMatchesDirectComplete(t *testing.T) {
	spec := shortSpec(t, "jess")
	opt := DefaultOptions()
	replayed, direct := compareBoth(t, spec, opt)
	checkSameRuns(t, replayed, direct)

	if got := replayed.Base.Disposition; got != RunRecorded {
		t.Errorf("baseline disposition = %q, want %q", got, RunRecorded)
	}
	for _, r := range []*Result{replayed.BBVRun, replayed.HotRun} {
		if r.Disposition != RunReplayed {
			t.Errorf("%s disposition = %q, want %q", r.Scheme, r.Disposition, RunReplayed)
		}
	}
	for _, r := range []*Result{direct.Base, direct.BBVRun, direct.HotRun} {
		if r.Disposition != RunDirect {
			t.Errorf("NoReplay %s disposition = %q, want %q", r.Scheme, r.Disposition, RunDirect)
		}
	}
}

// TestReplayMatchesDirectTruncated: with an instruction budget the
// trace is truncated. The budget counts the hotspot scheme's
// instrumentation overhead, so its direct run stops earlier in
// program terms than the recorded stream — replay must detect the
// divergence and fall back to direct execution, while the
// overhead-free schemes still replay. Results match direct execution
// either way.
func TestReplayMatchesDirectTruncated(t *testing.T) {
	spec := shortSpec(t, "jess")
	opt := DefaultOptions()
	opt.MaxInstr = 2_000_000
	replayed, direct := compareBoth(t, spec, opt)
	checkSameRuns(t, replayed, direct)

	if got := replayed.BBVRun.Disposition; got != RunReplayed {
		t.Errorf("bbv disposition = %q, want %q", got, RunReplayed)
	}
	if got := replayed.HotRun.Disposition; got != RunFallback {
		t.Errorf("hotspot disposition = %q, want %q", got, RunFallback)
	}
}

// TestReplayDetectorsMatchDirect: CompareDetectors shares Compare's
// trace cache, so after a Compare of the same benchmark all four of
// its schemes replay — and match direct execution.
func TestReplayDetectorsMatchDirect(t *testing.T) {
	spec := shortSpec(t, "db")
	opt := DefaultOptions()
	resetTraceCache()
	if _, err := Compare(spec, opt); err != nil {
		t.Fatal(err)
	}
	replayed, err := CompareDetectors(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	dopt := opt
	dopt.NoReplay = true
	direct, err := CompareDetectors(spec, dopt)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name string
		r, d *Result
	}{
		{"baseline", replayed.Base, direct.Base},
		{"bbv", replayed.BBVRun, direct.BBVRun},
		{"wss", replayed.WSSRun, direct.WSSRun},
		{"hotspot", replayed.HotRun, direct.HotRun},
	}
	for _, p := range pairs {
		if !sameSim(p.r, p.d) {
			t.Errorf("%s: replayed run differs from direct", p.name)
		}
		if p.r.Disposition != RunReplayed {
			t.Errorf("%s disposition = %q, want %q (cache warm)", p.name, p.r.Disposition, RunReplayed)
		}
	}
}

// TestReplayUnderFaultPlans: fault plans perturb sampling, phase
// signatures, and unit requests — but never the architectural stream.
// Replay under an armed plan must equal direct execution under the
// same plan (or cleanly fall back; never silently diverge).
func TestReplayUnderFaultPlans(t *testing.T) {
	plans := map[string]*fault.Plan{
		"sample-drop": {Seed: 7, Rules: []fault.Rule{
			{Point: fault.PointTimerSample, Kind: fault.KindDrop, Prob: 0.25},
		}},
		"sample-duplicate": {Seed: 11, Rules: []fault.Rule{
			{Point: fault.PointTimerSample, Kind: fault.KindDuplicate, Prob: 0.25},
		}},
		"bbv-bitflip": {Seed: 13, Rules: []fault.Rule{
			{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip, Every: 3},
		}},
		"mixed": {Seed: 17, Rules: []fault.Rule{
			{Point: fault.PointUnitRequest, Kind: fault.KindReject, Prob: 0.3},
			{Point: fault.PointTimerSample, Kind: fault.KindDrop, Prob: 0.2},
			{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip, Every: 5},
		}},
	}
	spec := shortSpec(t, "jess")
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Faults = plan
			replayed, direct := compareBoth(t, spec, opt)
			checkSameRuns(t, replayed, direct)
			for _, r := range []*Result{replayed.BBVRun, replayed.HotRun} {
				if r.Disposition != RunReplayed && r.Disposition != RunFallback {
					t.Errorf("%s disposition = %q, want replayed or fallback", r.Scheme, r.Disposition)
				}
			}
		})
	}
}

// TestReplayEmitsDispositionTelemetry: with a sink installed the
// record/replay fast path reports each run's disposition as a typed
// telemetry event carrying the trace's dimensions.
func TestReplayEmitsDispositionTelemetry(t *testing.T) {
	spec := shortSpec(t, "jess")
	opt := DefaultOptions()
	var buf telemetry.Buffer
	opt.Sink = &buf
	resetTraceCache()
	if _, err := Compare(spec, opt); err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, e := range buf.Events() {
		if e.Type != telemetry.TypeReplay {
			continue
		}
		events++
		if err := e.Validate(); err != nil {
			t.Errorf("invalid replay event: %v", err)
		}
		if e.Replay.TraceEvents == 0 || e.Replay.TraceBytes == 0 {
			t.Errorf("replay event missing trace dimensions: %+v", e.Replay)
		}
		switch e.Replay.Disposition {
		case RunRecorded, RunReplayed, RunFallback:
		default:
			t.Errorf("unexpected disposition %q", e.Replay.Disposition)
		}
	}
	if events != 3 {
		t.Errorf("replay events = %d, want 3 (recorded + 2 replays)", events)
	}
}

// TestRunSuiteProgressShowsDispositions: suite progress lines stay one
// line per benchmark but carry each run's wall time and disposition.
func TestRunSuiteProgressShowsDispositions(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	var log strings.Builder
	opt := DefaultOptions()
	opt.MaxInstr = 500_000
	opt.Log = &log
	resetTraceCache()
	if _, err := RunSuite(opt); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(log.String(), "\n"), "\n")
	if want := len(workload.Suite()); len(lines) != want {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), want, log.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, RunRecorded) && !strings.Contains(line, RunDirect) {
			t.Errorf("progress line missing disposition: %q", line)
		}
		if !strings.Contains(line, "replayed") && !strings.Contains(line, "fallback") &&
			!strings.Contains(line, "direct") {
			t.Errorf("progress line missing scheme dispositions: %q", line)
		}
	}
}
