package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// SnapshotSchemaVersion identifies the BenchSnapshot JSON layout.
// Bump it only for breaking changes (renamed or re-typed fields);
// additive optional fields keep the version. Downstream tooling
// tracking the perf trajectory across commits keys on this.
const SnapshotSchemaVersion = 1

// BenchSnapshot is the machine-readable record of one full suite
// evaluation — the per-commit perf/energy trajectory artifact
// (`acetables -json out.json`, `make bench-snapshot`). The schema is
// deliberately flat and explicit rather than a dump of internal
// structs, so internal refactors do not silently change the file
// format.
type BenchSnapshot struct {
	SchemaVersion int    `json:"schema_version"`
	ScaleDiv      uint64 `json:"scale_div"`
	ThreeCU       bool   `json:"three_cu"`

	Benchmarks []BenchmarkSnapshot `json:"benchmarks"`

	// TraceFormat and TraceCache are optional run metadata, filled only
	// by SnapshotWithMeta (e.g. `acetables -json -runmeta`): the
	// recorder format the evaluation ran with and the process-wide
	// record-once trace cache's state after it. Plain Snapshot omits
	// both, keeping default snapshots byte-identical across recorder
	// formats and the schema additive.
	TraceFormat string              `json:"trace_format,omitempty"`
	TraceCache  *TraceCacheSnapshot `json:"trace_cache,omitempty"`
}

// TraceCacheSnapshot gauges the process-wide record-once trace cache
// at snapshot time: resident recordings and their memory charge
// (decoded summaries included), split by how many were direct-built at
// record time versus decoded from byte streams.
type TraceCacheSnapshot struct {
	Entries     int    `json:"entries"`
	Bytes       int    `json:"bytes"`
	DirectBuilt uint64 `json:"direct_built"`
	Summarized  uint64 `json:"summarized"`
}

// BenchmarkSnapshot is one benchmark's three runs plus the derived
// figure metrics.
type BenchmarkSnapshot struct {
	Name string `json:"name"`

	Baseline RunSnapshot `json:"baseline"`
	BBV      RunSnapshot `json:"bbv"`
	Hotspot  RunSnapshot `json:"hotspot"`

	Derived DerivedSnapshot `json:"derived"`
}

// RunSnapshot is one run's headline measurements.
type RunSnapshot struct {
	Instr  uint64  `json:"instr"`
	Cycles uint64  `json:"cycles"`
	IPC    float64 `json:"ipc"`

	L1DEnergyNJ float64 `json:"l1d_energy_nj"`
	L2EnergyNJ  float64 `json:"l2_energy_nj"`
	IQEnergyNJ  float64 `json:"iq_energy_nj,omitempty"`

	L1Misses  uint64 `json:"l1_misses"`
	L2Misses  uint64 `json:"l2_misses"`
	Reconfigs uint64 `json:"reconfigs"`

	Promotions    uint64 `json:"promotions"`
	OverheadInstr uint64 `json:"overhead_instr"`

	// Optional run metadata, filled only by SnapshotWithMeta (e.g.
	// `acetables -json -runmeta`): the run's record/replay disposition
	// and host wall-clock time. Both are omitted by Snapshot, keeping
	// default snapshots byte-identical across the replay fast path and
	// schema-additive for downstream tooling.
	Disposition string  `json:"disposition,omitempty"`
	WallMS      float64 `json:"wall_ms,omitempty"`
}

// DerivedSnapshot carries the Figure 3/4 metrics: fractional energy
// savings versus the baseline and fractional CPI slowdowns.
type DerivedSnapshot struct {
	L1DSavingBBV float64 `json:"l1d_saving_bbv"`
	L1DSavingHot float64 `json:"l1d_saving_hot"`
	L2SavingBBV  float64 `json:"l2_saving_bbv"`
	L2SavingHot  float64 `json:"l2_saving_hot"`
	IQSavingBBV  float64 `json:"iq_saving_bbv,omitempty"`
	IQSavingHot  float64 `json:"iq_saving_hot,omitempty"`
	SlowdownBBV  float64 `json:"slowdown_bbv"`
	SlowdownHot  float64 `json:"slowdown_hot"`
}

// Snapshot reduces the suite results to the schema-stable snapshot.
func (r *SuiteResults) Snapshot() BenchSnapshot {
	s := BenchSnapshot{
		SchemaVersion: SnapshotSchemaVersion,
		ScaleDiv:      r.Options.ScaleDiv,
		ThreeCU:       len(r.Options.Machine.IQSizes) > 0,
	}
	for _, c := range r.Comparisons {
		s.Benchmarks = append(s.Benchmarks, BenchmarkSnapshot{
			Name:     c.Name,
			Baseline: runSnapshot(c.Base),
			BBV:      runSnapshot(c.BBVRun),
			Hotspot:  runSnapshot(c.HotRun),
			Derived: DerivedSnapshot{
				L1DSavingBBV: c.L1DSavingBBV,
				L1DSavingHot: c.L1DSavingHot,
				L2SavingBBV:  c.L2SavingBBV,
				L2SavingHot:  c.L2SavingHot,
				IQSavingBBV:  c.IQSavingBBV,
				IQSavingHot:  c.IQSavingHot,
				SlowdownBBV:  c.SlowdownBBV,
				SlowdownHot:  c.SlowdownHot,
			},
		})
	}
	return s
}

// SnapshotWithMeta is Snapshot plus the optional per-run metadata
// fields: each run's record/replay disposition and wall-clock
// milliseconds. The additions are omitempty-only, so consumers of the
// schema-stable snapshot are unaffected unless they opt in.
func (r *SuiteResults) SnapshotWithMeta() BenchSnapshot {
	s := r.Snapshot()
	fill := func(rs *RunSnapshot, res *Result) {
		rs.Disposition = res.Disposition
		rs.WallMS = float64(res.Wall.Microseconds()) / 1e3
	}
	for i, c := range r.Comparisons {
		fill(&s.Benchmarks[i].Baseline, c.Base)
		fill(&s.Benchmarks[i].BBV, c.BBVRun)
		fill(&s.Benchmarks[i].Hotspot, c.HotRun)
	}
	s.TraceFormat = r.Options.TraceFormat.String()
	tc := CurrentTraceCacheStats()
	s.TraceCache = &TraceCacheSnapshot{
		Entries:     tc.Entries,
		Bytes:       tc.Bytes,
		DirectBuilt: tc.DirectBuilt,
		Summarized:  tc.Summarized,
	}
	return s
}

// RunSnapshotOf reduces one run result to its schema-stable snapshot
// form. With withMeta set, the optional run-metadata fields
// (disposition, wall-clock milliseconds) are filled too — the per-run
// analogue of SnapshotWithMeta, used by the experiment service to
// render jobs with explicit scheme lists.
func RunSnapshotOf(r *Result, withMeta bool) RunSnapshot {
	rs := runSnapshot(r)
	if withMeta {
		rs.Disposition = r.Disposition
		rs.WallMS = float64(r.Wall.Microseconds()) / 1e3
	}
	return rs
}

func runSnapshot(r *Result) RunSnapshot {
	return RunSnapshot{
		Instr:         r.Instr,
		Cycles:        r.Cycles,
		IPC:           r.IPC,
		L1DEnergyNJ:   r.L1DEnergyNJ,
		L2EnergyNJ:    r.L2EnergyNJ,
		IQEnergyNJ:    r.IQEnergyNJ,
		L1Misses:      r.Breakdown.L1Misses,
		L2Misses:      r.Breakdown.L2Misses,
		Reconfigs:     r.Breakdown.Reconfigs,
		Promotions:    r.AOS.Promotions,
		OverheadInstr: r.AOS.OverheadInstr,
	}
}

// WriteJSON renders the snapshot as indented JSON (field order fixed
// by the struct declarations, so successive snapshots diff cleanly).
func (s BenchSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("experiment: snapshot encode: %w", err)
	}
	return nil
}
