package experiment

import (
	"testing"

	"acedo/internal/rtrace"
)

// recordFor records one baseline run of the named benchmark in the
// given format and returns its primed trace.
func recordFor(t *testing.T, name string, format rtrace.Format) *rtrace.Trace {
	t.Helper()
	spec := shortSpec(t, name)
	opt := DefaultOptions()
	opt.TraceFormat = format
	_, tr, err := recordRun(spec, SchemeBaseline, opt)
	if err != nil {
		t.Fatalf("recordRun %s: %v", name, err)
	}
	if tr == nil {
		t.Fatalf("recordRun %s: nil trace", name)
	}
	return tr
}

// TestTraceCacheBudgetValue pins the documented process-wide budget:
// the admission arithmetic below and the acelabd metrics docs both
// quote 1 GiB.
func TestTraceCacheBudgetValue(t *testing.T) {
	if traceCacheBudget != 1<<30 {
		t.Fatalf("traceCacheBudget = %d, want %d (1 GiB; update the docs with it)", traceCacheBudget, 1<<30)
	}
}

// TestTraceCacheChargesMemBytes: the cache budget must charge a
// trace's full resident memory — for a direct-built trace the encoded
// Size is 0 and only MemBytes sees the summary arrays, so admission
// accounting on Size would charge nothing at all.
func TestTraceCacheChargesMemBytes(t *testing.T) {
	resetTraceCache()
	defer resetTraceCache()

	tr := recordFor(t, "jess", rtrace.FormatSummary)
	if tr.Size() != 0 || tr.MemBytes() == 0 {
		t.Fatalf("direct trace Size=%d MemBytes=%d, want 0 and >0", tr.Size(), tr.MemBytes())
	}
	storeTrace(traceKey{spec: 1}, tr)

	st := CurrentTraceCacheStats()
	if st.Entries != 1 || st.Bytes != tr.MemBytes() {
		t.Errorf("stats after direct store = %+v, want 1 entry of %d bytes", st, tr.MemBytes())
	}
	if st.DirectBuilt != 1 || st.Summarized != 0 {
		t.Errorf("format counters = direct %d / summarized %d, want 1 / 0", st.DirectBuilt, st.Summarized)
	}

	// A primed byte trace charges encoded bytes plus its summary.
	btr := recordFor(t, "jess", rtrace.FormatBytes)
	if btr.MemBytes() <= btr.Size() {
		t.Fatalf("primed byte trace MemBytes=%d, want > Size=%d", btr.MemBytes(), btr.Size())
	}
	storeTrace(traceKey{spec: 2}, btr)
	st = CurrentTraceCacheStats()
	if st.Entries != 2 || st.Bytes != tr.MemBytes()+btr.MemBytes() {
		t.Errorf("stats after byte store = %+v, want 2 entries of %d bytes",
			st, tr.MemBytes()+btr.MemBytes())
	}
	if st.DirectBuilt != 1 || st.Summarized != 1 {
		t.Errorf("format counters = direct %d / summarized %d, want 1 / 1", st.DirectBuilt, st.Summarized)
	}
}

// TestTraceCacheAdmissionBudget: once the budget cannot absorb a
// trace's MemBytes the recording is not retained (first-come
// retention, no eviction), and admission resumes for smaller traces
// that still fit.
func TestTraceCacheAdmissionBudget(t *testing.T) {
	resetTraceCache()
	defer func() {
		traceCacheBudget = 1 << 30
		resetTraceCache()
	}()

	tr := recordFor(t, "jess", rtrace.FormatSummary)
	traceCacheBudget = tr.MemBytes() + tr.MemBytes()/2

	storeTrace(traceKey{spec: 1}, tr)
	if st := CurrentTraceCacheStats(); st.Entries != 1 {
		t.Fatalf("first store not admitted: %+v", st)
	}
	// A second full-size trace exceeds the budget: rejected, stats
	// unchanged.
	storeTrace(traceKey{spec: 2}, tr)
	st := CurrentTraceCacheStats()
	if st.Entries != 1 || st.Bytes != tr.MemBytes() || st.DirectBuilt != 1 {
		t.Errorf("over-budget store changed stats: %+v", st)
	}
	// Storing under an existing key is idempotent.
	storeTrace(traceKey{spec: 1}, tr)
	if st := CurrentTraceCacheStats(); st.Entries != 1 || st.Bytes != tr.MemBytes() {
		t.Errorf("duplicate store changed stats: %+v", st)
	}
}

// TestSnapshotMetaTraceCache: the trace-cache gauges and recorder
// format ride only on SnapshotWithMeta — the plain schema-stable
// snapshot must omit them, so default `acetables -json` output stays
// byte-identical across recorder formats (the record-check gate diffs
// exactly that output).
func TestSnapshotMetaTraceCache(t *testing.T) {
	resetTraceCache()
	defer resetTraceCache()
	tr := recordFor(t, "jess", rtrace.FormatSummary)
	storeTrace(traceKey{spec: 1}, tr)

	res := &SuiteResults{Options: DefaultOptions()}
	if s := res.Snapshot(); s.TraceCache != nil || s.TraceFormat != "" {
		t.Errorf("plain snapshot carries run metadata: format=%q cache=%+v", s.TraceFormat, s.TraceCache)
	}
	s := res.SnapshotWithMeta()
	if s.TraceFormat != "summary" {
		t.Errorf("meta snapshot trace_format = %q, want %q", s.TraceFormat, "summary")
	}
	if s.TraceCache == nil {
		t.Fatal("meta snapshot has no trace_cache block")
	}
	if s.TraceCache.Entries != 1 || s.TraceCache.Bytes != tr.MemBytes() ||
		s.TraceCache.DirectBuilt != 1 || s.TraceCache.Summarized != 0 {
		t.Errorf("trace_cache block = %+v, want 1 entry of %d bytes, 1 direct-built", s.TraceCache, tr.MemBytes())
	}
}

// TestTraceFormatsCacheSeparately: the format is part of the trace
// key, so a byte-format job never replays a direct-built trace (and
// vice versa) even for an otherwise identical run.
func TestTraceFormatsCacheSeparately(t *testing.T) {
	spec := shortSpec(t, "jess")
	opt := DefaultOptions()
	sumKey := traceKeyFor(spec, opt)
	opt.TraceFormat = rtrace.FormatBytes
	byteKey := traceKeyFor(spec, opt)
	if sumKey == byteKey {
		t.Fatal("summary and byte formats share a trace key")
	}
}

// TestRunSchemesBothFormats: RunSchemes must produce bit-identical
// results whichever recorder format the options select, from cold
// caches, with the non-baseline schemes actually replaying.
func TestRunSchemesBothFormats(t *testing.T) {
	spec := shortSpec(t, "db")
	schemes := []Scheme{SchemeBaseline, SchemeBBV, SchemeHotspot}

	run := func(format rtrace.Format) []*Result {
		resetTraceCache()
		opt := DefaultOptions()
		opt.TraceFormat = format
		rs, err := RunSchemes(spec, opt, schemes)
		if err != nil {
			t.Fatalf("RunSchemes(%v): %v", format, err)
		}
		return rs
	}
	sum := run(rtrace.FormatSummary)
	byt := run(rtrace.FormatBytes)
	resetTraceCache()

	for i := range schemes {
		if !sameSim(sum[i], byt[i]) {
			t.Errorf("%s: summary-format run differs from byte-format:\nsummary = %+v\nbytes   = %+v",
				schemes[i], sum[i], byt[i])
		}
		if i > 0 {
			if sum[i].Disposition != RunReplayed {
				t.Errorf("%s (summary): disposition = %q, want %q", schemes[i], sum[i].Disposition, RunReplayed)
			}
			if byt[i].Disposition != RunReplayed {
				t.Errorf("%s (bytes): disposition = %q, want %q", schemes[i], byt[i].Disposition, RunReplayed)
			}
		}
	}
}
