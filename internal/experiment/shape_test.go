package experiment

import (
	"testing"

	"acedo/internal/workload"
)

// TestWorkloadDemographyInvariants checks that each benchmark's
// generated program actually produces the hotspot demography the suite
// was engineered for (DESIGN.md §4, suite.go rules): phases classify
// into the L2 class, band leaves into the L1D class, and the framework
// finds a hotspot-dominated execution. A spec edit that silently
// breaks a benchmark's class structure fails here, not in a drifted
// figure.
func TestWorkloadDemographyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite; skipped in -short mode")
	}
	opt := DefaultOptions()
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := Run(spec.WithMainLoops(2), SchemeHotspot, opt)
			if err != nil {
				t.Fatal(err)
			}
			h := res.Hotspot
			if h.L2.Hotspots < 2 {
				t.Errorf("L2-class hotspots = %d, want ≥2 (phases must classify L2)", h.L2.Hotspots)
			}
			if h.L1D.Hotspots < 3 {
				t.Errorf("L1D-class hotspots = %d, want ≥3 (band leaves)", h.L1D.Hotspots)
			}
			if h.Unmanaged < 1 {
				t.Errorf("unmanaged hotspots = %d, want ≥1 (indifferent leaves/transitions)", h.Unmanaged)
			}
			if frac := float64(res.AOS.HotspotInstr) / float64(res.Instr); frac < 0.8 {
				t.Errorf("hotspot instruction share = %.2f, want ≥0.8", frac)
			}
			if h.TunedPct < 0.3 {
				t.Errorf("tuned fraction = %.2f, want ≥0.3 at 2 main loops", h.TunedPct)
			}
		})
	}
}

// TestHeadlineShapeRegression locks the paper's headline shape on two
// benchmarks at reduced length: the hotspot framework saves more L1D
// energy than the BBV comparator, and both save relative to the
// full-size baseline.
func TestHeadlineShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six simulations; skipped in -short mode")
	}
	opt := DefaultOptions()
	for _, name := range []string{"compress", "db"} {
		spec, _ := workload.ByName(name)
		c, err := Compare(spec.WithMainLoops(6), opt)
		if err != nil {
			t.Fatal(err)
		}
		if c.L1DSavingHot <= 0.2 {
			t.Errorf("%s: hotspot L1D saving = %.2f, want >0.2", name, c.L1DSavingHot)
		}
		if c.L1DSavingHot <= c.L1DSavingBBV {
			t.Errorf("%s: hotspot L1D saving (%.2f) must beat BBV (%.2f) — the paper's headline",
				name, c.L1DSavingHot, c.L1DSavingBBV)
		}
		if c.L2SavingHot <= 0.2 {
			t.Errorf("%s: hotspot L2 saving = %.2f, want >0.2", name, c.L2SavingHot)
		}
		if c.SlowdownHot > 0.20 {
			t.Errorf("%s: hotspot slowdown = %.2f, want ≤0.20", name, c.SlowdownHot)
		}
	}
}

// TestThreeCUExtensionShape locks the extension's scalability story:
// with three CUs the hotspot framework still saves issue-queue energy
// while the BBV comparator's 64-combination search saves less.
func TestThreeCUExtensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three simulations; skipped in -short mode")
	}
	spec, _ := workload.ByName("jess")
	c, err := Compare(spec.WithMainLoops(6), DefaultOptions().WithThreeCU())
	if err != nil {
		t.Fatal(err)
	}
	if c.IQSavingHot <= 0.1 {
		t.Errorf("hotspot IQ saving = %.2f, want >0.1", c.IQSavingHot)
	}
	if c.HotRun.Hotspot.Micro.Hotspots == 0 {
		t.Error("no micro-class hotspots with the IQ enabled")
	}
	if c.L1DSavingHot <= c.L1DSavingBBV {
		t.Errorf("hotspot L1D saving (%.2f) must beat BBV (%.2f) with three CUs",
			c.L1DSavingHot, c.L1DSavingBBV)
	}
}

// TestScaledOptionsSmoke exercises a non-default scale end to end:
// intervals, thresholds and workload lengths must co-scale without
// faults or empty results.
func TestScaledOptionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	opt := OptionsAtScale(5)
	opt.MaxInstr = 4_000_000
	spec, _ := workload.ByName("compress")
	res, err := Run(opt.AdjustWorkload(spec.WithMainLoops(2)), SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.AOS.Promotions == 0 {
		t.Error("no hotspots at scale 5")
	}
	// The suite's leaf granularity is written for scale 10; at other
	// scales the class boundaries shift, but phase methods remain in
	// the L2 class and the machinery must stay sound.
	if res.Hotspot.L2.Hotspots == 0 {
		t.Error("no L2-class hotspots at scale 5")
	}
}
