package experiment

import (
	"strings"
	"testing"

	"acedo/internal/workload"
)

func miniSpec(t *testing.T) workload.Spec {
	t.Helper()
	s, ok := workload.ByName("jess")
	if !ok {
		t.Fatal("jess missing")
	}
	return s.WithMainLoops(2)
}

func TestSchemeString(t *testing.T) {
	if SchemeBaseline.String() != "baseline" || SchemeBBV.String() != "bbv" ||
		SchemeHotspot.String() != "hotspot" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() != "scheme(9)" {
		t.Error("unknown scheme string wrong")
	}
}

func TestOptionsAtScale(t *testing.T) {
	o := OptionsAtScale(10)
	if o.ScaleDiv != 10 || o.VM.SampleInterval != 10_000 {
		t.Errorf("scaled options wrong: %+v", o.VM)
	}
	o1 := OptionsAtScale(1)
	if o1.BBV.IntervalInstr != 1_000_000 {
		t.Error("paper-scale BBV interval wrong")
	}
	if OptionsAtScale(0).ScaleDiv != 1 {
		t.Error("scale 0 should clamp to 1")
	}
}

func TestRunAllSchemes(t *testing.T) {
	spec := miniSpec(t)
	opt := DefaultOptions()
	for _, sch := range []Scheme{SchemeBaseline, SchemeBBV, SchemeHotspot} {
		res, err := Run(spec, sch, opt)
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		if res.Instr == 0 || res.Cycles == 0 || res.IPC <= 0 {
			t.Errorf("%s: empty result %+v", sch, res)
		}
		if res.L1DEnergyNJ <= 0 || res.L2EnergyNJ <= 0 {
			t.Errorf("%s: non-positive energy", sch)
		}
		switch sch {
		case SchemeBaseline:
			if res.Hotspot != nil || res.BBV != nil {
				t.Error("baseline must not carry scheme reports")
			}
			if res.Breakdown.Reconfigs != 0 {
				t.Error("baseline must never reconfigure")
			}
		case SchemeBBV:
			if res.BBV == nil || res.Hotspot != nil {
				t.Error("BBV run must carry exactly the BBV report")
			}
		case SchemeHotspot:
			if res.Hotspot == nil || res.BBV != nil {
				t.Error("hotspot run must carry exactly the hotspot report")
			}
			if res.AOS.Promotions == 0 {
				t.Error("hotspot run found no hotspots")
			}
		}
	}
}

func TestCompareDerivedMetrics(t *testing.T) {
	c, err := Compare(miniSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The schemes execute extra instrumentation but the same work:
	// baseline instructions are a lower bound.
	if c.HotRun.Instr < c.Base.Instr {
		t.Error("hotspot run executed fewer instructions than baseline")
	}
	// Savings are fractions < 1; slowdowns are ≥ 0 in practice but
	// must at least be sane.
	for _, v := range []float64{c.L1DSavingBBV, c.L1DSavingHot, c.L2SavingBBV, c.L2SavingHot} {
		if v >= 1 || v < -1 {
			t.Errorf("saving out of range: %v", v)
		}
	}
	if c.SlowdownHot < -0.05 || c.SlowdownHot > 1 {
		t.Errorf("hotspot slowdown out of range: %v", c.SlowdownHot)
	}
	// The adaptive run must actually save L1D energy on this
	// cache-friendly workload.
	if c.L1DSavingHot <= 0 {
		t.Errorf("hotspot L1D saving = %v, want > 0", c.L1DSavingHot)
	}
}

func TestBaselineDeterministicAcrossSchemes(t *testing.T) {
	// The baseline's own run must be identical no matter when it
	// executes: Run must not leak state between calls.
	opt := DefaultOptions()
	spec := miniSpec(t)
	r1, err := Run(spec, SchemeBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec, SchemeBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Instr != r2.Instr || r1.Cycles != r2.Cycles || r1.L1DEnergyNJ != r2.L1DEnergyNJ {
		t.Error("baseline runs differ")
	}
}

func TestMaxInstrBudget(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInstr = 1_000_000
	res, err := Run(miniSpec(t), SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instr < 1_000_000 || res.Instr > 1_100_000 {
		t.Errorf("budgeted run executed %d instructions", res.Instr)
	}
}

func TestTableRenderers(t *testing.T) {
	// Render every artifact from a tiny suite result (one
	// comparison reused) and check the headers survive.
	c, err := Compare(miniSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := &SuiteResults{Options: DefaultOptions(), Comparisons: []*Comparison{c}}
	var sb strings.Builder
	r.WriteAll(&sb)
	out := sb.String()
	for _, want := range []string{
		"Table 1.", "Table 2.", "Table 3.", "Figure 1.",
		"Table 4.", "Table 5.", "Table 6.", "Figure 3.", "Figure 4.",
		"jess", "avg",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSavingAndSlowdownHelpers(t *testing.T) {
	if saving(0, 5) != 0 {
		t.Error("saving with zero baseline should be 0")
	}
	if got := saving(10, 4); got != 0.6 {
		t.Errorf("saving = %v", got)
	}
	base := &Result{Instr: 100, Cycles: 100}
	slow := &Result{Instr: 110, Cycles: 120}
	if got := slowdown(base, slow); got < 0.19 || got > 0.21 {
		t.Errorf("slowdown = %v, want 0.2", got)
	}
	if slowdown(&Result{}, slow) != 0 {
		t.Error("empty baseline should yield 0")
	}
}

func TestSchemeWSS(t *testing.T) {
	res, err := Run(miniSpec(t), SchemeWSS, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BBV == nil {
		t.Fatal("WSS run must carry the temporal-scheme report")
	}
	if res.BBV.Intervals == 0 || res.BBV.Phases == 0 {
		t.Errorf("WSS detected nothing: %+v", res.BBV)
	}
}

func TestCompareDetectors(t *testing.T) {
	c, err := CompareDetectors(miniSpec(t), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.WSSRun == nil || c.BBVRun == nil || c.HotRun == nil {
		t.Fatal("missing runs")
	}
	for _, v := range []float64{c.CacheSavingBBV, c.CacheSavingWSS, c.CacheSavingHot} {
		if v >= 1 || v < -1 {
			t.Errorf("saving out of range: %v", v)
		}
	}
	var sb strings.Builder
	DetectorTable(&sb, []*DetectorComparison{c})
	for _, want := range []string{"WSS", "hotspot", "jess", "avg"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("detector table missing %q", want)
		}
	}
}

func TestAdjustWorkload(t *testing.T) {
	spec := miniSpec(t) // 2 loops
	if got := DefaultOptions().AdjustWorkload(spec).MainLoops; got != 2 {
		t.Errorf("scale 10 must not adjust: %d", got)
	}
	if got := OptionsAtScale(1).AdjustWorkload(spec).MainLoops; got != 20 {
		t.Errorf("paper scale should run 10x loops: %d", got)
	}
	if got := OptionsAtScale(20).AdjustWorkload(spec).MainLoops; got != 1 {
		t.Errorf("scale 20 should halve (clamped at 1): %d", got)
	}
}
