package experiment

import (
	"bytes"
	"testing"
)

// TestRunSuiteParallelismDeterminism pins RunSuite's independence
// guarantee: every simulation is deterministic and shares no state, so
// a fully serial suite and a concurrent one must produce byte-identical
// snapshot JSON. A divergence here means a simulation picked up hidden
// shared state (a global RNG, a shared machine, an order-dependent
// accumulation) and the per-commit snapshot artifact is no longer
// trustworthy.
func TestRunSuiteParallelismDeterminism(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInstr = 250_000 // bound each run; determinism, not fidelity, is under test
	snap := func(par int) []byte {
		o := opt
		o.Parallelism = par
		res, err := Collect(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := snap(1)
	concurrent := snap(4)
	if !bytes.Equal(serial, concurrent) {
		t.Errorf("serial and concurrent suite snapshots differ:\nserial:     %s\nconcurrent: %s", serial, concurrent)
	}
}
