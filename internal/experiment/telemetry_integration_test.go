package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"acedo/internal/core"
	"acedo/internal/machine"
	"acedo/internal/telemetry"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

func shortSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return spec.WithMainLoops(4)
}

// TestReconfigureEventsMatchUnitStats is the telemetry layer's ledger
// check: every accepted configuration change — and nothing else — must
// appear in the event stream, so the reconfigure-event count equals
// the sum of ace.UnitStats.Applied across units. (Construction-time
// initial applies bypass Request and fire pre-boot, so neither side
// counts them.)
func TestReconfigureEventsMatchUnitStats(t *testing.T) {
	spec := shortSpec(t, "jess")
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	mach, err := machine.New(opt.Machine)
	if err != nil {
		t.Fatal(err)
	}
	var buf telemetry.Buffer
	mach.OnReconfigure = telemetry.MachineReconfigure(&buf)
	aos := vm.NewAOS(opt.VM, mach, prog)
	if _, err := core.NewManager(opt.Core, mach, aos); err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}

	var applied uint64
	for _, u := range mach.Units() {
		applied += u.Stats().Applied
	}
	if applied == 0 {
		t.Fatal("hotspot run applied no reconfigurations; workload too short to test")
	}
	if got := uint64(buf.Count(telemetry.TypeReconfigure)); got != applied {
		t.Errorf("reconfigure events = %d, want %d (sum of UnitStats.Applied)", got, applied)
	}
}

// TestRunTelemetryHotspot drives the full experiment.Run wiring with a
// Buffer sink and checks the acceptance accounting: reconfiguration
// events match the timing model's count, promotions match the DO
// database, and the interval sampler produces at least one record per
// L1D reconfiguration interval.
func TestRunTelemetryHotspot(t *testing.T) {
	opt := DefaultOptions()
	var buf telemetry.Buffer
	opt.Sink = &buf
	res, err := Run(shortSpec(t, "jess"), SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}

	if got := uint64(buf.Count(telemetry.TypeReconfigure)); got != res.Breakdown.Reconfigs {
		t.Errorf("reconfigure events = %d, want %d (Breakdown.Reconfigs)", got, res.Breakdown.Reconfigs)
	}
	if got := uint64(buf.Count(telemetry.TypePromotion)); got != res.AOS.Promotions {
		t.Errorf("promotion events = %d, want %d (AOS.Promotions)", got, res.AOS.Promotions)
	}
	if buf.Count(telemetry.TypeTuneStep) == 0 || buf.Count(telemetry.TypeTuned) == 0 {
		t.Error("hotspot run should emit tuner events (tune-step and tuned)")
	}

	wantIntervals := int(res.Instr / opt.Machine.L1DReconfigInterval)
	if wantIntervals == 0 {
		t.Fatalf("run too short: %d instructions", res.Instr)
	}
	if got := buf.Count(telemetry.TypeInterval); got < wantIntervals {
		t.Errorf("interval records = %d, want >= %d (one per reconfiguration interval)", got, wantIntervals)
	}

	for _, e := range buf.Events() {
		if e.Bench != "jess" || e.Scheme != "hotspot" {
			t.Fatalf("event missing run labels: %+v", e)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid event: %v", err)
		}
	}
}

// TestRunTelemetryBBV checks the temporal comparator's phase events
// flow through the same sink.
func TestRunTelemetryBBV(t *testing.T) {
	opt := DefaultOptions()
	var buf telemetry.Buffer
	opt.Sink = &buf
	res, err := Run(shortSpec(t, "compress"), SchemeBBV, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.BBV == nil || res.BBV.Intervals == 0 {
		t.Fatal("BBV run produced no intervals")
	}
	if buf.Count(telemetry.TypePhase) == 0 {
		t.Error("BBV run should emit phase events")
	}
	if res.BBV.TunedPhases > 0 && buf.Count(telemetry.TypePhaseTuned) == 0 {
		t.Error("tuned phases should emit phase-tuned events")
	}
	if got := uint64(buf.Count(telemetry.TypeReconfigure)); got != res.Breakdown.Reconfigs {
		t.Errorf("reconfigure events = %d, want %d", got, res.Breakdown.Reconfigs)
	}
}

// TestSnapshotSchema pins the bench-snapshot JSON layout: version
// field, per-benchmark sections, and the headline keys downstream
// trajectory tooling reads.
func TestSnapshotSchema(t *testing.T) {
	opt := DefaultOptions()
	c, err := Compare(shortSpec(t, "compress"), opt)
	if err != nil {
		t.Fatal(err)
	}
	res := &SuiteResults{Options: opt, Comparisons: []*Comparison{c}}

	var out bytes.Buffer
	if err := res.Snapshot().WriteJSON(&out); err != nil {
		t.Fatal(err)
	}

	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if v, ok := doc["schema_version"].(float64); !ok || int(v) != SnapshotSchemaVersion {
		t.Errorf("schema_version = %v, want %d", doc["schema_version"], SnapshotSchemaVersion)
	}
	if v, ok := doc["scale_div"].(float64); !ok || uint64(v) != opt.ScaleDiv {
		t.Errorf("scale_div = %v", doc["scale_div"])
	}
	benches, ok := doc["benchmarks"].([]any)
	if !ok || len(benches) != 1 {
		t.Fatalf("benchmarks = %v", doc["benchmarks"])
	}
	b := benches[0].(map[string]any)
	if b["name"] != "compress" {
		t.Errorf("benchmark name = %v", b["name"])
	}
	for _, section := range []string{"baseline", "bbv", "hotspot"} {
		run, ok := b[section].(map[string]any)
		if !ok {
			t.Fatalf("missing %s section", section)
		}
		for _, key := range []string{"instr", "cycles", "ipc", "l1d_energy_nj", "l2_energy_nj", "l1_misses", "l2_misses", "reconfigs", "promotions", "overhead_instr"} {
			if _, ok := run[key]; !ok {
				t.Errorf("%s: missing key %q", section, key)
			}
		}
		if run["instr"].(float64) == 0 {
			t.Errorf("%s: zero instructions", section)
		}
	}
	derived, ok := b["derived"].(map[string]any)
	if !ok {
		t.Fatal("missing derived section")
	}
	for _, key := range []string{"l1d_saving_bbv", "l1d_saving_hot", "l2_saving_bbv", "l2_saving_hot", "slowdown_bbv", "slowdown_hot"} {
		if _, ok := derived[key]; !ok {
			t.Errorf("derived: missing key %q", key)
		}
	}
}

// TestRunSuiteLogsProgress checks the per-benchmark progress lines.
func TestRunSuiteLogsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	opt := DefaultOptions()
	var log bytes.Buffer
	opt.Log = &log
	cs, err := RunSuite(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != len(workload.Suite()) {
		t.Fatalf("comparisons = %d", len(cs))
	}
	lines := bytes.Count(log.Bytes(), []byte("\n"))
	if lines != len(cs) {
		t.Errorf("progress lines = %d, want %d:\n%s", lines, len(cs), log.String())
	}
}
