// Record-once / replay-many: the experiment layer records each
// benchmark's architectural event stream during its first (baseline)
// run and replays that trace for every other scheme instead of
// re-interpreting the program. The stream — block entries with their
// fixed-hardware fetch outcomes, data accesses with D-TLB outcomes,
// branch verdicts, retire-batch lengths, and method enter/exit — is
// scheme-invariant: adaptation schemes resize the L1D/L2/IQ, which
// changes timing and energy but never the instruction stream or the
// fixed units' hit/miss behaviour. Replay therefore reproduces every
// run bit-for-bit (pinned by the differential tests) while skipping
// the register file, the decoder, and the fixed hardware's state
// machines entirely.
package experiment

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"time"

	"acedo/internal/rtrace"
	"acedo/internal/telemetry"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// traceKey identifies a recorded stream. The stream is a pure function
// of the program (spec), the instruction budget (truncation point),
// the call-depth limit, and the machine's fixed-unit configuration —
// it does not depend on the scheme, the fault plan, or any sampling
// parameter, so one recording serves every scheme and every tuner
// configuration of the same benchmark. Spec and machine config hold
// slices, so both enter the key as an FNV-1a hash of their full value
// rendering rather than by direct comparison.
type traceKey struct {
	spec     uint64
	mach     uint64
	maxInstr uint64
	depth    int
	format   rtrace.Format
}

func traceKeyFor(spec workload.Spec, opt Options) traceKey {
	hs := fnv.New64a()
	fmt.Fprintf(hs, "%#v", spec)
	hm := fnv.New64a()
	fmt.Fprintf(hm, "%#v", opt.Machine)
	return traceKey{
		spec:     hs.Sum64(),
		mach:     hm.Sum64(),
		maxInstr: opt.MaxInstr,
		depth:    opt.VM.MaxCallDepth,
		// The two formats replay identically, but a cached trace's
		// DirectBuilt/Size telemetry must reflect the format the
		// caller asked for, so they cache under separate keys.
		format: opt.TraceFormat,
	}
}

// traceCacheBudget bounds the process-wide trace cache's resident
// memory — the decoded summary arrays included, since cached traces
// are primed for replay (rtrace.Trace.MemBytes, not just the encoded
// bytes). Once the budget is reached, further recordings simply
// aren't retained (first-come retention — no eviction, keeping cached
// replays deterministic). A var only so the admission test can shrink
// it; never mutated outside tests.
var traceCacheBudget = 1 << 30

var traceCache = struct {
	sync.Mutex
	m          map[traceKey]*rtrace.Trace
	size       int
	direct     uint64
	summarized uint64
}{m: make(map[traceKey]*rtrace.Trace)}

func cachedTrace(k traceKey) *rtrace.Trace {
	traceCache.Lock()
	defer traceCache.Unlock()
	return traceCache.m[k]
}

func storeTrace(k traceKey, t *rtrace.Trace) {
	mem := t.MemBytes()
	traceCache.Lock()
	defer traceCache.Unlock()
	if _, ok := traceCache.m[k]; ok {
		return
	}
	if traceCache.size+mem > traceCacheBudget {
		return
	}
	traceCache.m[k] = t
	traceCache.size += mem
	if t.DirectBuilt() {
		traceCache.direct++
	} else {
		traceCache.summarized++
	}
}

// resetTraceCache empties the process-wide trace cache (tests only).
func resetTraceCache() {
	traceCache.Lock()
	defer traceCache.Unlock()
	traceCache.m = make(map[traceKey]*rtrace.Trace)
	traceCache.size = 0
	traceCache.direct = 0
	traceCache.summarized = 0
}

// TraceCacheStats is a point-in-time view of the process-wide trace
// cache, exported on acelabd's /metrics and in acetables -runmeta.
type TraceCacheStats struct {
	// Entries is the number of cached traces; Bytes their resident
	// memory (encoded bytes plus decoded summary arrays).
	Entries int
	Bytes   int
	// DirectBuilt counts cached traces whose summary was built at
	// record time (FormatSummary); Summarized counts byte-recorded
	// traces summarized on the decode-once path (FormatBytes).
	DirectBuilt uint64
	Summarized  uint64
}

// CurrentTraceCacheStats snapshots the process-wide trace cache.
func CurrentTraceCacheStats() TraceCacheStats {
	traceCache.Lock()
	defer traceCache.Unlock()
	return TraceCacheStats{
		Entries:     len(traceCache.m),
		Bytes:       traceCache.size,
		DirectBuilt: traceCache.direct,
		Summarized:  traceCache.summarized,
	}
}

// RunSchemes runs one benchmark under several schemes with the
// record-once / replay-many fast path (see Compare) and returns the
// results in scheme order. The first scheme records (or reuses the
// cached trace); the rest replay in parallel, falling back to direct
// execution on divergence. With Options.NoReplay every scheme runs
// directly.
func RunSchemes(spec workload.Spec, opt Options, schemes []Scheme) ([]*Result, error) {
	if len(schemes) == 0 {
		return nil, nil
	}
	return schemeResults(spec, opt, schemes)
}

// schemeResults runs one benchmark under the given schemes in order.
// With replay enabled (the default), the first scheme's run doubles as
// the recording run — or is itself replayed when the process-wide
// cache already holds the benchmark's trace — and the remaining
// schemes replay in parallel, bounded by Options.Parallelism. A
// scheme whose replay diverges (possible only for truncated traces
// under overhead-charging schemes) falls back to direct execution.
// Results match direct execution bit-for-bit either way; error
// semantics match the sequential original (the first failing scheme
// in scheme order reports).
func schemeResults(spec workload.Spec, opt Options, schemes []Scheme) ([]*Result, error) {
	results := make([]*Result, len(schemes))
	if opt.NoReplay {
		for i, s := range schemes {
			r, err := Run(spec, s, opt)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	key := traceKeyFor(spec, opt)
	tr := cachedTrace(key)
	next := 0
	if tr == nil {
		r, t, err := recordRun(spec, schemes[0], opt)
		if err != nil {
			return nil, err
		}
		results[0] = r
		next = 1
		if t != nil {
			storeTrace(key, t)
			tr = t
		}
	}
	if tr == nil {
		// The recording was discarded (e.g. a block too wide for the
		// trace encoding): remaining schemes execute directly.
		for i := next; i < len(schemes); i++ {
			r, err := Run(spec, schemes[i], opt)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, max(1, par))
	errs := make([]error, len(schemes))
	var wg sync.WaitGroup
	for i := next; i < len(schemes); i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = replayOrFallback(spec, schemes[i], opt, tr)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RecordedBaseline returns one benchmark's baseline run together with
// its recorded architectural trace, recording on first use and serving
// the process-wide trace cache thereafter. The trace captures only the
// fixed hardware's outcomes (L1I, I/D-TLB, branch predictor) plus the
// scheme-invariant instruction stream, so it can later drive ReplayScheme
// under *different* resizable-unit configurations and tuner parameters —
// the property internal/optimize's search exploits to make every
// candidate evaluation a cheap replay. A nil trace (the recorder could
// not take the stream) is returned alongside the still-valid result.
func RecordedBaseline(spec workload.Spec, opt Options) (*Result, *rtrace.Trace, error) {
	key := traceKeyFor(spec, opt)
	if tr := cachedTrace(key); tr != nil {
		res, err := replayOrFallback(spec, SchemeBaseline, opt, tr)
		return res, tr, err
	}
	res, tr, err := recordRun(spec, SchemeBaseline, opt)
	if err != nil {
		return nil, nil, err
	}
	if tr != nil {
		storeTrace(key, tr)
	}
	return res, tr, err
}

// ReplayScheme runs one benchmark × scheme from a previously recorded
// trace, falling back to direct execution when the trace provably
// cannot drive the run (divergence of a truncated trace under an
// overhead-charging scheme) or when tr is nil. The options need not
// match the recording options: only the fixed hardware (L1I, TLBs,
// branch predictor, timing model) and the program itself must be
// identical, so callers may vary the resizable-unit ladders,
// associativities, and every tuner/sampling parameter per replay.
func ReplayScheme(spec workload.Spec, scheme Scheme, opt Options, tr *rtrace.Trace) (*Result, error) {
	if tr == nil {
		return Run(spec, scheme, opt)
	}
	return replayOrFallback(spec, scheme, opt, tr)
}

// recordRun executes one run directly while capturing its
// architectural trace in the format opt.TraceFormat selects. A trace
// the recorder could not take (or a truncated run whose recording
// failed to finalise) yields a nil trace alongside the still-valid
// result. The returned trace is primed — its summary resolved against
// the run's program — so MemBytes reflects the full replay footprint
// at cache-admission time.
func recordRun(spec workload.Spec, scheme Scheme, opt Options) (*Result, *rtrace.Trace, error) {
	start := time.Now()
	var tr *rtrace.Trace
	res, err := guarded(spec, scheme, func() (*Result, error) {
		st, err := newRunState(spec, scheme, opt)
		if err != nil {
			return nil, err
		}
		eng, err := vm.NewEngine(st.prog, st.mach, st.aos)
		if err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
		var rec interface {
			vm.Recorder
			Finish(halted bool) (*rtrace.Trace, error)
		}
		if opt.TraceFormat == rtrace.FormatBytes {
			rec = rtrace.NewRecorder()
		} else {
			rec = rtrace.NewSummaryRecorder(st.prog, opt.MaxInstr)
		}
		if err := eng.SetRecorder(rec); err != nil {
			return nil, fmt.Errorf("experiment %s/%s: %w", spec.Name, scheme, err)
		}
		if st.listener != nil {
			eng.SetBlockListener(st.listener)
		}
		if err := runEngine(eng, spec.Name, scheme, opt); err != nil {
			return nil, err
		}
		if t, ferr := rec.Finish(eng.Halted()); ferr == nil {
			t.Prime(st.prog)
			tr = t
		}
		return st.finish(), nil
	})
	if res != nil {
		res.Wall = time.Since(start)
		res.Disposition = RunDirect
		if tr != nil {
			res.Disposition = RunRecorded
			emitDisposition(opt, spec, scheme, res, RunRecorded, "", tr)
		}
	}
	return res, tr, err
}

// replayOrFallback replays one scheme from the benchmark's trace,
// re-executing directly when the trace provably cannot drive this run
// (rtrace.ErrDiverged / ErrMalformed). Genuine run failures — injected
// panics, setup errors — propagate exactly as direct execution's.
func replayOrFallback(spec workload.Spec, scheme Scheme, opt Options, tr *rtrace.Trace) (*Result, error) {
	start := time.Now()
	res, err := guarded(spec, scheme, func() (*Result, error) {
		st, err := newRunState(spec, scheme, opt)
		if err != nil {
			return nil, err
		}
		env := rtrace.Env{
			Prog: st.prog, Mach: st.mach, AOS: st.aos, BlockListener: st.listener,
		}
		if opt.IntraParallelism > 1 {
			err = tr.ReplayParallel(env, opt.IntraParallelism)
		} else {
			err = tr.Replay(env)
		}
		if err != nil {
			return nil, err
		}
		return st.finish(), nil
	})
	if err == nil {
		res.Disposition = RunReplayed
		res.Wall = time.Since(start)
		emitDisposition(opt, spec, scheme, res, RunReplayed, "", tr)
		return res, nil
	}
	if errors.Is(err, rtrace.ErrDiverged) || errors.Is(err, rtrace.ErrMalformed) {
		reason := err.Error()
		res, err = Run(spec, scheme, opt)
		if err != nil {
			return nil, err
		}
		res.Disposition = RunFallback
		res.Wall = time.Since(start)
		emitDisposition(opt, spec, scheme, res, RunFallback, reason, tr)
		return res, nil
	}
	return nil, err
}

// emitDisposition reports a run's record/replay disposition on the
// telemetry stream (no-op without a sink).
func emitDisposition(opt Options, spec workload.Spec, scheme Scheme, res *Result, disposition, reason string, tr *rtrace.Trace) {
	if opt.Sink == nil {
		return
	}
	e := telemetry.Replay(disposition, reason, tr.Events(), uint64(tr.MemBytes()))
	e.Instr = res.Instr
	telemetry.WithRunLabels(opt.Sink, spec.Name, scheme.String()).Emit(e)
}

// runsSummary renders per-run wall time and disposition for a suite
// progress line, e.g. " [baseline 0.41s recorded; bbv 0.05s replayed]".
func runsSummary(runs ...*Result) string {
	var b strings.Builder
	for _, r := range runs {
		if r == nil {
			continue
		}
		if b.Len() == 0 {
			b.WriteString(" [")
		} else {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %.2fs %s", r.Scheme, r.Wall.Seconds(), r.Disposition)
	}
	if b.Len() > 0 {
		b.WriteString("]")
	}
	return b.String()
}
