package experiment

import (
	"bytes"
	"testing"

	"acedo/internal/fault"
)

// TestIntraParallelReplayMatrix is the summarized/parallel replay
// differential matrix: for each workload × fault-plan cell, the
// direct-execution control (NoReplay), the summarized serial replay,
// and the span-parallel replay must produce identical results for
// every scheme. Fault plans perturb sampling, signatures, and unit
// requests — the adaptation machinery the replay engines must
// reproduce event-for-event around their bulk fast paths.
func TestIntraParallelReplayMatrix(t *testing.T) {
	plans := map[string]*fault.Plan{
		"nofault": nil,
		"mixed": {Seed: 17, Rules: []fault.Rule{
			{Point: fault.PointUnitRequest, Kind: fault.KindReject, Prob: 0.3},
			{Point: fault.PointTimerSample, Kind: fault.KindDrop, Prob: 0.2},
			{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip, Every: 5},
		}},
	}
	for _, bench := range []string{"jess", "db"} {
		for name, plan := range plans {
			t.Run(bench+"/"+name, func(t *testing.T) {
				spec := shortSpec(t, bench)
				opt := DefaultOptions()
				opt.Faults = plan

				replayed, direct := compareBoth(t, spec, opt)
				checkSameRuns(t, replayed, direct)

				popt := opt
				popt.IntraParallelism = 4
				parallel, err := Compare(spec, popt)
				if err != nil {
					t.Fatalf("intra-parallel Compare: %v", err)
				}
				checkSameRuns(t, parallel, direct)
			})
		}
	}
}

// TestRunSuiteIntraParallelismDeterminism extends the suite-level
// determinism pin: suite snapshot JSON must be byte-identical with
// intra-run span parallelism enabled, composed with inter-run
// parallelism.
func TestRunSuiteIntraParallelismDeterminism(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxInstr = 250_000 // bound each run; determinism, not fidelity, is under test
	snap := func(intra int) []byte {
		o := opt
		o.Parallelism = 2
		o.IntraParallelism = intra
		res, err := Collect(o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := snap(0)
	intra := snap(4)
	if !bytes.Equal(serial, intra) {
		t.Errorf("suite snapshots differ with intra-run parallelism:\nserial: %s\nintra:  %s", serial, intra)
	}
}
