package experiment

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"acedo/internal/fault"
	"acedo/internal/stats"
	"acedo/internal/workload"
)

// chaosSpec is the canned workload for single-run chaos tests: small
// enough to keep the suite fast, long enough to promote hotspots and
// cross many sampling intervals.
func chaosSpec(t *testing.T) workload.Spec {
	return shortSpec(t, "jess")
}

// sameSim compares two results for simulation equality: every
// simulated quantity must be bit-identical, while host-side run
// metadata (wall-clock time, record/replay disposition) is ignored —
// it legitimately varies between otherwise identical runs.
func sameSim(a, b *Result) bool {
	ca, cb := *a, *b
	ca.Wall, cb.Wall = 0, 0
	ca.Disposition, cb.Disposition = "", ""
	return reflect.DeepEqual(&ca, &cb)
}

// checkResultSane asserts the invariants every chaos run must keep no
// matter what faults fired: the simulation completed, counters are
// consistent, and no metric is NaN/Inf.
func checkResultSane(t *testing.T, r *Result) {
	t.Helper()
	if r.Instr == 0 || r.Cycles == 0 {
		t.Fatalf("empty run: instr=%d cycles=%d", r.Instr, r.Cycles)
	}
	for name, v := range map[string]float64{
		"IPC": r.IPC, "L1DEnergyNJ": r.L1DEnergyNJ, "L2EnergyNJ": r.L2EnergyNJ,
	} {
		if !stats.Finite(v) || v < 0 {
			t.Errorf("%s = %v, want finite and non-negative", name, v)
		}
	}
}

// TestChaosEmptyPlanIsIdentical: arming an empty plan installs the
// injector plumbing (gates, stall checks, sample checks) but fires
// nothing — the run must be bit-identical to one with no plan at all.
func TestChaosEmptyPlanIsIdentical(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = &fault.Plan{Seed: 42}
	armed, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSim(clean, armed) {
		t.Errorf("empty plan changed the run:\nclean = %+v\narmed = %+v", clean, armed)
	}
}

// TestChaosDeadlineUnexceededIsIdentical: the deadline watchdog chunks
// the engine's instruction budget, which must not perturb the
// simulation when the deadline is generous.
func TestChaosDeadlineUnexceededIsIdentical(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Deadline = time.Hour
	chunked, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSim(clean, chunked) {
		t.Errorf("deadline chunking changed the run:\nclean = %+v\nchunked = %+v", clean, chunked)
	}
}

// TestChaosCancelUnfiredIsIdentical: arming a cancellation channel
// that never fires chunks the engine's instruction budget, which must
// not perturb the simulation.
func TestChaosCancelUnfiredIsIdentical(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Cancel = make(chan struct{})
	chunked, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSim(clean, chunked) {
		t.Errorf("cancel chunking changed the run:\nclean = %+v\nchunked = %+v", clean, chunked)
	}
}

// TestChaosCanceled: a fired cancellation must surface as a *RunError
// wrapping ErrCanceled carrying the run identity, not a hang or a
// partial result.
func TestChaosCanceled(t *testing.T) {
	spec, ok := workload.ByName("jess")
	if !ok {
		t.Fatal("no jess benchmark")
	}
	opt := DefaultOptions()
	cancel := make(chan struct{})
	close(cancel) // already canceled: the first chunk boundary aborts
	opt.Cancel = cancel
	res, err := Run(spec, SchemeHotspot, opt)
	if res != nil {
		t.Errorf("canceled run returned a result: %+v", res)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Benchmark != "jess" || re.Scheme != SchemeHotspot {
		t.Errorf("err = %#v, want a *RunError carrying the run identity", err)
	}
	if IsTransient(err) {
		t.Error("cancellation errors are not transient")
	}
}

// TestChaosDeadlineExceeded: an impossible deadline must surface as a
// *RunError wrapping ErrDeadline, not a hang or a panic.
func TestChaosDeadlineExceeded(t *testing.T) {
	spec, ok := workload.ByName("jess")
	if !ok {
		t.Fatal("no jess benchmark")
	}
	opt := DefaultOptions()
	opt.Deadline = time.Nanosecond
	_, err := Run(spec, SchemeHotspot, opt)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Benchmark != "jess" || re.Scheme != SchemeHotspot {
		t.Errorf("err = %#v, want a *RunError carrying the run identity", err)
	}
	if IsTransient(err) {
		t.Error("deadline errors are not transient")
	}
}

// TestChaosRejectedRequests: with every CU reconfiguration request
// rejected, the tuner can never change the hardware — zero
// reconfigurations — yet the run must complete with sane metrics.
func TestChaosRejectedRequests(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Breakdown.Reconfigs == 0 {
		t.Fatal("workload too short: clean run performs no reconfigurations")
	}
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointUnitRequest, Kind: fault.KindReject},
	}}
	rejected, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, rejected)
	if rejected.Breakdown.Reconfigs != 0 {
		t.Errorf("reconfigs = %d under reject-all, want 0", rejected.Breakdown.Reconfigs)
	}
}

// TestChaosDeferredRequests: deferral holds each request back one
// Request call; the run completes and the hardware still adapts.
func TestChaosDeferredRequests(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointUnitRequest, Kind: fault.KindDefer, Every: 2},
	}}
	res, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, res)
	if res.Breakdown.Reconfigs == 0 {
		t.Error("deferral must delay requests, not suppress all reconfiguration")
	}
}

// TestChaosResizeStalls: injected drain stalls charge extra cycles to
// every accepted resize; instructions are untouched, cycles rise.
func TestChaosResizeStalls(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Breakdown.Reconfigs == 0 {
		t.Fatal("workload too short: no resizes to stall")
	}
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointResize, Kind: fault.KindStall, StallCycles: 5000},
	}}
	stalled, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, stalled)
	if stalled.Cycles <= clean.Cycles {
		t.Errorf("stalled cycles = %d, want > clean %d", stalled.Cycles, clean.Cycles)
	}
}

// TestChaosDroppedSamples: with every profiler timer sample dropped,
// no method can accumulate samples, so no hotspot is ever promoted —
// the framework degrades to the unadapted baseline and the run still
// completes.
func TestChaosDroppedSamples(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	if clean.AOS.Promotions == 0 {
		t.Fatal("workload too short: clean run promotes no hotspots")
	}
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointTimerSample, Kind: fault.KindDrop},
	}}
	dropped, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, dropped)
	if dropped.AOS.Promotions != 0 {
		t.Errorf("promotions = %d with all samples dropped, want 0", dropped.AOS.Promotions)
	}
}

// TestChaosDuplicatedSamples: doubling every sample inflates the
// profiler's counts; promotions can only come earlier, never be lost,
// and the run completes with sane metrics.
func TestChaosDuplicatedSamples(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointTimerSample, Kind: fault.KindDuplicate},
	}}
	doubled, err := Run(spec, SchemeHotspot, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, doubled)
	if doubled.AOS.Promotions < clean.AOS.Promotions {
		t.Errorf("promotions = %d with duplicated samples, want ≥ clean %d",
			doubled.AOS.Promotions, clean.AOS.Promotions)
	}
}

// TestChaosBBVCorruption: flipping accumulator bits at every interval
// boundary corrupts signatures; the BBV scheme must survive with sane
// metrics and an unchanged interval count (corruption perturbs
// classification, not the timer).
func TestChaosBBVCorruption(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	clean, err := Run(spec, SchemeBBV, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = &fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip},
	}}
	corrupt, err := Run(spec, SchemeBBV, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkResultSane(t, corrupt)
	if corrupt.BBV == nil || clean.BBV == nil {
		t.Fatal("missing BBV reports")
	}
	if corrupt.BBV.Intervals != clean.BBV.Intervals {
		t.Errorf("intervals = %d under corruption, want %d", corrupt.BBV.Intervals, clean.BBV.Intervals)
	}
}

// TestChaosInjectionDeterministic: the same plan, benchmark, and
// scheme must produce bit-identical results across runs — the
// property every other chaos assertion relies on.
func TestChaosInjectionDeterministic(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	opt.Faults = &fault.Plan{Seed: 99, Rules: []fault.Rule{
		{Point: fault.PointUnitRequest, Kind: fault.KindReject, Prob: 0.5},
		{Point: fault.PointTimerSample, Kind: fault.KindDrop, Prob: 0.25},
		{Point: fault.PointBBVSignature, Kind: fault.KindBitFlip, Every: 3},
	}}
	a, err := Run(spec, SchemeBBV, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, SchemeBBV, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSim(a, b) {
		t.Error("same plan produced different results")
	}
}

// TestChaosInjectedPanicIsolated: a panic injected into one run is
// recovered into a *RunError with the run identity and a stack trace.
func TestChaosInjectedPanicIsolated(t *testing.T) {
	spec := chaosSpec(t)
	opt := DefaultOptions()
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointRun, Kind: fault.KindPanic},
	}}
	res, err := Run(spec, SchemeHotspot, opt)
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %#v, want *RunError", err)
	}
	if re.Benchmark != spec.Name || re.Scheme != SchemeHotspot || re.Stack == "" {
		t.Errorf("RunError = %+v, want benchmark/scheme/stack populated", re)
	}
	var ip fault.InjectedPanic
	if !errors.As(err, &ip) {
		t.Error("cause must unwrap to the InjectedPanic value")
	}
}

// TestChaosSuitePartialResults is the acceptance scenario: one
// benchmark panics persistently, another fails transiently. The suite
// must return every other comparison, retry the transient one to
// success, and report the persistent failure in the joined error.
func TestChaosSuitePartialResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run")
	}
	opt := OptionsAtScale(40) // small workloads: the suite is 21 runs
	opt.Faults = &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointRun, Kind: fault.KindPanic, Bench: "javac", Scheme: "hotspot"},
		{Point: fault.PointRun, Kind: fault.KindPanic, Bench: "jess", Scheme: "bbv", Transient: true},
	}}
	cs, err := RunSuite(opt)
	if err == nil {
		t.Fatal("suite must report the persistent failure")
	}
	var re *RunError
	if !errors.As(err, &re) || re.Benchmark != "javac" {
		t.Errorf("joined error = %v, want javac's RunError", err)
	}
	specs := workload.Suite()
	if len(cs) != len(specs) {
		t.Fatalf("comparisons = %d, want %d slots", len(cs), len(specs))
	}
	for i, spec := range specs {
		switch spec.Name {
		case "javac":
			if cs[i] != nil {
				t.Error("javac failed persistently; its comparison must be nil")
			}
		default:
			// jess's transient fault must have been retried to
			// success; everything else was never faulted.
			if cs[i] == nil {
				t.Errorf("%s comparison missing; isolation failed", spec.Name)
			}
		}
	}
}
