package workload

// The seven SPECjvm98 stand-ins. Each Spec is engineered to match the
// published hotspot demography and phase character of its namesake at
// the default 1/10 scale (DESIGN.md §4): leaf methods with 5–15 K
// instructions per invocation are the L1D-class hotspots, phase
// methods (≥50 K instructions) are the L2-class hotspots, and
// transition methods provide the BBV-visible stable or transitional
// filler the originals exhibit in Figure 1.
//
// Structural rules, derived during calibration (EXPERIMENTS.md):
//
//   - Band rule: the cache-resident leaves of one phase share an L1D
//     footprint band, and their arrays together fill roughly half of
//     the band's target size, so every leaf of the phase converges to
//     the same L1D choice and reconfigurations happen at phase/step
//     boundaries. Cross-phase band diversity is what the framework
//     exploits.
//   - Indifferent leaves (pure compute, streaming chunks, sparse
//     probes into ≥128 KB structures) are sized below the L1D class
//     (<5 K instructions) so they are JIT-promoted but unmanaged and
//     never fight the band.
//   - Resident-region rule: a benchmark has at most one long-lived
//     probe structure, sized ≈50% of the L2 size it should pin, and
//     probed once per phase invocation (OnceRuns), not per rotation —
//     keeping band-leaf measurements clean, as at the paper's scale.
//   - Rotation rule: one rotation of a phase's sub-phase runs is
//     25–50 K instructions — above the L1D reconfiguration interval,
//     below the BBV sampling interval — and the once-section stays
//     under ~10% of the invocation so consecutive intervals of a phase
//     carry the same signature.
//
// Per-benchmark shape levers:
//
//   - compress: two bands (32 K scan vs 8 K pack/flush), long regular
//     phases, a 128 KB dictionary history pinning the L2 at 256 KB.
//   - db: query/join bands are 8 K while the misses concentrate in a
//     sparse resident 256 KB heap probe — "few procedures cause >95%
//     of misses" — making db the paper's best hotspot L1D case.
//   - jack: many small uniform hotspots across 8/16/32 K bands; long
//     constant transition sections that BBV tunes as stable phases
//     but that fall below the framework's class sizes, so BBV covers
//     more execution and wins L2.
//   - javac: six short, rarely-repeating phase mixtures — the most
//     transitional benchmark of Figure 1 — with the lowest L2-class
//     coverage for the framework (as in the paper's Table 6).
//   - jess: probe-heavy matching with a resident 128 KB working
//     memory.
//   - mpeg: extremely regular streaming decode; the input phase is
//     sweep-dominated so its signature stays uniform.
//   - mtrt: a large resident scene plus two sub-L2-class "thread
//     slices" that keep ~35% of execution outside L2 hotspots; BBV
//     coverage is near-total and BBV wins L2, as in the paper.

// Suite returns the seven benchmark specs in the paper's order.
func Suite() []Spec {
	return []Spec{
		Compress(),
		DB(),
		Jack(),
		Javac(),
		Jess(),
		Mpeg(),
		Mtrt(),
	}
}

// ByName returns the spec with the given name, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Words per kilobyte of data (8-byte words).
const wordsPerKB = 128

// Compress models 201_compress: an LZW compressor streaming input
// through a dictionary and writing compressed output.
func Compress() Spec {
	return Spec{
		Name: "compress",
		Desc: "A popular LZW compression program.",
		Seed: 101,
		Leaves: []LeafSpec{
			// 32 K band (scan): 16 KB + 16 KB arrays.
			{Name: "input", Kind: SeqRead, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1, Pad: 1},
			{Name: "dict", Kind: Probe, FootprintWords: 8 * wordsPerKB, Iters: 900},
			// 8 K band (pack/flush).
			{Name: "output", Kind: SeqWrite, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			// Indifferent (unmanaged).
			{Name: "huff", Kind: Compute, Iters: 600, Pad: 2},
			{Name: "history", Kind: Probe, FootprintWords: 128 * wordsPerKB, Iters: 320, Pad: 2},
		},
		Phases: []PhaseSpec{
			{Name: "scan", OnceRuns: []LeafRun{{4, 2}}, Runs: []LeafRun{{0, 2}, {1, 2}}, Reps: 5, ChunkLeaf: -1},
			{Name: "pack", OnceRuns: []LeafRun{{4, 1}}, Runs: []LeafRun{{2, 2}, {3, 1}}, Reps: 9, ChunkLeaf: -1},
			{Name: "flush", OnceRuns: []LeafRun{{4, 1}}, Runs: []LeafRun{{2, 1}, {3, 3}}, Reps: 9, ChunkLeaf: -1},
		},
		TransPool:           12,
		TransFootprintWords: 256,
		Script: []Step{
			{Phase: 0, Reps: 4, TransMix: []int{0, 1, 2, 3}, TransReps: 18},
			{Phase: 1, Reps: 3},
			{Phase: 2, Reps: 3, TransMix: []int{0, 1, 2, 3}, TransReps: 18},
		},
		MainLoops: 30,
	}
}

// DB models 209_db: data management whose misses concentrate in a
// sparse resident heap probe.
func DB() Spec {
	return Spec{
		Name: "db",
		Desc: "Data management benchmarking software written by IBM.",
		Seed: 202,
		Leaves: []LeafSpec{
			// 8 K bands (query/join).
			{Name: "key", Kind: SeqRead, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4, Pad: 1},
			{Name: "fmt", Kind: SeqRead, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			// 16 K band (sort): 8 KB + 8 KB arrays.
			{Name: "shuffle", Kind: SeqWrite, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			{Name: "merge", Kind: SeqRead, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2, Pad: 1},
			// Indifferent.
			{Name: "cmp", Kind: Compute, Iters: 800, Pad: 1},
			{Name: "heap", Kind: Probe, FootprintWords: 256 * wordsPerKB, Iters: 320, Pad: 2},
		},
		Phases: []PhaseSpec{
			{Name: "query", OnceRuns: []LeafRun{{5, 2}}, Runs: []LeafRun{{0, 2}, {4, 1}, {1, 2}}, Reps: 7, ChunkLeaf: -1},
			{Name: "join", OnceRuns: []LeafRun{{5, 3}}, Runs: []LeafRun{{0, 3}, {4, 1}}, Reps: 8, ChunkLeaf: -1},
			{Name: "sort", OnceRuns: []LeafRun{{5, 1}}, Runs: []LeafRun{{2, 2}, {3, 2}, {4, 1}}, Reps: 7, ChunkLeaf: -1},
		},
		TransPool:           12,
		TransFootprintWords: 256,
		Script: []Step{
			{Phase: 0, Reps: 4, TransMix: []int{0, 1, 2}, TransReps: 12},
			{Phase: 1, Reps: 3},
			{Phase: 2, Reps: 3, TransMix: []int{3, 4, 5}, TransReps: 12},
		},
		MainLoops: 28,
	}
}

// Jack models 228_jack: a parser generator with many small, uniformly
// hot procedures and an extremely repetitive outer structure.
func Jack() Spec {
	return Spec{
		Name: "jack",
		Desc: "A real parser-generator from Sun Microsystems.",
		Seed: 303,
		Leaves: []LeafSpec{
			// lex band: 8 K (2+2+2 KB).
			{Name: "tok0", Kind: SeqRead, FootprintWords: 1 * wordsPerKB, Stride: 1, Repeats: 8},
			{Name: "tok1", Kind: SeqRead, FootprintWords: 1 * wordsPerKB, Stride: 1, Repeats: 8, Pad: 1},
			{Name: "nfa0", Kind: Probe, FootprintWords: 2 * wordsPerKB, Iters: 600},
			// parse band: 32 K (8+8+8 KB).
			{Name: "tbl0", Kind: SeqRead, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1},
			{Name: "tbl1", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 650},
			{Name: "nfa1", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 600, Pad: 1},
			// gen band: 16 K (4+8+2 KB).
			{Name: "emit0", Kind: SeqWrite, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			{Name: "emit1", Kind: SeqWrite, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			{Name: "lit", Kind: SeqRead, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			// Indifferent.
			{Name: "sem0", Kind: Compute, Iters: 550, Pad: 2},
			{Name: "sem1", Kind: Compute, Iters: 700, Pad: 1},
			{Name: "fold", Kind: Compute, Iters: 500, Pad: 3},
		},
		Phases: []PhaseSpec{
			{Name: "lex", Runs: []LeafRun{{0, 2}, {1, 2}, {2, 1}, {9, 1}}, Reps: 7, ChunkLeaf: -1},
			{Name: "parse", Runs: []LeafRun{{3, 2}, {4, 1}, {5, 1}, {10, 1}}, Reps: 8, ChunkLeaf: -1},
			{Name: "gen", Runs: []LeafRun{{6, 2}, {7, 2}, {8, 1}, {11, 1}}, Reps: 7, ChunkLeaf: -1},
		},
		TransPool:           10,
		TransFootprintWords: 256,
		Script: []Step{
			{Phase: 0, Reps: 4, TransMix: []int{0, 1, 2, 3}, TransReps: 55},
			{Phase: 1, Reps: 4, TransMix: []int{0, 1, 2, 3}, TransReps: 55},
			{Phase: 2, Reps: 4, TransMix: []int{0, 1, 2, 3}, TransReps: 55},
		},
		MainLoops: 18,
	}
}

// Javac models 213_javac: the JDK compiler, whose pass structure
// produces many short-lived, rarely-repeating phase mixtures.
func Javac() Spec {
	return Spec{
		Name: "javac",
		Desc: "The JDK 1.0.2 Java compiler.",
		Seed: 404,
		Leaves: []LeafSpec{
			// parse band: 8 K (2+4 KB).
			{Name: "scan", Kind: SeqRead, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			{Name: "ast0", Kind: Probe, FootprintWords: 2 * wordsPerKB, Iters: 600},
			// enter band: 32 K (8+8 KB).
			{Name: "sym", Kind: Probe, FootprintWords: 8 * wordsPerKB, Iters: 650},
			{Name: "ast1", Kind: SeqRead, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1},
			// write band: 16 K (4+8 KB).
			{Name: "emit", Kind: SeqWrite, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			{Name: "cpool", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 600},
			// read band: 32 K (16+2 KB).
			{Name: "zip", Kind: SeqRead, FootprintWords: 12 * wordsPerKB, Stride: 2, Repeats: 2},
			// Indifferent.
			{Name: "type", Kind: Compute, Iters: 600, Pad: 2},
			{Name: "flow", Kind: Compute, Iters: 500, Pad: 1},
		},
		Phases: []PhaseSpec{
			{Name: "parse", Runs: []LeafRun{{0, 2}, {1, 2}, {7, 1}}, Reps: 5, ChunkLeaf: -1},
			{Name: "enter", Runs: []LeafRun{{2, 2}, {3, 2}, {8, 1}}, Reps: 5, ChunkLeaf: -1},
			{Name: "attr", Runs: []LeafRun{{2, 1}, {1, 2}, {7, 1}, {8, 1}}, Reps: 6, ChunkLeaf: -1},
			{Name: "lower", Runs: []LeafRun{{1, 1}, {4, 2}, {8, 1}}, Reps: 6, ChunkLeaf: -1},
			{Name: "write", Runs: []LeafRun{{4, 2}, {5, 2}, {7, 1}}, Reps: 5, ChunkLeaf: -1},
			{Name: "read", Runs: []LeafRun{{6, 2}, {0, 2}, {8, 1}}, Reps: 3, ChunkLeaf: -1},
		},
		TransPool:           24,
		TransFootprintWords: 512,
		Script: []Step{
			{Phase: 0, Reps: 1, TransMix: []int{0, 5, 10}, TransReps: 10},
			{Phase: 1, Reps: 1, TransMix: []int{1, 6, 11, 16}, TransReps: 10},
			{Phase: 2, Reps: 3, TransMix: []int{2, 7, 12}, TransReps: 10},
			{Phase: 3, Reps: 1, TransMix: []int{3, 8, 13, 18}, TransReps: 10},
			{Phase: 4, Reps: 3, TransMix: []int{4, 9, 14}, TransReps: 10},
			{Phase: 5, Reps: 2, TransMix: []int{15, 19, 20, 21}, TransReps: 10},
			{Phase: 2, Reps: 1, TransMix: []int{17, 22, 23}, TransReps: 10},
			{Phase: 4, Reps: 1, TransMix: []int{5, 11, 21}, TransReps: 10},
		},
		MainLoops: 38,
	}
}

// Jess models 202_jess: the CLIPS rule engine — probe-heavy working
// memory matching with a resident working memory.
func Jess() Spec {
	return Spec{
		Name: "jess",
		Desc: "A Java version of NASA's CLIPS rule-based expert system.",
		Seed: 505,
		Leaves: []LeafSpec{
			// match band: 16 K (4+8 KB).
			{Name: "alpha", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 650},
			{Name: "beta", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 600, Pad: 1},
			// act band: 8 K (2+4 KB).
			{Name: "agenda", Kind: SeqRead, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			{Name: "assert", Kind: SeqWrite, FootprintWords: 2 * wordsPerKB, Stride: 1, Repeats: 4},
			// rete band: 32 K (8+8 KB).
			{Name: "net", Kind: Probe, FootprintWords: 8 * wordsPerKB, Iters: 650},
			{Name: "join", Kind: SeqRead, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1},
			// Indifferent.
			{Name: "fire", Kind: Compute, Iters: 650, Pad: 2},
			{Name: "wm", Kind: Probe, FootprintWords: 128 * wordsPerKB, Iters: 320, Pad: 2},
		},
		Phases: []PhaseSpec{
			{Name: "match", OnceRuns: []LeafRun{{7, 2}}, Runs: []LeafRun{{0, 2}, {1, 2}, {6, 1}}, Reps: 7, ChunkLeaf: -1},
			{Name: "act", OnceRuns: []LeafRun{{7, 1}}, Runs: []LeafRun{{2, 2}, {3, 2}}, Reps: 8, ChunkLeaf: -1},
			{Name: "rete", OnceRuns: []LeafRun{{7, 2}}, Runs: []LeafRun{{4, 2}, {5, 2}, {6, 1}}, Reps: 7, ChunkLeaf: -1},
		},
		TransPool:           10,
		TransFootprintWords: 256,
		Script: []Step{
			{Phase: 0, Reps: 4, TransMix: []int{0, 1, 2}, TransReps: 14},
			{Phase: 1, Reps: 4},
			{Phase: 2, Reps: 3, TransMix: []int{3, 4, 5}, TransReps: 14},
		},
		MainLoops: 27,
	}
}

// Mpeg models 222_mpegaudio: streaming MP3 decode — sequential
// buffers plus a compute-heavy filterbank, extremely regular.
func Mpeg() Spec {
	return Spec{
		Name: "mpeg",
		Desc: "The core algorithm for software that decodes an MPEG-3 audio stream.",
		Seed: 606,
		Leaves: []LeafSpec{
			// decode band: 16 K (8+4 KB).
			{Name: "huffman", Kind: SeqRead, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2, Pad: 1},
			{Name: "dequant", Kind: SeqRead, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2, Pad: 2},
			// filter band: 32 K (8+8 KB).
			{Name: "synth", Kind: SeqWrite, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1, Pad: 1},
			{Name: "poly", Kind: SeqRead, FootprintWords: 8 * wordsPerKB, Stride: 1, Repeats: 1},
			// Indifferent.
			{Name: "imdct", Kind: Compute, Iters: 550, Pad: 3},
			{Name: "stream", Kind: SeqRead, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 1, ArgBase: true},
		},
		Phases: []PhaseSpec{
			{Name: "decode", Runs: []LeafRun{{0, 2}, {1, 2}, {4, 2}}, Reps: 6, ChunkLeaf: -1},
			{Name: "filter", Runs: []LeafRun{{2, 2}, {3, 2}, {4, 1}}, Reps: 8, ChunkLeaf: -1},
			{Name: "input", Runs: []LeafRun{{0, 2}}, Reps: 1, ChunkLeaf: 5, RegionWords: 64 * wordsPerKB},
		},
		TransPool:           6,
		TransFootprintWords: 128,
		Script: []Step{
			{Phase: 2, Reps: 6},
			{Phase: 0, Reps: 4},
			{Phase: 1, Reps: 4, TransMix: []int{0, 1}, TransReps: 10},
		},
		MainLoops: 28,
	}
}

// Mtrt models 227_mtrt: a dual-threaded ray tracer probing a large
// resident scene. The two "slice" phases sit just below the L2 size
// class, keeping part of the execution outside L2 hotspots so BBV
// wins L2, as in the paper.
func Mtrt() Spec {
	return Spec{
		Name: "mtrt",
		Desc: "A dual-threaded program that ray traces an image file.",
		Seed: 707,
		Leaves: []LeafSpec{
			// slice/shadepass band: 16 K (4+4+4 KB).
			{Name: "shade", Kind: Probe, FootprintWords: 4 * wordsPerKB, Iters: 650},
			{Name: "frame", Kind: SeqWrite, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			{Name: "tex", Kind: SeqRead, FootprintWords: 4 * wordsPerKB, Stride: 1, Repeats: 2},
			// trace band: 32 K (8+8 KB).
			{Name: "isect", Kind: Probe, FootprintWords: 8 * wordsPerKB, Iters: 650, Pad: 1},
			{Name: "bvh", Kind: Probe, FootprintWords: 8 * wordsPerKB, Iters: 600},
			// Indifferent.
			{Name: "ray", Kind: Compute, Iters: 550, Pad: 2},
			{Name: "scene", Kind: Probe, FootprintWords: 256 * wordsPerKB, Iters: 320, Pad: 2},
		},
		Phases: []PhaseSpec{
			// The two thread slices: just under the L2 class.
			{Name: "slice0", Runs: []LeafRun{{5, 2}, {0, 2}, {1, 2}}, Reps: 1, ChunkLeaf: -1},
			{Name: "slice1", Runs: []LeafRun{{5, 2}, {0, 2}, {2, 2}}, Reps: 1, ChunkLeaf: -1},
			{Name: "trace", OnceRuns: []LeafRun{{6, 3}}, Runs: []LeafRun{{3, 2}, {4, 2}, {5, 1}}, Reps: 7, ChunkLeaf: -1},
			{Name: "shadepass", OnceRuns: []LeafRun{{6, 2}}, Runs: []LeafRun{{0, 2}, {2, 2}, {1, 1}, {5, 1}}, Reps: 6, ChunkLeaf: -1},
		},
		TransPool:           6,
		TransFootprintWords: 128,
		Script: []Step{
			{Phase: 0, Reps: 14},
			{Phase: 1, Reps: 14},
			{Phase: 2, Reps: 3},
			{Phase: 3, Reps: 4, TransMix: []int{0, 1}, TransReps: 8},
		},
		MainLoops: 34,
	}
}
