package workload

import (
	"errors"
	"testing"

	"acedo/internal/machine"
	"acedo/internal/vm"
)

func TestSuiteHasSevenBenchmarks(t *testing.T) {
	suite := Suite()
	if len(suite) != 7 {
		t.Fatalf("suite size = %d, want 7", len(suite))
	}
	want := []string{"compress", "db", "jack", "javac", "jess", "mpeg", "mtrt"}
	for i, s := range suite {
		if s.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, s.Name, want[i])
		}
		if s.Desc == "" {
			t.Errorf("%s: missing description", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("db"); !ok || s.Name != "db" {
		t.Error("ByName(db) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestAllSpecsBuild(t *testing.T) {
	for _, s := range Suite() {
		if _, err := s.Build(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s, _ := ByName("compress")
	p1 := s.MustBuild()
	p2 := s.MustBuild()
	if p1.TotalStaticInstrs != p2.TotalStaticInstrs || p1.NumMethods() != p2.NumMethods() {
		t.Error("builds differ structurally")
	}
	if p1.Methods[3].Disassemble() != p2.Methods[3].Disassemble() {
		t.Error("builds differ in code")
	}
}

func TestWithMainLoops(t *testing.T) {
	s, _ := ByName("jess")
	if s.WithMainLoops(2).MainLoops != 2 {
		t.Error("WithMainLoops(2) wrong")
	}
	if s.WithMainLoops(0).MainLoops != 1 {
		t.Error("WithMainLoops clamps at 1")
	}
	if s.MainLoops == 2 {
		t.Error("WithMainLoops must not mutate the receiver")
	}
}

func TestValidationRejectsBadSpecs(t *testing.T) {
	base := Compress()
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no leaves", func(s *Spec) { s.Leaves = nil }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"no script", func(s *Spec) { s.Script = nil }},
		{"zero loops", func(s *Spec) { s.MainLoops = 0 }},
		{"bad leaf index", func(s *Spec) { s.Phases[0].Runs[0].Leaf = 99 }},
		{"zero run count", func(s *Spec) { s.Phases[0].Runs[0].Count = 0 }},
		{"bad once leaf", func(s *Spec) { s.Phases[0].OnceRuns[0].Leaf = -1 }},
		{"bad script phase", func(s *Spec) { s.Script[0].Phase = 99 }},
		{"bad trans index", func(s *Spec) { s.Script[0].TransMix[0] = 99 }},
		{"chunk not argbase", func(s *Spec) { s.Phases[0].ChunkLeaf = 0; s.Phases[0].RegionWords = 4096 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Compress() // fresh copy: mutations must not leak
			c.mutate(&s)
			if _, err := s.Build(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := base.Build(); err != nil {
		t.Fatalf("baseline spec must remain valid: %v", err)
	}
}

// TestAllBenchmarksExecute runs a slice of every benchmark and checks
// that execution is fault-free and that the DO system finds hotspots.
func TestAllBenchmarksExecute(t *testing.T) {
	for _, s := range Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog := s.WithMainLoops(2).MustBuild()
			mach, err := machine.New(machine.PaperConfig(10))
			if err != nil {
				t.Fatal(err)
			}
			vp := vm.DefaultParams()
			vp.HotThreshold = 3
			vp.MinSamples = 1
			aos := vm.NewAOS(vp, mach, prog)
			eng, err := vm.NewEngine(prog, mach, aos)
			if err != nil {
				t.Fatal(err)
			}
			err = eng.Run(4_000_000)
			if err != nil && !errors.Is(err, vm.ErrBudget) {
				t.Fatalf("execution fault: %v", err)
			}
			if aos.Promotions() == 0 {
				t.Error("no hotspots detected in 4M instructions")
			}
			// Hotspot-dominated execution, as in the paper's
			// Table 4.
			frac := float64(aos.HotspotInstr()) / float64(mach.Instructions())
			if frac < 0.5 {
				t.Errorf("hotspot instruction share = %.2f, want ≥0.5", frac)
			}
		})
	}
}

// TestBenchmarksRunToCompletion executes two full (shortened) programs
// end to end.
func TestBenchmarksRunToCompletion(t *testing.T) {
	for _, name := range []string{"compress", "mtrt"} {
		s, _ := ByName(name)
		prog := s.WithMainLoops(1).MustBuild()
		mach, err := machine.New(machine.PaperConfig(10))
		if err != nil {
			t.Fatal(err)
		}
		aos := vm.NewAOS(vm.DefaultParams(), mach, prog)
		eng, err := vm.NewEngine(prog, mach, aos)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eng.Halted() {
			t.Errorf("%s: did not halt", name)
		}
	}
}

func TestLeafKindString(t *testing.T) {
	for _, k := range []LeafKind{SeqRead, SeqWrite, Probe, Compute} {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has no name", k)
		}
	}
	if LeafKind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestProbeLeavesGetSeedCells(t *testing.T) {
	// A spec with one probe leaf must allocate footprint+1 words.
	s := Spec{
		Name: "probe",
		Seed: 1,
		Leaves: []LeafSpec{
			{Name: "p", Kind: Probe, FootprintWords: 1024, Iters: 600},
		},
		Phases: []PhaseSpec{
			{Name: "ph", Runs: []LeafRun{{0, 2}}, Reps: 4, ChunkLeaf: -1},
		},
		TransPool:           1,
		TransFootprintWords: 64,
		Script:              []Step{{Phase: 0, Reps: 2}},
		MainLoops:           1,
	}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.MemWords <= 1024 {
		t.Errorf("MemWords = %d, want > footprint (seed cell + slack)", p.MemWords)
	}
}
