// Package workload synthesizes the seven SPECjvm98 stand-in programs
// the evaluation runs (DESIGN.md §1: the suite itself cannot run on
// this VM, so each benchmark is replaced by a generated program whose
// hotspot demography and phase character match the published
// behaviour of the original). The generators are deterministic: the
// same Spec always yields the same program.
package workload

import (
	"fmt"
	"math/rand"

	"acedo/internal/program"
)

// Register conventions used by generated code:
//
//	r0..r3   arguments (r0 carries the base address for chunk leaves)
//	r4..r14  leaf-local scratch
//	r15      call return-value sink
//	r16..r27 loop counters in phase/main methods
const (
	regArg0  = 0
	regRet   = 15
	regLoop0 = 16
)

// LeafKind selects a leaf method's memory behaviour.
type LeafKind int

const (
	// SeqRead walks an array with a fixed stride, reading.
	SeqRead LeafKind = iota
	// SeqWrite walks an array writing (dirty lines: resize cost).
	SeqWrite
	// Probe performs pseudo-random reads within a power-of-two
	// footprint (an LCG computed in registers).
	Probe
	// Compute is a pure ALU loop (no data memory).
	Compute
)

// String returns the kind name.
func (k LeafKind) String() string {
	switch k {
	case SeqRead:
		return "seqread"
	case SeqWrite:
		return "seqwrite"
	case Probe:
		return "probe"
	case Compute:
		return "compute"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// LeafSpec describes one leaf method — the programs' L1D-class
// hotspots (or, with ArgBase, a chunk walker driven across a larger
// region by its enclosing phase).
type LeafSpec struct {
	Name string
	Kind LeafKind
	// FootprintWords is the words touched per invocation (power of
	// two for Probe). Ignored for Compute.
	FootprintWords int
	// Stride is the walk stride in words (SeqRead/SeqWrite).
	Stride int
	// Repeats walks the footprint this many times per invocation,
	// scaling the leaf's dynamic size without growing its footprint.
	Repeats int
	// Iters is the loop count for Compute leaves. For Probe leaves
	// it overrides the probe count (default Repeats×Footprint/8),
	// letting a leaf probe sparsely into a large footprint without
	// growing its dynamic size.
	Iters int
	// Pad inserts this many ALU instructions per loop iteration,
	// thinning memory intensity.
	Pad int
	// ArgBase makes the leaf address its array at r0 instead of a
	// private base; the phase sweeps r0 across a region.
	ArgBase bool
}

// LeafRun is a sub-phase: Count consecutive invocations of one leaf.
// Consecutive same-leaf invocations let the L1D adapt at a coarser
// granularity than single calls, matching the paper's reconfiguration-
// interval spacing (and keeping resize state-migration costs small).
type LeafRun struct {
	Leaf  int // index into the Spec's Leaves
	Count int
}

// PhaseSpec describes one phase method — the programs' L2-class
// hotspots. A phase invocation first executes OnceRuns and the
// optional chunk sweep (the heavyweight, cache-polluting work:
// resident probes and streaming regions), then loops Reps times over
// its sub-phase Runs. Keeping the polluters out of the rep loop keeps
// the band leaves' measurements clean, as at the paper's scale where
// pollution amortizes over 10× longer invocations.
type PhaseSpec struct {
	Name string
	// OnceRuns execute once per phase invocation, before the loop.
	OnceRuns []LeafRun
	// Runs execute every rep.
	Runs []LeafRun
	Reps int
	// ChunkLeaf, if ≥0, names an ArgBase leaf swept once per
	// invocation across RegionWords in steps of the leaf's
	// FootprintWords.
	ChunkLeaf   int
	RegionWords int
}

// Step is one element of the benchmark's top-level script: invoke a
// phase some consecutive times, then run a transition mixture.
type Step struct {
	Phase int // index into Phases, or -1 for a transition-only step
	Reps  int // consecutive phase invocations
	// TransMix lists transition-method indices to run after the
	// phase, TransReps times each in round-robin.
	TransMix  []int
	TransReps int
}

// Spec is a complete benchmark description.
type Spec struct {
	Name string
	Desc string
	// Seed drives the generation-time PRNG (transition pool
	// shapes); execution is deterministic regardless.
	Seed int64

	Leaves []LeafSpec
	Phases []PhaseSpec

	// TransPool is the number of distinct transition methods to
	// generate; TransFootprintWords bounds their (small) arrays.
	TransPool           int
	TransFootprintWords int

	Script    []Step
	MainLoops int
}

// gen carries generation state.
type gen struct {
	b    *program.Builder
	rng  *rand.Rand
	heap int // bump allocator, in words

	leafIDs        []program.MethodID
	leafFootprints []int
	phaseIDs       []program.MethodID
	transIDs       []program.MethodID
}

func (g *gen) alloc(words int) int {
	base := g.heap
	g.heap += words
	return base
}

// Build generates the benchmark program.
func (s Spec) Build() (*program.Program, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	g := &gen{
		b:   program.NewBuilder(s.Name),
		rng: rand.New(rand.NewSource(s.Seed)),
	}

	// Method 0 is main so the entry is stable; leaves, phases and
	// transitions follow. Main's body needs their IDs, so declare
	// main first and fill it last.
	main := g.b.NewMethod("main")

	for i, ls := range s.Leaves {
		g.leafIDs = append(g.leafIDs, g.emitLeaf(fmt.Sprintf("leaf_%s", nameOr(ls.Name, i)), ls))
		g.leafFootprints = append(g.leafFootprints, ls.FootprintWords)
	}
	for i, ps := range s.Phases {
		g.phaseIDs = append(g.phaseIDs, g.emitPhase(fmt.Sprintf("phase_%s", nameOr(ps.Name, i)), ps))
	}
	for i := 0; i < s.TransPool; i++ {
		g.transIDs = append(g.transIDs, g.emitTransition(i, s.TransFootprintWords))
	}

	g.emitMain(main, s)

	g.b.SetEntry(main.ID())
	g.b.SetMemWords(g.heap + 64) // small slack for off-by-one strides
	return g.b.Build()
}

// WithMainLoops returns a copy of the spec with the outer loop count
// replaced — tests and benchmarks use it to run shortened variants of
// the suite programs.
func (s Spec) WithMainLoops(n int) Spec {
	if n < 1 {
		n = 1
	}
	s.MainLoops = n
	return s
}

// MustBuild is Build that panics on error.
func (s Spec) MustBuild() *program.Program {
	p, err := s.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func nameOr(n string, i int) string {
	if n != "" {
		return n
	}
	return fmt.Sprintf("%d", i)
}

func (s Spec) validate() error {
	if len(s.Leaves) == 0 || len(s.Phases) == 0 || len(s.Script) == 0 || s.MainLoops <= 0 {
		return fmt.Errorf("workload %s: empty leaves/phases/script or non-positive main loops", s.Name)
	}
	for i, ps := range s.Phases {
		for _, run := range append(append([]LeafRun{}, ps.OnceRuns...), ps.Runs...) {
			if run.Leaf < 0 || run.Leaf >= len(s.Leaves) {
				return fmt.Errorf("workload %s: phase %d references leaf %d", s.Name, i, run.Leaf)
			}
			if run.Count <= 0 {
				return fmt.Errorf("workload %s: phase %d has non-positive run count", s.Name, i)
			}
		}
		if ps.ChunkLeaf >= 0 {
			if ps.ChunkLeaf >= len(s.Leaves) {
				return fmt.Errorf("workload %s: phase %d chunk leaf %d out of range", s.Name, i, ps.ChunkLeaf)
			}
			cl := s.Leaves[ps.ChunkLeaf]
			if !cl.ArgBase {
				return fmt.Errorf("workload %s: phase %d chunk leaf %q is not ArgBase", s.Name, i, cl.Name)
			}
			if ps.RegionWords < cl.FootprintWords {
				return fmt.Errorf("workload %s: phase %d region smaller than chunk footprint", s.Name, i)
			}
		}
	}
	for i, st := range s.Script {
		if st.Phase >= len(s.Phases) {
			return fmt.Errorf("workload %s: step %d phase %d out of range", s.Name, i, st.Phase)
		}
		for _, t := range st.TransMix {
			if t < 0 || t >= s.TransPool {
				return fmt.Errorf("workload %s: step %d transition %d out of range", s.Name, i, t)
			}
		}
	}
	return nil
}

// emitLeaf generates one leaf method.
func (g *gen) emitLeaf(name string, ls LeafSpec) program.MethodID {
	m := g.b.NewMethod(name)
	switch ls.Kind {
	case SeqRead, SeqWrite:
		base := 0
		if !ls.ArgBase {
			base = g.alloc(ls.FootprintWords)
		}
		g.emitSeqWalk(m, ls, base)
	case Probe:
		base := 0
		if !ls.ArgBase {
			base = g.alloc(ls.FootprintWords + 1) // +1 for the seed cell
		}
		g.emitProbe(m, ls, base)
	case Compute:
		g.emitCompute(m, ls)
	}
	return m.ID()
}

// emitSeqWalk emits:
//
//	for r := 0; r < Repeats; r++ {
//	    for i := 0; i < footprint; i += stride { acc += a[i]; pad }
//	}
func (g *gen) emitSeqWalk(m *program.MethodBuilder, ls LeafSpec, base int) {
	const (
		rBase, rIdx, rLimit, rAcc, rAddr, rVal, rCond = 4, 5, 6, 7, 8, 9, 10
		rRep, rRepLim, rRepCond                       = 11, 12, 13
	)
	stride := ls.Stride
	if stride <= 0 {
		stride = 1
	}
	repeats := max(ls.Repeats, 1)

	entry := m.NewBlock()
	if ls.ArgBase {
		entry.AddI(rBase, regArg0, 0)
	} else {
		entry.Const(rBase, int64(base))
	}
	entry.Const(rRep, 0)
	entry.Const(rRepLim, int64(repeats))

	repHead := m.NewBlock()
	repHead.Const(rIdx, 0)
	repHead.Const(rLimit, int64(ls.FootprintWords))

	body := m.NewBlock()
	body.Add(rAddr, rBase, rIdx)
	if ls.Kind == SeqWrite {
		body.AddI(rVal, rAcc, 1)
		body.Store(rVal, rAddr, 0)
	} else {
		body.Load(rVal, rAddr, 0)
		body.Add(rAcc, rAcc, rVal)
	}
	emitPad(body, ls.Pad, rVal)
	body.AddI(rIdx, rIdx, int64(stride))
	body.CmpLt(rCond, rIdx, rLimit)
	body.Br(rCond, body.Index())

	repTail := m.NewBlock()
	repTail.AddI(rRep, rRep, 1)
	repTail.CmpLt(rRepCond, rRep, rRepLim)
	repTail.Br(rRepCond, repHead.Index())

	m.NewBlock().Ret(rAcc)
}

// emitProbe emits an LCG-driven random-read loop over a power-of-two
// footprint. Private (non-ArgBase) probe leaves keep an invocation
// counter in a seed cell just past their array, so successive
// invocations probe different addresses and, over time, the whole
// footprint becomes resident — modelling a long-lived heap structure.
func (g *gen) emitProbe(m *program.MethodBuilder, ls LeafSpec, base int) {
	const (
		rBase, rState, rCnt, rLimit, rIdx, rAddr, rVal, rAcc, rCond, rSeed = 4, 5, 6, 7, 8, 9, 10, 11, 12, 13
	)
	probes := max(ls.Repeats, 1) * max(ls.FootprintWords/8, 1)
	if ls.Iters > 0 {
		probes = ls.Iters
	}

	entry := m.NewBlock()
	if ls.ArgBase {
		entry.AddI(rBase, regArg0, 0)
		entry.AddI(rState, regArg1(), 0) // per-chunk seed for address variety
	} else {
		seedCell := base + ls.FootprintWords // allocated by caller via footprint+1
		entry.Const(rBase, int64(base))
		entry.Const(rSeed, int64(seedCell))
		entry.Load(rState, rSeed, 0)
		entry.AddI(rVal, rState, 1)
		entry.Store(rVal, rSeed, 0)
		entry.MulI(rState, rState, 0x9E3779B9)
	}
	entry.Const(rCnt, 0)
	entry.Const(rLimit, int64(probes))

	body := m.NewBlock()
	body.MulI(rState, rState, 6364136223846793005)
	body.AddI(rState, rState, 1442695040888963407)
	body.ShrI(rIdx, rState, 33)
	body.AndI(rIdx, rIdx, int64(ls.FootprintWords-1))
	body.Add(rAddr, rBase, rIdx)
	body.Load(rVal, rAddr, 0)
	body.Add(rAcc, rAcc, rVal)
	emitPad(body, ls.Pad, rVal)
	body.AddI(rCnt, rCnt, 1)
	body.CmpLt(rCond, rCnt, rLimit)
	body.Br(rCond, body.Index())

	m.NewBlock().Ret(rAcc)
}

func regArg1() uint8 { return 1 }

// emitCompute emits a pure ALU loop.
func (g *gen) emitCompute(m *program.MethodBuilder, ls LeafSpec) {
	const rX, rY, rCnt, rLimit, rCond = 4, 5, 6, 7, 8
	iters := max(ls.Iters, 1)

	entry := m.NewBlock()
	entry.Const(rX, 12345)
	entry.Const(rY, 67890)
	entry.Const(rCnt, 0)
	entry.Const(rLimit, int64(iters))

	body := m.NewBlock()
	body.Mul(rX, rX, rY)
	body.AddI(rX, rX, 7)
	body.Xor(rY, rY, rX)
	emitPad(body, ls.Pad, rY)
	body.AddI(rCnt, rCnt, 1)
	body.CmpLt(rCond, rCnt, rLimit)
	body.Br(rCond, body.Index())

	m.NewBlock().Ret(rX)
}

// emitPad appends n dependent ALU instructions cycling a scratch
// register.
func emitPad(bb *program.BlockBuilder, n int, seed uint8) {
	const rPad = 14
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			bb.AddI(rPad, seed, int64(i+1))
		case 1:
			bb.XorI(rPad, rPad, 0x5555)
		case 2:
			bb.ShrI(rPad, rPad, 1)
		}
	}
}

// emitPhase generates one phase method: Reps × (sub-phase leaf runs +
// optional chunk sweep).
func (g *gen) emitPhase(name string, ps PhaseSpec) program.MethodID {
	m := g.b.NewMethod(name)
	const (
		rRep, rRepLim, rRepCond       = regLoop0, regLoop0 + 1, regLoop0 + 2
		rChunk, rChunkLim, rChunkCond = regLoop0 + 3, regLoop0 + 4, regLoop0 + 5
		rRun, rRunLim, rRunCond       = regLoop0 + 6, regLoop0 + 7, regLoop0 + 8
	)
	reps := max(ps.Reps, 1)

	var regionBase, chunkWords int
	if ps.ChunkLeaf >= 0 {
		regionBase = g.alloc(ps.RegionWords)
		chunkWords = g.leafFootprint(ps.ChunkLeaf)
	}

	emitRun := func(run LeafRun) {
		setup := m.NewBlock()
		setup.Const(rRun, 0)
		setup.Const(rRunLim, int64(run.Count))
		loop := m.NewBlock()
		loop.Call(regRet, g.leafIDs[run.Leaf])
		loop.AddI(rRun, rRun, 1)
		loop.CmpLt(rRunCond, rRun, rRunLim)
		loop.Br(rRunCond, loop.Index())
	}

	m.NewBlock().Nop() // entry anchor

	// Once-per-invocation section: resident probes and the chunk
	// sweep.
	for _, run := range ps.OnceRuns {
		emitRun(run)
	}
	if ps.ChunkLeaf >= 0 {
		setup := m.NewBlock()
		setup.Const(rChunk, int64(regionBase))
		setup.Const(rChunkLim, int64(regionBase+ps.RegionWords))
		sweep := m.NewBlock()
		sweep.AddI(regArg0, rChunk, 0)   // base argument
		sweep.AddI(regArg1(), rChunk, 0) // probe seed argument
		sweep.Call(regRet, g.leafIDs[ps.ChunkLeaf])
		sweep.AddI(rChunk, rChunk, int64(chunkWords))
		sweep.CmpLt(rChunkCond, rChunk, rChunkLim)
		sweep.Br(rChunkCond, sweep.Index())
	}

	repSetup := m.NewBlock()
	repSetup.Const(rRep, 0)
	repSetup.Const(rRepLim, int64(reps))

	body := m.NewBlock()
	body.Nop() // rep-loop head anchor

	for _, run := range ps.Runs {
		emitRun(run)
	}

	tail := m.NewBlock()
	tail.AddI(rRep, rRep, 1)
	tail.CmpLt(rRepCond, rRep, rRepLim)
	tail.Br(rRepCond, body.Index())

	m.NewBlock().Ret(regRet)
	return m.ID()
}

func (g *gen) leafFootprint(i int) int {
	// Chunk strides advance by the leaf's footprint; the spec
	// carries it, so look it up through the builder-order mapping.
	return g.leafFootprints[i]
}

// emitTransition generates one small transition method: a short mixed
// walk+ALU loop over a private array with a generation-time-random
// footprint and padding, giving each transition a distinct BBV
// signature weight.
func (g *gen) emitTransition(i, maxFootprintWords int) program.MethodID {
	if maxFootprintWords < 64 {
		maxFootprintWords = 64
	}
	fp := 64 << g.rng.Intn(3) // 64..256 words
	if fp > maxFootprintWords {
		fp = maxFootprintWords
	}
	ls := LeafSpec{
		Kind:           SeqRead,
		FootprintWords: fp,
		Stride:         1,
		Repeats:        1 + g.rng.Intn(3),
		Pad:            g.rng.Intn(4),
	}
	m := g.b.NewMethod(fmt.Sprintf("trans_%d", i))
	g.emitSeqWalk(m, ls, g.alloc(fp))
	return m.ID()
}

// emitMain fills the entry method: MainLoops × unrolled script.
func (g *gen) emitMain(m *program.MethodBuilder, s Spec) {
	const (
		rMain, rMainLim, rMainCond = regLoop0 + 6, regLoop0 + 7, regLoop0 + 8
		rStep, rStepLim, rStepCond = regLoop0 + 9, regLoop0 + 10, regLoop0 + 11
	)

	entry := m.NewBlock()
	entry.Const(rMain, 0)
	entry.Const(rMainLim, int64(s.MainLoops))

	head := m.NewBlock()
	head.Nop() // loop head anchor

	for _, st := range s.Script {
		if st.Phase >= 0 && st.Reps > 0 {
			blk := m.NewBlock()
			blk.Const(rStep, 0)
			blk.Const(rStepLim, int64(st.Reps))
			loop := m.NewBlock()
			loop.Call(regRet, g.phaseIDs[st.Phase])
			loop.AddI(rStep, rStep, 1)
			loop.CmpLt(rStepCond, rStep, rStepLim)
			loop.Br(rStepCond, loop.Index())
		}
		if len(st.TransMix) > 0 && st.TransReps > 0 {
			blk := m.NewBlock()
			blk.Const(rStep, 0)
			blk.Const(rStepLim, int64(st.TransReps))
			loop := m.NewBlock()
			for _, t := range st.TransMix {
				loop.Call(regRet, g.transIDs[t])
			}
			loop.AddI(rStep, rStep, 1)
			loop.CmpLt(rStepCond, rStep, rStepLim)
			loop.Br(rStepCond, loop.Index())
		}
	}

	tail := m.NewBlock()
	tail.AddI(rMain, rMain, 1)
	tail.CmpLt(rMainCond, rMain, rMainLim)
	tail.Br(rMainCond, head.Index())

	m.NewBlock().Halt()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
