package core

import (
	"testing"

	"acedo/internal/hotspot"
	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

func TestAnalyzerSeqWalkFootprint(t *testing.T) {
	// leafProgram walks [0, 512) words: 4 KB.
	prog := leafProgram(512, 2, 10)
	a := NewAnalyzer(prog)
	foot := a.Footprint(1) // leaf
	if foot != 512*isa.WordBytes {
		t.Errorf("leaf footprint = %d, want %d", foot, 512*isa.WordBytes)
	}
}

func TestAnalyzerInclusiveOverCalls(t *testing.T) {
	prog := phaseProgram(10)
	a := NewAnalyzer(prog)
	leafFoot := a.Footprint(2)
	phaseFoot := a.Footprint(1)
	if leafFoot == 0 {
		t.Fatal("leaf footprint missing")
	}
	if phaseFoot < leafFoot {
		t.Errorf("phase inclusive footprint %d < leaf %d", phaseFoot, leafFoot)
	}
	mainFoot := a.Footprint(0)
	if mainFoot < phaseFoot {
		t.Errorf("main inclusive footprint %d < phase %d", mainFoot, phaseFoot)
	}
}

func TestAnalyzerProbeMask(t *testing.T) {
	// A probe loop: idx = state & 1023; load [base+idx]. The AndI
	// mask must bound the interval to 1024 words.
	b := program.NewBuilder("probe")
	b.SetMemWords(2048)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(4, 64) // base
	blk.Const(5, 12345)
	blk.MulI(5, 5, 1103515245)
	blk.AndI(6, 5, 1023)
	blk.Add(7, 4, 6)
	blk.Load(8, 7, 0)
	blk.Halt()
	b.SetEntry(m.ID())
	prog := b.MustBuild()
	a := NewAnalyzer(prog)
	if got := a.Footprint(0); got != 1024*isa.WordBytes {
		t.Errorf("probe footprint = %d, want %d", got, 1024*isa.WordBytes)
	}
}

func TestAnalyzerUnknownAddressDeclines(t *testing.T) {
	// Address comes from loaded data: no static estimate.
	b := program.NewBuilder("dyn")
	b.SetMemWords(64)
	m := b.NewMethod("main")
	other := b.NewMethod("other")
	ob := other.NewBlock()
	ob.Load(5, 0, 0) // r5 = mem[r0] (r0 unknown at analysis time)
	ob.Load(6, 5, 0) // data-dependent address
	ob.Ret(6)
	mb := m.NewBlock()
	mb.Const(0, 0)
	mb.Call(4, other.ID())
	mb.Halt()
	b.SetEntry(m.ID())
	prog := b.MustBuild()
	a := NewAnalyzer(prog)
	// The first load has r0 unknown in "other" (arg), so nothing
	// statically resolvable inside other beyond possibly nothing.
	mach, _ := machine.New(machine.PaperConfig(10))
	hint := a.HintFor(mach)
	if _, ok := hint(1, hotspot.ClassL1D, 0); ok {
		if a.Footprint(1) == 0 {
			t.Error("hint must decline when the footprint is 0")
		}
	}
}

func TestAnalyzerCyclesTerminate(t *testing.T) {
	b := program.NewBuilder("cycle")
	b.SetMemWords(64)
	f := b.NewMethod("main")
	g := b.NewMethod("g")
	g.NewBlock().Call(4, 0).Ret(4) // g -> main (cycle)
	fb := f.NewBlock()
	fb.Const(4, 0)
	fb.Load(5, 4, 0)
	fb.Call(6, g.ID())
	fb.Halt()
	b.SetEntry(f.ID())
	prog := b.MustBuild()
	a := NewAnalyzer(prog) // must not hang or overflow
	if a.Footprint(0) == 0 {
		t.Error("main accesses mem[0]: footprint should be positive")
	}
}

func TestHintPicksDoubleFootprint(t *testing.T) {
	prog := leafProgram(512, 2, 10) // 4 KB footprint
	a := NewAnalyzer(prog)
	mach, _ := machine.New(machine.PaperConfig(10))
	hint := a.HintFor(mach)
	cfg, ok := hint(1, hotspot.ClassL1D, 6500)
	if !ok {
		t.Fatal("hint declined")
	}
	// 2×4 KB = 8 KB: the smallest setting suffices.
	if got := mach.L1DUnit.Setting(cfg[0]); got != 8*1024 {
		t.Errorf("hinted L1D = %d, want 8K", got)
	}
}

func TestHintCapsAtLargest(t *testing.T) {
	prog := leafProgram(8192, 1, 10) // 64 KB footprint: 2× exceeds max
	a := NewAnalyzer(prog)
	mach, _ := machine.New(machine.PaperConfig(10))
	hint := a.HintFor(mach)
	cfg, ok := hint(1, hotspot.ClassL1D, 50000)
	if !ok {
		t.Fatal("hint declined")
	}
	if cfg[0] != mach.L1DUnit.MaxIndex() {
		t.Errorf("hinted index = %d, want max", cfg[0])
	}
}

func TestAnalyzerOnSuitePrograms(t *testing.T) {
	// The analyzer must terminate on every suite program and find
	// nonzero footprints for most methods.
	for _, s := range workload.Suite() {
		prog := s.MustBuild()
		a := NewAnalyzer(prog)
		nonzero := 0
		for id := 0; id < prog.NumMethods(); id++ {
			if a.Footprint(program.MethodID(id)) > 0 {
				nonzero++
			}
		}
		if nonzero < prog.NumMethods()/2 {
			t.Errorf("%s: only %d/%d methods have estimated footprints",
				s.Name, nonzero, prog.NumMethods())
		}
	}
}

func TestStaticHintEndToEnd(t *testing.T) {
	// Full pipeline: analyzer-driven hints, no descent, and a
	// sensible configuration for a 4 KB leaf.
	prog := leafProgram(512, 2, 300)
	a := NewAnalyzer(prog)
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(10)
	p.StaticHint = a.HintFor(mach)
	aos := vm.NewAOS(testVMParams(), mach, prog)
	mgr, err := NewManager(p, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := mgr.Hotspots()[0]
	if !h.TunedOK || mgr.Report().L1D.Tunings != 0 {
		t.Error("hinted run should skip the descent")
	}
	if got := mach.L1DUnit.Setting(h.BestConfig()[0]); got != 8*1024 {
		t.Errorf("hinted best = %d, want 8K", got)
	}
}
