package core

import (
	"encoding/json"
	"fmt"

	"acedo/internal/hotspot"
)

// The paper's framework stores each hotspot's chosen configuration in
// the DO database so recurring hotspots reuse it with zero latency
// within a run (Section 3.3). This file extends that idea across runs:
// the database can be exported after a run and fed back as a warm
// start, so a subsequent execution of the same program configures its
// hotspots at promotion time without any tuning descent — the same
// effect the paper's Section 6 envisions from static analysis, but
// from measured history.

// SavedHotspot is one hotspot's persisted tuning outcome. Hotspots are
// keyed by method name, which is stable across runs of the same
// program.
type SavedHotspot struct {
	Method   string  `json:"method"`
	Class    string  `json:"class"`
	Config   []int   `json:"config"`
	TunedIPC float64 `json:"tuned_ipc"`
	MeanSize float64 `json:"mean_size"`
}

// Database is the persistable slice of the DO database: the tuning
// outcomes of every hotspot that completed its descent.
type Database struct {
	// Mode records the tuning strategy the outcomes belong to;
	// warm-starting a run in a different mode is rejected because
	// the configuration vectors would not line up.
	Mode     string         `json:"mode"`
	Hotspots []SavedHotspot `json:"hotspots"`
}

// ExportDatabase snapshots the tuned hotspots. Passive and untuned
// hotspots are omitted: there is nothing trustworthy to replay.
func (m *Manager) ExportDatabase() *Database {
	db := &Database{Mode: m.params.Mode.String()}
	for _, h := range m.hotspots {
		if !h.TunedOK || h.passive {
			continue
		}
		cfg := append([]int{}, h.BestConfig()...)
		db.Hotspots = append(db.Hotspots, SavedHotspot{
			Method:   h.Prof.Name,
			Class:    h.Class.String(),
			Config:   cfg,
			TunedIPC: h.TunedIPC,
			MeanSize: h.Prof.MeanSize(),
		})
	}
	return db
}

// Marshal encodes the database as JSON.
func (d *Database) Marshal() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// ParseDatabase decodes a database produced by Marshal.
func ParseDatabase(data []byte) (*Database, error) {
	var d Database
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("core: parse database: %w", err)
	}
	return &d, nil
}

// lookup returns the saved outcome for a method name and class.
func (d *Database) lookup(method string, class hotspot.Class) (SavedHotspot, bool) {
	for _, h := range d.Hotspots {
		if h.Method == method && h.Class == class.String() {
			return h, true
		}
	}
	return SavedHotspot{}, false
}

// validFor reports whether the database can warm-start a manager in
// the given mode.
func (d *Database) validFor(mode Mode) bool {
	return d != nil && d.Mode == mode.String()
}
