// Package core implements the paper's primary contribution: the
// DO-based adaptive computing environment management framework
// (Section 3). It subscribes to hotspot promotions from the dynamic
// optimization system, applies CU decoupling to match each hotspot
// with a subset of configurable units, drives the per-hotspot tuning
// state machine through inserted boundary code, and reconfigures the
// hardware to each hotspot's most energy-efficient configuration at
// every subsequent invocation — with zero recurring-phase
// identification latency.
package core

import (
	"fmt"

	"acedo/internal/hotspot"
	"acedo/internal/program"
)

// Mode selects the tuning strategy.
type Mode int

const (
	// ModeDecoupled is the paper's CU decoupling: each hotspot
	// tunes only the unit matching its size class, walking that
	// unit's 4 settings.
	ModeDecoupled Mode = iota
	// ModeMonolithic is the ablation: every classified hotspot
	// tunes all units over the full combinatorial configuration
	// list (16 combinations), like the temporal approaches'
	// straightforward strategy grafted onto hotspot boundaries.
	ModeMonolithic
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeDecoupled:
		return "decoupled"
	case ModeMonolithic:
		return "monolithic"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Params configures the framework.
type Params struct {
	// Bounds classifies hotspots into CU subsets by mean size.
	Bounds hotspot.Bounds

	// Mode selects decoupled (paper) or monolithic (ablation)
	// tuning.
	Mode Mode

	// PerfThreshold aborts the tuning descent when a configuration
	// degrades IPC by more than this fraction relative to the
	// largest configuration (paper: 2%), and disqualifies such
	// configurations from selection.
	PerfThreshold float64

	// RetuneThreshold re-enters tuning when a sampled invocation's
	// IPC drifts from the tuned IPC by more than this fraction.
	RetuneThreshold float64

	// SamplePeriod is the configured-state sampling cadence: every
	// SamplePeriod-th invocation runs the performance-sampling
	// stub.
	SamplePeriod uint64

	// MeasureSamples is the number of clean same-configuration
	// invocations averaged per tested configuration; a single
	// invocation's IPC is too noisy for the 2% threshold.
	MeasureSamples int

	// MaxTuneAttempts caps tuning-state invocations per pass; a
	// hotspot whose guard-rejected or dirtied measurements exceed
	// the cap selects among what it measured (and does not count as
	// "tuned"). 0 disables the cap.
	MaxTuneAttempts int

	// MaxRetunes is the oscillation watchdog: a hotspot whose
	// sampling-triggered re-tunes reach this count is degraded —
	// pinned to the full-size safe configuration with drift
	// sampling disabled — instead of descending again, so an
	// oscillating workload cannot thrash the hardware indefinitely.
	// 0 disables the watchdog.
	MaxRetunes int

	// WarmStart, if non-nil, is a previous run's exported DO
	// database: a promoted hotspot found in it is configured
	// immediately with the saved configuration, skipping the
	// descent (Manager.ExportDatabase / ParseDatabase). It is
	// consulted before StaticHint and ignored if its tuning Mode
	// differs from this run's.
	WarmStart *Database

	// StaticHint, if non-nil, is consulted at promotion (the
	// paper's Section 6 future-work feature: the JIT estimates the
	// required configuration by code analysis). When it returns
	// ok, the hotspot skips the tuning descent entirely and is
	// configured to the hinted setting index vector. See
	// NewAnalyzer for the provided implementation.
	StaticHint func(method program.MethodID, class hotspot.Class, meanSize float64) (cfg []int, ok bool)

	// Inserted-stub lengths in instructions.
	TuneEntryOverhead   uint64 // tuning code at hotspot entry
	ProfileExitOverhead uint64 // profiling code at hotspot exits
	ConfigOverhead      uint64 // configuration code after tuning
	SampleCheckOverhead uint64 // cheap per-exit cadence check
	SampleOverhead      uint64 // full sampling stub, every SamplePeriod-th exit
}

// DefaultParams returns the framework parameters at the given scale
// divisor (DESIGN.md §4; 1 = paper scale, 10 = default experiments).
func DefaultParams(scaleDiv uint64) Params {
	return Params{
		Bounds:              hotspot.PaperBounds(scaleDiv),
		Mode:                ModeDecoupled,
		PerfThreshold:       0.02,
		RetuneThreshold:     0.30,
		SamplePeriod:        48,
		MeasureSamples:      3,
		MaxTuneAttempts:     48,
		MaxRetunes:          4,
		TuneEntryOverhead:   24,
		ProfileExitOverhead: 12,
		ConfigOverhead:      8,
		SampleCheckOverhead: 2,
		SampleOverhead:      6,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if err := p.Bounds.Validate(); err != nil {
		return err
	}
	if p.PerfThreshold < 0 || p.PerfThreshold >= 1 {
		return fmt.Errorf("core: perf threshold %v out of [0,1)", p.PerfThreshold)
	}
	if p.RetuneThreshold <= 0 {
		return fmt.Errorf("core: retune threshold %v must be positive", p.RetuneThreshold)
	}
	if p.SamplePeriod == 0 {
		return fmt.Errorf("core: sample period must be positive")
	}
	if p.MeasureSamples <= 0 {
		return fmt.Errorf("core: measure samples must be positive")
	}
	if p.MaxRetunes < 0 {
		return fmt.Errorf("core: max retunes %d must be non-negative", p.MaxRetunes)
	}
	return nil
}
