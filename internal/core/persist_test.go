package core

import (
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	e := newEnv(t, leafProgram(512, 2, 400), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	db := e.mgr.ExportDatabase()
	if len(db.Hotspots) != 1 {
		t.Fatalf("exported %d hotspots, want 1", len(db.Hotspots))
	}
	if db.Hotspots[0].Method != "leaf" || db.Hotspots[0].Class != "L1D" {
		t.Errorf("exported entry = %+v", db.Hotspots[0])
	}
	data, err := db.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDatabase(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mode != "decoupled" || len(back.Hotspots) != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Hotspots[0].Config[0] != db.Hotspots[0].Config[0] {
		t.Error("config changed in round trip")
	}
}

func TestParseDatabaseRejectsGarbage(t *testing.T) {
	if _, err := ParseDatabase([]byte("{nope")); err == nil {
		t.Error("garbage should fail to parse")
	}
}

func TestWarmStartSkipsTuning(t *testing.T) {
	// First run tunes; second run warm-starts from the export and
	// must perform zero tuning measurements while choosing the same
	// configuration.
	first := newEnv(t, leafProgram(512, 2, 400), DefaultParams(10))
	if err := first.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	db := first.mgr.ExportDatabase()
	want := first.mgr.Hotspots()[0].BestConfig()[0]

	p := DefaultParams(10)
	p.WarmStart = db
	second := newEnv(t, leafProgram(512, 2, 400), p)
	if err := second.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	rep := second.mgr.Report()
	if rep.WarmStarts != 1 {
		t.Fatalf("WarmStarts = %d, want 1", rep.WarmStarts)
	}
	if rep.L1D.Tunings != 0 {
		t.Errorf("tunings = %d, want 0 (warm start)", rep.L1D.Tunings)
	}
	h := second.mgr.Hotspots()[0]
	if h.State() != "configured" || h.BestConfig()[0] != want {
		t.Errorf("warm-started config = %v, want [%d]", h.BestConfig(), want)
	}
	// Warm-started runs still cover execution.
	if rep.L1D.Coverage <= 0 {
		t.Error("coverage should be positive")
	}
}

func TestWarmStartModeMismatchIgnored(t *testing.T) {
	first := newEnv(t, leafProgram(512, 2, 400), DefaultParams(10))
	if err := first.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	db := first.mgr.ExportDatabase()
	db.Mode = "monolithic" // wrong mode: must be ignored

	p := DefaultParams(10)
	p.WarmStart = db
	second := newEnv(t, leafProgram(512, 2, 400), p)
	if err := second.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	rep := second.mgr.Report()
	if rep.WarmStarts != 0 {
		t.Error("mode-mismatched database must not warm-start")
	}
	if rep.L1D.Tunings == 0 {
		t.Error("the descent should have run")
	}
}

func TestWarmStartUnknownMethodFallsBack(t *testing.T) {
	db := &Database{Mode: "decoupled", Hotspots: []SavedHotspot{
		{Method: "someone-else", Class: "L1D", Config: []int{0}},
	}}
	p := DefaultParams(10)
	p.WarmStart = db
	e := newEnv(t, leafProgram(512, 2, 400), p)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	rep := e.mgr.Report()
	if rep.WarmStarts != 0 || rep.L1D.Tunings == 0 {
		t.Error("unknown method must fall back to tuning")
	}
}

func TestExportOmitsUntunedAndPassive(t *testing.T) {
	// Stop mid-run so tuning cannot complete: nothing to export.
	e := newEnv(t, leafProgram(512, 2, 400), DefaultParams(10))
	if err := e.eng.Run(80_000); err != nil && err.Error() != "vm: instruction budget exhausted" {
		t.Fatal(err)
	}
	db := e.mgr.ExportDatabase()
	for _, h := range db.Hotspots {
		if h.Config == nil {
			t.Errorf("exported entry without config: %+v", h)
		}
	}
	// The leaf needs ~30 invocations to finish its descent; 80K
	// instructions is ~12.
	if len(db.Hotspots) != 0 {
		t.Errorf("exported %d hotspots from an unfinished run, want 0", len(db.Hotspots))
	}
}
