package core

import (
	"sort"

	"acedo/internal/hotspot"
	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
)

// Analyzer implements the paper's Section 6 future-work proposal: "one
// could use the JIT compiler in the DO system to provide a good
// estimate for the resource configuration required for this hotspot
// through appropriate code analysis. Such a feature could potentially
// completely eliminate the tuning latency and overhead."
//
// It estimates each method's data footprint by lightweight abstract
// interpretation of the method body:
//
//   - registers holding compile-time constants are tracked (the
//     generators and most straight-line code materialize array bases
//     with Const);
//   - index registers acquire upper bounds from CmpLt comparisons
//     against constants (loop bounds) and AndI masks (probe index
//     masking);
//   - every Load/Store whose address decomposes into a constant base
//     plus a bounded index contributes the interval
//     [base, base+bound] to the method's footprint.
//
// Footprints are inclusive: a method's intervals are unioned with its
// callees' (indirect calls are ignored — their targets are unknown to
// static analysis). The estimate is a heuristic: methods whose
// addresses are entirely data-dependent simply contribute nothing,
// which makes the hint decline (ok=false) rather than guess.
type Analyzer struct {
	prog *program.Program
	// own[i] holds method i's own access intervals (in words).
	own         [][2]int64
	ownByMethod [][]int // indices into own, per method
	// inclusive[i] is the memoized inclusive footprint in bytes.
	inclusive []int
	visited   []uint8 // 0 unvisited, 1 in progress, 2 done
	callees   [][]program.MethodID
}

// NewAnalyzer analyzes a sealed program.
func NewAnalyzer(p *program.Program) *Analyzer {
	a := &Analyzer{
		prog:        p,
		ownByMethod: make([][]int, p.NumMethods()),
		inclusive:   make([]int, p.NumMethods()),
		visited:     make([]uint8, p.NumMethods()),
		callees:     make([][]program.MethodID, p.NumMethods()),
	}
	for _, m := range p.Methods {
		a.scanMethod(m)
	}
	for id := range p.Methods {
		a.resolve(program.MethodID(id))
	}
	return a
}

// absVal is the abstract value of a register: unknown, a compile-time
// constant, or a half-open range [lo, hi).
type absVal struct {
	kind   uint8
	c      int64 // constant value (vConst)
	lo, hi int64 // range bounds (vRange), hi exclusive
}

const (
	vUnknown = 0
	vConst   = 1
	vRange   = 2
)

// scanMethod walks the method's instructions once, in layout order,
// tracking abstract register values and recording access intervals.
// Loops revisit the same instructions with the same abstract effects,
// so one pass suffices for the estimate.
func (a *Analyzer) scanMethod(m *program.Method) {
	var regs [isa.NumRegs]absVal
	// bounds[r] is the largest constant r was compared against
	// (CmpLt against a constant register: a loop bound).
	var bounds [isa.NumRegs]int64
	// mutated[r] marks loop-carried registers (written from
	// themselves): a Const to such a register is a loop index's
	// initial value, not a constant.
	var mutated [isa.NumRegs]bool
	for _, blk := range m.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == isa.OpCmpLt {
				if c := constOf(m, in.C); c > bounds[in.B] {
					bounds[in.B] = c
				}
			}
			switch in.Op {
			case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr,
				isa.OpXor, isa.OpShl, isa.OpShr:
				if in.A == in.B || in.A == in.C {
					mutated[in.A] = true
				}
			case isa.OpAddI, isa.OpMulI, isa.OpAndI, isa.OpXorI,
				isa.OpShlI, isa.OpShrI:
				if in.A == in.B {
					mutated[in.A] = true
				}
			}
		}
	}

	addInterval := func(lo, hi int64) {
		if hi <= lo {
			hi = lo + 1
		}
		a.ownByMethod[m.ID] = append(a.ownByMethod[m.ID], len(a.own))
		a.own = append(a.own, [2]int64{lo, hi})
	}

	for _, blk := range m.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case isa.OpConst:
				if mutated[in.A] {
					hi := bounds[in.A]
					if hi <= in.Imm {
						hi = in.Imm + 1
					}
					regs[in.A] = absVal{kind: vRange, lo: in.Imm, hi: hi}
				} else {
					regs[in.A] = absVal{kind: vConst, c: in.Imm}
				}
			case isa.OpAdd:
				regs[in.A] = addAbs(regs[in.B], regs[in.C])
			case isa.OpAddI:
				regs[in.A] = addAbs(regs[in.B], absVal{kind: vConst, c: in.Imm})
			case isa.OpAndI:
				// Masking yields an index in [0, mask].
				regs[in.A] = absVal{kind: vRange, lo: 0, hi: in.Imm + 1}
			case isa.OpLoad, isa.OpStore:
				base := regs[in.B]
				switch base.kind {
				case vConst:
					addInterval(base.c+in.Imm, base.c+in.Imm+1)
				case vRange:
					addInterval(base.lo+in.Imm, base.hi+in.Imm)
				}
			case isa.OpCall:
				a.callees[m.ID] = append(a.callees[m.ID], program.MethodID(in.Imm))
				regs[in.A] = absVal{}
			case isa.OpCallR, isa.OpMul, isa.OpMulI, isa.OpDiv, isa.OpRem,
				isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpXorI,
				isa.OpShl, isa.OpShr, isa.OpShlI, isa.OpShrI,
				isa.OpCmpLt, isa.OpCmpEq:
				regs[in.A] = absVal{}
			}
		}
	}
}

// addAbs adds two abstract values.
func addAbs(x, y absVal) absVal {
	switch {
	case x.kind == vConst && y.kind == vConst:
		return absVal{kind: vConst, c: x.c + y.c}
	case x.kind == vConst && y.kind == vRange:
		return absVal{kind: vRange, lo: x.c + y.lo, hi: x.c + y.hi}
	case x.kind == vRange && y.kind == vConst:
		return absVal{kind: vRange, lo: x.lo + y.c, hi: x.hi + y.c}
	}
	return absVal{}
}

// constOf returns the value reg is set to by a Const anywhere in the
// method, or 0. The generators assign loop limits once, so the last
// Const wins ties.
func constOf(m *program.Method, reg uint8) int64 {
	var v int64
	for _, blk := range m.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == isa.OpConst && in.A == reg {
				v = in.Imm
			}
		}
	}
	return v
}

// resolve computes the inclusive footprint of a method via DFS over
// the call graph (cycles contribute their own intervals once).
func (a *Analyzer) resolve(id program.MethodID) []int {
	if a.visited[id] == 2 {
		return a.ownByMethod[id]
	}
	if a.visited[id] == 1 {
		return nil // cycle: own intervals are already counted upstream
	}
	a.visited[id] = 1
	all := append([]int{}, a.ownByMethod[id]...)
	for _, callee := range a.callees[id] {
		all = append(all, a.resolve(callee)...)
	}
	a.ownByMethod[id] = dedupInts(all)
	a.inclusive[id] = a.unionBytes(a.ownByMethod[id])
	a.visited[id] = 2
	return a.ownByMethod[id]
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// unionBytes merges the word intervals and returns the union length in
// bytes.
func (a *Analyzer) unionBytes(idxs []int) int {
	if len(idxs) == 0 {
		return 0
	}
	iv := make([][2]int64, 0, len(idxs))
	for _, i := range idxs {
		iv = append(iv, a.own[i])
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var words int64
	curLo, curHi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] <= curHi {
			if x[1] > curHi {
				curHi = x[1]
			}
			continue
		}
		words += curHi - curLo
		curLo, curHi = x[0], x[1]
	}
	words += curHi - curLo
	return int(words) * isa.WordBytes
}

// Footprint returns the estimated inclusive data footprint of a method
// in bytes (0 when the analysis found no statically-resolvable
// accesses).
func (a *Analyzer) Footprint(id program.MethodID) int {
	return a.inclusive[id]
}

// HintFor builds a Params.StaticHint for the given machine: the hinted
// configuration is the smallest setting at least twice the estimated
// footprint (occupancy headroom for co-resident data), per the unit
// the hotspot's class manages. The hint declines when the analysis
// found nothing.
func (a *Analyzer) HintFor(mach *machine.Machine) func(program.MethodID, hotspot.Class, float64) ([]int, bool) {
	return func(id program.MethodID, class hotspot.Class, _ float64) ([]int, bool) {
		foot := a.Footprint(id)
		if foot == 0 {
			return nil, false
		}
		unit := mach.L1DUnit
		if class == hotspot.ClassL2 {
			unit = mach.L2Unit
		}
		for i := 0; i < unit.NumSettings(); i++ {
			if unit.Setting(i) >= 2*foot {
				return []int{i}, true
			}
		}
		return []int{unit.MaxIndex()}, true
	}
}
