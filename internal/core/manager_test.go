package core

import (
	"testing"

	"acedo/internal/hotspot"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
)

func testVMParams() vm.Params {
	p := vm.DefaultParams()
	p.SampleInterval = 1000
	p.HotThreshold = 3
	p.MinSamples = 1
	return p
}

type env struct {
	prog *program.Program
	mach *machine.Machine
	aos  *vm.AOS
	mgr  *Manager
	eng  *vm.Engine
}

func newEnv(t *testing.T, prog *program.Program, params Params) *env {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	aos := vm.NewAOS(testVMParams(), mach, prog)
	mgr, err := NewManager(params, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	return &env{prog: prog, mach: mach, aos: aos, mgr: mgr, eng: eng}
}

// emitWalkLeaf emits a method walking [base, base+words) `reps` times.
func emitWalkLeaf(m *program.MethodBuilder, base, words, reps int64) {
	entry := m.NewBlock()
	entry.Const(4, base)
	entry.Const(11, 0)
	entry.Const(12, reps)
	rep := m.NewBlock()
	rep.Const(5, 0)
	rep.Const(6, words)
	loop := m.NewBlock()
	loop.Add(7, 4, 5)
	loop.Load(8, 7, 0)
	loop.Add(9, 9, 8)
	loop.AddI(5, 5, 1)
	loop.CmpLt(10, 5, 6)
	loop.Br(10, loop.Index())
	tail := m.NewBlock()
	tail.AddI(11, 11, 1)
	tail.CmpLt(12, 11, 12)
	tail.Br(12, rep.Index())
	m.NewBlock().Ret(9)
}

// leafProgram builds main calling one walk leaf n times.
func leafProgram(words, reps, n int64) *program.Program {
	b := program.NewBuilder("leaf")
	b.SetMemWords(int(words) + 64)
	main := b.NewMethod("main")
	leaf := b.NewMethod("leaf")
	emitWalkLeaf(leaf, 0, words, reps)

	entry := main.NewBlock()
	entry.Const(16, 0)
	entry.Const(17, n)
	loop := main.NewBlock()
	loop.Call(15, leaf.ID())
	loop.AddI(16, 16, 1)
	loop.CmpLt(18, 16, 17)
	loop.Br(18, loop.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestLeafClassifiedL1DAndTunedSmall(t *testing.T) {
	// 4 KB array walked twice per invocation ≈ 6.5 K instructions:
	// an L1D-class hotspot whose working set fits the smallest
	// cache; the tuner must shrink the L1D far below 64 KB.
	e := newEnv(t, leafProgram(512, 2, 400), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	hs := e.mgr.Hotspots()
	if len(hs) != 1 {
		t.Fatalf("hotspots = %d, want 1 (main is invoked once)", len(hs))
	}
	h := hs[0]
	if h.Class != hotspot.ClassL1D {
		t.Fatalf("class = %v, want L1D", h.Class)
	}
	if len(h.Units()) != 1 || h.Units()[0] != e.mach.L1DUnit {
		t.Error("decoupled L1D hotspot must manage exactly the L1D unit")
	}
	if h.State() != "configured" || !h.TunedOK {
		t.Fatalf("hotspot not tuned: state=%s tuned=%v", h.State(), h.TunedOK)
	}
	best := e.mach.L1DUnit.Setting(h.BestConfig()[0])
	if best > 16*1024 {
		t.Errorf("best L1D = %d, want ≤16K for a 4KB working set", best)
	}
}

func TestPerfGateKeepsLargeCacheForLargeWorkingSet(t *testing.T) {
	// 48 KB array: only the 64 KB configuration holds it, so the
	// 2% IPC gate must reject every smaller size.
	e := newEnv(t, leafProgram(6144, 1, 400), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	hs := e.mgr.Hotspots()
	if len(hs) != 1 {
		t.Fatalf("hotspots = %d", len(hs))
	}
	h := hs[0]
	if h.State() != "configured" {
		t.Fatalf("state = %s", h.State())
	}
	best := e.mach.L1DUnit.Setting(h.BestConfig()[0])
	if best != 64*1024 {
		t.Errorf("best L1D = %d, want 64K", best)
	}
}

// phaseProgram wraps the leaf in a phase method so the phase's
// inclusive size crosses the L2 class bound.
func phaseProgram(n int64) *program.Program {
	b := program.NewBuilder("phase")
	b.SetMemWords(4096)
	main := b.NewMethod("main")
	phase := b.NewMethod("phase")
	leaf := b.NewMethod("leaf")
	emitWalkLeaf(leaf, 0, 512, 2) // ≈6.5K instructions

	pe := phase.NewBlock()
	pe.Const(16, 0)
	pe.Const(17, 10) // 10 leaf calls ≈ 65K instructions: L2 class
	pl := phase.NewBlock()
	pl.Call(15, leaf.ID())
	pl.AddI(16, 16, 1)
	pl.CmpLt(18, 16, 17)
	pl.Br(18, pl.Index())
	phase.NewBlock().Ret(15)

	me := main.NewBlock()
	me.Const(16, 0)
	me.Const(17, n)
	ml := main.NewBlock()
	ml.Call(15, phase.ID())
	ml.AddI(16, 16, 1)
	ml.CmpLt(18, 16, 17)
	ml.Br(18, ml.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestNestedPhaseClassifiedL2(t *testing.T) {
	e := newEnv(t, phaseProgram(100), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	var leafH, phaseH *Hotspot
	for _, h := range e.mgr.Hotspots() {
		switch h.Prof.Name {
		case "leaf":
			leafH = h
		case "phase":
			phaseH = h
		}
	}
	if leafH == nil || phaseH == nil {
		t.Fatalf("missing hotspots: %+v", e.mgr.Hotspots())
	}
	if leafH.Class != hotspot.ClassL1D {
		t.Errorf("leaf class = %v", leafH.Class)
	}
	if phaseH.Class != hotspot.ClassL2 {
		t.Errorf("phase class = %v (inclusive size must count callees)", phaseH.Class)
	}
	if len(phaseH.Units()) != 1 || phaseH.Units()[0] != e.mach.L2Unit {
		t.Error("L2 hotspot must manage exactly the L2 unit")
	}
	rep := e.mgr.Report()
	if rep.L1D.Hotspots != 1 || rep.L2.Hotspots != 1 {
		t.Errorf("report classes = %+v", rep)
	}
	if rep.L1D.Coverage <= 0 || rep.L2.Coverage <= 0 {
		t.Error("coverage should be positive once configured")
	}
	if rep.L2.Coverage > 1 || rep.L1D.Coverage > 1 {
		t.Error("coverage must be a fraction")
	}
}

func TestTinyHotspotUnmanaged(t *testing.T) {
	// 64-word walk ≈ 400 instructions: below the L1D class.
	e := newEnv(t, leafProgram(64, 1, 300), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(e.mgr.Hotspots()) != 0 {
		t.Errorf("tiny method should not be managed")
	}
	if e.mgr.Unmanaged() != 1 {
		t.Errorf("Unmanaged = %d, want 1", e.mgr.Unmanaged())
	}
}

// nestedL1DProgram creates an outer L1D-class method containing a
// managed L1D leaf — the passive-fallback scenario.
func nestedL1DProgram(n int64) *program.Program {
	b := program.NewBuilder("nested")
	b.SetMemWords(4096)
	main := b.NewMethod("main")
	outer := b.NewMethod("outer")
	inner := b.NewMethod("inner")
	emitWalkLeaf(inner, 0, 512, 2) // ≈6.5K: L1D class

	oe := outer.NewBlock()
	oe.Const(16, 0)
	oe.Const(17, 3) // 3 inner calls ≈ 20K: still L1D class
	ol := outer.NewBlock()
	ol.Call(15, inner.ID())
	ol.AddI(16, 16, 1)
	ol.CmpLt(18, 16, 17)
	ol.Br(18, ol.Index())
	outer.NewBlock().Ret(15)

	me := main.NewBlock()
	me.Const(16, 0)
	me.Const(17, n)
	ml := main.NewBlock()
	ml.Call(15, outer.ID())
	ml.AddI(16, 16, 1)
	ml.CmpLt(18, 16, 17)
	ml.Br(18, ml.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestNestedSameClassDoesNotDeadlock(t *testing.T) {
	e := newEnv(t, nestedL1DProgram(500), DefaultParams(10))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	var outerH *Hotspot
	for _, h := range e.mgr.Hotspots() {
		if h.Prof.Name == "outer" {
			outerH = h
		}
	}
	if outerH == nil {
		t.Fatal("outer not managed")
	}
	if outerH.State() != "configured" {
		t.Errorf("outer must leave the tuning state eventually (got %s)", outerH.State())
	}
}

func TestStaticHintSkipsTuning(t *testing.T) {
	p := DefaultParams(10)
	var hinted []hotspot.Class
	p.StaticHint = func(_ program.MethodID, class hotspot.Class, meanSize float64) ([]int, bool) {
		hinted = append(hinted, class)
		return []int{0}, true // smallest setting
	}
	e := newEnv(t, leafProgram(512, 2, 200), p)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := e.mgr.Hotspots()[0]
	if len(hinted) != 1 {
		t.Fatalf("hint consulted %d times", len(hinted))
	}
	if h.State() != "configured" || !h.TunedOK {
		t.Error("hinted hotspot should be configured immediately")
	}
	rep := e.mgr.Report()
	if rep.L1D.Tunings != 0 {
		t.Errorf("tunings = %d, want 0 (descent skipped)", rep.L1D.Tunings)
	}
	if h.BestConfig()[0] != 0 {
		t.Errorf("best = %v, want the hinted [0]", h.BestConfig())
	}
}

func TestStaticHintRejectedFallsBackToTuning(t *testing.T) {
	p := DefaultParams(10)
	p.StaticHint = func(program.MethodID, hotspot.Class, float64) ([]int, bool) {
		return []int{99}, true // not a valid config: must be ignored
	}
	e := newEnv(t, leafProgram(512, 2, 400), p)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := e.mgr.Hotspots()[0]
	if !h.TunedOK {
		t.Error("invalid hint should fall back to the tuning descent")
	}
	if e.mgr.Report().L1D.Tunings == 0 {
		t.Error("descent should have run")
	}
}

func TestMonolithicModeUsesAllCombinations(t *testing.T) {
	p := DefaultParams(10)
	p.Mode = ModeMonolithic
	e := newEnv(t, leafProgram(512, 2, 600), p)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := e.mgr.Hotspots()[0]
	if len(h.Units()) != 2 {
		t.Errorf("monolithic hotspot should manage both units")
	}
	if got := len(h.configs); got != 16 {
		t.Errorf("configs = %d, want 16", got)
	}
}

func TestRetuneOnBehaviourChange(t *testing.T) {
	// The leaf's walk bound lives in memory; main enlarges it
	// mid-run, changing the leaf's working set from 2 KB to 32 KB.
	b := program.NewBuilder("drift")
	const cell = 0
	b.SetMemWords(8192 + 64)
	main := b.NewMethod("main")
	leaf := b.NewMethod("leaf")

	le := leaf.NewBlock()
	le.Const(4, 64) // data base
	le.Const(13, cell)
	le.Load(6, 13, 0) // bound from memory
	le.Const(5, 0)
	le.Const(11, 0)
	le.Const(12, 4) // 4 reps keep the size in class at both bounds
	rep := leaf.NewBlock()
	rep.Const(5, 0)
	loop := leaf.NewBlock()
	loop.Add(7, 4, 5)
	loop.Load(8, 7, 0)
	loop.Add(9, 9, 8)
	loop.AddI(5, 5, 1)
	loop.CmpLt(10, 5, 6)
	loop.Br(10, loop.Index())
	tl := leaf.NewBlock()
	tl.AddI(11, 11, 1)
	tl.CmpLt(10, 11, 12)
	tl.Br(10, rep.Index())
	leaf.NewBlock().Ret(9)

	me := main.NewBlock()
	me.Const(13, cell)
	me.Const(14, 256) // small bound: 2 KB
	me.Store(14, 13, 0)
	me.Const(16, 0)
	me.Const(17, 500)
	l1 := main.NewBlock()
	l1.Call(15, leaf.ID())
	l1.AddI(16, 16, 1)
	l1.CmpLt(18, 16, 17)
	l1.Br(18, l1.Index())
	mid := main.NewBlock()
	mid.Const(14, 4096) // large bound: 32 KB
	mid.Store(14, 13, 0)
	mid.Const(16, 0)
	l2 := main.NewBlock()
	l2.Call(15, leaf.ID())
	l2.AddI(16, 16, 1)
	l2.CmpLt(18, 16, 17)
	l2.Br(18, l2.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())

	p := DefaultParams(10)
	p.RetuneThreshold = 0.05
	p.SamplePeriod = 8
	e := newEnv(t, b.MustBuild(), p)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := e.mgr.Hotspots()[0]
	if h.Retunes == 0 {
		t.Error("behaviour change should trigger a re-tune")
	}
	if e.mgr.Report().Retunes == 0 {
		t.Error("report should surface retunes")
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.PerfThreshold = -0.1 },
		func(p *Params) { p.PerfThreshold = 1 },
		func(p *Params) { p.RetuneThreshold = 0 },
		func(p *Params) { p.SamplePeriod = 0 },
		func(p *Params) { p.MeasureSamples = 0 },
		func(p *Params) { p.Bounds.L1DMin = 0 },
	} {
		p := DefaultParams(10)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutated params %+v should be invalid", p)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeDecoupled.String() != "decoupled" || ModeMonolithic.String() != "monolithic" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestReportOnBudgetLimitedRun(t *testing.T) {
	// A run cut off mid-invocation must still produce a report
	// (open coverage spans are closed at the current instruction).
	e := newEnv(t, leafProgram(512, 2, 4000), DefaultParams(10))
	err := e.eng.Run(5_000_000)
	if err == nil {
		t.Skip("program finished within the budget")
	}
	rep := e.mgr.Report() // must not panic
	if rep.L1D.Coverage < 0 || rep.L1D.Coverage > 1 {
		t.Errorf("coverage out of range: %v", rep.L1D.Coverage)
	}
}
