package core

import (
	"math"

	"acedo/internal/ace"
	"acedo/internal/hotspot"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/stats"
	"acedo/internal/telemetry"
	"acedo/internal/vm"
)

// state is a hotspot's position in the tuning lifecycle.
type state int

const (
	stateTuning state = iota
	stateConfigured
)

func (s state) String() string {
	if s == stateTuning {
		return "tuning"
	}
	return "configured"
}

// measure accumulates a tested configuration's observations. Multiple
// clean samples are averaged before the descent advances, because a
// single invocation's IPC is too noisy for the 2% threshold; the
// sample variance additionally widens the acceptance gate (relTol), so
// that co-scheduled hotspots under pollution noise converge to the
// same choice instead of coin-flipping around the threshold.
type measure struct {
	count    int
	ipcSum   float64
	ipcSqSum float64
	// epiSum accumulates the cache energy per instruction (nJ) —
	// the quantity "most energy-efficient" minimizes.
	epiSum float64
}

func (ms *measure) add(ipc, epi float64) {
	if !stats.Finite(ipc) || !stats.Finite(epi) {
		// A corrupted (NaN/Inf) sample must never enter the
		// acceptance math: it would poison every later mean and
		// make gateFails undecidable. Drop it; the descent simply
		// needs one more clean invocation.
		return
	}
	ms.count++
	ms.ipcSum += ipc
	ms.ipcSqSum += ipc * ipc
	ms.epiSum += epi
}

func (ms measure) valid() bool { return ms.count > 0 }

func (ms measure) ipc() float64 {
	if ms.count == 0 {
		return 0
	}
	return ms.ipcSum / float64(ms.count)
}

func (ms measure) epi() float64 {
	if ms.count == 0 {
		return 0
	}
	return ms.epiSum / float64(ms.count)
}

// relStderr returns the standard error of the mean IPC relative to the
// mean (0 with <2 samples).
func (ms measure) relStderr() float64 {
	if ms.count < 2 || ms.ipcSum == 0 {
		return 0
	}
	n := float64(ms.count)
	mean := ms.ipcSum / n
	variance := ms.ipcSqSum/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return math.Sqrt(variance/n) / mean
}

// invEntry is the per-invocation record pushed at hotspot entry and
// popped at exit (hotspots re-enter through nesting, so a stack).
type invEntry struct {
	snap    machine.Snapshot
	state   state
	wanted  int    // configs position under test, -1 if none/rejected
	applied uint64 // sum of units' applied-counters right after our request
}

// Hotspot is the framework's per-hotspot record: the DO database
// extension holding the configuration list, the list index, the
// measurements, and the chosen configuration (paper Section 3.2.2).
type Hotspot struct {
	Prof  *vm.MethodProfile
	Class hotspot.Class

	units   []*ace.Unit
	configs [][]int // setting-index vectors, largest first
	meas    []measure
	next    int
	attempt int

	st      state
	bestPos int
	// passive marks a hotspot whose tuning never obtained a clean
	// measurement — typically because nested hotspots manage the
	// same unit (paper Section 3.2.1: small hotspots tuning a
	// low-overhead CU automatically tune it for the enclosing
	// hotspot). A passive hotspot inherits the interior's choices
	// and issues no configuration requests of its own.
	passive bool
	// TunedIPC is the IPC observed under the selected
	// configuration, the reference for re-tune sampling.
	TunedIPC float64
	// TunedOK marks hotspots that completed a tuning pass (tested
	// every configuration or aborted on the performance threshold).
	TunedOK bool
	// TunePasses counts completed tuning passes (>1 after re-tunes).
	TunePasses int
	// Retunes counts re-entries into tuning triggered by sampling.
	Retunes int
	// Degraded marks a hotspot tripped by the oscillation watchdog
	// (Params.MaxRetunes): it is pinned to the full-size safe
	// configuration and no longer re-tunes.
	Degraded bool

	entryStack  []invEntry
	sinceSample uint64
	driftCount  int

	// IPCW accumulates per-invocation IPC observations (Table 5's
	// per-hotspot CoV).
	IPCW stats.Welford
}

// State returns "tuning" or "configured".
func (h *Hotspot) State() string { return h.st.String() }

// BestConfig returns the selected setting-index vector (valid once
// configured).
func (h *Hotspot) BestConfig() []int { return h.configs[h.bestPos] }

// Units returns the configurable units this hotspot manages.
func (h *Hotspot) Units() []*ace.Unit { return h.units }

// classCounters aggregates per-size-class accounting for Table 6.
type classCounters struct {
	hotspots  int
	tuned     int
	tunings   uint64 // configuration tests completed
	reconfigs uint64 // best-config applications that changed hardware

	depth     int
	spanStart uint64
	covered   uint64 // instructions executed inside configured hotspots
}

func (c *classCounters) enterCovered(now uint64) {
	if c.depth == 0 {
		c.spanStart = now
	}
	c.depth++
}

func (c *classCounters) exitCovered(now uint64) {
	c.depth--
	if c.depth == 0 {
		c.covered += now - c.spanStart
	}
}

// Manager is the ACE management framework bound to one machine and one
// AOS. Construct it before running the engine; it registers itself as
// the AOS promotion consumer.
type Manager struct {
	params Params
	mach   *machine.Machine
	aos    *vm.AOS

	hotspots   []*Hotspot
	byMethod   map[program.MethodID]*Hotspot
	unmanaged  int
	warmStarts int
	degraded   int

	// sink, when non-nil, observes tuner decisions (completed
	// configuration measurements, selections, re-tunes).
	sink telemetry.Sink

	micro classCounters
	l1d   classCounters
	l2    classCounters
}

// NewManager constructs and registers the framework.
func NewManager(params Params, mach *machine.Machine, aos *vm.AOS) (*Manager, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		params:   params,
		mach:     mach,
		aos:      aos,
		byMethod: make(map[program.MethodID]*Hotspot),
	}
	aos.OnPromote = m.onPromote
	return m, nil
}

// MustNewManager is NewManager that panics on error.
func MustNewManager(params Params, mach *machine.Machine, aos *vm.AOS) *Manager {
	m, err := NewManager(params, mach, aos)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the framework parameters.
func (m *Manager) Params() Params { return m.params }

// SetSink installs a telemetry sink observing the tuner's decisions.
// Pass nil to remove it. Install before running the engine.
func (m *Manager) SetSink(s telemetry.Sink) { m.sink = s }

// configValues translates a setting-index vector into setting values
// in the hotspot's unit order (what an event consumer can interpret
// without the unit tables).
func (h *Hotspot) configValues(pos int) []int {
	cfg := h.configs[pos]
	vals := make([]int, len(cfg))
	for i, u := range h.units {
		vals[i] = u.Setting(cfg[i])
	}
	return vals
}

// emitTuner sends one tuner event for the hotspot.
func (m *Manager) emitTuner(t telemetry.Type, h *Hotspot, ev telemetry.TunerEvent) {
	if m.sink == nil {
		return
	}
	ev.Method = h.Prof.Name
	ev.Class = h.Class.String()
	m.sink.Emit(telemetry.Event{Type: t, Instr: m.mach.Instructions(), Tuner: &ev})
}

// Hotspots returns the managed hotspots in promotion order.
func (m *Manager) Hotspots() []*Hotspot { return m.hotspots }

// Unmanaged returns the number of promoted methods too small for any
// CU subset.
func (m *Manager) Unmanaged() int { return m.unmanaged }

func (m *Manager) class(c hotspot.Class) *classCounters {
	switch c {
	case hotspot.ClassMicro:
		return &m.micro
	case hotspot.ClassL1D:
		return &m.l1d
	}
	return &m.l2
}

// onPromote is the JIT-compilation moment: classify the hotspot,
// choose its CU subset, create its configuration list, and insert the
// tuning and profiling code (paper Figure 2).
func (m *Manager) onPromote(prof *vm.MethodProfile) {
	class := m.params.Bounds.Classify(prof.MeanSize())
	if class == hotspot.ClassNone {
		m.unmanaged++
		return
	}

	if class == hotspot.ClassMicro && m.mach.IQUnit == nil {
		// Micro class enabled without the issue-queue unit: the
		// hotspot has no unit to manage.
		m.unmanaged++
		return
	}

	h := &Hotspot{Prof: prof, Class: class, st: stateTuning}
	switch m.params.Mode {
	case ModeDecoupled:
		switch class {
		case hotspot.ClassMicro:
			h.units = []*ace.Unit{m.mach.IQUnit}
		case hotspot.ClassL1D:
			h.units = []*ace.Unit{m.mach.L1DUnit}
		default:
			h.units = []*ace.Unit{m.mach.L2Unit}
		}
		h.configs = ace.Descending(h.units[0])
	case ModeMonolithic:
		h.units = append([]*ace.Unit{}, m.mach.Units()...)
		h.configs = ace.Combinations(h.units)
	}
	h.meas = make([]measure, len(h.configs))

	m.hotspots = append(m.hotspots, h)
	m.byMethod[prof.ID] = h
	m.class(class).hotspots++

	if db := m.params.WarmStart; db.validFor(m.params.Mode) {
		if saved, ok := db.lookup(prof.Name, class); ok {
			if pos := h.findConfig(saved.Config); pos >= 0 {
				h.bestPos = pos
				h.TunedIPC = saved.TunedIPC
				h.st = stateConfigured
				h.TunedOK = true
				h.TunePasses++
				m.class(class).tuned++
				m.warmStarts++
				m.installConfiguredHooks(h)
				return
			}
		}
	}

	if m.params.StaticHint != nil {
		if cfg, ok := m.params.StaticHint(prof.ID, class, prof.MeanSize()); ok {
			if pos := h.findConfig(cfg); pos >= 0 {
				// The JIT's code analysis replaces the
				// descent entirely (paper Section 6).
				h.bestPos = pos
				h.st = stateConfigured
				h.TunedOK = true
				h.TunePasses++
				m.class(class).tuned++
				m.installConfiguredHooks(h)
				return
			}
		}
	}

	m.installTuningHooks(h)
}

func (h *Hotspot) findConfig(cfg []int) int {
	for i, c := range h.configs {
		if len(c) != len(cfg) {
			continue
		}
		same := true
		for j := range c {
			if c[j] != cfg[j] {
				same = false
				break
			}
		}
		if same {
			return i
		}
	}
	return -1
}

func (m *Manager) installTuningHooks(h *Hotspot) {
	m.aos.SetHooks(h.Prof.ID, &vm.Hooks{
		Entry:         func(*vm.MethodProfile) { m.onEnter(h) },
		Exit:          func(_ *vm.MethodProfile, _ uint64) { m.onExit(h) },
		EntryOverhead: m.params.TuneEntryOverhead,
		ExitOverhead:  m.params.ProfileExitOverhead,
	})
}

func (m *Manager) installConfiguredHooks(h *Hotspot) {
	m.aos.SetHooks(h.Prof.ID, &vm.Hooks{
		Entry:         func(*vm.MethodProfile) { m.onEnter(h) },
		Exit:          func(_ *vm.MethodProfile, _ uint64) { m.onExit(h) },
		EntryOverhead: m.params.ConfigOverhead,
		ExitOverhead:  m.params.SampleCheckOverhead,
	})
}

// appliedSum is the total accepted-reconfiguration count across the
// hotspot's units, used to detect configuration changes that dirty a
// tuning measurement (e.g. a nested hotspot adapting the same unit).
func (h *Hotspot) appliedSum() uint64 {
	var s uint64
	for _, u := range h.units {
		s += u.Stats().Applied
	}
	return s
}

// requestConfig writes the hotspot's units' control registers to the
// given setting vector and reports whether every unit now matches.
func (h *Hotspot) requestConfig(cfg []int, now uint64) (allMatch bool, anyApplied bool) {
	allMatch = true
	for i, u := range h.units {
		if u.Request(cfg[i], now) {
			anyApplied = true
		}
		if u.CurrentIndex() != cfg[i] {
			allMatch = false
		}
	}
	return allMatch, anyApplied
}

// onEnter runs the inserted entry code: tuning code while tuning,
// configuration code once configured.
func (m *Manager) onEnter(h *Hotspot) {
	now := m.mach.Instructions()
	e := invEntry{state: h.st, wanted: -1}
	switch h.st {
	case stateTuning:
		cfg := h.configs[h.next]
		// Measure only invocations that start with the wanted
		// configuration already active: the invocation during
		// which the resize happens runs with a flushed (cold)
		// cache, which at this simulation scale would bias the
		// tuner toward large configurations (DESIGN.md §4).
		if ok, applied := h.requestConfig(cfg, now); ok && !applied {
			e.wanted = h.next
			e.applied = h.appliedSum()
		}
	case stateConfigured:
		if !h.passive {
			if _, applied := h.requestConfig(h.configs[h.bestPos], now); applied {
				m.class(h.Class).reconfigs++
			}
		}
		m.class(h.Class).enterCovered(now)
	}
	e.snap = m.mach.Snapshot()
	h.entryStack = append(h.entryStack, e)
}

// onExit runs the inserted exit code: profiling code while tuning,
// sampling code once configured.
func (m *Manager) onExit(h *Hotspot) {
	if len(h.entryStack) == 0 {
		// An exit without a matching instrumented entry can only
		// happen if hooks were installed mid-invocation, which
		// promotion ordering prevents; be defensive anyway.
		return
	}
	e := h.entryStack[len(h.entryStack)-1]
	h.entryStack = h.entryStack[:len(h.entryStack)-1]

	d := machine.Delta(e.snap, m.mach.Snapshot())
	ipc := d.IPC()
	if d.Instr > 0 && stats.Finite(ipc) {
		h.IPCW.Add(ipc)
	}

	switch e.state {
	case stateTuning:
		m.tuneStep(h, e, d, ipc)
	case stateConfigured:
		m.class(h.Class).exitCovered(m.mach.Instructions())
		h.sinceSample++
		if h.sinceSample >= m.params.SamplePeriod {
			h.sinceSample = 0
			m.aos.ChargeOverhead(m.params.SampleOverhead)
			if h.TunedIPC > 0 && stats.Finite(ipc) && relDiff(ipc, h.TunedIPC) > m.params.RetuneThreshold {
				// Require two consecutive drifting samples
				// before re-tuning so one noisy invocation
				// cannot restart the descent.
				h.driftCount++
				if h.driftCount >= 2 {
					m.retune(h)
				}
			} else {
				h.driftCount = 0
			}
		}
	}
}

// energyPerInstr extracts the configurable units' energy per
// instruction from a snapshot delta. Every configurable unit is
// charged regardless of the hotspot's own subset: an undersized L1D
// shows up as extra L2 access energy, and a slow configuration
// accumulates extra leakage everywhere, so the "most energy-efficient"
// objective prices the costs a per-unit meter would hide.
func (m *Manager) energyPerInstr(h *Hotspot, d machine.Snapshot) float64 {
	if d.Instr == 0 {
		return 0
	}
	return (d.L1DnJ + d.L2nJ + d.IQnJ) / float64(d.Instr)
}

// tuneStep processes one tuning invocation's measurement: record it if
// clean, advance the list index, and finish when every configuration
// has been tested or the performance threshold trips.
func (m *Manager) tuneStep(h *Hotspot, e invEntry, d machine.Snapshot, ipc float64) {
	// If the hotspot transitioned (a nested re-entry finished the
	// descent) while this invocation was in flight, drop the stale
	// measurement.
	if h.st != stateTuning {
		return
	}
	h.attempt++
	clean := e.wanted == h.next && e.applied == h.appliedSum() && d.Instr > 0
	if clean {
		ms := &h.meas[h.next]
		ms.add(ipc, m.energyPerInstr(h, d))
		if ms.count < m.params.MeasureSamples {
			return
		}
		m.class(h.Class).tunings++
		m.emitTuner(telemetry.TypeTuneStep, h, telemetry.TunerEvent{
			Config: h.configValues(h.next), IPC: ms.ipc(), EPI: ms.epi(),
		})
		ref := h.meas[0]
		failed := ref.valid() && h.next > 0 && m.gateFails(ref, *ms)
		// The descent is grouped by the innermost (lowest-overhead)
		// unit's settings, mirroring the temporal tuner: a failure
		// inside a group skips its remaining (smaller) settings; a
		// failure at a group head means the outer setting itself is
		// too small — the threshold is reached. With a single unit
		// the group spans the whole list, so this is the paper's
		// plain "until the performance threshold is reached".
		groupSize := h.units[len(h.units)-1].NumSettings()
		switch {
		case !failed:
			h.next++
		case h.next%groupSize == 0:
			h.next = len(h.configs)
		default:
			h.next = (h.next/groupSize + 1) * groupSize
		}
		if h.next >= len(h.configs) {
			m.finishTuning(h, true)
		}
		return
	}
	if m.params.MaxTuneAttempts > 0 && h.attempt >= m.params.MaxTuneAttempts {
		// Give up the descent; configure with what was measured.
		m.finishTuning(h, false)
	}
}

// finishTuning selects the most energy-efficient configuration among
// the valid measurements whose IPC stays within PerfThreshold of the
// largest configuration's, then swaps the inserted code (paper
// Section 3.3).
func (m *Manager) finishTuning(h *Hotspot, completed bool) {
	ref := h.meas[0]
	best := -1
	var bestEPI float64
	for i, ms := range h.meas {
		if !ms.valid() {
			continue
		}
		if ref.valid() && m.gateFails(ref, ms) {
			continue
		}
		if best < 0 || ms.epi() < bestEPI {
			best = i
			bestEPI = ms.epi()
		}
	}
	if best < 0 {
		// Nothing measured cleanly: nested hotspots already manage
		// this unit, so inherit their choices instead of fighting
		// them with our own requests.
		best = 0
		h.passive = true
	}
	h.bestPos = best
	h.TunedIPC = h.meas[best].ipc()
	h.st = stateConfigured
	h.TunePasses++
	if completed && !h.TunedOK {
		h.TunedOK = true
		m.class(h.Class).tuned++
	}
	m.emitTuner(telemetry.TypeTuned, h, telemetry.TunerEvent{
		Config: h.configValues(best), IPC: h.TunedIPC, EPI: h.meas[best].epi(),
		Passive: h.passive, Completed: completed,
	})
	m.installConfiguredHooks(h)
}

// gateFails reports whether a configuration's measured IPC falls
// outside the performance threshold relative to the largest
// configuration. The threshold is widened by the measurements'
// standard errors so that noise (e.g. pollution from co-resident
// probe structures) does not flip decisions around the 2% line.
func (m *Manager) gateFails(ref, ms measure) bool {
	widen := 2 * (ref.relStderr() + ms.relStderr())
	if widen > 0.04 {
		widen = 0.04
	}
	tol := m.params.PerfThreshold + widen
	return ms.ipc() < (1-tol)*ref.ipc()
}

// retune re-enters the tuning state after the sampling code detects a
// behaviour change (paper Section 3.3; rare by design). The
// oscillation watchdog bounds it: a hotspot that keeps drifting —
// a workload flipping behaviour every sample window — would otherwise
// thrash the hardware with endless descents, so once its re-tunes
// reach Params.MaxRetunes it degrades to the full-size safe
// configuration instead.
func (m *Manager) retune(h *Hotspot) {
	h.Retunes++
	if m.params.MaxRetunes > 0 && h.Retunes >= m.params.MaxRetunes {
		m.degrade(h)
		return
	}
	m.emitTuner(telemetry.TypeRetune, h, telemetry.TunerEvent{})
	h.st = stateTuning
	h.next = 0
	h.attempt = 0
	h.driftCount = 0
	h.passive = false
	for i := range h.meas {
		h.meas[i] = measure{}
	}
	m.installTuningHooks(h)
}

// degrade pins an oscillating hotspot to the full-size safe
// configuration (configs[0], every unit at its largest setting),
// disables its drift sampling, and emits one TypeDegraded event. The
// run continues — graceful degradation trades the hotspot's energy
// savings for stability.
func (m *Manager) degrade(h *Hotspot) {
	if h.Degraded {
		return
	}
	h.Degraded = true
	h.st = stateConfigured
	h.bestPos = 0
	h.passive = false
	h.driftCount = 0
	// TunedIPC 0 disables the configured-state drift comparison, so
	// a degraded hotspot can never re-enter tuning.
	h.TunedIPC = 0
	m.degraded++
	if m.sink != nil {
		m.sink.Emit(telemetry.Event{
			Type:  telemetry.TypeDegraded,
			Instr: m.mach.Instructions(),
			Degraded: &telemetry.DegradedEvent{
				Scope:   "hotspot",
				Method:  h.Prof.Name,
				Class:   h.Class.String(),
				Retunes: h.Retunes,
				Config:  h.configValues(0),
			},
		})
	}
	// Pin immediately; later entries re-request through the
	// configured hooks if the interval guard holds this one back.
	h.requestConfig(h.configs[0], m.mach.Instructions())
	m.installConfiguredHooks(h)
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// ClassReport is one size class's aggregate results (Table 6 rows).
type ClassReport struct {
	Hotspots  int
	Tuned     int
	Tunings   uint64
	Reconfigs uint64
	// Coverage is the fraction of all dynamic instructions executed
	// inside configured hotspots of this class.
	Coverage float64
}

// Report is the framework's end-of-run accounting for Tables 5 and 6.
type Report struct {
	TotalInstr uint64

	// Micro is zero-valued unless the issue-queue unit and the
	// micro size class are enabled.
	Micro ClassReport
	L1D   ClassReport
	L2    ClassReport

	// Unmanaged counts promoted methods below the L1D size class.
	Unmanaged int

	// TunedPct is tuned/classified hotspots (Table 5 "% of tuned
	// hotspots").
	TunedPct float64

	// PerHotspotIPCCoV is the mean over classified hotspots of each
	// hotspot's per-invocation IPC CoV; InterHotspotIPCCoV is the
	// CoV of the hotspots' mean IPCs (Table 5).
	PerHotspotIPCCoV   float64
	InterHotspotIPCCoV float64

	// Retunes counts sampling-triggered re-tunings across hotspots.
	Retunes int

	// Degraded counts hotspots tripped by the oscillation watchdog
	// and pinned to the full-size safe configuration.
	Degraded int

	// WarmStarts counts hotspots configured directly from a
	// previous run's database (Params.WarmStart).
	WarmStarts int
}

// Report computes the aggregate accounting. Call it after the engine
// has halted (the engine's halt unwinding closes all coverage spans).
func (m *Manager) Report() Report {
	r := Report{
		TotalInstr: m.mach.Instructions(),
		Unmanaged:  m.unmanaged,
		Degraded:   m.degraded,
		WarmStarts: m.warmStarts,
	}
	r.Micro = m.classReport(&m.micro)
	r.L1D = m.classReport(&m.l1d)
	r.L2 = m.classReport(&m.l2)

	classified := r.Micro.Hotspots + r.L1D.Hotspots + r.L2.Hotspots
	if classified > 0 {
		r.TunedPct = float64(r.Micro.Tuned+r.L1D.Tuned+r.L2.Tuned) / float64(classified)
	}

	var perCoV stats.Welford
	var means []float64
	for _, h := range m.hotspots {
		r.Retunes += h.Retunes
		if h.IPCW.N() >= 2 {
			perCoV.Add(h.IPCW.CoV())
		}
		if h.IPCW.N() >= 1 {
			means = append(means, h.IPCW.Mean())
		}
	}
	r.PerHotspotIPCCoV = perCoV.Mean()
	r.InterHotspotIPCCoV = stats.CoV(means)
	return r
}

func (m *Manager) classReport(c *classCounters) ClassReport {
	rep := ClassReport{
		Hotspots:  c.hotspots,
		Tuned:     c.tuned,
		Tunings:   c.tunings,
		Reconfigs: c.reconfigs,
	}
	covered := c.covered
	if c.depth > 0 {
		// A budget-limited run can stop mid-invocation, leaving
		// the outermost span open; count it up to now. (Runs to
		// completion never hit this: the engine's halt unwinding
		// fires every exit.)
		covered += m.mach.Instructions() - c.spanStart
	}
	if total := m.mach.Instructions(); total > 0 {
		rep.Coverage = float64(covered) / float64(total)
	}
	return rep
}
