package core

import (
	"testing"

	"acedo/internal/hotspot"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
)

// newIQEnv builds the three-CU environment: machine with the issue
// queue, bounds with the micro class.
func newIQEnv(t *testing.T, prog *program.Program) *env {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10).WithIQ())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(10)
	params.Bounds = params.Bounds.WithMicro(10)
	aos := vm.NewAOS(testVMParams(), mach, prog)
	mgr, err := NewManager(params, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	return &env{prog: prog, mach: mach, aos: aos, mgr: mgr, eng: eng}
}

// computeLeafProgram builds main calling a pure-ALU leaf of roughly
// `iters`×6 instructions n times — a micro-class hotspot that needs no
// memory-level parallelism and should shrink the window.
func computeLeafProgram(iters, n int64) *program.Program {
	b := program.NewBuilder("micro")
	b.SetMemWords(64)
	main := b.NewMethod("main")
	leaf := b.NewMethod("alu")

	le := leaf.NewBlock()
	le.Const(4, 3)
	le.Const(5, 0)
	le.Const(6, iters)
	ll := leaf.NewBlock()
	ll.Mul(4, 4, 4)
	ll.XorI(4, 4, 0x55)
	ll.AddI(5, 5, 1)
	ll.CmpLt(7, 5, 6)
	ll.Br(7, ll.Index())
	leaf.NewBlock().Ret(4)

	me := main.NewBlock()
	me.Const(16, 0)
	me.Const(17, n)
	ml := main.NewBlock()
	ml.Call(15, leaf.ID())
	ml.AddI(16, 16, 1)
	ml.CmpLt(18, 16, 17)
	ml.Br(18, ml.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

func TestMicroClassManagesIssueQueue(t *testing.T) {
	// ~200×5 = 1K instructions per invocation: micro class.
	e := newIQEnv(t, computeLeafProgram(200, 600))
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	hs := e.mgr.Hotspots()
	if len(hs) != 1 {
		t.Fatalf("hotspots = %d, want 1", len(hs))
	}
	h := hs[0]
	if h.Class != hotspot.ClassMicro {
		t.Fatalf("class = %v, want micro", h.Class)
	}
	if len(h.Units()) != 1 || h.Units()[0] != e.mach.IQUnit {
		t.Error("micro hotspot must manage exactly the IQ unit")
	}
	if h.State() != "configured" || !h.TunedOK {
		t.Fatalf("state = %s tuned = %v", h.State(), h.TunedOK)
	}
	// Pure ALU code does not need the window: the tuner must shrink
	// it to the smallest setting.
	if got := e.mach.IQUnit.Setting(h.BestConfig()[0]); got != 16 {
		t.Errorf("chosen window = %d entries, want 16 for ALU-only code", got)
	}
	rep := e.mgr.Report()
	if rep.Micro.Hotspots != 1 || rep.Micro.Tuned != 1 {
		t.Errorf("micro report = %+v", rep.Micro)
	}
	if rep.Micro.Coverage <= 0 {
		t.Error("micro coverage should be positive")
	}
}

func TestMicroClassWithoutIQUnitUnmanaged(t *testing.T) {
	// Micro bounds enabled but the machine has no IQ unit: the
	// hotspot must be left unmanaged, not crash.
	mach, err := machine.New(machine.PaperConfig(10)) // no IQ
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(10)
	params.Bounds = params.Bounds.WithMicro(10)
	prog := computeLeafProgram(200, 300)
	aos := vm.NewAOS(testVMParams(), mach, prog)
	mgr, err := NewManager(params, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Hotspots()) != 0 || mgr.Unmanaged() != 1 {
		t.Errorf("hotspots=%d unmanaged=%d, want 0/1", len(mgr.Hotspots()), mgr.Unmanaged())
	}
}

func TestMonolithicWithThreeCUsUses64Combos(t *testing.T) {
	prog := leafProgram(512, 2, 50)
	mach, err := machine.New(machine.PaperConfig(10).WithIQ())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams(10)
	params.Mode = ModeMonolithic
	aos := vm.NewAOS(testVMParams(), mach, prog)
	mgr, err := NewManager(params, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(mgr.Hotspots()) != 1 {
		t.Fatalf("hotspots = %d", len(mgr.Hotspots()))
	}
	if got := len(mgr.Hotspots()[0].configs); got != 64 {
		t.Errorf("monolithic 3-CU configs = %d, want 64", got)
	}
}

func TestBoundsWithMicro(t *testing.T) {
	b := hotspot.PaperBounds(10).WithMicro(10)
	if b.MicroMin != 500 {
		t.Errorf("MicroMin = %v, want 500", b.MicroMin)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := b.Classify(1000); got != hotspot.ClassMicro {
		t.Errorf("Classify(1000) = %v, want micro", got)
	}
	if got := b.Classify(400); got != hotspot.ClassNone {
		t.Errorf("Classify(400) = %v, want none", got)
	}
	bad := b
	bad.MicroMin = b.L1DMin + 1
	if bad.Validate() == nil {
		t.Error("MicroMin above L1DMin must be invalid")
	}
}
