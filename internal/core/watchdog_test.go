package core

import (
	"testing"

	"acedo/internal/program"
	"acedo/internal/telemetry"
)

// oscillatingProgram builds a workload whose leaf flips every segment
// between a 2 KB walk (fits any cache: high IPC) and a 128 KB walk
// (thrashes even the largest 64 KB L1D: low IPC under *every*
// configuration). No configuration reconciles the two behaviours, so
// the configured-state sampler detects drift at every segment
// boundary and keeps re-entering tuning — the pathological
// oscillation the watchdog exists for.
func oscillatingProgram(segments, perSegment int64) *program.Program {
	b := program.NewBuilder("oscillate")
	const boundCell, repsCell = 0, 1
	b.SetMemWords(16384 + 128)
	main := b.NewMethod("main")
	leaf := b.NewMethod("leaf")

	le := leaf.NewBlock()
	le.Const(4, 128) // data base
	le.Const(13, boundCell)
	le.Load(6, 13, 0) // walk bound from memory
	le.Const(14, repsCell)
	le.Load(12, 14, 0) // rep count from memory
	le.Const(5, 0)
	le.Const(11, 0)
	rep := leaf.NewBlock()
	rep.Const(5, 0)
	loop := leaf.NewBlock()
	loop.Add(7, 4, 5)
	loop.Load(8, 7, 0)
	loop.Add(9, 9, 8)
	loop.AddI(5, 5, 1)
	loop.CmpLt(10, 5, 6)
	loop.Br(10, loop.Index())
	tl := leaf.NewBlock()
	tl.AddI(11, 11, 1)
	tl.CmpLt(10, 11, 12)
	tl.Br(10, rep.Index())
	leaf.NewBlock().Ret(9)

	me := main.NewBlock()
	me.Const(13, boundCell)
	me.Const(14, repsCell)
	me.Const(20, 0) // segment counter
	me.Const(21, segments)
	seg := main.NewBlock()
	seg.AndI(25, 20, 1)     // seg % 2
	seg.MulI(22, 25, 16128) // 0 or 16128 words
	seg.AddI(22, 22, 256)   // bound: 256 (2 KB) or 16384 (128 KB)
	seg.Store(22, 13, 0)
	seg.MulI(26, 25, -3)
	seg.AddI(26, 26, 4) // reps: 4 (small walk) or 1 (big walk)
	seg.Store(26, 14, 0)
	seg.Const(16, 0)
	seg.Const(17, perSegment)
	inner := main.NewBlock()
	inner.Call(15, leaf.ID())
	inner.AddI(16, 16, 1)
	inner.CmpLt(18, 16, 17)
	inner.Br(18, inner.Index())
	tail := main.NewBlock()
	tail.AddI(20, 20, 1)
	tail.CmpLt(18, 20, 21)
	tail.Br(18, seg.Index())
	main.NewBlock().Halt()
	b.SetEntry(main.ID())
	return b.MustBuild()
}

// TestChaosRetuneWatchdogDegrades is the oscillation-watchdog contract:
// a workload that keeps flipping behaviour must trip MaxRetunes, pin
// the hotspot to the full-size safe configuration, and emit exactly
// one TypeDegraded event — not one per further oscillation.
func TestChaosRetuneWatchdogDegrades(t *testing.T) {
	p := DefaultParams(10)
	p.RetuneThreshold = 0.05
	p.SamplePeriod = 8
	p.MaxRetunes = 2
	e := newEnv(t, oscillatingProgram(8, 150), p)
	var buf telemetry.Buffer
	e.mgr.SetSink(&buf)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}

	hs := e.mgr.Hotspots()
	if len(hs) != 1 {
		t.Fatalf("hotspots = %d, want 1", len(hs))
	}
	h := hs[0]
	if !h.Degraded {
		t.Fatalf("watchdog did not trip: retunes=%d", h.Retunes)
	}
	if h.Retunes < p.MaxRetunes {
		t.Errorf("retunes = %d, want ≥ MaxRetunes (%d)", h.Retunes, p.MaxRetunes)
	}
	if h.State() != "configured" {
		t.Errorf("degraded hotspot state = %s, want configured", h.State())
	}
	if got := e.mach.L1DUnit.Setting(h.BestConfig()[0]); got != 64*1024 {
		t.Errorf("pinned L1D = %d, want the full-size 64K", got)
	}
	if got := buf.Count(telemetry.TypeDegraded); got != 1 {
		t.Errorf("TypeDegraded events = %d, want exactly 1", got)
	}
	for _, ev := range buf.Events() {
		if ev.Type != telemetry.TypeDegraded {
			continue
		}
		if ev.Degraded.Scope != "hotspot" || ev.Degraded.Method != "leaf" {
			t.Errorf("degraded event = %+v, want scope=hotspot method=leaf", ev.Degraded)
		}
		if ev.Degraded.Retunes != p.MaxRetunes {
			t.Errorf("degraded at retunes=%d, want %d", ev.Degraded.Retunes, p.MaxRetunes)
		}
	}
	if rep := e.mgr.Report(); rep.Degraded != 1 {
		t.Errorf("report degraded = %d, want 1", rep.Degraded)
	}
}

// TestChaosWatchdogDisabled pins the zero value: MaxRetunes 0 keeps
// the pre-watchdog behaviour — unlimited retunes, no degradation.
func TestChaosWatchdogDisabled(t *testing.T) {
	p := DefaultParams(10)
	p.RetuneThreshold = 0.05
	p.SamplePeriod = 8
	p.MaxRetunes = 0
	e := newEnv(t, oscillatingProgram(8, 150), p)
	var buf telemetry.Buffer
	e.mgr.SetSink(&buf)
	if err := e.eng.Run(0); err != nil {
		t.Fatal(err)
	}
	h := e.mgr.Hotspots()[0]
	if h.Degraded {
		t.Error("watchdog disabled, hotspot must not degrade")
	}
	if h.Retunes < 2 {
		t.Errorf("retunes = %d, want the oscillation to keep re-tuning", h.Retunes)
	}
	if got := buf.Count(telemetry.TypeDegraded); got != 0 {
		t.Errorf("TypeDegraded events = %d, want 0", got)
	}
}
