package machine

import (
	"reflect"
	"testing"
)

// TestObservedMatchesPlain: the Observed variants perform exactly the
// same simulation as their plain counterparts — they only additionally
// report the fixed-hardware outcomes.
func TestObservedMatchesPlain(t *testing.T) {
	a, b := newMach(t), newMach(t)
	drive := func(m *Machine, observed bool) {
		for i := 0; i < 4; i++ {
			// Line addresses are 64 B-aligned byte addresses.
			first := uint64(i * 7 * 64)
			last := first + 3*64
			if observed {
				m.FetchLinesObserved(first, last)
			} else {
				m.FetchLines(first, last)
			}
			m.IssueBatch(12)
			for j := 0; j < 6; j++ {
				addr := uint64(i*100 + j*17)
				if observed {
					m.DataObserved(addr, j%2 == 0)
				} else {
					m.Data(addr, j%2 == 0)
				}
			}
			m.CondBranch(uint64(i*64), i%2 == 0)
		}
	}
	drive(a, false)
	drive(b, true)
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Errorf("observed run diverged:\nplain    = %+v\nobserved = %+v", a.Snapshot(), b.Snapshot())
	}
	if !reflect.DeepEqual(a.Timing.Breakdown(), b.Timing.Breakdown()) {
		t.Errorf("timing diverged:\nplain    = %+v\nobserved = %+v", a.Timing.Breakdown(), b.Timing.Breakdown())
	}
}

// TestReplayMatchesDirect: replaying the outcomes captured by the
// Observed variants into a fresh machine reproduces the direct run's
// snapshot and timing exactly — the machine-level core of the
// record-once / replay-many fast path.
func TestReplayMatchesDirect(t *testing.T) {
	type fetch struct {
		first, last       uint64
		tlbMask, missMask uint64
	}
	type data struct {
		addr    uint64
		write   bool
		tlbMiss bool
	}
	type branch struct{ correct bool }

	direct := newMach(t)
	var fetches []fetch
	var datas []data
	var branches []branch
	for i := 0; i < 8; i++ {
		first := uint64(i * 5 * 64)
		last := first + uint64(i%3)*64
		tlb, miss, ok := direct.FetchLinesObserved(first, last)
		if !ok {
			t.Fatalf("block %d too wide for masks", i)
		}
		fetches = append(fetches, fetch{first, last, tlb, miss})
		direct.IssueBatch(uint64(10 + i))
		for j := 0; j < 5; j++ {
			addr := uint64(i*200 + j*13)
			write := (i+j)%3 == 0
			datas = append(datas, data{addr, write, direct.DataObserved(addr, write)})
		}
		branches = append(branches, branch{direct.CondBranch(uint64(i*64), i%2 == 0)})
	}

	replay := newMach(t)
	di, bi := 0, 0
	for i, f := range fetches {
		replay.ReplayFetchLines(f.first, f.last, f.tlbMask, f.missMask)
		replay.IssueBatch(uint64(10 + i))
		for j := 0; j < 5; j++ {
			d := datas[di]
			di++
			replay.ReplayData(d.addr, d.write, d.tlbMiss)
		}
		replay.ReplayBranch(branches[bi].correct)
		bi++
	}

	if !reflect.DeepEqual(direct.Snapshot(), replay.Snapshot()) {
		t.Errorf("replay diverged:\ndirect = %+v\nreplay = %+v", direct.Snapshot(), replay.Snapshot())
	}
	if !reflect.DeepEqual(direct.Timing.Breakdown(), replay.Timing.Breakdown()) {
		t.Errorf("timing diverged:\ndirect = %+v\nreplay = %+v", direct.Timing.Breakdown(), replay.Timing.Breakdown())
	}
}

// TestColdFetchMasks: on a fresh machine the reconstructed cold-start
// outcomes must equal what FetchLinesObserved actually observes.
func TestColdFetchMasks(t *testing.T) {
	for _, span := range []struct{ first, last uint64 }{
		{0, 0}, {0, 3 * 64}, {5 * 64, 12 * 64}, {60 * 64, 68 * 64}, {127 * 64, 130 * 64},
	} {
		pred := newMach(t)
		wantTLB, wantMiss, wantOK := pred.ColdFetchMasks(span.first, span.last)
		obs := newMach(t)
		gotTLB, gotMiss, gotOK := obs.FetchLinesObserved(span.first, span.last)
		if wantTLB != gotTLB || wantMiss != gotMiss || wantOK != gotOK {
			t.Errorf("span %+v: ColdFetchMasks = (%x,%x,%v), observed (%x,%x,%v)",
				span, wantTLB, wantMiss, wantOK, gotTLB, gotMiss, gotOK)
		}
	}
}
