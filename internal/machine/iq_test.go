package machine

import (
	"testing"
)

func newIQMach(t *testing.T) *Machine {
	t.Helper()
	m, err := New(PaperConfig(10).WithIQ())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIQDisabledByDefault(t *testing.T) {
	m := newMach(t)
	if m.IQUnit != nil || m.MIQ != nil {
		t.Error("IQ must be disabled without Config.IQSizes")
	}
	if len(m.Units()) != 2 {
		t.Errorf("Units = %d, want 2", len(m.Units()))
	}
	if m.Snapshot().IQnJ != 0 {
		t.Error("IQ energy must be zero when disabled")
	}
}

func TestIQEnabled(t *testing.T) {
	m := newIQMach(t)
	if m.IQUnit == nil || m.MIQ == nil {
		t.Fatal("IQ unit missing")
	}
	us := m.Units()
	if len(us) != 3 || us[2].Name() != "IQ" {
		t.Errorf("Units = %v", us)
	}
	if m.IQUnit.Current() != 64 {
		t.Errorf("initial window = %d, want 64", m.IQUnit.Current())
	}
	if m.IQUnit.Interval() != 1000 {
		t.Errorf("IQ interval = %d, want 1000 at scale 10", m.IQUnit.Interval())
	}
}

func TestIQEnergyChargedPerInstruction(t *testing.T) {
	m := newIQMach(t)
	m.Issue(1000)
	snap := m.Snapshot()
	if snap.IQnJ <= 0 {
		t.Error("issuing instructions must charge IQ energy")
	}
}

func TestIQResizeAdjustsWindowModel(t *testing.T) {
	m := newIQMach(t)
	m.Issue(10_000)
	if !m.IQUnit.Request(0, m.Instructions()) {
		t.Fatal("IQ resize rejected")
	}
	if got := m.Timing.WindowMult(); got <= 1 {
		t.Errorf("window multiplier = %v, want >1 at 16 entries", got)
	}
	// Misses now cost more cycles.
	before := m.Timing.Breakdown().StallCycles
	m.Data(1<<20, false) // L1D+L2 miss
	small := m.Timing.Breakdown().StallCycles - before

	m2 := newIQMach(t)
	m2.Issue(10_000)
	before2 := m2.Timing.Breakdown().StallCycles
	m2.Data(1<<20, false)
	full := m2.Timing.Breakdown().StallCycles - before2

	if small <= full {
		t.Errorf("miss at 16 entries cost %d cycles, full window %d: want more", small, full)
	}
}

func TestIQSmallerWindowSavesEnergy(t *testing.T) {
	// Same activity at 16 entries must cost less IQ energy than at
	// 64 (dynamic + leakage both scale with entries).
	run := func(resize bool) float64 {
		m := newIQMach(t)
		m.Issue(10_000)
		if resize {
			if !m.IQUnit.Request(0, m.Instructions()) {
				t.Fatal("resize rejected")
			}
		}
		m.Issue(1_000_000)
		return m.Snapshot().IQnJ
	}
	if small, full := run(true), run(false); small >= full {
		t.Errorf("IQ energy at 16 entries (%.0f nJ) not below 64 entries (%.0f nJ)", small, full)
	}
}

func TestIQGuardEnforcesInterval(t *testing.T) {
	m := newIQMach(t)
	m.Issue(5000)
	if !m.IQUnit.Request(0, m.Instructions()) {
		t.Fatal("first resize rejected")
	}
	m.Issue(100) // within the 1000-instruction interval
	if m.IQUnit.Request(3, m.Instructions()) {
		t.Error("resize within the reconfiguration interval must be ignored")
	}
	m.Issue(2000)
	if !m.IQUnit.Request(3, m.Instructions()) {
		t.Error("resize after the interval should be accepted")
	}
	if m.Timing.WindowMult() != 1 {
		t.Errorf("window multiplier at full size = %v, want 1", m.Timing.WindowMult())
	}
}
