package machine

import (
	"testing"

	"acedo/internal/fault"
)

// reconfigEvent records one OnReconfigure callback.
type reconfigEvent struct {
	unit string
	size int
}

// armed builds a machine with the given fault plan installed and an
// OnReconfigure recorder that asserts the resize completed before the
// callback fired.
func armed(t *testing.T, plan *fault.Plan) (*Machine, *[]reconfigEvent) {
	t.Helper()
	m := newMach(t)
	if plan != nil {
		inj, err := fault.New(plan, "test", "test")
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaults(inj)
	}
	events := &[]reconfigEvent{}
	m.OnReconfigure = func(unit string, size int, nowInstr uint64) {
		if unit == "L1D" && m.L1D.SizeBytes() != size {
			t.Errorf("OnReconfigure(L1D, %d) fired but cache is %d bytes — callback before resize",
				size, m.L1D.SizeBytes())
		}
		*events = append(*events, reconfigEvent{unit, size})
	}
	// Step past the reconfiguration-interval hardware guard.
	m.Issue(2 * m.cfg.L1DReconfigInterval)
	return m, events
}

// TestChaosReconfigureAfterResize pins the callback ordering contract:
// OnReconfigure announces a *completed* resize, so the recorder above
// must observe the cache already at its new size.
func TestChaosReconfigureAfterResize(t *testing.T) {
	m, events := armed(t, nil)
	if !m.L1DUnit.Request(0, m.Instructions()) {
		t.Fatal("unfaulted request refused")
	}
	if len(*events) != 1 || (*events)[0].unit != "L1D" {
		t.Fatalf("events = %v, want one L1D resize", *events)
	}
}

// TestChaosRejectedRequestIsSilent: a gate rejection leaves the
// configuration untouched and must not emit OnReconfigure.
func TestChaosRejectedRequestIsSilent(t *testing.T) {
	m, events := armed(t, &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointUnitRequest, Kind: fault.KindReject},
	}})
	before := m.L1D.SizeBytes()
	if m.L1DUnit.Request(0, m.Instructions()) {
		t.Fatal("rejected request reported success")
	}
	if m.L1D.SizeBytes() != before {
		t.Errorf("L1D size changed to %d under reject", m.L1D.SizeBytes())
	}
	if len(*events) != 0 {
		t.Errorf("events = %v, want none", *events)
	}
	if got := m.L1DUnit.Stats().Rejected; got != 1 {
		t.Errorf("rejected count = %d, want 1", got)
	}
}

// TestChaosDeferredRequestCommitsLater: a deferred request emits
// nothing at first; the unit re-issues it at the next Request call and
// only then does the resize — and its OnReconfigure — happen.
func TestChaosDeferredRequestCommitsLater(t *testing.T) {
	m, events := armed(t, &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointUnitRequest, Kind: fault.KindDefer, Count: 1},
	}})
	if m.L1DUnit.Request(0, m.Instructions()) {
		t.Fatal("deferred request reported success")
	}
	if len(*events) != 0 {
		t.Fatalf("events after deferral = %v, want none", *events)
	}
	m.Issue(m.cfg.L1DReconfigInterval)
	m.L1DUnit.Request(1, m.Instructions())
	if len(*events) == 0 {
		t.Fatal("deferred resize never committed")
	}
	if (*events)[0].size != m.L1DUnit.Setting(0) {
		t.Errorf("first commit = %d bytes, want the deferred target %d",
			(*events)[0].size, m.L1DUnit.Setting(0))
	}
}

// TestChaosResizeStallCost: an injected drain stall charges exactly its
// extra cycles on top of the normal reconfiguration cost.
func TestChaosResizeStallCost(t *testing.T) {
	const extra = 1234
	clean, _ := armed(t, nil)
	stalled, _ := armed(t, &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointResize, Kind: fault.KindStall, StallCycles: extra},
	}})
	c0, s0 := clean.Cycles(), stalled.Cycles()
	clean.L1DUnit.Request(0, clean.Instructions())
	stalled.L1DUnit.Request(0, stalled.Instructions())
	cd, sd := clean.Cycles()-c0, stalled.Cycles()-s0
	if sd != cd+extra {
		t.Errorf("stalled resize cost %d cycles, clean %d: want exactly +%d", sd, cd, extra)
	}
}
