// Package machine assembles the simulated hardware platform of the
// paper's Table 2: a 4-wide core with a 2K-entry combined branch
// predictor, a fixed 64 KB L1 I-cache, a size-adaptable L1 D-cache
// (64/32/16/8 KB, 100 K-instruction reconfiguration interval), a
// size-adaptable unified L2 (1 M/512 K/256 K/128 K, 1 M-instruction
// interval), 128-entry fully-associative I/D TLBs, and Wattch-style
// energy meters on the configurable units. An optional third unit —
// the 16/32/48/64-entry issue queue (Config.WithIQ) — models the
// paper's in-progress extension CUs.
//
// The execution engine drives the machine with architectural events
// (Issue, Fetch, Data, CondBranch); the ACE managers drive it through
// the ace.Unit control registers (L1DUnit, L2Unit, IQUnit).
package machine

import (
	"fmt"

	"acedo/internal/ace"
	"acedo/internal/cache"
	"acedo/internal/cpu"
	"acedo/internal/fault"
	"acedo/internal/isa"
	"acedo/internal/power"
)

const kb = 1024

// Instruction addresses are 4 bytes apart and live in a region
// disjoint from data so the unified L2 keeps I- and D-blocks apart.
// The geometry is owned by package isa so the program sealer can
// precompute each block's I-line range without importing the machine.
const (
	instrBytes = isa.InstrBytes
	iBase      = isa.IBase
)

// Config parameterises the machine. ScaledConfig and PaperConfig build
// the standard instances.
type Config struct {
	L1DSizes []int // ascending; largest is the baseline size
	L2Sizes  []int

	// L1DWays and L2Ways set the configurable caches' associativity
	// (0 = the paper's 2-way L1D / 4-way L2). Associativity is fixed
	// hardware — resizing changes the set count only — but the widened
	// search space of internal/optimize explores alternative fixed
	// choices, so it is a construction parameter here.
	L1DWays int
	L2Ways  int

	L1ISize int

	// IQSizes, when non-nil, enables the third configurable unit —
	// the issue queue / instruction window (entry counts,
	// ascending; the largest is the baseline 64-entry window of
	// Table 2). Nil reproduces the paper's two-CU evaluation.
	IQSizes []int

	L1DReconfigInterval uint64 // instructions
	L2ReconfigInterval  uint64
	IQReconfigInterval  uint64

	TLBEntries int
	PageBytes  int

	Timing cpu.TimingConfig
}

// PaperConfig returns the paper's Table 2 configuration, with the
// reconfiguration intervals divided by scaleDiv (1 reproduces the
// paper exactly; the default experiments use 10 — see DESIGN.md §4).
func PaperConfig(scaleDiv uint64) Config {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	return Config{
		L1DSizes:            []int{8 * kb, 16 * kb, 32 * kb, 64 * kb},
		L2Sizes:             []int{128 * kb, 256 * kb, 512 * kb, 1024 * kb},
		L1ISize:             64 * kb,
		L1DReconfigInterval: 100_000 / scaleDiv,
		L2ReconfigInterval:  1_000_000 / scaleDiv,
		IQReconfigInterval:  10_000 / scaleDiv,
		TLBEntries:          128,
		PageBytes:           4096,
		Timing:              cpu.DefaultTimingConfig(),
	}
}

// WithIQ returns the configuration with the issue-queue unit enabled
// at the standard 16/32/48/64-entry settings.
func (c Config) WithIQ() Config {
	c.IQSizes = []int{16, 32, 48, 64}
	return c
}

// Machine is the simulated hardware. All fields are owned by the
// single simulation goroutine; the machine is not safe for concurrent
// use.
type Machine struct {
	cfg Config

	L1I *cache.Cache
	L1D *cache.Cache
	L2  *cache.Cache

	ITLB *cache.TLB
	DTLB *cache.TLB

	Pred   *cpu.Predictor
	Timing *cpu.Timing

	ML1I *power.Meter
	ML1D *power.Meter
	ML2  *power.Meter
	MIQ  *power.Meter // nil unless the IQ unit is enabled

	// L1DUnit and L2Unit are the control registers for the two
	// configurable caches (paper Section 3.4); IQUnit is the
	// optional third unit (nil unless Config.IQSizes is set).
	L1DUnit *ace.Unit
	L2Unit  *ace.Unit
	IQUnit  *ace.Unit

	iqBase int // largest window size

	instructions uint64
	booted       bool

	// faults, when non-nil, injects resize stalls (the request-level
	// faults live in the units' gates; see SetFaults).
	faults *fault.Injector

	// OnReconfigure, when set, observes every accepted
	// configuration change (for tracing/visualization; it must not
	// call back into the machine). It fires only after the resize
	// and the meter switch have succeeded, so telemetry never
	// records a reconfiguration that did not happen.
	OnReconfigure func(unit string, setting int, instr uint64)
}

// validLadder checks every size in a resizable cache's setting list
// against its fixed geometry, so an invalid small setting fails at
// construction instead of panicking at the first resize.
func validLadder(name string, sizes []int, blockBytes, ways int) error {
	prev := 0
	for _, size := range sizes {
		if size <= prev {
			return fmt.Errorf("machine: %s sizes must be ascending", name)
		}
		prev = size
		lineBytes := blockBytes * ways
		if size%lineBytes != 0 {
			return fmt.Errorf("machine: %s size %d not a multiple of ways×block (%d)", name, size, lineBytes)
		}
		if sets := size / lineBytes; sets&(sets-1) != 0 {
			return fmt.Errorf("machine: %s size %d yields non-power-of-two set count %d", name, size, sets)
		}
	}
	return nil
}

// ways returns the configured associativities with the paper defaults
// (2-way L1D, 4-way L2) filled in for zero fields.
func (c Config) ways() (l1d, l2 int) {
	l1d, l2 = c.L1DWays, c.L2Ways
	if l1d == 0 {
		l1d = 2
	}
	if l2 == 0 {
		l2 = 4
	}
	return l1d, l2
}

// ValidateConfig checks a configuration's resizable-cache geometry —
// non-empty ascending size ladders whose every setting is a line
// multiple with a power-of-two set count under the configured
// associativity — without building the machine. New performs the same
// checks; callers enumerating candidate configurations (e.g.
// internal/optimize's space validation) use this to fail early.
func ValidateConfig(cfg Config) error {
	if len(cfg.L1DSizes) == 0 || len(cfg.L2Sizes) == 0 {
		return fmt.Errorf("machine: missing cache size lists")
	}
	l1dWays, l2Ways := cfg.ways()
	if err := validLadder("L1D", cfg.L1DSizes, 64, l1dWays); err != nil {
		return err
	}
	return validLadder("L2", cfg.L2Sizes, 128, l2Ways)
}

// New constructs a machine at the baseline (largest) configuration.
func New(cfg Config) (*Machine, error) {
	if err := ValidateConfig(cfg); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg}

	maxL1D := cfg.L1DSizes[len(cfg.L1DSizes)-1]
	maxL2 := cfg.L2Sizes[len(cfg.L2Sizes)-1]
	l1dWays, l2Ways := cfg.ways()

	var err error
	if m.L1I, err = cache.New("L1I", cfg.L1ISize, 64, 2); err != nil {
		return nil, err
	}
	if m.L1D, err = cache.New("L1D", maxL1D, 64, l1dWays); err != nil {
		return nil, err
	}
	if m.L2, err = cache.New("L2", maxL2, 128, l2Ways); err != nil {
		return nil, err
	}
	m.ITLB = cache.NewTLB("ITLB", cfg.TLBEntries, cfg.PageBytes)
	m.DTLB = cache.NewTLB("DTLB", cfg.TLBEntries, cfg.PageBytes)
	m.Pred = cpu.NewPredictor()
	m.Timing = cpu.NewTiming(cfg.Timing)

	if m.ML1I, err = power.NewMeter(power.L1Model("L1I"), cfg.L1ISize); err != nil {
		return nil, err
	}
	if m.ML1D, err = power.NewMeter(power.L1Model("L1D"), maxL1D); err != nil {
		return nil, err
	}
	if m.ML2, err = power.NewMeter(power.L2Model(), maxL2); err != nil {
		return nil, err
	}

	m.L1DUnit, err = ace.NewUnit("L1D", cfg.L1DSizes, len(cfg.L1DSizes)-1,
		cfg.L1DReconfigInterval, m.applyL1D)
	if err != nil {
		return nil, err
	}
	m.L2Unit, err = ace.NewUnit("L2", cfg.L2Sizes, len(cfg.L2Sizes)-1,
		cfg.L2ReconfigInterval, m.applyL2)
	if err != nil {
		return nil, err
	}
	if len(cfg.IQSizes) > 0 {
		m.iqBase = cfg.IQSizes[len(cfg.IQSizes)-1]
		if m.MIQ, err = power.NewMeter(power.IQModel(), m.iqBase); err != nil {
			return nil, err
		}
		m.IQUnit, err = ace.NewUnit("IQ", cfg.IQSizes, len(cfg.IQSizes)-1,
			cfg.IQReconfigInterval, m.applyIQ)
		if err != nil {
			return nil, err
		}
	}
	m.booted = true
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Units returns the machine's configurable units, L1D first, then L2,
// then (when enabled) the issue queue.
func (m *Machine) Units() []*ace.Unit {
	us := []*ace.Unit{m.L1DUnit, m.L2Unit}
	if m.IQUnit != nil {
		us = append(us, m.IQUnit)
	}
	return us
}

// SetFaults installs (or, with nil, removes) a fault injector: the
// units' request gates route through the injector's unit-request
// point, and accepted resizes consult its resize point for extra
// drain stalls. Install before running; without an injector the hot
// paths stay gate-free.
func (m *Machine) SetFaults(inj *fault.Injector) {
	m.faults = inj
	var gate ace.Gate
	if inj != nil {
		gate = func(unit string, _ int, _ uint64) ace.GateOutcome {
			switch inj.UnitRequest(unit) {
			case fault.OutcomeReject:
				return ace.GateReject
			case fault.OutcomeDefer:
				return ace.GateDefer
			}
			return ace.GateAllow
		}
	}
	for _, u := range m.Units() {
		u.SetGate(gate)
	}
}

// faultStall charges any injected extra drain cycles for a resize of
// the named unit.
func (m *Machine) faultStall(unit string) {
	if m.faults == nil {
		return
	}
	if extra := m.faults.ResizeStall(unit); extra > 0 {
		m.Timing.ReconfigureStall(extra)
	}
}

// applyIQ resizes the instruction window: drain the in-flight window
// (a fixed-cycle cost, no data movement), adjust the timing model's
// exposure, and switch the energy meter.
func (m *Machine) applyIQ(entries int, nowInstr uint64) {
	if !m.booted {
		return
	}
	cycles := m.Timing.Cycles()
	m.Timing.SetWindow(entries, m.iqBase)
	if err := m.MIQ.SetSize(entries, cycles); err != nil {
		panic(fmt.Sprintf("machine: IQ meter: %v", err))
	}
	m.Timing.Reconfigure(0)
	m.faultStall("IQ")
	if m.OnReconfigure != nil {
		m.OnReconfigure("IQ", entries, nowInstr)
	}
}

// applyL1D performs the L1D resize: flush dirty lines to L2 (charged
// as L2 accesses plus flush energy) and charge the timing model.
func (m *Machine) applyL1D(size int, nowInstr uint64) {
	if !m.booted {
		return // initial apply at construction; cache already at size
	}
	cycles := m.Timing.Cycles()
	wb, err := m.L1D.Resize(size)
	if err != nil {
		panic(fmt.Sprintf("machine: L1D resize: %v", err))
	}
	if err := m.ML1D.SetSize(size, cycles); err != nil {
		panic(fmt.Sprintf("machine: L1D meter: %v", err))
	}
	m.ML1D.FlushWritebacks(wb)
	m.ML2.AccessN(uint64(wb)) // flushed lines land in L2
	m.Timing.Reconfigure(wb)
	m.faultStall("L1D")
	if m.OnReconfigure != nil {
		m.OnReconfigure("L1D", size, nowInstr)
	}
}

// applyL2 performs the L2 resize: dirty lines go to memory.
func (m *Machine) applyL2(size int, nowInstr uint64) {
	if !m.booted {
		return
	}
	cycles := m.Timing.Cycles()
	wb, err := m.L2.Resize(size)
	if err != nil {
		panic(fmt.Sprintf("machine: L2 resize: %v", err))
	}
	if err := m.ML2.SetSize(size, cycles); err != nil {
		panic(fmt.Sprintf("machine: L2 meter: %v", err))
	}
	m.ML2.FlushWritebacks(wb)
	m.Timing.Reconfigure(wb)
	m.faultStall("L2")
	if m.OnReconfigure != nil {
		m.OnReconfigure("L2", size, nowInstr)
	}
}

// Instructions returns the number of retired instructions.
func (m *Machine) Instructions() uint64 { return m.instructions }

// Cycles returns the current cycle count.
func (m *Machine) Cycles() uint64 { return m.Timing.Cycles() }

// Issue retires n instructions (issue bandwidth + instruction count;
// with the IQ unit enabled, each instruction pays the window's
// per-entry wakeup/select energy).
func (m *Machine) Issue(n uint64) {
	m.instructions += n
	m.Timing.Issue(n)
	if m.MIQ != nil {
		m.MIQ.AccessN(n)
	}
}

// IssueBatch retires a straight-line run of n engine instructions in
// one call — the batched-issue entry point of the block-batched fast
// path. It is architecturally identical to n Issue(1) calls: the
// instruction count and issue-slot accounting are integer-linear, and
// the IQ wakeup/select energy is accrued with AccessRepeat so the
// float accumulation is bit-exact with the per-instruction path (the
// differential determinism tests assert exact Snapshot equality across
// engine modes, three-CU included).
func (m *Machine) IssueBatch(n uint64) {
	m.instructions += n
	m.Timing.Issue(n)
	if m.MIQ != nil {
		m.MIQ.AccessRepeat(n)
	}
}

// iLineBytes is the L1I block size (matches the cache.New call in New;
// a 64 B line holds 16 4-byte instructions).
const iLineBytes = isa.ILineBytes

// Fetch simulates the instruction fetch for the basic block whose
// first instruction has global index pc and which holds instrs
// instructions. The fetch walks the block's I-cache line range and
// accesses each 64 B line once: a block longer than 16 instructions
// spans — and pays for — multiple lines. The engine calls FetchLines
// with the sealed line range once per block entry; Fetch derives the
// range from scratch for callers without a sealed block.
func (m *Machine) Fetch(pc uint64, instrs int) {
	if instrs < 1 {
		instrs = 1
	}
	first := (iBase + pc*instrBytes) &^ (iLineBytes - 1)
	last := (iBase + (pc+uint64(instrs)-1)*instrBytes) &^ (iLineBytes - 1)
	m.FetchLines(first, last)
}

// FetchLines walks the I-cache line range [first, last] (byte
// addresses of 64 B lines) and accesses each line once. The sealed
// program stores each block's precomputed range (program.Block
// FirstLine/LastLine), so the per-block-entry fast path skips the
// address arithmetic Fetch performs.
func (m *Machine) FetchLines(first, last uint64) {
	for addr := first; ; addr += iLineBytes {
		if !m.ITLB.Access(addr) {
			m.Timing.TLBMiss()
		}
		m.ML1I.Access()
		r := m.L1I.Access(addr, false)
		if r.Writeback {
			m.l2Access(r.WritebackAddr, true)
		}
		if !r.Hit {
			m.Timing.L1Miss()
			m.l2Access(addr, false)
		}
		if addr == last {
			break
		}
	}
}

// FetchLinesObserved performs FetchLines while reporting each line's
// I-TLB and L1I outcomes as bitmasks (bit i set = the walk's i-th line
// missed). Both structures have fixed configurations, so the masks are
// scheme-invariant and a trace replayer can re-apply them without
// re-simulating either structure. ok is false when the range spans
// more than 64 lines (the masks cannot represent it); the accesses
// still happen in full, only the observation is incomplete.
func (m *Machine) FetchLinesObserved(first, last uint64) (tlbMask, missMask uint64, ok bool) {
	ok = true
	i := 0
	for addr := first; ; addr += iLineBytes {
		if i >= 64 {
			ok = false
			m.FetchLines(addr, last)
			return tlbMask, missMask, false
		}
		if !m.ITLB.Access(addr) {
			m.Timing.TLBMiss()
			tlbMask |= 1 << i
		}
		m.ML1I.Access()
		r := m.L1I.Access(addr, false)
		if r.Writeback {
			m.l2Access(r.WritebackAddr, true)
		}
		if !r.Hit {
			m.Timing.L1Miss()
			missMask |= 1 << i
			m.l2Access(addr, false)
		}
		if addr == last {
			break
		}
		i++
	}
	return tlbMask, missMask, ok
}

// ColdFetchMasks reconstructs the FetchLinesObserved outcome of the
// very first fetch walk on cold structures — the engine's
// construction-time entry push, which runs before a recorder can be
// installed. With an empty L1I every line misses; with an empty I-TLB
// a line misses exactly when it is the walk's first line of its page.
func (m *Machine) ColdFetchMasks(first, last uint64) (tlbMask, missMask uint64, ok bool) {
	page := uint64(m.cfg.PageBytes)
	if page == 0 {
		page = 4096
	}
	prevPage := ^uint64(0)
	i := 0
	for addr := first; ; addr += iLineBytes {
		if i >= 64 {
			return tlbMask, missMask, false
		}
		if p := addr / page; p != prevPage {
			tlbMask |= 1 << i
			prevPage = p
		}
		missMask |= 1 << i
		if addr == last {
			break
		}
		i++
	}
	return tlbMask, missMask, true
}

// ReplayFetchLines applies a recorded fetch walk: the fixed
// I-TLB/L1I outcomes charge the timing model directly from the masks,
// and each recorded L1I miss still drives the live (resizable, shared)
// L2 at the same address and in the same order as direct execution.
// L1I lines are never dirty, so a fetch walk generates no writebacks.
func (m *Machine) ReplayFetchLines(first, last, tlbMask, missMask uint64) {
	i := 0
	for addr := first; ; addr += iLineBytes {
		if tlbMask&(1<<i) != 0 {
			m.Timing.TLBMiss()
		}
		m.ML1I.Access()
		if missMask&(1<<i) != 0 {
			m.Timing.L1Miss()
			m.l2Access(addr, false)
		}
		if addr == last {
			break
		}
		i++
	}
}

// Data simulates a data access to the given word address.
func (m *Machine) Data(wordAddr uint64, write bool) {
	addr := wordAddr * 8
	if !m.DTLB.Access(addr) {
		m.Timing.TLBMiss()
	}
	m.ML1D.Access()
	r := m.L1D.Access(addr, write)
	if r.Writeback {
		m.l2Access(r.WritebackAddr, true)
	}
	if !r.Hit {
		m.Timing.L1Miss()
		m.l2Access(addr, false)
	}
}

// DataObserved performs Data while reporting the D-TLB outcome — the
// one scheme-invariant piece of a data access (the L1D and L2 are
// resizable and must be simulated live on replay).
func (m *Machine) DataObserved(wordAddr uint64, write bool) (tlbMiss bool) {
	addr := wordAddr * 8
	if !m.DTLB.Access(addr) {
		m.Timing.TLBMiss()
		tlbMiss = true
	}
	m.ML1D.Access()
	r := m.L1D.Access(addr, write)
	if r.Writeback {
		m.l2Access(r.WritebackAddr, true)
	}
	if !r.Hit {
		m.Timing.L1Miss()
		m.l2Access(addr, false)
	}
	return tlbMiss
}

// ReplayData applies a recorded data access: the D-TLB outcome charges
// the timing model from the recorded bit, while the resizable L1D and
// L2 — whose behavior depends on the scheme under replay — simulate
// live, writebacks included.
func (m *Machine) ReplayData(wordAddr uint64, write, tlbMiss bool) {
	addr := wordAddr * 8
	if tlbMiss {
		m.Timing.TLBMiss()
	}
	m.ML1D.Access()
	r := m.L1D.Access(addr, write)
	if r.Writeback {
		m.l2Access(r.WritebackAddr, true)
	}
	if !r.Hit {
		m.Timing.L1Miss()
		m.l2Access(addr, false)
	}
}

func (m *Machine) l2Access(addr uint64, write bool) {
	m.ML2.Access()
	r := m.L2.Access(addr, write)
	if !r.Hit {
		m.Timing.L2Miss()
	}
}

// CondBranch records the outcome of the conditional branch at global
// instruction index pc and charges a misprediction if the combined
// predictor got it wrong. It returns the predictor's verdict — the
// predictor is fixed hardware, so the verdict is scheme-invariant and
// recordable.
func (m *Machine) CondBranch(pc uint64, outcome bool) bool {
	if !m.Pred.Predict(pc, outcome) {
		m.Timing.Mispredict()
		return false
	}
	return true
}

// ReplayBranch applies a recorded conditional branch: the predictor's
// verdict was captured at record time, so replay only charges the
// misprediction without consulting (or updating) the predictor.
func (m *Machine) ReplayBranch(correct bool) {
	if !correct {
		m.Timing.Mispredict()
	}
}

// ReplayFetchCharges applies the state-independent charges of a
// recorded fetch walk in bulk: per-line I-cache read energy, I-TLB
// miss stalls, and L1I miss stalls. The summarized replay fast path
// uses it for walks whose recorded miss mask is empty (no L2 traffic,
// so the walk is pure arithmetic); the span-parallel spine uses it for
// every walk, with the recorded L1I misses' L2 traffic simulated by
// the span worker instead. Each bulk charge is bit-exact with the
// per-line sequence (independent integer counters and repeated
// identical-constant accumulation — see power.Meter.AccessRepeat and
// cpu.Timing's N-variants).
func (m *Machine) ReplayFetchCharges(lines, tlbMisses, l1iMisses uint64) {
	m.Timing.TLBMissN(tlbMisses)
	m.ML1I.AccessRepeat(lines)
	m.Timing.L1MissN(l1iMisses)
}

// TryReplayDataFootprint applies a summarized block instance's whole
// data working set as one bulk update when every footprint line is
// resident in the L1D: the recorded D-TLB misses charge timing, the
// instance's accesses charge L1D energy, and the cache commits the
// footprint (all hits — see cache.TryApplyFootprint for the
// equivalence argument). When any line is absent, nothing is charged
// and false is returned: the caller must replay the instance's
// accesses exactly.
func (m *Machine) TryReplayDataFootprint(foot []cache.FootLine, accesses, tlbMisses uint64) bool {
	if !m.L1D.TryApplyFootprint(foot, accesses) {
		return false
	}
	m.Timing.TLBMissN(tlbMisses)
	m.ML1D.AccessRepeat(accesses)
	return true
}

// ChargeDataTLBMisses charges n recorded D-TLB misses in bulk — the
// summarized replay's exact per-access path separates the (order-
// independent) TLB stall charges from the live cache simulation.
func (m *Machine) ChargeDataTLBMisses(n uint64) { m.Timing.TLBMissN(n) }

// ChargeMispredicts charges n recorded branch mispredictions in bulk
// (the summarized equivalent of n ReplayBranch(false) calls).
func (m *Machine) ChargeMispredicts(n uint64) { m.Timing.MispredictN(n) }

// SpliceSpanCharges grafts a verified speculative span's cache-
// dependent charges onto the live machine: the span's data accesses
// (L1D energy), its L1D misses and L2 misses (exposed stall cycles),
// and its L2 accesses (L2 energy), all counted by the span worker's
// private simulation. Bulk charges are bit-exact with the interleaved
// per-event sequence because every accumulator involved is either an
// integer counter or a repeated identical-constant float sum.
func (m *Machine) SpliceSpanCharges(l1dAccesses, l1dMisses, l2Accesses, l2Misses uint64) {
	m.ML1D.AccessRepeat(l1dAccesses)
	m.Timing.L1MissN(l1dMisses)
	m.ML2.AccessRepeat(l2Accesses)
	m.Timing.L2MissN(l2Misses)
}

// Snapshot is a point-in-time reading of the measures the tuning code
// samples at hotspot boundaries: retired instructions, cycles, and the
// energy of the two configurable caches.
type Snapshot struct {
	Instr  uint64
	Cycles uint64
	L1DnJ  float64
	L2nJ   float64
	// IQnJ is zero when the issue-queue unit is disabled.
	IQnJ float64
}

// Snapshot finalizes leakage up to the current cycle and returns the
// counters.
func (m *Machine) Snapshot() Snapshot {
	cyc := m.Timing.Cycles()
	m.ML1D.Finalize(cyc)
	m.ML2.Finalize(cyc)
	snap := Snapshot{
		Instr:  m.instructions,
		Cycles: cyc,
		L1DnJ:  m.ML1D.Totals().TotalNJ(),
		L2nJ:   m.ML2.Totals().TotalNJ(),
	}
	if m.MIQ != nil {
		m.MIQ.Finalize(cyc)
		snap.IQnJ = m.MIQ.Totals().TotalNJ()
	}
	return snap
}

// Delta returns the change from an earlier snapshot to a later one.
func Delta(start, end Snapshot) Snapshot {
	return Snapshot{
		Instr:  end.Instr - start.Instr,
		Cycles: end.Cycles - start.Cycles,
		L1DnJ:  end.L1DnJ - start.L1DnJ,
		L2nJ:   end.L2nJ - start.L2nJ,
		IQnJ:   end.IQnJ - start.IQnJ,
	}
}

// IPC returns instructions per cycle for a snapshot delta.
func (s Snapshot) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instr) / float64(s.Cycles)
}
