package machine

import (
	"testing"
)

func newMach(t *testing.T) *Machine {
	t.Helper()
	m, err := New(PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPaperConfigScaling(t *testing.T) {
	c1 := PaperConfig(1)
	if c1.L1DReconfigInterval != 100_000 || c1.L2ReconfigInterval != 1_000_000 {
		t.Errorf("paper-scale intervals wrong: %+v", c1)
	}
	c10 := PaperConfig(10)
	if c10.L1DReconfigInterval != 10_000 || c10.L2ReconfigInterval != 100_000 {
		t.Errorf("scaled intervals wrong: %+v", c10)
	}
	c0 := PaperConfig(0)
	if c0.L1DReconfigInterval != 100_000 {
		t.Error("scale 0 should mean scale 1")
	}
}

func TestMachineStartsAtLargestConfig(t *testing.T) {
	m := newMach(t)
	if m.L1D.SizeBytes() != 64*1024 {
		t.Errorf("L1D size = %d", m.L1D.SizeBytes())
	}
	if m.L2.SizeBytes() != 1024*1024 {
		t.Errorf("L2 size = %d", m.L2.SizeBytes())
	}
	if m.L1DUnit.Current() != 64*1024 || m.L2Unit.Current() != 1024*1024 {
		t.Error("units not at largest settings")
	}
}

func TestIssueCountsInstructions(t *testing.T) {
	m := newMach(t)
	m.Issue(10)
	if m.Instructions() != 10 {
		t.Errorf("Instructions = %d", m.Instructions())
	}
	if m.Cycles() == 0 {
		t.Error("cycles should advance with issue")
	}
}

func TestDataMissGoesToL2(t *testing.T) {
	m := newMach(t)
	m.Data(100, false)
	if m.L1D.Stats().Misses != 1 {
		t.Error("first access should miss L1D")
	}
	if m.L2.Stats().Accesses != 1 {
		t.Error("L1D miss should access L2")
	}
	m.Data(100, false)
	if m.L1D.Stats().Hits != 1 {
		t.Error("repeat should hit L1D")
	}
	if m.L2.Stats().Accesses != 1 {
		t.Error("L1D hit should not touch L2")
	}
}

func TestFetchUsesSeparateAddressSpace(t *testing.T) {
	m := newMach(t)
	m.Fetch(0, 1)
	m.Data(0, false)
	// Both miss to L2 but must occupy different L2 blocks.
	if m.L2.Stats().Accesses != 2 || m.L2.Stats().Misses != 2 {
		t.Errorf("L2 stats = %+v: I- and D-side must not alias", m.L2.Stats())
	}
}

func TestFetchLongBlockWalksEveryLine(t *testing.T) {
	// A 64 B I-cache line holds 16 4-byte instructions: a 40-
	// instruction block starting at a line boundary spans 3 lines and
	// must pay 3 L1I accesses and (cold) 3 misses — not 1 of each.
	m := newMach(t)
	m.Fetch(0, 40)
	if got := m.L1I.Stats().Accesses; got != 3 {
		t.Errorf("L1I accesses for 40-instr block = %d, want 3", got)
	}
	if got := m.L1I.Stats().Misses; got != 3 {
		t.Errorf("L1I misses for cold 40-instr block = %d, want 3", got)
	}
	// Re-fetching the same block hits all 3 lines.
	m.Fetch(0, 40)
	if got := m.L1I.Stats().Accesses; got != 6 {
		t.Errorf("L1I accesses after refetch = %d, want 6", got)
	}
	if got := m.L1I.Stats().Misses; got != 3 {
		t.Errorf("refetch should hit: misses = %d, want 3", got)
	}
}

func TestFetchUnalignedBlockLineRange(t *testing.T) {
	// A 17-instruction block starting at instruction 15 occupies
	// bytes [60, 128): 2 lines even though it is barely longer than
	// one line's worth of instructions.
	m := newMach(t)
	m.Fetch(15, 17)
	if got := m.L1I.Stats().Accesses; got != 2 {
		t.Errorf("L1I accesses for unaligned block = %d, want 2", got)
	}
	// A short block touches exactly one line.
	m2 := newMach(t)
	m2.Fetch(3, 12) // bytes [12, 60): one line
	if got := m2.L1I.Stats().Accesses; got != 1 {
		t.Errorf("L1I accesses for short block = %d, want 1", got)
	}
}

func TestDirtyL1EvictionWritesToL2(t *testing.T) {
	m := newMach(t)
	// L1D 64KB 2-way 64B: set stride 32 KB. Three blocks in one
	// set, first dirty.
	const stride = 32 * 1024 / 8 // word stride mapping to same set
	m.Data(0, true)
	m.Data(stride, false)
	l2Before := m.L2.Stats().Accesses
	m.Data(2*stride, false) // evicts dirty block 0
	// The eviction adds a write-back access on top of the fill.
	if got := m.L2.Stats().Accesses - l2Before; got != 2 {
		t.Errorf("L2 accesses for evicting access = %d, want 2 (writeback+fill)", got)
	}
}

func TestUnitResizeChargesEnergyAndTime(t *testing.T) {
	m := newMach(t)
	m.Issue(1_000_000) // advance time past guard
	for i := 0; i < 100; i++ {
		m.Data(uint64(i*8), true) // dirty lines
	}
	cyclesBefore := m.Timing.Breakdown().ReconfCycles
	if !m.L1DUnit.Request(0, m.Instructions()) {
		t.Fatal("resize request rejected")
	}
	if m.L1D.SizeBytes() != 8*1024 {
		t.Errorf("L1D size after request = %d", m.L1D.SizeBytes())
	}
	if m.Timing.Breakdown().ReconfCycles <= cyclesBefore {
		t.Error("resize should charge reconfiguration cycles")
	}
	if m.ML1D.CurrentSize() != 8*1024 {
		t.Error("meter should track the new size")
	}
}

func TestSnapshotDeltaAndIPC(t *testing.T) {
	m := newMach(t)
	s0 := m.Snapshot()
	m.Issue(400)
	s1 := m.Snapshot()
	d := Delta(s0, s1)
	if d.Instr != 400 {
		t.Errorf("delta instr = %d", d.Instr)
	}
	if d.Cycles != 100 {
		t.Errorf("delta cycles = %d", d.Cycles)
	}
	if d.IPC() != 4.0 {
		t.Errorf("IPC = %v, want 4", d.IPC())
	}
}

func TestSnapshotEnergiesMonotone(t *testing.T) {
	m := newMach(t)
	s0 := m.Snapshot()
	m.Issue(1000)
	m.Data(0, false)
	s1 := m.Snapshot()
	if s1.L1DnJ <= s0.L1DnJ || s1.L2nJ <= s0.L2nJ {
		t.Error("energy must grow with activity (leakage + access)")
	}
}

func TestIPCZeroCycles(t *testing.T) {
	var s Snapshot
	if s.IPC() != 0 {
		t.Error("IPC with zero cycles should be 0")
	}
}

func TestCondBranchChargesMispredicts(t *testing.T) {
	m := newMach(t)
	// Feed a random-ish pattern: some mispredicts must occur.
	for i := 0; i < 1000; i++ {
		m.CondBranch(64, i%3 == 0)
	}
	if m.Pred.Stats().Mispredicts == 0 {
		t.Error("expected some mispredictions")
	}
	if m.Timing.Breakdown().Mispredicts != m.Pred.Stats().Mispredicts {
		t.Error("timing and predictor mispredict counts must agree")
	}
}

func TestTLBMissCharged(t *testing.T) {
	m := newMach(t)
	m.Data(0, false)
	if m.Timing.Breakdown().TLBMisses != 1 {
		t.Errorf("TLB misses = %d, want 1", m.Timing.Breakdown().TLBMisses)
	}
	m.Data(1, false) // same page
	if m.Timing.Breakdown().TLBMisses != 1 {
		t.Error("same-page access must not TLB-miss")
	}
}

func TestUnitsReturnsBothCaches(t *testing.T) {
	m := newMach(t)
	us := m.Units()
	if len(us) != 2 || us[0].Name() != "L1D" || us[1].Name() != "L2" {
		t.Errorf("Units() = %v", us)
	}
}

func TestNewRejectsEmptyConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestL2ResizeWritesBackDirty(t *testing.T) {
	m := newMach(t)
	// Dirty many L1D lines, then force them into L2 via L1D resize,
	// then shrink L2: overflow dirty lines must be written back.
	for i := 0; i < 4096; i++ {
		m.Data(uint64(i*8), true)
	}
	m.Issue(1_000_000)
	if !m.L1DUnit.Request(0, m.Instructions()) {
		t.Fatal("L1D resize rejected")
	}
	m.Issue(1_000_000)
	if !m.L2Unit.Request(0, m.Instructions()) {
		t.Fatal("L2 resize rejected")
	}
	if m.L2.SizeBytes() != 128*1024 {
		t.Errorf("L2 size = %d", m.L2.SizeBytes())
	}
}

func TestMustNewAndConfig(t *testing.T) {
	m := MustNew(PaperConfig(10))
	if m.Config().L1ISize != 64*1024 {
		t.Error("Config accessor wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{})
}

func TestOnReconfigureHook(t *testing.T) {
	m := newMach(t)
	var events []string
	m.OnReconfigure = func(unit string, setting int, instr uint64) {
		events = append(events, unit)
	}
	m.Issue(1_000_000)
	m.L1DUnit.Request(0, m.Instructions())
	m.Issue(1_000_000)
	m.L2Unit.Request(0, m.Instructions())
	if len(events) != 2 || events[0] != "L1D" || events[1] != "L2" {
		t.Errorf("events = %v", events)
	}
}
