package fault

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNilInjectorIsNoFault(t *testing.T) {
	var j *Injector
	if got := j.UnitRequest("L1D"); got != OutcomeAllow {
		t.Fatalf("nil injector UnitRequest = %v, want allow", got)
	}
	if got := j.ResizeStall("L2"); got != 0 {
		t.Fatalf("nil injector ResizeStall = %d, want 0", got)
	}
	if got := j.TimerSample(); got != SampleKeep {
		t.Fatalf("nil injector TimerSample = %v, want keep", got)
	}
	if j.CorruptBBV([]uint32{1, 2}) {
		t.Fatal("nil injector corrupted a BBV")
	}
	j.RunPanic("b", "s") // must not panic
	if j.TotalFired() != 0 {
		t.Fatal("nil injector reported fires")
	}
}

func TestNilPlanYieldsNilInjector(t *testing.T) {
	j, err := New(nil, "compress", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if j != nil {
		t.Fatal("nil plan produced a non-nil injector")
	}
}

func TestRuleTriggerWindow(t *testing.T) {
	plan := &Plan{Rules: []Rule{{
		Point: PointUnitRequest, Kind: KindReject,
		After: 2, Count: 3, Every: 2,
	}}}
	j, err := New(plan, "b", "s")
	if err != nil {
		t.Fatal(err)
	}
	var got []Outcome
	for i := 0; i < 10; i++ {
		got = append(got, j.UnitRequest("L1D"))
	}
	// Hits 0,1 are before the window; hits 2,4,6 fire (every 2nd,
	// capped at 3 fires); the rest pass.
	want := []Outcome{OutcomeAllow, OutcomeAllow, OutcomeReject, OutcomeAllow,
		OutcomeReject, OutcomeAllow, OutcomeReject, OutcomeAllow, OutcomeAllow, OutcomeAllow}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: outcome %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if n := j.Fired(PointUnitRequest, KindReject); n != 3 {
		t.Fatalf("Fired = %d, want 3", n)
	}
}

func TestUnitAndRunFilters(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Point: PointUnitRequest, Kind: KindReject, Unit: "L2"},
		{Point: PointRun, Kind: KindPanic, Bench: "compress", Scheme: "hotspot"},
	}}
	j, err := New(plan, "compress", "bbv")
	if err != nil {
		t.Fatal(err)
	}
	if got := j.UnitRequest("L1D"); got != OutcomeAllow {
		t.Fatalf("L1D request = %v, want allow (rule filters to L2)", got)
	}
	if got := j.UnitRequest("L2"); got != OutcomeReject {
		t.Fatalf("L2 request = %v, want reject", got)
	}
	// The panic rule is scheme-filtered to hotspot: this bbv-run
	// injector must not include it.
	j.RunPanic("compress", "bbv")

	j2, err := New(plan, "compress", "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		ip, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v, want InjectedPanic", r)
		}
		if ip.Bench != "compress" || ip.Scheme != "hotspot" {
			t.Fatalf("InjectedPanic = %+v", ip)
		}
	}()
	j2.RunPanic("compress", "hotspot")
	t.Fatal("RunPanic did not panic")
}

func TestProbabilisticRuleIsDeterministic(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{{
		Point: PointTimerSample, Kind: KindDrop, Prob: 0.5,
	}}}
	seq := func() []SampleAction {
		j, err := New(plan, "b", "s")
		if err != nil {
			t.Fatal(err)
		}
		var out []SampleAction
		for i := 0; i < 200; i++ {
			out = append(out, j.TimerSample())
		}
		return out
	}
	a, b := seq(), seq()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical injectors", i)
		}
		if a[i] == SampleDrop {
			drops++
		}
	}
	if drops < 50 || drops > 150 {
		t.Fatalf("prob 0.5 dropped %d/200 samples", drops)
	}
}

func TestCorruptBBVFlipsOneBit(t *testing.T) {
	plan := &Plan{Seed: 7, Rules: []Rule{{Point: PointBBVSignature, Kind: KindBitFlip}}}
	j, err := New(plan, "b", "s")
	if err != nil {
		t.Fatal(err)
	}
	acc := make([]uint32, 32)
	if !j.CorruptBBV(acc) {
		t.Fatal("bitflip rule did not fire")
	}
	ones := 0
	for _, c := range acc {
		for b := c; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", ones)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Point: "bogus", Kind: KindReject}}},
		{Rules: []Rule{{Point: PointResize, Kind: KindReject}}},
		{Rules: []Rule{{Point: PointResize, Kind: KindStall}}}, // no cycles
		{Rules: []Rule{{Point: PointRun, Kind: KindPanic, Prob: 1.5}}},
		{Rules: []Rule{{Point: PointRun, Kind: KindPanic, Prob: 0.5, Every: 4}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d validated, want error", i)
		}
	}
	good := Plan{Rules: []Rule{{Point: PointResize, Kind: KindStall, StallCycles: 100}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	body := `{"seed": 3, "rules": [
		{"point": "unit-request", "kind": "reject", "unit": "L1D", "every": 2},
		{"point": "run", "kind": "panic", "bench": "db", "transient": true}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || len(p.Rules) != 2 || !p.Rules[1].Transient {
		t.Fatalf("loaded plan %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(path, []byte(`{"rules":[{"point":"nope"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err == nil {
		t.Fatal("invalid plan loaded")
	}
}
