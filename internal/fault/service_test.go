package fault

import (
	"testing"
	"time"
)

func TestNilServiceIsNoFault(t *testing.T) {
	var s *Service
	if got := s.StoreWrite("result"); got != StoreOK {
		t.Fatalf("nil service StoreWrite = %v, want ok", got)
	}
	if s.StoreSync("journal") {
		t.Fatal("nil service failed an fsync")
	}
	if d, fail := s.HTTP("POST /v1/jobs"); d != 0 || fail {
		t.Fatalf("nil service HTTP = (%v, %v), want (0, false)", d, fail)
	}
	if s.StreamDisconnect() {
		t.Fatal("nil service dropped a stream")
	}
	if s.TornLen(100) != 0 {
		t.Fatal("nil service picked a torn length")
	}
	if s.Fired(PointStoreWrite, KindError) != 0 {
		t.Fatal("nil service reported fires")
	}
}

func TestNilPlanYieldsNilService(t *testing.T) {
	s, err := NewService(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("nil plan produced a non-nil service injector")
	}
	// A plan with only run-level rules arms nothing at the service
	// layer and also collapses to nil.
	s, err = NewService(&Plan{Rules: []Rule{{Point: PointRun, Kind: KindPanic}}})
	if err != nil {
		t.Fatal(err)
	}
	if s != nil {
		t.Fatal("run-level-only plan produced a non-nil service injector")
	}
}

func TestServiceStoreFaults(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Point: PointStoreWrite, Kind: KindError, Unit: "journal", Count: 1},
		{Point: PointStoreWrite, Kind: KindTorn, Unit: "result", Count: 1},
		{Point: PointStoreSync, Kind: KindError, After: 1, Count: 1},
	}}
	s, err := NewService(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.StoreWrite("journal"); got != StoreErr {
		t.Fatalf("first journal write = %v, want error", got)
	}
	if got := s.StoreWrite("journal"); got != StoreOK {
		t.Fatalf("second journal write = %v, want ok (count exhausted)", got)
	}
	if got := s.StoreWrite("result"); got != StoreTorn {
		t.Fatalf("first result write = %v, want torn", got)
	}
	if got := s.StoreWrite("result"); got != StoreOK {
		t.Fatalf("second result write = %v, want ok", got)
	}
	if s.StoreSync("result") {
		t.Fatal("first sync failed (rule starts after 1)")
	}
	if !s.StoreSync("result") {
		t.Fatal("second sync passed, want injected failure")
	}
	if n := s.Fired(PointStoreWrite, KindTorn); n != 1 {
		t.Fatalf("torn fires = %d, want 1", n)
	}
	for i := 0; i < 32; i++ {
		if n := s.TornLen(100); n < 0 || n >= 100 {
			t.Fatalf("TornLen(100) = %d, want strict prefix in [0,100)", n)
		}
	}
}

func TestServiceHTTPFaults(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Point: PointHTTP, Kind: KindLatency, Unit: "GET /metrics", DelayMS: 25, Count: 1},
		{Point: PointHTTP, Kind: KindFail, Unit: "POST /v1/jobs", Count: 2},
		{Point: PointEventStream, Kind: KindDisconnect, After: 1, Count: 1},
	}}
	s, err := NewService(plan)
	if err != nil {
		t.Fatal(err)
	}
	if d, fail := s.HTTP("GET /metrics"); d != 25*time.Millisecond || fail {
		t.Fatalf("GET /metrics = (%v, %v), want (25ms, false)", d, fail)
	}
	if d, fail := s.HTTP("GET /metrics"); d != 0 || fail {
		t.Fatalf("second GET /metrics = (%v, %v), want no fault", d, fail)
	}
	for i := 0; i < 2; i++ {
		if _, fail := s.HTTP("POST /v1/jobs"); !fail {
			t.Fatalf("submit %d not failed, want injected 500", i)
		}
	}
	if _, fail := s.HTTP("POST /v1/jobs"); fail {
		t.Fatal("third submit failed past the rule count")
	}
	if _, fail := s.HTTP("GET /healthz"); fail {
		t.Fatal("unfiltered route hit a filtered rule")
	}
	if s.StreamDisconnect() {
		t.Fatal("first stream write dropped (rule starts after 1)")
	}
	if !s.StreamDisconnect() {
		t.Fatal("second stream write kept, want disconnect")
	}
	if s.StreamDisconnect() {
		t.Fatal("third stream write dropped past the rule count")
	}
}

func TestServiceRuleValidation(t *testing.T) {
	if _, err := NewService(&Plan{Rules: []Rule{
		{Point: PointHTTP, Kind: KindLatency},
	}}); err == nil {
		t.Fatal("latency rule without delay_ms accepted")
	}
	if _, err := NewService(&Plan{Rules: []Rule{
		{Point: PointStoreWrite, Kind: KindDisconnect},
	}}); err == nil {
		t.Fatal("disconnect kind accepted at store-write point")
	}
}

// TestRunInjectorIgnoresServiceRules pins the layer split: a mixed
// plan arms its run-level rules in New and its service rules in
// NewService, with no crosstalk.
func TestRunInjectorIgnoresServiceRules(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Point: PointUnitRequest, Kind: KindReject},
		{Point: PointHTTP, Kind: KindFail},
	}}
	j, err := New(plan, "b", "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.byPoint[PointHTTP]) != 0 {
		t.Fatal("run injector armed a service point")
	}
	if got := j.UnitRequest("L1D"); got != OutcomeReject {
		t.Fatalf("run rule lost in a mixed plan: %v", got)
	}
	s, err := NewService(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, fail := s.HTTP("anything"); !fail {
		t.Fatal("service rule lost in a mixed plan")
	}
	if s.StoreWrite("result") != StoreOK {
		t.Fatal("service injector armed a point with no rules")
	}
}
