package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// StoreFault is the verdict at a store-write injection point.
type StoreFault int

const (
	// StoreOK lets the write through untouched.
	StoreOK StoreFault = iota
	// StoreErr fails the write with an injected error.
	StoreErr
	// StoreTorn truncates the write mid-payload: only a strict
	// prefix of the bytes reaches the disk, as a crash between
	// write and fsync would leave it.
	StoreTorn
)

// Service is a Plan compiled for the daemon's service seams: durable
// store writes and fsyncs, HTTP handlers, and event streams. Unlike
// the run-level Injector it is shared across handler goroutines and
// workers, so every method serialises on an internal mutex; a nil
// *Service is the universal "no faults" value and costs one pointer
// test, mirroring the nil *Injector fast path. Determinism holds per
// seam sequence: the same plan and the same order of seam hits yield
// the same fault sequence (HTTP request interleaving is the caller's
// to pin in tests).
type Service struct {
	mu  sync.Mutex
	inj *Injector
}

// NewService compiles the plan's service-point rules (store-write,
// store-sync, http, event-stream); run-level points in the same plan
// are ignored, so one plan file can carry both layers. A nil plan —
// or a plan with no service rules — yields a nil *Service, keeping
// the no-fault path byte-identical and branch-cheap.
func NewService(p *Plan) (*Service, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		byPoint: make(map[Point][]*ruleState),
		rng:     rand.New(rand.NewSource(p.Seed)),
	}
	armed := false
	for _, r := range p.Rules {
		if !servicePoints[r.Point] {
			continue
		}
		inj.byPoint[r.Point] = append(inj.byPoint[r.Point], &ruleState{Rule: r})
		armed = true
	}
	if !armed {
		return nil, nil
	}
	return &Service{inj: inj}, nil
}

// ErrInjected is the error value injected store failures wrap; the
// store's callers can errors.Is against it to tell injected faults
// from real disk errors in tests.
var ErrInjected = fmt.Errorf("fault: injected I/O error")

// StoreWrite decides the fate of one durable-store write; op filters
// rules by Unit ("result" for result files, "journal" for journal
// appends).
func (s *Service) StoreWrite(op string) StoreFault {
	if s == nil {
		return StoreOK
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inj.match(PointStoreWrite, op, KindError) != nil {
		return StoreErr
	}
	if s.inj.match(PointStoreWrite, op, KindTorn) != nil {
		return StoreTorn
	}
	return StoreOK
}

// StoreSync reports whether one fsync should fail; op filters like
// StoreWrite.
func (s *Service) StoreSync(op string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj.match(PointStoreSync, op, KindError) != nil
}

// TornLen picks the deterministic truncation point of a torn write:
// a strict prefix length in [0, n).
func (s *Service) TornLen(n int) int {
	if s == nil || n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj.rng.Intn(n)
}

// HTTP decides one request's fate before its handler runs: an
// injected delay (0 = none) and whether to answer 500 instead of
// dispatching. route filters rules by Unit (e.g. "POST /v1/jobs").
func (s *Service) HTTP(route string) (delay time.Duration, fail bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs := s.inj.match(PointHTTP, route, KindLatency); rs != nil {
		delay = time.Duration(rs.DelayMS) * time.Millisecond
	}
	fail = s.inj.match(PointHTTP, route, KindFail) != nil
	return delay, fail
}

// Peer decides one outbound peer request's fate before it is sent:
// an injected delay (0 = none), whether to drop it on the floor as a
// partition would (the caller surfaces a connection error without
// dialing), and whether the far side should answer with an injected
// 500. peer filters rules by Unit (the target node ID); rules with an
// empty Unit partition this node from every peer.
func (s *Service) Peer(peer string) (delay time.Duration, drop, fail bool) {
	if s == nil {
		return 0, false, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rs := s.inj.match(PointPeer, peer, KindLatency); rs != nil {
		delay = time.Duration(rs.DelayMS) * time.Millisecond
	}
	drop = s.inj.match(PointPeer, peer, KindDrop) != nil
	fail = s.inj.match(PointPeer, peer, KindFail) != nil
	return delay, drop, fail
}

// StreamDisconnect reports whether the current event-stream write
// should drop the connection.
func (s *Service) StreamDisconnect() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj.match(PointEventStream, "", KindDisconnect) != nil
}

// Fired returns the total fires of the given kind at a service point
// — ground truth for "the fault actually happened" in chaos tests.
func (s *Service) Fired(pt Point, kind Kind) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inj.Fired(pt, kind)
}
