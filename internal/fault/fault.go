// Package fault is the simulator's deterministic fault-injection
// harness. A Plan names injection points threaded through the
// simulator — CU reconfiguration requests, cache/IQ resizes, the VM
// profiler's timer samples, the BBV accumulator, and whole experiment
// runs — and per-point rules selecting when and how each point
// misbehaves. A seeded Injector compiled from the plan drives the
// points reproducibly: the same plan, benchmark, and scheme always
// yield the same fault sequence, so chaos tests can assert exact
// degradation behaviour.
//
// The package is dependency-free so every layer of the simulator can
// import it. All Injector methods are safe on a nil receiver and
// return "no fault" — consumers hold a nil *Injector in the common
// case and pay a single pointer test on their hot paths.
package fault

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
)

// Point names an injection point in the simulator.
type Point string

const (
	// PointUnitRequest intercepts ace.Unit.Request: the CU's special
	// configuration instruction can be rejected or deferred.
	PointUnitRequest Point = "unit-request"
	// PointResize intercepts an accepted machine resize
	// (applyIQ/applyL1D/applyL2): the drain can stall extra cycles.
	PointResize Point = "resize"
	// PointTimerSample intercepts the VM profiler's timer: a due
	// sample can be dropped or delivered twice.
	PointTimerSample Point = "timer-sample"
	// PointBBVSignature intercepts the BBV detector's interval
	// boundary: accumulator bits can be flipped before
	// classification, corrupting the vector and any stored
	// signature derived from it.
	PointBBVSignature Point = "bbv-signature"
	// PointRun intercepts the start of one experiment run: the run
	// panics, exercising the suite's isolation layer.
	PointRun Point = "run"

	// Service-level points, consulted by the daemon through a Service
	// injector (one layer above the simulator's run-level points).

	// PointStoreWrite intercepts one durable-store write (a result
	// file or a journal append): the write can fail outright or be
	// torn — truncated mid-payload, as a crash between write and
	// fsync would leave it.
	PointStoreWrite Point = "store-write"
	// PointStoreSync intercepts an fsync on the durable store: the
	// sync can fail.
	PointStoreSync Point = "store-sync"
	// PointHTTP intercepts one HTTP request before its handler: the
	// request can be delayed or answered with an injected 500.
	PointHTTP Point = "http"
	// PointEventStream intercepts one event-stream write: the
	// connection can be dropped mid-stream, exercising client
	// reconnect-and-resume.
	PointEventStream Point = "event-stream"
	// PointPeer intercepts one outbound request to a cluster peer
	// (job forwarding, store peering, liveness probes): the request
	// can be dropped before it leaves (a partition), delayed, or
	// answered with an injected 500. The Unit filter selects the
	// target peer's node ID; empty partitions this node from every
	// peer.
	PointPeer Point = "peer"
)

// Kind selects what happens when a rule fires.
type Kind string

const (
	// KindReject drops a CU reconfiguration request.
	KindReject Kind = "reject"
	// KindDefer holds a CU reconfiguration request back; it is
	// re-issued at the unit's next request.
	KindDefer Kind = "defer"
	// KindStall charges extra drain cycles to a resize.
	KindStall Kind = "stall"
	// KindDrop discards a due profiler timer sample; at the peer
	// point it drops an outbound peer request before it leaves,
	// simulating a network partition.
	KindDrop Kind = "drop"
	// KindDuplicate delivers a due profiler timer sample twice.
	KindDuplicate Kind = "duplicate"
	// KindBitFlip flips one random accumulator bit.
	KindBitFlip Kind = "bitflip"
	// KindPanic panics the run with an InjectedPanic value.
	KindPanic Kind = "panic"
	// KindError fails a store write or fsync with an injected error.
	KindError Kind = "error"
	// KindTorn truncates a store write mid-payload: the bytes that
	// reach the disk are a strict prefix, as after a crash between
	// write and sync.
	KindTorn Kind = "torn"
	// KindLatency delays an HTTP request by DelayMS before its
	// handler runs (or an outbound peer request before it is sent).
	KindLatency Kind = "latency"
	// KindFail answers an HTTP request with an injected 500 instead
	// of running its handler (or an outbound peer request with an
	// injected 500 from the far side).
	KindFail Kind = "fail"
	// KindDisconnect drops an event-stream connection mid-stream.
	KindDisconnect Kind = "disconnect"
)

// pointKinds lists the kinds valid at each point.
var pointKinds = map[Point][]Kind{
	PointUnitRequest:  {KindReject, KindDefer},
	PointResize:       {KindStall},
	PointTimerSample:  {KindDrop, KindDuplicate},
	PointBBVSignature: {KindBitFlip},
	PointRun:          {KindPanic},
	PointStoreWrite:   {KindError, KindTorn},
	PointStoreSync:    {KindError},
	PointHTTP:         {KindLatency, KindFail},
	PointEventStream:  {KindDisconnect},
	PointPeer:         {KindDrop, KindLatency, KindFail},
}

// servicePoints marks the points a Service injector arms; run-level
// injectors (New) ignore them and vice versa, so one plan can carry
// both layers' rules.
var servicePoints = map[Point]bool{
	PointStoreWrite:  true,
	PointStoreSync:   true,
	PointHTTP:        true,
	PointEventStream: true,
	PointPeer:        true,
}

// Rule arms one injection point. A rule observes the point's
// eligible hits (those passing the Unit/Bench/Scheme filters) and
// fires on a deterministic subset: hits before After never fire;
// afterwards every Every-th hit fires (Every 0 or 1 = each one), or,
// when Prob is set instead, each hit fires with that probability
// drawn from the plan's seeded generator. Count caps the total fires
// (0 = unlimited).
type Rule struct {
	Point Point `json:"point"`
	Kind  Kind  `json:"kind"`

	// Unit filters unit-request/resize rules to one CU ("L1D",
	// "L2", "IQ"); empty matches every unit. Service rules reuse it
	// as the operation filter: the store op ("result", "journal")
	// for store points, the route ("POST /v1/jobs") for http.
	Unit string `json:"unit,omitempty"`
	// Bench and Scheme filter the rule to one benchmark and/or
	// scheme; empty matches all.
	Bench  string `json:"bench,omitempty"`
	Scheme string `json:"scheme,omitempty"`

	After uint64  `json:"after,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Every uint64  `json:"every,omitempty"`
	Prob  float64 `json:"prob,omitempty"`

	// StallCycles is the extra drain charged by a stall rule.
	StallCycles uint64 `json:"stall_cycles,omitempty"`

	// DelayMS is the handler delay charged by an http latency rule.
	DelayMS uint64 `json:"delay_ms,omitempty"`

	// Transient marks faults the suite may retry once (a run failed
	// by a transient fault is re-executed; persistent faults fail
	// the run outright).
	Transient bool `json:"transient,omitempty"`
}

// Validate checks one rule.
func (r Rule) Validate() error {
	kinds, ok := pointKinds[r.Point]
	if !ok {
		return fmt.Errorf("fault: unknown injection point %q", r.Point)
	}
	valid := false
	for _, k := range kinds {
		if k == r.Kind {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("fault: kind %q invalid at point %q", r.Kind, r.Point)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("fault: probability %v out of [0,1]", r.Prob)
	}
	if r.Prob > 0 && r.Every > 1 {
		return fmt.Errorf("fault: rule sets both prob and every")
	}
	if r.Kind == KindStall && r.StallCycles == 0 {
		return fmt.Errorf("fault: stall rule needs stall_cycles")
	}
	if r.Kind == KindLatency && r.DelayMS == 0 {
		return fmt.Errorf("fault: latency rule needs delay_ms")
	}
	return nil
}

// Plan is a complete fault schedule: a seed plus the armed rules.
// The zero plan (no rules) injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate checks every rule.
func (p *Plan) Validate() error {
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// WithoutTransient returns a copy of the plan with every transient
// rule removed. The suite's retry path runs under this plan: a
// transient fault, by definition, has cleared by the second attempt,
// while persistent rules keep firing. A nil plan stays nil.
func (p *Plan) WithoutTransient() *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{Seed: p.Seed}
	for _, r := range p.Rules {
		if !r.Transient {
			q.Rules = append(q.Rules, r)
		}
	}
	return q
}

// LoadPlan reads and validates a JSON plan file.
func LoadPlan(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return &p, nil
}

// InjectedPanic is the value a KindPanic rule panics with; the
// experiment layer's recovery recognizes it and classes the failure.
type InjectedPanic struct {
	Bench     string
	Scheme    string
	Transient bool
}

// Error makes the value self-describing in recovered stacks.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected panic (%s/%s)", p.Bench, p.Scheme)
}

// Outcome is the verdict at a unit-request injection point.
type Outcome int

const (
	// OutcomeAllow lets the request through.
	OutcomeAllow Outcome = iota
	// OutcomeReject drops the request.
	OutcomeReject
	// OutcomeDefer holds the request for the unit's next request.
	OutcomeDefer
)

// SampleAction is the verdict at the timer-sample injection point.
type SampleAction int

const (
	// SampleKeep delivers the sample normally.
	SampleKeep SampleAction = iota
	// SampleDrop discards the sample.
	SampleDrop
	// SampleDuplicate delivers the sample twice.
	SampleDuplicate
)

// ruleState is one armed rule plus its hit/fire counters.
type ruleState struct {
	Rule
	hits  uint64
	fires uint64
}

// Injector is a Plan compiled for one run. It is deterministic (one
// seeded generator, consulted only by probabilistic rules) and owned
// by a single simulation goroutine; it is not safe for concurrent
// use. A nil *Injector is the universal "no faults" value.
type Injector struct {
	byPoint map[Point][]*ruleState
	rng     *rand.Rand
}

// New compiles the plan's rules matching the given benchmark and
// scheme. The generator is seeded from the plan seed and the run
// identity, so parallel runs of one suite draw independent but
// reproducible sequences. A nil plan yields a nil injector.
func New(p *Plan, bench, scheme string) (*Injector, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s", bench, scheme)
	j := &Injector{
		byPoint: make(map[Point][]*ruleState),
		rng:     rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64()))),
	}
	for _, r := range p.Rules {
		if servicePoints[r.Point] {
			// Service rules arm only through NewService; a run-level
			// injector built from a mixed plan ignores them.
			continue
		}
		if r.Bench != "" && r.Bench != bench {
			continue
		}
		if r.Scheme != "" && r.Scheme != scheme {
			continue
		}
		j.byPoint[r.Point] = append(j.byPoint[r.Point], &ruleState{Rule: r})
	}
	return j, nil
}

// fire advances one rule's hit counter and reports whether it fires.
func (j *Injector) fire(rs *ruleState) bool {
	hit := rs.hits
	rs.hits++
	if hit < rs.After {
		return false
	}
	if rs.Count > 0 && rs.fires >= rs.Count {
		return false
	}
	if rs.Prob > 0 {
		if j.rng.Float64() >= rs.Prob {
			return false
		}
	} else if every := rs.Every; every > 1 && (hit-rs.After)%every != 0 {
		return false
	}
	rs.fires++
	return true
}

// match finds the first firing rule of the given kind at a point.
func (j *Injector) match(pt Point, unit string, kind Kind) *ruleState {
	for _, rs := range j.byPoint[pt] {
		if rs.Kind != kind {
			continue
		}
		if rs.Unit != "" && rs.Unit != unit {
			continue
		}
		if j.fire(rs) {
			return rs
		}
	}
	return nil
}

// UnitRequest decides the fate of one CU reconfiguration request.
func (j *Injector) UnitRequest(unit string) Outcome {
	if j == nil {
		return OutcomeAllow
	}
	if j.match(PointUnitRequest, unit, KindReject) != nil {
		return OutcomeReject
	}
	if j.match(PointUnitRequest, unit, KindDefer) != nil {
		return OutcomeDefer
	}
	return OutcomeAllow
}

// ResizeStall returns the extra drain cycles charged to one accepted
// resize (0 = none).
func (j *Injector) ResizeStall(unit string) uint64 {
	if j == nil {
		return 0
	}
	if rs := j.match(PointResize, unit, KindStall); rs != nil {
		return rs.StallCycles
	}
	return 0
}

// TimerSample decides the fate of one due profiler sample.
func (j *Injector) TimerSample() SampleAction {
	if j == nil {
		return SampleKeep
	}
	if j.match(PointTimerSample, "", KindDrop) != nil {
		return SampleDrop
	}
	if j.match(PointTimerSample, "", KindDuplicate) != nil {
		return SampleDuplicate
	}
	return SampleKeep
}

// CorruptBBV flips one random bit of one random accumulator bucket
// when a bitflip rule fires, reporting whether it did.
func (j *Injector) CorruptBBV(acc []uint32) bool {
	if j == nil || len(acc) == 0 {
		return false
	}
	if j.match(PointBBVSignature, "", KindBitFlip) == nil {
		return false
	}
	acc[j.rng.Intn(len(acc))] ^= 1 << uint(j.rng.Intn(24))
	return true
}

// RunPanic panics with an InjectedPanic when a run-point panic rule
// fires. The experiment layer calls it once per run, inside its
// recovery scope.
func (j *Injector) RunPanic(bench, scheme string) {
	if j == nil {
		return
	}
	if rs := j.match(PointRun, "", KindPanic); rs != nil {
		panic(InjectedPanic{Bench: bench, Scheme: scheme, Transient: rs.Transient})
	}
}

// Fired returns the total fires of the given kind at a point — the
// chaos tests' ground truth for "the fault actually happened".
func (j *Injector) Fired(pt Point, kind Kind) uint64 {
	if j == nil {
		return 0
	}
	var n uint64
	for _, rs := range j.byPoint[pt] {
		if rs.Kind == kind {
			n += rs.fires
		}
	}
	return n
}

// TotalFired sums fires across all rules.
func (j *Injector) TotalFired() uint64 {
	if j == nil {
		return 0
	}
	var n uint64
	for _, rules := range j.byPoint {
		for _, rs := range rules {
			n += rs.fires
		}
	}
	return n
}
