package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTLBBasic(t *testing.T) {
	tlb := NewTLB("d", 4, 4096)
	if tlb.Access(0) {
		t.Error("first access should miss")
	}
	if !tlb.Access(100) {
		t.Error("same page should hit")
	}
	if tlb.Access(4096) {
		t.Error("next page should miss")
	}
	st := tlb.Stats()
	if st.Accesses != 3 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB("d", 2, 4096)
	tlb.Access(0 * 4096)
	tlb.Access(1 * 4096)
	tlb.Access(0 * 4096) // touch page 0; page 1 becomes LRU
	tlb.Access(2 * 4096) // evicts page 1
	if !tlb.Contains(0) {
		t.Error("page 0 (MRU) should survive")
	}
	if tlb.Contains(1 * 4096) {
		t.Error("page 1 (LRU) should be evicted")
	}
	if !tlb.Contains(2 * 4096) {
		t.Error("page 2 should be resident")
	}
}

func TestTLBConstructorPanics(t *testing.T) {
	for _, c := range []struct{ entries, page int }{{0, 4096}, {4, 0}, {4, 1000}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB(%d,%d) should panic", c.entries, c.page)
				}
			}()
			NewTLB("d", c.entries, c.page)
		}()
	}
}

// refTLB is a brute-force fully-associative LRU oracle.
type refTLB struct {
	cap   int
	pages []uint64 // MRU first
}

func (r *refTLB) access(page uint64) bool {
	for i, p := range r.pages {
		if p == page {
			r.pages = append([]uint64{p}, append(append([]uint64{}, r.pages[:i]...), r.pages[i+1:]...)...)
			return true
		}
	}
	r.pages = append([]uint64{page}, r.pages...)
	if len(r.pages) > r.cap {
		r.pages = r.pages[:r.cap]
	}
	return false
}

func TestTLBMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tlb := NewTLB("d", 8, 4096)
		ref := &refTLB{cap: 8}
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(40)) * 4096
			if tlb.Access(addr) != ref.access(addr/4096) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTLBMissRate(t *testing.T) {
	var s TLBStats
	if s.MissRate() != 0 {
		t.Error("empty TLB stats miss rate should be 0")
	}
	s = TLBStats{Accesses: 10, Misses: 5}
	if s.MissRate() != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", s.MissRate())
	}
}

func TestTLBResetStats(t *testing.T) {
	tlb := NewTLB("d", 4, 4096)
	tlb.Access(0)
	tlb.ResetStats()
	if tlb.Stats() != (TLBStats{}) {
		t.Error("ResetStats should zero counters")
	}
	if !tlb.Contains(0) {
		t.Error("ResetStats must not evict entries")
	}
}
