package cache

// Native fuzz target for the resizable cache against the brute-force
// LRU oracle (see cache_test.go).

import (
	"math/rand"
	"testing"
)

// FuzzCacheVsReference interleaves random accesses and resizes and
// checks hit/miss against the oracle after every resize re-sync (the
// oracle has no resize, so each resize starts a fresh comparison
// window where only *misses* are compared conservatively: a block the
// real cache retained may hit where the fresh oracle misses, never the
// reverse).
func FuzzCacheVsReference(f *testing.F) {
	for _, seed := range []int64{1, 99, 2024} {
		f.Add(seed)
	}
	sizes := []int{1024, 2048, 4096, 8192}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew("c", 8192, 64, 2)
		ref := newRef(8192, 64, 2)
		synced := true
		for i := 0; i < 3000; i++ {
			if rng.Intn(20) == 0 {
				before := c.DirtyLines()
				wb, err := c.Resize(sizes[rng.Intn(len(sizes))])
				if err != nil {
					t.Fatal(err)
				}
				if c.DirtyLines()+wb != before {
					t.Fatalf("resize lost dirty lines: %d + %d != %d",
						c.DirtyLines(), wb, before)
				}
				if c.ValidLines() > c.NumSets()*c.Ways() {
					t.Fatal("over-full cache after resize")
				}
				synced = false
				ref = newRef(c.SizeBytes(), 64, 2)
				continue
			}
			addr := uint64(rng.Intn(32768))
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			wantHit, _ := ref.access(addr, write)
			if synced {
				if got.Hit != wantHit {
					t.Fatalf("step %d addr %d: hit=%v oracle=%v", i, addr, got.Hit, wantHit)
				}
			} else if wantHit && !got.Hit {
				// After a resize the real cache may retain
				// blocks the fresh oracle does not know, so
				// only this direction is a bug.
				t.Fatalf("step %d addr %d: oracle hit but cache missed after resize", i, addr)
			}
		}
	})
}
