package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("c", 8192, 64, 2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []struct{ size, block, ways int }{
		{8192, 63, 2},   // non-power-of-two block
		{8192, 0, 2},    // zero block
		{8192, 64, 0},   // zero ways
		{8000, 64, 2},   // size not multiple of ways*block
		{64 * 3, 64, 1}, // non-power-of-two sets
	}
	for _, c := range bad {
		if _, err := New("c", c.size, c.block, c.ways); err == nil {
			t.Errorf("New(%v) succeeded, want error", c)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew("c", 1024, 64, 2) // 8 sets
	r := c.Access(0, false)
	if r.Hit {
		t.Error("first access should miss")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Error("second access to same block should hit")
	}
	if r := c.Access(63, false); !r.Hit {
		t.Error("access within same block should hit")
	}
	if r := c.Access(64, false); r.Hit {
		t.Error("next block should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUReplacementWithinSet(t *testing.T) {
	c := MustNew("c", 1024, 64, 2) // 8 sets; set stride = 512 bytes
	const stride = 8 * 64          // addresses mapping to set 0
	c.Access(0*stride, false)
	c.Access(1*stride, false)
	c.Access(0*stride, false) // touch A so B is LRU
	c.Access(2*stride, false) // evicts B
	if !c.Contains(0 * stride) {
		t.Error("A (MRU) should survive")
	}
	if c.Contains(1 * stride) {
		t.Error("B (LRU) should be evicted")
	}
	if !c.Contains(2 * stride) {
		t.Error("C should be resident")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	const stride = 8 * 64
	c.Access(0, true) // dirty A
	c.Access(stride, false)
	r := c.Access(2*stride, false) // evicts dirty A
	if !r.Writeback {
		t.Fatal("evicting a dirty line must report a writeback")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("WritebackAddr = %d, want 0", r.WritebackAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteAllocateMarksDirty(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	c.Access(0, true)
	if c.DirtyLines() != 1 {
		t.Errorf("DirtyLines = %d, want 1", c.DirtyLines())
	}
	// A read hit must not clear dirtiness.
	c.Access(0, false)
	if c.DirtyLines() != 1 {
		t.Errorf("DirtyLines after read hit = %d, want 1", c.DirtyLines())
	}
}

func TestFlush(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	c.Access(0, true)
	c.Access(64, false)
	if wb := c.Flush(); wb != 1 {
		t.Errorf("Flush writebacks = %d, want 1", wb)
	}
	if c.ValidLines() != 0 {
		t.Errorf("ValidLines after flush = %d, want 0", c.ValidLines())
	}
	if c.Stats().FlushWritebacks != 1 {
		t.Errorf("FlushWritebacks = %d, want 1", c.Stats().FlushWritebacks)
	}
}

func TestResizeNoop(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	c.Access(0, true)
	wb, err := c.Resize(1024)
	if err != nil || wb != 0 {
		t.Errorf("Resize to same size = (%d, %v), want (0, nil)", wb, err)
	}
	if c.Stats().Resizes != 0 {
		t.Error("no-op resize must not count")
	}
}

func TestResizeGrowPreservesContents(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	// Distinct sets so nothing is evicted before the grow.
	addrs := []uint64{0, 64, 128, 192, 256}
	for _, a := range addrs {
		c.Access(a, false)
	}
	if wb, err := c.Resize(4096); err != nil || wb != 0 {
		t.Fatalf("grow = (%d, %v), want (0, nil): clean lines never write back", wb, err)
	}
	for _, a := range addrs {
		if !c.Contains(a) {
			t.Errorf("block %d lost on grow", a)
		}
	}
}

func TestResizeShrinkWritesBackOverflowDirty(t *testing.T) {
	// 4 KB, 2-way, 64 B blocks = 32 sets. Fill with 64 dirty
	// blocks (full), shrink to 1 KB (8 sets, 16 lines): 48 dirty
	// lines must be written back.
	c := MustNew("c", 4096, 64, 2)
	for i := 0; i < 64; i++ {
		c.Access(uint64(i*64), true)
	}
	if c.DirtyLines() != 64 {
		t.Fatalf("DirtyLines = %d, want 64", c.DirtyLines())
	}
	wb, err := c.Resize(1024)
	if err != nil {
		t.Fatal(err)
	}
	if wb != 48 {
		t.Errorf("shrink writebacks = %d, want 48", wb)
	}
	if c.ValidLines() != 16 {
		t.Errorf("ValidLines = %d, want 16 (full small cache)", c.ValidLines())
	}
}

func TestResizeShrinkKeepsMostRecent(t *testing.T) {
	c := MustNew("c", 4096, 64, 2)
	// Two blocks folding into the same small-cache set, different
	// recency; with capacity for both ways, both survive; with a
	// third, the oldest goes.
	c.Access(0, false)    // set 0 small
	c.Access(1024, false) // also set 0 after fold to 8 sets? 1024/64=16 → set 16%8=0
	c.Access(2048, false) // block 32 → set 0 after fold
	if _, err := c.Resize(1024); err != nil {
		t.Fatal(err)
	}
	if c.Contains(0) {
		t.Error("oldest folded block should be dropped")
	}
	if !c.Contains(1024) || !c.Contains(2048) {
		t.Error("two most recent folded blocks should survive")
	}
}

func TestResizeRoundTripKeepsWorkingSet(t *testing.T) {
	// Shrinking then growing must retain whatever survived the
	// shrink (grow never drops).
	c := MustNew("c", 4096, 64, 2)
	c.Access(0, false)
	c.Access(64, true)
	if _, err := c.Resize(1024); err != nil {
		t.Fatal(err)
	}
	survived0, survived1 := c.Contains(0), c.Contains(64)
	if _, err := c.Resize(4096); err != nil {
		t.Fatal(err)
	}
	if c.Contains(0) != survived0 || c.Contains(64) != survived1 {
		t.Error("grow changed residency of surviving blocks")
	}
}

// refModel is a brute-force set-associative LRU cache used as the
// oracle for the property test.
type refModel struct {
	blockShift uint
	ways       int
	numSets    uint64
	sets       map[uint64][]refLine // set -> lines, MRU first
}

type refLine struct {
	tag   uint64
	dirty bool
}

func newRef(size, block, ways int) *refModel {
	m := &refModel{ways: ways, sets: map[uint64][]refLine{}}
	for 1<<m.blockShift < block {
		m.blockShift++
	}
	m.numSets = uint64(size / (block * ways))
	return m
}

func (m *refModel) access(addr uint64, write bool) (hit, writeback bool) {
	blockAddr := addr >> m.blockShift
	set := blockAddr & (m.numSets - 1)
	lines := m.sets[set]
	for i, ln := range lines {
		if ln.tag == blockAddr {
			ln.dirty = ln.dirty || write
			lines = append([]refLine{ln}, append(append([]refLine{}, lines[:i]...), lines[i+1:]...)...)
			m.sets[set] = lines
			return true, false
		}
	}
	lines = append([]refLine{{tag: blockAddr, dirty: write}}, lines...)
	if len(lines) > m.ways {
		victim := lines[len(lines)-1]
		lines = lines[:len(lines)-1]
		writeback = victim.dirty
	}
	m.sets[set] = lines
	return false, writeback
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew("c", 2048, 64, 2)
		ref := newRef(2048, 64, 2)
		for i := 0; i < 2000; i++ {
			addr := uint64(rng.Intn(16384))
			write := rng.Intn(3) == 0
			got := c.Access(addr, write)
			wantHit, wantWB := ref.access(addr, write)
			if got.Hit != wantHit || got.Writeback != wantWB {
				t.Logf("step %d addr %d write %v: got (%v,%v) want (%v,%v)",
					i, addr, write, got.Hit, got.Writeback, wantHit, wantWB)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResizeInvariantsProperty(t *testing.T) {
	sizes := []int{1024, 2048, 4096, 8192}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew("c", 8192, 64, 2)
		for i := 0; i < 500; i++ {
			if rng.Intn(10) == 0 {
				before := c.DirtyLines()
				wb, err := c.Resize(sizes[rng.Intn(len(sizes))])
				if err != nil {
					return false
				}
				// Dirty lines are either retained or written
				// back, never silently lost.
				if c.DirtyLines()+wb != before {
					return false
				}
				// The cache can never hold more lines than
				// capacity.
				if c.ValidLines() > c.NumSets()*c.Ways() {
					return false
				}
			}
			c.Access(uint64(rng.Intn(32768)), rng.Intn(2) == 0)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew("c", 1024, 64, 2)
	c.Access(0, true)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats should zero counters")
	}
	if !c.Contains(0) {
		t.Error("ResetStats must not touch contents")
	}
}
