package cache

// TLB is a fully-associative, true-LRU translation lookaside buffer.
// It maps page numbers; the simulated machine has no page table, so a
// TLB miss simply charges the miss penalty and installs the entry.
//
// The 128-entry fully-associative organisation of the paper's baseline
// (Table 2) makes a linear scan per access too slow, so the TLB keeps
// an index from page to slot plus an intrusive doubly-linked LRU list —
// O(1) per access with identical replacement behaviour. The index is a
// linear-probing open-addressing table with a multiplicative hash
// rather than a Go map: the translation sits on the engine's per-fetch
// and per-data-access hot path, where map hashing dominated the
// simulator's profile. An MRU short-circuit resolves the common case —
// repeated translations of the same page (instruction fetch inside a
// loop) — with one comparison and no index probe at all.
type TLB struct {
	name     string
	pageBits uint
	capacity int

	slots []tlbEntry
	head  int // most recently used, -1 when empty
	tail  int // least recently used, -1 when empty
	used  int

	// Open-addressing page→slot index, sized at 4× capacity for
	// short probe sequences. vals[i] < 0 marks an empty cell;
	// deletion backward-shifts so no tombstones accumulate.
	keys []uint64
	vals []int32
	mask uint64

	stats TLBStats
}

type tlbEntry struct {
	page       uint64
	prev, next int
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewTLB constructs a TLB with the given entry count and page size
// (bytes, power of two).
func NewTLB(name string, entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("cache: TLB entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("cache: TLB page size must be a positive power of two")
	}
	tableSize := 4
	for tableSize < 4*entries {
		tableSize *= 2
	}
	t := &TLB{
		name:     name,
		capacity: entries,
		slots:    make([]tlbEntry, entries),
		keys:     make([]uint64, tableSize),
		vals:     make([]int32, tableSize),
		mask:     uint64(tableSize - 1),
		head:     -1,
		tail:     -1,
	}
	for i := range t.vals {
		t.vals[i] = -1
	}
	for 1<<t.pageBits < pageBytes {
		t.pageBits++
	}
	return t
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.capacity }

// Stats returns a copy of the event counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// hash spreads page numbers over the probe table (Fibonacci hashing;
// the multiplier is 2^64/φ).
func (t *TLB) hash(page uint64) uint64 {
	return (page * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// lookup returns the index cell holding page, or -1.
func (t *TLB) lookup(page uint64) int {
	for i := t.hash(page); ; i = (i + 1) & t.mask {
		if t.vals[i] < 0 {
			return -1
		}
		if t.keys[i] == page {
			return int(i)
		}
	}
}

// insert adds page→slot to the index (page must be absent).
func (t *TLB) insert(page uint64, slot int) {
	i := t.hash(page)
	for t.vals[i] >= 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i] = page
	t.vals[i] = int32(slot)
}

// remove deletes the cell at index i, backward-shifting the probe
// chain so lookups never need tombstones.
func (t *TLB) remove(i int) {
	for {
		t.vals[i] = -1
		j := i
		for {
			j = int(uint64(j+1) & t.mask)
			if t.vals[j] < 0 {
				return
			}
			h := int(t.hash(t.keys[j]))
			// Move cell j into the hole at i when its ideal
			// position h does not lie in the (cyclic) range (i, j].
			if i <= j {
				if h > i && h <= j {
					continue
				}
			} else if h > i || h <= j {
				continue
			}
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
			break
		}
	}
}

// Access translates the byte address addr, returning true on hit. On a
// miss the entry is installed, evicting the LRU entry if full.
func (t *TLB) Access(addr uint64) bool {
	t.stats.Accesses++
	page := addr >> t.pageBits
	// MRU short-circuit: a hit on the most recently used entry needs
	// no index probe and no LRU relink.
	if h := t.head; h >= 0 && t.slots[h].page == page {
		return true
	}
	if cell := t.lookup(page); cell >= 0 {
		t.touch(int(t.vals[cell]))
		return true
	}
	t.stats.Misses++
	var slot int
	if t.used < t.capacity {
		slot = t.used
		t.used++
	} else {
		slot = t.tail
		t.unlink(slot)
		t.remove(t.lookup(t.slots[slot].page))
	}
	t.slots[slot].page = page
	t.insert(page, slot)
	t.pushFront(slot)
	return false
}

// Contains reports whether addr's page is resident (no state change).
func (t *TLB) Contains(addr uint64) bool {
	return t.lookup(addr>>t.pageBits) >= 0
}

func (t *TLB) touch(slot int) {
	if t.head == slot {
		return
	}
	t.unlink(slot)
	t.pushFront(slot)
}

func (t *TLB) unlink(slot int) {
	e := &t.slots[slot]
	if e.prev >= 0 {
		t.slots[e.prev].next = e.next
	} else {
		t.head = e.next
	}
	if e.next >= 0 {
		t.slots[e.next].prev = e.prev
	} else {
		t.tail = e.prev
	}
}

func (t *TLB) pushFront(slot int) {
	e := &t.slots[slot]
	e.prev = -1
	e.next = t.head
	if t.head >= 0 {
		t.slots[t.head].prev = slot
	}
	t.head = slot
	if t.tail < 0 {
		t.tail = slot
	}
}
