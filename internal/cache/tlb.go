package cache

// TLB is a fully-associative, true-LRU translation lookaside buffer.
// It maps page numbers; the simulated machine has no page table, so a
// TLB miss simply charges the miss penalty and installs the entry.
//
// The 128-entry fully-associative organisation of the paper's baseline
// (Table 2) makes a linear scan per access too slow, so the TLB keeps a
// map from page to slot plus an intrusive doubly-linked LRU list —
// O(1) per access with identical replacement behaviour.
type TLB struct {
	name     string
	pageBits uint
	capacity int

	slots []tlbEntry
	index map[uint64]int
	head  int // most recently used, -1 when empty
	tail  int // least recently used, -1 when empty
	used  int

	stats TLBStats
}

type tlbEntry struct {
	page       uint64
	prev, next int
}

// TLBStats counts TLB events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s TLBStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// NewTLB constructs a TLB with the given entry count and page size
// (bytes, power of two).
func NewTLB(name string, entries, pageBytes int) *TLB {
	if entries <= 0 {
		panic("cache: TLB entries must be positive")
	}
	if pageBytes <= 0 || pageBytes&(pageBytes-1) != 0 {
		panic("cache: TLB page size must be a positive power of two")
	}
	t := &TLB{
		name:     name,
		capacity: entries,
		slots:    make([]tlbEntry, entries),
		index:    make(map[uint64]int, entries),
		head:     -1,
		tail:     -1,
	}
	for 1<<t.pageBits < pageBytes {
		t.pageBits++
	}
	return t
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.capacity }

// Stats returns a copy of the event counters.
func (t *TLB) Stats() TLBStats { return t.stats }

// ResetStats zeroes the event counters.
func (t *TLB) ResetStats() { t.stats = TLBStats{} }

// Access translates the byte address addr, returning true on hit. On a
// miss the entry is installed, evicting the LRU entry if full.
func (t *TLB) Access(addr uint64) bool {
	t.stats.Accesses++
	page := addr >> t.pageBits
	if slot, ok := t.index[page]; ok {
		t.touch(slot)
		return true
	}
	t.stats.Misses++
	var slot int
	if t.used < t.capacity {
		slot = t.used
		t.used++
	} else {
		slot = t.tail
		t.unlink(slot)
		delete(t.index, t.slots[slot].page)
	}
	t.slots[slot].page = page
	t.index[page] = slot
	t.pushFront(slot)
	return false
}

// Contains reports whether addr's page is resident (no state change).
func (t *TLB) Contains(addr uint64) bool {
	_, ok := t.index[addr>>t.pageBits]
	return ok
}

func (t *TLB) touch(slot int) {
	if t.head == slot {
		return
	}
	t.unlink(slot)
	t.pushFront(slot)
}

func (t *TLB) unlink(slot int) {
	e := &t.slots[slot]
	if e.prev >= 0 {
		t.slots[e.prev].next = e.next
	} else {
		t.head = e.next
	}
	if e.next >= 0 {
		t.slots[e.next].prev = e.prev
	} else {
		t.tail = e.prev
	}
}

func (t *TLB) pushFront(slot int) {
	e := &t.slots[slot]
	e.prev = -1
	e.next = t.head
	if t.head >= 0 {
		t.slots[t.head].prev = slot
	}
	t.head = slot
	if t.tail < 0 {
		t.tail = slot
	}
}
