// Package cache implements the memory-hierarchy building blocks of the
// simulated machine: set-associative write-back LRU caches whose size
// can be changed at run time (the paper's configurable units), and
// fully-associative TLBs.
//
// Resizing follows the paper's cost model: any resize writes back every
// dirty line and invalidates the whole array; the caller charges the
// write-backs in cycles and energy (Section 2.1: "to reduce a cache's
// size, dirty cache lines must be written back to lower memory
// hierarchy").
package cache

import "fmt"

// Result describes the outcome of one cache access.
type Result struct {
	// Hit is true when the block was present.
	Hit bool
	// Writeback is true when the access evicted a dirty block that
	// must be written to the next level.
	Writeback bool
	// WritebackAddr is the byte address of the evicted dirty block
	// (valid only when Writeback is true).
	WritebackAddr uint64
}

// Stats counts cache events since the last ResetStats.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions, incl. those forced by resizes
	Resizes    uint64
	// FlushWritebacks counts the subset of Writebacks caused by
	// resizes — the reconfiguration overhead the power model and
	// timing model charge separately.
	FlushWritebacks uint64
}

// MissRate returns misses/accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag     uint64
	lastUse uint64
	valid   bool
	dirty   bool
}

// Cache is a resizable set-associative write-back cache with true LRU
// replacement. Associativity and block size are fixed at construction;
// resizing changes the number of sets.
type Cache struct {
	name       string
	blockBytes uint64
	blockShift uint
	ways       int

	sizeBytes int
	numSets   uint64
	setMask   uint64
	lines     []line // numSets × ways, set-major

	useTick uint64
	stats   Stats
}

// New constructs a cache. sizeBytes must be a power-of-two multiple of
// ways*blockBytes, and blockBytes a power of two.
func New(name string, sizeBytes, blockBytes, ways int) (*Cache, error) {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: block size %d not a power of two", name, blockBytes)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways %d must be positive", name, ways)
	}
	c := &Cache{
		name:       name,
		blockBytes: uint64(blockBytes),
		ways:       ways,
	}
	for 1<<c.blockShift < blockBytes {
		c.blockShift++
	}
	if err := c.configure(sizeBytes); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew is New that panics on error, for fixed-parameter call sites.
func MustNew(name string, sizeBytes, blockBytes, ways int) *Cache {
	c, err := New(name, sizeBytes, blockBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) configure(sizeBytes int) error {
	lineBytes := int(c.blockBytes) * c.ways
	if sizeBytes <= 0 || sizeBytes%lineBytes != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of ways×block (%d)", c.name, sizeBytes, lineBytes)
	}
	numSets := sizeBytes / lineBytes
	if numSets&(numSets-1) != 0 {
		return fmt.Errorf("cache %s: size %d yields non-power-of-two set count %d", c.name, sizeBytes, numSets)
	}
	c.sizeBytes = sizeBytes
	c.numSets = uint64(numSets)
	c.setMask = c.numSets - 1
	c.lines = make([]line, numSets*c.ways)
	return nil
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// SizeBytes returns the current capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sizeBytes }

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() int { return int(c.blockBytes) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the current number of sets.
func (c *Cache) NumSets() int { return int(c.numSets) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters (contents are untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access simulates one access to the byte address addr. write marks
// the block dirty on hit or after fill (write-allocate). The returned
// Result reports hit/miss and any dirty eviction; the caller is
// responsible for propagating misses and write-backs to the next
// level.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.stats.Accesses++
	c.useTick++
	// The full block address serves as the tag; the set bits are
	// redundant in it but harmless, and keeping them avoids a shift
	// on every probe.
	blockAddr := addr >> c.blockShift
	set := blockAddr & c.setMask
	base := int(set) * c.ways

	// Specialised probes for the common organisations: direct-mapped
	// (one line, no victim scan at all) and 2-way (both L1s), where
	// two inline compares beat the general scan loop.
	switch c.ways {
	case 1:
		ln := &c.lines[base]
		if ln.valid && ln.tag == blockAddr {
			c.stats.Hits++
			ln.lastUse = c.useTick
			if write {
				ln.dirty = true
			}
			return Result{Hit: true}
		}
		return c.fill(base, blockAddr, write)
	case 2:
		if ln := &c.lines[base]; ln.valid && ln.tag == blockAddr {
			c.stats.Hits++
			ln.lastUse = c.useTick
			if write {
				ln.dirty = true
			}
			return Result{Hit: true}
		}
		if ln := &c.lines[base+1]; ln.valid && ln.tag == blockAddr {
			c.stats.Hits++
			ln.lastUse = c.useTick
			if write {
				ln.dirty = true
			}
			return Result{Hit: true}
		}
	default:
		for i := base; i < base+c.ways; i++ {
			ln := &c.lines[i]
			if ln.valid && ln.tag == blockAddr {
				c.stats.Hits++
				ln.lastUse = c.useTick
				if write {
					ln.dirty = true
				}
				return Result{Hit: true}
			}
		}
	}

	// Miss: pick LRU victim (prefer invalid ways).
	victim := base
	for i := base; i < base+c.ways; i++ {
		if !c.lines[i].valid {
			victim = i
			break
		}
		if c.lines[i].lastUse < c.lines[victim].lastUse {
			victim = i
		}
	}
	return c.fill(victim, blockAddr, write)
}

// fill installs blockAddr in the line at index victim on a miss,
// reporting any dirty eviction.
func (c *Cache) fill(victim int, blockAddr uint64, write bool) Result {
	c.stats.Misses++
	var res Result
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.Writebacks++
		res.Writeback = true
		res.WritebackAddr = v.tag << c.blockShift
	}
	*v = line{tag: blockAddr, lastUse: c.useTick, valid: true, dirty: write}
	return res
}

// Contains reports whether the block holding addr is present (no state
// change; for tests).
func (c *Cache) Contains(addr uint64) bool {
	blockAddr := addr >> c.blockShift
	set := blockAddr & c.setMask
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == blockAddr {
			return true
		}
	}
	return false
}

// DirtyLines returns the number of valid dirty lines (for tests and
// for estimating flush cost ahead of a resize).
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return n
}

// ValidLines returns the number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Resize changes the capacity to newSizeBytes, migrating cache state
// the way selective-sets reconfiguration hardware does: every resident
// block is re-placed under the new set indexing, keeping the most
// recently used blocks when more blocks fold into a set than its
// associativity holds. Dirty blocks that no longer fit are written
// back (returned as writebacks, also counted in Stats) — the paper's
// reconfiguration overhead of "writing dirty cache lines to the lower
// memory hierarchy". Clean blocks that no longer fit are dropped
// silently. Resizing to the current size is a no-op returning 0.
func (c *Cache) Resize(newSizeBytes int) (writebacks int, err error) {
	if newSizeBytes == c.sizeBytes {
		return 0, nil
	}
	old := c.lines
	if err := c.configure(newSizeBytes); err != nil {
		return 0, err
	}
	for _, ln := range old {
		if ln.valid {
			writebacks += c.place(ln)
		}
	}
	c.stats.Resizes++
	c.stats.Writebacks += uint64(writebacks)
	c.stats.FlushWritebacks += uint64(writebacks)
	return writebacks, nil
}

// place inserts a migrated line under the current indexing. When the
// target set is full, the least recently used of {occupants, ln} is
// dropped. It returns the number of dirty lines dropped (0 or 1).
func (c *Cache) place(ln line) int {
	set := ln.tag & c.setMask
	base := int(set) * c.ways
	victim := -1
	for i := base; i < base+c.ways; i++ {
		if !c.lines[i].valid {
			c.lines[i] = ln
			return 0
		}
		if victim < 0 || c.lines[i].lastUse < c.lines[victim].lastUse {
			victim = i
		}
	}
	dropped := ln
	if c.lines[victim].lastUse < ln.lastUse {
		dropped = c.lines[victim]
		c.lines[victim] = ln
	}
	if dropped.dirty {
		return 1
	}
	return 0
}

// Flush writes back all dirty lines and invalidates the cache without
// changing its size. Returns the number of write-backs performed.
func (c *Cache) Flush() int {
	wb := c.DirtyLines()
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.stats.Writebacks += uint64(wb)
	c.stats.FlushWritebacks += uint64(wb)
	return wb
}
