// Bulk access paths for the summarized-block replay engine
// (internal/rtrace): residency-checked whole-footprint application,
// canonical per-set views for speculative span verification, and the
// splice primitives that graft a span's privately simulated cache
// evolution back onto the live cache bit-for-bit.
package cache

// FootLine is one distinct cache line of a block instance's data
// footprint, precomputed when a trace is summarized: the line's byte
// address, the 1-based position of the instance's *last* access to it
// (among the instance's accesses to this cache), and whether any of
// those accesses wrote it.
type FootLine struct {
	// Addr is the byte address of any word in the line.
	Addr uint64
	// Ordinal is the 1-based index, within the instance's access
	// sequence, of the last access that touched this line.
	Ordinal uint32
	// Write is true when any access to the line in the instance was
	// a write.
	Write bool
}

// TryApplyFootprint applies a block instance's whole data footprint as
// one bulk update when — and only when — every footprint line is
// resident: accesses total accesses, all hits, are accounted against
// the stats and the LRU clock, each line's last-use tick lands exactly
// where the per-access path would put it (tick base + Ordinal), and
// written lines are dirtied. When any line is absent the cache is left
// completely untouched and false is returned; the caller must then
// fall back to the exact per-access path.
//
// The equivalence argument: when every line of the footprint is
// resident at the instance's start, every access hits, so no line is
// evicted mid-instance and no writeback or fill occurs — the final
// state differs from the initial one only in the touched lines'
// last-use ticks (set by their last access) and dirty bits (OR of the
// instance's writes), which is precisely what this bulk update writes.
func (c *Cache) TryApplyFootprint(foot []FootLine, accesses uint64) bool {
	// Pass 1: probe only. A miss anywhere must leave no trace.
	var idx [MaxFootprint]int32
	if len(foot) > len(idx) {
		return false
	}
	for i := range foot {
		blockAddr := foot[i].Addr >> c.blockShift
		base := int32(blockAddr&c.setMask) * int32(c.ways)
		hit := int32(-1)
		for w := int32(0); w < int32(c.ways); w++ {
			ln := &c.lines[base+w]
			if ln.valid && ln.tag == blockAddr {
				hit = base + w
				break
			}
		}
		if hit < 0 {
			return false
		}
		idx[i] = hit
	}
	// Pass 2: commit.
	tickBase := c.useTick
	c.useTick += accesses
	c.stats.Accesses += accesses
	c.stats.Hits += accesses
	for i := range foot {
		ln := &c.lines[idx[i]]
		ln.lastUse = tickBase + uint64(foot[i].Ordinal)
		if foot[i].Write {
			ln.dirty = true
		}
	}
	return true
}

// MaxFootprint bounds the footprint size TryApplyFootprint accepts;
// the summarizer marks larger instances exact-only.
const MaxFootprint = 32

// LineView is one valid line of a set in canonical form (ViewSet).
type LineView struct {
	// Tag is the full block address (the cache's internal tag).
	Tag uint64
	// LastUse is the line's LRU clock reading.
	LastUse uint64
	// Dirty marks a modified line.
	Dirty bool
}

// SetOf returns the set index the byte address addr maps to under the
// current configuration.
func (c *Cache) SetOf(addr uint64) uint64 {
	return (addr >> c.blockShift) & c.setMask
}

// ViewSet returns the set's valid lines ordered LRU-first (ascending
// last-use). Way positions are deliberately absent: two caches whose
// sets hold the same tags in the same recency order with the same
// dirty bits behave identically on every future access sequence, so
// this ordered view is the canonical state the span-parallel replay
// compares and splices (way placement only permutes victim identity
// between lines that are equal in the view).
func (c *Cache) ViewSet(set uint64) []LineView {
	base := int(set) * c.ways
	view := make([]LineView, 0, c.ways)
	for i := base; i < base+c.ways; i++ {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		view = append(view, LineView{Tag: ln.tag, LastUse: ln.lastUse, Dirty: ln.dirty})
	}
	// Insertion sort by LastUse; ticks are unique per cache, and sets
	// hold at most a handful of ways.
	for i := 1; i < len(view); i++ {
		for j := i; j > 0 && view[j].LastUse < view[j-1].LastUse; j-- {
			view[j], view[j-1] = view[j-1], view[j]
		}
	}
	return view
}

// StoreSet overwrites one set with the given lines (at most Ways,
// already carrying their final last-use ticks): lines fill the ways in
// order and the remaining ways are invalidated. Used by the span
// splice to install a verified span's final set state.
func (c *Cache) StoreSet(set uint64, lines []LineView) {
	base := int(set) * c.ways
	for i := 0; i < c.ways; i++ {
		if i < len(lines) {
			c.lines[base+i] = line{
				tag:     lines[i].Tag,
				lastUse: lines[i].LastUse,
				valid:   true,
				dirty:   lines[i].Dirty,
			}
		} else {
			c.lines[base+i] = line{}
		}
	}
}

// Tick returns the cache's LRU clock (one tick per access).
func (c *Cache) Tick() uint64 { return c.useTick }

// AdvanceTick advances the LRU clock by n accesses without touching
// any line — the span splice's bulk equivalent of the per-access
// increment.
func (c *Cache) AdvanceTick(n uint64) { c.useTick += n }

// AddStats adds a span's privately accumulated event-counter deltas.
func (c *Cache) AddStats(d Stats) {
	c.stats.Accesses += d.Accesses
	c.stats.Hits += d.Hits
	c.stats.Misses += d.Misses
	c.stats.Writebacks += d.Writebacks
	c.stats.Resizes += d.Resizes
	c.stats.FlushWritebacks += d.FlushWritebacks
}

// Sub returns s minus start, field-wise — the event-count delta
// between two Stats readings of the same cache.
func (s Stats) Sub(start Stats) Stats {
	return Stats{
		Accesses:        s.Accesses - start.Accesses,
		Hits:            s.Hits - start.Hits,
		Misses:          s.Misses - start.Misses,
		Writebacks:      s.Writebacks - start.Writebacks,
		Resizes:         s.Resizes - start.Resizes,
		FlushWritebacks: s.FlushWritebacks - start.FlushWritebacks,
	}
}
