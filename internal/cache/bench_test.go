package cache

import "testing"

// benchAddrs builds an address stream with a hot working set (mostly
// hits) plus a cold sweep (forced misses and dirty evictions), so the
// benchmark exercises the hit probe, the victim scan, and the fill
// path in realistic proportions.
func benchAddrs(n int) []uint64 {
	addrs := make([]uint64, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range addrs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if i%16 == 15 {
			addrs[i] = state % (1 << 24) // cold: spans far beyond any L1
		} else {
			addrs[i] = state % (16 << 10) // hot: fits a 32 KB cache
		}
	}
	return addrs
}

func benchCacheAccess(b *testing.B, ways int) {
	c := MustNew("bench", 32<<10, 64, ways)
	addrs := benchAddrs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		c.Access(a, i%4 == 0)
	}
	if c.Stats().Accesses == 0 {
		b.Fatal("no accesses recorded")
	}
}

func BenchmarkCacheAccessDirect(b *testing.B) { benchCacheAccess(b, 1) }
func BenchmarkCacheAccess2Way(b *testing.B)   { benchCacheAccess(b, 2) }
func BenchmarkCacheAccess4Way(b *testing.B)   { benchCacheAccess(b, 4) }

func BenchmarkTLBAccess(b *testing.B) {
	t := NewTLB("bench", 128, 4096)
	addrs := benchAddrs(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Access(addrs[i%len(addrs)] << 8) // spread across pages
	}
}
