package optimize

import (
	"math/rand"
)

// zeroFreshLimit aborts a search whose recent generations/epochs found
// no unevaluated candidates at all — the degenerate end state of a
// small space fully enumerated — independent of the early-stop knob.
const zeroFreshLimit = 25

// immigrants is the number of fresh random genomes injected per GA
// generation, keeping the distinct-candidate budget draining even when
// the population has converged.
const immigrants = 2

// randomGenome draws a uniform point of the space.
func randomGenome(space *Space, rng *rand.Rand) []int {
	dims := space.dims()
	g := make([]int, len(dims))
	for i, d := range dims {
		g[i] = rng.Intn(d)
	}
	return g
}

// mutate flips each gene to a uniformly drawn different choice with
// probability rate (dimensions with a single choice are left alone).
func mutate(space *Space, rng *rand.Rand, g []int, rate float64) {
	dims := space.dims()
	for i, d := range dims {
		if d < 2 || rng.Float64() >= rate {
			continue
		}
		nv := rng.Intn(d - 1)
		if nv >= g[i] {
			nv++
		}
		g[i] = nv
	}
}

// crossover builds a child by uniform gene selection from two parents.
func crossover(rng *rand.Rand, a, b []int) []int {
	child := make([]int, len(a))
	for i := range a {
		if rng.Intn(2) == 0 {
			child[i] = a[i]
		} else {
			child[i] = b[i]
		}
	}
	return child
}

// tournament selects the best of k uniformly drawn population members.
func tournament(rng *rand.Rand, pop []*Eval, k int) *Eval {
	best := pop[rng.Intn(len(pop))]
	for i := 1; i < k; i++ {
		c := pop[rng.Intn(len(pop))]
		if better(c, best) {
			best = c
		}
	}
	return best
}

// runGA drives the elitist genetic algorithm: tournament selection,
// uniform crossover, per-gene mutation, elitist truncation, plus a
// trickle of random immigrants. All randomness flows from the spec's
// seed through one rand stream consumed on a single goroutine, and
// batch evaluation merges in index order, so two same-seed runs take
// identical decisions. Returns the best candidate and the generation
// count.
func runGA(ev *evaluator, spec Spec, progress Progress) (*Eval, int, error) {
	rng := rand.New(rand.NewSource(spec.Seed))

	initial := make([][]int, spec.Population)
	for i := range initial {
		initial[i] = randomGenome(ev.space, rng)
	}
	evals, err := ev.evalBatch(initial)
	if err != nil {
		return nil, 0, err
	}
	pop := compact(evals)
	sortEvals(pop)
	var best *Eval
	if len(pop) > 0 {
		best = pop[0]
	}

	gens := 0
	stale, zeroFresh := 0, 0
	if progress != nil && best != nil {
		progress(gens, ev.evaluated, *best, true)
	}
	for !ev.done() && zeroFresh < zeroFreshLimit {
		if spec.EarlyStop > 0 && stale >= spec.EarlyStop {
			break
		}
		gens++
		offspring := make([][]int, 0, spec.Population)
		for len(offspring) < spec.Population-immigrants {
			p1 := tournament(rng, pop, spec.Tournament)
			p2 := tournament(rng, pop, spec.Tournament)
			child := crossover(rng, p1.Genome, p2.Genome)
			mutate(ev.space, rng, child, spec.MutationRate)
			offspring = append(offspring, child)
		}
		for len(offspring) < spec.Population {
			offspring = append(offspring, randomGenome(ev.space, rng))
		}

		before := ev.evaluated
		childEvals, err := ev.evalBatch(offspring)
		if err != nil {
			return nil, gens, err
		}
		if ev.evaluated == before {
			zeroFresh++
		} else {
			zeroFresh = 0
		}

		// Elitist truncation: the elite parents compete with every
		// offspring for the next population.
		next := make([]*Eval, 0, spec.Elite+len(childEvals))
		next = append(next, pop[:min(spec.Elite, len(pop))]...)
		next = append(next, compact(childEvals)...)
		next = dedupe(next)
		sortEvals(next)
		if len(next) > spec.Population {
			next = next[:spec.Population]
		}
		if len(next) > 0 {
			pop = next
		}

		improved := best == nil || better(pop[0], best)
		if improved {
			best = pop[0]
			stale = 0
		} else {
			stale++
		}
		if progress != nil && best != nil {
			progress(gens, ev.evaluated, *best, improved)
		}
	}
	return best, gens, nil
}

// compact drops nil entries (budget-truncated batch slots).
func compact(evals []*Eval) []*Eval {
	out := evals[:0]
	for _, e := range evals {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// dedupe keeps each genome's first occurrence.
func dedupe(evals []*Eval) []*Eval {
	seen := make(map[string]bool, len(evals))
	out := evals[:0]
	for _, e := range evals {
		k := key(e.Genome)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}
