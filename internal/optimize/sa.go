package optimize

import (
	"math"
	"math/rand"
)

// neighbor perturbs one uniformly chosen dimension to a different
// choice (dimensions with a single choice are skipped by redraw).
func neighbor(space *Space, rng *rand.Rand, g []int) []int {
	dims := space.dims()
	n := append([]int(nil), g...)
	for {
		i := rng.Intn(len(dims))
		if dims[i] < 2 {
			continue
		}
		nv := rng.Intn(dims[i] - 1)
		if nv >= n[i] {
			nv++
		}
		n[i] = nv
		return n
	}
}

// runSA drives simulated annealing with geometric cooling and
// restart-on-stagnation: a Metropolis walk over single-dimension
// neighbors, accepting uphill moves with probability exp(-Δ/T) on the
// relative objective delta; after RestartAfter stagnant epochs the
// walk restarts from a fresh random point at full temperature (the
// best-so-far is never lost). Like the GA, all randomness flows from
// one seeded stream on one goroutine, so same-seed runs are
// decision-identical. Returns the best candidate and the epoch count.
func runSA(ev *evaluator, spec Spec, progress Progress) (*Eval, int, error) {
	rng := rand.New(rand.NewSource(spec.Seed))

	evalOne := func(g []int) (*Eval, error) {
		evals, err := ev.evalBatch([][]int{g})
		if err != nil {
			return nil, err
		}
		return evals[0], nil
	}

	cur, err := evalOne(randomGenome(ev.space, rng))
	if err != nil {
		return nil, 0, err
	}
	best := cur
	temp := spec.InitialTemp
	epochs := 0
	stale, sinceRestart, zeroFresh := 0, 0, 0
	if progress != nil && best != nil {
		progress(epochs, ev.evaluated, *best, true)
	}
	for !ev.done() && cur != nil && zeroFresh < zeroFreshLimit {
		if spec.EarlyStop > 0 && stale >= spec.EarlyStop {
			break
		}
		epochs++
		improvedEpoch := false
		before := ev.evaluated
		for step := 0; step < spec.Population && !ev.done(); step++ {
			cand, err := evalOne(neighbor(ev.space, rng, cur.Genome))
			if err != nil {
				return nil, epochs, err
			}
			if cand == nil { // budget exhausted mid-epoch
				break
			}
			cs, ns := cur.score(ev.maxSlowdown), cand.score(ev.maxSlowdown)
			delta := 0.0
			if cs > 0 {
				delta = (ns - cs) / cs
			} else if ns > cs {
				delta = 1
			}
			if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
				cur = cand
			}
			if better(cand, best) {
				best = cand
				improvedEpoch = true
			}
		}
		if ev.evaluated == before {
			zeroFresh++
		} else {
			zeroFresh = 0
		}
		temp *= spec.Cooling
		if improvedEpoch {
			stale, sinceRestart = 0, 0
		} else {
			stale++
			sinceRestart++
		}
		if spec.RestartAfter > 0 && sinceRestart >= spec.RestartAfter && !ev.done() {
			restart, err := evalOne(randomGenome(ev.space, rng))
			if err != nil {
				return nil, epochs, err
			}
			if restart != nil {
				cur = restart
				if better(restart, best) {
					best = restart
					improvedEpoch = true
					stale = 0
				}
			}
			temp = spec.InitialTemp
			sinceRestart = 0
		}
		if progress != nil && best != nil {
			progress(epochs, ev.evaluated, *best, improvedEpoch)
		}
	}
	return best, epochs, nil
}
