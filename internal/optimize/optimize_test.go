package optimize

import (
	"encoding/json"
	"testing"

	"acedo/internal/experiment"
	"acedo/internal/workload"
)

// testOptions returns small, fast base options for search tests.
func testOptions(t *testing.T) experiment.Options {
	t.Helper()
	opt := experiment.OptionsAtScale(40)
	opt.Parallelism = 4
	return opt
}

// testSpec returns a tiny normalised search spec.
func testSpec(t *testing.T, strategy string, budget int) Spec {
	t.Helper()
	s, err := Spec{Strategy: strategy, Budget: budget, Seed: 7, Population: 8, Elite: 2}.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return s
}

func benchSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return w
}

func TestSpecNormalizeDefaults(t *testing.T) {
	s, err := Spec{}.Normalize()
	if err != nil {
		t.Fatalf("Normalize zero spec: %v", err)
	}
	if s.Strategy != "ga" || s.Objective != ObjectiveEDP || s.Budget != 1000 ||
		s.Seed != 1 || s.MaxSlowdown != 0.05 || s.Population != 32 {
		t.Errorf("unexpected defaults: %+v", s)
	}
	// Normalising twice is a fixed point — the property the server's
	// content-addressed cache key relies on.
	again, err := s.Normalize()
	if err != nil {
		t.Fatalf("re-Normalize: %v", err)
	}
	if again != s {
		t.Errorf("Normalize not idempotent: %+v vs %+v", again, s)
	}

	for _, bad := range []Spec{
		{Strategy: "bogus"},
		{Objective: "speed"},
		{Budget: -1},
		{MaxSlowdown: -0.1},
		{Population: 1},
		{Elite: 31, Population: 8},
		{MutationRate: 1.5},
		{Cooling: 1.0},
		{EarlyStop: -2},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an invalid spec", bad)
		}
	}
}

func TestDefaultSpace(t *testing.T) {
	space := DefaultSpace()
	if err := space.Validate(); err != nil {
		t.Fatalf("DefaultSpace invalid: %v", err)
	}
	if got := space.Size(); got < 1000 {
		t.Errorf("space size %d; the widened space must offer ≥ 1000 points", got)
	}

	base := experiment.DefaultOptions()
	// The paper's own configuration is the all-defaults genome.
	paper := []int{0, 1, 0, 1, 0, 1, 2, 1}
	opt, err := space.Apply(base, paper)
	if err != nil {
		t.Fatalf("Apply paper genome: %v", err)
	}
	if opt.Machine.L1DSizes[3] != 64*1024 || opt.Machine.L1DWays != 2 ||
		opt.Machine.L2Ways != 4 || opt.Machine.IQSizes != nil ||
		opt.VM.SampleInterval != base.VM.SampleInterval ||
		opt.Core.SamplePeriod != 48 || opt.Core.PerfThreshold != 0.02 {
		t.Errorf("paper genome did not reproduce the default configuration: %+v", opt.Machine)
	}

	// An IQ-enabled genome must switch on the third unit and its size
	// class.
	iq := []int{0, 1, 0, 1, 1, 1, 2, 1}
	opt, err = space.Apply(base, iq)
	if err != nil {
		t.Fatalf("Apply IQ genome: %v", err)
	}
	if len(opt.Machine.IQSizes) != 4 {
		t.Errorf("IQ genome left the issue queue off: %+v", opt.Machine.IQSizes)
	}

	if _, err := space.Apply(base, []int{0, 0, 0}); err == nil {
		t.Error("Apply accepted a short genome")
	}
	if _, err := space.Apply(base, []int{99, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("Apply accepted an out-of-range genome")
	}
}

// TestSearchDeterminism pins the acceptance criterion: two same-seed
// searches return byte-identical result documents, for both
// strategies.
func TestSearchDeterminism(t *testing.T) {
	w := benchSpec(t, "compress")
	space := DefaultSpace()
	for _, strategy := range []string{"ga", "sa"} {
		spec := testSpec(t, strategy, 24)
		var docs [][]byte
		for i := 0; i < 2; i++ {
			res, stats, err := RunBench(w, testOptions(t), space, spec, nil)
			if err != nil {
				t.Fatalf("%s run %d: %v", strategy, i, err)
			}
			if stats.Base == nil || stats.ACE == nil {
				t.Fatalf("%s run %d: missing reference runs", strategy, i)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			docs = append(docs, b)
		}
		if string(docs[0]) != string(docs[1]) {
			t.Errorf("%s: same-seed results differ:\n%s\n%s", strategy, docs[0], docs[1])
		}
	}
}

// TestSearchSpendsBudget checks the distinct-candidate budget is spent
// exactly (no early stop configured) and that the budget caps at the
// space size.
func TestSearchSpendsBudget(t *testing.T) {
	w := benchSpec(t, "compress")
	space := DefaultSpace()
	spec := testSpec(t, "ga", 24)
	res, stats, err := RunBench(w, testOptions(t), space, spec, nil)
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if res.Evaluated != 24 {
		t.Errorf("evaluated %d candidates, want exactly the budget 24", res.Evaluated)
	}
	if res.Best.Config == nil || res.Best.Description == "" {
		t.Errorf("best candidate missing config/description: %+v", res.Best)
	}
	if res.SpaceSize != space.Size() {
		t.Errorf("space size %d, want %d", res.SpaceSize, space.Size())
	}
	if stats.SearchInstr == 0 {
		t.Error("stats counted no search instructions")
	}
	// The search must replay, not re-record: at most the two reference
	// runs plus zero fallbacks for an untruncated trace.
	if stats.Fallbacks != 0 {
		t.Errorf("%d candidate evaluations fell back to direct execution", stats.Fallbacks)
	}

	// A budget above the space size caps at full enumeration: shrink
	// the space to make that affordable.
	tiny := space
	tiny.L1DLadders = tiny.L1DLadders[:1]
	tiny.L1DWays = []int{2}
	tiny.L2Ladders = tiny.L2Ladders[:1]
	tiny.L2Ways = []int{4}
	tiny.IQLadders = [][]int{nil}
	tiny.SampleFactors = []Factor{{1, 1}}
	tiny.SamplePeriods = []uint64{48}
	// 4 points remain (perf thresholds).
	spec = testSpec(t, "ga", 1000)
	res, _, err = RunBench(w, testOptions(t), tiny, spec, nil)
	if err != nil {
		t.Fatalf("RunBench tiny space: %v", err)
	}
	if res.Evaluated != tiny.Size() {
		t.Errorf("evaluated %d, want the full tiny space %d", res.Evaluated, tiny.Size())
	}
}

// TestProgressReports checks the progress callback fires with a
// monotonic evaluation count and a final best matching the document.
func TestProgressReports(t *testing.T) {
	w := benchSpec(t, "compress")
	spec := testSpec(t, "sa", 16)
	var calls int
	last := -1
	var lastBest Eval
	res, _, err := RunBench(w, testOptions(t), DefaultSpace(), spec,
		func(gen, evaluated int, best Eval, improved bool) {
			calls++
			if evaluated < last {
				t.Errorf("evaluation count went backwards: %d after %d", evaluated, last)
			}
			last = evaluated
			lastBest = best
		})
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if key(lastBest.Genome) != key(res.Best.Config) {
		t.Errorf("final progress best %v != document best %v", lastBest.Genome, res.Best.Config)
	}
}
