package optimize

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/rtrace"
	"acedo/internal/workload"
)

// Objectives (Spec.Objective).
const (
	// ObjectiveEDP minimises the energy-delay product: configurable-
	// unit energy (nJ) × cycles.
	ObjectiveEDP = "edp"
	// ObjectiveEnergy minimises configurable-unit energy alone (the
	// slowdown constraint still bounds the delay side).
	ObjectiveEnergy = "energy"
)

// Spec is the wire-format search parameterisation carried inside a job
// spec (server.JobSpec.Optimize). The zero value normalises to the
// standard search: a seeded genetic algorithm minimising EDP over 1000
// distinct candidates under a 5% slowdown constraint.
type Spec struct {
	// Strategy selects the metaheuristic: "ga" (genetic algorithm,
	// the default) or "sa" (simulated annealing with restart).
	Strategy string `json:"strategy,omitempty"`
	// Objective selects what to minimise: "edp" (default) or
	// "energy".
	Objective string `json:"objective,omitempty"`
	// Budget is the number of distinct candidate configurations to
	// evaluate (memoized re-visits are free); 0 normalises to 1000.
	// The effective budget is capped at the space size.
	Budget int `json:"budget,omitempty"`
	// Seed seeds the search's random stream; equal seeds reproduce
	// the search decision-for-decision. 0 normalises to 1.
	Seed int64 `json:"seed,omitempty"`
	// MaxSlowdown is the feasibility constraint: a candidate whose
	// cycles exceed the recorded baseline's by more than this
	// fraction ranks strictly below every feasible candidate. 0
	// normalises to 0.05.
	MaxSlowdown float64 `json:"max_slowdown,omitempty"`

	// Population is the GA population size (and the SA epoch length);
	// 0 normalises to 32.
	Population int `json:"population,omitempty"`
	// Elite is the number of best parents the GA carries over
	// unchanged each generation; 0 normalises to 4.
	Elite int `json:"elite,omitempty"`
	// MutationRate is the GA's per-gene mutation probability; 0
	// normalises to 0.15.
	MutationRate float64 `json:"mutation_rate,omitempty"`
	// Tournament is the GA's selection tournament size; 0 normalises
	// to 3.
	Tournament int `json:"tournament,omitempty"`

	// InitialTemp is the SA start temperature on the relative-delta
	// scale; 0 normalises to 0.08.
	InitialTemp float64 `json:"initial_temp,omitempty"`
	// Cooling is the SA geometric cooling factor per epoch; 0
	// normalises to 0.92.
	Cooling float64 `json:"cooling,omitempty"`
	// RestartAfter restarts the SA walk from a fresh random point
	// (at full temperature) after this many consecutive epochs
	// without improving the best; 0 normalises to 12.
	RestartAfter int `json:"restart_after,omitempty"`

	// EarlyStop, when positive, ends the search after this many
	// consecutive generations (GA) or epochs (SA) without improving
	// the best candidate, even with budget remaining. 0 (the
	// default) disables early stopping, so the full budget is spent.
	EarlyStop int `json:"early_stop,omitempty"`
}

// Normalize fills defaults and validates, returning the canonical form
// every equivalent spec shares (the server's content-addressed cache
// hashes the canonical form).
func (s Spec) Normalize() (Spec, error) {
	if s.Strategy == "" {
		s.Strategy = "ga"
	}
	if s.Strategy != "ga" && s.Strategy != "sa" {
		return s, fmt.Errorf("optimize: unknown strategy %q (want ga or sa)", s.Strategy)
	}
	if s.Objective == "" {
		s.Objective = ObjectiveEDP
	}
	if s.Objective != ObjectiveEDP && s.Objective != ObjectiveEnergy {
		return s, fmt.Errorf("optimize: unknown objective %q (want edp or energy)", s.Objective)
	}
	if s.Budget == 0 {
		s.Budget = 1000
	}
	if s.Budget < 1 {
		return s, fmt.Errorf("optimize: budget %d must be positive", s.Budget)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxSlowdown == 0 {
		s.MaxSlowdown = 0.05
	}
	if s.MaxSlowdown < 0 {
		return s, fmt.Errorf("optimize: max_slowdown %v must be non-negative", s.MaxSlowdown)
	}
	if s.Population == 0 {
		s.Population = 32
	}
	if s.Population < 2 {
		return s, fmt.Errorf("optimize: population %d must be at least 2", s.Population)
	}
	if s.Elite == 0 {
		s.Elite = 4
	}
	if s.Elite < 0 || s.Elite >= s.Population {
		return s, fmt.Errorf("optimize: elite %d out of [0,population)", s.Elite)
	}
	if s.MutationRate == 0 {
		s.MutationRate = 0.15
	}
	if s.MutationRate < 0 || s.MutationRate > 1 {
		return s, fmt.Errorf("optimize: mutation_rate %v out of [0,1]", s.MutationRate)
	}
	if s.Tournament == 0 {
		s.Tournament = 3
	}
	if s.Tournament < 1 {
		return s, fmt.Errorf("optimize: tournament %d must be positive", s.Tournament)
	}
	if s.InitialTemp == 0 {
		s.InitialTemp = 0.08
	}
	if s.InitialTemp < 0 {
		return s, fmt.Errorf("optimize: initial_temp %v must be positive", s.InitialTemp)
	}
	if s.Cooling == 0 {
		s.Cooling = 0.92
	}
	if s.Cooling <= 0 || s.Cooling >= 1 {
		return s, fmt.Errorf("optimize: cooling %v out of (0,1)", s.Cooling)
	}
	if s.RestartAfter == 0 {
		s.RestartAfter = 12
	}
	if s.RestartAfter < 0 {
		return s, fmt.Errorf("optimize: restart_after %d must be non-negative", s.RestartAfter)
	}
	if s.EarlyStop < 0 {
		return s, fmt.Errorf("optimize: early_stop %d must be non-negative", s.EarlyStop)
	}
	return s, nil
}

// Eval is one evaluated candidate: its genome and the replay's
// objective-relevant measurements.
type Eval struct {
	Genome   []int
	Value    float64 // objective value (edp or energy)
	Feasible bool    // slowdown within the constraint
	Instr    uint64
	Cycles   uint64
	EnergyNJ float64
	EDP      float64
	Slowdown float64

	// fellBack marks an evaluation that could not replay and
	// re-executed directly (still bit-exact; counted in RunStats).
	fellBack bool
}

// better ranks candidates: feasible before infeasible, then by
// objective value, then (for full determinism under value ties) by
// genome lexicographic order.
func better(a, b *Eval) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	for i := range a.Genome {
		if a.Genome[i] != b.Genome[i] {
			return a.Genome[i] < b.Genome[i]
		}
	}
	return false
}

// score is the scalar the SA acceptance rule compares: the objective
// value, multiplied up for infeasible candidates in proportion to the
// constraint violation, so the walk is steered back toward the
// feasible region without a cliff.
func (e *Eval) score(maxSlowdown float64) float64 {
	if e.Feasible {
		return e.Value
	}
	return e.Value * (1 + 10*(e.Slowdown-maxSlowdown))
}

// Progress observes the search after every generation (GA) or epoch
// (SA): the generation counter, distinct candidates evaluated so far,
// the best candidate to date, and whether this step improved it.
type Progress func(generation, evaluated int, best Eval, improved bool)

// CandidateResult is one configuration's measured outcome in the
// result document. Config is the genome (dimension-order indices into
// the space; nil for the fixed reference configurations) and
// Description its human-readable rendering.
type CandidateResult struct {
	Config      []int   `json:"config,omitempty"`
	Description string  `json:"description"`
	Instr       uint64  `json:"instr"`
	Cycles      uint64  `json:"cycles"`
	EnergyNJ    float64 `json:"energy_nj"`
	EDP         float64 `json:"edp_nj_cycles"`
	Slowdown    float64 `json:"slowdown"`
	Feasible    bool    `json:"feasible"`
}

// BenchResult is one benchmark's search outcome: the best candidate
// found, the paper's ACE scheme at the default configuration as the
// reference point, and the full-size baseline. It contains no wall
// times or timestamps — two same-seed searches produce byte-identical
// documents.
type BenchResult struct {
	Benchmark   string `json:"benchmark"`
	Strategy    string `json:"strategy"`
	Objective   string `json:"objective"`
	SpaceSize   int    `json:"space_size"`
	Evaluated   int    `json:"evaluated"`
	Generations int    `json:"generations"`

	Best     CandidateResult `json:"best"`
	ACE      CandidateResult `json:"ace"`
	Baseline CandidateResult `json:"baseline"`

	// EDPSavingVsACE is the best candidate's fractional EDP reduction
	// versus the ACE reference (positive = the search beat the
	// paper's configuration).
	EDPSavingVsACE float64 `json:"edp_saving_vs_ace"`
	// EnergySavingVsACE is the corresponding energy reduction.
	EnergySavingVsACE float64 `json:"energy_saving_vs_ace"`
}

// RunStats is the non-deterministic side channel of one benchmark's
// search — wall times and dispositions for job metadata, kept out of
// the result document so same-seed documents stay byte-identical.
type RunStats struct {
	// Base and ACE are the reference runs (recorded baseline and
	// default-configuration hotspot replay).
	Base *experiment.Result
	ACE  *experiment.Result
	// SearchInstr totals the instructions simulated across all
	// candidate evaluations; SearchWall is the whole search's host
	// time; Fallbacks counts candidate evaluations that could not
	// replay and re-executed directly.
	SearchInstr uint64
	SearchWall  time.Duration
	Fallbacks   int
}

// RunBench searches the space for one benchmark: record the baseline
// once, replay the ACE reference, then drive the spec's strategy with
// every candidate evaluation a replay of the recorded stream. The spec
// must be normalised; the returned document is a pure function of
// (workload, base options, space, spec) — seeded and parallel-safe.
//
// base.IntraParallelism rides through to every replay: passive runs
// (the recorded baseline served from the trace cache) split across
// goroutines, while hotspot candidate evaluations — whose AOS feeds
// decisions back into the machine — automatically take the serial
// summarized path. Either way results are bit-identical at any
// setting, so the document is unchanged by the knob.
func RunBench(w workload.Spec, base experiment.Options, space Space, spec Spec, progress Progress) (*BenchResult, *RunStats, error) {
	if err := space.Validate(); err != nil {
		return nil, nil, err
	}
	w = base.AdjustWorkload(w)
	// Candidate replays run sink-free: a search is thousands of runs,
	// and its telemetry is the per-generation progress stream, not
	// the per-run event firehose.
	base.Sink = nil

	start := time.Now()
	baseRes, tr, err := experiment.RecordedBaseline(w, base)
	if err != nil {
		return nil, nil, err
	}
	aceRes, err := experiment.ReplayScheme(w, experiment.SchemeHotspot, base, tr)
	if err != nil {
		return nil, nil, err
	}

	ev := &evaluator{
		w: w, base: base, space: &space, tr: tr,
		baseCycles:  baseRes.Cycles,
		maxSlowdown: spec.MaxSlowdown,
		objective:   spec.Objective,
		target:      min(spec.Budget, space.Size()),
		par:         base.Parallelism,
		memo:        make(map[string]*Eval),
	}

	var best *Eval
	var gens int
	switch spec.Strategy {
	case "sa":
		best, gens, err = runSA(ev, spec, progress)
	default:
		best, gens, err = runGA(ev, spec, progress)
	}
	if err != nil {
		return nil, nil, err
	}
	if best == nil {
		return nil, nil, fmt.Errorf("optimize: %s search evaluated no candidates", spec.Strategy)
	}

	res := &BenchResult{
		Benchmark:   w.Name,
		Strategy:    spec.Strategy,
		Objective:   spec.Objective,
		SpaceSize:   space.Size(),
		Evaluated:   ev.evaluated,
		Generations: gens,
		Best:        ev.candidateResult(best),
		ACE:         referenceResult("paper default (hotspot)", aceRes, baseRes.Cycles, spec.MaxSlowdown),
		Baseline:    referenceResult("full-size baseline", baseRes, baseRes.Cycles, spec.MaxSlowdown),
	}
	if res.ACE.EDP > 0 {
		res.EDPSavingVsACE = (res.ACE.EDP - res.Best.EDP) / res.ACE.EDP
	}
	if res.ACE.EnergyNJ > 0 {
		res.EnergySavingVsACE = (res.ACE.EnergyNJ - res.Best.EnergyNJ) / res.ACE.EnergyNJ
	}
	stats := &RunStats{
		Base: baseRes, ACE: aceRes,
		SearchInstr: ev.instr,
		SearchWall:  time.Since(start),
		Fallbacks:   ev.fallbacks,
	}
	return res, stats, nil
}

// candidateResult renders an evaluated candidate for the document.
func (ev *evaluator) candidateResult(e *Eval) CandidateResult {
	return CandidateResult{
		Config:      e.Genome,
		Description: ev.space.Describe(e.Genome),
		Instr:       e.Instr,
		Cycles:      e.Cycles,
		EnergyNJ:    e.EnergyNJ,
		EDP:         e.EDP,
		Slowdown:    e.Slowdown,
		Feasible:    e.Feasible,
	}
}

// referenceResult renders a fixed reference run (baseline or default
// ACE) for the document.
func referenceResult(desc string, r *experiment.Result, baseCycles uint64, maxSlowdown float64) CandidateResult {
	energy := r.L1DEnergyNJ + r.L2EnergyNJ + r.IQEnergyNJ
	slow := 0.0
	if baseCycles > 0 {
		slow = float64(r.Cycles)/float64(baseCycles) - 1
	}
	return CandidateResult{
		Description: desc,
		Instr:       r.Instr,
		Cycles:      r.Cycles,
		EnergyNJ:    energy,
		EDP:         energy * float64(r.Cycles),
		Slowdown:    slow,
		Feasible:    slow <= maxSlowdown,
	}
}

// evaluator measures candidates: one replay of the recorded stream per
// distinct genome, memoized, with the distinct-evaluation count as the
// search budget. Batches evaluate in parallel (bounded by the base
// options' Parallelism) and are merged in index order, so results are
// independent of scheduling.
type evaluator struct {
	w           workload.Spec
	base        experiment.Options
	space       *Space
	tr          *rtrace.Trace
	baseCycles  uint64
	maxSlowdown float64
	objective   string
	target      int // distinct evaluations to perform
	par         int

	memo      map[string]*Eval
	evaluated int
	instr     uint64
	fallbacks int
}

// done reports whether the evaluation budget is exhausted.
func (ev *evaluator) done() bool { return ev.evaluated >= ev.target }

// remaining returns the unspent distinct-evaluation budget.
func (ev *evaluator) remaining() int { return ev.target - ev.evaluated }

// evalBatch evaluates a batch of genomes, returning one Eval per input
// in order. Genomes already memoized cost nothing; fresh genomes are
// evaluated in parallel, deduplicated within the batch, and truncated
// (in batch order) to the remaining budget — truncated entries return
// nil.
func (ev *evaluator) evalBatch(genomes [][]int) ([]*Eval, error) {
	out := make([]*Eval, len(genomes))
	type fresh struct {
		genome []int
		key    string
	}
	var work []fresh
	seen := make(map[string]bool)
	for _, g := range genomes {
		k := key(g)
		if ev.memo[k] != nil || seen[k] {
			continue
		}
		if len(work) >= ev.remaining() {
			break
		}
		seen[k] = true
		work = append(work, fresh{genome: g, key: k})
	}

	evals := make([]*Eval, len(work))
	errs := make([]error, len(work))
	par := ev.par
	if par <= 0 {
		par = 4
	}
	if par > len(work) {
		par = len(work)
	}
	if par > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					evals[i], errs[i] = ev.evalOneDirect(work[i].genome)
				}
			}()
		}
		for i := range work {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range work {
			evals[i], errs[i] = ev.evalOneDirect(work[i].genome)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		ev.memo[work[i].key] = evals[i]
		ev.evaluated++
		ev.instr += evals[i].Instr
		if ev.dispositionFallback(evals[i]) {
			ev.fallbacks++
		}
	}
	for i, g := range genomes {
		out[i] = ev.memo[key(g)]
	}
	return out, nil
}

// dispositionFallback reports whether an eval re-executed directly
// (recorded on the Eval during evalOneDirect via a sentinel Instr — see
// there; kept as a method for symmetry and future extension).
func (ev *evaluator) dispositionFallback(e *Eval) bool { return e.fellBack }

// evalOneDirect replays one candidate (no memoization, no budget
// accounting — evalBatch owns both).
func (ev *evaluator) evalOneDirect(g []int) (*Eval, error) {
	opt, err := ev.space.Apply(ev.base, g)
	if err != nil {
		return nil, err
	}
	r, err := experiment.ReplayScheme(ev.w, experiment.SchemeHotspot, opt, ev.tr)
	if err != nil {
		return nil, err
	}
	energy := r.L1DEnergyNJ + r.L2EnergyNJ + r.IQEnergyNJ
	edp := energy * float64(r.Cycles)
	slow := 0.0
	if ev.baseCycles > 0 {
		slow = float64(r.Cycles)/float64(ev.baseCycles) - 1
	}
	e := &Eval{
		Genome:   append([]int(nil), g...),
		Instr:    r.Instr,
		Cycles:   r.Cycles,
		EnergyNJ: energy,
		EDP:      edp,
		Slowdown: slow,
		Feasible: slow <= ev.maxSlowdown,
		fellBack: r.Disposition == experiment.RunFallback || r.Disposition == experiment.RunDirect,
	}
	if ev.objective == ObjectiveEnergy {
		e.Value = energy
	} else {
		e.Value = edp
	}
	return e, nil
}

// sortEvals orders candidates best-first under the deterministic
// ranking.
func sortEvals(evals []*Eval) {
	sort.SliceStable(evals, func(i, j int) bool { return better(evals[i], evals[j]) })
}
