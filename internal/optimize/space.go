// Package optimize searches a widened adaptive-computing configuration
// space for the most energy-efficient machine + tuner parameterisation
// of each benchmark — the ROADMAP's "search-based scheme optimization"
// item. Where the paper tunes 16 exhaustive L1D×L2 size combinations
// at run time, this package treats the whole environment configuration
// — cache ladders, associativities, the optional issue-queue unit, the
// profiler's sampling interval, and the hotspot tuner's own parameters
// — as a discrete search space of tens of thousands of points, and
// explores it with seeded, fully deterministic metaheuristics (a
// genetic algorithm and simulated annealing; see ga.go / sa.go).
//
// Every candidate evaluation is a cheap rtrace replay of the
// benchmark's once-recorded architectural stream
// (experiment.RecordedBaseline / ReplayScheme): the trace captures
// only fixed-hardware outcomes, so one recording drives replays under
// any candidate's resizable-unit geometry and tuner parameters.
package optimize

import (
	"fmt"
	"strings"

	"acedo/internal/experiment"
	"acedo/internal/machine"
)

const kb = 1024

// Factor is a rational scale factor (Num/Den) applied to the base
// profiler sampling interval, so the interval dimension adapts to
// whatever scale the job runs at instead of hard-coding counts.
type Factor struct {
	Num uint64
	Den uint64
}

// Space is the discrete configuration space: one choice list per
// dimension. A candidate (Genome) picks one index into each list, in
// the fixed dimension order l1d_ladder, l1d_ways, l2_ladder, l2_ways,
// iq_ladder, sample_interval, sample_period, perf_threshold.
type Space struct {
	// L1DLadders are the candidate L1D size-setting lists (ascending,
	// largest = baseline size). All sizes must satisfy the cache
	// geometry of every L1DWays choice.
	L1DLadders [][]int
	// L1DWays are the candidate L1D associativities.
	L1DWays []int
	// L2Ladders are the candidate L2 size-setting lists.
	L2Ladders [][]int
	// L2Ways are the candidate L2 associativities.
	L2Ways []int
	// IQLadders are the candidate issue-queue setting lists; a nil
	// entry disables the third configurable unit (the paper's two-CU
	// machine).
	IQLadders [][]int
	// SampleFactors scale the base profiler sampling interval.
	SampleFactors []Factor
	// SamplePeriods are candidate hotspot-tuner sampling cadences
	// (core.Params.SamplePeriod).
	SamplePeriods []uint64
	// PerfThresholds are candidate performance-degradation bounds,
	// applied to both the hotspot tuner and the BBV comparator.
	PerfThresholds []float64
}

// DimNames are the space's dimension names in genome order.
var DimNames = []string{
	"l1d_ladder", "l1d_ways", "l2_ladder", "l2_ways",
	"iq_ladder", "sample_interval", "sample_period", "perf_threshold",
}

// DefaultSpace returns the standard widened space: 4 L1D ladders × 4
// L1D associativities × 4 L2 ladders × 4 L2 associativities × 3 IQ
// choices × 4 sampling intervals × 4 tuner sample periods × 4
// performance thresholds = 49 152 points, of which the paper's own
// configuration is one.
func DefaultSpace() Space {
	return Space{
		L1DLadders: [][]int{
			{8 * kb, 16 * kb, 32 * kb, 64 * kb}, // paper Table 2
			{4 * kb, 8 * kb, 16 * kb, 32 * kb},
			{16 * kb, 32 * kb, 64 * kb, 128 * kb},
			{4 * kb, 16 * kb, 64 * kb}, // sparse: wider resize steps
		},
		L1DWays: []int{1, 2, 4, 8},
		L2Ladders: [][]int{
			{128 * kb, 256 * kb, 512 * kb, 1024 * kb}, // paper Table 2
			{64 * kb, 128 * kb, 256 * kb, 512 * kb},
			{256 * kb, 512 * kb, 1024 * kb, 2048 * kb},
			{64 * kb, 256 * kb, 1024 * kb},
		},
		L2Ways: []int{2, 4, 8, 16},
		IQLadders: [][]int{
			nil,              // two-CU machine (paper default)
			{16, 32, 48, 64}, // the extension ladder of WithThreeCU
			{8, 16, 32, 64},  // deeper downsizing
		},
		SampleFactors:  []Factor{{1, 2}, {1, 1}, {2, 1}, {4, 1}},
		SamplePeriods:  []uint64{16, 32, 48, 96},
		PerfThresholds: []float64{0.01, 0.02, 0.05, 0.10},
	}
}

// dims returns the number of choices per dimension, in genome order.
func (s *Space) dims() []int {
	return []int{
		len(s.L1DLadders), len(s.L1DWays), len(s.L2Ladders), len(s.L2Ways),
		len(s.IQLadders), len(s.SampleFactors), len(s.SamplePeriods), len(s.PerfThresholds),
	}
}

// Size returns the number of points in the space.
func (s *Space) Size() int {
	n := 1
	for _, d := range s.dims() {
		n *= d
	}
	return n
}

// Validate checks the space: every dimension non-empty and small
// enough to index compactly, factors well-formed, and every cache
// ladder × associativity combination constructible (ascending sizes,
// line-multiple, power-of-two set count) — so an invalid candidate
// cannot surface mid-search.
func (s *Space) Validate() error {
	for i, d := range s.dims() {
		if d == 0 {
			return fmt.Errorf("optimize: dimension %s is empty", DimNames[i])
		}
		if d > 255 {
			return fmt.Errorf("optimize: dimension %s has %d choices (max 255)", DimNames[i], d)
		}
	}
	for _, f := range s.SampleFactors {
		if f.Num == 0 || f.Den == 0 {
			return fmt.Errorf("optimize: sample factor %d/%d has a zero term", f.Num, f.Den)
		}
	}
	for _, p := range s.SamplePeriods {
		if p == 0 {
			return fmt.Errorf("optimize: sample period 0")
		}
	}
	for _, th := range s.PerfThresholds {
		if th < 0 || th >= 1 {
			return fmt.Errorf("optimize: perf threshold %v out of [0,1)", th)
		}
	}
	// Probe every ladder × ways combination through the machine
	// constructor: geometry violations fail here, not at candidate
	// evaluation time.
	probe := experiment.DefaultOptions().Machine
	for li, ladder := range s.L1DLadders {
		for wi, ways := range s.L1DWays {
			cfg := probe
			cfg.L1DSizes, cfg.L1DWays = ladder, ways
			if err := machine.ValidateConfig(cfg); err != nil {
				return fmt.Errorf("optimize: l1d_ladder[%d] × l1d_ways[%d]: %w", li, wi, err)
			}
		}
	}
	for li, ladder := range s.L2Ladders {
		for wi, ways := range s.L2Ways {
			cfg := probe
			cfg.L2Sizes, cfg.L2Ways = ladder, ways
			if err := machine.ValidateConfig(cfg); err != nil {
				return fmt.Errorf("optimize: l2_ladder[%d] × l2_ways[%d]: %w", li, wi, err)
			}
		}
	}
	for i, ladder := range s.IQLadders {
		prev := 0
		for _, n := range ladder {
			if n <= prev {
				return fmt.Errorf("optimize: iq_ladder[%d] not ascending", i)
			}
			prev = n
		}
	}
	return nil
}

// checkGenome bounds-checks a candidate against the space.
func (s *Space) checkGenome(g []int) error {
	dims := s.dims()
	if len(g) != len(dims) {
		return fmt.Errorf("optimize: genome has %d dimensions, space has %d", len(g), len(dims))
	}
	for i, v := range g {
		if v < 0 || v >= dims[i] {
			return fmt.Errorf("optimize: %s index %d out of [0,%d)", DimNames[i], v, dims[i])
		}
	}
	return nil
}

// Apply builds a candidate's full experiment options from the base
// options: the genome's machine geometry, issue-queue choice (with the
// matching micro hotspot size class), sampling interval, and tuner
// parameters, validated against the machine and parameter invariants.
// The base options' scale, deadlines, cancellation, and fault wiring
// are preserved.
func (s *Space) Apply(base experiment.Options, g []int) (experiment.Options, error) {
	if err := s.checkGenome(g); err != nil {
		return base, err
	}
	opt := base
	opt.Machine.L1DSizes = s.L1DLadders[g[0]]
	opt.Machine.L1DWays = s.L1DWays[g[1]]
	opt.Machine.L2Sizes = s.L2Ladders[g[2]]
	opt.Machine.L2Ways = s.L2Ways[g[3]]
	if iq := s.IQLadders[g[4]]; iq != nil {
		opt.Machine.IQSizes = iq
		opt.Core.Bounds = base.Core.Bounds.WithMicro(opt.ScaleDiv)
	} else {
		opt.Machine.IQSizes = nil
	}
	f := s.SampleFactors[g[5]]
	iv := base.VM.SampleInterval * f.Num / f.Den
	if iv == 0 {
		iv = 1
	}
	opt.VM.SampleInterval = iv
	opt.Core.SamplePeriod = s.SamplePeriods[g[6]]
	th := s.PerfThresholds[g[7]]
	opt.Core.PerfThreshold = th
	opt.BBV.PerfThreshold = th
	if err := opt.VM.Validate(); err != nil {
		return base, fmt.Errorf("optimize: candidate %v: %w", g, err)
	}
	if err := opt.Core.Validate(); err != nil {
		return base, fmt.Errorf("optimize: candidate %v: %w", g, err)
	}
	if err := opt.BBV.Validate(); err != nil {
		return base, fmt.Errorf("optimize: candidate %v: %w", g, err)
	}
	return opt, nil
}

// Describe renders a candidate human-readably, e.g.
// "L1D 8/16/32/64K 2-way; L2 128/256/512/1024K 4-way; IQ off;
// sample ×1/1; period 48; thresh 0.02".
func (s *Space) Describe(g []int) string {
	if s.checkGenome(g) != nil {
		return fmt.Sprintf("invalid %v", g)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "L1D %s %d-way; L2 %s %d-way; ",
		ladderKB(s.L1DLadders[g[0]]), s.L1DWays[g[1]],
		ladderKB(s.L2Ladders[g[2]]), s.L2Ways[g[3]])
	if iq := s.IQLadders[g[4]]; iq == nil {
		b.WriteString("IQ off; ")
	} else {
		fmt.Fprintf(&b, "IQ %s; ", ladderRaw(iq))
	}
	f := s.SampleFactors[g[5]]
	fmt.Fprintf(&b, "sample ×%d/%d; period %d; thresh %g",
		f.Num, f.Den, s.SamplePeriods[g[6]], s.PerfThresholds[g[7]])
	return b.String()
}

// ladderKB renders cache sizes as slash-joined KB counts.
func ladderKB(sizes []int) string {
	var b strings.Builder
	for i, n := range sizes {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", n/kb)
	}
	b.WriteString("K")
	return b.String()
}

// ladderRaw renders entry counts slash-joined.
func ladderRaw(sizes []int) string {
	var b strings.Builder
	for i, n := range sizes {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	return b.String()
}

// key packs a genome into a map key (dimensions are < 256 choices, see
// Validate).
func key(g []int) string {
	b := make([]byte, len(g))
	for i, v := range g {
		b[i] = byte(v)
	}
	return string(b)
}
