package cluster

import (
	"fmt"
	"math"
	"testing"
)

// keys returns n distinct SpecHash-shaped keys.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

// TestRingDeterministic checks that every member computes the same
// ring: two independently built rings over the same membership agree
// on every key, regardless of the node-list order they were given.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n0", "n1", "n2"})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	b, err := NewRing([]string{"n2", "n0", "n1", "n0"}) // shuffled, with a duplicate
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if a.Size() != 3 || b.Size() != 3 {
		t.Fatalf("sizes %d/%d, want 3 (duplicates collapse)", a.Size(), b.Size())
	}
	for _, k := range keys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("rings disagree on %s: %s vs %s", k, ao, bo)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hash contract under
// join and leave: removing a node moves only the keys it owned (every
// other key keeps its owner), and adding a node moves only the keys
// the new node takes.
func TestRingMinimalMovement(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	full, err := NewRing(nodes)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	ks := keys(2000)

	// Leave: drop n2.
	smaller, err := NewRing([]string{"n0", "n1", "n3"})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	moved := 0
	for _, k := range ks {
		before, after := full.Owner(k), smaller.Owner(k)
		if before != "n2" && before != after {
			t.Fatalf("key %s moved %s→%s though its owner never left", k, before, after)
		}
		if before == "n2" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the departed node — test vacuous")
	}

	// Join: add n4 to the original four.
	bigger, err := NewRing(append(append([]string(nil), nodes...), "n4"))
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	gained := 0
	for _, k := range ks {
		before, after := full.Owner(k), bigger.Owner(k)
		if after != "n4" && before != after {
			t.Fatalf("key %s moved %s→%s though the new node did not take it", k, before, after)
		}
		if after == "n4" {
			gained++
		}
	}
	if gained == 0 {
		t.Fatal("joined node took no keys — test vacuous")
	}
	// With 64 vnodes the new node's take should be in the
	// neighborhood of its fair 1/5 share, not the whole space.
	if frac := float64(gained) / float64(len(ks)); frac > 0.5 {
		t.Fatalf("joined node took %.0f%% of keys, movement is not minimal", 100*frac)
	}
}

// TestRingShares checks the ownership gauge: shares over the
// membership sum to 1, every node owns a reasonably fair arc at 64
// vnodes, and an unknown node owns nothing.
func TestRingShares(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	var sum float64
	for _, n := range nodes {
		sh := r.Share(n)
		if sh < 0.05 || sh > 0.60 {
			t.Errorf("node %s share %.3f, outside any plausible fairness band", n, sh)
		}
		sum += sh
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	if sh := r.Share("ghost"); sh != 0 {
		t.Fatalf("unknown node share %v, want 0", sh)
	}

	// A single-node ring owns the whole circle (the uint64 wrap case).
	solo, err := NewRing([]string{"only"})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	if sh := solo.Share("only"); math.Abs(sh-1) > 1e-9 {
		t.Fatalf("solo share %v, want 1", sh)
	}
}

// TestNewRingValidation checks the constructor's error cases.
func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("empty node ID accepted")
	}
}
