package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"acedo/internal/fault"
)

// ForwardedHeader marks a submission that has already been routed by
// a cluster member. A forwarded submission is never forwarded again —
// whatever node it lands on executes it locally — so routing
// disagreements between nodes (split-brain memberships, mid-rollout
// config skew) degrade to one extra hop, never a forwarding loop. The
// header value is the origin node's ID.
const ForwardedHeader = "X-Acelabd-Forwarded"

// ProbeHeader marks a liveness probe from a peer. A /healthz request
// carrying it is answered from local state only — the probed node
// must not fan out its own probes, or two nodes probing each other
// would recurse until their deadlines broke the storm.
const ProbeHeader = "X-Acelabd-Probe"

// Config parameterises one node's view of the cluster: who it is,
// who its peers are, and how patiently it forwards.
type Config struct {
	// NodeID is this node's ring identity; it must appear in Peers.
	NodeID string
	// Peers maps every member's node ID — this node included — to its
	// base URL (e.g. "http://10.0.0.2:8080").
	Peers map[string]string
	// ForwardTimeout bounds each forwarded request (0 = 5s). Job
	// forwarding retries transport failures within ForwardRetries
	// attempts before the caller degrades to local execution.
	ForwardTimeout time.Duration
	// ForwardRetries is the attempt budget per forward (0 = 3).
	ForwardRetries int
}

// Cluster is one node's compiled cluster plane: the consistent-hash
// ring plus the peer HTTP client. All methods are safe for concurrent
// use; a nil *Cluster means "not clustered" and is the single-node
// fast path throughout the server.
type Cluster struct {
	self    string
	ring    *Ring
	urls    map[string]string
	faults  *fault.Service
	httpc   *http.Client // bounded requests (forwarding, store peering)
	streamc *http.Client // streaming proxies (no overall timeout)
	retries int
}

// New compiles a cluster config (nil config → nil Cluster, the
// single-node mode). faults may be nil; when armed, every outbound
// peer request consults its peer point first.
func New(cfg *Config, faults *fault.Service) (*Cluster, error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node ID required")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("cluster: node %q missing from its own peer list", cfg.NodeID)
	}
	nodes := make([]string, 0, len(cfg.Peers))
	urls := make(map[string]string, len(cfg.Peers))
	for id, u := range cfg.Peers {
		if u == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", id)
		}
		nodes = append(nodes, id)
		urls[id] = strings.TrimRight(u, "/")
	}
	ring, err := NewRing(nodes)
	if err != nil {
		return nil, err
	}
	timeout := cfg.ForwardTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	retries := cfg.ForwardRetries
	if retries <= 0 {
		retries = 3
	}
	return &Cluster{
		self:    cfg.NodeID,
		ring:    ring,
		urls:    urls,
		faults:  faults,
		httpc:   &http.Client{Timeout: timeout},
		streamc: &http.Client{},
		retries: retries,
	}, nil
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Ring returns the membership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the node owning a spec hash.
func (c *Cluster) Owner(hash string) string { return c.ring.Owner(hash) }

// URL returns a member's base URL ("" for unknown nodes).
func (c *Cluster) URL(node string) string { return c.urls[node] }

// errPeer wraps every connection-level peer failure, injected or
// real, so callers can log one uniform class.
func errPeer(node string, err error) error {
	return fmt.Errorf("cluster: peer %s: %w", node, err)
}

// send performs one outbound request to a peer through the fault
// seam: an armed plan can delay the request, drop it before it leaves
// (a partition — the caller sees a connection error), or answer it
// with an injected 500. client selects the bounded or streaming
// transport.
func (c *Cluster) send(client *http.Client, node string, req *http.Request) (*http.Response, error) {
	delay, drop, fail := c.faults.Peer(node)
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return nil, errPeer(node, fmt.Errorf("partitioned: %w", fault.ErrInjected))
	}
	if fail {
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error",
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected peer fault"}` + "\n")),
			Request:    req,
		}, nil
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, errPeer(node, err)
	}
	return resp, nil
}

// Do performs one request against a peer's HTTP API. stream selects
// the timeout-free transport (event-stream proxies follow their job
// for as long as it runs); bounded requests ride the forward timeout.
func (c *Cluster) Do(method, node, path string, stream bool) (*http.Response, error) {
	base, ok := c.urls[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	req, err := http.NewRequest(method, base+path, nil)
	if err != nil {
		return nil, err
	}
	client := c.httpc
	if stream {
		client = c.streamc
	}
	return c.send(client, node, req)
}

// ForwardSubmit routes one submission to its hash-owner: POST the
// canonical spec JSON with the forwarded marker, retrying transport
// failures with capped exponential backoff inside the attempt budget.
// Any HTTP response — 202, a cache-hit 200, a backpressure 429 — is
// the owner's answer and is returned for the caller to relay
// verbatim; only an unreachable owner returns an error, upon which
// the caller degrades to local execution.
func (c *Cluster) ForwardSubmit(owner string, spec []byte) (code int, header http.Header, body []byte, err error) {
	base, ok := c.urls[owner]
	if !ok {
		return 0, nil, nil, fmt.Errorf("cluster: unknown node %q", owner)
	}
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(forwardBackoff(attempt))
		}
		req, rerr := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(spec))
		if rerr != nil {
			return 0, nil, nil, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardedHeader, c.self)
		resp, serr := c.send(c.httpc, owner, req)
		if serr != nil {
			lastErr = serr
			continue
		}
		body, rerr = io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = errPeer(owner, rerr)
			continue
		}
		return resp.StatusCode, resp.Header, body, nil
	}
	return 0, nil, nil, lastErr
}

// forwardBackoff is the pause before forward attempt n (1-based
// retries): 50ms doubling, capped at 1s. Deterministic — the server
// side adds no jitter, leaving backpressure spreading to the client's
// jittered loop.
func forwardBackoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// FetchStore asks a peer's content-addressed store for the raw
// encoded entry of one hash (the store file's exact bytes, CRC header
// and all). A 404 is a clean miss; transport failures and other
// statuses return an error. No retries: store peering is an
// opportunistic fast path consulted before executing, and the caller
// falls through to execution on any failure.
func (c *Cluster) FetchStore(node, hash string) ([]byte, bool, error) {
	resp, err := c.Do(http.MethodGet, node, "/v1/cluster/store/"+hash, false)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, errPeer(node, fmt.Errorf("store fetch: %s", resp.Status))
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, errPeer(node, err)
	}
	return b, true, nil
}

// Liveness probes every peer's /healthz concurrently (1s deadline
// each) and reports node → status: the peer's own status string
// ("ok", "draining") when it answered, or "unreachable: <cause>" when
// it did not. Probes ride the fault seam, so an injected partition
// shows up here exactly as a real one would.
func (c *Cluster) Liveness() map[string]string {
	type probe struct{ node, status string }
	var peers []string
	for id := range c.urls {
		if id != c.self {
			peers = append(peers, id)
		}
	}
	sort.Strings(peers)
	ch := make(chan probe, len(peers))
	var wg sync.WaitGroup
	for _, id := range peers {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			ch <- probe{id, c.probe(id)}
		}(id)
	}
	wg.Wait()
	close(ch)
	out := make(map[string]string, len(peers))
	for p := range ch {
		out[p.node] = p.status
	}
	return out
}

// probe checks one peer's /healthz.
func (c *Cluster) probe(node string) string {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urls[node]+"/healthz", nil)
	if err != nil {
		return "unreachable: " + err.Error()
	}
	req.Header.Set(ProbeHeader, c.self)
	resp, err := c.send(c.streamc, node, req)
	if err != nil {
		return "unreachable: " + err.Error()
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil && json.Unmarshal(b, &doc) == nil && doc.Status != "" {
		return doc.Status
	}
	return resp.Status
}
