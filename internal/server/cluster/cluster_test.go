package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"acedo/internal/fault"
)

// twoNodeCluster builds a Cluster for node "self" with one live peer
// backed by the given handler, under an optional fault plan.
func twoNodeCluster(t *testing.T, h http.Handler, plan *fault.Plan) (*Cluster, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	svc, err := fault.NewService(plan)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	c, err := New(&Config{
		NodeID:         "self",
		Peers:          map[string]string{"self": "http://invalid.localdomain", "peer": ts.URL},
		ForwardRetries: 1,
	}, svc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, ts
}

// TestPeerFaultDeterminism checks that a peer drop plan partitions
// outbound requests deterministically: with a Count-bounded drop
// rule, exactly the first N requests fail without reaching the peer,
// and the same plan replays the same sequence.
func TestPeerFaultDeterminism(t *testing.T) {
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointPeer, Kind: fault.KindDrop, Count: 2},
	}}
	run := func() (seq []bool, served int64) {
		var hits int64
		c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			atomic.AddInt64(&hits, 1)
		}), plan)
		for i := 0; i < 4; i++ {
			resp, err := c.Do(http.MethodGet, "peer", "/", false)
			if err != nil {
				seq = append(seq, false)
				continue
			}
			resp.Body.Close()
			seq = append(seq, true)
		}
		return seq, atomic.LoadInt64(&hits)
	}
	seq1, hits1 := run()
	seq2, hits2 := run()
	want := []bool{false, false, true, true}
	for i := range want {
		if seq1[i] != want[i] || seq2[i] != want[i] {
			t.Fatalf("drop sequence %v / %v, want %v", seq1, seq2, want)
		}
	}
	if hits1 != 2 || hits2 != 2 {
		t.Fatalf("peer served %d/%d requests, want 2 each (drops must not dial)", hits1, hits2)
	}
}

// TestPeerFaultInjected500 checks the fail kind: the far side appears
// to answer 500 without the request ever leaving this node.
func TestPeerFaultInjected500(t *testing.T) {
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointPeer, Kind: fault.KindFail, Count: 1},
	}}
	var hits int64
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
	}), plan)
	resp, err := c.Do(http.MethodGet, "peer", "/", false)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want injected 500", resp.StatusCode)
	}
	if atomic.LoadInt64(&hits) != 0 {
		t.Fatal("injected 500 reached the real peer")
	}
}

// TestPeerFaultUnitFilter checks that a drop rule naming one node
// partitions only that node.
func TestPeerFaultUnitFilter(t *testing.T) {
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointPeer, Kind: fault.KindDrop, Unit: "other"},
	}}
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), plan)
	resp, err := c.Do(http.MethodGet, "peer", "/", false)
	if err != nil {
		t.Fatalf("rule for %q must not drop requests to %q: %v", "other", "peer", err)
	}
	resp.Body.Close()
}

// TestForwardSubmitRelaysResponse checks that the owner's HTTP answer
// — status, Retry-After, body — comes back verbatim, with the
// forwarded marker set so the owner never re-forwards.
func TestForwardSubmitRelaysResponse(t *testing.T) {
	var gotHeader string
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader = r.Header.Get(ForwardedHeader)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}), nil)
	code, header, body, err := c.ForwardSubmit("peer", []byte(`{}`))
	if err != nil {
		t.Fatalf("ForwardSubmit: %v", err)
	}
	if code != http.StatusTooManyRequests || header.Get("Retry-After") != "7" {
		t.Fatalf("code %d Retry-After %q, want 429/7", code, header.Get("Retry-After"))
	}
	if string(body) != `{"error":"queue full"}` {
		t.Fatalf("body %q not relayed verbatim", body)
	}
	if gotHeader != "self" {
		t.Fatalf("forwarded marker %q, want origin node ID", gotHeader)
	}
}

// TestForwardSubmitUnreachable checks that transport failure — here a
// full partition from an armed drop plan — surfaces as an error after
// the retry budget, which is the caller's cue to degrade to local
// execution.
func TestForwardSubmitUnreachable(t *testing.T) {
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointPeer, Kind: fault.KindDrop},
	}}
	var hits int64
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&hits, 1)
	}), plan)
	if _, _, _, err := c.ForwardSubmit("peer", []byte(`{}`)); err == nil {
		t.Fatal("partitioned forward reported success")
	}
	if atomic.LoadInt64(&hits) != 0 {
		t.Fatal("partitioned forward reached the peer")
	}
}

// TestFetchStoreMiss checks that a peer 404 is a clean miss, not an
// error.
func TestFetchStoreMiss(t *testing.T) {
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}), nil)
	b, ok, err := c.FetchStore("peer", "deadbeef")
	if err != nil || ok || b != nil {
		t.Fatalf("FetchStore miss = (%v, %v, %v), want (nil, false, nil)", b, ok, err)
	}
}

// TestLivenessReportsPartition checks that /healthz peer probing
// rides the fault seam: an armed partition shows the peer as
// unreachable even though its process is healthy.
func TestLivenessReportsPartition(t *testing.T) {
	plan := &fault.Plan{Rules: []fault.Rule{
		{Point: fault.PointPeer, Kind: fault.KindDrop, Unit: "peer"},
	}}
	c, _ := twoNodeCluster(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	}), plan)
	live := c.Liveness()
	if len(live) != 1 {
		t.Fatalf("liveness reported %d peers, want 1 (self excluded)", len(live))
	}
	if got := live["peer"]; got == "ok" || got == "" {
		t.Fatalf("partitioned peer reported %q, want unreachable", got)
	}
}

// TestNewValidation checks the cluster constructor's error cases and
// the nil-config single-node path.
func TestNewValidation(t *testing.T) {
	if c, err := New(nil, nil); c != nil || err != nil {
		t.Fatalf("New(nil) = (%v, %v), want (nil, nil)", c, err)
	}
	if _, err := New(&Config{NodeID: "a", Peers: map[string]string{"b": "http://x"}}, nil); err == nil {
		t.Error("membership missing own node accepted")
	}
	if _, err := New(&Config{NodeID: "a", Peers: map[string]string{"a": ""}}, nil); err == nil {
		t.Error("empty peer URL accepted")
	}
}
