// Package cluster is acelabd's cluster plane: a consistent-hash ring
// over daemon peers keyed by SpecHash, plus the peer HTTP client the
// server uses to route work across it. Any node accepts any
// submission; a node that does not own the spec's content address
// forwards it to the hash-owner (with a deadline and bounded
// backoff), so every distinct experiment executes — and caches — once
// cluster-wide. Before executing, a worker that is not the owner asks
// the owner's content-addressed store and adopts a durable hit
// byte-identically. When the owner is unreachable (a partition, a
// crash), routing degrades to local execution: the cluster serves
// slightly more slowly and caches redundantly, but never answers
// wrongly and never refuses work it can do alone.
//
// All outbound peer traffic threads the service-level fault injector
// (fault.Service's peer point), so partitions, peer latency, and peer
// 500s are deterministic and testable.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodes is the number of virtual points each node contributes to the
// ring. More points smooth the ownership distribution; 64 keeps the
// per-node share within a few percent of fair for small clusters while
// the ring stays tiny.
const vnodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the node that owns the arc ending there.
type ringPoint struct {
	pos  uint64
	node string
}

// Ring is a consistent-hash ring over node IDs. Keys (spec hashes)
// map to the first virtual point at or after the key's position,
// wrapping at the top — so adding or removing one node moves only the
// keys on the arcs that node gains or loses, and every other key
// keeps its owner. A Ring is immutable once built; membership changes
// build a new one.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// NewRing builds a ring over the given node IDs (duplicates are
// collapsed). At least one node is required.
func NewRing(nodes []string) (*Ring, error) {
	seen := make(map[string]bool, len(nodes))
	var uniq []string
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{pos: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Position ties (vanishingly rare) break on node ID so every
		// member computes the identical ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// hash64 positions a string on the ring: FNV-1a, then a 64-bit
// finalizer (MurmurHash3's fmix64). Raw FNV avalanches poorly into
// the high bits on short keys, and ring positions are compared most-
// significant-bit first — without the finalizer, vnode positions
// cluster and one node can own over half the circle.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the node that owns a key — the first virtual point at
// or after the key's position, wrapping past the top of the circle.
func (r *Ring) Owner(key string) string {
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Share returns the fraction of the hash space the node owns — the
// summed length of its arcs over 2^64. Shares over all members sum
// to 1; an unknown node owns 0.
func (r *Ring) Share(node string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	var owned float64
	prev := r.points[len(r.points)-1].pos // the wrap-around arc start
	for _, p := range r.points {
		// Unsigned subtraction wraps, so the first arc (through the
		// top of the circle) comes out right too.
		if p.node == node {
			owned += float64(p.pos - prev)
		}
		prev = p.pos
	}
	return owned / (1 << 64)
}
