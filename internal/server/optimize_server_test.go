package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// optimizeSpec is a small, fast search job: 16 candidates of the
// widened space on the smallest benchmark.
const optimizeSpec = `{"benchmarks":["compress"],"scale":40,` +
	`"optimize":{"budget":16,"population":8,"elite":2,"seed":3}}`

// runOptimize submits an optimize spec and returns the finished status
// and result document.
func runOptimize(t *testing.T, base, spec string) (JobStatus, []byte) {
	t.Helper()
	code, _, body := postJob(t, base, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit optimize: status %d\n%s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, base, st.ID, StateDone)
	if final.Error != "" {
		t.Fatalf("optimize job failed: %s", final.Error)
	}
	_, result := getBody(t, base, final.ResultURL)
	return final, result
}

// TestOptimizeJob runs one search job end to end: the result document
// must be a well-formed OptimizeSnapshot with a feasible best
// configuration, search progress must stream on the job's event log
// even though events were not requested, per-run metadata must carry
// the two reference runs plus the search itself, and /metrics must
// report the best-so-far gauge.
func TestOptimizeJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	final, result := runOptimize(t, ts.URL, optimizeSpec)

	var snap OptimizeSnapshot
	if err := json.Unmarshal(result, &snap); err != nil {
		t.Fatalf("result not an OptimizeSnapshot: %v\n%s", err, result)
	}
	if snap.SchemaVersion != OptimizeSchemaVersion || snap.ScaleDiv != 40 {
		t.Errorf("snapshot header: version=%d scale=%d", snap.SchemaVersion, snap.ScaleDiv)
	}
	if len(snap.Benchmarks) != 1 || snap.Benchmarks[0].Benchmark != "compress" {
		t.Fatalf("benchmarks: %+v", snap.Benchmarks)
	}
	b := snap.Benchmarks[0]
	if b.Evaluated != 16 {
		t.Errorf("evaluated %d candidates, want the full budget 16", b.Evaluated)
	}
	if len(b.Best.Config) == 0 || b.Best.Description == "" || b.Best.Cycles == 0 {
		t.Errorf("best candidate incomplete: %+v", b.Best)
	}
	if b.ACE.Cycles == 0 || b.Baseline.Cycles == 0 {
		t.Errorf("reference runs missing: ace=%+v baseline=%+v", b.ACE, b.Baseline)
	}

	// Per-run metadata: baseline + hotspot references, then the search.
	if len(final.Runs) != 3 {
		t.Fatalf("runs = %d, want 3 (baseline, hotspot, optimize)", len(final.Runs))
	}
	schemes := []string{final.Runs[0].Scheme, final.Runs[1].Scheme, final.Runs[2].Scheme}
	if schemes[0] != "baseline" || schemes[1] != "hotspot" || schemes[2] != "optimize" {
		t.Errorf("run schemes = %v", schemes)
	}
	if final.Runs[2].Instr == 0 {
		t.Errorf("search run meta counted no instructions: %+v", final.Runs[2])
	}

	// Progress streams on the event log without "events": true.
	code, events := getBody(t, ts.URL, final.EventsURL)
	if code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	var progress int
	for _, line := range bytes.Split(bytes.TrimSuffix(events, []byte("\n")), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e struct {
			Type     string `json:"type"`
			Bench    string `json:"bench"`
			Optimize *struct {
				Strategy  string `json:"strategy"`
				Evaluated uint64 `json:"evaluated"`
			} `json:"optimize"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("events line not JSON: %v\n%s", err, line)
		}
		if e.Type == "optimize" {
			progress++
			if e.Bench != "compress" || e.Optimize == nil || e.Optimize.Strategy != "ga" {
				t.Errorf("malformed progress event: %s", line)
			}
		}
	}
	if progress == 0 {
		t.Error("no optimize progress events on the job's event log")
	}

	// The /metrics gauge reports the final best-so-far.
	var m Metrics
	getJSON(t, ts.URL, "/metrics", &m)
	st := m.OptimizeBest["compress"]
	if st == nil {
		t.Fatalf("metrics missing optimize_best for compress: %+v", m.OptimizeBest)
	}
	if st.Objective != "edp" || st.Evaluated != 16 {
		t.Errorf("optimize_best = %+v", st)
	}
}

// TestOptimizeJobDeterminism pins the acceptance criterion at the
// service layer: the same optimize spec executed by two independent
// daemons produces byte-identical result documents (no cache between
// them — each runs the search itself).
func TestOptimizeJobDeterminism(t *testing.T) {
	_, ts1 := testServer(t, Config{Workers: 2})
	_, ts2 := testServer(t, Config{Workers: 2})
	_, r1 := runOptimize(t, ts1.URL, optimizeSpec)
	_, r2 := runOptimize(t, ts2.URL, optimizeSpec)
	if !bytes.Equal(r1, r2) {
		t.Errorf("same-seed optimize runs differ across daemons:\n%s\n%s", r1, r2)
	}

	// And within one daemon, an equivalent spec with different field
	// order is a content-addressed cache hit.
	equiv := `{"scale":40,"optimize":{"seed":3,"budget":16,"elite":2,"population":8},` +
		`"benchmarks":["compress"]}`
	code, _, body := postJob(t, ts1.URL, equiv)
	if code != http.StatusOK {
		t.Fatalf("equivalent optimize spec: status %d, want 200 (cache hit)\n%s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Cached {
		t.Errorf("equivalent optimize spec not served from cache")
	}
	_, r3 := getBody(t, ts1.URL, "/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(r1, r3) {
		t.Errorf("cached optimize result not byte-identical")
	}
}

// TestOptimizeSpecValidation checks the optimize job's incompatible
// flags are rejected at submission.
func TestOptimizeSpecValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	for _, spec := range []string{
		`{"optimize":{},"schemes":["baseline"]}`,
		`{"optimize":{},"three_cu":true}`,
		`{"optimize":{},"no_replay":true}`,
		`{"optimize":{},"max_instr":1000}`,
		`{"optimize":{},"faults":{}}`,
		`{"optimize":{"strategy":"bogus"}}`,
		`{"optimize":{"budget":-1}}`,
	} {
		if code, _, body := postJob(t, ts.URL, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400\n%s", spec, code, body)
		}
	}

	// A spec differing only in the optimize clause must hash apart from
	// the plain comparison spec.
	plain, err := JobSpec{Benchmarks: []string{"compress"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var raw JobSpec
	if err := json.Unmarshal([]byte(`{"benchmarks":["compress"],"optimize":{}}`), &raw); err != nil {
		t.Fatal(err)
	}
	withOpt, err := raw.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := SpecHash(plain)
	h2, _ := SpecHash(withOpt)
	if h1 == h2 {
		t.Errorf("optimize and non-optimize specs share hash %s", h1)
	}
}

// TestCacheBudgetCountsRunMeta pins the cache-accounting bugfix: an
// entry's budgeted footprint includes its run metadata, not just the
// result bytes, and /metrics-visible size reports the same number.
func TestCacheBudgetCountsRunMeta(t *testing.T) {
	// 600 runs of metadata (~40 KiB) behind a 4 KiB result: the old
	// len(result)-only accounting admitted this into a 16 KiB budget.
	runs := make([]RunMeta, 600)
	for i := range runs {
		runs[i] = RunMeta{Benchmark: "compress", Scheme: "baseline", Disposition: "replayed"}
	}
	heavy := &cacheEntry{result: bytes.Repeat([]byte("x"), 4<<10), runs: runs}
	if got := entrySize(heavy); got <= int64(len(heavy.result)) {
		t.Fatalf("entrySize(%d result bytes + %d runs) = %d; metadata not accounted",
			len(heavy.result), len(runs), got)
	}

	c := newResultCache(16<<10, false)
	c.put("heavy", heavy)
	if _, _, _, entries, size := c.stats(); entries != 0 || size != 0 {
		t.Errorf("over-budget entry admitted: entries=%d size=%d", entries, size)
	}

	// An entry that fits charges its full footprint.
	light := &cacheEntry{result: []byte("{}"), runs: runs[:10]}
	c.put("light", light)
	if _, _, _, entries, size := c.stats(); entries != 1 || size != entrySize(light) {
		t.Errorf("stats after put: entries=%d size=%d, want 1 entry of %d bytes",
			entries, size, entrySize(light))
	}
}

// TestJobEWMAConverges pins the EWMA rounding bugfix: with
// nanosecond-scale deltas the old integer-division update truncated to
// zero, so the estimate stuck at whatever the first job set. The
// float64 average must converge toward the steady-state wall time.
func TestJobEWMAConverges(t *testing.T) {
	m := newMetrics()
	m.jobFinished(StateDone, time.Second+2*time.Nanosecond, nil)
	for i := 0; i < 50; i++ {
		m.jobFinished(StateDone, time.Second, nil)
	}
	if ewma := m.jobEWMA; ewma >= float64(time.Second)+1 {
		t.Errorf("EWMA stuck at %v ns after 50 identical 1s jobs", ewma)
	}

	// And it still tracks large shifts: a run of 4s jobs pulls the
	// estimate (and the Retry-After it feeds) well above 1s.
	for i := 0; i < 50; i++ {
		m.jobFinished(StateDone, 4*time.Second, nil)
	}
	if ewma := time.Duration(m.jobEWMA); ewma < 3*time.Second {
		t.Errorf("EWMA %v after a run of 4s jobs, want near 4s", ewma)
	}
	if retry := m.retryAfter(3, 2); retry < 4*time.Second {
		t.Errorf("retryAfter(3 queued, 2 workers) = %v, want (3+1)/2 x ~4s", retry)
	}
}
