package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"acedo/internal/experiment"
	"acedo/internal/optimize"
	"acedo/internal/telemetry"
	"acedo/internal/workload"
)

// OptimizeSchemaVersion identifies the OptimizeSnapshot JSON layout;
// bump only for breaking changes, like the other schema versions.
const OptimizeSchemaVersion = 1

// OptimizeSnapshot is the result document of an optimize job: the
// normalised search spec, the space size, and one search outcome per
// benchmark in spec order. It carries no wall times or timestamps, so
// two same-seed jobs produce byte-identical documents (pinned by the
// determinism tests).
type OptimizeSnapshot struct {
	SchemaVersion int           `json:"schema_version"`
	ScaleDiv      uint64        `json:"scale_div"`
	Search        optimize.Spec `json:"search"`

	Benchmarks []optimize.BenchResult `json:"benchmarks"`
}

// runOptimizeJob executes one optimize job: per benchmark, record the
// baseline once, then let the spec's strategy evaluate candidates as
// replays of the recorded stream. Search progress streams on the job's
// event log (one optimize event per generation, regardless of the
// Events flag) and feeds the /metrics best-so-far gauge live.
func (s *Server) runOptimizeJob(spec JobSpec, opt experiment.Options, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
	osp := *spec.Optimize
	space := optimize.DefaultSpace()
	var metas []RunMeta
	doc := OptimizeSnapshot{
		SchemaVersion: OptimizeSchemaVersion,
		ScaleDiv:      spec.Scale,
		Search:        osp,
		Benchmarks:    []optimize.BenchResult{},
	}
	for _, name := range spec.Benchmarks {
		if canceled(cancel) {
			return nil, metas, &experiment.RunError{Benchmark: name, Err: experiment.ErrCanceled}
		}
		wspec, _ := workload.ByName(name)
		progress := func(gen, evaluated int, best optimize.Eval, improved bool) {
			if sink != nil {
				telemetry.WithRunLabels(sink, name, "optimize").Emit(telemetry.Optimize(
					osp.Strategy, osp.Objective, gen, uint64(evaluated),
					best.Value, best.Feasible, improved, best.Genome))
			}
			s.metrics.optimizeProgress(name, osp.Objective, best.Value, uint64(evaluated), best.Genome)
		}
		res, stats, err := optimize.RunBench(wspec, opt, space, osp, progress)
		if err != nil {
			return nil, metas, err
		}
		doc.Benchmarks = append(doc.Benchmarks, *res)
		metas = append(metas,
			runMetaOf(stats.Base),
			runMetaOf(stats.ACE),
			RunMeta{
				Benchmark:   name,
				Scheme:      "optimize",
				Disposition: experiment.RunReplayed,
				WallMS:      float64(stats.SearchWall.Microseconds()) / 1e3,
				Instr:       stats.SearchInstr,
			})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, metas, fmt.Errorf("server: optimize snapshot encode: %w", err)
	}
	return buf.Bytes(), metas, nil
}
