package server

import (
	"context"
	"sync"

	"acedo/internal/telemetry"
)

// eventLog is one job's telemetry stream: a telemetry.Sink that
// renders every event through the zero-allocation JSONL encoder into
// an append-only in-memory byte log that HTTP streamers follow live.
// Appends and reads are serialised by one mutex; followers block on
// the condition variable until more bytes arrive or the log closes.
type eventLog struct {
	mu   sync.Mutex
	cond *sync.Cond
	enc  telemetry.Encoder

	buf    []byte
	budget int
	// dropped counts events discarded after the log hit its budget —
	// retention stops but the job keeps running.
	dropped uint64
	closed  bool
}

// newEventLog returns an empty log bounded to budget bytes.
func newEventLog(budget int) *eventLog {
	l := &eventLog{budget: budget}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Emit renders one event as a JSONL line and appends it
// (telemetry.Sink). Events past the byte budget are counted and
// dropped; unencodable events (impossible for simulator-produced
// events, which carry only finite values) are dropped silently.
func (l *eventLog) Emit(e telemetry.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || len(l.buf) >= l.budget {
		if !l.closed {
			l.dropped++
		}
		return
	}
	b, err := l.enc.Encode(e)
	if err != nil {
		return
	}
	l.buf = append(l.buf, b...)
	l.buf = append(l.buf, '\n')
	l.cond.Broadcast()
}

// close seals the log: followers drain what is buffered and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// clamp bounds a client-supplied resume offset to the bytes actually
// buffered, so a stale or over-eager offset degrades to "from the end"
// rather than indexing past the log.
func (l *eventLog) clamp(offset int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset > len(l.buf) {
		return len(l.buf)
	}
	return offset
}

// next returns the bytes appended since offset (nil when none yet) and
// whether the log is closed. It blocks until there is something new,
// the log closes, or ctx is done; the returned slice aliases the log's
// buffer, which is append-only, so callers may write it without
// copying while holding only their offset.
func (l *eventLog) next(ctx context.Context, offset int) ([]byte, bool) {
	// Wake any cond waiter when the client goes away, so a follower of
	// an idle running job does not leak.
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()

	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.buf) <= offset && !l.closed && ctx.Err() == nil {
		l.cond.Wait()
	}
	return l.buf[offset:len(l.buf):len(l.buf)], l.closed
}
