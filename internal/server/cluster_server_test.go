package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"acedo/internal/fault"
	"acedo/internal/server/cluster"
	"acedo/internal/server/store"
)

// nodeName names cluster test members n0, n1, ...
func nodeName(i int) string { return fmt.Sprintf("n%d", i) }

// clusterServers boots n Servers wired into one consistent-hash ring
// over real HTTP listeners. The listeners exist before the Servers
// (membership URLs are part of Config), so each listener indirects
// through a slot filled in once its Server is built. mut, when
// non-nil, adjusts each node's Config before construction.
func clusterServers(t *testing.T, n int, mut func(i int, cfg *Config)) []*Server {
	t.Helper()
	srvs := make([]*Server, n)
	hts := make([]*httptest.Server, n)
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		i := i
		hts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			s := srvs[i]
			mu.Unlock()
			if s == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			s.ServeHTTP(w, r)
		}))
		t.Cleanup(hts[i].Close)
	}
	peers := make(map[string]string, n)
	for i := range hts {
		peers[nodeName(i)] = hts[i].URL
	}
	for i := 0; i < n; i++ {
		cfg := Config{
			Workers: 2,
			Cluster: &cluster.Config{
				NodeID:         nodeName(i),
				Peers:          peers,
				ForwardRetries: 1,
				ForwardTimeout: 10 * time.Second,
			},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New(node %d): %v", i, err)
		}
		t.Cleanup(func() {
			done := make(chan struct{})
			time.AfterFunc(30*time.Second, func() { close(done) })
			if err := s.Shutdown(done); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		})
		mu.Lock()
		srvs[i] = s
		mu.Unlock()
	}
	return srvs
}

// baseOf returns the base URL a Server is listening on.
func baseOf(s *Server) string {
	return s.cluster.URL(s.cluster.Self())
}

// specOwnedBy searches the max_instr space for a spec whose content
// address the given node owns, returning the spec and its hash.
func specOwnedBy(t *testing.T, ring *cluster.Ring, owner string) (spec, hash string) {
	t.Helper()
	for n := 0; n < 100000; n++ {
		spec := fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 500000+n)
		var js JobSpec
		if err := json.Unmarshal([]byte(spec), &js); err != nil {
			t.Fatalf("spec: %v", err)
		}
		js, err := js.Normalize()
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		h, err := SpecHash(js)
		if err != nil {
			t.Fatalf("SpecHash: %v", err)
		}
		if ring.Owner(h) == owner {
			return spec, h
		}
	}
	t.Fatalf("no spec owned by %s in search range", owner)
	return "", ""
}

// closedCh returns an already-closed channel, making stubRun return
// immediately.
func closedCh() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestClusterForwarding submits a spec to a non-owner and checks the
// full routed path: the submission lands on the hash-owner, the
// client-facing job ID is node-qualified, status polls and the result
// proxy through the origin node, a repeat from a third node is a
// cluster-wide cache hit, and the forward counters on both sides
// moved.
func TestClusterForwarding(t *testing.T) {
	srvs := clusterServers(t, 3, func(i int, cfg *Config) {})
	for _, s := range srvs {
		stubRun(s, closedCh())
	}
	spec, hash := specOwnedBy(t, srvs[0].cluster.Ring(), "n1")

	code, _, body := postJob(t, baseOf(srvs[0]), spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit via non-owner: status %d\n%s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if !strings.HasSuffix(st.ID, "@n1") {
		t.Fatalf("job ID %q not qualified with the owner", st.ID)
	}
	if st.SpecHash != hash {
		t.Fatalf("spec hash %q, want %q", st.SpecHash, hash)
	}
	done := waitState(t, baseOf(srvs[0]), st.ID, "")
	if done.State != StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, done.State, done.Error)
	}
	if code, res := getBody(t, baseOf(srvs[0]), "/v1/jobs/"+st.ID+"/result"); code != http.StatusOK || string(res) != "{}\n" {
		t.Fatalf("proxied result: %d %q", code, res)
	}

	// Repeat from the third node: forwarded to the owner, answered
	// from its cache, 200 with cached set.
	code, _, body = postJob(t, baseOf(srvs[2]), spec)
	if code != http.StatusOK {
		t.Fatalf("repeat via third node: status %d, want cache-hit 200\n%s", code, body)
	}
	var hit JobStatus
	if err := json.Unmarshal(body, &hit); err != nil || !hit.Cached {
		t.Fatalf("repeat not served from cache: %s", body)
	}

	var m0, m1 Metrics
	getJSON(t, baseOf(srvs[0]), "/metrics", &m0)
	getJSON(t, baseOf(srvs[1]), "/metrics", &m1)
	if m0.JobsForwarded != 1 {
		t.Errorf("origin jobs_forwarded = %d, want 1", m0.JobsForwarded)
	}
	if m1.JobsForwardReceived != 2 {
		t.Errorf("owner jobs_forward_received = %d, want 2", m1.JobsForwardReceived)
	}
	if m1.InstrSimulated != 0 {
		// The stub reports no instructions; the gauge only moves if a
		// real execution slipped through somewhere.
		t.Errorf("owner instr_simulated = %d, want 0", m1.InstrSimulated)
	}
	if m0.ClusterNode != "n0" || m0.ClusterSize != 3 || m0.ClusterOwnedPct <= 0 {
		t.Errorf("cluster gauges = %q/%d/%.1f", m0.ClusterNode, m0.ClusterSize, m0.ClusterOwnedPct)
	}
}

// TestClusterForwardLoopPrevention checks that a submission already
// carrying the forwarded marker is never forwarded again, even by a
// node that does not own it: it executes locally, which bounds any
// routing disagreement at one extra hop.
func TestClusterForwardLoopPrevention(t *testing.T) {
	srvs := clusterServers(t, 3, nil)
	for _, s := range srvs {
		stubRun(s, closedCh())
	}
	spec, _ := specOwnedBy(t, srvs[0].cluster.Ring(), "n1")

	req, err := http.NewRequest(http.MethodPost, baseOf(srvs[0])+"/v1/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "n2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if strings.Contains(st.ID, "@") {
		t.Fatalf("forwarded submission re-forwarded: job ID %q", st.ID)
	}
	waitState(t, baseOf(srvs[0]), st.ID, "")
	var m0, m1 Metrics
	getJSON(t, baseOf(srvs[0]), "/metrics", &m0)
	getJSON(t, baseOf(srvs[1]), "/metrics", &m1)
	if m0.JobsForwarded != 0 || m0.JobsForwardReceived != 1 {
		t.Errorf("non-owner counters forwarded=%d received=%d, want 0/1", m0.JobsForwarded, m0.JobsForwardReceived)
	}
	if m1.JobsForwardReceived != 0 {
		t.Errorf("owner received %d forwards, want 0", m1.JobsForwardReceived)
	}
}

// TestClusterPeerStoreAdoption makes a non-owner execute a spec whose
// result the owner already holds, and checks it adopts the owner's
// durable entry byte-identically — on disk and on the wire — instead
// of re-executing.
func TestClusterPeerStoreAdoption(t *testing.T) {
	dirs := make([]string, 3)
	srvs := clusterServers(t, 3, func(i int, cfg *Config) {
		dirs[i] = t.TempDir()
		cfg.DataDir = dirs[i]
	})
	stubRun(srvs[1], closedCh())
	// The non-owner's run function screams if it ever executes:
	// adoption must answer before execution starts.
	srvs[0].runFn = func(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
		return []byte("WRONG\n"), nil, nil
	}
	spec, hash := specOwnedBy(t, srvs[0].cluster.Ring(), "n1")

	// Seed the owner.
	code, _, body := postJob(t, baseOf(srvs[1]), spec)
	if code != http.StatusAccepted {
		t.Fatalf("seed submit: %d\n%s", code, body)
	}
	var seeded JobStatus
	json.Unmarshal(body, &seeded)
	waitState(t, baseOf(srvs[1]), seeded.ID, "")
	_, ownerBytes := getBody(t, baseOf(srvs[1]), "/v1/jobs/"+seeded.ID+"/result")

	// Force the non-owner to take the job (forwarded marker disables
	// routing), then watch it adopt.
	req, _ := http.NewRequest(http.MethodPost, baseOf(srvs[0])+"/v1/jobs", strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "n2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	final := waitState(t, baseOf(srvs[0]), st.ID, "")
	if final.State != StateDone || !final.Cached {
		t.Fatalf("adopted job state=%s cached=%v, want done/cached", final.State, final.Cached)
	}
	_, adoptedBytes := getBody(t, baseOf(srvs[0]), "/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(adoptedBytes, ownerBytes) {
		t.Fatalf("adopted result differs from owner's:\n%q\nvs\n%q", adoptedBytes, ownerBytes)
	}
	if string(adoptedBytes) == "WRONG\n" {
		t.Fatal("non-owner executed instead of adopting")
	}

	// The durable entries must be byte-identical files.
	ownerFile, err := os.ReadFile(filepath.Join(dirs[1], "results", hash+".res"))
	if err != nil {
		t.Fatalf("owner store file: %v", err)
	}
	adoptedFile, err := os.ReadFile(filepath.Join(dirs[0], "results", hash+".res"))
	if err != nil {
		t.Fatalf("adopted store file: %v", err)
	}
	if !bytes.Equal(ownerFile, adoptedFile) {
		t.Fatal("adopted store entry is not byte-identical to the owner's")
	}

	var m0 Metrics
	getJSON(t, baseOf(srvs[0]), "/metrics", &m0)
	if m0.PeerStoreHits != 1 {
		t.Errorf("peer_store_hits = %d, want 1", m0.PeerStoreHits)
	}
	if m0.InstrSimulated != 0 {
		t.Errorf("instr_simulated = %d after adoption, want 0", m0.InstrSimulated)
	}
}

// TestClusterAdoptionQuarantinesCorrupt points a node at a "peer"
// that serves corrupt store bytes and checks the node quarantines the
// payload and executes normally — a bad peer entry is never served
// and never trusted.
func TestClusterAdoptionQuarantinesCorrupt(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/cluster/store/") {
			w.Write([]byte("ACR1 this is not a valid store entry"))
			return
		}
		http.NotFound(w, r)
	}))
	defer fake.Close()

	dir := t.TempDir()
	var held *Server
	real := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		held.ServeHTTP(w, r)
	}))
	defer real.Close()
	s, err := New(Config{
		Workers: 1,
		DataDir: dir,
		Cluster: &cluster.Config{
			NodeID:         "me",
			Peers:          map[string]string{"me": real.URL, "evil": fake.URL},
			ForwardRetries: 1,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	held = s
	t.Cleanup(func() {
		done := make(chan struct{})
		time.AfterFunc(30*time.Second, func() { close(done) })
		s.Shutdown(done)
	})
	stubRun(s, closedCh())
	spec, hash := specOwnedBy(t, s.cluster.Ring(), "evil")

	// The forwarded marker pins execution here; adoption consults the
	// "owner" (the corrupt peer) first.
	req, _ := http.NewRequest(http.MethodPost, real.URL+"/v1/jobs", strings.NewReader(spec))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "evil")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	final := waitState(t, real.URL, st.ID, "")
	if final.State != StateDone || final.Cached {
		t.Fatalf("job state=%s cached=%v, want executed done", final.State, final.Cached)
	}
	if _, res := getBody(t, real.URL, "/v1/jobs/"+st.ID+"/result"); string(res) != "{}\n" {
		t.Fatalf("result %q, want the locally executed stub result", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", "quarantine", hash+".res")); err != nil {
		t.Errorf("corrupt peer payload not quarantined: %v", err)
	}
	var m Metrics
	getJSON(t, real.URL, "/metrics", &m)
	if m.PeerStoreHits != 0 || m.PeerStoreMisses == 0 {
		t.Errorf("peer store hits=%d misses=%d, want 0/>0", m.PeerStoreHits, m.PeerStoreMisses)
	}
}

// TestClusterPartitionDegrades arms a full outbound partition on one
// node and checks that a submission it does not own still succeeds:
// the forward fails deterministically, the node executes locally, and
// the result is correct — degraded, never wrong, never refused.
func TestClusterPartitionDegrades(t *testing.T) {
	srvs := clusterServers(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.ServiceFaults = &fault.Plan{Rules: []fault.Rule{
				{Point: fault.PointPeer, Kind: fault.KindDrop},
			}}
		}
	})
	for _, s := range srvs {
		stubRun(s, closedCh())
	}
	spec, _ := specOwnedBy(t, srvs[0].cluster.Ring(), "n1")

	code, _, body := postJob(t, baseOf(srvs[0]), spec)
	if code != http.StatusAccepted {
		t.Fatalf("partitioned submit: %d\n%s", code, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	if strings.Contains(st.ID, "@") {
		t.Fatalf("partitioned node forwarded anyway: %q", st.ID)
	}
	final := waitState(t, baseOf(srvs[0]), st.ID, "")
	if final.State != StateDone {
		t.Fatalf("degraded job %s: %s (%s)", st.ID, final.State, final.Error)
	}
	if _, res := getBody(t, baseOf(srvs[0]), "/v1/jobs/"+st.ID+"/result"); string(res) != "{}\n" {
		t.Fatalf("degraded result %q", res)
	}
	var m0, m1 Metrics
	getJSON(t, baseOf(srvs[0]), "/metrics", &m0)
	getJSON(t, baseOf(srvs[1]), "/metrics", &m1)
	if m0.ForwardFailures == 0 {
		t.Error("forward_failures did not move")
	}
	if m1.JobsForwardReceived != 0 {
		t.Errorf("owner received %d forwards through a partition", m1.JobsForwardReceived)
	}

	// The partitioned node's healthz sees every peer as unreachable;
	// a healthy node sees its peers as ok.
	var hz struct {
		Peers map[string]string `json:"peers"`
	}
	getJSON(t, baseOf(srvs[0]), "/healthz", &hz)
	for id, status := range hz.Peers {
		if !strings.HasPrefix(status, "unreachable") {
			t.Errorf("partitioned node sees %s as %q", id, status)
		}
	}
	getJSON(t, baseOf(srvs[1]), "/healthz", &hz)
	if hz.Peers["n2"] != "ok" {
		t.Errorf("healthy node sees n2 as %q, want ok", hz.Peers["n2"])
	}
}

// TestClusterStoreEndpointServesEncoded checks the peer-store
// endpoint round-trip: a finished job's entry fetched over HTTP
// decodes to the exact result bytes, and an unknown hash is 404.
func TestClusterStoreEndpointServesEncoded(t *testing.T) {
	srvs := clusterServers(t, 2, nil)
	stubRun(srvs[0], closedCh())
	spec, hash := specOwnedBy(t, srvs[0].cluster.Ring(), "n0")
	code, _, body := postJob(t, baseOf(srvs[0]), spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", code, body)
	}
	var st JobStatus
	json.Unmarshal(body, &st)
	waitState(t, baseOf(srvs[0]), st.ID, "")

	code, raw := getBody(t, baseOf(srvs[0]), "/v1/cluster/store/"+hash)
	if code != http.StatusOK {
		t.Fatalf("store endpoint: %d", code)
	}
	ent, ver, err := store.DecodeEntry(raw)
	if err != nil {
		t.Fatalf("decode served entry: %v", err)
	}
	if ver != engineVersion() {
		t.Errorf("served version %q, want %q", ver, engineVersion())
	}
	if string(ent.Result) != "{}\n" {
		t.Errorf("served result %q", ent.Result)
	}
	if code, _ := getBody(t, baseOf(srvs[0]), "/v1/cluster/store/no-such-hash"); code != http.StatusNotFound {
		t.Errorf("unknown hash: %d, want 404", code)
	}
}
