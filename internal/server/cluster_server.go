package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"acedo/internal/server/cluster"
	"acedo/internal/server/store"
)

// This file is the server half of the cluster plane: submit
// forwarding, cross-node job proxying, the peer-store endpoint, and
// result adoption. Every entry point starts with a nil test on
// s.cluster, so a single-node daemon pays one branch and behaves
// byte-identically to one built before clustering existed.

// splitJobID splits a node-qualified job ID ("j3@node-a") into its
// local ID and node; an unqualified ID comes back with node == "" —
// the local case. The split is on the last '@' so node IDs themselves
// may not contain one (cmd/acelabd rejects those at startup).
func splitJobID(id string) (local, node string) {
	if i := strings.LastIndexByte(id, '@'); i >= 0 {
		return id[:i], id[i+1:]
	}
	return id, ""
}

// qualifyStatus rewrites a peer-owned job's status document for a
// client talking to this node: the ID gains its @node suffix and the
// sub-resource URLs follow, so every later poll through any cluster
// member routes back to the owning node.
func qualifyStatus(st *JobStatus, node string) {
	st.ID += "@" + node
	st.EventsURL = "/v1/jobs/" + st.ID + "/events"
	if st.ResultURL != "" {
		st.ResultURL = "/v1/jobs/" + st.ID + "/result"
	}
}

// cachedLocally reports whether hash's result is already on this node
// (memory or disk tier), without counting cache traffic — the caller
// is deciding whether to forward, not serving yet.
func (s *Server) cachedLocally(hash string) bool {
	if s.cache.peek(hash) != nil {
		return true
	}
	return s.store != nil && s.store.Has(hash)
}

// forwardIfRemote routes a submission to its hash-owner when this
// node is not it. It reports true when it wrote the response (the
// owner answered, whatever the status — 202, a cache-hit 200, a 429
// relayed verbatim with its Retry-After) and false when the caller
// should proceed locally: single-node mode, this node owns the hash,
// the request is already a forward (never re-forwarded — loop
// prevention), the result is already cached here, or the owner is
// unreachable after retries (degraded mode: local execution is
// slower and caches redundantly, but never wrong and never refused).
func (s *Server) forwardIfRemote(w http.ResponseWriter, r *http.Request, spec JobSpec, hash string) bool {
	if s.cluster == nil {
		return false
	}
	if origin := r.Header.Get(cluster.ForwardedHeader); origin != "" {
		s.metrics.forwardIn()
		s.logf("forward received from %s (%s)", origin, shortHash(hash))
		return false
	}
	owner := s.cluster.Owner(hash)
	if owner == s.cluster.Self() || s.cachedLocally(hash) {
		return false
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	code, header, body, err := s.cluster.ForwardSubmit(owner, specJSON)
	if err != nil {
		s.metrics.forwardFailed()
		s.logf("forward %s to %s failed, executing locally: %v", shortHash(hash), owner, err)
		return false
	}
	s.metrics.forwardOut()
	s.logf("forwarded %s to owner %s: %d", shortHash(hash), owner, code)
	if ra := header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	// A 200/202 carries the owner's status document: re-qualify its
	// ID and URLs so the client's polling stays valid through this
	// node. Anything else (429, 503, ...) relays verbatim — the
	// client's own backoff loop handles it.
	if code == http.StatusOK || code == http.StatusAccepted {
		var st JobStatus
		if json.Unmarshal(body, &st) == nil && st.ID != "" {
			qualifyStatus(&st, owner)
			writeJSON(w, code, st)
			return true
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
	return true
}

// proxyJob serves a job route whose ID names another node by proxying
// there, reporting true when it handled the request. Status-shaped
// responses are re-qualified (so polling keeps working through this
// node); result bytes and event streams relay verbatim — byte
// identity of results is part of the cache contract. An unreachable
// owner answers 502: the job's state lives there, and guessing would
// be worse than failing.
func (s *Server) proxyJob(w http.ResponseWriter, r *http.Request, subpath string) bool {
	if s.cluster == nil {
		return false
	}
	local, node := splitJobID(r.PathValue("id"))
	if node == "" || node == s.cluster.Self() {
		return false
	}
	if s.cluster.URL(node) == "" {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown cluster node %q", node))
		return true
	}
	path := "/v1/jobs/" + local + subpath
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	resp, err := s.cluster.Do(r.Method, node, path, subpath == "/events")
	if err != nil {
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("job %s lives on %s, which is unreachable: %v", local, node, err))
		return true
	}
	defer resp.Body.Close()
	if subpath == "" && resp.StatusCode < 300 {
		var st JobStatus
		if json.NewDecoder(resp.Body).Decode(&st) == nil && st.ID != "" {
			qualifyStatus(&st, node)
			writeJSON(w, resp.StatusCode, st)
			return true
		}
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("node %s answered job %s with an unreadable status", node, local))
		return true
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
	return true
}

// copyFlush relays a proxied body, flushing after every read so a
// followed event stream reaches the client as it is produced rather
// than when the job finishes.
func copyFlush(w http.ResponseWriter, r io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleClusterStore is GET /v1/cluster/store/{hash}: the peer-store
// endpoint. It serves the store-format encoded entry for one hash —
// the durable file's exact bytes when a disk tier exists, or the
// memory-cached entry encoded in the same framing — so an adopting
// peer validates every payload identically. 404 for hashes this node
// has not finished. The memory lookup uses peek: a peer probing this
// node's cache must not perturb its hit/miss counters.
func (s *Server) handleClusterStore(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	var payload []byte
	if s.store != nil {
		if b, ok, err := s.store.Raw(hash); err == nil && ok {
			payload = b
		}
	}
	if payload == nil {
		if e := s.cache.peek(hash); e != nil {
			if meta, err := json.Marshal(e.runs); err == nil {
				payload = store.EncodeEntry(engineVersion(), store.Entry{Result: e.result, Meta: meta})
			}
		}
	}
	if payload == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no stored result for %s", shortHash(hash)))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// adoptFromOwner asks the hash-owner's store for a dequeued job's
// result before executing it, reporting true when the job was
// finished by adoption. Validation happens before anything is
// written or served: a corrupt or torn payload is quarantined (never
// served), a version-skewed one rejected, and either way the job
// falls through to normal execution. An adopted job finalises as a
// cache hit — done, cached, zero wall time, and crucially zero
// instruction accounting, because the instructions were simulated
// once, on the owner.
func (s *Server) adoptFromOwner(j *job) bool {
	if s.cluster == nil {
		return false
	}
	owner := s.cluster.Owner(j.hash)
	if owner == s.cluster.Self() {
		return false
	}
	payload, ok, err := s.cluster.FetchStore(owner, j.hash)
	if err != nil || !ok {
		s.metrics.peerStore(false)
		if err != nil {
			s.logf("job %s: peer store %s: %v", j.id, owner, err)
		}
		return false
	}
	var ent store.Entry
	if s.store != nil {
		// AdoptRaw validates, quarantines corruption, and persists the
		// accepted payload byte-identically.
		ent, err = s.store.AdoptRaw(j.hash, payload)
	} else {
		var ver string
		ent, ver, err = store.DecodeEntry(payload)
		if err == nil && ver != engineVersion() {
			err = fmt.Errorf("engine version mismatch (%q)", ver)
		}
	}
	if err != nil {
		s.metrics.peerStore(false)
		s.logf("job %s: refused peer entry from %s: %v", j.id, owner, err)
		return false
	}
	var runs []RunMeta
	if len(ent.Meta) > 0 {
		if json.Unmarshal(ent.Meta, &runs) != nil {
			runs = nil
		}
	}
	e := &cacheEntry{result: ent.Result, runs: runs}
	s.cache.put(j.hash, e)
	s.markDone(j.hash)
	j.mu.Lock()
	j.state = StateDone
	j.cached = true
	j.result = e.result
	j.runs = e.runs
	j.mu.Unlock()
	j.events.close()
	s.metrics.jobAdopted()
	s.metrics.peerStore(true)
	s.logf("job %s: adopted result from %s (%s)", j.id, owner, shortHash(j.hash))
	return true
}
