package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"acedo/internal/fault"
)

// crashServer boots a durable Server that the test will "kill": its
// cleanup only closes the listener, never calls Shutdown, so the
// journal keeps its unsynced tail and no drain-time tidying happens —
// the closest an in-process test gets to kill -9.
func crashServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// findJobByHash scans /v1/jobs for the job carrying hash.
func findJobByHash(t *testing.T, base, hash string) JobStatus {
	t.Helper()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	getJSON(t, base, "/v1/jobs", &list)
	for _, st := range list.Jobs {
		if st.SpecHash == hash {
			return st
		}
	}
	t.Fatalf("no job with spec hash %s among %d jobs", hash, len(list.Jobs))
	return JobStatus{}
}

// TestCrashRestartServesDurableResults kills a durable daemon after a
// job finishes and restarts it on the same data dir: the resubmitted
// spec must be a cache hit served from the recovered store —
// byte-identical bytes, nothing executed (instr_simulated stays 0 on
// the new process), and the healthz/metrics surfaces must report the
// recovery.
func TestCrashRestartServesDurableResults(t *testing.T) {
	dir := t.TempDir()
	spec := `{"benchmarks":["compress"],"scale":40,"run_meta":true}`

	_, tsA := crashServer(t, Config{Workers: 2, DataDir: dir})
	code, _, body := postJob(t, tsA.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	done := waitState(t, tsA.URL, st.ID, StateDone)
	_, want := getBody(t, tsA.URL, "/v1/jobs/"+st.ID+"/result")
	tsA.Close() // crash: no Shutdown, no journal close

	sB, tsB := testServer(t, Config{Workers: 2, DataDir: dir})
	defer func() { _ = sB }()

	var health struct {
		Status string `json:"status"`
		Store  struct {
			Recovered   int `json:"recovered"`
			Quarantined int `json:"quarantined"`
		} `json:"store"`
	}
	if code := getJSON(t, tsB.URL, "/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if health.Store.Recovered < 1 || health.Store.Quarantined != 0 {
		t.Errorf("healthz store report = %+v, want >=1 recovered, 0 quarantined", health.Store)
	}

	code, _, body = postJob(t, tsB.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit after restart: status %d, want 200 (cache hit)\n%s", code, body)
	}
	var hit JobStatus
	mustDecode(t, body, &hit)
	if !hit.Cached || hit.State != StateDone {
		t.Errorf("resubmission not a cache hit: cached=%v state=%q", hit.Cached, hit.State)
	}
	if hit.SpecHash != done.SpecHash {
		t.Errorf("hash changed across restart: %s vs %s", hit.SpecHash, done.SpecHash)
	}
	if len(hit.Runs) != len(done.Runs) {
		t.Errorf("recovered runs = %d, want %d (metadata survived the disk round trip)",
			len(hit.Runs), len(done.Runs))
	}
	_, got := getBody(t, tsB.URL, "/v1/jobs/"+hit.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Errorf("recovered result not byte-identical:\nbefore crash: %s\nafter:        %s", want, got)
	}

	var m Metrics
	getJSON(t, tsB.URL, "/metrics", &m)
	if m.InstrSimulated != 0 {
		t.Errorf("restarted daemon simulated %d instructions; the recovered result should have executed nothing", m.InstrSimulated)
	}
	if m.StoreEntries < 1 || m.StoreBytes <= 0 || m.StoreHits != 1 {
		t.Errorf("store gauges entries=%d bytes=%d hits=%d, want >=1/>0/1",
			m.StoreEntries, m.StoreBytes, m.StoreHits)
	}
}

// TestCrashMidJobRequeuesFromJournal kills the daemon while a job is
// executing (accepted and journaled, never finished) and restarts it:
// the journal replay must requeue the job, the new process must run it
// to completion, and a subsequent identical submission must hit the
// cache.
func TestCrashMidJobRequeuesFromJournal(t *testing.T) {
	dir := t.TempDir()
	spec := fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 5000)

	sA, tsA := crashServer(t, Config{Workers: 1, DataDir: dir})
	stubRun(sA, nil) // the job runs "forever": the crash interrupts it
	code, _, body := postJob(t, tsA.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	waitState(t, tsA.URL, st.ID, StateRunning)
	tsA.Close() // crash mid-run; the journal holds accept, no done

	_, tsB := testServer(t, Config{Workers: 1, DataDir: dir})
	replayed := findJobByHash(t, tsB.URL, st.SpecHash)
	final := waitState(t, tsB.URL, replayed.ID, "")
	if final.State != StateDone {
		t.Fatalf("replayed job %s: %s", final.State, final.Error)
	}

	var m Metrics
	getJSON(t, tsB.URL, "/metrics", &m)
	if m.JournalReplayed != 1 {
		t.Errorf("journal_replayed = %d, want 1", m.JournalReplayed)
	}

	code, _, body = postJob(t, tsB.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit of replayed spec: status %d, want 200 (cache hit)\n%s", code, body)
	}
	var hit JobStatus
	mustDecode(t, body, &hit)
	if !hit.Cached {
		t.Errorf("replayed job's result not served from cache")
	}
}

// TestCrashRestartRetiresFinishedJournalEntry covers the lost-done
// window: the job finished and persisted, but the crash ate the
// journal's done record. The restart must not re-execute — replay
// finds the durable result and retires the entry.
func TestCrashRestartRetiresFinishedJournalEntry(t *testing.T) {
	dir := t.TempDir()
	spec := fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 6000)

	sA, tsA := crashServer(t, Config{Workers: 1, DataDir: dir})
	code, _, body := postJob(t, tsA.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	waitState(t, tsA.URL, st.ID, StateDone)
	// Re-accept the finished job, leaving the journal's last word on
	// this hash "accepted" — exactly what a crash between store.Put and
	// the done append leaves behind.
	specJSON, err := json.Marshal(st.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.journal.Accept(st.SpecHash, specJSON); err != nil {
		t.Fatalf("re-accept: %v", err)
	}
	tsA.Close()

	_, tsB := testServer(t, Config{Workers: 1, DataDir: dir})
	var m Metrics
	getJSON(t, tsB.URL, "/metrics", &m)
	if m.JournalReplayed != 0 {
		t.Errorf("journal_replayed = %d, want 0 (result already durable)", m.JournalReplayed)
	}
	if m.InstrSimulated != 0 {
		t.Errorf("restart re-executed a finished job (%d instructions)", m.InstrSimulated)
	}
	code, _, body = postJob(t, tsB.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cache hit)\n%s", code, body)
	}
}

// TestTornResultQuarantinedOnRestart runs a daemon under a fault plan
// that tears the result's store write — the crash window the atomic
// rename protocol exists to mask — and restarts clean: the torn file
// must be quarantined by the startup scan, the resubmitted spec must
// re-execute (no serving torn bytes), and the rewritten result must
// then hit.
func TestTornResultQuarantinedOnRestart(t *testing.T) {
	dir := t.TempDir()
	spec := fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 7000)
	plan := &fault.Plan{
		Seed: 7,
		Rules: []fault.Rule{
			{Point: fault.PointStoreWrite, Kind: fault.KindTorn, Unit: "result", Count: 1},
		},
	}

	_, tsA := crashServer(t, Config{Workers: 1, DataDir: dir, ServiceFaults: plan})
	code, _, body := postJob(t, tsA.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	waitState(t, tsA.URL, st.ID, StateDone)
	tsA.Close()

	_, tsB := testServer(t, Config{Workers: 1, DataDir: dir})
	var health struct {
		Store struct {
			Recovered   int `json:"recovered"`
			Quarantined int `json:"quarantined"`
		} `json:"store"`
	}
	getJSON(t, tsB.URL, "/healthz", &health)
	if health.Store.Quarantined < 1 {
		t.Fatalf("healthz store report = %+v, want >=1 quarantined (the torn write)", health.Store)
	}

	// The torn entry must read as a miss: the spec re-executes...
	code, _, body = postJob(t, tsB.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of torn result: status %d, want 202 (re-execute)\n%s", code, body)
	}
	var redo JobStatus
	mustDecode(t, body, &redo)
	final := waitState(t, tsB.URL, redo.ID, "")
	if final.State != StateDone {
		t.Fatalf("re-executed job %s: %s", final.State, final.Error)
	}
	// ...and the clean rewrite serves the next submission.
	if code, _, body := postJob(t, tsB.URL, spec); code != http.StatusOK {
		t.Fatalf("third submit: status %d, want 200 (cache hit)\n%s", code, body)
	}
}

// TestEvictedEntryServedFromDisk is the disk-tier eviction contract:
// with a memory budget that holds only one stub result, the second job
// must evict the first from memory, and resubmitting the first must
// still answer as a cache hit — byte-identical — via the durable
// store, with the eviction and store-hit counters moving.
func TestEvictedEntryServedFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, ts := testServer(t, Config{Workers: 1, DataDir: dir, CacheBytes: 4 << 10})
	// Stub results ~3 KiB each: one fits the 4 KiB budget, two do not.
	s.runFn = func(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
		line := fmt.Sprintf(`{"max_instr":%d}`, spec.MaxInstr)
		return bytes.Repeat([]byte(line+"\n"), 3<<10/len(line)), nil, nil
	}

	specN := func(n int) string {
		return fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 100000+n)
	}
	run := func(spec string) (JobStatus, []byte) {
		t.Helper()
		code, _, body := postJob(t, ts.URL, spec)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: status %d\n%s", code, body)
		}
		var st JobStatus
		mustDecode(t, body, &st)
		st = waitState(t, ts.URL, st.ID, "")
		if st.State != StateDone {
			t.Fatalf("job %s: %s", st.State, st.Error)
		}
		_, res := getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/result")
		return st, res
	}

	_, res1 := run(specN(1))
	_, res2 := run(specN(2)) // evicts job 1 from memory

	var m Metrics
	getJSON(t, ts.URL, "/metrics", &m)
	if m.CacheEvictions < 1 {
		t.Fatalf("cache_evictions = %d, want >=1 (budget holds one entry)", m.CacheEvictions)
	}

	// Resubmitting job 1 must hit via the disk tier, byte-identically.
	code, _, body := postJob(t, ts.URL, specN(1))
	if code != http.StatusOK {
		t.Fatalf("resubmit of evicted entry: status %d, want 200 (disk hit)\n%s", code, body)
	}
	var hit JobStatus
	mustDecode(t, body, &hit)
	if !hit.Cached {
		t.Errorf("evicted entry did not report cached")
	}
	_, got := getBody(t, ts.URL, "/v1/jobs/"+hit.ID+"/result")
	if !bytes.Equal(got, res1) {
		t.Errorf("disk-tier result differs from the original execution")
	}
	if bytes.Equal(got, res2) {
		t.Errorf("disk tier served the wrong entry")
	}
	getJSON(t, ts.URL, "/metrics", &m)
	if m.StoreHits < 1 {
		t.Errorf("store_hits = %d, want >=1 (the memory miss fell through to disk)", m.StoreHits)
	}
}

// TestCacheLRUOrder pins the memory tier's eviction order in
// disk-backed mode: a get refreshes recency, so the least recently
// used entry — not the oldest — is evicted when the budget forces it.
func TestCacheLRUOrder(t *testing.T) {
	entry := func() *cacheEntry { return &cacheEntry{result: bytes.Repeat([]byte("x"), 100)} }
	c := newResultCache(2*entrySize(entry()), true)
	c.put("a", entry())
	c.put("b", entry())
	if c.get("a") == nil { // refresh a: b becomes LRU
		t.Fatal("entry a missing before eviction")
	}
	c.put("c", entry())
	if c.get("b") != nil {
		t.Errorf("b survived; LRU order ignored the refresh of a")
	}
	if c.get("a") == nil || c.get("c") == nil {
		t.Errorf("a/c evicted; want b out, a and c resident")
	}
	_, _, evictions, entries, size := c.stats()
	if evictions != 1 || entries != 2 {
		t.Errorf("evictions=%d entries=%d, want 1 and 2", evictions, entries)
	}
	if want := 2 * entrySize(entry()); size != want {
		t.Errorf("size=%d, want %d (budget accounting after eviction)", size, want)
	}
}

// TestEventStreamOffsetResume checks the /events?offset seam: a client
// that read part of the stream re-requests with its byte offset and
// receives exactly the remainder, and an over-large offset degrades to
// the tail instead of erroring.
func TestEventStreamOffsetResume(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	stubEvents(s, "{\"ev\":1}\n{\"ev\":2}\n{\"ev\":3}\n")

	code, _, body := postJob(t, ts.URL, uniqueSpec(40))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	waitState(t, ts.URL, st.ID, StateDone)

	_, full := getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/events?follow=0")
	if len(full) == 0 {
		t.Fatal("stub emitted no event bytes")
	}
	half := len(full) / 2
	_, rest := getBody(t, ts.URL, fmt.Sprintf("/v1/jobs/%s/events?follow=0&offset=%d", st.ID, half))
	if !bytes.Equal(rest, full[half:]) {
		t.Errorf("offset resume mismatch: got %q want %q", rest, full[half:])
	}
	code, _ = getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/events?follow=0&offset=1000000")
	if code != http.StatusOK {
		t.Errorf("oversized offset: status %d, want 200 with empty tail", code)
	}
	if code, _ := getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/events?offset=-1"); code != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", code)
	}
}

// mustDecode unmarshals JSON or fails the test.
func mustDecode(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("decode %s: %v", b, err)
	}
}

// stubEvents replaces the run function with one that appends raw
// JSONL bytes to the job's event log and finishes immediately.
func stubEvents(s *Server, lines string) {
	s.runFn = func(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
		sink.mu.Lock()
		sink.buf = append(sink.buf, lines...)
		sink.cond.Broadcast()
		sink.mu.Unlock()
		return []byte("{}\n"), nil, nil
	}
}

// TestInjectedHTTPFaults arms an HTTP-seam fault plan and checks the
// middleware: the targeted route answers an injected 500 exactly as
// planned, other routes are untouched, and a latency rule delays
// rather than fails.
func TestInjectedHTTPFaults(t *testing.T) {
	plan := &fault.Plan{
		Seed: 11,
		Rules: []fault.Rule{
			{Point: fault.PointHTTP, Kind: fault.KindFail, Unit: "GET /metrics", Count: 1},
			{Point: fault.PointHTTP, Kind: fault.KindLatency, Unit: "GET /healthz", DelayMS: 30, Count: 1},
		},
	}
	_, ts := testServer(t, Config{Workers: 1, ServiceFaults: plan})

	code, body := getBody(t, ts.URL, "/metrics")
	if code != http.StatusInternalServerError {
		t.Fatalf("first /metrics: status %d, want injected 500\n%s", code, body)
	}
	if code, _ := getBody(t, ts.URL, "/metrics"); code != http.StatusOK {
		t.Errorf("second /metrics: status %d, want 200 (Count:1 exhausted)", code)
	}
	start := time.Now()
	if code, _ := getBody(t, ts.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz under latency rule: status %d", code)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("healthz answered in %v, want >=30ms injected latency", d)
	}
	if code, _ := getBody(t, ts.URL, "/v1/jobs"); code != http.StatusOK {
		t.Errorf("untargeted route affected by the plan")
	}
}

// TestInjectedStreamDisconnect arms the event-stream seam: the
// follower's connection must drop mid-stream, and a reconnect with the
// delivered offset must pick up the remainder.
func TestInjectedStreamDisconnect(t *testing.T) {
	plan := &fault.Plan{
		Seed:  13,
		Rules: []fault.Rule{{Point: fault.PointEventStream, Kind: fault.KindDisconnect, Count: 1}},
	}
	s, ts := testServer(t, Config{Workers: 1, ServiceFaults: plan})
	stubEvents(s, "{\"ev\":1}\n{\"ev\":2}\n")
	code, _, body := postJob(t, ts.URL, uniqueSpec(50))
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", code, body)
	}
	var st JobStatus
	mustDecode(t, body, &st)
	waitState(t, ts.URL, st.ID, StateDone)

	// First read: the armed disconnect kills the connection.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?follow=0")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatalf("stream survived an armed disconnect rule")
	}
	// Second read (rule exhausted): full stream.
	_, full := getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/events?follow=0")
	if want := "{\"ev\":1}\n{\"ev\":2}\n"; string(full) != want {
		t.Errorf("post-disconnect read = %q, want %q", full, want)
	}
}
