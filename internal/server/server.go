// Package server turns the experiment apparatus into a long-running
// service: a job daemon that accepts experiment specs over HTTP
// (benchmark × scheme × fault-plan × options as JSON), schedules them
// on a bounded worker pool with backpressure, streams per-job
// telemetry, and answers repeated submissions from a content-addressed
// result cache — optimization as a central system service rather than
// a batch tool, in the spirit of Kistler & Franz's perpetual
// adaptation. One process serves many jobs, so the process-wide
// record-once/replay-many trace cache (internal/rtrace via
// internal/experiment) is shared across jobs: the first job to touch a
// benchmark records its architectural trace, and every later job
// replays it.
//
// The HTTP surface (full schemas and semantics in docs/API.md):
//
//	POST   /v1/jobs             submit a JobSpec; 429 + Retry-After when the queue is full
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        one job's status, per-run metadata, disposition
//	GET    /v1/jobs/{id}/result the job's result document (the cached bytes, verbatim)
//	GET    /v1/jobs/{id}/events the job's telemetry JSONL stream (follows while running)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /metrics             queue/worker/cache/instruction counters + wall histograms
//	GET    /healthz             readiness (503 while draining)
//
// Shutdown drains: submissions are refused with 503 while queued and
// running jobs finish, reusing the experiment layer's run isolation —
// a panicking job fails alone, and cancellation rides the same chunked
// engine drive as run deadlines.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/fault"
	"acedo/internal/rtrace"
	"acedo/internal/server/cluster"
	"acedo/internal/server/store"
)

// Version is the daemon's protocol version, part of the result cache's
// engine-version string: bump it when job semantics change and stale
// cached results must stop matching.
const Version = "1"

// Job lifecycle states (JobStatus.State).
const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued = "queued"
	// StateRunning: executing on a worker.
	StateRunning = "running"
	// StateDone: finished; the result document is available.
	StateDone = "done"
	// StateFailed: finished with an error (JobStatus.Error).
	StateFailed = "failed"
	// StateCanceled: canceled by DELETE before completion.
	StateCanceled = "canceled"
)

// Config parameterises a Server. The zero value is usable: every field
// falls back to the documented default.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS). Each worker
	// executes one job at a time; within a job, runs parallelise per
	// the experiment layer's own Parallelism default.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs
	// (0 = 16). A full queue rejects submissions with 429.
	QueueDepth int
	// CacheBytes bounds the content-addressed result cache (0 = 256 MiB).
	CacheBytes int64
	// EventLogBytes bounds one job's in-memory telemetry log
	// (0 = 64 MiB); past it, further events are counted and dropped.
	EventLogBytes int
	// MaxJobs bounds retained job records (0 = 1024); the oldest
	// finished jobs are evicted first.
	MaxJobs int
	// IntraParallelism, when > 1, splits each trace replay inside a
	// job across that many goroutines (experiment.Options.
	// IntraParallelism). Results are bit-identical at any setting, so
	// this is a daemon-level latency/CPU knob and deliberately not
	// part of JobSpec — it does not enter SpecHash, and cached
	// results remain valid across settings.
	IntraParallelism int
	// TraceFormat selects the recorder implementation jobs record
	// with (experiment.Options.TraceFormat): the direct summary
	// recorder by default, or the byte encoder. Both formats replay
	// bit-identically, so — like IntraParallelism — this is a
	// daemon-level performance knob, deliberately not part of JobSpec:
	// it does not enter SpecHash, and cached results remain valid
	// across settings.
	TraceFormat rtrace.Format
	// DataDir, when non-empty, makes the daemon crash-safe: finished
	// results persist to a disk-backed content-addressed store under
	// DataDir/results (write-through behind the in-memory cache, which
	// flips to LRU eviction), and accepted jobs are journaled to
	// DataDir/journal before they are acknowledged, so a restart
	// recovers cached results and requeues unfinished submissions.
	DataDir string
	// ServiceFaults, when non-nil, arms a deterministic service-level
	// fault plan (internal/fault): injected store write/fsync errors,
	// torn writes, HTTP handler latency and 500s, event-stream
	// disconnects, and peer-request drops/delays/500s. A nil plan
	// injects nothing and costs nothing.
	ServiceFaults *fault.Plan
	// Cluster, when non-nil, joins this daemon to a consistent-hash
	// ring of peers (internal/server/cluster): submissions whose
	// SpecHash another node owns are forwarded there, workers consult
	// the owner's store before executing, and job sub-resources proxy
	// across nodes. A nil Cluster is the single-node mode, byte-
	// identical to a daemon built before the cluster plane existed.
	Cluster *cluster.Config
	// Log, when non-nil, receives one line per job state change.
	Log io.Writer
}

// withDefaults fills zero fields with their defaults.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.EventLogBytes <= 0 {
		c.EventLogBytes = 64 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// job is one submission's record: immutable identity plus
// mutex-guarded lifecycle state.
type job struct {
	id     string
	spec   JobSpec
	hash   string
	events *eventLog
	cancel chan struct{}

	mu        sync.Mutex
	state     string
	cached    bool
	result    []byte
	runs      []RunMeta
	errMsg    string
	wall      time.Duration
	cancelled bool // cancel channel closed
}

// terminal reports whether state is a finished state.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// status assembles the job's wire status document.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Cached:    j.cached,
		SpecHash:  j.hash,
		Spec:      j.spec,
		Error:     j.errMsg,
		WallMS:    float64(j.wall.Microseconds()) / 1e3,
		Runs:      j.runs,
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	if j.state == StateDone {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

// JobStatus is the wire form of one job's state: lifecycle, identity
// (including the content-address the result cache keys on), error and
// per-run metadata, and the job's sub-resource URLs.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Cached   bool   `json:"cached,omitempty"`
	SpecHash string `json:"spec_hash"`
	// Spec is the normalised spec (defaults filled in).
	Spec  JobSpec `json:"spec"`
	Error string  `json:"error,omitempty"`
	// WallMS is the job's execution wall time (0 until finished; 0
	// forever for cache hits, which execute nothing).
	WallMS float64 `json:"wall_ms,omitempty"`
	// Runs carries per-run metadata: for an executed job, the runs it
	// performed; for a cache hit, the runs of the execution that
	// populated the cache entry.
	Runs      []RunMeta `json:"runs,omitempty"`
	ResultURL string    `json:"result_url,omitempty"`
	EventsURL string    `json:"events_url"`
}

// Server is the experiment job daemon: an http.Handler plus the worker
// pool and caches behind it. Create with New, serve with any
// http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   chan *job
	cache   *resultCache
	metrics *metrics

	// Durability layer: nil without Config.DataDir. journalReplayed
	// is written once during recovery, before any handler goroutine
	// exists.
	store           *store.Store
	journal         *store.Journal
	svcFaults       *fault.Service
	journalReplayed uint64

	// cluster is the compiled cluster plane: nil without
	// Config.Cluster, which keeps every single-node path branch-cheap.
	cluster *cluster.Cluster

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for eviction
	seq      uint64
	draining bool

	workers sync.WaitGroup

	// runFn executes one job (tests substitute a stub).
	runFn func(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error)
}

// New builds a Server, recovers any durable state under
// Config.DataDir (valid stored results re-index, journaled-but-
// unfinished jobs requeue), and starts the worker pool. It fails only
// on an invalid service-fault plan or an unusable data directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	svc, err := fault.NewService(cfg.ServiceFaults)
	if err != nil {
		return nil, fmt.Errorf("server: service fault plan: %w", err)
	}
	clu, err := cluster.New(cfg.Cluster, svc)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var (
		st      *store.Store
		journal *store.Journal
		pending []store.Pending
	)
	if cfg.DataDir != "" {
		st, err = store.Open(filepath.Join(cfg.DataDir, "results"), engineVersion(), svc)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		journal, pending, err = store.OpenJournal(filepath.Join(cfg.DataDir, "journal"), svc)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		// Recovered jobs ride extra queue capacity so a journal
		// longer than the configured depth still replays in full;
		// the submit path enforces QueueDepth itself.
		queue:     make(chan *job, cfg.QueueDepth+len(pending)),
		cache:     newResultCache(cfg.CacheBytes, st != nil),
		metrics:   newMetrics(),
		store:     st,
		journal:   journal,
		svcFaults: svc,
		cluster:   clu,
		jobs:      make(map[string]*job),
	}
	s.runFn = s.runJob
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/cluster/store/{hash}", s.handleClusterStore)
	if st != nil {
		rep := st.Scan()
		s.logf("store: %d results recovered, %d quarantined, %d stale (%s)",
			rep.Recovered, rep.Quarantined, rep.Stale, st.Dir())
	}
	for _, p := range pending {
		s.recoverJob(p)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// recoverJob requeues one journaled-but-unfinished submission during
// boot, before the worker pool starts. Jobs whose result already sits
// in the durable store (the crash ate only the journal's done record)
// are retired without re-executing; jobs whose spec no longer
// normalises or hashes identically (the engine moved on underneath
// them) are retired too, because the result the submitter was
// promised can no longer be reproduced under that content address.
func (s *Server) recoverJob(p store.Pending) {
	retire := func(reason string) {
		if err := s.journal.Done(p.Hash); err != nil {
			s.logf("journal: retire %s: %v", shortHash(p.Hash), err)
		}
		if reason != "" {
			s.logf("journal: dropped %s: %s", shortHash(p.Hash), reason)
		}
	}
	var spec JobSpec
	if err := json.Unmarshal(p.Spec, &spec); err != nil {
		retire(fmt.Sprintf("unreadable spec: %v", err))
		return
	}
	spec, err := spec.Normalize()
	if err != nil {
		retire(fmt.Sprintf("invalid spec: %v", err))
		return
	}
	hash, err := SpecHash(spec)
	if err != nil || hash != p.Hash {
		retire("spec no longer matches its journaled content address")
		return
	}
	if _, ok, err := s.store.Get(hash); err == nil && ok {
		retire("") // finished before the crash; result is durable
		return
	}
	s.mu.Lock()
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j%d", s.seq),
		spec:   spec,
		hash:   hash,
		events: newEventLog(s.cfg.EventLogBytes),
		cancel: make(chan struct{}),
		state:  StateQueued,
	}
	s.register(j)
	s.mu.Unlock()
	s.queue <- j
	s.journalReplayed++
	s.metrics.jobSubmitted(false)
	s.logf("job %s: requeued from journal (%s)", j.id, shortHash(hash))
}

// ServeHTTP dispatches to the daemon's routes (http.Handler), through
// the service fault seam: an armed plan can delay a request or answer
// it with an injected 500 before the handler runs. Rules filter on
// "METHOD /path" via their Unit field; with no plan armed this is a
// single nil test.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.svcFaults != nil {
		delay, fail := s.svcFaults.HTTP(r.Method + " " + r.URL.Path)
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail {
			writeError(w, http.StatusInternalServerError, "injected service fault")
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the daemon: new submissions are refused with 503,
// queued and running jobs finish, and the worker pool exits. It
// returns nil when the drain completes, or the error carried by a
// deadline/cancellation on done (a channel that aborts the wait, e.g.
// time.After or a context's Done); the jobs keep running in that case.
func (s *Server) Shutdown(done <-chan struct{}) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				s.logf("journal: close: %v", err)
			}
		}
		return nil
	case <-done:
		return errors.New("server: shutdown aborted before drain completed")
	}
}

// ClusterRing returns the consistent-hash ring this node routes over,
// or nil for a single-node server. Callers can combine it with
// SpecHash to predict which node owns a spec.
func (s *Server) ClusterRing() *cluster.Ring {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.Ring()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// logf writes one progress line to the configured log.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "acelabd: "+format+"\n", args...)
	}
}

// worker executes queued jobs until the queue closes (Shutdown).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.metrics.workerBusy(1)
		s.execute(j)
		s.metrics.workerBusy(-1)
	}
}

// execute runs one dequeued job to a terminal state. Jobs canceled
// while queued are skipped (DELETE already finalised them).
func (s *Server) execute(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.mu.Unlock()
	if s.adoptFromOwner(j) {
		return
	}
	s.logf("job %s: running (benchmarks=%d schemes=%v)", j.id, len(j.spec.Benchmarks), j.spec.Schemes)

	start := time.Now()
	result, runs, err := s.runGuarded(j)
	wall := time.Since(start)

	state := StateDone
	var errMsg string
	if err != nil {
		errMsg = err.Error()
		state = StateFailed
		if errors.Is(err, experiment.ErrCanceled) {
			state = StateCanceled
		}
	}
	// Durability before visibility: the result is cached, persisted,
	// and journaled done before the terminal state is published, so a
	// client that has observed StateDone may rely on the result
	// surviving a crash-restart (the journal's lost-done recovery
	// path depends on this ordering too — a restart racing a
	// finishing job must find the store write already on disk).
	if state == StateDone {
		s.cache.put(j.hash, &cacheEntry{result: result, runs: runs})
		s.persist(j.hash, result, runs)
	}
	s.markDone(j.hash)
	j.mu.Lock()
	j.state = state
	j.result = result
	j.runs = runs
	j.errMsg = errMsg
	j.wall = wall
	j.mu.Unlock()
	j.events.close()
	s.metrics.jobFinished(state, wall, runs)
	s.logf("job %s: %s (%.2fs, %d runs)%s", j.id, state, wall.Seconds(), len(runs), errSuffix(errMsg))
}

// errSuffix formats an error for a log line ("" when empty).
func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// runGuarded invokes the job's run function under a recovery guard.
// The experiment layer already isolates simulation panics per run;
// this guard additionally contains faults in the service layer itself,
// so one corrupt job can never take a worker down.
func (s *Server) runGuarded(j *job) (result []byte, runs []RunMeta, err error) {
	defer func() {
		if r := recover(); r != nil {
			result = nil
			err = fmt.Errorf("server: job panicked: %v", r)
		}
	}()
	// The job's event log is always handed down: runJob attaches run
	// telemetry to it only when the spec requests events, but optimize
	// jobs stream their per-generation search progress regardless.
	return s.runFn(j.spec, j.events, j.cancel)
}

// persist write-throughs one finished result to the durable store
// (no-op without a data dir). A store failure is logged, not fatal:
// the in-memory tiers still serve the result for this life of the
// daemon, it just will not survive a restart.
func (s *Server) persist(hash string, result []byte, runs []RunMeta) {
	if s.store == nil {
		return
	}
	meta, err := json.Marshal(runs)
	if err == nil {
		err = s.store.Put(hash, store.Entry{Result: result, Meta: meta})
	}
	if err != nil {
		s.logf("store: put %s: %v", shortHash(hash), err)
	}
}

// markDone appends the job's done record to the journal (no-op
// without a data dir). Every terminal state counts as done — failed
// and canceled jobs must not be re-executed by a restart either.
func (s *Server) markDone(hash string) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Done(hash); err != nil {
		s.logf("journal: done %s: %v", shortHash(hash), err)
	}
}

// lookupResult is the two-tier content-addressed lookup: the memory
// cache first, then the durable store, promoting a disk hit back into
// memory so its bytes keep serving without another read. A corrupt
// stored entry was already quarantined by Get and reads as a miss —
// the job re-executes and re-persists clean bytes.
func (s *Server) lookupResult(hash string) *cacheEntry {
	if e := s.cache.get(hash); e != nil {
		return e
	}
	if s.store == nil {
		return nil
	}
	ent, ok, err := s.store.Get(hash)
	if err != nil {
		s.logf("store: get %s: %v", shortHash(hash), err)
		return nil
	}
	if !ok {
		return nil
	}
	var runs []RunMeta
	if len(ent.Meta) > 0 {
		if err := json.Unmarshal(ent.Meta, &runs); err != nil {
			s.logf("store: get %s: bad run metadata: %v", shortHash(hash), err)
			runs = nil
		}
	}
	e := &cacheEntry{result: ent.Result, runs: runs}
	s.cache.put(hash, e)
	s.metrics.storeHit()
	return e
}

// handleSubmit is POST /v1/jobs: validate, answer from the result
// cache, or enqueue with backpressure.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	spec, err := spec.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	hash, err := SpecHash(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.forwardIfRemote(w, r, spec, hash) {
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j%d", s.seq),
		spec:   spec,
		hash:   hash,
		events: newEventLog(s.cfg.EventLogBytes),
		cancel: make(chan struct{}),
		state:  StateQueued,
	}
	if e := s.lookupResult(hash); e != nil {
		// Content-addressed hit (memory or disk tier): the job is
		// born finished with the cached bytes — byte-identical to the
		// execution that populated the entry — and nothing executes.
		j.state = StateDone
		j.cached = true
		j.result = e.result
		j.runs = e.runs
		j.events.close()
		s.register(j)
		s.mu.Unlock()
		s.metrics.jobSubmitted(true)
		s.logf("job %s: cache hit (%s)", j.id, shortHash(hash))
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	// Backpressure is checked against the configured depth, not the
	// channel's capacity (recovery may have sized the channel larger),
	// and before journaling, so a rejected submission leaves no journal
	// record behind. Under s.mu only workers drain the queue
	// concurrently, so a depth below the bound guarantees the send
	// cannot block.
	if depth := len(s.queue); depth >= s.cfg.QueueDepth {
		s.seq-- // not registered; reuse the ID
		s.mu.Unlock()
		retry := s.metrics.retryAfter(depth, s.cfg.Workers)
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued); retry after %s", depth, retry))
		return
	}
	if s.journal != nil {
		// Journal before acknowledging: the 202 is a durable promise,
		// so a submission that cannot be journaled is refused rather
		// than accepted into a state a crash would silently lose.
		specJSON, jerr := json.Marshal(spec)
		if jerr == nil {
			jerr = s.journal.Accept(hash, specJSON)
		}
		if jerr != nil {
			s.seq--
			s.mu.Unlock()
			s.logf("journal: accept %s: %v", shortHash(hash), jerr)
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("cannot journal submission: %v", jerr))
			return
		}
	}
	s.queue <- j
	s.register(j)
	s.mu.Unlock()
	s.metrics.jobSubmitted(false)
	s.logf("job %s: queued (%s)", j.id, shortHash(hash))
	writeJSON(w, http.StatusAccepted, j.status())
}

// shortHash abbreviates a spec hash for log lines.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// register records a job (caller holds s.mu) and evicts the oldest
// finished jobs past the retention bound.
func (s *Server) register(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		old := s.jobs[id]
		if len(s.jobs) > s.cfg.MaxJobs && old != nil {
			old.mu.Lock()
			done := terminal(old.state)
			old.mu.Unlock()
			if done {
				delete(s.jobs, id)
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobByID resolves a path's job, writing 404 when unknown. A
// node-qualified ID ("j3@node-a") naming this node resolves locally;
// IDs naming other nodes never reach here (the handlers proxy them
// first).
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	if local, node := splitJobID(id); node != "" && s.cluster != nil && node == s.cluster.Self() {
		id = local
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	}
	return j
}

// handleList is GET /v1/jobs: every retained job's status, oldest
// first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: make([]JobStatus, len(jobs))}
	for i, j := range jobs {
		out.Jobs[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.proxyJob(w, r, "") {
		return
	}
	if j := s.jobByID(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleResult is GET /v1/jobs/{id}/result: the result document bytes,
// verbatim. 202 while the job is queued or running, 409 for failed or
// canceled jobs.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.proxyJob(w, r, "/result") {
		return
	}
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, result := j.state, j.result
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StateQueued, StateRunning:
		writeError(w, http.StatusAccepted, fmt.Sprintf("job %s %s; no result yet", j.id, state))
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s %s; no result", j.id, state))
	}
}

// handleEvents is GET /v1/jobs/{id}/events: the job's telemetry JSONL
// stream. By default the response follows a live job until it
// finishes; ?follow=0 returns only what is buffered. ?offset=N skips
// the first N bytes of the log (clamped to what is buffered), so a
// client whose connection dropped mid-stream resumes where it left off
// instead of re-reading from the top. Jobs submitted without
// "events": true produce an empty stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.proxyJob(w, r, "/events") {
		return
	}
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	offset := 0
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid offset %q", v))
			return
		}
		offset = j.events.clamp(n)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		chunk, closed := j.events.next(r.Context(), offset)
		if len(chunk) > 0 {
			if s.svcFaults != nil && s.svcFaults.StreamDisconnect() {
				// Deliver half the chunk, then abort the connection
				// without a clean close: the client sees a truncated
				// mid-stream disconnect (not a retryable
				// before-response failure) and must resume via
				// ?offset.
				w.Write(chunk[:len(chunk)/2])
				if flusher != nil {
					flusher.Flush()
				}
				panic(http.ErrAbortHandler)
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			offset += len(chunk)
			continue
		}
		if closed || !follow || r.Context().Err() != nil {
			return
		}
	}
}

// handleCancel is DELETE /v1/jobs/{id}: queued jobs finalise
// immediately; running jobs get their cancellation channel closed and
// finalise when the engine's chunked drive notices. Finished jobs are
// left as they are (the response reports their terminal state).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if s.proxyJob(w, r, "") {
		return
	}
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		if !j.cancelled {
			j.cancelled = true
			close(j.cancel)
		}
		j.mu.Unlock()
		j.events.close()
		s.markDone(j.hash)
		s.metrics.jobFinished(StateCanceled, 0, nil)
		s.logf("job %s: canceled while queued", j.id)
	case StateRunning:
		if !j.cancelled {
			j.cancelled = true
			close(j.cancel)
		}
		j.mu.Unlock()
		s.logf("job %s: cancellation requested", j.id)
	default:
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics.snapshot()
	m.QueueDepth = len(s.queue)
	m.QueueCapacity = s.cfg.QueueDepth
	m.Workers = s.cfg.Workers
	m.Draining = s.Draining()
	m.CacheHits, m.CacheMisses, m.CacheEvictions, m.CacheEntries, m.CacheBytes = s.cache.stats()
	m.TraceFormat = s.cfg.TraceFormat.String()
	tc := experiment.CurrentTraceCacheStats()
	m.TraceCacheEntries = tc.Entries
	m.TraceCacheBytes = tc.Bytes
	m.TraceCacheDirect = tc.DirectBuilt
	m.TraceCacheSummarized = tc.Summarized
	if s.store != nil {
		m.StoreEntries, m.StoreBytes = s.store.Stats()
		m.JournalReplayed = s.journalReplayed
	}
	if s.cluster != nil {
		m.ClusterNode = s.cluster.Self()
		m.ClusterSize = s.cluster.Ring().Size()
		m.ClusterOwnedPct = 100 * s.cluster.Ring().Share(s.cluster.Self())
	}
	writeJSON(w, http.StatusOK, m)
}

// handleHealthz is GET /healthz: readiness. 200 while accepting jobs,
// 503 once draining. A durable daemon additionally reports its store
// integrity — how the startup scan went (entries recovered,
// quarantined, stale) plus any entries quarantined at runtime — and
// how many journaled jobs the last boot requeued. A clustered daemon
// also reports its ring identity and each peer's probed liveness
// ("ok", "draining", or "unreachable: <cause>"); an unreachable peer
// degrades routing, not this node's own readiness, so the status code
// reflects only local state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	out := struct {
		Status          string            `json:"status"`
		Store           *store.Report     `json:"store,omitempty"`
		JournalReplayed *uint64           `json:"journal_replayed,omitempty"`
		ClusterNode     string            `json:"cluster_node,omitempty"`
		Peers           map[string]string `json:"peers,omitempty"`
	}{Status: status}
	if s.store != nil {
		rep := s.store.Scan()
		out.Store = &rep
		out.JournalReplayed = &s.journalReplayed
	}
	if s.cluster != nil {
		out.ClusterNode = s.cluster.Self()
		// A peer's own probe is answered from local state only — see
		// cluster.ProbeHeader.
		if r.Header.Get(cluster.ProbeHeader) == "" {
			out.Peers = s.cluster.Liveness()
		}
	}
	writeJSON(w, code, out)
}

// writeJSON renders v as an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders the daemon's uniform error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
