package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/rtrace"
	"acedo/internal/workload"
)

// testServer boots a Server behind httptest and tears both down with
// the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		done := make(chan struct{})
		time.AfterFunc(30*time.Second, func() { close(done) })
		if err := s.Shutdown(done); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// postJob submits a raw spec and returns the response status code,
// headers, and body.
func postJob(t *testing.T, base, spec string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

// getJSON fetches path and decodes the JSON body into v, returning the
// status code.
func getJSON(t *testing.T, base, path string, v any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode
}

// waitState polls a job until it reaches a terminal state (or want,
// when non-empty) and returns its final status.
func waitState(t *testing.T, base, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		if code := getJSON(t, base, "/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d", id, code)
		}
		if st.State == want || (want == "" && terminal(st.State)) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (want %q)", id, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getBody fetches path and returns status code and raw body.
func getBody(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestJobLifecycle submits one comparison job and checks the full
// path: 202 on submit, queued/running → done, and a result document
// byte-identical to running the same comparison directly through the
// experiment layer.
func TestJobLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	code, _, body := postJob(t, ts.URL, `{"benchmarks":["compress"],"scale":40}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202\n%s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode submit status: %v", err)
	}
	if st.State != StateQueued {
		t.Errorf("submit state = %q, want %q", st.State, StateQueued)
	}
	if st.SpecHash == "" || st.ID == "" {
		t.Errorf("submit status missing identity: %+v", st)
	}

	final := waitState(t, ts.URL, st.ID, StateDone)
	if final.Error != "" {
		t.Fatalf("job failed: %s", final.Error)
	}
	if len(final.Runs) != 3 {
		t.Errorf("runs = %d, want 3 (baseline/bbv/hotspot)", len(final.Runs))
	}
	if final.ResultURL == "" {
		t.Fatalf("done job has no result_url")
	}

	code, got := getBody(t, ts.URL, final.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}

	// The same comparison straight through the experiment layer must
	// render byte-identically.
	opt := experiment.OptionsAtScale(40)
	spec, _ := workload.ByName("compress")
	c, err := experiment.Compare(opt.AdjustWorkload(spec), opt)
	if err != nil {
		t.Fatalf("direct compare: %v", err)
	}
	direct := experiment.SuiteResults{Options: opt, Comparisons: []*experiment.Comparison{c}}
	var want bytes.Buffer
	if err := direct.Snapshot().WriteJSON(&want); err != nil {
		t.Fatalf("direct snapshot: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("service result differs from direct experiment run:\nservice: %s\ndirect:  %s", got, want.Bytes())
	}
}

// TestCacheHitDeterminism submits the same job twice: the second
// submission must be answered from the result cache — born done with
// byte-identical result bytes — without executing anything, pinned by
// the instruction counter in /metrics staying put.
func TestCacheHitDeterminism(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	spec := `{"benchmarks":["compress"],"schemes":["baseline","wss"],"scale":40,"run_meta":true}`

	code, _, body := postJob(t, ts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d\n%s", code, body)
	}
	var first JobStatus
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, ts.URL, first.ID, StateDone)
	_, firstResult := getBody(t, ts.URL, "/v1/jobs/"+first.ID+"/result")

	var before Metrics
	getJSON(t, ts.URL, "/metrics", &before)
	if before.InstrSimulated == 0 {
		t.Fatalf("metrics report no simulated instructions after an executed job")
	}

	// An equivalent spec with different field order and explicit
	// defaults must normalise to the same content address.
	equiv := `{"scale":40,"run_meta":true,"schemes":["baseline","wss"],"benchmarks":["compress"]}`
	code, _, body = postJob(t, ts.URL, equiv)
	if code != http.StatusOK {
		t.Fatalf("second submit: status %d, want 200 (cache hit)\n%s", code, body)
	}
	var second JobStatus
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Errorf("second submission not a cache hit: cached=%v state=%q", second.Cached, second.State)
	}
	if second.SpecHash != done.SpecHash {
		t.Errorf("equivalent specs hashed differently: %s vs %s", second.SpecHash, done.SpecHash)
	}
	if len(second.Runs) != len(done.Runs) {
		t.Errorf("cache hit runs = %d, want %d", len(second.Runs), len(done.Runs))
	}

	_, secondResult := getBody(t, ts.URL, "/v1/jobs/"+second.ID+"/result")
	if !bytes.Equal(firstResult, secondResult) {
		t.Errorf("cached result not byte-identical:\nfirst:  %s\nsecond: %s", firstResult, secondResult)
	}

	var after Metrics
	getJSON(t, ts.URL, "/metrics", &after)
	if after.InstrSimulated != before.InstrSimulated {
		t.Errorf("cache hit executed instructions: %d -> %d", before.InstrSimulated, after.InstrSimulated)
	}
	if after.CacheHits != 1 || after.JobsCached != 1 {
		t.Errorf("cache counters: hits=%d cached=%d, want 1/1", after.CacheHits, after.JobsCached)
	}
}

// TestMetricsTraceCache: after an executed schemes job, /metrics must
// expose the daemon's recorder format and the process-wide trace
// cache's gauges — the recording the job stored shows up as a new
// entry with a non-zero memory charge, attributed to the configured
// format's construction counter.
func TestMetricsTraceCache(t *testing.T) {
	// The trace cache is process-global, so assert deltas, and use
	// max_instr values no other test submits so the job really records
	// rather than replaying another test's cached trace.
	run := func(t *testing.T, cfg Config, spec string) (experiment.TraceCacheStats, Metrics) {
		before := experiment.CurrentTraceCacheStats()
		_, ts := testServer(t, cfg)
		code, _, body := postJob(t, ts.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit: status %d\n%s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if final := waitState(t, ts.URL, st.ID, StateDone); final.Error != "" {
			t.Fatalf("job failed: %s", final.Error)
		}
		var m Metrics
		getJSON(t, ts.URL, "/metrics", &m)
		return before, m
	}

	t.Run("summary", func(t *testing.T) {
		before, m := run(t, Config{Workers: 1},
			`{"benchmarks":["compress"],"schemes":["baseline","wss"],"scale":40,"max_instr":600001}`)
		if m.TraceFormat != "summary" {
			t.Errorf("trace_format = %q, want %q", m.TraceFormat, "summary")
		}
		if m.TraceCacheEntries <= before.Entries || m.TraceCacheBytes <= before.Bytes {
			t.Errorf("trace cache gauges did not grow: entries %d->%d bytes %d->%d",
				before.Entries, m.TraceCacheEntries, before.Bytes, m.TraceCacheBytes)
		}
		if m.TraceCacheDirect <= before.DirectBuilt {
			t.Errorf("direct-built counter did not grow: %d -> %d", before.DirectBuilt, m.TraceCacheDirect)
		}
	})

	t.Run("bytes", func(t *testing.T) {
		before, m := run(t, Config{Workers: 1, TraceFormat: rtrace.FormatBytes},
			`{"benchmarks":["compress"],"schemes":["baseline","wss"],"scale":40,"max_instr":600002}`)
		if m.TraceFormat != "bytes" {
			t.Errorf("trace_format = %q, want %q", m.TraceFormat, "bytes")
		}
		if m.TraceCacheSummarized <= before.Summarized {
			t.Errorf("summarized counter did not grow: %d -> %d", before.Summarized, m.TraceCacheSummarized)
		}
	})
}

// stubRun replaces the worker run function with one that blocks until
// release closes (or the job is canceled).
func stubRun(s *Server, release <-chan struct{}) {
	s.runFn = func(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
		select {
		case <-release:
			return []byte("{}\n"), []RunMeta{{Benchmark: "stub", Scheme: "baseline"}}, nil
		case <-cancel:
			return nil, nil, &experiment.RunError{Benchmark: "stub", Err: experiment.ErrCanceled}
		}
	}
}

// uniqueSpec returns a spec no other test submits, so stub jobs never
// collide in the result cache.
func uniqueSpec(n int) string {
	return fmt.Sprintf(`{"benchmarks":["compress"],"max_instr":%d}`, 1000+n)
}

// TestQueueFullBackpressure fills the worker and the queue, then
// checks that the next submission is rejected with 429 and a
// Retry-After estimate.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	stubRun(s, release)

	// First job occupies the worker, second the queue slot.
	if code, _, body := postJob(t, ts.URL, uniqueSpec(1)); code != http.StatusAccepted {
		t.Fatalf("job 1: status %d\n%s", code, body)
	}
	waitBusy(t, ts.URL)
	if code, _, body := postJob(t, ts.URL, uniqueSpec(2)); code != http.StatusAccepted {
		t.Fatalf("job 2: status %d\n%s", code, body)
	}

	code, hdr, body := postJob(t, ts.URL, uniqueSpec(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429\n%s", code, body)
	}
	retry := hdr.Get("Retry-After")
	if retry == "" {
		t.Errorf("429 without Retry-After header")
	}
	var sec int
	if _, err := fmt.Sscanf(retry, "%d", &sec); err != nil || sec < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", retry)
	}

	close(release)
	var ms Metrics
	getJSON(t, ts.URL, "/metrics", &ms)
	if ms.QueueCapacity != 1 || ms.Workers != 1 {
		t.Errorf("metrics config: queue_capacity=%d workers=%d", ms.QueueCapacity, ms.Workers)
	}
}

// waitBusy polls /metrics until a worker picks up a job.
func waitBusy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m Metrics
		getJSON(t, base, "/metrics", &m)
		if m.BusyWorkers > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no worker went busy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelRunning cancels a running job via DELETE and checks it
// lands in the canceled state with the cancellation surfaced.
func TestCancelRunning(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	stubRun(s, release)

	_, _, body := postJob(t, ts.URL, uniqueSpec(10))
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, ts.URL)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()

	final := waitState(t, ts.URL, st.ID, StateCanceled)
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled job error = %q, want mention of cancellation", final.Error)
	}

	// A canceled job has no result document.
	code, _ := getBody(t, ts.URL, "/v1/jobs/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Errorf("result of canceled job: status %d, want 409", code)
	}
	var m Metrics
	getJSON(t, ts.URL, "/metrics", &m)
	if m.JobsCanceled != 1 {
		t.Errorf("jobs_canceled = %d, want 1", m.JobsCanceled)
	}
}

// TestCancelQueued cancels a job that is still waiting for a worker:
// it must finalise immediately and never execute.
func TestCancelQueued(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	stubRun(s, release)

	_, _, body := postJob(t, ts.URL, uniqueSpec(20))
	var running JobStatus
	if err := json.Unmarshal(body, &running); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, ts.URL)
	_, _, body = postJob(t, ts.URL, uniqueSpec(21))
	var queued JobStatus
	if err := json.Unmarshal(body, &queued); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateCanceled {
		t.Errorf("queued job after DELETE: state %q, want canceled immediately", st.State)
	}

	close(release)
	waitState(t, ts.URL, running.ID, StateDone)
	var m Metrics
	getJSON(t, ts.URL, "/metrics", &m)
	if m.JobsCompleted != 1 || m.JobsCanceled != 1 {
		t.Errorf("completed=%d canceled=%d, want 1/1 (canceled job must not execute)",
			m.JobsCompleted, m.JobsCanceled)
	}
}

// TestGracefulDrain starts a drain with a job in flight: readiness and
// submissions must flip to 503 immediately, and Shutdown must return
// once the in-flight job finishes.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	release := make(chan struct{})
	stubRun(s, release)

	_, _, body := postJob(t, ts.URL, uniqueSpec(30))
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitBusy(t, ts.URL)

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(nil) }()
	waitDraining(t, ts.URL)

	if code, _, body := postJob(t, ts.URL, uniqueSpec(31)); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503\n%s", code, body)
	}
	if code, _ := getBody(t, ts.URL, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", code)
	}
	select {
	case err := <-drained:
		t.Fatalf("shutdown returned before in-flight job finished: %v", err)
	default:
	}

	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("shutdown did not complete after job release")
	}
	final := waitState(t, ts.URL, st.ID, StateDone)
	if final.State != StateDone {
		t.Errorf("in-flight job after drain: %q, want done", final.State)
	}
}

// waitDraining polls /healthz until the server reports draining.
func waitDraining(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code, _ := getBody(t, base, "/healthz"); code == http.StatusServiceUnavailable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsStream runs a job with events enabled and checks the
// /events endpoint yields a well-formed JSONL stream that terminates
// once the job is done.
func TestEventsStream(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := `{"benchmarks":["compress"],"schemes":["baseline"],"scale":40,"events":true}`
	_, _, body := postJob(t, ts.URL, spec)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts.URL, st.ID, StateDone)

	code, events := getBody(t, ts.URL, st.EventsURL)
	if code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	lines := bytes.Split(bytes.TrimSuffix(events, []byte("\n")), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatalf("events stream empty for a job with events enabled")
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("events line %d not JSON: %v\n%s", i, err, line)
		}
		if e["type"] == "" {
			t.Fatalf("events line %d missing type: %s", i, line)
		}
	}

	// A job without events yields an empty (but well-formed) stream.
	_, _, body = postJob(t, ts.URL, `{"benchmarks":["compress"],"schemes":["baseline"],"scale":40}`)
	var quiet JobStatus
	if err := json.Unmarshal(body, &quiet); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts.URL, quiet.ID, "")
	if code, events := getBody(t, ts.URL, quiet.EventsURL); code != http.StatusOK || len(events) != 0 {
		t.Errorf("eventless job stream: status %d, %d bytes, want 200 and empty", code, len(events))
	}
}

// TestBadSpecs checks validation rejections.
func TestBadSpecs(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	for _, spec := range []string{
		`{"benchmarks":["nope"]}`,
		`{"schemes":["turbo"]}`,
		`{"benchmarks":["compress","compress"]}`,
		`{"schemes":["bbv","bbv"]}`,
		`{"deadline_ms":-5}`,
		`{"unknown_field":1}`,
		`not json`,
	} {
		if code, _, body := postJob(t, ts.URL, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400\n%s", spec, code, body)
		}
	}
	// Unknown job IDs are 404 everywhere.
	if code, _ := getBody(t, ts.URL, "/v1/jobs/j999"); code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL, "/v1/jobs/j999/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}
}

// TestSpecHashNormalization pins the content-address contract: the
// zero spec and a spec spelling out every default hash identically,
// while any semantic difference changes the hash.
func TestSpecHashNormalization(t *testing.T) {
	zero, err := JobSpec{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, spec := range workload.Suite() {
		all = append(all, spec.Name)
	}
	explicit, err := JobSpec{
		Benchmarks: all,
		Schemes:    []string{"baseline", "bbv", "hotspot"},
		Scale:      10,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := SpecHash(zero)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SpecHash(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("zero spec and explicit-defaults spec hash differently:\n%s\n%s", h1, h2)
	}

	other := explicit
	other.Scale = 40
	other, _ = other.Normalize()
	h3, err := SpecHash(other)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Errorf("different scale, same hash %s", h3)
	}
	if !zero.comparison() {
		t.Errorf("default spec not recognised as comparison job")
	}
	if s := (JobSpec{Schemes: []string{"baseline", "wss"}}); func() bool {
		n, _ := s.Normalize()
		return n.comparison()
	}() {
		t.Errorf("baseline/wss spec misclassified as comparison job")
	}
}
