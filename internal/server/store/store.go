// Package store is the daemon's durability layer: a disk-backed
// content-addressed result store plus a journaled job queue, so that
// a crash — up to and including kill -9 — loses neither cached
// results nor accepted-but-unfinished submissions.
//
// The result store keeps one file per SpecHash, written with the
// classic atomic protocol (temp file in the same directory → fsync →
// rename → directory fsync) so a reader never observes a
// partially-written entry under its final name. Every entry carries a
// CRC-checked header binding it to the engine-version string that
// produced it; the startup scan recovers entries that check out,
// skips entries from other engine versions, and quarantines corrupt
// or torn files into a quarantine/ subdirectory instead of serving
// them.
//
// The journal is an append-only text file of CRC-framed records:
// accepted jobs are appended (and fsynced) before the daemon
// acknowledges them, completion appends a done record, and replay on
// restart returns the accepted-but-not-done set — deduplicated by
// hash, tolerant of a torn final record, and compacted on open.
//
// Both halves thread the service-level fault injector
// (fault.Service) through their write and sync seams, so chaos tests
// can rehearse disk failure and torn writes deterministically; a nil
// injector is the zero-cost common case.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"acedo/internal/fault"
)

// magic heads every result file; a file without it is not ours (or is
// torn before byte 4) and quarantines on sight.
var magic = []byte("ACR1")

// ErrCorrupt reports a result file that failed validation — bad
// magic, short header, CRC mismatch, or torn payload. The store
// quarantines the file before returning it.
var ErrCorrupt = errors.New("store: corrupt entry")

// quarantineDir is the subdirectory corrupt files are moved into,
// keeping them for post-mortems without ever serving them.
const quarantineDir = "quarantine"

// Entry is one stored result: the result document bytes plus opaque
// metadata (the server serialises its per-run metadata into Meta, the
// store never interprets it).
type Entry struct {
	Result []byte
	Meta   []byte
}

// Report summarises one startup scan for /healthz and logs.
type Report struct {
	// Recovered counts entries that validated and joined the index.
	Recovered int `json:"recovered"`
	// Quarantined counts corrupt/torn files moved to quarantine/.
	Quarantined int `json:"quarantined"`
	// Stale counts valid files from a different engine version,
	// left on disk but not indexed.
	Stale int `json:"stale"`
}

// Store is the disk tier of the content-addressed result cache. All
// methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	version string
	faults  *fault.Service
	sizes   map[string]int64 // hash → file size on disk
	bytes   int64
	report  Report
}

// Open creates dir if needed, scans it, and returns the store with
// every valid same-version entry indexed. Corrupt or torn files are
// moved to dir/quarantine; leftover temp files from a previous crash
// are removed; files written by another engine version stay on disk
// but are not served. faults may be nil.
func Open(dir, version string, faults *fault.Service) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		version: version,
		faults:  faults,
		sizes:   make(map[string]int64),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		hash, ok := strings.CutSuffix(name, ".res")
		if !ok {
			continue
		}
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(path)
			s.report.Quarantined++
			continue
		}
		_, ver, err := decode(b)
		switch {
		case err != nil:
			s.quarantine(path)
			s.report.Quarantined++
		case ver != version:
			s.report.Stale++
		default:
			s.sizes[hash] = int64(len(b))
			s.bytes += int64(len(b))
			s.report.Recovered++
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Scan returns the startup scan report.
func (s *Store) Scan() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Stats returns the indexed entry count and their on-disk bytes.
func (s *Store) Stats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes), s.bytes
}

// Hashes returns the indexed hashes, in no particular order.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sizes))
	for h := range s.sizes {
		out = append(out, h)
	}
	return out
}

// Has reports whether hash is indexed (without reading the file).
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[hash]
	return ok
}

// path returns the final file name of one hash.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".res")
}

// Put durably stores one entry: encode with a CRC header, write to a
// temp file in the store directory, fsync, rename over the final
// name, and fsync the directory, so either the complete entry is
// visible under its final name or nothing is. Re-putting an existing
// hash is a no-op (entries are immutable — same hash, same bytes).
func (s *Store) Put(hash string, e Entry) error {
	s.mu.Lock()
	if _, ok := s.sizes[hash]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.putPayload(hash, encode(s.version, e))
}

// putPayload runs the durable write protocol on already-encoded
// bytes, threading the write/sync fault seams, and indexes the entry
// on success. Both Put and AdoptRaw land here, so an adopted peer
// entry is byte-identical to one written locally.
func (s *Store) putPayload(hash string, payload []byte) error {
	switch s.faults.StoreWrite("result") {
	case fault.StoreErr:
		return fmt.Errorf("store: write %s: %w", short(hash), fault.ErrInjected)
	case fault.StoreTorn:
		// Simulate the crash window the atomic protocol exists to
		// mask: a torn file appears under the final name. The write
		// "succeeds" — only a later read or restart scan discovers
		// the damage and quarantines it.
		torn := payload[:s.faults.TornLen(len(payload))]
		if err := os.WriteFile(s.path(hash), torn, 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.mu.Lock()
		s.sizes[hash] = int64(len(torn))
		s.bytes += int64(len(torn))
		s.mu.Unlock()
		return nil
	}

	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(payload); err != nil {
		cleanup()
		return fmt.Errorf("store: write %s: %w", short(hash), err)
	}
	if s.faults.StoreSync("result") {
		cleanup()
		return fmt.Errorf("store: fsync %s: %w", short(hash), fault.ErrInjected)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: fsync %s: %w", short(hash), err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", short(hash), err)
	}
	if err := os.Rename(tmp, s.path(hash)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %s: %w", short(hash), err)
	}
	syncDir(s.dir)

	s.mu.Lock()
	s.sizes[hash] = int64(len(payload))
	s.bytes += int64(len(payload))
	s.mu.Unlock()
	return nil
}

// Get reads and validates one entry. A missing hash returns
// (zero, false, nil). A file that fails validation is quarantined,
// dropped from the index, and reported as ErrCorrupt — the caller
// treats it as a miss and re-executes.
func (s *Store) Get(hash string) (Entry, bool, error) {
	s.mu.Lock()
	_, ok := s.sizes[hash]
	s.mu.Unlock()
	if !ok {
		return Entry{}, false, nil
	}
	path := s.path(hash)
	b, err := os.ReadFile(path)
	if err != nil {
		s.drop(hash, path)
		return Entry{}, false, fmt.Errorf("store: read %s: %w", short(hash), err)
	}
	e, ver, err := decode(b)
	if err != nil || ver != s.version {
		s.drop(hash, path)
		if err == nil {
			err = fmt.Errorf("%w: engine version changed", ErrCorrupt)
		}
		return Entry{}, false, err
	}
	return e, true, nil
}

// Raw returns the exact on-disk bytes of one entry — CRC header and
// all — for serving to a peer store. The bytes are validated first;
// like Get, a file that fails validation is quarantined, dropped, and
// reported as ErrCorrupt so corruption never crosses the wire as a
// hit.
func (s *Store) Raw(hash string) ([]byte, bool, error) {
	s.mu.Lock()
	_, ok := s.sizes[hash]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	path := s.path(hash)
	b, err := os.ReadFile(path)
	if err != nil {
		s.drop(hash, path)
		return nil, false, fmt.Errorf("store: read %s: %w", short(hash), err)
	}
	_, ver, err := decode(b)
	if err != nil || ver != s.version {
		s.drop(hash, path)
		if err == nil {
			err = fmt.Errorf("%w: engine version changed", ErrCorrupt)
		}
		return nil, false, err
	}
	return b, true, nil
}

// AdoptRaw validates a peer store's encoded entry and, if it checks
// out, durably stores it byte-identically under hash. Validation
// happens before any write: a corrupt or torn payload is preserved
// under quarantine/ for post-mortems and reported as ErrCorrupt —
// never indexed, never served — and a payload from a different engine
// version is rejected outright (the peer is healthy, just
// incompatible; nothing to quarantine). Adopting an already-present
// hash is a no-op that returns the entry already held — like a
// re-Put, the incoming bytes are ignored. On success the decoded
// entry is returned so the caller can serve it without a second disk
// read.
func (s *Store) AdoptRaw(hash string, payload []byte) (Entry, error) {
	if held, ok, err := s.Get(hash); err == nil && ok {
		return held, nil
	}
	e, ver, err := decode(payload)
	if err != nil {
		s.quarantineBytes(hash, payload)
		return Entry{}, fmt.Errorf("store: adopt %s: %w", short(hash), err)
	}
	if ver != s.version {
		return Entry{}, fmt.Errorf("store: adopt %s: engine version mismatch (%q != %q)", short(hash), ver, s.version)
	}
	if err := s.putPayload(hash, payload); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// drop quarantines a bad file and removes it from the index.
func (s *Store) drop(hash, path string) {
	s.quarantine(path)
	s.mu.Lock()
	if n, ok := s.sizes[hash]; ok {
		s.bytes -= n
		delete(s.sizes, hash)
	}
	s.report.Quarantined++
	s.mu.Unlock()
}

// quarantine moves a file under quarantine/ (best-effort: on any
// error it falls back to removal so the bad file can never be
// re-scanned as live).
func (s *Store) quarantine(path string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(path)
		return
	}
	if err := os.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		os.Remove(path)
	}
}

// quarantineBytes preserves a never-written payload (e.g. a corrupt
// entry received from a peer) under quarantine/ for post-mortems,
// without it ever appearing in the live directory. Best-effort, like
// quarantine.
func (s *Store) quarantineBytes(hash string, payload []byte) {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	os.WriteFile(filepath.Join(qdir, hash+".res"), payload, 0o644)
	s.mu.Lock()
	s.report.Quarantined++
	s.mu.Unlock()
}

// short abbreviates a hash for error strings.
func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// syncDir fsyncs a directory so a completed rename is durable;
// best-effort on platforms where directories cannot be opened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// EncodeEntry renders one entry in the store's on-disk format under
// the given engine-version string. The server uses it to serve a
// memory-cached entry to a peer in the same framing a disk-backed
// store would, so adopters validate every payload the same way.
func EncodeEntry(version string, e Entry) []byte { return encode(version, e) }

// DecodeEntry parses and validates store-format bytes, returning the
// entry and the engine-version string they were written under.
// Corruption — bad magic, checksum mismatch, truncation — reports
// ErrCorrupt.
func DecodeEntry(b []byte) (Entry, string, error) { return decode(b) }

// encode renders one entry:
//
//	magic   4B "ACR1"
//	crc32   4B LE, IEEE, over everything after this field
//	verLen  4B LE   |
//	metaLen 4B LE   | section lengths
//	resLen  4B LE   |
//	version, meta, result bytes
func encode(version string, e Entry) []byte {
	n := 4 + 4 + 12 + len(version) + len(e.Meta) + len(e.Result)
	b := make([]byte, 0, n)
	b = append(b, magic...)
	b = append(b, 0, 0, 0, 0) // crc placeholder
	b = binary.LittleEndian.AppendUint32(b, uint32(len(version)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Meta)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Result)))
	b = append(b, version...)
	b = append(b, e.Meta...)
	b = append(b, e.Result...)
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(b[8:]))
	return b
}

// decode parses and validates one entry file, returning the entry
// and the engine-version string it was written under.
func decode(b []byte) (Entry, string, error) {
	if len(b) < 20 || string(b[:4]) != string(magic) {
		return Entry{}, "", fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(b[8:]) != binary.LittleEndian.Uint32(b[4:8]) {
		return Entry{}, "", fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	verLen := int(binary.LittleEndian.Uint32(b[8:12]))
	metaLen := int(binary.LittleEndian.Uint32(b[12:16]))
	resLen := int(binary.LittleEndian.Uint32(b[16:20]))
	body := b[20:]
	if len(body) != verLen+metaLen+resLen {
		return Entry{}, "", fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	ver := string(body[:verLen])
	meta := append([]byte(nil), body[verLen:verLen+metaLen]...)
	res := append([]byte(nil), body[verLen+metaLen:]...)
	return Entry{Result: res, Meta: meta}, ver, nil
}
