package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acedo/internal/fault"
)

const testVersion = "acelabd/test 1"

func openTest(t *testing.T, dir string, faults *fault.Service) *Store {
	t.Helper()
	s, err := Open(dir, testVersion, faults)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	e := Entry{Result: []byte(`{"x":1}` + "\n"), Meta: []byte(`[{"benchmark":"compress"}]`)}
	if err := s.Put("aa11", e); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get("aa11")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Result, e.Result) || !bytes.Equal(got.Meta, e.Meta) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
	if _, ok, _ := s.Get("nope"); ok {
		t.Fatal("Get of unknown hash reported a hit")
	}
	if n, b := s.Stats(); n != 1 || b <= 0 {
		t.Fatalf("Stats = (%d, %d), want one entry with positive bytes", n, b)
	}
	// Re-putting the same hash is a no-op, not an error.
	if err := s.Put("aa11", Entry{Result: []byte("other")}); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	got, _, _ = s.Get("aa11")
	if !bytes.Equal(got.Result, e.Result) {
		t.Fatal("re-Put overwrote an immutable entry")
	}
}

func TestScanRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	e := Entry{Result: []byte("result-bytes"), Meta: []byte("meta")}
	if err := s.Put("cafe01", e); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same directory must index the
	// entry and serve byte-identical content.
	s2 := openTest(t, dir, nil)
	if rep := s2.Scan(); rep.Recovered != 1 || rep.Quarantined != 0 {
		t.Fatalf("scan report = %+v, want 1 recovered", rep)
	}
	got, ok, err := s2.Get("cafe01")
	if err != nil || !ok || !bytes.Equal(got.Result, e.Result) {
		t.Fatalf("recovered entry mismatch: ok=%v err=%v", ok, err)
	}
}

func TestScanQuarantinesCorruptAndTorn(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Put("aaaa", Entry{Result: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bbbb", Entry{Result: []byte("to-be-flipped")}); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of bbbb (CRC mismatch) and plant a torn
	// file and junk that is not ours.
	path := filepath.Join(dir, "bbbb.res")
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)
	full, _ := os.ReadFile(filepath.Join(dir, "aaaa.res"))
	os.WriteFile(filepath.Join(dir, "cccc.res"), full[:len(full)/2], 0o644)
	os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("leftover"), 0o644)
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignored"), 0o644)

	s2 := openTest(t, dir, nil)
	rep := s2.Scan()
	if rep.Recovered != 1 || rep.Quarantined != 2 {
		t.Fatalf("scan report = %+v, want 1 recovered / 2 quarantined", rep)
	}
	if _, ok, _ := s2.Get("bbbb"); ok {
		t.Fatal("corrupt entry served after restart")
	}
	if got, ok, err := s2.Get("aaaa"); err != nil || !ok || string(got.Result) != "good" {
		t.Fatalf("good entry lost: ok=%v err=%v", ok, err)
	}
	// Quarantined files moved, not deleted; the temp file is gone.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "bbbb.res")); err != nil {
		t.Errorf("corrupt file not in quarantine: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-123")); !os.IsNotExist(err) {
		t.Errorf("crash-leftover temp file survived the scan")
	}
}

func TestStaleEngineVersionSkipped(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, "acelabd/OLD", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Put("dead", Entry{Result: []byte("old-bytes")}); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, nil)
	rep := s.Scan()
	if rep.Stale != 1 || rep.Recovered != 0 || rep.Quarantined != 0 {
		t.Fatalf("scan report = %+v, want 1 stale", rep)
	}
	if s.Has("dead") {
		t.Fatal("stale-version entry indexed")
	}
	// The file stays on disk for the old version to find again.
	if _, err := os.Stat(filepath.Join(dir, "dead.res")); err != nil {
		t.Errorf("stale file removed: %v", err)
	}
}

func TestGetQuarantinesRuntimeCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	if err := s.Put("feed", Entry{Result: []byte("fine")}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "feed.res")
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-3], 0o644)

	_, ok, err := s.Get("feed")
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of corrupted entry = ok=%v err=%v, want ErrCorrupt", ok, err)
	}
	if s.Has("feed") {
		t.Fatal("corrupt entry still indexed after Get")
	}
	if n, bts := s.Stats(); n != 0 || bts != 0 {
		t.Fatalf("Stats after quarantine = (%d, %d), want zero", n, bts)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "feed.res")); err != nil {
		t.Errorf("runtime-corrupt file not quarantined: %v", err)
	}
}

func TestInjectedWriteFaults(t *testing.T) {
	svc, err := fault.NewService(&fault.Plan{Rules: []fault.Rule{
		// The error rule absorbs the first write; the torn rule's
		// first eligible hit is therefore the second write (an error
		// fire returns before the torn rule is consulted).
		{Point: fault.PointStoreWrite, Kind: fault.KindError, Unit: "result", Count: 1},
		{Point: fault.PointStoreWrite, Kind: fault.KindTorn, Unit: "result", Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s := openTest(t, dir, svc)

	if err := s.Put("e1", Entry{Result: []byte("x")}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first Put err = %v, want injected", err)
	}
	// Second Put is torn: it "succeeds", but the next read discovers
	// the damage, quarantines, and reports corruption.
	if err := s.Put("t1", Entry{Result: []byte("will-be-torn-on-disk")}); err != nil {
		t.Fatalf("torn Put surfaced an error: %v", err)
	}
	if _, ok, err := s.Get("t1"); ok || err == nil {
		t.Fatalf("torn entry served: ok=%v err=%v", ok, err)
	}
	// Third Put is clean.
	if err := s.Put("ok1", Entry{Result: []byte("clean")}); err != nil {
		t.Fatalf("post-fault Put: %v", err)
	}
	if got, ok, err := s.Get("ok1"); err != nil || !ok || string(got.Result) != "clean" {
		t.Fatalf("clean entry lost: ok=%v err=%v", ok, err)
	}
	if n := svc.Fired(fault.PointStoreWrite, fault.KindTorn); n != 1 {
		t.Fatalf("torn fires = %d, want 1", n)
	}
}

func TestJournalReplayAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, pending, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(pending))
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Accept("h1", []byte(`{"scale":10}`)))
	must(j.Accept("h2", []byte(`{"scale":20}`)))
	must(j.Accept("h2", []byte(`{"scale":20}`))) // duplicate submission
	must(j.Done("h1"))
	must(j.Accept("h3", []byte(`{"scale":30}`)))
	must(j.Close())

	j2, pending, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 2 || pending[0].Hash != "h2" || pending[1].Hash != "h3" {
		t.Fatalf("pending = %+v, want h2,h3 in order", pending)
	}
	if string(pending[0].Spec) != `{"scale":20}` {
		t.Fatalf("pending spec = %s", pending[0].Spec)
	}
	// Compaction rewrote the file down to the two pending accepts.
	b, _ := os.ReadFile(path)
	if n := bytes.Count(b, []byte("\n")); n != 2 {
		t.Fatalf("compacted journal has %d lines, want 2\n%s", n, b)
	}
	if bytes.Contains(b, []byte("h1")) {
		t.Fatal("done job survived compaction")
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("good", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A crash mid-append leaves a torn final line.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`deadbeef {"op":"accept","hash":"torn`)
	f.Close()

	j2, pending, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].Hash != "good" {
		t.Fatalf("pending = %+v, want only the intact record", pending)
	}
	// Compaction discarded the torn bytes for good.
	b, _ := os.ReadFile(path)
	if strings.Contains(string(b), "torn") {
		t.Fatalf("torn record survived compaction:\n%s", b)
	}
}

func TestJournalCorruptLineStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Accept("a", []byte(`{}`)))
	must(j.Accept("b", []byte(`{}`)))
	j.Close()

	// Corrupt the second line's JSON without touching its CRC.
	b, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(b, []byte("\n"))
	lines[1][len(lines[1])-5] ^= 0x01
	os.WriteFile(path, bytes.Join(lines, nil), 0o644)

	_, pending, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Hash != "a" {
		t.Fatalf("pending = %+v, want replay to stop before the corrupt line", pending)
	}
}

func TestJournalInjectedFaults(t *testing.T) {
	svc, err := fault.NewService(&fault.Plan{Rules: []fault.Rule{
		// Error absorbs append 1; torn sees appends 2,3 and skips its
		// first eligible hit (After: 1), tearing append 3.
		{Point: fault.PointStoreWrite, Kind: fault.KindError, Unit: "journal", Count: 1},
		{Point: fault.PointStoreWrite, Kind: fault.KindTorn, Unit: "journal", After: 1, Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal")
	j, _, err := OpenJournal(path, svc)
	if err != nil {
		t.Fatal(err)
	}
	// First append fails — the daemon must not have acknowledged.
	if err := j.Accept("h1", []byte(`{}`)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Accept err = %v, want injected", err)
	}
	// Second is clean, third is torn (reports success, tears on disk).
	if err := j.Accept("h2", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("h3", []byte(`{}`)); err != nil {
		t.Fatalf("torn Accept surfaced an error: %v", err)
	}
	j.Close()

	_, pending, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Hash != "h2" {
		t.Fatalf("pending = %+v, want only the intact accept", pending)
	}
}

// TestAdoptRaw covers the peering ingest path: a valid encoded entry
// from a peer lands byte-identically via the same durable protocol as
// Put, corrupt bytes are quarantined (never indexed, never served),
// and an engine-version skew is rejected without quarantine — skew is
// a deploy state, not damage.
func TestAdoptRaw(t *testing.T) {
	src := openTest(t, t.TempDir(), nil)
	e := Entry{Result: []byte(`{"y":2}` + "\n"), Meta: []byte(`[{"benchmark":"hash"}]`)}
	if err := src.Put("bb22", e); err != nil {
		t.Fatal(err)
	}
	raw, ok, err := src.Raw("bb22")
	if err != nil || !ok {
		t.Fatalf("Raw: ok=%v err=%v", ok, err)
	}

	dir := t.TempDir()
	dst := openTest(t, dir, nil)
	got, err := dst.AdoptRaw("bb22", raw)
	if err != nil {
		t.Fatalf("AdoptRaw: %v", err)
	}
	if !bytes.Equal(got.Result, e.Result) || !bytes.Equal(got.Meta, e.Meta) {
		t.Fatalf("adopted entry mismatch: %+v vs %+v", got, e)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "bb22"+".res"))
	if err != nil {
		t.Fatalf("adopted file: %v", err)
	}
	if !bytes.Equal(onDisk, raw) {
		t.Fatal("adopted file is not byte-identical to the peer's encoding")
	}
	// Adopting an already-held hash is a no-op returning the entry.
	if again, err := dst.AdoptRaw("bb22", []byte("different")); err != nil || !bytes.Equal(again.Result, e.Result) {
		t.Fatalf("re-adopt = (%+v, %v), want existing entry", again, err)
	}

	// Corrupt payload: quarantined under the hash, error, never indexed.
	if _, err := dst.AdoptRaw("cc33", []byte("ACR1 garbage")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt adopt error = %v, want ErrCorrupt", err)
	}
	if _, ok, _ := dst.Get("cc33"); ok {
		t.Fatal("corrupt adoption was indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "cc33"+".res")); err != nil {
		t.Fatalf("corrupt adoption not quarantined: %v", err)
	}

	// Version skew: rejected, but not quarantined — the bytes are fine.
	skew := EncodeEntry("acelabd/other 9", e)
	if _, err := dst.AdoptRaw("dd44", skew); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("version-skew adopt error = %v, want a plain rejection", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "dd44"+".res")); err == nil {
		t.Fatal("version-skewed entry was quarantined")
	}
}
