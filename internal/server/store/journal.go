package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"acedo/internal/fault"
)

// Journal is the daemon's write-ahead job log: an append-only text
// file recording every accepted job before it is acknowledged and
// every completion after it finalises, so that a restart can requeue
// exactly the submissions that were accepted but never finished.
//
// Each line is one record framed as
//
//	<crc32 hex, 8 chars> <JSON>\n
//
// with the CRC computed over the JSON bytes. A crash can tear only
// the final line (the file is append-only); replay stops at the first
// line that fails framing or CRC, so a torn tail costs at most the
// record being written at the moment of death — which is exactly the
// record whose acknowledgement the client never saw.
//
// Accept records are fsynced before returning: an acknowledged job is
// durable. Done records are appended without fsync — losing one is
// harmless, because replaying a finished job finds its result in the
// store and completes as a cache hit without re-simulating.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	faults *fault.Service
}

// Pending is one journaled-but-unfinished job surfaced by replay.
type Pending struct {
	// Hash is the job's content address (SpecHash).
	Hash string `json:"hash"`
	// Spec is the normalised spec's canonical JSON.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// record is the journal's line payload.
type record struct {
	// Op is "accept" or "done".
	Op   string          `json:"op"`
	Hash string          `json:"hash"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// OpenJournal replays the journal at path (creating it if absent),
// compacts it down to its pending records, and returns the journal
// open for appending plus the pending jobs in acceptance order,
// deduplicated by hash. faults may be nil.
func OpenJournal(path string, faults *fault.Service) (*Journal, []Pending, error) {
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	pending := replay(b)

	// Compact: rewrite only the pending accepts, atomically, so the
	// journal never grows without bound and a torn tail from the
	// previous life is discarded for good.
	var buf bytes.Buffer
	for _, p := range pending {
		line, err := frame(record{Op: opAccept, Hash: p.Hash, Spec: p.Spec})
		if err != nil {
			return nil, nil, err
		}
		buf.Write(line)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-journal-*")
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("journal: compact: %w", err)
	}
	syncDir(dir)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path, faults: faults}, pending, nil
}

// Journal record operations.
const (
	opAccept = "accept"
	opDone   = "done"
)

// replay walks the journal bytes and returns the accepted-but-not-
// done set in acceptance order, deduplicated by hash. It stops at the
// first torn or corrupt line.
func replay(b []byte) []Pending {
	specs := make(map[string]json.RawMessage)
	var order []string
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			break // torn tail: no newline ever made it to disk
		}
		line := b[:nl]
		b = b[nl+1:]
		rec, ok := parse(line)
		if !ok {
			break // corrupt line: everything after it is suspect
		}
		switch rec.Op {
		case opAccept:
			if _, dup := specs[rec.Hash]; !dup {
				order = append(order, rec.Hash)
			}
			specs[rec.Hash] = rec.Spec
		case opDone:
			if _, ok := specs[rec.Hash]; ok {
				delete(specs, rec.Hash)
			}
		}
	}
	var out []Pending
	emitted := make(map[string]bool)
	for _, h := range order {
		if emitted[h] {
			continue // re-accepted after a done: one requeue is enough
		}
		if spec, ok := specs[h]; ok {
			emitted[h] = true
			out = append(out, Pending{Hash: h, Spec: spec})
		}
	}
	return out
}

// frame renders one record as a CRC-framed journal line.
func frame(rec record) ([]byte, error) {
	j, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	line := make([]byte, 0, 8+1+len(j)+1)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(j))
	line = append(line, j...)
	line = append(line, '\n')
	return line, nil
}

// parse validates one framed line.
func parse(line []byte) (record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return record{}, false
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return record{}, false
	}
	j := line[9:]
	if crc32.ChecksumIEEE(j) != crc {
		return record{}, false
	}
	var rec record
	if err := json.Unmarshal(j, &rec); err != nil {
		return record{}, false
	}
	return rec, true
}

// append writes one framed record, optionally fsyncing, under the
// journal's fault seams ("journal" op).
func (j *Journal) append(rec record, sync bool) error {
	line, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.faults.StoreWrite("journal") {
	case fault.StoreErr:
		return fmt.Errorf("journal: append: %w", fault.ErrInjected)
	case fault.StoreTorn:
		// A torn append reaches the disk as a prefix with no
		// newline; replay discards it. The write itself reports
		// success, as a crash after a buffered write would.
		j.f.Write(line[:j.faults.TornLen(len(line))])
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if sync {
		if j.faults.StoreSync("journal") {
			return fmt.Errorf("journal: fsync: %w", fault.ErrInjected)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Accept durably records one accepted job (hash plus its normalised
// spec JSON) and fsyncs before returning; the daemon must not
// acknowledge the submission unless Accept succeeds.
func (j *Journal) Accept(hash string, spec []byte) error {
	return j.append(record{Op: opAccept, Hash: hash, Spec: spec}, true)
}

// Done records one finished job (any terminal state). It does not
// fsync: a lost done record merely makes the restart replay find the
// job's result already in the store and finish it as a cache hit.
func (j *Journal) Done(hash string) error {
	return j.append(record{Op: opDone, Hash: hash}, false)
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
