package server

import "sync"

// resultCache is the in-memory tier of the content-addressed result
// store: finished job results keyed by SpecHash. Entries are
// immutable once stored, so a hit returns the exact bytes the first
// execution produced — byte-identical responses for byte-identical
// work.
//
// Retention has two modes, chosen by whether a disk tier backs the
// cache:
//
//   - Memory-only (no -data-dir): first-come within the byte budget,
//     no eviction — what was cached stays cached, keeping repeated
//     submissions deterministic for the daemon's lifetime.
//   - Disk-backed: the memory tier is a true LRU. Every entry also
//     lives in the durable store, so evicting from memory loses no
//     determinism — an evicted hash re-loads from disk with the same
//     bytes — and the budget bounds resident memory under pressure.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	size    int64
	entries map[string]*cacheEntry
	// evict enables LRU eviction (set iff a disk tier backs the
	// cache); order tracks recency, least recent first.
	evict bool
	order []string

	hits, misses, evictions uint64
}

// cacheEntry is one cached result: the serialized result document and
// the per-run metadata of the execution that produced it.
type cacheEntry struct {
	result []byte
	runs   []RunMeta
}

// newResultCache returns an empty cache bounded to budget bytes;
// evict selects the disk-backed LRU mode.
func newResultCache(budget int64, evict bool) *resultCache {
	return &resultCache{budget: budget, evict: evict, entries: make(map[string]*cacheEntry)}
}

// get returns the entry for hash, counting the hit or miss and, in
// LRU mode, refreshing the entry's recency.
func (c *resultCache) get(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[hash]
	if e != nil {
		c.hits++
		c.touch(hash)
	} else {
		c.misses++
	}
	return e
}

// peek returns the entry for hash without counting a hit or miss and
// without touching LRU recency. Peer-store serving uses it: another
// node probing this node's cache must not perturb the local hit/miss
// counters or retention order.
func (c *resultCache) peek(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[hash]
}

// touch moves hash to the most-recent end of the LRU order.
func (c *resultCache) touch(hash string) {
	if !c.evict {
		return
	}
	for i, h := range c.order {
		if h == hash {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), hash)
			return
		}
	}
}

// runMetaBytes approximates one retained RunMeta's memory cost: the
// struct itself (three string headers plus two 8-byte scalars on a
// 64-bit platform) and the bytes its strings pin.
const runMetaBytes = 64

// entrySize is the entry's accounted footprint: the result document
// plus its per-run metadata. The metadata matters — a full-suite job
// with run metadata retains hundreds of RunMeta values per entry, and
// budgeting only the result bytes lets the cache grow well past its
// configured bound.
func entrySize(e *cacheEntry) int64 {
	n := int64(len(e.result))
	for _, r := range e.runs {
		n += runMetaBytes + int64(len(r.Benchmark)+len(r.Scheme)+len(r.Disposition))
	}
	return n
}

// put stores a finished result unless the hash is already present.
// Memory-only mode refuses entries that would exceed the budget
// (first-come retention); LRU mode instead evicts least-recently-used
// entries until the new one fits, and only refuses entries larger
// than the whole budget.
func (c *resultCache) put(hash string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[hash]; ok {
		return
	}
	n := entrySize(e)
	if !c.evict {
		if c.size+n > c.budget {
			return
		}
		c.entries[hash] = e
		c.size += n
		return
	}
	if n > c.budget {
		return // never resident; the disk tier still serves it
	}
	for c.size+n > c.budget && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		if oe, ok := c.entries[old]; ok {
			c.size -= entrySize(oe)
			delete(c.entries, old)
			c.evictions++
		}
	}
	c.entries[hash] = e
	c.size += n
	c.order = append(c.order, hash)
}

// stats returns the cache's counters for /metrics.
func (c *resultCache) stats() (hits, misses, evictions uint64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, len(c.entries), c.size
}
