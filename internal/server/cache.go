package server

import "sync"

// resultCache is the content-addressed result store: finished job
// results keyed by SpecHash. Entries are immutable once stored, so a
// hit returns the exact bytes the first execution produced —
// byte-identical responses for byte-identical work. Retention is
// first-come within a byte budget (no eviction), mirroring the
// process-wide rtrace cache: what was cached stays cached, keeping
// repeated submissions deterministic for the daemon's lifetime.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	size    int64
	entries map[string]*cacheEntry

	hits, misses uint64
}

// cacheEntry is one cached result: the serialized result document and
// the per-run metadata of the execution that produced it.
type cacheEntry struct {
	result []byte
	runs   []RunMeta
}

// newResultCache returns an empty cache bounded to budget bytes.
func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, entries: make(map[string]*cacheEntry)}
}

// get returns the entry for hash, counting the hit or miss.
func (c *resultCache) get(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[hash]
	if e != nil {
		c.hits++
	} else {
		c.misses++
	}
	return e
}

// put stores a finished result unless the hash is already present or
// the budget is exhausted.
func (c *resultCache) put(hash string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[hash]; ok {
		return
	}
	if c.size+int64(len(e.result)) > c.budget {
		return
	}
	c.entries[hash] = e
	c.size += int64(len(e.result))
}

// stats returns the cache's counters for /metrics.
func (c *resultCache) stats() (hits, misses uint64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries), c.size
}
