package server

import "sync"

// resultCache is the content-addressed result store: finished job
// results keyed by SpecHash. Entries are immutable once stored, so a
// hit returns the exact bytes the first execution produced —
// byte-identical responses for byte-identical work. Retention is
// first-come within a byte budget (no eviction), mirroring the
// process-wide rtrace cache: what was cached stays cached, keeping
// repeated submissions deterministic for the daemon's lifetime.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	size    int64
	entries map[string]*cacheEntry

	hits, misses uint64
}

// cacheEntry is one cached result: the serialized result document and
// the per-run metadata of the execution that produced it.
type cacheEntry struct {
	result []byte
	runs   []RunMeta
}

// newResultCache returns an empty cache bounded to budget bytes.
func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, entries: make(map[string]*cacheEntry)}
}

// get returns the entry for hash, counting the hit or miss.
func (c *resultCache) get(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[hash]
	if e != nil {
		c.hits++
	} else {
		c.misses++
	}
	return e
}

// runMetaBytes approximates one retained RunMeta's memory cost: the
// struct itself (three string headers plus two 8-byte scalars on a
// 64-bit platform) and the bytes its strings pin.
const runMetaBytes = 64

// entrySize is the entry's accounted footprint: the result document
// plus its per-run metadata. The metadata matters — a full-suite job
// with run metadata retains hundreds of RunMeta values per entry, and
// budgeting only the result bytes lets the cache grow well past its
// configured bound.
func entrySize(e *cacheEntry) int64 {
	n := int64(len(e.result))
	for _, r := range e.runs {
		n += runMetaBytes + int64(len(r.Benchmark)+len(r.Scheme)+len(r.Disposition))
	}
	return n
}

// put stores a finished result unless the hash is already present or
// the entry's full footprint (result bytes plus run metadata) would
// exceed the budget.
func (c *resultCache) put(hash string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[hash]; ok {
		return
	}
	n := entrySize(e)
	if c.size+n > c.budget {
		return
	}
	c.entries[hash] = e
	c.size += n
}

// stats returns the cache's counters for /metrics.
func (c *resultCache) stats() (hits, misses uint64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries), c.size
}
