package server

import (
	"sync"
	"time"
)

// wallBucketsMS are the per-benchmark wall-time histogram bounds in
// milliseconds (a run lands in the first bucket whose bound it does
// not exceed; the implicit last bucket is unbounded). Log-spaced from
// 1 ms to 60 s — replayed runs cluster at the low end, paper-scale
// direct runs at the high end.
var wallBucketsMS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000}

// Histogram is one wall-time distribution in /metrics: Counts[i] is
// the number of observations not exceeding BoundsMS[i], with one extra
// overflow bucket at the end, plus the observation count and sum.
type Histogram struct {
	BoundsMS []float64 `json:"bounds_ms"`
	Counts   []uint64  `json:"counts"`
	Count    uint64    `json:"count"`
	SumMS    float64   `json:"sum_ms"`
}

// observe records one duration.
func (h *Histogram) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1e3
	i := 0
	for i < len(h.BoundsMS) && ms > h.BoundsMS[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.SumMS += ms
}

// Metrics is the /metrics document: queue and worker state, job and
// cache counters, total simulated instructions, and per-benchmark
// wall-time histograms. It is a point-in-time snapshot — the server
// assembles one per request.
type Metrics struct {
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`
	Workers       int  `json:"workers"`
	BusyWorkers   int  `json:"busy_workers"`
	Draining      bool `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCanceled  uint64 `json:"jobs_canceled"`
	JobsCached    uint64 `json:"jobs_cached"`

	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	CacheBytes   int64  `json:"cache_bytes"`
	// CacheEvictions counts memory-tier evictions; always 0 without a
	// data dir, where the cache never evicts.
	CacheEvictions uint64 `json:"cache_evictions"`

	// StoreEntries/StoreBytes gauge the durable result store's indexed
	// entries and their on-disk footprint; StoreHits counts lookups the
	// memory tier missed but the disk tier answered; JournalReplayed
	// counts jobs this boot requeued from the journal. All stay 0 (and
	// the store gauges absent) without a data dir.
	StoreEntries    int    `json:"store_entries,omitempty"`
	StoreBytes      int64  `json:"store_bytes,omitempty"`
	StoreHits       uint64 `json:"store_hits,omitempty"`
	JournalReplayed uint64 `json:"journal_replayed,omitempty"`

	// TraceFormat is the daemon's configured recorder format ("summary"
	// or "bytes"); the trace-cache gauges mirror the experiment layer's
	// process-wide record-once cache (experiment.CurrentTraceCacheStats):
	// resident entries and their memory charge, split by how many were
	// direct-built at record time versus decoded from byte streams. All
	// zero gauges are elided (schema-additive).
	TraceFormat          string `json:"trace_format,omitempty"`
	TraceCacheEntries    int    `json:"trace_cache_entries,omitempty"`
	TraceCacheBytes      int    `json:"trace_cache_bytes,omitempty"`
	TraceCacheDirect     uint64 `json:"trace_cache_direct,omitempty"`
	TraceCacheSummarized uint64 `json:"trace_cache_summarized,omitempty"`

	// Cluster gauges, present only when the daemon runs with -peers
	// (single-node /metrics stays byte-identical). ClusterNode is this
	// node's ring identity, ClusterSize the member count, and
	// ClusterOwnedPct the percentage of the hash space this node owns.
	// JobsForwarded counts submissions this node routed to their
	// hash-owner; JobsForwardReceived counts forwarded submissions that
	// landed here; ForwardFailures counts forwards that exhausted their
	// retries and degraded to local execution. PeerStoreHits counts
	// results adopted byte-identically from the owner's store before
	// executing; PeerStoreMisses counts adoption attempts that came back
	// empty (or unreachable) and fell through to execution.
	ClusterNode         string  `json:"cluster_node,omitempty"`
	ClusterSize         int     `json:"cluster_size,omitempty"`
	ClusterOwnedPct     float64 `json:"cluster_owned_pct,omitempty"`
	JobsForwarded       uint64  `json:"jobs_forwarded,omitempty"`
	JobsForwardReceived uint64  `json:"jobs_forward_received,omitempty"`
	ForwardFailures     uint64  `json:"forward_failures,omitempty"`
	PeerStoreHits       uint64  `json:"peer_store_hits,omitempty"`
	PeerStoreMisses     uint64  `json:"peer_store_misses,omitempty"`

	// InstrSimulated totals the retired instructions of every executed
	// run (cache hits add nothing — the cache-determinism tests key on
	// this staying put across repeated submissions).
	InstrSimulated uint64 `json:"instr_simulated"`

	// BenchWallMS histograms executed runs' wall times per benchmark.
	BenchWallMS map[string]*Histogram `json:"bench_wall_ms"`

	// OptimizeBest reports each benchmark's best-so-far from its most
	// recent configuration search, updated live while optimize jobs run
	// (absent until the first optimize job; schema-additive).
	OptimizeBest map[string]*OptimizeStatus `json:"optimize_best,omitempty"`
}

// OptimizeStatus is one benchmark's search progress in /metrics: the
// objective being minimised, the best value found so far, how many
// distinct candidates have been evaluated, and the best genome.
type OptimizeStatus struct {
	Objective string  `json:"objective"`
	Best      float64 `json:"best"`
	Evaluated uint64  `json:"evaluated"`
	Config    []int   `json:"config,omitempty"`
}

// metrics is the server's mutable counter state behind Metrics.
type metrics struct {
	mu sync.Mutex

	busy      int
	submitted uint64
	completed uint64
	failed    uint64
	canceled  uint64
	cached    uint64
	instr     uint64
	storeHits uint64

	forwarded       uint64
	forwardReceived uint64
	forwardFailures uint64
	peerHits        uint64
	peerMisses      uint64

	benchWall    map[string]*Histogram
	optimizeBest map[string]*OptimizeStatus

	// jobEWMA is the exponentially weighted moving average of executed
	// job wall time in nanoseconds, feeding the Retry-After estimate.
	// Kept as float64: integer division truncates the per-update delta
	// toward zero, so a time.Duration average moves by 0 whenever the
	// delta is under alpha nanoseconds and the estimate sticks at
	// whatever the early jobs set it to.
	jobEWMA float64
}

func newMetrics() *metrics {
	return &metrics{benchWall: make(map[string]*Histogram)}
}

// workerBusy adjusts the busy-worker gauge by delta.
func (m *metrics) workerBusy(delta int) {
	m.mu.Lock()
	m.busy += delta
	m.mu.Unlock()
}

// storeHit counts one lookup served by the disk tier.
func (m *metrics) storeHit() {
	m.mu.Lock()
	m.storeHits++
	m.mu.Unlock()
}

// forwardOut counts one submission routed to its hash-owner.
func (m *metrics) forwardOut() {
	m.mu.Lock()
	m.forwarded++
	m.mu.Unlock()
}

// forwardIn counts one forwarded submission landing on this node.
func (m *metrics) forwardIn() {
	m.mu.Lock()
	m.forwardReceived++
	m.mu.Unlock()
}

// forwardFailed counts one forward that exhausted its retries and
// degraded to local execution.
func (m *metrics) forwardFailed() {
	m.mu.Lock()
	m.forwardFailures++
	m.mu.Unlock()
}

// peerStore counts one peer-store adoption attempt's outcome.
func (m *metrics) peerStore(hit bool) {
	m.mu.Lock()
	if hit {
		m.peerHits++
	} else {
		m.peerMisses++
	}
	m.mu.Unlock()
}

// jobSubmitted counts one accepted submission (cached hits included).
func (m *metrics) jobSubmitted(cached bool) {
	m.mu.Lock()
	m.submitted++
	if cached {
		m.cached++
	}
	m.mu.Unlock()
}

// jobAdopted records one job finished by adopting the hash-owner's
// stored result: completed and served from cache, with no wall-time
// observation, no EWMA update, and — the cluster's cache-determinism
// contract — no instruction accounting, because nothing executed.
func (m *metrics) jobAdopted() {
	m.mu.Lock()
	m.completed++
	m.cached++
	m.mu.Unlock()
}

// jobFinished records one executed job's outcome, its wall time, and
// its runs' instruction counts and per-bench wall times.
func (m *metrics) jobFinished(state string, wall time.Duration, runs []RunMeta) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateDone:
		m.completed++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
	const alpha = 4 // EWMA decay 1/4: a few jobs settle the estimate
	if m.jobEWMA == 0 {
		m.jobEWMA = float64(wall)
	} else {
		m.jobEWMA += (float64(wall) - m.jobEWMA) / alpha
	}
	for _, r := range runs {
		m.instr += r.Instr
		h := m.benchWall[r.Benchmark]
		if h == nil {
			h = &Histogram{
				BoundsMS: wallBucketsMS,
				Counts:   make([]uint64, len(wallBucketsMS)+1),
			}
			m.benchWall[r.Benchmark] = h
		}
		h.observe(time.Duration(r.WallMS * float64(time.Millisecond)))
	}
}

// optimizeProgress records one benchmark's best-so-far search state
// for the /metrics OptimizeBest gauge.
func (m *metrics) optimizeProgress(bench, objective string, best float64, evaluated uint64, config []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.optimizeBest == nil {
		m.optimizeBest = make(map[string]*OptimizeStatus)
	}
	m.optimizeBest[bench] = &OptimizeStatus{
		Objective: objective,
		Best:      best,
		Evaluated: evaluated,
		Config:    append([]int(nil), config...),
	}
}

// retryAfter estimates how long a rejected client should wait before
// resubmitting: the queue's expected drain time given the average job
// duration and worker count, clamped to [1s, 10min].
func (m *metrics) retryAfter(queued, workers int) time.Duration {
	m.mu.Lock()
	ewma := time.Duration(m.jobEWMA)
	m.mu.Unlock()
	if ewma <= 0 {
		ewma = time.Second
	}
	if workers < 1 {
		workers = 1
	}
	d := ewma * time.Duration(queued+1) / time.Duration(workers)
	if d < time.Second {
		d = time.Second
	}
	if d > 10*time.Minute {
		d = 10 * time.Minute
	}
	return d
}

// snapshot assembles the /metrics document.
func (m *metrics) snapshot() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		BusyWorkers:    m.busy,
		JobsSubmitted:  m.submitted,
		JobsCompleted:  m.completed,
		JobsFailed:     m.failed,
		JobsCanceled:   m.canceled,
		JobsCached:     m.cached,
		StoreHits:      m.storeHits,
		InstrSimulated: m.instr,

		JobsForwarded:       m.forwarded,
		JobsForwardReceived: m.forwardReceived,
		ForwardFailures:     m.forwardFailures,
		PeerStoreHits:       m.peerHits,
		PeerStoreMisses:     m.peerMisses,

		BenchWallMS: make(map[string]*Histogram, len(m.benchWall)),
	}
	for name, h := range m.benchWall {
		cp := *h
		cp.Counts = append([]uint64(nil), h.Counts...)
		out.BenchWallMS[name] = &cp
	}
	if len(m.optimizeBest) > 0 {
		out.OptimizeBest = make(map[string]*OptimizeStatus, len(m.optimizeBest))
		for name, st := range m.optimizeBest {
			cp := *st
			cp.Config = append([]int(nil), st.Config...)
			out.OptimizeBest[name] = &cp
		}
	}
	return out
}
