package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"acedo/internal/experiment"
	"acedo/internal/fault"
	"acedo/internal/optimize"
	"acedo/internal/workload"
)

// JobSpec is the wire-format description of one experiment job: which
// benchmarks to run under which schemes, at what scale, with which
// fault plan — the full parameterisation a client POSTs to /v1/jobs.
// The zero value (an empty JSON object) means "the whole default
// evaluation": every suite benchmark under baseline/BBV/hotspot at
// scale 10, exactly what `acetables -json` produces.
//
// Two specs that normalise identically are the same job: the server
// derives the content-addressed result-cache key from the normalised
// spec (see SpecHash), so field order, explicit defaults, and omitted
// fields make no difference to caching.
type JobSpec struct {
	// Benchmarks lists suite benchmark names (workload.Suite order is
	// preserved per name; unknown names fail validation). Empty means
	// every benchmark in the suite.
	Benchmarks []string `json:"benchmarks,omitempty"`

	// Schemes lists the adaptation schemes to run, in order
	// (baseline|bbv|hotspot|wss). Empty means baseline, bbv, hotspot —
	// the paper's three-way comparison, which makes the job's result
	// the schema-stable comparison snapshot (experiment.BenchSnapshot,
	// byte-identical to `acetables -json`). Any other scheme list
	// yields a flat per-run document (RunsSnapshot).
	Schemes []string `json:"schemes,omitempty"`

	// Scale is the instruction-count scale divisor (0 normalises to
	// the default 10; 1 = paper scale).
	Scale uint64 `json:"scale,omitempty"`

	// MaxInstr bounds each run (0 = run the program to completion).
	MaxInstr uint64 `json:"max_instr,omitempty"`

	// ThreeCU enables the issue-queue third configurable unit.
	ThreeCU bool `json:"three_cu,omitempty"`

	// NoReplay disables the record-once/replay-many fast path and
	// executes every scheme directly.
	NoReplay bool `json:"no_replay,omitempty"`

	// RunMeta includes per-run wall time and record/replay disposition
	// in the result document (schema-additive omitempty fields). Note
	// that a cached result carries the metadata of the execution that
	// populated the cache.
	RunMeta bool `json:"run_meta,omitempty"`

	// Events attaches a telemetry sink to every run so the job's
	// /events endpoint streams the full JSONL event log (promotions,
	// reconfigurations, tuner decisions, interval metrics, replay
	// dispositions). Off by default: full-suite event logs run to many
	// megabytes.
	Events bool `json:"events,omitempty"`

	// TelemetryInterval is the interval sampler's period in retired
	// instructions (0 = the machine's L1D reconfiguration interval).
	// Meaningful only with Events set.
	TelemetryInterval uint64 `json:"telemetry_interval,omitempty"`

	// DeadlineMS bounds each run's wall-clock time in milliseconds
	// (0 = unbounded).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Faults arms a deterministic fault-injection plan for every run
	// (internal/fault's JSON plan format).
	Faults *fault.Plan `json:"faults,omitempty"`

	// Optimize, when non-nil, makes this an optimize job: instead of
	// running a scheme list, the server searches the widened
	// configuration space (internal/optimize) for each benchmark's
	// best configuration, evaluating every candidate as a replay of
	// the once-recorded benchmark stream. Optimize jobs take no
	// scheme list and are incompatible with three_cu, no_replay,
	// max_instr, and fault plans; search progress streams on the
	// job's event log regardless of Events. The field is omitempty,
	// so non-optimize specs normalise (and hash, and render) exactly
	// as before.
	Optimize *optimize.Spec `json:"optimize,omitempty"`
}

// defaultSchemes is the normalised scheme list of a spec that omits
// Schemes — the three-way comparison whose result document is the
// schema-stable experiment.BenchSnapshot.
var defaultSchemes = []string{"baseline", "bbv", "hotspot"}

// schemeByName maps wire names to experiment schemes.
var schemeByName = map[string]experiment.Scheme{
	"baseline": experiment.SchemeBaseline,
	"bbv":      experiment.SchemeBBV,
	"hotspot":  experiment.SchemeHotspot,
	"wss":      experiment.SchemeWSS,
}

// Normalize validates the spec and fills defaults (benchmarks → the
// full suite, schemes → baseline/bbv/hotspot, scale → 10), returning
// the canonical form every equivalent submission shares. It rejects
// unknown benchmark or scheme names, duplicates, and negative
// deadlines.
func (s JobSpec) Normalize() (JobSpec, error) {
	if s.Scale == 0 {
		s.Scale = 10
	}
	if len(s.Benchmarks) == 0 {
		for _, spec := range workload.Suite() {
			s.Benchmarks = append(s.Benchmarks, spec.Name)
		}
	} else {
		seen := make(map[string]bool, len(s.Benchmarks))
		for _, name := range s.Benchmarks {
			if _, ok := workload.ByName(name); !ok {
				return s, fmt.Errorf("unknown benchmark %q", name)
			}
			if seen[name] {
				return s, fmt.Errorf("duplicate benchmark %q", name)
			}
			seen[name] = true
		}
	}
	if s.Optimize != nil {
		// An optimize job replaces the scheme list with a search; the
		// flags below either contradict the search's replay-everything
		// evaluation model or would silently change its meaning.
		if len(s.Schemes) != 0 {
			return s, fmt.Errorf("optimize jobs take no scheme list")
		}
		if s.ThreeCU {
			return s, fmt.Errorf("optimize jobs cannot set three_cu (the search space explores the issue queue itself)")
		}
		if s.NoReplay {
			return s, fmt.Errorf("optimize jobs require the replay fast path (no_replay unsupported)")
		}
		if s.MaxInstr != 0 {
			return s, fmt.Errorf("optimize jobs cannot truncate runs (max_instr unsupported)")
		}
		if s.Faults != nil {
			return s, fmt.Errorf("optimize jobs do not support fault plans")
		}
		norm, err := s.Optimize.Normalize()
		if err != nil {
			return s, err
		}
		s.Optimize = &norm
	} else if len(s.Schemes) == 0 {
		s.Schemes = append([]string(nil), defaultSchemes...)
	} else {
		seen := make(map[string]bool, len(s.Schemes))
		for _, name := range s.Schemes {
			if _, ok := schemeByName[name]; !ok {
				return s, fmt.Errorf("unknown scheme %q", name)
			}
			if seen[name] {
				return s, fmt.Errorf("duplicate scheme %q", name)
			}
			seen[name] = true
		}
	}
	if s.DeadlineMS < 0 {
		return s, fmt.Errorf("negative deadline_ms %d", s.DeadlineMS)
	}
	return s, nil
}

// comparison reports whether the normalised spec is a three-way
// comparison job, whose result is the schema-stable
// experiment.BenchSnapshot rather than the flat RunsSnapshot.
func (s JobSpec) comparison() bool {
	if len(s.Schemes) != len(defaultSchemes) {
		return false
	}
	for i, name := range s.Schemes {
		if name != defaultSchemes[i] {
			return false
		}
	}
	return true
}

// options builds the experiment options of a normalised spec. The
// cancel channel threads the job's DELETE handler into the engine's
// chunked drive.
func (s JobSpec) options(cancel <-chan struct{}) experiment.Options {
	opt := experiment.OptionsAtScale(s.Scale)
	if s.ThreeCU {
		opt = opt.WithThreeCU()
	}
	opt.MaxInstr = s.MaxInstr
	opt.NoReplay = s.NoReplay
	opt.TelemetryInterval = s.TelemetryInterval
	if s.DeadlineMS > 0 {
		opt.Deadline = time.Duration(s.DeadlineMS) * time.Millisecond
	}
	opt.Faults = s.Faults
	opt.Cancel = cancel
	return opt
}

// SpecHash returns the job's content address: the hex SHA-256 of the
// normalised spec's canonical JSON rendering concatenated with the
// engine version string. Two submissions with the same hash are the
// same experiment on the same engine, so the server serves the second
// from the result cache byte-identically. The spec must already be
// normalised.
func SpecHash(s JobSpec) (string, error) {
	canon, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("server: canonicalise spec: %w", err)
	}
	h := sha256.New()
	h.Write(canon)
	h.Write([]byte{'\n'})
	h.Write([]byte(engineVersion()))
	return hex.EncodeToString(h.Sum(nil)), nil
}

// engineVersion identifies the result-producing engine for the cache
// key: the daemon protocol version plus both result schema versions.
// Bump Version (or a schema version) whenever results change meaning,
// and previously cached entries stop matching.
func engineVersion() string {
	return fmt.Sprintf("acelabd/%s snapshot/%d runs/%d optimize/%d",
		Version, experiment.SnapshotSchemaVersion, RunsSchemaVersion, OptimizeSchemaVersion)
}

// RunsSchemaVersion identifies the RunsSnapshot JSON layout; bump only
// for breaking changes, exactly like experiment.SnapshotSchemaVersion.
const RunsSchemaVersion = 1

// RunsSnapshot is the result document of a job whose scheme list is
// not the default three-way comparison: one flat entry per
// benchmark × scheme run, in spec order, wrapping the same
// schema-stable per-run fields as the comparison snapshot.
type RunsSnapshot struct {
	SchemaVersion int    `json:"schema_version"`
	ScaleDiv      uint64 `json:"scale_div"`
	ThreeCU       bool   `json:"three_cu,omitempty"`

	Runs []RunEntry `json:"runs"`
}

// RunEntry is one benchmark × scheme run of a RunsSnapshot.
type RunEntry struct {
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`

	experiment.RunSnapshot
}

// RunMeta is the per-run metadata a job status reports while (and
// after) the job executes: the run's identity, its record/replay
// disposition, host wall-clock milliseconds, and retired instructions.
type RunMeta struct {
	Benchmark   string  `json:"benchmark"`
	Scheme      string  `json:"scheme"`
	Disposition string  `json:"disposition"`
	WallMS      float64 `json:"wall_ms"`
	Instr       uint64  `json:"instr"`
}

// runJob executes one normalised job spec and returns the serialized
// result document plus per-run metadata. It is the worker pool's run
// function (tests substitute a stub); sink is the job's event log —
// run telemetry attaches to it only when the spec requests events,
// optimize progress always streams — and cancel aborts between
// benchmarks and at the engine's chunk boundaries.
func (s *Server) runJob(spec JobSpec, sink *eventLog, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
	opt := spec.options(cancel)
	opt.IntraParallelism = s.cfg.IntraParallelism
	opt.TraceFormat = s.cfg.TraceFormat
	if sink != nil && spec.Events {
		opt.Sink = sink
	}
	if spec.Optimize != nil {
		return s.runOptimizeJob(spec, opt, sink, cancel)
	}
	if spec.comparison() {
		return runComparisonJob(spec, opt, cancel)
	}
	return runSchemesJob(spec, opt, cancel)
}

// canceled reports whether the job's cancellation signal has fired.
func canceled(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// runComparisonJob runs the three-way comparison over the spec's
// benchmarks — the same per-benchmark Compare calls, workload
// adjustment, and transient-retry policy as experiment.RunSuite — and
// renders the schema-stable comparison snapshot. A full-suite job is
// byte-identical to `acetables -json` (or -runmeta with RunMeta set).
func runComparisonJob(spec JobSpec, opt experiment.Options, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
	var metas []RunMeta
	results := experiment.SuiteResults{Options: opt}
	for _, name := range spec.Benchmarks {
		if canceled(cancel) {
			return nil, metas, &experiment.RunError{Benchmark: name, Err: experiment.ErrCanceled}
		}
		wspec, _ := workload.ByName(name)
		c, err := experiment.Compare(opt.AdjustWorkload(wspec), opt)
		if err != nil && experiment.IsTransient(err) {
			// Mirror RunSuite's retry policy: injection is
			// deterministic, so retry under the plan minus its
			// transient rules and let the verdict stand.
			ropt := opt
			ropt.Faults = opt.Faults.WithoutTransient()
			c, err = experiment.Compare(opt.AdjustWorkload(wspec), ropt)
		}
		if err != nil {
			return nil, metas, err
		}
		results.Comparisons = append(results.Comparisons, c)
		metas = append(metas, runMetaOf(c.Base), runMetaOf(c.BBVRun), runMetaOf(c.HotRun))
	}
	snap := results.Snapshot()
	if spec.RunMeta {
		snap = results.SnapshotWithMeta()
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		return nil, metas, err
	}
	return buf.Bytes(), metas, nil
}

// runSchemesJob runs an explicit scheme list per benchmark through
// experiment.RunSchemes (sharing the process-wide record-once/
// replay-many trace cache with every other job) and renders the flat
// RunsSnapshot.
func runSchemesJob(spec JobSpec, opt experiment.Options, cancel <-chan struct{}) ([]byte, []RunMeta, error) {
	schemes := make([]experiment.Scheme, len(spec.Schemes))
	for i, name := range spec.Schemes {
		schemes[i] = schemeByName[name]
	}
	var metas []RunMeta
	snap := RunsSnapshot{
		SchemaVersion: RunsSchemaVersion,
		ScaleDiv:      spec.Scale,
		ThreeCU:       spec.ThreeCU,
		Runs:          []RunEntry{},
	}
	for _, name := range spec.Benchmarks {
		if canceled(cancel) {
			return nil, metas, &experiment.RunError{Benchmark: name, Err: experiment.ErrCanceled}
		}
		wspec, _ := workload.ByName(name)
		results, err := experiment.RunSchemes(opt.AdjustWorkload(wspec), opt, schemes)
		if err != nil && experiment.IsTransient(err) {
			ropt := opt
			ropt.Faults = opt.Faults.WithoutTransient()
			results, err = experiment.RunSchemes(opt.AdjustWorkload(wspec), ropt, schemes)
		}
		if err != nil {
			return nil, metas, err
		}
		for _, res := range results {
			metas = append(metas, runMetaOf(res))
			snap.Runs = append(snap.Runs, RunEntry{
				Benchmark:   res.Benchmark,
				Scheme:      res.Scheme.String(),
				RunSnapshot: experiment.RunSnapshotOf(res, spec.RunMeta),
			})
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return nil, metas, fmt.Errorf("server: runs snapshot encode: %w", err)
	}
	return buf.Bytes(), metas, nil
}

// runMetaOf reduces one run result to its status metadata.
func runMetaOf(r *experiment.Result) RunMeta {
	return RunMeta{
		Benchmark:   r.Benchmark,
		Scheme:      r.Scheme.String(),
		Disposition: r.Disposition,
		WallMS:      float64(r.Wall.Microseconds()) / 1e3,
		Instr:       r.Instr,
	}
}
