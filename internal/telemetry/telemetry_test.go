package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"acedo/internal/machine"
)

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(Reconfigure("L1D", 32*1024, 1000))
	s.Emit(Promotion("loop", 2000))
	s.Emit(Event{Type: TypeInterval, Instr: 3000, Interval: &IntervalMetrics{
		Seq: 1, Instr: 3000, Cycles: 4000, IPC: 0.75,
		Settings: map[string]int{"L1D": 32 * 1024, "L2": 1024 * 1024},
	}})
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unmarshal %q: %v", sc.Text(), err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Type != TypeReconfigure || events[0].Reconfigure.Unit != "L1D" ||
		events[0].Reconfigure.Setting != 32*1024 || events[0].Instr != 1000 {
		t.Errorf("reconfigure event mangled: %+v", events[0])
	}
	if events[1].Promotion.Method != "loop" {
		t.Errorf("promotion event mangled: %+v", events[1])
	}
	if events[2].Interval.Settings["L2"] != 1024*1024 {
		t.Errorf("interval event mangled: %+v", events[2])
	}
}

func TestJSONLConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Emit(Promotion("m", uint64(i)))
			}
		}()
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != goroutines*per {
		t.Fatalf("got %d lines, want %d", lines, goroutines*per)
	}
	// Every line must still be valid JSON (no interleaving).
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt line %q: %v", sc.Text(), err)
		}
	}
}

func TestMultiAndLabels(t *testing.T) {
	var a, b Buffer
	s := WithRunLabels(Multi(&a, nil, &b), "compress", "hotspot")
	s.Emit(Reconfigure("L2", 512*1024, 5))
	for _, sink := range []*Buffer{&a, &b} {
		evs := sink.Events()
		if len(evs) != 1 {
			t.Fatalf("got %d events, want 1", len(evs))
		}
		if evs[0].Bench != "compress" || evs[0].Scheme != "hotspot" {
			t.Errorf("labels not stamped: %+v", evs[0])
		}
	}
	if Multi() == nil {
		t.Error("Multi() with no sinks should still be usable")
	}
	Multi().Emit(Promotion("x", 1)) // must not panic
}

func TestEventValidate(t *testing.T) {
	if err := (Event{Type: TypeReconfigure}).Validate(); err == nil {
		t.Error("missing payload not caught")
	}
	if err := (Event{Type: "bogus"}).Validate(); err == nil {
		t.Error("unknown type not caught")
	}
	if err := Promotion("m", 1).Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
}

func TestSamplerEmitsPerInterval(t *testing.T) {
	m := machine.MustNew(machine.PaperConfig(10))
	var buf Buffer
	s, err := NewSampler(&buf, m, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the machine for 10 intervals' worth of instructions with
	// block-grain notifications, mimicking the engine.
	const blocks, perBlock = 2500, 4
	for i := 0; i < blocks; i++ {
		m.Fetch(uint64(i%32)*4, perBlock)
		m.Issue(perBlock)
		s.OnBlock(uint64(i%32)*4, perBlock)
	}
	s.Final()

	total := m.Instructions()
	wantMin := int(total / 1000)
	got := buf.Count(TypeInterval)
	if got < wantMin {
		t.Fatalf("got %d interval samples for %d instructions (interval 1000), want >= %d",
			got, total, wantMin)
	}

	var sumInstr uint64
	var lastSeq uint64
	for _, e := range buf.Events() {
		iv := e.Interval
		if iv.Seq != lastSeq+1 {
			t.Fatalf("seq gap: got %d after %d", iv.Seq, lastSeq)
		}
		lastSeq = iv.Seq
		sumInstr += iv.Instr
		if iv.Settings["L1D"] == 0 || iv.Settings["L2"] == 0 {
			t.Fatalf("missing settings: %+v", iv)
		}
		if iv.L1DMissRate < 0 || iv.L1DMissRate > 1 || iv.L2MissRate < 0 || iv.L2MissRate > 1 {
			t.Fatalf("miss rate out of range: %+v", iv)
		}
	}
	// Interval deltas must partition the run exactly.
	if sumInstr != total {
		t.Fatalf("interval instr deltas sum to %d, want %d", sumInstr, total)
	}
}

func TestSamplerRejectsBadArgs(t *testing.T) {
	m := machine.MustNew(machine.PaperConfig(10))
	var buf Buffer
	if _, err := NewSampler(nil, m, 100); err == nil {
		t.Error("nil sink accepted")
	}
	if _, err := NewSampler(&buf, nil, 100); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := NewSampler(&buf, m, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSamplerFinalOnlyWhenPending(t *testing.T) {
	m := machine.MustNew(machine.PaperConfig(10))
	var buf Buffer
	s, err := NewSampler(&buf, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.Final() // nothing retired: no event
	if n := buf.Count(""); n != 0 {
		t.Fatalf("got %d events before any instructions, want 0", n)
	}
	m.Issue(50)
	s.Final()
	s.Final() // second call: nothing new
	if n := buf.Count(TypeInterval); n != 1 {
		t.Fatalf("got %d interval events, want 1", n)
	}
}
