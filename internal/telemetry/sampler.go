package telemetry

import (
	"fmt"

	"acedo/internal/cache"
	"acedo/internal/machine"
)

// Sampler emits one IntervalMetrics event every Every retired
// instructions, giving the time-resolved view (per-interval IPC, miss
// rates, energy deltas, active settings) that end-of-run aggregates
// hide. It is driven from the engine's basic-block listener, so sample
// boundaries land on block entries — the same granularity at which the
// BBV accumulator hardware observes the run.
//
// The cost model keeps the instrumentation cheap enough to leave on:
// the per-block fast path is one counter comparison; snapshotting work
// happens only once per interval.
type Sampler struct {
	sink  Sink
	mach  *machine.Machine
	every uint64

	next    uint64
	seq     uint64
	prev    machine.Snapshot
	prevL1D cache.Stats
	prevL2  cache.Stats
}

// NewSampler constructs a sampler emitting to sink every `every`
// retired instructions. The first interval starts at the machine's
// current instruction count.
func NewSampler(sink Sink, mach *machine.Machine, every uint64) (*Sampler, error) {
	if sink == nil {
		return nil, fmt.Errorf("telemetry: nil sink")
	}
	if mach == nil {
		return nil, fmt.Errorf("telemetry: nil machine")
	}
	if every == 0 {
		return nil, fmt.Errorf("telemetry: sample interval must be positive")
	}
	s := &Sampler{
		sink:    sink,
		mach:    mach,
		every:   every,
		prev:    mach.Snapshot(),
		prevL1D: mach.L1D.Stats(),
		prevL2:  mach.L2.Stats(),
	}
	s.next = s.prev.Instr + every
	return s, nil
}

// Every returns the sampling interval in instructions.
func (s *Sampler) Every() uint64 { return s.every }

// OnBlock checks the interval timer; install it as (or chain it into)
// the engine's block listener.
func (s *Sampler) OnBlock(pc uint64, instrs int) {
	if s.mach.Instructions() >= s.next {
		s.sample()
	}
}

// Final emits the trailing partial interval, if any instructions
// retired since the last sample. Call it once after the run completes.
func (s *Sampler) Final() {
	if s.mach.Instructions() > s.prev.Instr {
		s.sample()
	}
}

// sample closes the current interval and emits its metrics.
func (s *Sampler) sample() {
	snap := s.mach.Snapshot()
	d := machine.Delta(s.prev, snap)
	l1d := s.mach.L1D.Stats()
	l2 := s.mach.L2.Stats()

	settings := make(map[string]int)
	for _, u := range s.mach.Units() {
		settings[u.Name()] = u.Current()
	}

	s.seq++
	s.sink.Emit(Event{
		Type:  TypeInterval,
		Instr: snap.Instr,
		Interval: &IntervalMetrics{
			Seq:         s.seq,
			Instr:       d.Instr,
			Cycles:      d.Cycles,
			IPC:         d.IPC(),
			L1DAccesses: l1d.Accesses - s.prevL1D.Accesses,
			L1DMissRate: missRate(l1d, s.prevL1D),
			L2Accesses:  l2.Accesses - s.prevL2.Accesses,
			L2MissRate:  missRate(l2, s.prevL2),
			L1DNJ:       d.L1DnJ,
			L2NJ:        d.L2nJ,
			IQNJ:        d.IQnJ,
			Settings:    settings,
		},
	})

	s.prev = snap
	s.prevL1D = l1d
	s.prevL2 = l2
	s.next = snap.Instr + s.every
}

// missRate returns the interval's miss rate from two cumulative
// counters (0 with no accesses).
func missRate(now, prev cache.Stats) float64 {
	acc := now.Accesses - prev.Accesses
	if acc == 0 {
		return 0
	}
	return float64(now.Misses-prev.Misses) / float64(acc)
}
