// Package telemetry is the run-observability layer: a single typed
// event stream unifying the simulator's previously scattered callbacks
// (machine reconfigurations, AOS hotspot promotions, hotspot and BBV
// tuner decisions) plus an interval sampler producing the time-series
// view of the paper's Figures 3-4 (IPC, miss rates, per-unit energy
// deltas, active CU settings every N retired instructions).
//
// The layer is pay-for-what-you-use: with no Sink installed nothing is
// allocated and no callback fires; with one, every event is delivered
// as a telemetry.Event value and encoders render it (the JSONL sink
// writes one JSON object per line; trace.Recorder is a Sink that keeps
// the ASCII-timeline view).
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Type discriminates telemetry events.
type Type string

const (
	// TypeReconfigure is an accepted hardware configuration change
	// (machine.Machine.OnReconfigure).
	TypeReconfigure Type = "reconfigure"
	// TypePromotion is an AOS hotspot promotion.
	TypePromotion Type = "promotion"
	// TypeTuneStep is one completed configuration measurement of the
	// hotspot tuner's descent.
	TypeTuneStep Type = "tune-step"
	// TypeTuned is a hotspot finishing its tuning pass and selecting
	// a configuration.
	TypeTuned Type = "tuned"
	// TypeRetune is a sampling-triggered re-entry into tuning.
	TypeRetune Type = "retune"
	// TypePhase is a temporal-scheme interval boundary: the finished
	// interval's phase classification.
	TypePhase Type = "phase"
	// TypePhaseTuned is a BBV/WSS phase finishing its combinatorial
	// tuning and selecting a configuration.
	TypePhaseTuned Type = "phase-tuned"
	// TypeInterval is an interval-metrics sample (Sampler).
	TypeInterval Type = "interval"
	// TypeDegraded is an oscillation watchdog trip: a hotspot or
	// temporal manager gave up adapting and pinned its units to the
	// full-size safe configuration.
	TypeDegraded Type = "degraded"
	// TypeReplay is a run-disposition report from the experiment
	// layer's record-once / replay-many fast path: whether a run was
	// replayed from the benchmark's recorded architectural trace or
	// fell back to direct execution (with the divergence reason).
	TypeReplay Type = "replay"
	// TypeOptimize is a search-progress report from an optimize job
	// (internal/optimize): one event per completed generation /
	// annealing epoch with the evaluation count and best-so-far.
	TypeOptimize Type = "optimize"
)

// Event is one entry of the run's event log. Type selects which of the
// payload pointers is set; Instr is the retired-instruction time of the
// event. Bench and Scheme label the run when the sink is shared across
// runs (WithRunLabels).
type Event struct {
	Type   Type   `json:"type"`
	Instr  uint64 `json:"instr"`
	Bench  string `json:"bench,omitempty"`
	Scheme string `json:"scheme,omitempty"`

	Reconfigure *ReconfigureEvent `json:"reconfigure,omitempty"`
	Promotion   *PromotionEvent   `json:"promotion,omitempty"`
	Tuner       *TunerEvent       `json:"tuner,omitempty"`
	Phase       *PhaseEvent       `json:"phase,omitempty"`
	Interval    *IntervalMetrics  `json:"interval,omitempty"`
	Degraded    *DegradedEvent    `json:"degraded,omitempty"`
	Replay      *ReplayEvent      `json:"replay,omitempty"`
	Optimize    *OptimizeEvent    `json:"optimize,omitempty"`
}

// ReconfigureEvent is an accepted configuration change: the unit and
// its new setting value (cache bytes or queue entries).
type ReconfigureEvent struct {
	Unit    string `json:"unit"`
	Setting int    `json:"setting"`
}

// PromotionEvent is a method crossing the hotspot threshold.
type PromotionEvent struct {
	Method string `json:"method"`
}

// TunerEvent carries a hotspot tuner decision. Config holds setting
// values (not indices) in the hotspot's unit order.
type TunerEvent struct {
	Method string  `json:"method"`
	Class  string  `json:"class,omitempty"`
	Config []int   `json:"config,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`
	EPI    float64 `json:"epi_nj,omitempty"`
	// Passive marks a hotspot that inherited nested hotspots'
	// choices instead of measuring its own (TypeTuned only).
	Passive bool `json:"passive,omitempty"`
	// Completed reports whether the descent tested every
	// configuration (TypeTuned only).
	Completed bool `json:"completed,omitempty"`
}

// PhaseEvent carries a temporal-scheme decision: the interval's phase
// classification (TypePhase) or a phase's selected configuration
// (TypePhaseTuned, Config in the manager's unit order, setting values).
type PhaseEvent struct {
	Phase  int     `json:"phase"`
	Stable bool    `json:"stable,omitempty"`
	Config []int   `json:"config,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`
}

// DegradedEvent is an oscillation watchdog trip. Scope is "hotspot"
// (Method/Retunes set) or "phase" (Phase/Flips set); Config holds the
// pinned full-size safe configuration as setting values in the
// manager's unit order.
type DegradedEvent struct {
	Scope   string `json:"scope"`
	Method  string `json:"method,omitempty"`
	Class   string `json:"class,omitempty"`
	Phase   int    `json:"phase,omitempty"`
	Retunes int    `json:"retunes,omitempty"`
	Flips   int    `json:"flips,omitempty"`
	Config  []int  `json:"config,omitempty"`
}

// IntervalMetrics is one interval sample: deltas since the previous
// sample plus the active CU settings at sample time.
type IntervalMetrics struct {
	Seq    uint64  `json:"seq"`
	Instr  uint64  `json:"instr"`
	Cycles uint64  `json:"cycles"`
	IPC    float64 `json:"ipc"`

	L1DAccesses uint64  `json:"l1d_accesses"`
	L1DMissRate float64 `json:"l1d_miss_rate"`
	L2Accesses  uint64  `json:"l2_accesses"`
	L2MissRate  float64 `json:"l2_miss_rate"`

	L1DNJ float64 `json:"l1d_nj"`
	L2NJ  float64 `json:"l2_nj"`
	IQNJ  float64 `json:"iq_nj,omitempty"`

	// Settings maps unit name to its active setting value.
	Settings map[string]int `json:"settings"`
}

// Sink consumes telemetry events. Implementations decide encoding and
// destination; Emit must not call back into the simulator.
type Sink interface {
	Emit(Event)
}

// Reconfigure builds a reconfiguration event.
func Reconfigure(unit string, setting int, instr uint64) Event {
	return Event{Type: TypeReconfigure, Instr: instr,
		Reconfigure: &ReconfigureEvent{Unit: unit, Setting: setting}}
}

// Promotion builds a hotspot-promotion event.
func Promotion(method string, instr uint64) Event {
	return Event{Type: TypePromotion, Instr: instr,
		Promotion: &PromotionEvent{Method: method}}
}

// ReplayEvent reports a run's record/replay disposition. Disposition
// is "recorded", "replayed", or "fallback"; Reason carries the
// divergence detail for fallbacks.
type ReplayEvent struct {
	Disposition string `json:"disposition"`
	Reason      string `json:"reason,omitempty"`
	// TraceEvents/TraceBytes describe the trace involved.
	TraceEvents uint64 `json:"trace_events,omitempty"`
	TraceBytes  uint64 `json:"trace_bytes,omitempty"`
}

// Replay builds a run-disposition event.
func Replay(disposition, reason string, events, bytes uint64) Event {
	return Event{Type: TypeReplay,
		Replay: &ReplayEvent{Disposition: disposition, Reason: reason,
			TraceEvents: events, TraceBytes: bytes}}
}

// OptimizeEvent is one search-progress report from an optimize job:
// the strategy's generation (or annealing epoch) counter, how many
// distinct candidate configurations have been evaluated so far, and
// the best candidate found to date. Best carries the objective value
// (always finite — infeasibility is the Feasible flag, not a sentinel
// value), and Config the best candidate's per-dimension choice indices
// in the search space's dimension order.
type OptimizeEvent struct {
	Strategy   string  `json:"strategy"`
	Objective  string  `json:"objective"`
	Generation int     `json:"generation"`
	Evaluated  uint64  `json:"evaluated"`
	Best       float64 `json:"best,omitempty"`
	// Feasible reports whether the best candidate satisfies the
	// job's slowdown constraint.
	Feasible bool `json:"feasible,omitempty"`
	// Improved marks a generation that moved the best-so-far.
	Improved bool  `json:"improved,omitempty"`
	Config   []int `json:"config,omitempty"`
}

// Optimize builds a search-progress event.
func Optimize(strategy, objective string, generation int, evaluated uint64, best float64, feasible, improved bool, config []int) Event {
	return Event{Type: TypeOptimize,
		Optimize: &OptimizeEvent{Strategy: strategy, Objective: objective,
			Generation: generation, Evaluated: evaluated,
			Best: best, Feasible: feasible, Improved: improved, Config: config}}
}

// MachineReconfigure adapts a Sink to the machine's OnReconfigure
// callback signature:
//
//	mach.OnReconfigure = telemetry.MachineReconfigure(sink)
func MachineReconfigure(s Sink) func(unit string, setting int, instr uint64) {
	return func(unit string, setting int, instr uint64) {
		s.Emit(Reconfigure(unit, setting, instr))
	}
}

// JSONL encodes events as JSON Lines: one self-contained object per
// event, append-only, greppable, and stable under schema growth (new
// optional fields only). Emit is safe for concurrent use, so one JSONL
// sink can serve a whole parallel suite run.
//
// Emit is allocation-free at steady state: events are rendered by a
// hand-rolled encoder (byte-identical to encoding/json; see
// jsonlEncoder) into a buffer reused across events, then appended to
// the buffered writer.
type JSONL struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc jsonlEncoder
	err error
}

// NewJSONL wraps a writer in a buffered JSONL sink. Call Flush (or
// Close) before reading the output.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{buf: bufio.NewWriter(w)}
}

// Emit writes one event as a JSON line. Encoding errors are sticky and
// reported by Flush/Close.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b, err := s.enc.encode(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.buf.Write(b); err != nil {
		s.err = err
		return
	}
	s.err = s.buf.WriteByte('\n')
}

// Flush drains the buffer and returns the first error encountered.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// Close is Flush (the underlying writer's lifetime belongs to the
// caller).
func (s *JSONL) Close() error { return s.Flush() }

// Encoder is the zero-allocation JSONL event encoder behind the JSONL
// sink, exported for consumers that need the rendered line itself
// rather than a buffered writer — e.g. the experiment service's
// per-job event logs, which append each line to an in-memory stream
// that HTTP clients follow live. The zero value is ready to use; an
// Encoder is not safe for concurrent use (callers serialise, exactly
// as JSONL does internally).
type Encoder struct {
	enc jsonlEncoder
}

// Encode renders one event as a single JSON object — byte-identical to
// encoding/json's rendering, without a trailing newline — into a
// buffer reused across calls. The returned slice is only valid until
// the next Encode call; callers that retain lines must copy.
func (c *Encoder) Encode(e Event) ([]byte, error) {
	return c.enc.encode(e)
}

// Buffer is an in-memory Sink for tests and programmatic consumers.
// The zero value is ready to use; Emit is safe for concurrent use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (b *Buffer) Emit(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Count returns the number of recorded events of the given type (all
// events when t is empty).
func (b *Buffer) Count(t Type) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t == "" {
		return len(b.events)
	}
	n := 0
	for _, e := range b.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// multi fans every event out to several sinks.
type multi []Sink

// Multi returns a Sink delivering each event to every given sink in
// order. Nil sinks are skipped; zero sinks yields a no-op sink.
func Multi(sinks ...Sink) Sink {
	var ms multi
	for _, s := range sinks {
		if s != nil {
			ms = append(ms, s)
		}
	}
	return ms
}

// Emit forwards to every sink.
func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// labeled stamps run identity onto every event before forwarding.
type labeled struct {
	sink   Sink
	bench  string
	scheme string
}

// WithRunLabels returns a Sink that sets Event.Bench and Event.Scheme
// before forwarding, so events from parallel runs sharing one sink
// remain attributable.
func WithRunLabels(s Sink, bench, scheme string) Sink {
	return labeled{sink: s, bench: bench, scheme: scheme}
}

// Emit stamps and forwards.
func (l labeled) Emit(e Event) {
	e.Bench = l.bench
	e.Scheme = l.scheme
	l.sink.Emit(e)
}

// Validate sanity-checks an event (used by tests and the fuzzing
// harness): the payload pointer must match the declared type.
func (e Event) Validate() error {
	want := map[Type]bool{
		TypeReconfigure: e.Reconfigure != nil,
		TypePromotion:   e.Promotion != nil,
		TypeTuneStep:    e.Tuner != nil,
		TypeTuned:       e.Tuner != nil,
		TypeRetune:      e.Tuner != nil,
		TypePhase:       e.Phase != nil,
		TypePhaseTuned:  e.Phase != nil,
		TypeInterval:    e.Interval != nil,
		TypeDegraded:    e.Degraded != nil,
		TypeReplay:      e.Replay != nil,
	}
	ok, known := want[e.Type]
	if !known {
		return fmt.Errorf("telemetry: unknown event type %q", e.Type)
	}
	if !ok {
		return fmt.Errorf("telemetry: %s event missing payload", e.Type)
	}
	return nil
}
