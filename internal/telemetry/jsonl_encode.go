package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"
)

// jsonlEncoder renders events into a reused byte buffer, emitting the
// exact bytes encoding/json would (field order, omitempty handling,
// HTML-escaped strings, ES6-style float formatting, sorted map keys)
// without allocating: the hot path of a telemetry-heavy run emits
// millions of events, and json.Marshal's per-call buffer was the
// sink's dominant allocation source. Byte-for-byte equivalence with
// json.Marshal is pinned by a corpus test, and the zero-allocation
// property by an allocation benchmark.
type jsonlEncoder struct {
	buf  []byte
	keys []string // reused scratch for sorting Settings map keys
	err  error
}

// encode renders one event as a JSON object into the reused buffer and
// returns it (valid until the next encode call).
func (c *jsonlEncoder) encode(e Event) ([]byte, error) {
	c.buf = c.buf[:0]
	c.err = nil
	c.byte('{')
	c.stringField("type", string(e.Type))
	c.uintField("instr", e.Instr)
	if e.Bench != "" {
		c.stringField("bench", e.Bench)
	}
	if e.Scheme != "" {
		c.stringField("scheme", e.Scheme)
	}
	if p := e.Reconfigure; p != nil {
		c.objectField("reconfigure")
		c.stringField("unit", p.Unit)
		c.intField("setting", p.Setting)
		c.byte('}')
	}
	if p := e.Promotion; p != nil {
		c.objectField("promotion")
		c.stringField("method", p.Method)
		c.byte('}')
	}
	if p := e.Tuner; p != nil {
		c.objectField("tuner")
		c.stringField("method", p.Method)
		if p.Class != "" {
			c.stringField("class", p.Class)
		}
		if len(p.Config) > 0 {
			c.intsField("config", p.Config)
		}
		if p.IPC != 0 {
			c.floatField("ipc", p.IPC)
		}
		if p.EPI != 0 {
			c.floatField("epi_nj", p.EPI)
		}
		if p.Passive {
			c.boolField("passive", p.Passive)
		}
		if p.Completed {
			c.boolField("completed", p.Completed)
		}
		c.byte('}')
	}
	if p := e.Phase; p != nil {
		c.objectField("phase")
		c.intField("phase", p.Phase)
		if p.Stable {
			c.boolField("stable", p.Stable)
		}
		if len(p.Config) > 0 {
			c.intsField("config", p.Config)
		}
		if p.IPC != 0 {
			c.floatField("ipc", p.IPC)
		}
		c.byte('}')
	}
	if p := e.Interval; p != nil {
		c.objectField("interval")
		c.uintField("seq", p.Seq)
		c.uintField("instr", p.Instr)
		c.uintField("cycles", p.Cycles)
		c.floatField("ipc", p.IPC)
		c.uintField("l1d_accesses", p.L1DAccesses)
		c.floatField("l1d_miss_rate", p.L1DMissRate)
		c.uintField("l2_accesses", p.L2Accesses)
		c.floatField("l2_miss_rate", p.L2MissRate)
		c.floatField("l1d_nj", p.L1DNJ)
		c.floatField("l2_nj", p.L2NJ)
		if p.IQNJ != 0 {
			c.floatField("iq_nj", p.IQNJ)
		}
		c.settingsField("settings", p.Settings)
		c.byte('}')
	}
	if p := e.Degraded; p != nil {
		c.objectField("degraded")
		c.stringField("scope", p.Scope)
		if p.Method != "" {
			c.stringField("method", p.Method)
		}
		if p.Class != "" {
			c.stringField("class", p.Class)
		}
		if p.Phase != 0 {
			c.intField("phase", p.Phase)
		}
		if p.Retunes != 0 {
			c.intField("retunes", p.Retunes)
		}
		if p.Flips != 0 {
			c.intField("flips", p.Flips)
		}
		if len(p.Config) > 0 {
			c.intsField("config", p.Config)
		}
		c.byte('}')
	}
	if p := e.Replay; p != nil {
		c.objectField("replay")
		c.stringField("disposition", p.Disposition)
		if p.Reason != "" {
			c.stringField("reason", p.Reason)
		}
		if p.TraceEvents != 0 {
			c.uintField("trace_events", p.TraceEvents)
		}
		if p.TraceBytes != 0 {
			c.uintField("trace_bytes", p.TraceBytes)
		}
		c.byte('}')
	}
	if p := e.Optimize; p != nil {
		c.objectField("optimize")
		c.stringField("strategy", p.Strategy)
		c.stringField("objective", p.Objective)
		c.intField("generation", p.Generation)
		c.uintField("evaluated", p.Evaluated)
		if p.Best != 0 {
			c.floatField("best", p.Best)
		}
		if p.Feasible {
			c.boolField("feasible", p.Feasible)
		}
		if p.Improved {
			c.boolField("improved", p.Improved)
		}
		if len(p.Config) > 0 {
			c.intsField("config", p.Config)
		}
		c.byte('}')
	}
	c.byte('}')
	return c.buf, c.err
}

func (c *jsonlEncoder) byte(b byte) { c.buf = append(c.buf, b) }

// key writes `,"name":` (or `"name":` right after an opening brace).
func (c *jsonlEncoder) key(name string) {
	if n := len(c.buf); n > 0 && c.buf[n-1] != '{' {
		c.buf = append(c.buf, ',')
	}
	c.buf = append(c.buf, '"')
	c.buf = append(c.buf, name...)
	c.buf = append(c.buf, '"', ':')
}

func (c *jsonlEncoder) objectField(name string) {
	c.key(name)
	c.byte('{')
}

func (c *jsonlEncoder) stringField(name, v string) {
	c.key(name)
	c.str(v)
}

func (c *jsonlEncoder) uintField(name string, v uint64) {
	c.key(name)
	c.buf = strconv.AppendUint(c.buf, v, 10)
}

func (c *jsonlEncoder) intField(name string, v int) {
	c.key(name)
	c.buf = strconv.AppendInt(c.buf, int64(v), 10)
}

func (c *jsonlEncoder) boolField(name string, v bool) {
	c.key(name)
	if v {
		c.buf = append(c.buf, "true"...)
	} else {
		c.buf = append(c.buf, "false"...)
	}
}

func (c *jsonlEncoder) intsField(name string, vs []int) {
	c.key(name)
	c.byte('[')
	for i, v := range vs {
		if i > 0 {
			c.byte(',')
		}
		c.buf = strconv.AppendInt(c.buf, int64(v), 10)
	}
	c.byte(']')
}

// floatField mirrors encoding/json's float encoding: shortest
// round-trip representation, ES6-style — exponent form only below
// 1e-6 or at/above 1e21, with two-digit negative exponents trimmed
// ("1e-09" → "1e-9"). Non-finite values are unencodable, exactly as
// in json.Marshal.
func (c *jsonlEncoder) floatField(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		if c.err == nil {
			c.err = fmt.Errorf("json: unsupported value: %v", v)
		}
		return
	}
	c.key(name)
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	c.buf = strconv.AppendFloat(c.buf, v, format, -1, 64)
	if format == 'e' {
		if n := len(c.buf); n >= 4 && c.buf[n-4] == 'e' && c.buf[n-3] == '-' && c.buf[n-2] == '0' {
			c.buf[n-2] = c.buf[n-1]
			c.buf = c.buf[:n-1]
		}
	}
}

// settingsField writes the Settings map with sorted keys (the order
// encoding/json uses), reusing the key scratch slice across events.
func (c *jsonlEncoder) settingsField(name string, m map[string]int) {
	c.key(name)
	if m == nil {
		c.buf = append(c.buf, "null"...)
		return
	}
	c.keys = c.keys[:0]
	for k := range m {
		c.keys = append(c.keys, k)
	}
	sort.Strings(c.keys)
	c.byte('{')
	for i, k := range c.keys {
		if i > 0 {
			c.byte(',')
		}
		c.str(k)
		c.byte(':')
		c.buf = strconv.AppendInt(c.buf, int64(m[k]), 10)
	}
	c.byte('}')
}

const hexDigits = "0123456789abcdef"

// str writes a JSON string with encoding/json's default escaping:
// control characters, quotes, backslashes, the HTML-sensitive
// characters < > &, invalid UTF-8 (replaced by U+FFFD), and the
// JS-hostile line separators U+2028/U+2029.
func (c *jsonlEncoder) str(s string) {
	c.byte('"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			c.buf = append(c.buf, s[start:i]...)
			switch b {
			case '\\', '"':
				c.buf = append(c.buf, '\\', b)
			case '\n':
				c.buf = append(c.buf, '\\', 'n')
			case '\r':
				c.buf = append(c.buf, '\\', 'r')
			case '\t':
				c.buf = append(c.buf, '\\', 't')
			default:
				c.buf = append(c.buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			c.buf = append(c.buf, s[start:i]...)
			c.buf = append(c.buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == 0x2028 || r == 0x2029 {
			c.buf = append(c.buf, s[start:i]...)
			c.buf = append(c.buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	c.buf = append(c.buf, s[start:]...)
	c.byte('"')
}
