package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"testing"
)

// encodeCorpus exercises every event shape, every omitempty branch,
// float formats across the 'f'/'e' boundary, string escaping (HTML
// characters, control characters, multi-byte UTF-8, invalid UTF-8),
// and nil/empty/populated Settings maps.
func encodeCorpus() []Event {
	return []Event{
		Reconfigure("l1d", 32*1024, 12345),
		Promotion("jess.match<T>&co", 99),
		{Type: TypePromotion, Instr: 1, Bench: "db", Scheme: "hotspot",
			Promotion: &PromotionEvent{Method: "a\"b\\c\nd\te\x01f\x80g h ü"}},
		{Type: TypeTuneStep, Instr: 2, Tuner: &TunerEvent{Method: "m", Config: []int{1, 2, 3}, IPC: 3.25, EPI: 0.000000123}},
		{Type: TypeTuned, Instr: 3, Tuner: &TunerEvent{Method: "m", Class: "major", Passive: true, Completed: true}},
		{Type: TypeRetune, Instr: 4, Tuner: &TunerEvent{Method: "m", IPC: 1e21, EPI: 9.99e-7}},
		{Type: TypePhase, Instr: 5, Phase: &PhaseEvent{Phase: 7, Stable: true}},
		{Type: TypePhaseTuned, Instr: 6, Phase: &PhaseEvent{Phase: 0, Config: []int{65536}, IPC: 2.5}},
		{Type: TypeInterval, Instr: 7, Interval: &IntervalMetrics{
			Seq: 1, Instr: 100000, Cycles: 35000, IPC: 2.857142857142857,
			L1DAccesses: 5000, L1DMissRate: 0.0125, L2Accesses: 62, L2MissRate: 1,
			L1DNJ: 1234.5678, L2NJ: 1e-9,
			Settings: map[string]int{"l2": 1 << 20, "l1d": 64 << 10, "iq": 32},
		}},
		{Type: TypeInterval, Instr: 8, Interval: &IntervalMetrics{Settings: map[string]int{}}},
		{Type: TypeInterval, Instr: 9, Interval: &IntervalMetrics{IQNJ: 42.42}},
		{Type: TypeDegraded, Instr: 10, Degraded: &DegradedEvent{Scope: "hotspot", Method: "m", Class: "c", Retunes: 5, Config: []int{1}}},
		{Type: TypeDegraded, Instr: 11, Degraded: &DegradedEvent{Scope: "phase", Phase: 3, Flips: 9}},
		Replay("replayed", "", 123456, 7890),
		Replay("fallback", "rtrace: replayed scheme diverged from recorded stream", 1, 1),
		{Type: TypeReplay, Replay: &ReplayEvent{Disposition: "recorded"}},
		Optimize("ga", "edp", 12, 480, 1234.5625, true, true, []int{0, 3, 1, 2, 0, 1, 2, 3}),
		{Type: TypeOptimize, Optimize: &OptimizeEvent{Strategy: "sa", Objective: "energy", Generation: 0, Evaluated: 1}},
		{Type: "future-type", Instr: math.MaxUint64},
	}
}

// TestEncoderMatchesEncodingJSON pins the hand-rolled encoder's output
// byte-for-byte against json.Marshal over the corpus — the property
// that lets the zero-allocation path replace it safely.
func TestEncoderMatchesEncodingJSON(t *testing.T) {
	var enc jsonlEncoder
	for _, e := range encodeCorpus() {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", e, err)
		}
		got, err := enc.encode(e)
		if err != nil {
			t.Fatalf("encode(%+v): %v", e, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("encoding mismatch for %s event:\n got %s\nwant %s", e.Type, got, want)
		}
	}
}

// TestExportedEncoderMatchesEncodingJSON pins the exported Encoder
// wrapper to the same byte-for-byte json.Marshal equivalence as the
// internal encoder it wraps.
func TestExportedEncoderMatchesEncodingJSON(t *testing.T) {
	var enc Encoder
	for _, e := range encodeCorpus() {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", e, err)
		}
		got, err := enc.Encode(e)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", e, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("encoding mismatch for %s event:\n got %s\nwant %s", e.Type, got, want)
		}
	}
}

// TestEncoderRejectsNonFinite: json.Marshal fails on NaN/Inf; the
// hand-rolled encoder must too (the JSONL sink turns it into its
// sticky error).
func TestEncoderRejectsNonFinite(t *testing.T) {
	var enc jsonlEncoder
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		e := Event{Type: TypeInterval, Interval: &IntervalMetrics{IPC: v}}
		if _, err := enc.encode(e); err == nil {
			t.Errorf("encode accepted non-finite IPC %v", v)
		}
	}
}

// TestJSONLEmitZeroAlloc enforces the sink's steady-state allocation
// contract: after warm-up, Emit performs zero allocations per event.
func TestJSONLEmitZeroAlloc(t *testing.T) {
	s := NewJSONL(io.Discard)
	events := encodeCorpus()
	// Warm up: grow the encoder buffer, key scratch, and bufio writer
	// to steady state.
	for _, e := range events {
		s.Emit(e)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Emit(events[i%len(events)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.1f times per event at steady state, want 0", allocs)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkJSONLEmit measures the sink's per-event cost; run with
// -benchmem to see the 0 allocs/op steady-state figure.
func BenchmarkJSONLEmit(b *testing.B) {
	s := NewJSONL(io.Discard)
	events := encodeCorpus()
	for _, e := range events {
		s.Emit(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(events[i%len(events)])
	}
	b.StopTimer()
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}
