// Intra-run parallel replay: one run's summarized op stream is split
// into contiguous spans replayed speculatively on worker goroutines,
// each against a private clone of the resizable caches warmed by a
// prefix of the preceding ops. The serial spine consumes spans in
// order; for each span it verifies the worker's assumed start state —
// the canonical view (tags, recency order, dirty bits) of every set
// the span touched, captured at the span's first touch — against the
// live caches, and on a match splices the worker's final set states,
// stats deltas, and arithmetic charges onto the live machine instead
// of re-simulating the span. A failed verification replays that span
// exactly on the spine. Either way the merged result is bit-identical
// to serial replay; only wall-clock time varies.
//
// The soundness preconditions are checked, not assumed: the AOS must
// be passive (vm.AOS.Passive) and no block listener installed, so the
// machine's evolution is a pure function of the trace — no
// reconfigurations, no overhead charges, no sampling feedback into
// timing. Anything else falls back to serial summarized replay.
package rtrace

import (
	"math/bits"
	"sync"

	"acedo/internal/cache"
	"acedo/internal/machine"
)

// minSpanOps is the smallest op span worth a speculative worker;
// maxWarmupOps bounds each worker's warmup prefix.
const (
	minSpanOps   = 2048
	maxWarmupOps = 1 << 18
)

// ReplayParallel is Replay with intra-run parallelism: the trace's
// summarized op stream is split into up to workers spans replayed
// speculatively on goroutines and reconciled in order by the serial
// spine. The machine, AOS, and listener effects are bit-identical to
// Replay in every case — unverifiable spans (and traces that cannot
// be summarized, or environments where speculation is unsound) are
// replayed serially instead.
func (t *Trace) ReplayParallel(env Env, workers int) error {
	s := t.summaryFor(env.Prog)
	if s == nil {
		return t.ReplayExact(env)
	}
	if s.err != nil {
		return s.err
	}
	nspan := workers
	if m := len(s.ops) / minSpanOps; nspan > m {
		nspan = m
	}
	if nspan <= 1 || env.BlockListener != nil || !env.AOS.Passive() {
		w := newSumWalker(t, s, env)
		_, err := w.walk(0, len(s.ops), true)
		return err
	}

	live1, live2 := env.Mach.L1D, env.Mach.L2
	bounds := splitSpans(s, nspan)
	nspan = len(bounds) - 1

	results := make([]chan *spanRec, nspan)
	var wg sync.WaitGroup
	defer wg.Wait()
	for k := 1; k < nspan; k++ {
		results[k] = make(chan *spanRec, 1)
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			results[k] <- runSpanWorker(s, bounds[k], bounds[k+1], live1, live2)
		}(k)
	}

	w := newSumWalker(t, s, env)
	done, err := w.walk(bounds[0], bounds[1], true)
	for k := 1; k < nspan && err == nil && !done; k++ {
		rec := <-results[k]
		trueViews, ok := rec.verify(live1, live2)
		if !ok || rec.failed {
			done, err = w.walk(bounds[k], bounds[k+1], true)
			continue
		}
		tick1, tick2 := live1.Tick(), live2.Tick()
		done, err = w.walk(bounds[k], bounds[k+1], false)
		if err == nil {
			rec.splice(env.Mach, trueViews, tick1, tick2)
		}
	}
	return err
}

// splitSpans partitions the op stream into nspan contiguous spans of
// roughly equal replay weight (1 per op + 1 per data access + 1 per
// recorded L1I miss line), returning the nspan+1 boundary indices.
func splitSpans(s *summary, nspan int) []int {
	var total uint64
	weights := make([]uint64, len(s.ops))
	for i := range s.ops {
		o := &s.ops[i]
		var w uint64
		if o.w&opExtBit != 0 {
			x := &s.ext[o.d]
			w = 1 + uint64(x.nData) + uint64(bits.OnesCount64(x.missMask))
		} else {
			w = 1 + o.w>>opDataShift&opDataMax
		}
		weights[i] = w
		total += w
	}
	bounds := make([]int, 1, nspan+1)
	var acc uint64
	for i, w := range weights {
		acc += w
		k := len(bounds)
		if k < nspan && acc >= total*uint64(k)/uint64(nspan) && i+1 < len(s.ops) {
			bounds = append(bounds, i+1)
		}
	}
	return append(bounds, len(s.ops))
}

// spanView is one cache set a span touched: the worker's assumed view
// of it at span start (captured at the span's first touch of the set,
// before which the set is provably unchanged since span start) and
// its final view at span end. Final LastUse values are span-relative
// ordinals — 0 marks a line inherited untouched from the assumption.
type spanView struct {
	l2     bool
	set    uint64
	assume []cache.LineView
	final  []cache.LineView
}

// spanRec is a worker's speculative result: the touched-set views and
// the span's private stats deltas for both caches.
type spanRec struct {
	views  []spanView
	l1d    cache.Stats
	l2     cache.Stats
	failed bool // clone construction failed; spine must replay exactly
}

// spanWorker replays one span's cache-relevant ops against private
// clones, recording first-touch assumptions and final states.
type spanWorker struct {
	s        *summary
	l1d, l2  *cache.Cache
	fastOK   bool
	tracking bool
	tick1    uint64
	tick2    uint64
	base1    cache.Stats
	base2    cache.Stats
	idx      map[[2]uint64]int
	rec      *spanRec
}

// runSpanWorker replays ops[lo:hi) on clones of the live caches after
// warming them with a bounded prefix of the preceding ops. Only cache
// state is simulated — batches, branches, TLB outcomes, and energy
// are state-independent arithmetic the spine applies itself.
func runSpanWorker(s *summary, lo, hi int, live1, live2 *cache.Cache) *spanRec {
	rec := &spanRec{}
	l1d, err1 := cache.New("l1d-span", live1.SizeBytes(), live1.BlockBytes(), live1.Ways())
	l2, err2 := cache.New("l2-span", live2.SizeBytes(), live2.BlockBytes(), live2.Ways())
	if err1 != nil || err2 != nil {
		rec.failed = true
		return rec
	}
	wk := &spanWorker{
		s:      s,
		l1d:    l1d,
		l2:     l2,
		fastOK: live1.BlockBytes() == iLine,
		idx:    make(map[[2]uint64]int),
		rec:    rec,
	}
	warm := hi - lo
	if warm > maxWarmupOps {
		warm = maxWarmupOps
	}
	wlo := lo - warm
	if wlo < 0 {
		wlo = 0
	}
	for i := wlo; i < hi; i++ {
		if i == lo {
			wk.startSpan()
		}
		wk.applyOp(s.ops[i])
	}
	wk.finish()
	return rec
}

func (wk *spanWorker) startSpan() {
	wk.tracking = true
	wk.tick1 = wk.l1d.Tick()
	wk.tick2 = wk.l2.Tick()
	wk.base1 = wk.l1d.Stats()
	wk.base2 = wk.l2.Stats()
}

// applyOp replays one op's cache traffic: the recorded L1I miss
// lines' L2 fills in line order, then the body's data accesses in
// access order (a direct access for single-access bodies, otherwise
// the same footprint fast path the serial walker uses when every line
// is resident in the clone).
func (wk *spanWorker) applyOp(o sumOp) {
	if o.w&opExtBit != 0 {
		x := &wk.s.ext[o.d]
		if x.missMask != 0 {
			for b := uint64(0); b < uint64(x.nLines); b++ {
				if x.missMask&(1<<b) != 0 {
					wk.l2Access(x.firstLine+b*iLine, false)
				}
			}
		}
		if x.nData > 0 {
			wk.applyBody(x.fastOK, uint32(x.nFoot), x.footOff, x.dataOff, x.nData)
		}
		return
	}
	nData := uint32(o.w >> opDataShift & opDataMax)
	switch {
	case nData == 0:
	case nData == 1:
		wk.l1dAccess((o.d>>1)*8, o.d&1 != 0)
	default:
		wk.applyBody(o.w&opFastBit != 0, uint32(o.w>>opFootShift&opFootMax),
			uint32(o.d>>32), uint32(o.d), nData)
	}
}

// applyBody replays a multi-access body against the clones.
func (wk *spanWorker) applyBody(fastOK bool, nFoot, footOff, dataOff, nData uint32) {
	if fastOK && wk.fastOK {
		foot := wk.s.foot[footOff : footOff+nFoot]
		if wk.tracking {
			for i := range foot {
				wk.touch(false, wk.l1d, foot[i].Addr)
			}
		}
		if wk.l1d.TryApplyFootprint(foot, uint64(nData)) {
			return
		}
	}
	for _, d := range wk.s.data[dataOff : dataOff+nData] {
		wk.l1dAccess((d>>1)*8, d&1 != 0)
	}
}

// l1dAccess replays one data access on the clones: the L1D probe, the
// evicted line's L2 writeback, and the miss's L2 fill.
func (wk *spanWorker) l1dAccess(addr uint64, write bool) {
	if wk.tracking {
		wk.touch(false, wk.l1d, addr)
	}
	r := wk.l1d.Access(addr, write)
	if r.Writeback {
		wk.l2Access(r.WritebackAddr, true)
	}
	if !r.Hit {
		wk.l2Access(addr, false)
	}
}

func (wk *spanWorker) l2Access(addr uint64, write bool) {
	if wk.tracking {
		wk.touch(true, wk.l2, addr)
	}
	wk.l2.Access(addr, write)
}

// touch records the set's assumed view the first time the span
// touches it — the set is unchanged between span start and this
// moment, so the captured view is the span-start view.
func (wk *spanWorker) touch(l2 bool, c *cache.Cache, addr uint64) {
	set := c.SetOf(addr)
	key := [2]uint64{0, set}
	if l2 {
		key[0] = 1
	}
	if _, seen := wk.idx[key]; seen {
		return
	}
	wk.idx[key] = len(wk.rec.views)
	wk.rec.views = append(wk.rec.views, spanView{l2: l2, set: set, assume: c.ViewSet(set)})
}

// finish converts each touched set's final view to span-relative
// ordinals (0 = inherited from the assumption) and captures the
// span's stats deltas.
func (wk *spanWorker) finish() {
	for i := range wk.rec.views {
		v := &wk.rec.views[i]
		c, tick := wk.l1d, wk.tick1
		if v.l2 {
			c, tick = wk.l2, wk.tick2
		}
		fin := c.ViewSet(v.set)
		for j := range fin {
			if fin[j].LastUse > tick {
				fin[j].LastUse -= tick
			} else {
				fin[j].LastUse = 0
			}
		}
		v.final = fin
	}
	wk.rec.l1d = wk.l1d.Stats().Sub(wk.base1)
	wk.rec.l2 = wk.l2.Stats().Sub(wk.base2)
}

// verify checks the span's assumptions against the live caches: every
// touched set's live view must carry the same tags in the same
// recency order with the same dirty bits as the worker assumed (equal
// views determine identical behavior on any future access sequence —
// way placement only permutes victim identity between lines the view
// already orders). It also confirms every inherited final line
// resolves to a live tag. On success it returns the live views, which
// splice needs to assign inherited lines their true last-use ticks.
func (rec *spanRec) verify(live1, live2 *cache.Cache) ([][]cache.LineView, bool) {
	trueViews := make([][]cache.LineView, len(rec.views))
	for i := range rec.views {
		v := &rec.views[i]
		c := live1
		if v.l2 {
			c = live2
		}
		tv := c.ViewSet(v.set)
		if len(tv) != len(v.assume) {
			return nil, false
		}
		for j := range tv {
			if tv[j].Tag != v.assume[j].Tag || tv[j].Dirty != v.assume[j].Dirty {
				return nil, false
			}
		}
		for j := range v.final {
			if v.final[j].LastUse == 0 && lookupTag(tv, v.final[j].Tag) == nil {
				return nil, false
			}
		}
		trueViews[i] = tv
	}
	return trueViews, true
}

func lookupTag(view []cache.LineView, tag uint64) *cache.LineView {
	for i := range view {
		if view[i].Tag == tag {
			return &view[i]
		}
	}
	return nil
}

// splice grafts the verified span onto the live machine: each touched
// set's final lines are installed with absolute last-use ticks
// (span-start tick + ordinal for lines the span touched; the live
// line's own tick for inherited ones — inherited ticks precede the
// span-start tick, so the composed ordering matches serial replay
// exactly), the LRU clocks advance by the span's access counts, the
// stats deltas are added, and the span's energy and stall charges are
// applied in bulk.
func (rec *spanRec) splice(mach *machine.Machine, trueViews [][]cache.LineView, tick1, tick2 uint64) {
	for i := range rec.views {
		v := &rec.views[i]
		c, tick := mach.L1D, tick1
		if v.l2 {
			c, tick = mach.L2, tick2
		}
		lines := make([]cache.LineView, len(v.final))
		for j, ln := range v.final {
			if ln.LastUse == 0 {
				ln.LastUse = lookupTag(trueViews[i], ln.Tag).LastUse
			} else {
				ln.LastUse += tick
			}
			lines[j] = ln
		}
		c.StoreSet(v.set, lines)
	}
	mach.L1D.AdvanceTick(rec.l1d.Accesses)
	mach.L2.AdvanceTick(rec.l2.Accesses)
	mach.L1D.AddStats(rec.l1d)
	mach.L2.AddStats(rec.l2)
	mach.SpliceSpanCharges(rec.l1d.Accesses, rec.l1d.Misses, rec.l2.Accesses, rec.l2.Misses)
}
