package rtrace

import (
	"reflect"
	"testing"

	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// directTrace is recordedTrace with the direct summary recorder
// installed instead of the byte encoder.
func directTrace(t *testing.T, bench string, budget uint64) (*program.Program, *Trace) {
	t.Helper()
	spec, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no %s benchmark", bench)
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	aos := vm.NewAOS(vm.DefaultParams(), mach, prog)
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewSummaryRecorder(prog, budget)
	if err := eng.SetRecorder(rec); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(budget); err != nil && err != vm.ErrBudget {
		t.Fatal(err)
	}
	tr, err := rec.Finish(eng.Halted())
	if err != nil {
		t.Fatal(err)
	}
	return prog, tr
}

// checkSameSummary asserts two summaries are op-for-op identical:
// every packed op word and datum, the pc stream, and the ext, data,
// and footprint side tables.
func checkSameSummary(t *testing.T, label string, want, got *summary) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: nil summary (want %v, got %v)", label, want != nil, got != nil)
	}
	if want.err != nil || got.err != nil {
		t.Fatalf("%s: summary errors: want %v, got %v", label, want.err, got.err)
	}
	if len(want.ops) != len(got.ops) {
		t.Fatalf("%s: op count %d, want %d", label, len(got.ops), len(want.ops))
	}
	for i := range want.ops {
		if want.ops[i] != got.ops[i] {
			t.Fatalf("%s: op %d = %+v, want %+v", label, i, got.ops[i], want.ops[i])
		}
	}
	if !reflect.DeepEqual(want.pcs, got.pcs) {
		t.Errorf("%s: pc streams differ", label)
	}
	if !reflect.DeepEqual(want.ext, got.ext) {
		t.Errorf("%s: ext tables differ (%d vs %d records)", label, len(want.ext), len(got.ext))
	}
	if !reflect.DeepEqual(want.data, got.data) {
		t.Errorf("%s: data tables differ (%d vs %d accesses)", label, len(want.data), len(got.data))
	}
	if !reflect.DeepEqual(want.foot, got.foot) {
		t.Errorf("%s: footprint tables differ (%d vs %d lines)", label, len(want.foot), len(got.foot))
	}
	if want.retired != got.retired {
		t.Errorf("%s: retired total %d, want %d", label, got.retired, want.retired)
	}
	if want.progSig != got.progSig {
		t.Errorf("%s: progSig %x, want %x", label, got.progSig, want.progSig)
	}
}

// TestDirectSummaryOpIdentical is the tentpole's differential gate:
// across every suite workload, complete and truncated, the summary the
// direct recorder builds at record time must be op-for-op identical to
// the one summarize() decodes from the byte recorder's stream of the
// same run — same packed words, same ext escapes, same side tables,
// same event count and truncation flag.
func TestDirectSummaryOpIdentical(t *testing.T) {
	budgets := []uint64{0, 2_000_000}
	for _, spec := range workload.Suite() {
		for _, budget := range budgets {
			label := spec.Name
			if budget != 0 {
				label += "/truncated"
			}
			prog, byteTr := recordedTrace(t, spec.Name, budget)
			_, directTr := directTrace(t, spec.Name, budget)

			if byteTr.Truncated() != directTr.Truncated() {
				t.Errorf("%s: truncated %v, want %v", label, directTr.Truncated(), byteTr.Truncated())
			}
			if byteTr.Events() != directTr.Events() {
				t.Errorf("%s: events %d, want %d", label, directTr.Events(), byteTr.Events())
			}
			if !directTr.DirectBuilt() || byteTr.DirectBuilt() {
				t.Errorf("%s: DirectBuilt flags wrong", label)
			}
			checkSameSummary(t, label, byteTr.summaryFor(prog), directTr.summaryFor(prog))
		}
	}
}

// TestDirectReplayMatchesByteOracle: replaying a direct-built trace —
// serial, span-parallel, and with a block listener — must leave the
// machine bit-identical to the byte oracle's ReplayExact of the same
// run.
func TestDirectReplayMatchesByteOracle(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget uint64
	}{
		{"complete", 0},
		{"truncated", 2_000_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, byteTr := recordedTrace(t, "jess", tc.budget)
			_, directTr := directTrace(t, "jess", tc.budget)

			exact := freshEnv(t, prog)
			if err := byteTr.ReplayExact(exact); err != nil {
				t.Fatalf("ReplayExact: %v", err)
			}
			want := machineState(exact.Mach)

			serial := freshEnv(t, prog)
			if err := directTr.Replay(serial); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			checkSameState(t, "direct-serial", want, machineState(serial.Mach))

			par := freshEnv(t, prog)
			if err := directTr.ReplayParallel(par, 4); err != nil {
				t.Fatalf("ReplayParallel: %v", err)
			}
			checkSameState(t, "direct-parallel", want, machineState(par.Mach))

			nb, nd := 0, 0
			lb := freshEnv(t, prog)
			lb.BlockListener = func(uint64, int) { nb++ }
			if err := byteTr.Replay(lb); err != nil {
				t.Fatal(err)
			}
			ld := freshEnv(t, prog)
			ld.BlockListener = func(uint64, int) { nd++ }
			if err := directTr.Replay(ld); err != nil {
				t.Fatal(err)
			}
			if nb == 0 || nb != nd {
				t.Errorf("listener fired %d times on direct trace, want %d (non-zero)", nd, nb)
			}
			checkSameState(t, "direct-listener", machineState(lb.Mach), machineState(ld.Mach))
		})
	}
}

// TestDirectTraceMemBytes: a direct-built trace has no encoded bytes,
// so MemBytes (what cache budgets charge) must count the summary's
// arrays, and a byte trace's MemBytes must grow once Prime decodes its
// summary.
func TestDirectTraceMemBytes(t *testing.T) {
	prog, directTr := directTrace(t, "db", 500_000)
	if directTr.Size() != 0 {
		t.Errorf("direct trace Size = %d, want 0", directTr.Size())
	}
	if directTr.MemBytes() == 0 {
		t.Error("direct trace MemBytes = 0, want summary footprint")
	}

	_, byteTr := recordedTrace(t, "db", 500_000)
	encoded := byteTr.MemBytes()
	if encoded != byteTr.Size() {
		t.Errorf("unprimed byte trace MemBytes = %d, want Size %d", encoded, byteTr.Size())
	}
	byteTr.Prime(prog)
	if primed := byteTr.MemBytes(); primed <= encoded {
		t.Errorf("primed byte trace MemBytes = %d, want > %d", primed, encoded)
	}
}

// TestSummaryBudgetValues pins the documented summarization bounds:
// byte traces above 96 MiB keep the byte-replay path, and the direct
// recorder's memory bound is the matching 6× decoded-size limit.
func TestSummaryBudgetValues(t *testing.T) {
	if summaryMaxTraceBytes != 96<<20 {
		t.Errorf("summaryMaxTraceBytes = %d, want %d (96 MiB; update the docs with it)", summaryMaxTraceBytes, 96<<20)
	}
	if summaryMaxMemBytes != 6*summaryMaxTraceBytes {
		t.Errorf("summaryMaxMemBytes = %d, want 6x summaryMaxTraceBytes", summaryMaxMemBytes)
	}
}

// TestDirectRecorderInvalid: an unencodable event (a block spanning
// more than 64 I-lines) must poison the recording so Finish fails,
// exactly like the byte recorder.
func TestDirectRecorderInvalid(t *testing.T) {
	spec, _ := workload.ByName("db")
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := NewSummaryRecorder(prog, 0)
	r.RecordEnter(0, 0, 0, false)
	if _, err := r.Finish(true); err == nil {
		t.Error("Finish succeeded on an unencodable stream")
	}
}
