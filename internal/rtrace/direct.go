// Direct summarization: a second vm.Recorder that builds the packed
// summarized op stream (summary.go) straight from the engine's event
// callbacks, skipping both the delta/varint byte encoding and the
// decode-once summarization pass. The byte recorder survives as the
// oracle format — record-check and the fuzz differential prove the
// direct-built summary is op-for-op identical to summarize-after-
// decode — and the shared sumBuilder state machine makes the two
// construction paths structurally incapable of drifting apart.
package rtrace

import (
	"fmt"
	"unsafe"

	"acedo/internal/cache"
	"acedo/internal/program"
	"acedo/internal/vm"
)

// Format selects which vm.Recorder implementation a recording run
// installs. It is a pure performance knob: both formats yield traces
// whose replays are byte-identical, so it deliberately stays out of
// job spec hashing (like Options.IntraParallelism).
type Format int

const (
	// FormatSummary (the default) records with SummaryRecorder,
	// building the packed summarized op stream directly at record
	// time with no byte encoding and no decode pass.
	FormatSummary Format = iota
	// FormatBytes records with the chunked delta/varint byte encoder
	// (Recorder), summarizing lazily on first replay — the original
	// path, retained as the differential oracle.
	FormatBytes
)

// String returns the flag spelling of the format.
func (f Format) String() string {
	switch f {
	case FormatSummary:
		return "summary"
	case FormatBytes:
		return "bytes"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat parses a -traceformat flag value ("summary" or "bytes").
func ParseFormat(s string) (Format, error) {
	switch s {
	case "summary", "":
		return FormatSummary, nil
	case "bytes":
		return FormatBytes, nil
	}
	return 0, fmt.Errorf("rtrace: unknown trace format %q (want summary or bytes)", s)
}

// summaryMaxMemBytes bounds direct-built summaries the way
// summaryMaxTraceBytes bounds summarized byte traces: the decoded op
// stream costs roughly 6× the encoded bytes, so the two limits gate
// the same recordings whichever recorder captured them.
const summaryMaxMemBytes = 6 * summaryMaxTraceBytes

// summaryMemBytes is the summary's resident size: the op and pc
// streams plus the ext/data/footprint side tables.
func summaryMemBytes(s *summary) int {
	const (
		opBytes   = int(unsafe.Sizeof(sumOp{}))
		extBytes  = int(unsafe.Sizeof(sumExt{}))
		footBytes = int(unsafe.Sizeof(cache.FootLine{}))
	)
	return len(s.ops)*opBytes + len(s.pcs)*4 + len(s.ext)*extBytes +
		len(s.data)*8 + len(s.foot)*footBytes
}

// MemBytes reports the trace's resident memory: the encoded chunk
// bytes plus the decoded summary's op stream and side tables once
// built. Direct-built traces have no chunks, so this is the number
// cache budgets and telemetry must charge — Size() alone would be 0.
func (t *Trace) MemBytes() int {
	n := t.size
	if st := t.sumState; st != nil {
		st.mu.Lock()
		if st.built && st.sum != nil {
			n += summaryMemBytes(st.sum)
		}
		st.mu.Unlock()
	}
	return n
}

// DirectBuilt reports whether the trace was captured by
// SummaryRecorder (no byte encoding exists; ReplayExact is
// unavailable and Replay always takes the summarized path).
func (t *Trace) DirectBuilt() bool { return t.direct }

// Prime eagerly resolves the trace's summary against prog (a no-op on
// direct-built traces, whose summary exists from Finish). Callers that
// cache traces call it so MemBytes reflects the decoded footprint at
// admission time rather than after the first replay.
func (t *Trace) Prime(prog *program.Program) { t.summaryFor(prog) }

// SummaryRecorder implements vm.Recorder by feeding the engine's
// event stream straight into a sumBuilder — the identical state
// machine summarize() drives from the byte stream — so Finish yields
// a Trace whose summary already exists, op-for-op identical to what
// recording with Recorder and summarizing on first replay would have
// produced. Event validation errors cannot occur on engine-driven
// streams (the engine only reports in-range methods and blocks), but
// are still surfaced through Finish for hand-driven use.
type SummaryRecorder struct {
	b       sumBuilder
	events  uint64
	dead    bool
	invalid string
}

// NewSummaryRecorder returns an empty direct recorder ready to
// install on an engine running prog. instrHint, when non-zero, is the
// run's instruction budget (or an estimate); it pre-sizes the op
// stream — the suite's workloads average ~6 retired instructions per
// boundary — so a recording with a known budget never pays append's
// grow-and-copy churn. Zero keeps a small default and grows by
// doubling.
func NewSummaryRecorder(prog *program.Program, instrHint uint64) *SummaryRecorder {
	const (
		instrsPerOp = 6
		minGuess    = 1 << 12
		maxGuess    = 1 << 21 // 2M ops ≈ 48 MiB of ops+pcs up front
	)
	guess := int(instrHint / instrsPerOp)
	if guess < minGuess {
		guess = minGuess
	}
	if guess > maxGuess {
		guess = maxGuess
	}
	r := &SummaryRecorder{}
	r.b.init(prog, guess)
	return r
}

// fail poisons the recording; Finish reports the first reason. The
// builder stops advancing so later events cannot corrupt its frame
// tracking.
func (r *SummaryRecorder) fail(reason string) {
	if !r.dead {
		r.dead = true
		r.invalid = reason
	}
}

// RecordEnter records a method entry and its first block's fetch
// outcomes (vm.Recorder).
func (r *SummaryRecorder) RecordEnter(id program.MethodID, tlbMask, missMask uint64, ok bool) {
	if r.dead {
		return
	}
	if !ok {
		r.fail("basic block spans more than 64 I-lines")
		return
	}
	r.events++
	if err := r.b.enter(uint64(id), tlbMask, missMask); err != nil {
		r.fail(err.Error())
	}
}

// RecordBlock records an intra-method block entry and its fetch
// outcomes (vm.Recorder).
func (r *SummaryRecorder) RecordBlock(idx int, tlbMask, missMask uint64, ok bool) {
	if r.dead {
		return
	}
	if !ok {
		r.fail("basic block spans more than 64 I-lines")
		return
	}
	r.events++
	if err := r.b.block(uint64(idx), tlbMask, missMask); err != nil {
		r.fail(err.Error())
	}
}

// RecordBatch records a retire batch of n instructions (vm.Recorder).
func (r *SummaryRecorder) RecordBatch(n uint64) {
	if r.dead {
		return
	}
	r.events++
	r.b.addBatch(n)
}

// RecordData records one data access and its D-TLB outcome
// (vm.Recorder).
func (r *SummaryRecorder) RecordData(wordAddr uint64, write, tlbMiss bool) {
	if r.dead {
		return
	}
	r.events++
	var w uint64
	if write {
		w = 1
	}
	r.b.body = append(r.b.body, wordAddr<<1|w)
	if tlbMiss {
		r.b.open.dtlb++
	}
}

// RecordBranch records a conditional branch's predictor verdict
// (vm.Recorder).
func (r *SummaryRecorder) RecordBranch(correct bool) {
	if r.dead {
		return
	}
	r.events++
	if !correct {
		r.b.open.brWrong++
	}
}

// RecordBody records one fast-path block body in a single call
// (vm.Recorder): the packed data accesses, the retire batch, and the
// terminating branch verdict, in stream order.
func (r *SummaryRecorder) RecordBody(data []uint64, n uint64, branch int8) {
	if r.dead {
		return
	}
	r.events += uint64(len(data)) + 1
	b := &r.b
	for _, d := range data {
		// vm.BodyData packing addr<<2|miss<<1|write → body packing
		// addr<<1|write, counting the D-TLB miss bit.
		b.body = append(b.body, d>>2<<1|d&1)
		b.open.dtlb += uint32(d>>1) & 1
	}
	b.addBatch(n)
	if branch != vm.BranchNone {
		r.events++
		if branch == vm.BranchWrong {
			b.open.brWrong++
		}
	}
}

// RecordExit records a method return (vm.Recorder).
func (r *SummaryRecorder) RecordExit() {
	if r.dead {
		return
	}
	r.events++
	if err := r.b.exit(); err != nil {
		r.fail(err.Error())
	}
}

// RecordHalt records an explicit halt (vm.Recorder).
func (r *SummaryRecorder) RecordHalt() {
	if r.dead {
		return
	}
	r.events++
	r.b.halt()
}

// Finish seals the recording into an immutable Trace whose summary is
// already built — Replay and ReplayParallel use it directly, with no
// decode pass. halted reports whether the program ran to completion
// (vm.Engine.Halted); a non-halted recording is marked truncated.
// Finish fails when the stream hit an unencodable case or when the
// summary outgrew the memory bound the byte path enforces via
// summaryMaxTraceBytes, in which case the run must not be replayed.
func (r *SummaryRecorder) Finish(halted bool) (*Trace, error) {
	if r.dead {
		return nil, fmt.Errorf("rtrace: recording unusable: %s", r.invalid)
	}
	r.b.end(halted)
	s := r.b.s
	r.b = sumBuilder{}
	if mem := summaryMemBytes(s); mem > summaryMaxMemBytes {
		return nil, fmt.Errorf("rtrace: recording unusable: direct-built summary needs %d bytes (limit %d)", mem, summaryMaxMemBytes)
	}
	return &Trace{
		events:    r.events,
		truncated: !halted,
		direct:    true,
		sumState:  &sumState{built: true, sum: s},
	}, nil
}
