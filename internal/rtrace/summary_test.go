package rtrace

import (
	"errors"
	"reflect"
	"testing"

	"acedo/internal/cache"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// recordedTrace runs a benchmark on a real engine with a recorder
// installed and returns the program and sealed trace. A zero budget
// runs to completion (complete trace); a non-zero budget yields a
// truncated trace, which replays in divergence-checking mode.
func recordedTrace(t *testing.T, bench string, budget uint64) (*program.Program, *Trace) {
	t.Helper()
	spec, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("no %s benchmark", bench)
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	aos := vm.NewAOS(vm.DefaultParams(), mach, prog)
	eng, err := vm.NewEngine(prog, mach, aos)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	if err := eng.SetRecorder(rec); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(budget); err != nil && err != vm.ErrBudget {
		t.Fatal(err)
	}
	tr, err := rec.Finish(eng.Halted())
	if err != nil {
		t.Fatal(err)
	}
	return prog, tr
}

// freshEnv builds a fresh machine + AOS pair around prog, identical
// across calls, for differential replays of the same trace.
func freshEnv(t *testing.T, prog *program.Program) Env {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	return Env{Prog: prog, Mach: mach, AOS: vm.NewAOS(vm.DefaultParams(), mach, prog)}
}

// machineState flattens everything the machine model accumulates into
// a comparable value: the snapshot counters, both resizable caches'
// stats, and every set's full canonical content (tags, recency order,
// dirty bits, absolute last-use ticks).
func machineState(m *machine.Machine) map[string]any {
	dump := func(c *cache.Cache) [][]cache.LineView {
		sets := make([][]cache.LineView, c.NumSets())
		for s := range sets {
			sets[s] = c.ViewSet(uint64(s))
		}
		return sets
	}
	return map[string]any{
		"snapshot":  m.Snapshot(),
		"instr":     m.Instructions(),
		"l1d.stats": m.L1D.Stats(),
		"l2.stats":  m.L2.Stats(),
		"l1d.tick":  m.L1D.Tick(),
		"l2.tick":   m.L2.Tick(),
		"l1d.sets":  dump(m.L1D),
		"l2.sets":   dump(m.L2),
		"timing":    m.Timing.Breakdown(),
	}
}

func checkSameState(t *testing.T, label string, want, got map[string]any) {
	t.Helper()
	for k, w := range want {
		if !reflect.DeepEqual(w, got[k]) {
			t.Errorf("%s: %s differs:\n exact: %+v\n other: %+v", label, k, w, got[k])
		}
	}
}

// TestSummarizedReplayMatchesExact: the summarized engine (Replay)
// must leave the machine in a state bit-identical to the byte-decode
// oracle (ReplayExact) — footprint fast-path applications, bulk
// charges, and merged sampler settlements included — on both complete
// and truncated recordings.
func TestSummarizedReplayMatchesExact(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget uint64
	}{
		{"complete", 0},
		{"truncated", 2_000_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, tr := recordedTrace(t, "jess", tc.budget)

			exact := freshEnv(t, prog)
			if err := tr.ReplayExact(exact); err != nil {
				t.Fatalf("ReplayExact: %v", err)
			}
			want := machineState(exact.Mach)

			sum := freshEnv(t, prog)
			if err := tr.Replay(sum); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			checkSameState(t, "summarized", want, machineState(sum.Mach))
		})
	}
}

// TestParallelReplayMatchesSerial: span-parallel replay must be
// bit-identical to the serial oracle at several worker counts, with a
// block listener installed (forcing the internal serial fallback),
// and on truncated traces (divergence-check mode).
func TestParallelReplayMatchesSerial(t *testing.T) {
	prog, tr := recordedTrace(t, "jess", 0)

	exact := freshEnv(t, prog)
	if err := tr.ReplayExact(exact); err != nil {
		t.Fatalf("ReplayExact: %v", err)
	}
	want := machineState(exact.Mach)

	for _, workers := range []int{2, 4, 8} {
		par := freshEnv(t, prog)
		if err := tr.ReplayParallel(par, workers); err != nil {
			t.Fatalf("ReplayParallel(%d): %v", workers, err)
		}
		checkSameState(t, "parallel", want, machineState(par.Mach))
	}

	// A block listener makes speculation unsound; ReplayParallel must
	// fall back internally and still match (and fire the listener the
	// same number of times as the exact path).
	countBlocks := func(env *Env) *int {
		n := new(int)
		env.BlockListener = func(uint64, int) { *n++ }
		return n
	}
	le := freshEnv(t, prog)
	ne := countBlocks(&le)
	if err := tr.ReplayExact(le); err != nil {
		t.Fatal(err)
	}
	lp := freshEnv(t, prog)
	np := countBlocks(&lp)
	if err := tr.ReplayParallel(lp, 4); err != nil {
		t.Fatal(err)
	}
	if *ne == 0 || *ne != *np {
		t.Errorf("listener fired %d times under parallel, want %d (non-zero)", *np, *ne)
	}
	checkSameState(t, "listener-fallback", machineState(le.Mach), machineState(lp.Mach))

	_, trunc := recordedTrace(t, "jess", 2_000_000)
	te := freshEnv(t, prog)
	if err := trunc.ReplayExact(te); err != nil {
		t.Fatal(err)
	}
	tp := freshEnv(t, prog)
	if err := trunc.ReplayParallel(tp, 4); err != nil {
		t.Fatal(err)
	}
	checkSameState(t, "truncated-parallel", machineState(te.Mach), machineState(tp.Mach))
}

// TestSummaryMalformedMatchesExactClass: hand-built malformed streams
// must fail the summarized path with the same error class as the
// oracle — and never panic. (Hand-built traces without summary state
// take the exact path; attach state explicitly to force
// summarization.)
func TestSummaryMalformedMatchesExactClass(t *testing.T) {
	env := testEnv(t)
	cases := map[string][]byte{
		"missing end marker": {},
		"unknown ext":        {kExt | 20<<3},
		"bad operand":        {kBatch | payloadEscape<<3},
		"exit underflow":     {kExit},
		"block no frame":     {kBlock | 1<<3},
		"method range":       {kEnter | payloadEscape<<3, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for name, raw := range cases {
		tr := &Trace{chunks: [][]byte{raw}, size: len(raw), sumState: new(sumState)}
		if err := tr.Replay(env); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: summarized err = %v, want ErrMalformed", name, err)
		}
	}
}

// TestRecorderArenaAllocs: chunks are carved from shared arenas, so
// recording many chunks' worth of events must cost far fewer
// allocations than one make() per chunk.
func TestRecorderArenaAllocs(t *testing.T) {
	const events = 20 * chunkBytes // 1-byte events → ~20 sealed chunks
	allocs := testing.AllocsPerRun(3, func() {
		r := NewRecorder()
		for i := 0; i < events; i++ {
			r.RecordBranch(true)
		}
		if _, err := r.Finish(true); err != nil {
			t.Fatal(err)
		}
	})
	// Expected: the recorder, ~2 arenas (16 chunks each), the Finish
	// trace copy + summary state, and the chunk-slice growth appends.
	// One allocation per chunk (the old behaviour) would exceed this.
	if allocs > 15 {
		t.Errorf("recording %d chunks cost %.0f allocs/run, want arena-bounded (<= 15)", events/chunkBytes, allocs)
	}
}

// TestSummaryCachedOnce: the summary is decoded once per trace and
// shared across replays (the decode-once contract the replay-many
// speedup rests on).
func TestSummaryCachedOnce(t *testing.T) {
	prog, tr := recordedTrace(t, "db", 500_000)
	s1 := tr.summaryFor(prog)
	s2 := tr.summaryFor(prog)
	if s1 == nil || s1 != s2 {
		t.Errorf("summaryFor not cached: %p vs %p", s1, s2)
	}
	// A different program must not resolve against the cached summary.
	spec, _ := workload.ByName("jess")
	other, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.summaryFor(other); s != nil {
		t.Error("summaryFor resolved against a mismatched program")
	}
}
