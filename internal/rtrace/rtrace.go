// Package rtrace implements record-once / replay-many simulation: a
// recording pass captures one benchmark's architectural event stream —
// block entries with their I-side fetch outcomes, data addresses with
// their D-TLB outcomes, branch-predictor verdicts, retire-batch
// lengths, and method enter/exit boundaries — into a compact chunked
// delta-encoded trace, and a replay pass re-simulates any adaptation
// scheme from that trace without interpreting the register file.
//
// The stream is scheme-invariant because resizing the configurable
// units (L1D, L2, IQ) changes timing and energy only, never register
// values or control flow; and the fixed-configuration structures —
// I-TLB, D-TLB, L1I, branch predictor — behave identically under every
// scheme, so their per-access outcomes are recorded and replayed as
// bits instead of re-simulated. Replay therefore only simulates the
// resizable L1D and L2 (plus the shared L2 traffic the recorded L1I
// misses generate), the timing counters, the energy meters, and the
// adaptation machinery itself (AOS, sampler, managers), reproducing a
// direct run's Snapshot, DO database, and telemetry bit-for-bit.
//
// Encoding: each event is one opcode byte — low 3 bits the event kind,
// high 5 bits a small inline payload — followed by optional uvarint
// operands. Data addresses are zigzag-deltas against the previous data
// address. A block or method-entry event with any I-TLB or L1I miss
// uses an extended form carrying per-line outcome bitmasks; the common
// warm form (all lines hit) is the single opcode byte. Events never
// straddle the 64 KB chunks, so decoding works on flat chunk slices.
package rtrace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"acedo/internal/program"
	"acedo/internal/vm"
)

// Event kinds (opcode byte low 3 bits).
const (
	kBlock  = 0 // block entry, all lines hit; payload = block index
	kBatch  = 1 // retire batch; payload = length
	kData   = 2 // data access, D-TLB hit; payload = write bit + addr delta
	kBranch = 3 // conditional branch; payload = predictor-correct bit
	kEnter  = 4 // method entry, all lines hit; payload = method ID
	kExit   = 5 // method return
	kHalt   = 6 // explicit halt (unwinds all in-flight frames)
	kExt    = 7 // extended event; payload = subtype
)

// Extended-event subtypes (opcode byte high 5 bits when kind is kExt).
const (
	extBlockMasks = 0 // block entry with I-TLB/L1I miss masks
	extEnterMasks = 1 // method entry with I-TLB/L1I miss masks
	extDataTLB    = 2 // data access that missed the D-TLB
	extEndHalted  = 3 // end of a complete trace (program halted)
	extEndBudget  = 4 // end of a truncated trace (budget expired)
)

// payloadMax is the largest value carried inline in the 5-bit payload;
// payloadEscape marks "uvarint operand follows".
const (
	payloadMax    = 30
	payloadEscape = 31
)

// chunkBytes is the trace chunk size; maxEventBytes bounds one encoded
// event (opcode byte plus at most three 10-byte uvarints), so starting
// a fresh chunk whenever fewer bytes remain guarantees no event
// straddles a chunk boundary.
const (
	chunkBytes    = 64 << 10
	maxEventBytes = 32
)

// Trace is a finished recording of one run's architectural stream.
// It is immutable and safe to replay concurrently from multiple
// goroutines (each Replay call carries its own cursor).
type Trace struct {
	chunks    [][]byte
	events    uint64
	size      int
	truncated bool

	// direct marks a trace captured by SummaryRecorder: no byte
	// encoding exists (chunks empty, size 0) and sumState holds the
	// summary built at record time.
	direct bool

	// sumState caches the trace's decoded summary (built lazily on
	// first replay; see summary.go). Behind a pointer so sealed Trace
	// values stay copyable; nil on hand-built traces (tests), which
	// then always take the byte-replay path.
	sumState *sumState
}

// Truncated reports whether the recording stopped at an instruction
// budget rather than a program halt. Truncated traces replay with a
// per-boundary instruction-count check (see Replay): a scheme that
// charges instrumentation overhead reaches the budget earlier than the
// recorded run did, so its replay diverges and must fall back.
func (t *Trace) Truncated() bool { return t.truncated }

// Events returns the number of recorded events.
func (t *Trace) Events() uint64 { return t.events }

// Size returns the encoded trace size in bytes.
func (t *Trace) Size() int { return t.size }

// arenaBytes is the recorder's chunk-arena allocation unit: chunks
// are carved out of shared arenas instead of being allocated one
// make() apiece, and sealing a chunk hands its spare tail capacity
// (up to maxEventBytes−1 bytes that begin() could not guarantee would
// fit an event) to the next chunk instead of stranding it.
const arenaBytes = 16 * chunkBytes

// Recorder implements vm.Recorder, accumulating the architectural
// event stream of one engine run. Finish seals it into a Trace.
type Recorder struct {
	t        Trace
	cur      []byte
	arena    []byte
	pos      int // bytes of arena consumed by sealed chunks + cur's start
	prevAddr uint64
	invalid  string
}

// NewRecorder returns an empty recorder ready to install on an engine.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.carve()
	return r
}

// begin makes room for one event, sealing the current chunk when fewer
// than maxEventBytes remain. Events never straddle chunks.
func (r *Recorder) begin() {
	if cap(r.cur)-len(r.cur) < maxEventBytes {
		if len(r.cur) > 0 {
			r.t.chunks = append(r.t.chunks, r.cur)
		}
		r.pos += len(r.cur)
		r.carve()
	}
	r.t.events++
}

// carve starts the next chunk as a capacity-bounded window into the
// arena at the first unused byte — sealed chunks keep their bytes
// (the window cannot grow into them and they are never appended to),
// while their unused tails are reclaimed. A fresh arena is allocated
// when the remainder cannot hold even one encoded event.
func (r *Recorder) carve() {
	if len(r.arena)-r.pos < maxEventBytes {
		r.arena = make([]byte, arenaBytes)
		r.pos = 0
	}
	end := r.pos + chunkBytes
	if end > len(r.arena) {
		end = len(r.arena)
	}
	r.cur = r.arena[r.pos:r.pos:end]
}

// op emits a kind byte with a small inline operand, escaping to a
// uvarint when the operand exceeds the 5-bit payload.
func (r *Recorder) op(kind byte, v uint64) {
	if v <= payloadMax {
		r.cur = append(r.cur, kind|byte(v)<<3)
		return
	}
	r.cur = append(r.cur, kind|payloadEscape<<3)
	r.cur = binary.AppendUvarint(r.cur, v)
}

// ext emits an extended-event opcode byte.
func (r *Recorder) ext(sub byte) {
	r.cur = append(r.cur, kExt|sub<<3)
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// RecordEnter records a method entry and its first block's fetch
// outcomes (vm.Recorder).
func (r *Recorder) RecordEnter(id program.MethodID, tlbMask, missMask uint64, ok bool) {
	if !ok {
		r.fail("basic block spans more than 64 I-lines")
	}
	r.begin()
	if tlbMask == 0 && missMask == 0 {
		r.op(kEnter, uint64(id))
		return
	}
	r.ext(extEnterMasks)
	r.cur = binary.AppendUvarint(r.cur, uint64(id))
	r.cur = binary.AppendUvarint(r.cur, tlbMask)
	r.cur = binary.AppendUvarint(r.cur, missMask)
}

// RecordBlock records an intra-method block entry and its fetch
// outcomes (vm.Recorder).
func (r *Recorder) RecordBlock(idx int, tlbMask, missMask uint64, ok bool) {
	if !ok {
		r.fail("basic block spans more than 64 I-lines")
	}
	r.begin()
	if tlbMask == 0 && missMask == 0 {
		r.op(kBlock, uint64(idx))
		return
	}
	r.ext(extBlockMasks)
	r.cur = binary.AppendUvarint(r.cur, uint64(idx))
	r.cur = binary.AppendUvarint(r.cur, tlbMask)
	r.cur = binary.AppendUvarint(r.cur, missMask)
}

// RecordBatch records a retire batch of n instructions (vm.Recorder).
func (r *Recorder) RecordBatch(n uint64) {
	r.begin()
	r.op(kBatch, n)
}

// RecordData records one data access and its D-TLB outcome
// (vm.Recorder).
func (r *Recorder) RecordData(wordAddr uint64, write, tlbMiss bool) {
	r.begin()
	delta := zigzag(int64(wordAddr) - int64(r.prevAddr))
	r.prevAddr = wordAddr
	var w uint64
	if write {
		w = 1
	}
	if tlbMiss {
		r.ext(extDataTLB)
		r.cur = binary.AppendUvarint(r.cur, w)
		r.cur = binary.AppendUvarint(r.cur, delta)
		return
	}
	// Payload: bit 0 = write, bits 1-4 = delta (15 escapes to uvarint).
	if delta < 15 {
		r.cur = append(r.cur, kData|byte(w|delta<<1)<<3)
		return
	}
	r.cur = append(r.cur, kData|byte(w|15<<1)<<3)
	r.cur = binary.AppendUvarint(r.cur, delta)
}

// RecordBranch records a conditional branch's predictor verdict
// (vm.Recorder).
func (r *Recorder) RecordBranch(correct bool) {
	r.begin()
	var c byte
	if correct {
		c = 1
	}
	r.cur = append(r.cur, kBranch|c<<3)
}

// RecordBody records one fast-path block body in a single call
// (vm.Recorder), encoding exactly the events the per-call form would:
// the packed data accesses, the retire batch, then the terminating
// branch verdict — so the byte stream is identical however the engine
// chose to report the body.
func (r *Recorder) RecordBody(data []uint64, n uint64, branch int8) {
	for _, d := range data {
		r.RecordData(d>>2, d&1 != 0, d&2 != 0)
	}
	r.RecordBatch(n)
	switch branch {
	case vm.BranchCorrect:
		r.RecordBranch(true)
	case vm.BranchWrong:
		r.RecordBranch(false)
	}
}

// RecordExit records a method return (vm.Recorder).
func (r *Recorder) RecordExit() {
	r.begin()
	r.cur = append(r.cur, kExit)
}

// RecordHalt records an explicit halt (vm.Recorder).
func (r *Recorder) RecordHalt() {
	r.begin()
	r.cur = append(r.cur, kHalt)
}

func (r *Recorder) fail(reason string) {
	if r.invalid == "" {
		r.invalid = reason
	}
}

// Finish seals the recording into an immutable Trace. halted reports
// whether the program ran to completion (vm.Engine.Halted); a
// non-halted recording is marked truncated. Finish fails when the
// stream hit an unencodable case, in which case the run must not be
// replayed.
func (r *Recorder) Finish(halted bool) (*Trace, error) {
	if r.invalid != "" {
		return nil, fmt.Errorf("rtrace: recording unusable: %s", r.invalid)
	}
	r.begin()
	if halted {
		r.ext(extEndHalted)
	} else {
		r.ext(extEndBudget)
		r.t.truncated = true
	}
	r.t.events-- // end marker is framing, not an event
	r.t.chunks = append(r.t.chunks, r.cur)
	r.cur = nil
	for _, c := range r.t.chunks {
		r.t.size += len(c)
	}
	t := r.t
	t.sumState = new(sumState)
	r.t = Trace{}
	return &t, nil
}

// ErrDiverged is returned by Replay when the live adaptation machinery
// charged instructions a truncated trace cannot account for — the
// scheme's stopping point differs from the recorded run's, so the
// replay is not equivalent to direct execution and the caller must
// fall back.
var ErrDiverged = errors.New("rtrace: replayed scheme diverged from recorded stream")

// ErrMalformed is wrapped by Replay errors caused by an undecodable
// trace; callers should treat it like a divergence and fall back.
var ErrMalformed = errors.New("rtrace: malformed trace")
